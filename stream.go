package remicss

import "remicss/internal/stream"

// StreamWriter chunks a byte stream into protocol symbols (io.Writer).
type StreamWriter = stream.Writer

// StreamOrderer re-sequences delivered symbols into send order, skipping
// symbols that never arrive once they fall outside the reordering window.
type StreamOrderer = stream.Orderer

// StreamOrdererStats counts orderer activity.
type StreamOrdererStats = stream.OrdererStats

// ErrWriterStopped is returned by a StreamWriter whose retry policy gave
// up.
var ErrWriterStopped = stream.ErrWriterStopped

// NewStreamWriter adapts a symbol send function (typically Sender.Send
// wrapped with any waiting policy) into an io.Writer. retry is consulted on
// send errors: return true to retry the same chunk, false to fail the
// stream; nil fails on the first error.
func NewStreamWriter(send func([]byte) error, chunkSize int, retry func(error) bool) (*StreamWriter, error) {
	return stream.NewWriter(send, chunkSize, retry)
}

// NewStreamOrderer builds an in-order delivery buffer over Receiver
// symbols: feed OnSymbol's (seq, payload) into Push and receive the stream
// in order via deliver. onGap (may be nil) is told about symbols given up
// on.
func NewStreamOrderer(window int, deliver func(seq uint64, payload []byte), onGap func(seq uint64)) (*StreamOrderer, error) {
	return stream.NewOrderer(window, deliver, onGap)
}
