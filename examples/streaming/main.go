// Streaming example: carry an ordered byte stream over lossy UDP channels.
// The protocol is per-symbol and best-effort; the stream adapters chunk on
// the way in and re-sequence on the way out, while m−k share redundancy
// absorbs the channel loss — no retransmission anywhere.
//
// Channel loss is emulated in userspace (remicss.DialUDPImpaired), so the
// example runs on any machine without traffic-control privileges.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"remicss"
)

func main() {
	// Receiving side: three UDP sockets feeding a reassembly receiver,
	// whose symbols feed an in-order jitter buffer.
	listener, err := remicss.ListenUDP([]string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		log.Fatal(err)
	}
	defer listener.Close()

	var mu sync.Mutex
	var out bytes.Buffer
	gaps := 0
	orderer, err := remicss.NewStreamOrderer(512,
		func(_ uint64, p []byte) { out.Write(p) },
		func(uint64) { gaps++ })
	if err != nil {
		log.Fatal(err)
	}
	scheme := remicss.NewSharingScheme(nil)
	recv, err := remicss.NewReceiver(remicss.ReceiverConfig{
		Scheme: scheme,
		Clock:  remicss.WallClock,
		OnSymbol: func(seq uint64, payload []byte, _ time.Duration) {
			mu.Lock()
			orderer.Push(seq, payload)
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	listener.Serve(recv.HandleDatagram)

	// Sending side: every channel drops 10% of datagrams and adds a little
	// delay — emulated in userspace.
	impairments := []remicss.UDPImpairment{
		{Loss: 0.10, Delay: 3 * time.Millisecond, Seed: 1},
		{Loss: 0.10, Delay: 8 * time.Millisecond, Seed: 2},
		{Loss: 0.10, Delay: 1 * time.Millisecond, Seed: 3},
	}
	// Pace each channel at 2000 pkt/s: an unpaced blast would overflow the
	// kernel's loopback receive buffer and masquerade as channel loss. The
	// writer's retry policy absorbs the resulting backpressure.
	rates := []float64{2000, 2000, 2000}
	links, err := remicss.DialUDPImpaired(listener.Addrs(), rates, 8, impairments)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, l := range links {
			l.(*remicss.UDPLink).Close()
		}
	}()

	// κ=1, μ=3: privacy is not the point here — loss tolerance is. Each
	// symbol survives unless all three copies of a share... all three
	// channels drop it: p ≈ 0.1³ = 0.1%.
	chooser, err := remicss.NewDynamicChooser(1, 3, rand.New(rand.NewSource(4)))
	if err != nil {
		log.Fatal(err)
	}
	snd, err := remicss.NewSender(remicss.SenderConfig{
		Scheme:  scheme,
		Chooser: chooser,
		Clock:   remicss.WallClock,
	}, links)
	if err != nil {
		log.Fatal(err)
	}
	writer, err := remicss.NewStreamWriter(snd.Send, 1024, func(err error) bool {
		if errors.Is(err, remicss.ErrBackpressure) {
			time.Sleep(time.Millisecond)
			return true
		}
		return false
	})
	if err != nil {
		log.Fatal(err)
	}

	// Stream 256 KiB of structured data.
	data := make([]byte, 256<<10)
	for i := range data {
		data[i] = byte(i % 251)
	}
	start := time.Now()
	if _, err := writer.Write(data); err != nil {
		log.Fatal(err)
	}

	// Wait for the stream to drain, then flush remaining gaps.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := out.Len()
		mu.Unlock()
		if n >= len(data) || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	orderer.Flush()
	ok := bytes.Equal(out.Bytes(), data)
	st := orderer.Stats()
	mu.Unlock()

	fmt.Printf("streamed %d KiB over 3 channels with 10%% loss each in %v\n",
		len(data)>>10, time.Since(start).Round(time.Millisecond))
	fmt.Printf("symbols delivered in order: %d, skipped: %d, stream intact: %v\n",
		st.Delivered, st.Skipped, ok)
	sst := snd.Stats()
	fmt.Printf("shares sent: %d (3 per symbol; per-symbol survival ≈ 99.9%%)\n", sst.SharesSent)
	if !ok && st.Skipped == 0 {
		log.Fatal("stream corrupted without recorded gaps")
	}
}
