// Quickstart: model a channel set, pick parameters, and move secret data
// over real UDP channels with the ReMICSS protocol — no single channel ever
// carries enough to reconstruct a symbol.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"remicss"
)

func main() {
	// 1. Describe the available channels: (risk, loss, delay, rate).
	set := remicss.ChannelSet{
		{Risk: 0.30, Loss: 0.01, Delay: 3 * time.Millisecond, Rate: 500},
		{Risk: 0.10, Loss: 0.02, Delay: 8 * time.Millisecond, Rate: 2000},
		{Risk: 0.20, Loss: 0.005, Delay: 1 * time.Millisecond, Rate: 1000},
	}
	if err := set.Validate(); err != nil {
		log.Fatal(err)
	}

	// 2. What does the model promise? (Paper Section IV.)
	fmt.Printf("best possible risk  (κ=μ=n): %.4f\n", set.MaxPrivacyRisk())
	fmt.Printf("best possible loss  (κ=1,μ=n): %.6f\n", set.MinLoss())
	fmt.Printf("best possible delay (κ=1,μ=n): %.2fms\n", set.MinDelay()*1e3)
	fmt.Printf("best possible rate  (κ=μ=1): %.0f symbols/s\n", set.MaxRate())

	// 3. Pick a tradeoff: κ=2 (an adversary needs two channels), μ=3 (one
	// share loss tolerated), and see the full profile at optimal rate.
	params := remicss.Params{Kappa: 2, Mu: 3}
	prof, err := params.Profile(set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nκ=2, μ=3 profile: rate %.0f sym/s, risk %.4f, loss %.6f, delay %v\n",
		prof.Rate, prof.Risk, prof.Loss, prof.Delay)

	// 4. Move real data: a UDP session on loopback, one socket per channel.
	listener, err := remicss.ListenUDP([]string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		log.Fatal(err)
	}
	defer listener.Close()

	scheme := remicss.NewSharingScheme(nil)
	var mu sync.Mutex
	got := map[uint64]string{}
	recv, err := remicss.NewReceiver(remicss.ReceiverConfig{
		Scheme: scheme,
		Clock:  remicss.WallClock,
		OnSymbol: func(seq uint64, payload []byte, delay time.Duration) {
			mu.Lock()
			got[seq] = string(payload)
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	listener.Serve(recv.HandleDatagram)

	links, err := remicss.DialUDP(listener.Addrs(), nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	chooser, err := remicss.NewDynamicChooser(params.Kappa, params.Mu, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	snd, err := remicss.NewSender(remicss.SenderConfig{
		Scheme:  scheme,
		Chooser: chooser,
		Clock:   remicss.WallClock,
	}, links)
	if err != nil {
		log.Fatal(err)
	}

	messages := []string{
		"meet at the north gate",
		"bring the documents",
		"midnight, not before",
	}
	for _, m := range messages {
		if err := snd.Send([]byte(m)); err != nil {
			log.Fatal(err)
		}
	}

	// Wait for delivery.
	deadline := time.Now().Add(3 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == len(messages) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Println("\ndelivered over", len(links), "UDP channels:")
	mu.Lock()
	for seq := uint64(0); seq < uint64(len(messages)); seq++ {
		fmt.Printf("  symbol %d: %q\n", seq, got[seq])
	}
	mu.Unlock()

	// 5. The privacy property, concretely: one share alone reveals nothing.
	shares, err := remicss.Split([]byte("top secret"), 2, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\none share of a 2-of-3 split (useless alone): %x\n", shares[0].Data) //lint:allow taint demo deliberately prints one share to show it reveals nothing alone
	rec, err := remicss.Combine(shares[:2], 2, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two shares reconstruct: %q\n", rec) //lint:allow taint demo deliberately prints the reconstructed secret
}
