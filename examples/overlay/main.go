// Overlay example: from a network topology to a running protocol. Given a
// graph of an overlay network with per-edge risk/loss/delay/rate, extract
// the maximum set of edge-disjoint sender→receiver paths, compose each path
// into a model channel, pick parameters against a confidentiality target,
// and show what a shared-edge shortcut would have cost (the paper's Section
// III-B disjointness argument).
package main

import (
	"fmt"
	"log"
	"time"

	"remicss"
)

func main() {
	// An overlay spanning two ISPs and a VPN hop. Edge risks reflect how
	// exposed each segment is.
	ms := time.Millisecond
	edges := []remicss.NetworkEdge{
		// ISP A's path: cheap, fast, heavily monitored first hop.
		{From: "alice", To: "ispA", Risk: 0.40, Loss: 0.001, Delay: 2 * ms, Rate: 8000},
		{From: "ispA", To: "ix", Risk: 0.10, Loss: 0.001, Delay: 5 * ms, Rate: 8000},
		// ISP B's path: slower, less observed.
		{From: "alice", To: "ispB", Risk: 0.15, Loss: 0.01, Delay: 8 * ms, Rate: 2000},
		{From: "ispB", To: "ix", Risk: 0.10, Loss: 0.005, Delay: 6 * ms, Rate: 2500},
		// VPN tunnel: low risk, long detour.
		{From: "alice", To: "vpn", Risk: 0.05, Loss: 0.02, Delay: 25 * ms, Rate: 1200},
		{From: "vpn", To: "ix", Risk: 0.05, Loss: 0.01, Delay: 20 * ms, Rate: 1500},
		// Shared last mile from the exchange to Bob (every path crosses it
		// unless we provision the direct peering links below).
		{From: "ix", To: "bob", Risk: 0.08, Loss: 0.001, Delay: 1 * ms, Rate: 20000},
		{From: "ix", To: "bob", Risk: 0.08, Loss: 0.001, Delay: 1 * ms, Rate: 20000},
		{From: "ix", To: "bob", Risk: 0.08, Loss: 0.001, Delay: 1 * ms, Rate: 20000},
	}
	g, err := remicss.NewNetworkGraph(edges)
	if err != nil {
		log.Fatal(err)
	}

	set, paths, err := remicss.DisjointChannels(g, "alice", "bob")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted %d edge-disjoint channels alice -> bob:\n", len(paths))
	for i, p := range paths {
		c := set[i]
		fmt.Printf("  %d: %v\n     risk %.3f, loss %.4f, delay %v, rate %.0f sym/s\n",
			i, p.Nodes(), c.Risk, c.Loss, c.Delay, c.Rate)
	}
	if err := set.Validate(); err != nil {
		log.Fatal(err)
	}

	// Pick parameters: adaptive controller with a 5% confidentiality target
	// (the floor here is Π z_i ≈ 0.025, so 5% is reachable).
	ctrl, err := remicss.NewAdaptController(remicss.AdaptConfig{
		N:          set.N(),
		TargetLoss: 0.01,
		MaxRisk:    0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	kappa, risk, err := ctrl.Retune(set)
	if err != nil {
		log.Fatalf("confidentiality target unreachable: %v (risk %.4f)", err, risk)
	}
	_, mu := ctrl.Params()
	fmt.Printf("\ncontroller chose κ=%g, μ=%g: schedule risk %.4f (target 0.05)\n", kappa, mu, risk)
	rate, err := set.OptimalRate(mu)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal rate at μ=%g: %.0f symbols/s\n", mu, rate)

	// The disjointness argument, concretely: what if two "channels" had
	// shared ISP A's monitored first hop? One tap there would yield two
	// shares.
	fmt.Println("\nwhy disjoint paths matter (Section III-B):")
	fmt.Printf("  tapping ISP A's access link (z=0.40) on disjoint paths yields 1 share\n")
	fmt.Printf("  with κ=%g the adversary needs %g channels: risk stays %.4f\n", kappa, kappa, risk)
	twoOnSharedEdge := 0.40 // one tap, two shares, threshold 2 defeated
	fmt.Printf("  if two channels shared that link, one tap would defeat κ=2: risk %.4f (%.0fx worse)\n",
		twoOnSharedEdge, twoOnSharedEdge/risk)
}
