// Adversary's-eye view: empirically verify the privacy measure. An
// eavesdropper observes shares on a subset of channels; with fewer than k
// shares the intercepted data is statistically indistinguishable from
// noise, with k or more the symbol is recovered. The empirical interception
// rate over many symbols matches the model's Z(p) prediction.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"remicss"
)

func main() {
	rng := rand.New(rand.NewSource(99))
	scheme := remicss.NewSharingScheme(rng) //lint:allow insecure-rand example deliberately uses a seeded rng so its output is reproducible

	// (a) Information-theoretic secrecy, concretely: split a very
	// non-random message and look at what one share of a 2-of-3 split
	// leaks. Entropy of the share bytes should be that of uniform noise.
	secret := make([]byte, 4096) // all zeros: maximally structured
	shares, err := scheme.Split(secret, 2, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("secret entropy:    %.3f bits/byte (all zeros)\n", entropy(secret))
	fmt.Printf("one share entropy: %.3f bits/byte (≈8 = uniform noise)\n", entropy(shares[1].Data))

	two, err := scheme.Combine(shares[:2], 2, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with 2 shares the secret returns: %v (first bytes %v)\n\n",
		string(two[:0])+"ok", two[:4]) //lint:allow taint demo deliberately prints reconstructed bytes to show that k shares suffice

	// (b) The privacy measure Z(p): an adversary with risk z_i per channel.
	set := remicss.ChannelSet{
		{Risk: 0.9, Rate: 100}, // badly exposed channel
		{Risk: 0.3, Rate: 100},
		{Risk: 0.2, Rate: 100},
		{Risk: 0.1, Rate: 100},
	}
	sched, err := remicss.OptimizeSchedule(set, 2, 3, remicss.ObjectiveRisk, remicss.ScheduleOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal risk schedule for κ=2, μ=3 avoids the exposed channel:")
	for _, a := range sched.Support() {
		fmt.Printf("  p%v = %.4f\n", a, sched[a])
	}
	predicted := sched.Risk(set)

	// Monte-Carlo the adversary: for each symbol, draw (k, M) from the
	// schedule, then each share on channel i is observed with probability
	// z_i; the symbol leaks iff the adversary holds at least k shares.
	sampler := newSampler(sched, rng)
	const symbols = 200000
	leaks := 0
	for s := 0; s < symbols; s++ {
		k, mask := sampler()
		observed := 0
		for i := range set {
			if mask&(1<<uint(i)) != 0 && rng.Float64() < set[i].Risk {
				observed++
			}
		}
		if observed >= k {
			leaks++
		}
	}
	empirical := float64(leaks) / symbols
	fmt.Printf("\npredicted Z(p) = %.5f\n", predicted)
	fmt.Printf("empirical Z    = %.5f over %d symbols\n", empirical, symbols)
	fmt.Printf("agreement within %.2f%%\n", math.Abs(predicted-empirical)/predicted*100)

	// (c) Compare against a naive schedule that uses every channel —
	// including the exposed one — with the same κ and μ.
	naive := remicss.Schedule{
		{K: 2, Mask: 0b0111}: 0.5,
		{K: 2, Mask: 0b1101}: 0.5,
	}
	fmt.Printf("\nnaive schedule using the exposed channel: Z = %.5f (%.1fx worse)\n",
		naive.Risk(set), naive.Risk(set)/predicted)
}

// entropy computes the empirical byte entropy in bits per byte.
func entropy(data []byte) float64 {
	var counts [256]float64
	for _, b := range data {
		counts[b]++
	}
	var h float64
	n := float64(len(data))
	for _, c := range counts {
		if c > 0 {
			p := c / n
			h -= p * math.Log2(p)
		}
	}
	return h
}

// newSampler returns a closure drawing (k, mask) from the schedule.
func newSampler(sched remicss.Schedule, rng *rand.Rand) func() (int, uint32) {
	type entry struct {
		a   remicss.Assignment
		cum float64
	}
	var entries []entry
	var cum float64
	for _, a := range sched.Support() {
		cum += sched[a]
		entries = append(entries, entry{a, cum})
	}
	return func() (int, uint32) {
		u := rng.Float64() * cum
		for _, e := range entries {
			if u <= e.cum {
				return e.a.K, e.a.Mask
			}
		}
		last := entries[len(entries)-1]
		return last.a.K, last.a.Mask
	}
}
