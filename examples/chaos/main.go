// Chaos demo: a scripted mid-stream blackout, watched through the health
// API. A sender streams symbols over three emulated channels while a
// chaos scenario (written in the text DSL) blacks one channel out; the
// per-channel health tracker notices, fails over — shedding multiplicity,
// never the ⌊κ⌋ threshold — probes the dead channel with exponential
// backoff, and recovers it when the blackout lifts. The run is
// deterministic: same scenario, same timeline, every time.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"remicss"
	"remicss/internal/chaos"
	"remicss/internal/netem"
	"remicss/internal/obs"
)

// script is the fault scenario in the chaos DSL (DESIGN.md §10): channel
// 1 goes dark from t=2s to t=6s.
const script = `
scenario demo-blackout
seed 7
duration 10s
floor 0.9
at 2s blackout ch 1 for 4s
`

func main() {
	scenario, err := chaos.Parse(script)
	if err != nil {
		log.Fatal(err)
	}

	eng := netem.NewEngine()
	trace := remicss.NewEventTrace(1 << 16)
	rng := rand.New(rand.NewSource(scenario.Seed))
	scheme := remicss.NewSharingScheme(rng) //lint:allow insecure-rand example deliberately uses a seeded rng so its output is reproducible

	// Receiver behind three emulated 2000 symbol/s channels.
	var delivered int
	recv, err := remicss.NewReceiver(remicss.ReceiverConfig{
		Scheme:   scheme,
		Clock:    eng.Now,
		OnSymbol: func(uint64, []byte, time.Duration) { delivered++ },
	})
	if err != nil {
		log.Fatal(err)
	}
	links := make([]remicss.Link, 3)
	emLinks := make([]*netem.Link, 3)
	for i := range links {
		link, err := netem.NewLink(eng, netem.LinkConfig{Rate: 2000},
			rand.New(rand.NewSource(scenario.Seed+int64(i)+1)),
			func(p []byte, _ time.Duration) { recv.HandleDatagram(p) })
		if err != nil {
			log.Fatal(err)
		}
		links[i] = link
		emLinks[i] = link
	}

	// Sender with health failover: κ=2, μ=3 — any 2 of 3 shares
	// reconstruct, so one dead channel costs loss tolerance, not data.
	tracker, err := remicss.NewHealthTracker(remicss.HealthConfig{}, 3, eng.Now, nil, trace)
	if err != nil {
		log.Fatal(err)
	}
	chooser, err := remicss.NewHealthChooser(2, 3, tracker, rand.New(rand.NewSource(scenario.Seed+100)))
	if err != nil {
		log.Fatal(err)
	}
	snd, err := remicss.NewSender(remicss.SenderConfig{
		Scheme: scheme, Chooser: chooser, Clock: eng.Now,
		Trace: trace, Health: tracker,
	}, links)
	if err != nil {
		log.Fatal(err)
	}

	if err := scenario.Apply(eng, emLinks, trace); err != nil {
		log.Fatal(err)
	}

	// Offer 200 symbols/s for the scenario window.
	payload := make([]byte, 512)
	offered := 0
	var offer func()
	offer = func() {
		offered++
		_ = snd.Send(payload)
		if next := eng.Now() + 5*time.Millisecond; next <= scenario.Duration {
			eng.At(next, offer)
		}
	}
	eng.Schedule(0, offer)
	eng.Run(scenario.Duration)
	eng.RunUntilIdle()

	// Replay the run's story from the trace: faults, health transitions,
	// probes — and verify the ⌊κ⌋ floor across every scheduled symbol.
	fmt.Println("timeline (from the event trace):")
	minK := 255
	for _, ev := range trace.Snapshot(nil) {
		switch ev.Kind {
		case obs.EventFaultInjected:
			fmt.Printf("  %5s  ch %d  fault: %v\n", ev.At, ev.Channel, chaos.FaultKind(ev.Value))
		case obs.EventChannelStateChanged:
			fmt.Printf("  %5s  ch %d  health → %v\n", ev.At, ev.Channel, remicss.HealthState(ev.Value))
		case obs.EventChannelProbe:
			fmt.Printf("  %5s  ch %d  probe (backoff %s)\n", ev.At, ev.Channel, time.Duration(ev.Value))
		case obs.EventSymbolScheduled:
			if k := int(ev.Value >> 8); k < minK {
				minK = k
			}
		}
	}
	fmt.Printf("\ndelivered %d of %d symbols (%.1f%%)\n", delivered, offered,
		100*float64(delivered)/float64(offered))
	fmt.Printf("minimum scheduled threshold: %d (never below ⌊κ⌋ = 2: secrecy held all run)\n", minK)
	for i := range links {
		fmt.Printf("ch %d ended %v, sent %d datagrams\n", i, tracker.State(i), emLinks[i].Stats().Sent)
	}
}
