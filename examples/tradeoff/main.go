// Tradeoff explorer: sweep the protocol parameters κ and μ over the paper's
// Diverse channel setup and print the full privacy/performance frontier —
// the quantitative answer to "how much privacy does this configuration buy,
// and what does it cost?"
package main

import (
	"fmt"
	"log"
	"time"

	"remicss"
)

func main() {
	// The paper's Diverse setup (rates in symbols/s for 1400-byte symbols),
	// with risks and imperfections added so every column is interesting.
	set := remicss.ChannelSet{
		{Risk: 0.30, Loss: 0.010, Delay: 2500 * time.Microsecond, Rate: 446},
		{Risk: 0.10, Loss: 0.005, Delay: 250 * time.Microsecond, Rate: 1786},
		{Risk: 0.20, Loss: 0.010, Delay: 12500 * time.Microsecond, Rate: 5357},
		{Risk: 0.25, Loss: 0.020, Delay: 5 * time.Millisecond, Rate: 5804},
		{Risk: 0.15, Loss: 0.030, Delay: 500 * time.Microsecond, Rate: 8929},
	}
	if err := set.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("privacy/performance frontier at optimal rate (Diverse setup)")
	fmt.Println("κ-1 = share interceptions tolerated; μ-κ = share losses tolerated")
	fmt.Printf("\n%5s %5s | %12s %10s %10s %10s\n",
		"κ", "μ", "rate sym/s", "risk Z(p)", "loss L(p)", "delay")
	fmt.Println("-------------+---------------------------------------------")
	for kappa := 1.0; kappa <= 5; kappa++ {
		for mu := kappa; mu <= 5; mu++ {
			prof, err := (remicss.Params{Kappa: kappa, Mu: mu}).Profile(set)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%5.0f %5.0f | %12.0f %10.5f %10.6f %10v\n",
				kappa, mu, prof.Rate, prof.Risk, prof.Loss,
				prof.Delay.Round(10*time.Microsecond))
		}
	}

	// Fractional parameters interpolate the frontier: the continuum the
	// paper's share schedules unlock (Section III-C).
	fmt.Println("\nfractional parameters move along the continuum:")
	for _, mu := range []float64{2, 2.25, 2.5, 2.75, 3} {
		prof, err := (remicss.Params{Kappa: 2, Mu: mu}).Profile(set)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  κ=2.0 μ=%.2f: rate %6.0f sym/s, loss %.6f\n", mu, prof.Rate, prof.Loss)
	}

	// How much rate does full privacy cost? Compare extremes directly.
	fmt.Println("\nheadline tradeoff:")
	fmt.Printf("  throughput mode (κ=μ=1):   %8.0f sym/s, risk %.4f\n",
		set.MaxRate(), riskAt(set, 1, 1))
	fmt.Printf("  max privacy mode (κ=μ=5):  %8.0f sym/s, risk %.6f\n",
		mustRate(set, 5), set.MaxPrivacyRisk())
}

func riskAt(set remicss.ChannelSet, kappa, mu float64) float64 {
	sched, err := remicss.OptimizeScheduleAtMaxRate(set, kappa, mu, remicss.ObjectiveRisk, remicss.ScheduleOptions{})
	if err != nil {
		log.Fatal(err)
	}
	return sched.Risk(set)
}

func mustRate(set remicss.ChannelSet, mu float64) float64 {
	rc, err := set.OptimalRate(mu)
	if err != nil {
		log.Fatal(err)
	}
	return rc
}
