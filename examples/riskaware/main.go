// Risk-aware parameter selection: estimate each channel's eavesdropping
// risk from simulated IDS observations with the HMM filter (the paper's
// reference risk-assessment technique), then choose the cheapest κ whose
// optimal schedule meets a confidentiality target — closing the loop from
// raw network evidence to protocol parameters.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"remicss"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	model := remicss.DefaultRiskModel()

	// Simulate a week of observations per channel. Channel 3 will exhibit
	// the compromised state's noisy alert pattern more often.
	const steps = 500
	obs := make([][]int, 5)
	labels := []string{"fiber ISP", "LTE", "satellite", "coffee-shop wifi", "campus net"}
	for i := range obs {
		_, o, err := model.Simulate(steps, rng)
		if err != nil {
			log.Fatal(err)
		}
		obs[i] = o
	}
	// Inject a burst of alerts on the wifi channel: its posterior risk must
	// rise regardless of what the simulation drew.
	for t := steps - 30; t < steps; t++ {
		obs[3][t] = 2
	}

	zs, err := remicss.EstimateRisks(model, obs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("estimated per-channel eavesdropping risk (HMM posterior):")
	for i, z := range zs {
		fmt.Printf("  %-18s z = %.4f\n", labels[i], z)
	}

	// Build the channel set with the estimated risks and measured
	// performance characteristics.
	rates := []float64{2000, 800, 300, 1500, 2500}
	losses := []float64{0.001, 0.01, 0.02, 0.03, 0.005}
	delays := []time.Duration{
		3 * time.Millisecond, 30 * time.Millisecond, 250 * time.Millisecond,
		8 * time.Millisecond, 2 * time.Millisecond,
	}
	set := make(remicss.ChannelSet, 5)
	for i := range set {
		set[i] = remicss.Channel{Risk: zs[i], Loss: losses[i], Delay: delays[i], Rate: rates[i]}
	}
	if err := set.Validate(); err != nil {
		log.Fatal(err)
	}

	// Policy: the chance an adversary reads any given symbol must be below
	// 1%. Find the cheapest κ (best rate comes from small μ; fix μ = κ+1
	// for one share of loss headroom) that meets it.
	const maxRisk = 0.01
	fmt.Printf("\nconfidentiality target: Z(p) < %.2f%%\n", maxRisk*100)
	for kappa := 1.0; kappa <= 4; kappa++ {
		mu := kappa + 1
		sched, err := remicss.OptimizeScheduleAtMaxRate(set, kappa, mu, remicss.ObjectiveRisk, remicss.ScheduleOptions{})
		if err != nil {
			log.Fatal(err)
		}
		risk := sched.Risk(set)
		rate, err := set.OptimalRate(mu)
		if err != nil {
			log.Fatal(err)
		}
		ok := "rejected"
		if risk < maxRisk {
			ok = "MEETS TARGET"
		}
		fmt.Printf("  κ=%.0f μ=%.0f: risk %.5f, rate %6.0f sym/s  -> %s\n", kappa, mu, risk, rate, ok)
		if risk < maxRisk {
			fmt.Println("\nchosen schedule:")
			for _, a := range sched.Support() {
				fmt.Printf("  p%v = %.4f\n", a, sched[a])
			}
			fmt.Printf("loss with this schedule: %.6f; delay %.1fms\n",
				sched.Loss(set), sched.Delay(set)*1e3)
			return
		}
	}
	fmt.Println("no κ <= 4 meets the target; consider more channels or lower-risk paths")
}
