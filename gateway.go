package remicss

import (
	"remicss/internal/gateway"
)

// Gateway facade: aliases over internal/gateway so applications can
// multiplex many independent sessions over one shared pool of UDP sockets
// — the multi-tenant arrangement where per-session sockets, goroutines,
// and syscalls would otherwise be the scaling ceiling — without importing
// internal packages.

// Gateway is the receiving half of a session gateway: a sharded session
// table over one UDPListener, routing every incoming datagram to its
// session by the session ID in the v2 wire header. Its Dispatch path is
// lock-free and copy-free.
type Gateway = gateway.Server

// GatewayConfig configures a Gateway (shard count, tenant cardinality
// cap, metrics registry, sessionless fallback for v1 traffic).
type GatewayConfig = gateway.ServerConfig

// GatewaySession is one registered session: the routing entry datagrams
// carrying its ID are dispatched to. Close unregisters it.
type GatewaySession = gateway.Session

// GatewayPool is the sending half of a session gateway: every session's
// sender shares one socket per channel, and their datagrams reach the
// kernel in batches (sendmmsg where available).
type GatewayPool = gateway.Pool

// GatewayPoolConfig configures a GatewayPool (coalescing threshold,
// pacing, metrics registry).
type GatewayPoolConfig = gateway.PoolConfig

// Gateway errors.
var (
	// ErrGatewayDuplicateSession means Gateway.Register was given a session
	// ID already in use.
	ErrGatewayDuplicateSession = gateway.ErrDuplicateSession
	// ErrGatewayZeroSession means session ID 0 was requested; 0 is the wire
	// format's "no session" value carried by v1 headers.
	ErrGatewayZeroSession = gateway.ErrZeroSession
)

// NewGateway builds a session-routing gateway server. Attach it to a
// UDPListener to start batched ingest, or feed it datagrams directly via
// Dispatch.
func NewGateway(cfg GatewayConfig) *Gateway { return gateway.NewServer(cfg) }

// DialGatewayPool opens one socket per address (the shared channel set)
// and builds the coalescing send queues over them. Build per-session
// senders with GatewayPool.NewSender, which stamps every share with the
// session's wire ID.
func DialGatewayPool(addrs []string, cfg GatewayPoolConfig) (*GatewayPool, error) {
	return gateway.DialPool(addrs, cfg)
}
