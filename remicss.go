// Package remicss models, optimizes, and implements multichannel secret
// sharing protocols, reproducing "Modeling Privacy and Tradeoffs in
// Multichannel Secret Sharing Protocols" (Pohly & McDaniel, DSN 2016).
//
// # Model
//
// A channel set describes the available network paths; each Channel carries
// the quadruple (Risk, Loss, Delay, Rate). Protocol behavior is a share
// Schedule — a distribution p(k, M) over thresholds and channel subsets —
// summarized by the average threshold κ (privacy) and multiplicity μ
// (redundancy/cost):
//
//	set := remicss.ChannelSet{
//	    {Risk: 0.2, Loss: 0.01, Delay: 3 * time.Millisecond, Rate: 1000},
//	    {Risk: 0.1, Loss: 0.02, Delay: 5 * time.Millisecond, Rate: 2000},
//	    {Risk: 0.3, Loss: 0.005, Delay: time.Millisecond, Rate: 500},
//	}
//	rc, _ := set.OptimalRate(2)                 // Theorem 4
//	sched, _ := remicss.OptimizeScheduleAtMaxRate(set, 1.5, 2,
//	    remicss.ObjectiveRisk, remicss.ScheduleOptions{})
//	fmt.Println(rc, sched.Risk(set))
//
// Closed forms and theorems from the paper are methods on ChannelSet
// (MaxPrivacyRisk, MinLoss, MinDelay, MaxRate, OptimalRate, MuForRate,
// FullUtilizationMaxMu); the Section IV-B and IV-D linear programs are
// OptimizeSchedule and OptimizeScheduleAtMaxRate.
//
// # Protocol
//
// NewSender and NewReceiver implement the ReMICSS reference protocol over
// any transport satisfying Link. Two transports ship with the library: the
// deterministic virtual-time network emulator (for experiments —
// remicss/internal is reachable only through this facade's re-exports) and
// real UDP sockets via DialUDP/ListenUDP.
//
// # Risk estimation
//
// The risk vector ẑ consumed by the model can be estimated from per-channel
// observations with the HMM filter in RiskModel (Årnes et al., the paper's
// reference technique).
package remicss

import (
	"io"
	"math/rand" //lint:allow insecure-rand facade re-exports seedable choosers for simulation; share entropy defaults to crypto/rand
	"time"

	"remicss/internal/core"
	"remicss/internal/leakage"
	"remicss/internal/lp"
	"remicss/internal/remicss"
	"remicss/internal/risk"
	"remicss/internal/schedule"
	"remicss/internal/sharing"
)

// Channel is one network path's (z, l, d, r) quadruple.
type Channel = core.Channel

// ChannelSet is an ordered set of disjoint channels; bitmask subsets index
// into it. All model results (Theorems 1–5, extremal metrics) are methods
// on this type.
type ChannelSet = core.Set

// Assignment is one (threshold, channel-subset) protocol choice.
type Assignment = core.Assignment

// Schedule is a share schedule: the distribution p(k, M) over assignments.
type Schedule = core.Schedule

// Model errors re-exported for errors.Is.
var (
	ErrInvalidChannel  = core.ErrInvalidChannel
	ErrInvalidParams   = core.ErrInvalidParams
	ErrInvalidSchedule = core.ErrInvalidSchedule
	ErrInfeasible      = schedule.ErrInfeasible
	// ErrIterationLimit marks an LP solve abandoned at the simplex
	// iteration cap; the wrapped error text carries the cap.
	ErrIterationLimit = lp.ErrIterationLimit
)

// Objective selects which property a schedule optimization minimizes.
type Objective = schedule.Objective

// Schedule objectives: Z(p), L(p), D(p).
const (
	ObjectiveRisk  = schedule.ObjectiveRisk
	ObjectiveLoss  = schedule.ObjectiveLoss
	ObjectiveDelay = schedule.ObjectiveDelay
)

// ScheduleOptions modifies schedule optimization; Limited restricts the
// choice set per Section IV-E for MICSS-style fixed-adversary threat
// models.
type ScheduleOptions = schedule.Options

// OptimizeSchedule solves the Section IV-B linear program: the share
// schedule minimizing the objective subject to average threshold kappa and
// multiplicity mu.
func OptimizeSchedule(set ChannelSet, kappa, mu float64, obj Objective, opts ScheduleOptions) (Schedule, error) {
	return schedule.Optimize(set, kappa, mu, obj, opts)
}

// OptimizeScheduleAtMaxRate solves the Section IV-D linear program: the
// same minimization constrained to schedules that achieve the optimal
// multichannel rate R_C for mu.
func OptimizeScheduleAtMaxRate(set ChannelSet, kappa, mu float64, obj Objective, opts ScheduleOptions) (Schedule, error) {
	return schedule.OptimizeAtMaxRate(set, kappa, mu, obj, opts)
}

// EnumerateAssignments lists every valid (k, M) for an n-channel set.
func EnumerateAssignments(n int) []Assignment {
	return core.EnumerateAssignments(n)
}

// ScheduleGenConfig tunes sampled/pruned candidate generation for large
// channel sets: the zero value selects documented defaults. Set it on
// ScheduleOptions.Generate to force generation below the exact-enumeration
// cap, or pass it through OptimizeScheduleLarge.
type ScheduleGenConfig = core.GenConfig

// OptimizeScheduleLarge solves the Section IV-B program for channel sets
// far beyond the exact-enumeration cap (hundreds of channels). Candidates
// come from greedy, sampled, and dominance-pruned subset generation, so the
// optimum is approximate — within the bound documented in DESIGN §11 of the
// exhaustive optimum where both are computable. The returned schedule is
// compacted onto the channels its support uses; members maps its local
// indices back to ascending indices into set.
func OptimizeScheduleLarge(set ChannelSet, kappa, mu float64, obj Objective, opts ScheduleOptions) (sched Schedule, members []int, err error) {
	return schedule.OptimizeLarge(set, kappa, mu, obj, opts)
}

// ScheduleCache memoizes optimized share schedules keyed by quantized
// channel state, backed by a warm-started incremental simplex solver — the
// cached/warm/cold solve path used by LP re-solving failover
// (ResolveSchedule) and adaptive retuning. Safe for concurrent use; the hit
// path is lock- and allocation-free.
type ScheduleCache = schedule.Cache

// ScheduleCacheConfig tunes a ScheduleCache: the quantization grid, the
// entry bound, the solve Options, and the observability sinks.
type ScheduleCacheConfig = schedule.CacheConfig

// SolveTier reports how a ScheduleCache resolved one request, cheapest
// first: cached lookup, warm-started re-solve, cold solve. Carried by the
// schedule-resolved trace event.
type SolveTier = schedule.SolveTier

// The schedule solve tiers.
const (
	SolveTierCached = schedule.TierCached
	SolveTierWarm   = schedule.TierWarm
	SolveTierCold   = schedule.TierCold
)

// NewScheduleCache builds a schedule cache.
func NewScheduleCache(cfg ScheduleCacheConfig) *ScheduleCache {
	return schedule.NewCache(cfg)
}

// ScheduleSensitivity reports the shadow prices of the κ and μ constraints
// at the Section IV-B optimum: the marginal change of the optimal objective
// per unit of each parameter. For ObjectiveRisk, dKappa is the (negative)
// price of privacy — how much risk one more unit of average threshold buys
// at this operating point.
func ScheduleSensitivity(set ChannelSet, kappa, mu float64, obj Objective, opts ScheduleOptions) (dKappa, dMu float64, err error) {
	return schedule.Sensitivity(set, kappa, mu, obj, opts)
}

// Protocol types re-exported from the reference implementation.
type (
	// Link is one unidirectional channel; implemented by the UDP transport
	// and the test emulator.
	Link = remicss.Link
	// Chooser picks (k, M) per symbol.
	Chooser = remicss.Chooser
	// Sender is the sending half of the protocol.
	Sender = remicss.Sender
	// SenderConfig configures a Sender.
	SenderConfig = remicss.SenderConfig
	// SenderStats counts sender activity.
	SenderStats = remicss.SenderStats
	// Receiver reassembles symbols from shares.
	Receiver = remicss.Receiver
	// ReceiverConfig configures a Receiver.
	ReceiverConfig = remicss.ReceiverConfig
	// ReceiverStats counts receiver activity.
	ReceiverStats = remicss.ReceiverStats
	// FixedChooser always uses one (k, M).
	FixedChooser = remicss.FixedChooser
	// HealthState is one state of the per-channel health machine
	// (healthy → suspect → down → probing).
	HealthState = remicss.HealthState
	// HealthConfig tunes the channel health tracker (EWMA weight,
	// state thresholds, probe backoff).
	HealthConfig = remicss.HealthConfig
	// HealthTracker maintains per-channel failure EWMAs and the failover
	// state machine consulted by NewHealthChooser.
	HealthTracker = remicss.HealthTracker
	// HealthOption configures a health chooser (see ResolveSchedule).
	HealthOption = remicss.HealthOption
)

// The channel health states, in escalation order.
const (
	// HealthHealthy: the channel carries traffic normally.
	HealthHealthy = remicss.HealthHealthy
	// HealthSuspect: elevated failure EWMA; still scheduled.
	HealthSuspect = remicss.HealthSuspect
	// HealthDown: excluded from the share schedule until a probe is due.
	HealthDown = remicss.HealthDown
	// HealthProbing: probe traffic admitted; outcomes decide recovery.
	HealthProbing = remicss.HealthProbing
)

// Protocol errors re-exported for errors.Is.
var (
	ErrBackpressure = remicss.ErrBackpressure
	ErrNoLinks      = remicss.ErrNoLinks
)

// NewSender builds a protocol sender over links.
func NewSender(cfg SenderConfig, links []Link) (*Sender, error) {
	return remicss.NewSender(cfg, links)
}

// NewReceiver builds a protocol receiver.
func NewReceiver(cfg ReceiverConfig) (*Receiver, error) {
	return remicss.NewReceiver(cfg)
}

// NewDynamicChooser builds the paper's dynamic share schedule for targets
// kappa and mu: first-m-ready channel selection with dithered (k, m).
func NewDynamicChooser(kappa, mu float64, rng *rand.Rand) (Chooser, error) {
	return remicss.NewDynamicChooser(kappa, mu, rng)
}

// NewStaticChooser samples assignments i.i.d. from an explicit schedule,
// e.g. an LP optimum.
func NewStaticChooser(sched Schedule, n int, rng *rand.Rand) (Chooser, error) {
	return remicss.NewStaticChooser(sched, n, rng)
}

// NewHealthTracker builds a channel health tracker for n channels: the
// per-channel failure EWMA and healthy → suspect → down → probing state
// machine that drives failover. clock supplies the probe timebase;
// metrics (may be nil) receives the remicss_channel_* series; trace (may
// be nil) receives state-change and probe events.
func NewHealthTracker(cfg HealthConfig, n int, clock func() time.Duration, metrics *MetricsRegistry, trace *EventTrace) (*HealthTracker, error) {
	return remicss.NewHealthTracker(cfg, n, clock, metrics, trace)
}

// NewHealthChooser builds the failover-aware dynamic chooser: shares are
// dithered around (kappa, mu) like NewDynamicChooser, but placed only on
// channels the tracker deems usable, clamping the multiplicity — never
// the threshold, which stays at or above ⌊κ⌋ — when channels are down.
func NewHealthChooser(kappa, mu float64, tracker *HealthTracker, rng *rand.Rand, opts ...HealthOption) (Chooser, error) {
	return remicss.NewHealthChooser(kappa, mu, tracker, rng, opts...)
}

// ResolveSchedule switches a health chooser from multiplicity clamping to
// LP re-solving: on every usable-set change the Section IV-B program is
// re-solved over the surviving channels (with the Section IV-E limited
// constraint keeping thresholds at or above ⌊κ⌋) and shares are placed by
// sampling the new optimum. Re-solves route through a ScheduleCache wired
// to the tracker's registry, trace, and clock, so revisited usable sets
// (flapping links, recovery) hit the cache and fresh ones warm-start the
// retained simplex basis; failures surface as
// remicss_chooser_resolve_errors_total and a resolve-error trace event
// while the chooser falls back to clamping.
func ResolveSchedule(set ChannelSet, obj Objective) HealthOption {
	return remicss.Resolve(set, obj)
}

// RiskGroup is one shared-risk group of the correlated-adversary model: a
// set of channels (bitmask) that share infrastructure, with common-cause
// correlation factors for eavesdropping (RiskRho) and loss (LossRho). At
// rho = 0 the group is inert; at rho = 1 one compromise observes every
// member.
type RiskGroup = core.RiskGroup

// Correlation is a correlated-adversary model: disjoint shared-risk groups
// layered over the per-channel marginals. The zero value is the paper's
// independence assumption; ChannelSet's Correlated* methods and the
// schedule optimizers accept it to price shared conduits into risk and
// loss. Marginals are preserved exactly — only joint behavior changes.
type Correlation = core.Correlation

// ErrInvalidCorrelation marks a correlation model that fails validation
// (overlapping groups, out-of-range members, or rho outside [0, 1]).
var ErrInvalidCorrelation = core.ErrInvalidCorrelation

// ResolveScheduleCorrelated is ResolveSchedule under a correlated-adversary
// model: every re-solve prices the shared-risk groups into the LP objective
// and adds per-group exposure rows, with the model projected onto the
// surviving channels on each failover. Cache keys carry the quantized
// correlation state, so correlated and independent schedules never collide.
func ResolveScheduleCorrelated(set ChannelSet, corr Correlation, obj Objective) HealthOption {
	return remicss.ResolveCorrelated(set, corr, obj)
}

// LeakageConfig parameterizes the statistical-leakage model: the share
// field width, the per-observed-share partial leakage λ in bits, and the
// adversary-advantage budget that arms privacy alerts.
type LeakageConfig = leakage.Config

// LeakageScore is one symbol's leakage verdict: its exposure, its
// advantage bound ε, and whether the bound broke the budget.
type LeakageScore = leakage.Score

// LeakageStats aggregates a LeakageMeter's observations: symbol and alert
// counts, exposure and advantage extrema, and per-channel observed-share
// counts.
type LeakageStats = leakage.Stats

// LeakageMeter scores share-exposure events against the leakage-aware
// advantage bound, exporting the remicss_privacy_* metric series and
// privacy-alert trace events. Feed it per-symbol observation distributions
// (RecordSymbol / RecordSymbolPMF) and per-channel observed-share counts
// (RecordObserved).
type LeakageMeter = leakage.Meter

// NewLeakageMeter builds a leakage meter for n channels. metrics (may be
// nil) receives the remicss_privacy_* series; trace (may be nil) receives
// privacy-alert events. Panics if cfg fails validation, mirroring the
// metrics-registry constructors.
func NewLeakageMeter(cfg LeakageConfig, channels int, metrics *MetricsRegistry, trace *EventTrace) *LeakageMeter {
	return leakage.NewMeter(cfg, channels, metrics, trace)
}

// LeakageAdvantageBound bounds the adversary's advantage ε for one symbol
// shared k-of-len(probs), where probs are independent per-share observation
// probabilities. With λ = 0 it reduces to the plain exposure P(X ≥ k).
func LeakageAdvantageBound(probs []float64, k int, cfg LeakageConfig) float64 {
	return leakage.AdvantageBound(probs, k, cfg)
}

// CorrelatedLeakageAdvantageBound is LeakageAdvantageBound under a
// correlated-adversary model: the observation distribution over the
// channels in mask is the correlated mixture rather than the independent
// product.
func CorrelatedLeakageAdvantageBound(set ChannelSet, corr Correlation, k int, mask uint32, cfg LeakageConfig) float64 {
	return leakage.CorrelatedAdvantageBound(set, corr, k, mask, cfg)
}

// SharingScheme splits symbols into threshold shares and reconstructs them.
type SharingScheme = sharing.Scheme

// NewSharingScheme returns the production scheme: replication at k=1, XOR
// at k=m, Shamir otherwise. r may be nil to use crypto/rand.
func NewSharingScheme(r io.Reader) SharingScheme {
	return sharing.NewAuto(r)
}

// Split shares a secret with threshold k of m using the production scheme
// and crypto/rand randomness.
func Split(secret []byte, k, m int) ([]sharing.Share, error) {
	return sharing.NewAuto(nil).Split(secret, k, m)
}

// Combine reconstructs a secret from at least k shares of a (k, m) split.
func Combine(shares []sharing.Share, k, m int) ([]byte, error) {
	return sharing.NewAuto(nil).Combine(shares, k, m)
}

// Share is one share of a split secret.
type Share = sharing.Share

// ErrShareForged marks shares failing authentication under an
// authenticated scheme.
var ErrShareForged = sharing.ErrShareForged

// NewAuthenticatedScheme wraps a scheme with per-share HMAC-SHA256 tags
// under a pre-shared key, so corrupted or forged shares are detected before
// reconstruction instead of silently yielding garbage. Confidentiality
// remains information-theoretic; integrity is computational.
func NewAuthenticatedScheme(inner SharingScheme, key []byte) (SharingScheme, error) {
	return sharing.NewAuthenticated(inner, key)
}

// RiskModel is the two-state HMM used to estimate per-channel eavesdropping
// risk from observations (the z vector of the model).
type RiskModel = risk.Model

// DefaultRiskModel returns a reasonable channel-compromise HMM.
func DefaultRiskModel() RiskModel { return risk.DefaultModel() }

// EstimateRisks derives ẑ from one observation sequence per channel.
func EstimateRisks(m RiskModel, obsPerChannel [][]int) ([]float64, error) {
	return risk.EstimateRisks(m, obsPerChannel)
}

// Params bundles the protocol's tunable parameters with helpers for
// reasoning about the tradeoff they select.
type Params struct {
	// Kappa is the average threshold: κ-1 share interceptions are tolerated
	// without disclosure.
	Kappa float64
	// Mu is the average multiplicity: μ-κ share losses are tolerated, and
	// n-μ channels remain free for parallelism.
	Mu float64
}

// Validate checks 1 <= κ <= μ <= n against the set.
func (p Params) Validate(set ChannelSet) error {
	return set.CheckParams(p.Kappa, p.Mu)
}

// Profile evaluates the four overall network properties this parameter
// choice can achieve on the set: the optimal rate (Theorem 4) and the LP
// optima for risk, loss, and delay at that rate.
func (p Params) Profile(set ChannelSet) (Profile, error) {
	if err := p.Validate(set); err != nil {
		return Profile{}, err
	}
	rate, err := set.OptimalRate(p.Mu)
	if err != nil {
		return Profile{}, err
	}
	prof := Profile{Params: p, Rate: rate}
	for _, obj := range []Objective{ObjectiveRisk, ObjectiveLoss, ObjectiveDelay} {
		sched, err := OptimizeScheduleAtMaxRate(set, p.Kappa, p.Mu, obj, ScheduleOptions{})
		if err != nil {
			return Profile{}, err
		}
		switch obj {
		case ObjectiveRisk:
			prof.Risk = sched.Risk(set)
		case ObjectiveLoss:
			prof.Loss = sched.Loss(set)
		case ObjectiveDelay:
			prof.Delay = time.Duration(sched.Delay(set) * float64(time.Second))
		}
	}
	return prof, nil
}

// Profile is the privacy/performance envelope of a parameter choice: the
// optimal rate together with the best achievable risk, loss, and delay at
// that rate (each optimized independently).
type Profile struct {
	Params Params
	// Rate is R_C in symbols per second.
	Rate float64
	// Risk is the minimum schedule risk Z(p) at maximum rate.
	Risk float64
	// Loss is the minimum schedule loss L(p) at maximum rate.
	Loss float64
	// Delay is the minimum schedule delay D(p) at maximum rate.
	Delay time.Duration
}
