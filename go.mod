module remicss

go 1.22
