package remicss_test

import (
	"errors"
	"testing"
	"time"

	"remicss"
)

func TestDisjointChannelsFacade(t *testing.T) {
	g, err := remicss.NewNetworkGraph([]remicss.NetworkEdge{
		{From: "s", To: "a", Risk: 0.1, Loss: 0.01, Delay: time.Millisecond, Rate: 100},
		{From: "a", To: "t", Risk: 0.1, Loss: 0.01, Delay: time.Millisecond, Rate: 100},
		{From: "s", To: "b", Risk: 0.2, Loss: 0.02, Delay: 2 * time.Millisecond, Rate: 50},
		{From: "b", To: "t", Risk: 0.2, Loss: 0.02, Delay: 2 * time.Millisecond, Rate: 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	set, paths, err := remicss.DisjointChannels(g, "s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || len(paths) != 2 {
		t.Fatalf("channels = %d, paths = %d", len(set), len(paths))
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	// Derived channels feed directly into the model.
	if _, err := set.OptimalRate(1.5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := remicss.DisjointChannels(g, "t", "s"); !errors.Is(err, remicss.ErrNoPath) {
		t.Errorf("reverse direction: got %v, want ErrNoPath", err)
	}
}

func TestAdaptControllerFacade(t *testing.T) {
	ctrl, err := remicss.NewAdaptController(remicss.AdaptConfig{
		N: 3, TargetLoss: 0.01, MaxRisk: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.ObserveLoss(0.5)
	_, mu := ctrl.Params()
	if mu <= 1 {
		t.Errorf("mu = %v after loss, want raised", mu)
	}
}

func TestBlakleySchemeFacade(t *testing.T) {
	s := remicss.NewBlakleyScheme(nil)
	shares, err := s.Split([]byte("facade"), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Combine(shares[:2], 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "facade" {
		t.Errorf("got %q", got)
	}
}

func TestChannelProbingFacade(t *testing.T) {
	clock := func() time.Duration { return time.Second }
	sink, err := remicss.NewChannelSink(clock, time.Second, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sink.Estimate(0.1); err == nil {
		t.Error("estimate with no probes succeeded")
	}
}
