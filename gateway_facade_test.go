package remicss_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"remicss"
)

// TestGatewayFacade multiplexes several sessions over one shared socket
// pool through the root API alone: NewGateway + ListenUDP on the receiving
// side, DialGatewayPool + per-session senders on the sending side, every
// session reconstructing exactly its own payloads.
func TestGatewayFacade(t *testing.T) {
	listener, err := remicss.ListenUDP([]string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()

	gw := remicss.NewGateway(remicss.GatewayConfig{Shards: 16})
	const sessions = 3
	const perSession = 8
	type sessState struct {
		mu        sync.Mutex
		delivered map[string]bool
	}
	states := make([]*sessState, sessions)
	for i := range states {
		st := &sessState{delivered: make(map[string]bool)}
		states[i] = st
		recv, err := remicss.NewReceiver(remicss.ReceiverConfig{
			Scheme: remicss.NewSharingScheme(nil),
			Clock:  remicss.WallClock,
			OnSymbol: func(_ uint64, payload []byte, _ time.Duration) {
				st.mu.Lock()
				st.delivered[string(payload)] = true
				st.mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gw.Register(uint64(i+1), fmt.Sprintf("tenant-%d", i%2), recv.HandleDatagram); err != nil {
			t.Fatal(err)
		}
	}
	gw.Attach(listener)

	pool, err := remicss.DialGatewayPool(listener.Addrs(), remicss.GatewayPoolConfig{Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for i := 0; i < sessions; i++ {
		snd, err := pool.NewSender(remicss.SenderConfig{
			Scheme:  remicss.NewSharingScheme(nil),
			Chooser: remicss.FixedChooser{K: 2, Mask: 1<<3 - 1},
			Clock:   remicss.WallClock,
		}, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		payloads := make([][]byte, perSession)
		for j := range payloads {
			payloads[j] = []byte(fmt.Sprintf("session-%d-payload-%d", i+1, j))
		}
		if _, err := snd.SendBatch(payloads); err != nil {
			t.Fatal(err)
		}
	}
	pool.Flush()

	deadline := time.Now().Add(5 * time.Second)
	for i, st := range states {
		for {
			st.mu.Lock()
			n := len(st.delivered)
			st.mu.Unlock()
			if n == perSession {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("session %d delivered %d of %d symbols", i+1, n, perSession)
			}
			time.Sleep(5 * time.Millisecond)
		}
		st.mu.Lock()
		for j := 0; j < perSession; j++ {
			want := fmt.Sprintf("session-%d-payload-%d", i+1, j)
			if !st.delivered[want] {
				t.Errorf("session %d missing %q", i+1, want)
			}
		}
		st.mu.Unlock()
	}
}

// TestGatewayFacadeErrors pins the error aliases: session ID 0 is
// reserved, duplicate IDs are rejected with the sentinel.
func TestGatewayFacadeErrors(t *testing.T) {
	gw := remicss.NewGateway(remicss.GatewayConfig{Shards: 4})
	handle := func([]byte) {}
	if _, err := gw.Register(0, "t", handle); !errors.Is(err, remicss.ErrGatewayZeroSession) {
		t.Errorf("zero-session error = %v, want ErrGatewayZeroSession", err)
	}
	if _, err := gw.Register(7, "t", handle); err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Register(7, "t", handle); !errors.Is(err, remicss.ErrGatewayDuplicateSession) {
		t.Errorf("duplicate error = %v, want ErrGatewayDuplicateSession", err)
	}
}
