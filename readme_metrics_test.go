package remicss_test

import (
	"math/rand"
	"os"
	"regexp"
	"sort"
	"testing"
	"time"

	"remicss"
	"remicss/internal/netem"
)

// buildRepresentativeRegistry instantiates every instrumented component —
// sender, receiver, health tracker, UDP transport both sides, and an
// emulated link — against one registry, so Gather returns every series
// name the library can register.
func buildRepresentativeRegistry(t *testing.T) *remicss.MetricsRegistry {
	t.Helper()
	reg := remicss.NewMetricsRegistry()

	listener, err := remicss.ListenUDP([]string{"127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()
	listener.Instrument(reg)
	links, err := remicss.DialUDP(listener.Addrs(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	udp := links[0].(*remicss.UDPLink)
	defer udp.Close()
	udp.Instrument(reg, 0)

	if _, err := remicss.NewReceiver(remicss.ReceiverConfig{
		Scheme:   remicss.NewSharingScheme(nil),
		Clock:    remicss.WallClock,
		OnSymbol: func(uint64, []byte, time.Duration) {},
		Metrics:  reg,
	}); err != nil {
		t.Fatal(err)
	}
	tracker, err := remicss.NewHealthTracker(remicss.HealthConfig{}, 1, remicss.WallClock, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A resolve-mode chooser registers the schedule-cache and warm-solve
	// series plus the chooser's resolve-error counter.
	resolveSet := remicss.ChannelSet{{Risk: 0.2, Loss: 0.01, Delay: time.Millisecond, Rate: 1000}}
	if _, err := remicss.NewHealthChooser(1, 1, tracker, rand.New(rand.NewSource(2)),
		remicss.ResolveSchedule(resolveSet, remicss.ObjectiveRisk)); err != nil {
		t.Fatal(err)
	}
	chooser, err := remicss.NewDynamicChooser(1, 1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := remicss.NewSender(remicss.SenderConfig{
		Scheme:  remicss.NewSharingScheme(nil),
		Chooser: chooser,
		Clock:   remicss.WallClock,
		Metrics: reg,
		Health:  tracker,
	}, links); err != nil {
		t.Fatal(err)
	}

	eng := netem.NewEngine()
	link, err := netem.NewLink(eng, netem.LinkConfig{Rate: 1000}, rand.New(rand.NewSource(1)), func([]byte, time.Duration) {})
	if err != nil {
		t.Fatal(err)
	}
	link.Instrument(reg, nil, 0)

	// The leakage meter registers the remicss_privacy_* series eagerly at
	// construction, before any symbol is scored.
	remicss.NewLeakageMeter(remicss.LeakageConfig{}, 1, reg, nil)

	// The session gateway registers the remicss_gateway_* series: the
	// dispatch-path drop counters at construction, the per-tenant pair (and
	// the cap counter) on first registration under a tenant.
	gw := remicss.NewGateway(remicss.GatewayConfig{Shards: 4, Metrics: reg})
	if _, err := gw.Register(1, "tenant-a", func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	return reg
}

// seriesNameRe matches concrete series names in README prose/tables;
// wildcard mentions like `remicss_sender_*` deliberately do not match.
var seriesNameRe = regexp.MustCompile("`((?:remicss|udp|netem|lp)_[a-z0-9_]+)(?:\\{[a-z]+\\})?`")

// TestReadmeMetricTableMatchesRegistry diffs the README metric reference
// against a live registry covering every instrumented component, in both
// directions: a series the code registers must be documented, and a
// documented series must exist in the code.
func TestReadmeMetricTableMatchesRegistry(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]bool{}
	for _, m := range seriesNameRe.FindAllStringSubmatch(string(readme), -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no series names found in README.md — metric reference table missing?")
	}

	registered := map[string]bool{}
	for _, s := range buildRepresentativeRegistry(t).Gather() {
		registered[s.Name] = true
	}
	if len(registered) == 0 {
		t.Fatal("representative registry is empty")
	}

	var missing, stale []string
	for name := range registered {
		if !documented[name] {
			missing = append(missing, name)
		}
	}
	for name := range documented {
		if !registered[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	for _, name := range missing {
		t.Errorf("series %s is registered but missing from the README metric reference", name)
	}
	for _, name := range stale {
		t.Errorf("series %s is documented in README but no component registers it", name)
	}
}
