package remicss_test

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"remicss"
)

func testSet() remicss.ChannelSet {
	return remicss.ChannelSet{
		{Risk: 0.30, Loss: 0.01, Delay: 2500 * time.Microsecond, Rate: 446},
		{Risk: 0.10, Loss: 0.005, Delay: 250 * time.Microsecond, Rate: 1786},
		{Risk: 0.20, Loss: 0.01, Delay: 12500 * time.Microsecond, Rate: 5357},
		{Risk: 0.25, Loss: 0.02, Delay: 5 * time.Millisecond, Rate: 5804},
		{Risk: 0.15, Loss: 0.03, Delay: 500 * time.Microsecond, Rate: 8929},
	}
}

func TestFacadeModelMethods(t *testing.T) {
	set := testSet()
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := set.MaxPrivacyRisk(); got <= 0 || got >= 1 {
		t.Errorf("MaxPrivacyRisk = %v", got)
	}
	rc, err := set.OptimalRate(2.5)
	if err != nil {
		t.Fatal(err)
	}
	if rc <= 0 {
		t.Errorf("OptimalRate = %v", rc)
	}
	mu, err := set.MuForRate(rc)
	if err != nil {
		t.Fatal(err)
	}
	if mu < 2.49 || mu > 2.51 {
		t.Errorf("MuForRate roundtrip = %v", mu)
	}
}

func TestFacadeScheduleOptimization(t *testing.T) {
	set := testSet()
	sched, err := remicss.OptimizeSchedule(set, 2, 3, remicss.ObjectiveRisk, remicss.ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Kappa(); got < 1.99 || got > 2.01 {
		t.Errorf("kappa = %v", got)
	}
	atRate, err := remicss.OptimizeScheduleAtMaxRate(set, 2, 3, remicss.ObjectiveLoss, remicss.ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The max-rate schedule is more constrained, so its loss optimum is no
	// better than the unconstrained loss optimum for the same parameters.
	free, err := remicss.OptimizeSchedule(set, 2, 3, remicss.ObjectiveLoss, remicss.ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if atRate.Loss(set) < free.Loss(set)-1e-9 {
		t.Errorf("constrained loss %v better than unconstrained %v", atRate.Loss(set), free.Loss(set))
	}
	// Invalid parameters surface the model's error.
	if _, err := remicss.OptimizeSchedule(set, 0.2, 3, remicss.ObjectiveRisk, remicss.ScheduleOptions{}); !errors.Is(err, remicss.ErrInvalidParams) {
		t.Errorf("got %v, want ErrInvalidParams", err)
	}
}

func TestFacadeSplitCombine(t *testing.T) {
	secret := []byte("facade roundtrip")
	shares, err := remicss.Split(secret, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := remicss.Combine(shares[1:3], 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Errorf("Combine = %q", got)
	}
}

func TestFacadeRiskEstimation(t *testing.T) {
	m := remicss.DefaultRiskModel()
	zs, err := remicss.EstimateRisks(m, [][]int{{0, 0, 0}, {2, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if zs[0] >= zs[1] {
		t.Errorf("risk ordering wrong: %v", zs)
	}
}

func TestParamsProfile(t *testing.T) {
	set := testSet()
	prof, err := remicss.Params{Kappa: 2, Mu: 3}.Profile(set)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Rate <= 0 {
		t.Errorf("profile rate = %v", prof.Rate)
	}
	if prof.Risk <= 0 || prof.Risk >= 1 {
		t.Errorf("profile risk = %v", prof.Risk)
	}
	if prof.Loss < 0 || prof.Loss >= 1 {
		t.Errorf("profile loss = %v", prof.Loss)
	}
	if prof.Delay <= 0 {
		t.Errorf("profile delay = %v", prof.Delay)
	}
	// Raising kappa at fixed mu must not improve (lower) risk is false —
	// it improves privacy: risk decreases.
	prof2, err := remicss.Params{Kappa: 3, Mu: 3}.Profile(set)
	if err != nil {
		t.Fatal(err)
	}
	if prof2.Risk >= prof.Risk {
		t.Errorf("higher kappa did not reduce risk: %v >= %v", prof2.Risk, prof.Risk)
	}
	if _, err := (remicss.Params{Kappa: 0, Mu: 3}).Profile(set); !errors.Is(err, remicss.ErrInvalidParams) {
		t.Errorf("invalid params accepted: %v", err)
	}
}

func TestFacadeUDPSession(t *testing.T) {
	listener, err := remicss.ListenUDP([]string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()

	scheme := remicss.NewSharingScheme(rand.New(rand.NewSource(1)))
	var mu sync.Mutex
	received := make(map[uint64][]byte)
	recv, err := remicss.NewReceiver(remicss.ReceiverConfig{
		Scheme: scheme,
		Clock:  remicss.WallClock,
		OnSymbol: func(seq uint64, payload []byte, _ time.Duration) {
			mu.Lock()
			received[seq] = payload
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	listener.Serve(recv.HandleDatagram)

	links, err := remicss.DialUDP(listener.Addrs(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, l := range links {
			l.(*remicss.UDPLink).Close()
		}
	}()
	chooser, err := remicss.NewDynamicChooser(2, 3, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	snd, err := remicss.NewSender(remicss.SenderConfig{
		Scheme:  scheme,
		Chooser: chooser,
		Clock:   remicss.WallClock,
	}, links)
	if err != nil {
		t.Fatal(err)
	}
	const symbols = 20
	for i := 0; i < symbols; i++ {
		if err := snd.Send([]byte{byte(i), 0x55}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(received)
		mu.Unlock()
		if n == symbols {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("received %d of %d", n, symbols)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestDialUDPValidation(t *testing.T) {
	if _, err := remicss.DialUDP([]string{"127.0.0.1:9", "127.0.0.1:10"}, []float64{1}, 0); err == nil {
		t.Error("mismatched rates accepted")
	}
	if _, err := remicss.DialUDP([]string{"bad"}, nil, 0); err == nil {
		t.Error("bad address accepted")
	}
}

func TestScheduleSensitivityFacade(t *testing.T) {
	set := testSet()
	dK, dM, err := remicss.ScheduleSensitivity(set, 2, 3, remicss.ObjectiveRisk, remicss.ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Raising the threshold cannot worsen risk; raising multiplicity at
	// fixed threshold exposes more shares and cannot improve it.
	if dK > 1e-9 {
		t.Errorf("dRisk/dκ = %v, want <= 0", dK)
	}
	if dM < -1e-9 {
		t.Errorf("dRisk/dμ = %v, want >= 0", dM)
	}
}
