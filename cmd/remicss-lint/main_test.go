package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"remicss/internal/lint"
)

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}

// writeDirtyModule lays out a throwaway module whose root package (which
// DefaultAnalyzers treats as secret-bearing) imports math/rand and leaks it
// through an io.Reader return.
func writeDirtyModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module lintfixture\n\ngo 1.22\n",
		"fixture.go": `// Package lintfixture is a throwaway lint target.
package lintfixture

import (
	"io"
	"math/rand"
)

// Entropy returns a seeded randomness source.
func Entropy(seed int64) io.Reader {
	return rand.New(rand.NewSource(seed))
}
`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestRunCleanModule asserts the real repository lints clean with exit 0 —
// the acceptance gate for the annotation sweep.
func TestRunCleanModule(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go-list-backed lint run in -short mode")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", moduleRoot(t), "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed diagnostics:\n%s", stdout.String())
	}
}

// TestRunDirtyModule asserts violations produce exit 1 with file:line text
// diagnostics.
func TestRunDirtyModule(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go-list-backed lint run in -short mode")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", writeDirtyModule(t), "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[insecure-rand]") || !strings.Contains(out, "fixture.go:") {
		t.Errorf("diagnostics missing analyzer tag or file position:\n%s", out)
	}
}

// TestRunJSON asserts -json output decodes into []lint.Diagnostic.
func TestRunJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go-list-backed lint run in -short mode")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", writeDirtyModule(t), "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics decoded from -json output")
	}
	for _, d := range diags {
		if d.Analyzer == "" || d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

// TestRunSARIF asserts -sarif output is a SARIF 2.1.0 log whose results
// reference rules declared in the driver catalog.
func TestRunSARIF(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go-list-backed lint run in -short mode")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", writeDirtyModule(t), "-sarif", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("decoding -sarif output: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected log shape: version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if len(run.Results) == 0 {
		t.Fatal("no results in SARIF output for dirty module")
	}
	for _, r := range run.Results {
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Errorf("result %q has ruleIndex %d outside the rule catalog", r.RuleID, r.RuleIndex)
			continue
		}
		if got := run.Tool.Driver.Rules[r.RuleIndex].ID; got != r.RuleID {
			t.Errorf("ruleIndex %d resolves to %q, want %q", r.RuleIndex, got, r.RuleID)
		}
		if len(r.Locations) != 1 || r.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Errorf("result %q missing a located region", r.RuleID)
		}
	}
}

// TestRunBadFlag asserts usage errors exit 2.
func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
