// Command remicss-lint runs the repository's invariant analyzers
// (internal/lint) over Go packages and reports violations.
//
// Usage:
//
//	go run ./cmd/remicss-lint [-C dir] [-json] [-sarif] [packages ...]
//
// Packages default to ./... resolved in -C dir (default "."). Diagnostics
// print one per line as file:line:col: [analyzer] message, as a JSON array
// with -json, or as a SARIF 2.1.0 log with -sarif (for code-scanning
// uploads; -sarif wins when both are given). Exit status is 0 when the tree
// is clean, 1 when any diagnostic is reported, and 2 on loader or usage
// errors — which makes the command usable directly as a required CI step.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"remicss/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: it parses flags, loads the requested
// packages, runs the default analyzer suite, and renders diagnostics.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("remicss-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	sarifOut := fs.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log instead of text")
	dir := fs.String("C", ".", "resolve package patterns relative to this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	mod, err := lint.ModulePath(*dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := lint.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	analyzers := lint.DefaultAnalyzers(mod)
	diags := lint.Run(pkgs, analyzers)

	if *sarifOut {
		if err := lint.WriteSARIF(stdout, analyzers, diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else if *jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
