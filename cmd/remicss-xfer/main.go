// Command remicss-xfer transfers a file privately over multiple UDP
// channels using the ReMICSS protocol: every chunk is split into shares
// (threshold κ of μ) and no single channel ever carries enough to
// reconstruct the data.
//
// Receiver (prints the channel addresses to give the sender):
//
//	remicss-xfer recv -listen 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103 -out got.bin
//
// Sender:
//
//	remicss-xfer send -to 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103 \
//	    -kappa 2 -mu 3 -in secret.bin
//
// Transport is best-effort (the protocol's semantics): on lossy paths pick
// μ-κ redundancy accordingly. The receiver reports any missing chunks.
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"remicss"
)

// endOffset marks the end-of-stream symbol; its payload is the total file
// size.
const endOffset = ^uint64(0)

// buildScheme returns the sharing scheme, authenticated when a key is set.
func buildScheme(key string) (remicss.SharingScheme, error) {
	base := remicss.NewSharingScheme(nil)
	if key == "" {
		return base, nil
	}
	return remicss.NewAuthenticatedScheme(base, []byte(key))
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "remicss-xfer:", err)
		os.Exit(1)
	}
}

// startMetrics starts the observability endpoint when addr is non-empty,
// returning the registry and trace to wire into the session and a cleanup
// function (a no-op when metrics are disabled).
func startMetrics(addr string) (*remicss.MetricsRegistry, *remicss.EventTrace, func(), error) {
	if addr == "" {
		return nil, nil, func() {}, nil
	}
	reg := remicss.NewMetricsRegistry()
	trace := remicss.NewEventTrace(0)
	srv, err := remicss.StartMetricsServer(addr, reg, trace)
	if err != nil {
		return nil, nil, nil, err
	}
	fmt.Printf("metrics on http://%s/metrics\n", srv.Addr())
	return reg, trace, func() { srv.Close() }, nil
}

func run(args []string) error {
	if len(args) < 1 {
		return errors.New("usage: remicss-xfer {send|recv} [flags]")
	}
	switch args[0] {
	case "send":
		return send(args[1:])
	case "recv":
		return recv(args[1:])
	default:
		return fmt.Errorf("unknown mode %q (want send or recv)", args[0])
	}
}

func send(args []string) error {
	fs := flag.NewFlagSet("send", flag.ContinueOnError)
	var (
		to      = fs.String("to", "", "comma-separated receiver channel addresses")
		in      = fs.String("in", "", "file to send")
		kappa   = fs.Float64("kappa", 2, "average threshold κ")
		mu      = fs.Float64("mu", 3, "average multiplicity μ")
		chunk   = fs.Int("chunk", 1200, "chunk size in bytes")
		seed    = fs.Int64("seed", time.Now().UnixNano(), "randomness seed for the schedule dither")
		key     = fs.String("key", "", "pre-shared key: authenticate shares (HMAC) so tampering is detected")
		metrics = fs.String("metrics-addr", "", "serve /metrics, /metrics.json, /trace, and pprof on this address (e.g. 127.0.0.1:9090)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *to == "" || *in == "" {
		return errors.New("send requires -to and -in")
	}
	scheme, err := buildScheme(*key)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	addrs := strings.Split(*to, ",")
	links, err := remicss.DialUDP(addrs, nil, 0)
	if err != nil {
		return err
	}
	defer func() {
		for _, l := range links {
			l.(*remicss.UDPLink).Close()
		}
	}()

	reg, trace, closeMetrics, err := startMetrics(*metrics)
	if err != nil {
		return err
	}
	defer closeMetrics()
	if reg != nil {
		for i, l := range links {
			l.(*remicss.UDPLink).Instrument(reg, i)
		}
	}

	chooser, err := remicss.NewDynamicChooser(*kappa, *mu, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	snd, err := remicss.NewSender(remicss.SenderConfig{
		Scheme:  scheme,
		Chooser: chooser,
		Clock:   remicss.WallClock,
		Metrics: reg,
		Trace:   trace,
	}, links)
	if err != nil {
		return err
	}

	start := time.Now()
	sendSymbol := func(payload []byte) error {
		for {
			err := snd.Send(payload)
			if err == nil {
				return nil
			}
			if !errors.Is(err, remicss.ErrBackpressure) {
				return err
			}
			time.Sleep(time.Millisecond)
		}
	}
	for off := 0; off < len(data); off += *chunk {
		end := off + *chunk
		if end > len(data) {
			end = len(data)
		}
		payload := make([]byte, 8+end-off)
		binary.BigEndian.PutUint64(payload, uint64(off))
		copy(payload[8:], data[off:end])
		if err := sendSymbol(payload); err != nil {
			return fmt.Errorf("chunk at %d: %w", off, err)
		}
	}
	// End marker, sent a few times for loss resilience.
	marker := make([]byte, 16)
	binary.BigEndian.PutUint64(marker, endOffset)
	binary.BigEndian.PutUint64(marker[8:], uint64(len(data)))
	for i := 0; i < 5; i++ {
		if err := sendSymbol(marker); err != nil {
			return fmt.Errorf("end marker: %w", err)
		}
	}
	st := snd.Stats()
	fmt.Printf("sent %d bytes in %v: %d symbols, %d shares (κ=%g, μ=%g over %d channels)\n",
		len(data), time.Since(start).Round(time.Millisecond),
		st.SymbolsSent, st.SharesSent, *kappa, *mu, len(links))
	return nil
}

func recv(args []string) error {
	fs := flag.NewFlagSet("recv", flag.ContinueOnError)
	var (
		listen  = fs.String("listen", "", "comma-separated channel addresses to bind")
		out     = fs.String("out", "", "output file")
		timeout = fs.Duration("timeout", 60*time.Second, "give up after this long without completing")
		key     = fs.String("key", "", "pre-shared key matching the sender's -key")
		metrics = fs.String("metrics-addr", "", "serve /metrics, /metrics.json, /trace, and pprof on this address (e.g. 127.0.0.1:9090)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listen == "" || *out == "" {
		return errors.New("recv requires -listen and -out")
	}
	scheme, err := buildScheme(*key)
	if err != nil {
		return err
	}
	listener, err := remicss.ListenUDP(strings.Split(*listen, ","))
	if err != nil {
		return err
	}
	defer listener.Close()
	fmt.Printf("listening on %s\n", strings.Join(listener.Addrs(), ","))

	reg, trace, closeMetrics, err := startMetrics(*metrics)
	if err != nil {
		return err
	}
	defer closeMetrics()
	if reg != nil {
		listener.Instrument(reg)
	}

	var (
		mu       sync.Mutex
		chunks   = make(map[uint64][]byte)
		total    = uint64(0)
		sawEnd   = false
		received = 0
	)
	done := make(chan struct{}, 1)
	rcv, err := remicss.NewReceiver(remicss.ReceiverConfig{
		Scheme:  scheme,
		Clock:   remicss.WallClock,
		Metrics: reg,
		Trace:   trace,
		OnSymbol: func(_ uint64, payload []byte, _ time.Duration) {
			if len(payload) < 8 {
				return
			}
			off := binary.BigEndian.Uint64(payload)
			mu.Lock()
			defer mu.Unlock()
			if off == endOffset {
				if len(payload) >= 16 {
					total = binary.BigEndian.Uint64(payload[8:])
					sawEnd = true
				}
			} else if _, dup := chunks[off]; !dup {
				chunks[off] = append([]byte(nil), payload[8:]...)
				received += len(payload) - 8
			}
			if sawEnd && uint64(received) >= total {
				select {
				case done <- struct{}{}:
				default:
				}
			}
		},
	})
	if err != nil {
		return err
	}
	listener.Serve(rcv.HandleDatagram)

	select {
	case <-done:
	case <-time.After(*timeout):
		mu.Lock()
		defer mu.Unlock()
		return fmt.Errorf("timed out with %d/%d bytes (end marker seen: %v)", received, total, sawEnd)
	}

	mu.Lock()
	defer mu.Unlock()
	buf := make([]byte, total)
	var written uint64
	for off, data := range chunks {
		if off+uint64(len(data)) > total {
			return fmt.Errorf("chunk at %d overruns total %d", off, total)
		}
		copy(buf[off:], data)
		written += uint64(len(data))
	}
	if written != total {
		return fmt.Errorf("missing %d bytes of %d", total-written, total)
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("received %d bytes into %s (%d chunks)\n", total, *out, len(chunks))
	return nil
}
