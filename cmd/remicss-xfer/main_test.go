package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestBuildScheme(t *testing.T) {
	plain, err := buildScheme("")
	if err != nil {
		t.Fatal(err)
	}
	if plain.Name() != "auto" {
		t.Errorf("plain scheme = %q", plain.Name())
	}
	keyed, err := buildScheme("k")
	if err != nil {
		t.Fatal(err)
	}
	if keyed.Name() != "authenticated-auto" {
		t.Errorf("keyed scheme = %q", keyed.Name())
	}
}

func TestRunModeDispatch(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"send"}); err == nil {
		t.Error("send without flags accepted")
	}
	if err := run([]string{"recv"}); err == nil {
		t.Error("recv without flags accepted")
	}
}

// TestSendRecvInProcess runs the two halves against each other on loopback.
func TestSendRecvInProcess(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	out := filepath.Join(dir, "out.bin")
	data := bytes.Repeat([]byte("multichannel "), 5000)
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}

	addrs := "127.0.0.1:7301,127.0.0.1:7302,127.0.0.1:7303"
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"recv", "-listen", addrs, "-out", out, "-timeout", "20s", "-key", "tk"})
	}()
	// UDP is fire-and-forget: sends before the receiver binds simply vanish.
	// Re-send until the receiver reports completion; it deduplicates chunks,
	// so repeated transfers are harmless.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := run([]string{"send", "-to", addrs, "-in", in, "-kappa", "2", "-mu", "3", "-key", "tk", "-seed", "9"}); err != nil {
				t.Errorf("send: %v", err)
				return
			}
			time.Sleep(200 * time.Millisecond)
		}
	}()
	err := <-done
	close(stop)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("transfer corrupted: %d bytes vs %d", len(got), len(data))
	}
}
