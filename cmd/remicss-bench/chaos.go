package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"remicss/internal/bench"
	"remicss/internal/chaos"
)

// loadScenario resolves the -chaos argument: a builtin catalog name, or a
// path to a scenario script in the chaos DSL.
func loadScenario(arg string) (*chaos.Scenario, error) {
	if sc, ok := chaos.Builtin(arg); ok {
		return sc, nil
	}
	src, err := os.ReadFile(arg)
	if err != nil {
		return nil, fmt.Errorf("%q is neither a builtin scenario (%s) nor a readable script: %w",
			arg, strings.Join(chaos.Names(), ", "), err)
	}
	return chaos.Parse(string(src))
}

// runChaos replays one fault scenario and prints the degradation report;
// with jsonPath it also writes the report as JSON (the CI artifact).
func runChaos(arg, jsonPath string, seed int64) error {
	if arg == "list" {
		for _, name := range chaos.Names() {
			sc, _ := chaos.Builtin(name)
			fmt.Printf("%-12s %2d fault(s), %5s window, floor %.2f\n",
				name, len(sc.Faults), sc.Duration, sc.Floor)
		}
		return nil
	}
	sc, err := loadScenario(arg)
	if err != nil {
		return err
	}
	if seed != 0 {
		sc.Seed = seed
	}
	res, err := bench.RunChaos(bench.ChaosConfig{Scenario: sc})
	if err != nil {
		return err
	}
	printChaosReport(res, sc)
	if jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", jsonPath)
	}
	if !res.Pass() {
		return fmt.Errorf("scenario %s failed its gates", sc.Name)
	}
	return nil
}

func printChaosReport(res bench.ChaosResult, sc *chaos.Scenario) {
	gate := func(ok bool) string {
		if ok {
			return "PASS"
		}
		return "FAIL"
	}
	fmt.Printf("Chaos degradation report: %s (seed %d, %s window)\n", res.Scenario, res.Seed, sc.Duration)
	fmt.Printf("  delivery   %6d / %6d symbols  ratio %.4f  floor %.2f  [%s]\n",
		res.Delivered, res.Offered, res.DeliveryRatio, res.Floor, gate(res.FloorOK))
	fmt.Printf("  threshold  min k = %d, ⌊κ⌋ = %d                          [%s]\n",
		res.MinThreshold, res.KappaFloor, gate(res.ThresholdOK))
	fmt.Printf("  faults %d  failovers %d  recoveries %d  probes %d  mean delay %s\n",
		res.FaultsInjected, res.Failovers, res.Recoveries, res.Probes,
		res.MeanDelay.Round(10*time.Microsecond))
	for i, l := range res.Links {
		fmt.Printf("  ch %d [%-7s] sent %6d dropped %5d lost %5d dup %4d corrupt %4d delivered %6d\n",
			i, res.FinalStates[i], l.Sent, l.Dropped, l.Lost, l.Duplicated, l.Corrupted, l.Delivered)
	}
}
