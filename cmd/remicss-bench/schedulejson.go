package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"remicss/internal/core"
	"remicss/internal/lp"
	"remicss/internal/obs"
	"remicss/internal/schedule"
)

// scheduleBenchSizes are the channel counts the solve-path benchmark
// sweeps: a small set on the exact mask path and two large sets on the
// wide sampled-generation path.
var scheduleBenchSizes = []int{5, 50, 200}

// scheduleBenchEntry is one channel count's tier latencies in
// BENCH_schedule.json.
type scheduleBenchEntry struct {
	N       int    `json:"n"`
	Program string `json:"program"`
	// BuildNsPerOp is the cost of materializing the program on a cache
	// miss: candidate generation plus constraint assembly, no solving.
	BuildNsPerOp float64 `json:"build_ns_per_op"`
	// Nanoseconds per solve at each tier of the solve layer: a full
	// two-phase simplex from scratch (cold), a warm-started re-solve from
	// the retained basis after an objective perturbation (warm), and a
	// schedule-cache hit on a repeat quantized state (cached). Cold and
	// warm measure the solver on the materialized program; build cost is
	// reported separately above.
	ColdNsPerSolve   float64 `json:"cold_ns_per_solve"`
	WarmNsPerSolve   float64 `json:"warm_ns_per_solve"`
	CachedNsPerSolve float64 `json:"cached_ns_per_solve"`
	// CachedAllocsPerOp must be 0: the hit path is allocation-free.
	CachedAllocsPerOp   int64   `json:"cached_allocs_per_op"`
	WarmSpeedupVsCold   float64 `json:"warm_speedup_vs_cold"`
	CachedSpeedupVsCold float64 `json:"cached_speedup_vs_cold"`
	WarmSolves          int64   `json:"warm_solves"`
	PivotsPerWarmSolve  float64 `json:"pivots_per_warm_solve"`
	// HitRate is hits/(hits+misses) over the cached-tier benchmark's
	// registry: one miss to prime, hits thereafter.
	HitRate float64 `json:"hit_rate"`
}

// scheduleBenchReport is the BENCH_schedule.json schema.
type scheduleBenchReport struct {
	Schema     string               `json:"schema"`
	GOOS       string               `json:"goos"`
	GOARCH     string               `json:"goarch"`
	NumCPU     int                  `json:"num_cpu"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	Benchmarks []scheduleBenchEntry `json:"benchmarks"`
}

// benchScheduleSet builds a deterministic random channel set, mirroring
// the schedule package's own large-set tests.
func benchScheduleSet(rng *rand.Rand, n int) core.Set {
	s := make(core.Set, n)
	for i := range s {
		s[i] = core.Channel{
			Risk:  0.05 + 0.9*rng.Float64(),
			Loss:  rng.Float64() * 0.3,
			Delay: time.Duration(1+rng.Intn(100)) * time.Millisecond,
			Rate:  10 + 90*rng.Float64(),
		}
	}
	return s
}

// counterVal reads one counter series from a registry; missing series read
// as zero.
func counterVal(reg *obs.Registry, name string) int64 {
	for _, s := range reg.Gather() {
		if s.Name == name {
			return s.Value
		}
	}
	return 0
}

// benchScheduleTiers measures the three solve tiers for one channel count.
func benchScheduleTiers(n int) (scheduleBenchEntry, error) {
	rng := rand.New(rand.NewSource(int64(1000 + n)))
	set := benchScheduleSet(rng, n)
	const kappa, mu = 2.5, 3.5
	opts := schedule.Options{Limited: true}
	// Beyond the exact mask-enumeration range the cache serves the wide
	// sampled-generation program.
	wide := n > 22
	program := "section-ivb"
	if wide {
		program = "wide"
	}

	solve := func(c *schedule.Cache, kap float64) (schedule.SolveTier, error) {
		if wide {
			_, _, tier, err := c.OptimizeLarge(set, kap, mu, schedule.ObjectiveRisk)
			return tier, err
		}
		_, tier, err := c.Optimize(set, kap, mu, schedule.ObjectiveRisk)
		return tier, err
	}
	newCache := func(reg *obs.Registry) *schedule.Cache {
		return schedule.NewCache(schedule.CacheConfig{Options: opts, Metrics: reg, MaxEntries: 64})
	}

	// Fail fast before spending benchmark time.
	if _, err := solve(newCache(nil), kappa); err != nil {
		return scheduleBenchEntry{}, fmt.Errorf("n=%d: %w", n, err)
	}

	// Materialize the program once; cold and warm below measure the solve
	// layer on it. On a cache miss both the build and a solve run, so the
	// build cost is benchmarked separately for total-latency context.
	prob, err := schedule.Program(set, kappa, mu, schedule.ObjectiveRisk, opts)
	if err != nil {
		return scheduleBenchEntry{}, fmt.Errorf("n=%d: %w", n, err)
	}
	buildRes := benchRunner(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := schedule.Program(set, kappa, mu, schedule.ObjectiveRisk, opts); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Cold: a full two-phase simplex from scratch every iteration.
	coldRes := benchRunner(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lp.Solve(prob); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Warm: one retained solver; each iteration perturbs an objective
	// coefficient (the shape of a channel-quality drift between adapt
	// rounds) and re-solves from the retained basis.
	solver := lp.NewSolver()
	baseC := append([]float64(nil), prob.C...)
	_, basis, err := solver.WarmSolve(nil, prob)
	if err != nil {
		return scheduleBenchEntry{}, fmt.Errorf("n=%d: %w", n, err)
	}
	var warmSolves, warmPivots int64
	warmIter := 0
	warmRes := benchRunner(func(b *testing.B) {
		warmSolves, warmPivots = 0, 0
		for i := 0; i < b.N; i++ {
			warmIter++
			j := warmIter % len(prob.C)
			prob.C[j] = baseC[j] * (1 + 1e-5*float64(1+warmIter%7))
			var err error
			_, basis, err = solver.WarmSolve(basis, prob)
			if err != nil {
				b.Fatal(err)
			}
			if st := solver.LastStats(); st.Tier != lp.TierCold {
				warmSolves++
				warmPivots += int64(st.Pivots)
			}
		}
	})

	// Cached: one retained cache queried with the identical state.
	hitReg := obs.NewRegistry()
	hitCache := newCache(hitReg)
	if _, err := solve(hitCache, kappa); err != nil {
		return scheduleBenchEntry{}, err
	}
	cachedRes := benchRunner(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tier, err := solve(hitCache, kappa)
			if err != nil {
				b.Fatal(err)
			}
			if tier != schedule.TierCached {
				b.Fatalf("repeat state resolved at tier %v", tier)
			}
		}
	})
	hits := counterVal(hitReg, "remicss_schedule_cache_hits_total")
	misses := counterVal(hitReg, "remicss_schedule_cache_misses_total")

	e := scheduleBenchEntry{
		N:                 n,
		Program:           program,
		BuildNsPerOp:      float64(buildRes.T.Nanoseconds()) / float64(buildRes.N),
		ColdNsPerSolve:    float64(coldRes.T.Nanoseconds()) / float64(coldRes.N),
		WarmNsPerSolve:    float64(warmRes.T.Nanoseconds()) / float64(warmRes.N),
		CachedNsPerSolve:  float64(cachedRes.T.Nanoseconds()) / float64(cachedRes.N),
		CachedAllocsPerOp: cachedRes.AllocsPerOp(),
		WarmSolves:        warmSolves,
	}
	if e.WarmNsPerSolve > 0 {
		e.WarmSpeedupVsCold = e.ColdNsPerSolve / e.WarmNsPerSolve
	}
	if e.CachedNsPerSolve > 0 {
		e.CachedSpeedupVsCold = e.ColdNsPerSolve / e.CachedNsPerSolve
	}
	if warmSolves > 0 {
		e.PivotsPerWarmSolve = float64(warmPivots) / float64(warmSolves)
	}
	if hits+misses > 0 {
		e.HitRate = float64(hits) / float64(hits+misses)
	}
	return e, nil
}

// runScheduleJSON runs the solve-path tier benchmarks (cold, warm-started,
// cached) across the size sweep and writes BENCH_schedule.json.
func runScheduleJSON(path string) error {
	report := scheduleBenchReport{
		Schema:     "remicss-bench-schedule/v1",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, n := range scheduleBenchSizes {
		e, err := benchScheduleTiers(n)
		if err != nil {
			return err
		}
		report.Benchmarks = append(report.Benchmarks, e)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	for _, e := range report.Benchmarks {
		fmt.Printf("n=%-4d %-12s build %10.0f ns  cold %10.0f ns  warm %8.0f ns (%5.1fx, %4.1f pivots)  cached %6.0f ns (%7.1fx, %d allocs, hit rate %.3f)\n",
			e.N, e.Program, e.BuildNsPerOp, e.ColdNsPerSolve, e.WarmNsPerSolve,
			e.WarmSpeedupVsCold, e.PivotsPerWarmSolve, e.CachedNsPerSolve,
			e.CachedSpeedupVsCold, e.CachedAllocsPerOp, e.HitRate)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
