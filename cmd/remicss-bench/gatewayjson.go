package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"remicss/internal/gateway"
	"remicss/internal/obs"
	"remicss/internal/remicss"
	"remicss/internal/udptrans"
	"remicss/internal/wire"
)

// gatewayBenchParams sizes the -gateway-json run. Package-level so the
// smoke test can shrink it; the defaults are the shipped workload: a
// 100k-session hold for the memory-flatness claim, and a multi-session
// transfer replayed through the gateway under every compiled batch mode
// and through the pre-gateway architecture (per-session sockets,
// per-datagram syscalls) for the throughput and syscall claims.
var gatewayBenchParams = struct {
	// HoldSessions is the session-table scale target; heap is sampled at
	// half and full scale so the report shows bytes/session at two points.
	HoldSessions int
	// HoldDispatches is how many routed datagrams time the dispatch path
	// at full table scale.
	HoldDispatches int
	// Sessions, PerSession, Channels, Batch, and PayloadBytes shape the
	// transfer: Sessions×PerSession distinct datagrams multiplexed over
	// Channels sockets (or Sessions×Channels sockets in the baseline leg),
	// coalesced Batch at a time on the gateway path.
	Sessions     int
	PerSession   int
	Channels     int
	Batch        int
	PayloadBytes int
	// Window bounds datagrams in flight, spread across sessions so arrivals
	// interleave the way independent sessions do; it keeps each burst
	// inside the receive socket buffers so the numbers measure the I/O
	// paths rather than UDP drop recovery. Picks is how many datagrams one
	// session may contribute per round: 1 spreads the window across the
	// most sessions (every tenant trickling concurrently, the multi-tenant
	// steady state), larger values concentrate it on fewer.
	Window int
	Picks  int
	// Reps is how many times each transfer leg runs; the median rate is
	// reported.
	Reps int
	// Stall is how long a round waits without progress before
	// retransmitting its losses. Deadline bounds each leg.
	Stall    time.Duration
	Deadline time.Duration
}{
	HoldSessions:   100_000,
	HoldDispatches: 1 << 16,
	Sessions:       256,
	PerSession:     128,
	Channels:       3,
	Batch:          32,
	PayloadBytes:   256,
	Window:         256,
	Picks:          1,
	Reps:           3,
	Stall:          20 * time.Millisecond,
	Deadline:       60 * time.Second,
}

// gatewayHoldReport is the session-table scale leg: can the gateway hold
// the target session count, at flat per-session memory, without the
// dispatch path degrading.
type gatewayHoldReport struct {
	Sessions             int     `json:"sessions"`
	RegisterNsPerSession float64 `json:"register_ns_per_session"`
	DispatchNsPerOp      float64 `json:"dispatch_ns_per_op"`
	HeapBytesBase        uint64  `json:"heap_bytes_base"`
	HeapBytesHalf        uint64  `json:"heap_bytes_half"`
	HeapBytesFull        uint64  `json:"heap_bytes_full"`
	BytesPerSessionHalf  float64 `json:"bytes_per_session_half"`
	BytesPerSessionFull  float64 `json:"bytes_per_session_full"`
	// MemoryGrowthRatio is bytes/session at full scale over bytes/session
	// at half scale; ~1.0 means per-session cost is flat in session count.
	MemoryGrowthRatio float64 `json:"memory_growth_ratio"`
}

// gatewayTransferReport is one leg of the multiplexed transfer: the same
// Sessions×PerSession datagram set delivered completely (UDP drops are
// retransmitted), every accepted datagram byte-compared against the share
// bytes the sender marshaled.
type gatewayTransferReport struct {
	// Leg is "gateway/<mode>" or "baseline"; Sockets is how many UDP
	// sockets the receiving side owns under that architecture.
	Leg             string  `json:"leg"`
	Sockets         int     `json:"sockets"`
	Datagrams       int     `json:"datagrams"`  // distinct datagrams delivered
	Sends           int     `json:"sends"`      // including retransmissions
	Mismatches      int64   `json:"mismatches"` // delivered bytes != marshaled bytes
	ElapsedMs       float64 `json:"elapsed_ms"`
	DatagramsPerSec float64 `json:"datagrams_per_sec"`
	// DeliveredDigest hashes the delivered share bytes in (session, seq)
	// order; with zero mismatches it equals the hash of what was sent, so
	// equal digests across legs mean byte-identical delivery.
	DeliveredDigest string `json:"delivered_digest"`

	// Kernel-call accounting, from the udp_* series (gateway legs only;
	// the baseline's per-session links are deliberately uninstrumented —
	// 192 sockets of metrics is exactly the cardinality the gateway caps).
	SocketSent              int64   `json:"socket_datagrams_sent,omitempty"`
	SocketRecv              int64   `json:"socket_datagrams_received,omitempty"`
	BatchWriteCalls         int64   `json:"batch_write_calls,omitempty"`
	BatchReadCalls          int64   `json:"batch_read_calls,omitempty"`
	SendSyscallsPerDatagram float64 `json:"send_syscalls_per_datagram,omitempty"`
	RecvSyscallsPerDatagram float64 `json:"recv_syscalls_per_datagram,omitempty"`
	// SyscallsPerDatagram is (write calls + read calls) over (datagrams
	// written + datagrams read): the combined kernel entries each datagram
	// cost end to end.
	SyscallsPerDatagram float64 `json:"syscalls_per_datagram,omitempty"`
	UnknownSessions     int64   `json:"unknown_sessions,omitempty"`
	Malformed           int64   `json:"malformed,omitempty"`
}

// gatewayGoals are the acceptance thresholds evaluated in-report, so the
// JSON is self-judging.
type gatewayGoals struct {
	// HoldSessionsOK: the table held >= 100k sessions.
	HoldSessionsOK bool `json:"hold_sessions_ok"`
	// FlatMemoryOK: per-session bytes at full scale within 1.5x of half.
	FlatMemoryOK bool `json:"flat_memory_ok"`
	// BatchSpeedupOK: the batched gateway delivered >= 2x the per-datagram
	// baseline's datagrams/sec (vacuously true where no batched mode is
	// compiled).
	BatchSpeedupOK bool `json:"batch_speedup_ok"`
	// SyscallsOK: the batched gateway spent < 0.1 kernel entries per
	// datagram.
	SyscallsOK bool `json:"syscalls_ok"`
	// DeliveryIdenticalOK: every leg delivered the complete set with zero
	// byte mismatches and identical digests.
	DeliveryIdenticalOK bool `json:"delivery_identical_ok"`
}

// gatewayBenchReport is the BENCH_gateway.json schema.
type gatewayBenchReport struct {
	Schema     string `json:"schema"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// BatchMode is the mode the transport selects on this host; BatchModes
	// is everything compiled in, each of which gets a transfer leg.
	BatchMode    string            `json:"batch_mode"`
	BatchModes   []string          `json:"batch_modes"`
	Channels     int               `json:"channels"`
	Sessions     int               `json:"sessions"`
	PerSession   int               `json:"per_session"`
	PayloadBytes int               `json:"payload_bytes"`
	Batch        int               `json:"batch"`
	Reps         int               `json:"reps"`
	Hold         gatewayHoldReport `json:"hold"`
	// Transfers holds the median-rate rep of each leg: one gateway leg per
	// compiled batch mode, then the per-datagram baseline — the pre-gateway
	// architecture where every session owns its own sockets and every
	// datagram is its own send and receive syscall.
	Transfers []gatewayTransferReport `json:"transfers"`
	// BatchedMode is the fastest non-portable gateway leg, empty if none is
	// compiled; BatchSpeedup is its datagrams/sec over the baseline's.
	BatchedMode  string       `json:"batched_mode"`
	BatchSpeedup float64      `json:"batch_speedup"`
	Goals        gatewayGoals `json:"goals"`
}

// heapBytes reports live heap after a full collection, the stable basis
// for the bytes/session arithmetic.
func heapBytes() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// counterSum totals a counter series across all label sets.
func counterSum(reg *obs.Registry, name string) int64 {
	var total int64
	for _, s := range reg.Gather() {
		if s.Name == name {
			total += s.Value
		}
	}
	return total
}

// runGatewayHold registers HoldSessions sessions, samples heap at half and
// full scale, and times the dispatch path against the full table.
func runGatewayHold() (gatewayHoldReport, error) {
	p := gatewayBenchParams
	rep := gatewayHoldReport{Sessions: p.HoldSessions}
	srv := gateway.NewServer(gateway.ServerConfig{Metrics: obs.NewRegistry()})

	var sink atomic.Int64
	handle := func(d []byte) { sink.Add(int64(len(d))) }
	sessions := make([]*gateway.Session, 0, p.HoldSessions)

	rep.HeapBytesBase = heapBytes()
	half := p.HoldSessions / 2
	var regElapsed time.Duration
	for _, seg := range []struct{ from, to int }{{1, half}, {half + 1, p.HoldSessions}} {
		start := time.Now()
		for i := seg.from; i <= seg.to; i++ {
			s, err := srv.Register(uint64(i), fmt.Sprintf("tenant-%d", i%16), handle)
			if err != nil {
				return rep, err
			}
			sessions = append(sessions, s)
		}
		regElapsed += time.Since(start)
		// Heap sample between segments, outside the registration timer.
		if seg.to == half {
			rep.HeapBytesHalf = heapBytes()
		} else {
			rep.HeapBytesFull = heapBytes()
		}
	}
	rep.RegisterNsPerSession = float64(regElapsed.Nanoseconds()) / float64(p.HoldSessions)
	if rep.HeapBytesHalf > rep.HeapBytesBase {
		rep.BytesPerSessionHalf = float64(rep.HeapBytesHalf-rep.HeapBytesBase) / float64(half)
	}
	if rep.HeapBytesFull > rep.HeapBytesBase {
		rep.BytesPerSessionFull = float64(rep.HeapBytesFull-rep.HeapBytesBase) / float64(p.HoldSessions)
	}
	if rep.BytesPerSessionHalf > 0 {
		rep.MemoryGrowthRatio = rep.BytesPerSessionFull / rep.BytesPerSessionHalf
	}

	// Dispatch latency against the full table: a sample of routed
	// datagrams spread across the ID space, replayed HoldDispatches times.
	const sample = 512
	dgrams := make([][]byte, sample)
	for i := range dgrams {
		id := uint64(i*9973%p.HoldSessions + 1)
		d, err := wire.AppendMarshalSession(nil, wire.SharePacket{
			Seq: 1, Session: id, K: 2, M: 3, Index: 1, SentAt: 1,
			Payload: []byte("gateway-hold-dispatch-sample"),
		})
		if err != nil {
			return rep, err
		}
		dgrams[i] = d
	}
	n := p.HoldDispatches
	start := time.Now()
	for i := 0; i < n; i++ {
		srv.Dispatch(dgrams[i%sample])
	}
	rep.DispatchNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(n)
	if sink.Load() == 0 {
		return rep, fmt.Errorf("gateway hold: dispatch sample never reached a handler")
	}
	// Keep the table live through the measurements above.
	runtime.KeepAlive(sessions)
	return rep, nil
}

// gatewayDatagrams pre-marshals the full (session, seq) datagram matrix so
// every leg replays the identical byte set.
func gatewayDatagrams() ([][][]byte, error) {
	p := gatewayBenchParams
	base := make([]byte, p.PayloadBytes)
	for i := range base {
		base[i] = byte(i*7 + 3)
	}
	dgrams := make([][][]byte, p.Sessions)
	for s := range dgrams {
		dgrams[s] = make([][]byte, p.PerSession)
		for j := range dgrams[s] {
			pl := append([]byte(nil), base...)
			binary.BigEndian.PutUint64(pl, uint64(s+1))
			binary.BigEndian.PutUint64(pl[8:], uint64(j+1))
			d, err := wire.AppendMarshalSession(nil, wire.SharePacket{
				Seq: uint64(j + 1), Session: uint64(s + 1),
				K: 2, M: 3, Index: 1, SentAt: 1, Payload: pl,
			})
			if err != nil {
				return nil, err
			}
			dgrams[s][j] = d
		}
	}
	return dgrams, nil
}

// gatewayDigest hashes the datagram matrix in (session, seq) order — the
// byte set every leg must deliver.
func gatewayDigest(dgrams [][][]byte) string {
	h := sha256.New()
	for _, row := range dgrams {
		for _, d := range row {
			h.Write(d)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// gwFlow coordinates the transfer's flow control without burning the CPU
// the receive path needs: the sender parks on a channel and the delivery
// handlers signal it once the outstanding window has landed. (Spinning
// here instead starves the netpoller on small GOMAXPROCS and times the
// scheduler, not the transport.)
type gwFlow struct {
	remaining atomic.Int64
	target    atomic.Int64
	done      chan struct{}
}

func newGwFlow(total int) *gwFlow {
	f := &gwFlow{done: make(chan struct{}, 1)}
	f.remaining.Store(int64(total))
	return f
}

// dec records one fresh delivery and wakes the sender at the window
// boundary.
func (f *gwFlow) dec() {
	if f.remaining.Add(-1) <= f.target.Load() {
		select {
		case f.done <- struct{}{}:
		default:
		}
	}
}

// waitFor parks until remaining <= want, or until progress stalls for the
// configured timeout (lost datagrams; the caller retransmits).
func (f *gwFlow) waitFor(want int64, stall time.Duration) {
	f.target.Store(want)
	for f.remaining.Load() > want {
		prev := f.remaining.Load()
		select {
		case <-f.done:
		case <-time.After(stall):
			if f.remaining.Load() == prev {
				return
			}
		}
	}
}

// gwSessState tracks one session's delivered set.
type gwSessState struct {
	mu  sync.Mutex
	got []bool
}

// gwTransfer drives the windowed reliable transfer common to every leg:
// each round sends up to Window missing datagrams, spread a few per
// session so arrivals interleave like independent sessions, then waits for
// them to land before the next round; losses retransmit after a stall.
// send puts one datagram on the wire, flush drains any coalescing queues.
func gwTransfer(states []*gwSessState, flow *gwFlow, dgrams [][][]byte,
	send func(s, j int), flush func()) (sends int, elapsed time.Duration, err error) {
	p := gatewayBenchParams
	start := time.Now()
	deadline := start.Add(p.Deadline)
	for flow.remaining.Load() > 0 {
		if time.Now().After(deadline) {
			return sends, 0, fmt.Errorf("gateway bench: %d datagrams undelivered after %v",
				flow.remaining.Load(), p.Deadline)
		}
		sent := 0
		perSession := p.Picks
		if perSession <= 0 {
			perSession = 1
		}
		picks := make([]int, 0, perSession)
		for s, st := range states {
			if sent >= p.Window {
				break
			}
			picks = picks[:0]
			st.mu.Lock()
			for j := 0; j < len(st.got) && len(picks) < perSession; j++ {
				if !st.got[j] {
					picks = append(picks, j)
				}
			}
			st.mu.Unlock()
			for _, j := range picks {
				if sent >= p.Window {
					break
				}
				send(s, j)
				sends++
				sent++
			}
		}
		if sent == 0 {
			continue // raced with late arrivals; the loop condition re-checks
		}
		flush()
		flow.waitFor(flow.remaining.Load()-int64(sent), p.Stall)
	}
	return sends, time.Since(start), nil
}

// gwHandler builds a session's delivery handler: locate the datagram by
// the sequence number stamped into the payload, then byte-compare the
// whole datagram against the marshaled original — strictly stronger than
// parsing it (header, checksum, and payload must all match bit-for-bit) —
// and keep first-arrival bookkeeping.
func gwHandler(st *gwSessState, row [][]byte, flow *gwFlow, mismatches *atomic.Int64) func([]byte) {
	const seqOff = wire.HeaderSizeV2 + 8 // payload[8:16] carries the seq
	return func(d []byte) {
		if len(d) < seqOff+8 {
			mismatches.Add(1)
			return
		}
		j := int(binary.BigEndian.Uint64(d[seqOff:])) - 1
		if j < 0 || j >= len(row) {
			mismatches.Add(1)
			return
		}
		if !bytes.Equal(d, row[j]) {
			mismatches.Add(1)
			return
		}
		st.mu.Lock()
		fresh := !st.got[j]
		st.got[j] = true
		st.mu.Unlock()
		if fresh {
			flow.dec()
		}
	}
}

// runGatewayLeg runs one rep of the gateway transfer under one forced
// batch mode: all sessions multiplexed over one Channels-socket listener
// and one shared send pool.
func runGatewayLeg(mode string, dgrams [][][]byte) (gatewayTransferReport, error) {
	p := gatewayBenchParams
	rep := gatewayTransferReport{Leg: "gateway/" + mode, Sockets: p.Channels}
	restore, err := udptrans.ForceBatchMode(mode)
	if err != nil {
		return rep, err
	}
	defer restore()

	reg := obs.NewRegistry()
	addrs := make([]string, p.Channels)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	lis, err := udptrans.Listen(addrs)
	if err != nil {
		return rep, err
	}
	defer lis.Close()
	lis.Instrument(reg)

	srv := gateway.NewServer(gateway.ServerConfig{Shards: 256, Metrics: reg})
	flow := newGwFlow(p.Sessions * p.PerSession)
	var mismatches atomic.Int64
	states := make([]*gwSessState, p.Sessions)
	for i := range states {
		states[i] = &gwSessState{got: make([]bool, p.PerSession)}
		_, err := srv.Register(uint64(i+1), fmt.Sprintf("tenant-%d", i%8),
			gwHandler(states[i], dgrams[i], flow, &mismatches))
		if err != nil {
			return rep, err
		}
	}
	srv.Attach(lis)

	pool, err := gateway.DialPool(lis.Addrs(), gateway.PoolConfig{Batch: p.Batch, Metrics: reg})
	if err != nil {
		return rep, err
	}
	defer pool.Close()
	links := pool.SessionLinks()

	sends, elapsed, err := gwTransfer(states, flow, dgrams,
		func(s, j int) { links[(s+j)%p.Channels].Send(dgrams[s][j]) },
		pool.Flush)
	if err != nil {
		return rep, fmt.Errorf("%s: %w", rep.Leg, err)
	}

	rep.Datagrams = p.Sessions * p.PerSession
	rep.Sends = sends
	rep.Mismatches = mismatches.Load()
	rep.ElapsedMs = float64(elapsed.Nanoseconds()) / 1e6
	if elapsed > 0 {
		rep.DatagramsPerSec = float64(rep.Datagrams) / elapsed.Seconds()
	}
	rep.DeliveredDigest = gatewayDigest(dgrams)
	rep.SocketSent = counterSum(reg, "udp_sent_datagrams_total")
	rep.SocketRecv = counterSum(reg, "udp_recv_datagrams_total")
	rep.BatchWriteCalls = counterSum(reg, "udp_batch_writes_total")
	rep.BatchReadCalls = counterSum(reg, "udp_batch_reads_total")
	if rep.SocketSent > 0 {
		rep.SendSyscallsPerDatagram = float64(rep.BatchWriteCalls) / float64(rep.SocketSent)
	}
	if rep.SocketRecv > 0 {
		rep.RecvSyscallsPerDatagram = float64(rep.BatchReadCalls) / float64(rep.SocketRecv)
	}
	if total := rep.SocketSent + rep.SocketRecv; total > 0 {
		rep.SyscallsPerDatagram = float64(rep.BatchWriteCalls+rep.BatchReadCalls) / float64(total)
	}
	rep.UnknownSessions = counterSum(reg, "remicss_gateway_unknown_session_total")
	rep.Malformed = counterSum(reg, "remicss_gateway_malformed_total")
	return rep, nil
}

// runGatewayBaseline runs one rep of the same transfer over the
// pre-gateway architecture: every session owns its own Channels-socket
// listener and links, every datagram is one send syscall and one receive
// syscall, every socket has its own reader goroutine.
func runGatewayBaseline(dgrams [][][]byte) (gatewayTransferReport, error) {
	p := gatewayBenchParams
	rep := gatewayTransferReport{Leg: "baseline", Sockets: p.Sessions * p.Channels}
	restore, err := udptrans.ForceBatchMode("portable")
	if err != nil {
		return rep, err
	}
	defer restore()

	flow := newGwFlow(p.Sessions * p.PerSession)
	var mismatches atomic.Int64
	states := make([]*gwSessState, p.Sessions)
	listeners := make([]*udptrans.Listener, p.Sessions)
	// Each session's links are held as remicss.Link — the same interface
	// surface a per-session sender writes through, and the module's
	// declared taint egress boundary for share bytes.
	links := make([][]remicss.Link, p.Sessions)
	closers := make([]*udptrans.Link, 0, p.Sessions*p.Channels)
	defer func() {
		for i := range listeners {
			if listeners[i] != nil {
				listeners[i].Close()
			}
		}
		for _, l := range closers {
			l.Close()
		}
	}()
	addrs := make([]string, p.Channels)
	for i := 0; i < p.Sessions; i++ {
		states[i] = &gwSessState{got: make([]bool, p.PerSession)}
		for c := range addrs {
			addrs[c] = "127.0.0.1:0"
		}
		lis, err := udptrans.Listen(addrs)
		if err != nil {
			return rep, err
		}
		listeners[i] = lis
		lis.Serve(gwHandler(states[i], dgrams[i], flow, &mismatches))
		for _, a := range lis.Addrs() {
			l, err := udptrans.Dial(a, 0, 0)
			if err != nil {
				return rep, err
			}
			closers = append(closers, l)
			links[i] = append(links[i], l)
		}
	}

	sends, elapsed, err := gwTransfer(states, flow, dgrams,
		func(s, j int) { links[s][(s+j)%p.Channels].Send(dgrams[s][j]) },
		func() {})
	if err != nil {
		return rep, fmt.Errorf("baseline: %w", err)
	}
	rep.Datagrams = p.Sessions * p.PerSession
	rep.Sends = sends
	rep.Mismatches = mismatches.Load()
	rep.ElapsedMs = float64(elapsed.Nanoseconds()) / 1e6
	if elapsed > 0 {
		rep.DatagramsPerSec = float64(rep.Datagrams) / elapsed.Seconds()
	}
	rep.DeliveredDigest = gatewayDigest(dgrams)
	return rep, nil
}

// medianLeg runs one transfer leg Reps times and returns the rep with the
// median delivery rate.
func medianLeg(run func() (gatewayTransferReport, error)) (gatewayTransferReport, error) {
	reps := make([]gatewayTransferReport, 0, gatewayBenchParams.Reps)
	for i := 0; i < gatewayBenchParams.Reps; i++ {
		// Level the GC state between reps so a leg never pays for garbage a
		// previous leg (or the 100k-session hold) left behind.
		runtime.GC()
		r, err := run()
		if err != nil {
			return r, err
		}
		reps = append(reps, r)
	}
	sort.Slice(reps, func(a, b int) bool {
		return reps[a].DatagramsPerSec < reps[b].DatagramsPerSec
	})
	return reps[len(reps)/2], nil
}

// runGatewayJSON runs the gateway scale and throughput benchmarks and
// writes the report to path: the 100k-session hold (memory flatness,
// dispatch latency), then the same multiplexed transfer through the
// gateway under every compiled batch mode and through the per-datagram
// per-session-socket baseline (throughput, kernel calls per datagram, and
// byte-identical delivery across every leg).
func runGatewayJSON(path string) error {
	p := gatewayBenchParams
	report := gatewayBenchReport{
		Schema:       "remicss-bench-gateway/v1",
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		BatchMode:    udptrans.BatchMode(),
		BatchModes:   udptrans.BatchModes(),
		Channels:     p.Channels,
		Sessions:     p.Sessions,
		PerSession:   p.PerSession,
		PayloadBytes: p.PayloadBytes,
		Batch:        p.Batch,
		Reps:         p.Reps,
	}

	hold, err := runGatewayHold()
	if err != nil {
		return err
	}
	report.Hold = hold

	dgrams, err := gatewayDatagrams()
	if err != nil {
		return err
	}
	var batched *gatewayTransferReport
	for _, mode := range report.BatchModes {
		mode := mode
		leg, err := medianLeg(func() (gatewayTransferReport, error) {
			return runGatewayLeg(mode, dgrams)
		})
		if err != nil {
			return err
		}
		report.Transfers = append(report.Transfers, leg)
		entry := &report.Transfers[len(report.Transfers)-1]
		if mode != "portable" &&
			(batched == nil || entry.DatagramsPerSec > batched.DatagramsPerSec) {
			batched = entry
		}
	}
	baseline, err := medianLeg(func() (gatewayTransferReport, error) {
		return runGatewayBaseline(dgrams)
	})
	if err != nil {
		return err
	}
	report.Transfers = append(report.Transfers, baseline)

	identical := true
	for _, leg := range report.Transfers {
		if leg.Mismatches != 0 || leg.DeliveredDigest != report.Transfers[0].DeliveredDigest {
			identical = false
		}
	}
	if batched != nil {
		report.BatchedMode = batched.Leg
		if baseline.DatagramsPerSec > 0 {
			report.BatchSpeedup = batched.DatagramsPerSec / baseline.DatagramsPerSec
		}
	}
	report.Goals = gatewayGoals{
		HoldSessionsOK: hold.Sessions >= 100_000,
		FlatMemoryOK:   hold.MemoryGrowthRatio > 0 && hold.MemoryGrowthRatio < 1.5,
		// Vacuously true on hosts that only compile the portable path:
		// there is no batched leg to compare.
		BatchSpeedupOK:      batched == nil || report.BatchSpeedup >= 2,
		SyscallsOK:          batched == nil || batched.SyscallsPerDatagram < 0.1,
		DeliveryIdenticalOK: identical,
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}

	fmt.Printf("hold: %d sessions, %.1f B/session at half, %.1f B/session at full (ratio %.2f), dispatch %.0f ns/op\n",
		hold.Sessions, hold.BytesPerSessionHalf, hold.BytesPerSessionFull,
		hold.MemoryGrowthRatio, hold.DispatchNsPerOp)
	for _, leg := range report.Transfers {
		line := fmt.Sprintf("%-18s %4d sockets %9.0f dgrams/s", leg.Leg, leg.Sockets, leg.DatagramsPerSec)
		if leg.SyscallsPerDatagram > 0 {
			line += fmt.Sprintf("  %6.4f syscalls/dgram", leg.SyscallsPerDatagram)
		}
		fmt.Printf("%s  digest %.12s\n", line, leg.DeliveredDigest)
	}
	if report.BatchedMode != "" {
		fmt.Printf("batch speedup (%s over per-datagram baseline): %.2fx\n",
			report.BatchedMode, report.BatchSpeedup)
	}
	fmt.Printf("goals: %+v\n", report.Goals)
	fmt.Printf("wrote %s\n", path)
	return nil
}
