package main

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"remicss/internal/drbg"
	"remicss/internal/gf256"
	"remicss/internal/sharing"
)

// gfPassBytes is the block size for the raw kernel and randomness
// benchmarks: larger than any single share the protocol splits, small
// enough to stay cache-resident so the numbers measure the kernel, not
// memory bandwidth.
const gfPassBytes = 4096

// gfBenchReport is the BENCH_gf.json schema. The split_baseline legs
// replicate the pre-kernel configuration — scalar table arithmetic with
// coefficients and pads read straight from crypto/rand — so split_speedup
// measures exactly what the kernel dispatch plus the pooled DRBG bought on
// this host, in one self-contained file.
type gfBenchReport struct {
	Schema       string       `json:"schema"`
	GOOS         string       `json:"goos"`
	GOARCH       string       `json:"goarch"`
	NumCPU       int          `json:"num_cpu"`
	GOMAXPROCS   int          `json:"gomaxprocs"`
	PayloadBytes int          `json:"payload_bytes"`
	Kernel       string       `json:"kernel"`  // kernel selected at init on this host
	Kernels      []string     `json:"kernels"` // every kernel compiled in, fastest first
	Benchmarks   []benchEntry `json:"benchmarks"`
	// SplitSpeedup maps each scheme path to MB/s(split_fast) over
	// MB/s(split_baseline): the end-to-end single-caller throughput gain of
	// the selected kernel plus drbg.Shared over scalar tables plus
	// crypto/rand.
	SplitSpeedup map[string]float64 `json:"split_speedup"`
}

// toSizedEntry converts a result whose per-op byte count differs from the
// 1400-byte pipeline payload toEntry assumes.
func toSizedEntry(name string, r testing.BenchmarkResult, bytesPerOp int) benchEntry {
	e := toEntry(name, r)
	if e.NsPerOp > 0 {
		e.MBPerSec = float64(bytesPerOp) * e.OpsPerSec / 1e6
	}
	return e
}

// runGFBenchJSON measures the GF(2^8) kernel tiers and the randomness
// sources, then the headline end-to-end comparison: SplitSharesInto
// throughput for the xor-3of3 and shamir-3of5 paths in the baseline
// configuration (scalar kernel, crypto/rand) against the shipped one
// (selected kernel, shared DRBG pool), and writes the report to path.
func runGFBenchJSON(path string) error {
	report := gfBenchReport{
		Schema:       "remicss-bench-gf/v1",
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		PayloadBytes: benchPayloadBytes,
		Kernel:       gf256.KernelName(),
		Kernels:      gf256.Kernels(),
		SplitSpeedup: make(map[string]float64),
	}

	// One fused multiply-accumulate pass per compiled kernel, the inner
	// loop of every Shamir split.
	dst := make([]byte, gfPassBytes)
	src := make([]byte, gfPassBytes)
	for i := range src {
		src[i] = byte(i*31 + 7)
	}
	for _, name := range gf256.Kernels() {
		restore, err := gf256.ForceKernel(name)
		if err != nil {
			return err
		}
		gf256.AddMulSlice(dst, src, 7) // warm lazy tables outside the timer
		res := benchRunner(func(b *testing.B) {
			b.SetBytes(gfPassBytes)
			for i := 0; i < b.N; i++ {
				gf256.AddMulSlice(dst, src, 7)
			}
		})
		restore()
		report.Benchmarks = append(report.Benchmarks,
			toSizedEntry("gf_addmul_pass/"+name, res, gfPassBytes))
	}

	// The randomness sources behind the pads and coefficients: the OS
	// CSPRNG the schemes used to block on, and the pooled DRBG they draw
	// from now.
	buf := make([]byte, gfPassBytes)
	for _, tc := range []struct {
		name string
		r    io.Reader
	}{
		{"crypto_rand", rand.Reader},
		{"drbg_pool", drbg.Shared},
	} {
		r := tc.r
		res := benchRunner(func(b *testing.B) {
			b.SetBytes(gfPassBytes)
			for i := 0; i < b.N; i++ {
				if _, err := io.ReadFull(r, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
		report.Benchmarks = append(report.Benchmarks,
			toSizedEntry("rand_read_4KiB/"+tc.name, res, gfPassBytes))
	}

	// End to end: single-caller SplitSharesInto over recycled share
	// buffers at the pipeline payload size.
	secret := make([]byte, benchPayloadBytes)
	for i := range secret {
		secret[i] = byte(i * 13)
	}
	for _, tc := range []struct {
		name   string
		k, m   int
		scheme func(r io.Reader) sharing.IntoScheme
	}{
		{"xor-3of3", 3, 3, func(r io.Reader) sharing.IntoScheme { return sharing.NewXOR(r) }},
		{"shamir-3of5", 3, 5, func(r io.Reader) sharing.IntoScheme { return sharing.NewShamir(r) }},
	} {
		k, m := tc.k, tc.m
		split := func(s sharing.IntoScheme) testing.BenchmarkResult {
			var shares []sharing.Share
			return benchRunner(func(b *testing.B) {
				b.SetBytes(benchPayloadBytes)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var err error
					shares, err = s.SplitSharesInto(secret, k, m, shares)
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}

		restore, err := gf256.ForceKernel("scalar")
		if err != nil {
			return err
		}
		base := toEntry("split_baseline/"+tc.name, split(tc.scheme(rand.Reader)))
		restore()
		report.Benchmarks = append(report.Benchmarks, base)

		fast := toEntry("split_fast/"+tc.name, split(tc.scheme(nil)))
		report.Benchmarks = append(report.Benchmarks, fast)

		if base.MBPerSec > 0 {
			report.SplitSpeedup[tc.name] = fast.MBPerSec / base.MBPerSec
		}
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	for _, e := range report.Benchmarks {
		fmt.Printf("%-36s %12.0f ops/s %10.1f MB/s %4d allocs/op\n",
			e.Name, e.OpsPerSec, e.MBPerSec, e.AllocsPerOp)
	}
	for name, s := range report.SplitSpeedup {
		fmt.Printf("split speedup (%s, kernel=%s): %.2fx\n", name, report.Kernel, s)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
