// Command remicss-bench regenerates the paper's evaluation figures over the
// network emulator and prints each as a table (or CSV).
//
// Usage:
//
//	remicss-bench -fig all
//	remicss-bench -fig 3-diverse -duration 2s -mustep 0.1 -csv
//	remicss-bench -fig compare
//	remicss-bench -chaos blackout -chaos-json chaos_blackout.json
//	remicss-bench -chaos list
//
// Figures: 2, 3-identical, 3-diverse, 4, 5, 6, 7, compare, all.
// Chaos mode (-chaos) replays a scripted fault scenario over the emulator
// and prints a degradation report; it exits non-zero if the run misses its
// delivery floor or violates the ⌊κ⌋ threshold floor.
// The paper's full sweep density is -mustep 0.1; the default here is 0.25
// to keep "all" interactive.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"remicss/internal/bench"
	"remicss/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "remicss-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 2, 3-identical, 3-diverse, 4, 5, 6, 7, compare, ablations, adaptive, limited, all")
		duration  = flag.Duration("duration", 2*time.Second, "virtual measurement window per point")
		muStep    = flag.Float64("mustep", 0.25, "μ sweep step (paper: 0.1)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		metrics   = flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /trace, and pprof on this address while the sweep runs (e.g. 127.0.0.1:9090)")
		benchJSON = flag.String("bench-json", "", "run the parallel share-pipeline benchmarks instead of figures and write the JSON report to this path (e.g. BENCH_pipeline.json)")
		schedJSON = flag.String("schedule-json", "", "run the schedule solve-path benchmarks (cold/warm/cached tiers at n=5,50,200) instead of figures and write the JSON report to this path (e.g. BENCH_schedule.json)")
		gfJSON    = flag.String("gf-json", "", "run the GF(2^8) kernel and DRBG benchmarks (per-kernel passes, randomness sources, baseline-vs-fast split throughput) instead of figures and write the JSON report to this path (e.g. BENCH_gf.json)")
		gwJSON    = flag.String("gateway-json", "", "run the session-gateway benchmarks (100k-session hold, batched-vs-portable multiplexed transfer, syscalls per datagram) instead of figures and write the JSON report to this path (e.g. BENCH_gateway.json)")
		privJSON  = flag.String("privacy-json", "", "replay the builtin chaos catalog with correlated-adversary privacy scoring and write the per-scenario verdicts to this path (e.g. BENCH_privacy.json)")
		chaosArg  = flag.String("chaos", "", "replay a chaos scenario instead of figures: a builtin name, a scenario-script path, or 'list'")
		chaosJSON = flag.String("chaos-json", "", "with -chaos, also write the degradation report as JSON to this path")
	)
	flag.Parse()

	if *benchJSON != "" {
		return runBenchJSON(*benchJSON)
	}
	if *schedJSON != "" {
		return runScheduleJSON(*schedJSON)
	}
	if *gfJSON != "" {
		return runGFBenchJSON(*gfJSON)
	}
	if *gwJSON != "" {
		return runGatewayJSON(*gwJSON)
	}
	if *privJSON != "" {
		return runPrivacyJSON(*privJSON)
	}
	if *chaosArg != "" {
		chaosSeed := *seed
		if chaosSeed == 1 {
			chaosSeed = 0 // flag default: keep the scenario's own seed
		}
		return runChaos(*chaosArg, *chaosJSON, chaosSeed)
	}

	fc := bench.FigureConfig{
		Duration: *duration,
		MuStep:   *muStep,
		Seed:     *seed,
	}
	if *metrics != "" {
		fc.Obs = obs.NewRegistry()
		fc.Trace = obs.NewTrace(0)
		srv, err := obs.StartServer(*metrics, fc.Obs, fc.Trace)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("metrics on http://%s/metrics\n", srv.Addr())
	}

	runners := map[string]func(bench.FigureConfig, bool) error{
		"2":           fig2,
		"3-identical": func(fc bench.FigureConfig, csv bool) error { return fig3(bench.Identical(100), fc, csv) },
		"3-diverse":   func(fc bench.FigureConfig, csv bool) error { return fig3(bench.Diverse(), fc, csv) },
		"4":           fig4,
		"5":           fig5,
		"6":           fig6,
		"7":           fig7,
		"compare":     compare,
		"ablations":   ablations,
		"adaptive":    adaptive,
		"limited":     limited,
	}
	if *fig == "all" {
		for _, name := range []string{"2", "3-identical", "3-diverse", "4", "5", "6", "7", "compare", "ablations", "adaptive", "limited"} {
			fmt.Printf("==== figure %s ====\n", name)
			if err := runners[name](fc, *csv); err != nil {
				return fmt.Errorf("figure %s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	}
	runner, ok := runners[*fig]
	if !ok {
		return fmt.Errorf("unknown figure %q", *fig)
	}
	return runner(fc, *csv)
}

func fig2(bench.FigureConfig, bool) error {
	packings, err := bench.Fig2Packing()
	if err != nil {
		return err
	}
	fmt.Println("Figure 2: choosing M over one unit time to maximize rate, r = (3, 4, 8)")
	for m := 1; m <= 3; m++ {
		fmt.Printf("μ = %d:\n%s\n", m, bench.RenderFig2([]int{3, 4, 8}, packings[m]))
	}
	return nil
}

func fig3(setup bench.Setup, fc bench.FigureConfig, csv bool) error {
	points, err := bench.Fig3(setup, fc)
	if err != nil {
		return err
	}
	if csv {
		fmt.Println("setup,kappa,mu,optimal_mbps,actual_mbps")
		for _, p := range points {
			fmt.Printf("%s,%g,%g,%.4f,%.4f\n", setup.Name, p.Kappa, p.Mu, p.OptimalMbps, p.ActualMbps)
		}
		return nil
	}
	fmt.Printf("Figure 3 (%s): optimal and actual rate over κ and μ\n", setup.Name)
	fmt.Printf("%5s %5s %12s %12s %7s\n", "κ", "μ", "optimal", "actual", "gap")
	for _, p := range points {
		gap := (p.OptimalMbps - p.ActualMbps) / p.OptimalMbps * 100
		fmt.Printf("%5.0f %5.2f %9.2f Mb %9.2f Mb %6.2f%%\n", p.Kappa, p.Mu, p.OptimalMbps, p.ActualMbps, gap)
	}
	return nil
}

func fig4(fc bench.FigureConfig, csv bool) error {
	points, err := bench.Fig4(fc)
	if err != nil {
		return err
	}
	if csv {
		fmt.Println("kappa,mu,optimal_ms,actual_ms")
		for _, p := range points {
			fmt.Printf("%g,%g,%.4f,%.4f\n", p.Kappa, p.Mu, p.OptimalMs, p.ActualMs)
		}
		return nil
	}
	fmt.Println("Figure 4: optimal and actual delay at maximum rate (Delayed setup)")
	fmt.Printf("%5s %5s %12s %12s\n", "κ", "μ", "optimal", "actual")
	for _, p := range points {
		fmt.Printf("%5.0f %5.2f %9.3f ms %9.3f ms\n", p.Kappa, p.Mu, p.OptimalMs, p.ActualMs)
	}
	return nil
}

func fig5(fc bench.FigureConfig, csv bool) error {
	points, err := bench.Fig5(fc)
	if err != nil {
		return err
	}
	if csv {
		fmt.Println("kappa,mu,optimal_loss,actual_loss")
		for _, p := range points {
			fmt.Printf("%g,%g,%.6f,%.6f\n", p.Kappa, p.Mu, p.OptimalLoss, p.ActualLoss)
		}
		return nil
	}
	fmt.Println("Figure 5: loss at maximum rate (Lossy setup)")
	fmt.Printf("%5s %5s %10s %10s\n", "κ", "μ", "optimal", "actual")
	for _, p := range points {
		fmt.Printf("%5.0f %5.2f %9.4f%% %9.4f%%\n", p.Kappa, p.Mu, p.OptimalLoss*100, p.ActualLoss*100)
	}
	return nil
}

func scaling(points []bench.ScalingPoint, title string, csv bool) {
	if csv {
		fmt.Println("kappa,channel_mbps,optimal_mbps,actual_mbps")
		for _, p := range points {
			fmt.Printf("%g,%g,%.4f,%.4f\n", p.Kappa, p.ChannelMbps, p.OptimalMbps, p.ActualMbps)
		}
		return
	}
	fmt.Println(title)
	fmt.Printf("%5s %10s %12s %12s\n", "κ", "chan rate", "optimal", "actual")
	for _, p := range points {
		fmt.Printf("%5.0f %7.0f Mb %9.1f Mb %9.1f Mb\n", p.Kappa, p.ChannelMbps, p.OptimalMbps, p.ActualMbps)
	}
}

func fig6(fc bench.FigureConfig, csv bool) error {
	points, err := bench.Fig6(fc)
	if err != nil {
		return err
	}
	scaling(points, "Figure 6: rate with increasing channel rate, μ = 1 (Identical setup, host-limited)", csv)
	return nil
}

func fig7(fc bench.FigureConfig, csv bool) error {
	points, err := bench.Fig7(fc)
	if err != nil {
		return err
	}
	scaling(points, "Figure 7: rate with increasing channel rate, μ = 5 (Identical setup, host-limited)", csv)
	return nil
}

func compare(fc bench.FigureConfig, csv bool) error {
	rows, err := bench.CompareProtocols(fc)
	if err != nil {
		return err
	}
	if csv {
		fmt.Println("loss_pct,micss_mbps,micss_delay_ms,micss_retx,remicss_mbps,remicss_loss_pct,striping_mbps,striping_loss_pct")
		for _, r := range rows {
			fmt.Printf("%g,%.4f,%.4f,%d,%.4f,%.4f,%.4f,%.4f\n",
				r.LossPct, r.MICSSMbps, r.MICSSDelayMs, r.MICSSRetx,
				r.ReMICSSMbps, r.ReMICSSLossPct, r.StripingMbps, r.StripingLossPct)
		}
		return nil
	}
	fmt.Println("Protocol comparison on 5 identical 50 Mbps channels (not a paper figure)")
	fmt.Printf("%6s | %22s | %20s | %18s\n", "loss", "MICSS (κ=μ=5, reliable)", "ReMICSS (κ=3, μ=5)", "striping (κ=μ=1)")
	for _, r := range rows {
		fmt.Printf("%5.1f%% | %7.2f Mb %6.2fms %4d rtx | %7.2f Mb %5.2f%% lost | %6.1f Mb %5.2f%% lost\n",
			r.LossPct, r.MICSSMbps, r.MICSSDelayMs, r.MICSSRetx,
			r.ReMICSSMbps, r.ReMICSSLossPct, r.StripingMbps, r.StripingLossPct)
	}
	return nil
}

func ablations(fc bench.FigureConfig, csv bool) error {
	type row struct {
		name         string
		achievedMbps float64
		lossPct      float64
		// showLoss distinguishes measurements at the design operating point
		// (loss meaningful) from saturation probes (loss is just
		// offered-minus-capacity).
		showLoss bool
	}
	var rows []row

	// Chooser ordering on the Identical setup (κ=1, μ=3).
	for _, idx := range []bool{false, true} {
		name := "chooser=least-backlog"
		if idx {
			name = "chooser=index-order"
		}
		res, err := bench.Run(bench.RunConfig{
			Setup:             bench.Identical(100),
			Kappa:             1,
			Mu:                3,
			OfferedMbps:       1000,
			Duration:          fc.Duration,
			Seed:              fc.Seed,
			IndexOrderChooser: idx,
		})
		if err != nil {
			return err
		}
		rows = append(rows, row{name: name, achievedMbps: res.AchievedMbps})
	}
	// Dynamic vs static LP schedule on the Lossy setup at R_C.
	for _, kind := range []bench.ChooserKind{bench.ChooserDynamic, bench.ChooserStaticMaxRate} {
		name := "schedule=dynamic"
		if kind == bench.ChooserStaticMaxRate {
			name = "schedule=static-lp"
		}
		res, err := bench.Run(bench.RunConfig{
			Setup:       bench.Lossy(),
			Kappa:       2,
			Mu:          3,
			Chooser:     kind,
			OfferedMbps: 75,
			Duration:    fc.Duration,
			Seed:        fc.Seed,
		})
		if err != nil {
			return err
		}
		rows = append(rows, row{name: name, achievedMbps: res.AchievedMbps,
			lossPct: res.LossFraction * 100, showLoss: true})
	}

	if csv {
		fmt.Println("ablation,achieved_mbps,loss_pct")
		for _, r := range rows {
			fmt.Printf("%s,%.4f,%.4f\n", r.name, r.achievedMbps, r.lossPct)
		}
		return nil
	}
	fmt.Println("Ablations (see DESIGN.md section 5)")
	fmt.Printf("%-28s %12s %9s\n", "variant", "achieved", "loss")
	for _, r := range rows {
		loss := "        -"
		if r.showLoss {
			loss = fmt.Sprintf("%8.3f%%", r.lossPct)
		}
		fmt.Printf("%-28s %9.2f Mb %s\n", r.name, r.achievedMbps, loss)
	}
	return nil
}

func adaptive(fc bench.FigureConfig, csv bool) error {
	epochs, err := bench.RunAdaptive(bench.AdaptiveConfig{Seed: fc.Seed})
	if err != nil {
		return err
	}
	if csv {
		fmt.Println("t_seconds,loss,mu,goodput_mbps")
		for _, e := range epochs {
			fmt.Printf("%.2f,%.4f,%g,%.3f\n", e.At.Seconds(), e.Loss, e.Mu, e.GoodputMbps)
		}
		return nil
	}
	fmt.Println("Adaptive recovery: 25% loss burst at t=4s, controller target 2% (extension)")
	fmt.Printf("%8s %8s %5s %12s\n", "t", "loss", "μ", "goodput")
	for _, e := range epochs {
		fmt.Printf("%7.1fs %7.2f%% %5g %9.2f Mb\n", e.At.Seconds(), e.Loss*100, e.Mu, e.GoodputMbps)
	}
	return nil
}

func limited(fc bench.FigureConfig, csv bool) error {
	rows, err := bench.CompareLimited(fc)
	if err != nil {
		return err
	}
	if csv {
		fmt.Println("kappa,mu,unlimited_risk,limited_risk,unlimited_delay_ms,limited_delay_ms")
		for _, r := range rows {
			fmt.Printf("%g,%g,%.6f,%.6f,%.4f,%.4f\n",
				r.Kappa, r.Mu, r.UnlimitedRisk, r.LimitedRisk, r.UnlimitedDelayMs, r.LimitedDelayMs)
		}
		return nil
	}
	fmt.Println("Section IV-E: limited vs unlimited schedule optima (penalties from restricting to M')")
	fmt.Printf("%5s %5s | %10s %10s | %11s %11s\n",
		"κ", "μ", "risk", "risk(ltd)", "delay", "delay(ltd)")
	for _, r := range rows {
		fmt.Printf("%5.0f %5.2f | %10.5f %10.5f | %9.3fms %9.3fms\n",
			r.Kappa, r.Mu, r.UnlimitedRisk, r.LimitedRisk, r.UnlimitedDelayMs, r.LimitedDelayMs)
	}
	return nil
}
