package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"remicss/internal/obs"
	"remicss/internal/remicss"
	"remicss/internal/sharing"
)

// benchPayloadBytes is the symbol size for the pipeline benchmarks,
// matching DefaultPayloadBytes and the in-package hot-path benchmarks.
const benchPayloadBytes = 1400

// discardLink accepts and drops every datagram, isolating the sender's own
// cost the same way the in-package benchmarks do.
type discardLink struct{}

func (discardLink) Send(datagram []byte) bool { return true }
func (discardLink) Writable() bool            { return true }
func (discardLink) Backlog() time.Duration    { return 0 }

// benchRunner is testing.Benchmark, swappable in tests so the smoke test
// does not spend a second per benchmark.
var benchRunner = testing.Benchmark

// benchEntry is one benchmark result in the JSON report.
type benchEntry struct {
	Name        string  `json:"name"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
}

// benchReport is the BENCH_pipeline.json schema. Host facts are recorded
// so a single-core result is never mistaken for a parallel-speedup claim.
type benchReport struct {
	Schema       string       `json:"schema"`
	GOOS         string       `json:"goos"`
	GOARCH       string       `json:"goarch"`
	NumCPU       int          `json:"num_cpu"`
	GOMAXPROCS   int          `json:"gomaxprocs"`
	PayloadBytes int          `json:"payload_bytes"`
	Benchmarks   []benchEntry `json:"benchmarks"`
	// ParallelSpeedup maps each scheme path to ops/s(send_parallel) over
	// ops/s(send_serialized): the aggregate-throughput gain of the
	// lock-split sender over the single-mutex design at this GOMAXPROCS.
	ParallelSpeedup map[string]float64 `json:"parallel_speedup"`
}

// newBenchSender builds the benchmark sender: m discard links, fixed
// (k, mask), constant clock, metrics and tracing on (throughput numbers
// must include the instrumentation cost, per the obs design contract).
func newBenchSender(k, m int) (*remicss.Sender, error) {
	links := make([]remicss.Link, m)
	for i := range links {
		links[i] = discardLink{}
	}
	return remicss.NewSender(remicss.SenderConfig{
		Scheme:  sharing.NewAuto(nil), // shared DRBG pool: safe for concurrent Send
		Chooser: remicss.FixedChooser{K: k, Mask: 1<<uint(m) - 1},
		Clock:   func() time.Duration { return 0 },
		Metrics: obs.NewRegistry(),
		Trace:   obs.NewTrace(1 << 12),
	}, links)
}

// toEntry converts a testing.BenchmarkResult.
func toEntry(name string, r testing.BenchmarkResult) benchEntry {
	e := benchEntry{
		Name:        name,
		Ops:         r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if e.NsPerOp > 0 {
		e.OpsPerSec = 1e9 / e.NsPerOp
		e.MBPerSec = float64(benchPayloadBytes) * e.OpsPerSec / 1e6
	}
	return e
}

// runBenchJSON runs the parallel-pipeline benchmark suite and writes the
// report to path. The suite mirrors the in-package benchmarks
// (BenchmarkSendParallel / BenchmarkSendSerialized / BenchmarkSendBatch):
// for each scheme fast path it measures aggregate Send throughput with
// every proc hammering one sender, then the identical workload forced
// through one global mutex — the pre-refactor design — and reports the
// ratio.
func runBenchJSON(path string) error {
	payload := bytes.Repeat([]byte{0x5a}, benchPayloadBytes)
	paths := []struct {
		name string
		k, m int
	}{
		{"replication-1of3", 1, 3},
		{"xor-3of3", 3, 3},
	}

	report := benchReport{
		Schema:          "remicss-bench-pipeline/v1",
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		NumCPU:          runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		PayloadBytes:    benchPayloadBytes,
		ParallelSpeedup: make(map[string]float64),
	}

	for _, tc := range paths {
		par, err := newBenchSender(tc.k, tc.m)
		if err != nil {
			return err
		}
		parRes := benchRunner(func(b *testing.B) {
			b.SetBytes(benchPayloadBytes)
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := par.Send(payload); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
		parEntry := toEntry("send_parallel/"+tc.name, parRes)
		report.Benchmarks = append(report.Benchmarks, parEntry)

		ser, err := newBenchSender(tc.k, tc.m)
		if err != nil {
			return err
		}
		var mu sync.Mutex
		serRes := benchRunner(func(b *testing.B) {
			b.SetBytes(benchPayloadBytes)
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					mu.Lock()
					err := ser.Send(payload)
					mu.Unlock()
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		})
		serEntry := toEntry("send_serialized/"+tc.name, serRes)
		report.Benchmarks = append(report.Benchmarks, serEntry)

		if serEntry.OpsPerSec > 0 {
			report.ParallelSpeedup[tc.name] = parEntry.OpsPerSec / serEntry.OpsPerSec
		}
	}

	// The amortized burst path, single caller.
	const burst = 16
	payloads := make([][]byte, burst)
	for i := range payloads {
		payloads[i] = payload
	}
	batch, err := newBenchSender(1, 3)
	if err != nil {
		return err
	}
	batchRes := benchRunner(func(b *testing.B) {
		b.SetBytes(burst * benchPayloadBytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := batch.SendBatch(payloads); err != nil {
				b.Fatal(err)
			}
		}
	})
	be := toEntry("send_batch/replication-1of3-burst16", batchRes)
	// One op is a 16-symbol burst; report per-symbol rates.
	be.OpsPerSec *= burst
	be.MBPerSec = float64(benchPayloadBytes) * be.OpsPerSec / 1e6
	report.Benchmarks = append(report.Benchmarks, be)

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	for _, e := range report.Benchmarks {
		fmt.Printf("%-40s %12.0f ops/s %10.0f ns/op %4d allocs/op\n",
			e.Name, e.OpsPerSec, e.NsPerOp, e.AllocsPerOp)
	}
	for name, s := range report.ParallelSpeedup {
		fmt.Printf("parallel speedup (%s, GOMAXPROCS=%d): %.2fx\n", name, report.GOMAXPROCS, s)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
