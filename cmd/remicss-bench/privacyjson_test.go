package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"remicss/internal/chaos"
)

// TestPrivacyJSONReport exercises the -privacy-json wiring end to end over
// the real catalog: every scenario gets a row, the correlated-blackout row
// carries the model's headline (correlated exposure strictly above the
// independence assumption, leakage bound strictly above both under λ = 1),
// and the ungrouped rows stay controlled baselines.
func TestPrivacyJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_privacy.json")
	if err := runPrivacyJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report privacyBenchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatal(err)
	}
	if report.Schema != "remicss-bench-privacy/v1" {
		t.Errorf("schema %q", report.Schema)
	}
	if report.PartialBits != privacyPartialBits {
		t.Errorf("partial_bits %d, want %d", report.PartialBits, privacyPartialBits)
	}
	if len(report.Scenarios) != len(chaos.Names()) {
		t.Fatalf("%d rows, want one per catalog scenario (%d)",
			len(report.Scenarios), len(chaos.Names()))
	}
	var corrRow *privacyScenarioEntry
	for i := range report.Scenarios {
		e := &report.Scenarios[i]
		if e.SymbolsScored <= 0 {
			t.Errorf("%s: no symbols scored", e.Scenario)
		}
		if !e.Pass {
			t.Errorf("%s: catalog scenario fails its gates", e.Scenario)
		}
		// λ = 1: the advantage bound strictly dominates plain exposure.
		if e.LeakageBound <= e.MaxCorrelatedExposure {
			t.Errorf("%s: leakage bound %v not above max correlated exposure %v",
				e.Scenario, e.LeakageBound, e.MaxCorrelatedExposure)
		}
		if e.Scenario == "corrblackout" {
			corrRow = e
			continue
		}
		if len(e.Groups) != 0 {
			t.Errorf("%s: unexpected shared-risk groups %b", e.Scenario, e.Groups)
		}
		if e.MeanCorrelatedExposure != e.MeanIndependentExposure {
			t.Errorf("%s: baseline row diverged: correlated %v vs independent %v",
				e.Scenario, e.MeanCorrelatedExposure, e.MeanIndependentExposure)
		}
	}
	if corrRow == nil {
		t.Fatal("corrblackout row missing")
	}
	if len(corrRow.Groups) != 1 || corrRow.Groups[0] != 0b011 {
		t.Errorf("corrblackout groups %b, want [0b011]", corrRow.Groups)
	}
	if corrRow.MeanCorrelatedExposure <= corrRow.MeanIndependentExposure {
		t.Errorf("corrblackout correlated exposure %v not strictly above independent %v",
			corrRow.MeanCorrelatedExposure, corrRow.MeanIndependentExposure)
	}
}
