package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"remicss/internal/bench"
	"remicss/internal/gf256"
	"remicss/internal/udptrans"
)

// tinyCfg keeps the smoke runs in the milliseconds range.
func tinyCfg() bench.FigureConfig {
	return bench.FigureConfig{Duration: 50 * time.Millisecond, MuStep: 2, Seed: 1}
}

// TestFigureRunnersSmoke exercises every runner in both output modes so a
// broken format string or sweep cannot ship unnoticed.
func TestFigureRunnersSmoke(t *testing.T) {
	runners := map[string]func(bench.FigureConfig, bool) error{
		"fig2":      fig2,
		"fig4":      fig4,
		"fig5":      fig5,
		"ablations": ablations,
		"adaptive":  adaptive,
		"compare":   compare,
	}
	for name, fn := range runners {
		for _, csv := range []bool{false, true} {
			if err := fn(tinyCfg(), csv); err != nil {
				t.Errorf("%s (csv=%v): %v", name, csv, err)
			}
		}
	}
	if err := fig3(bench.Identical(100), tinyCfg(), true); err != nil {
		t.Errorf("fig3: %v", err)
	}
}

// TestBenchJSONReport exercises the -bench-json wiring end to end with the
// benchmark runner stubbed to a handful of iterations, so the report
// structure and speedup arithmetic are covered without a seconds-long
// measurement in the test suite.
func TestBenchJSONReport(t *testing.T) {
	saved := benchRunner
	benchRunner = func(f func(b *testing.B)) testing.BenchmarkResult {
		res := testing.Benchmark(func(b *testing.B) {
			if b.N > 16 {
				b.Skip("stubbed runner stops after the first rounds")
			}
			f(b)
		})
		if res.N == 0 {
			// The skip above leaves the final (large-N) round unrecorded;
			// synthesize a plausible result so toEntry has data.
			res = testing.BenchmarkResult{N: 16, T: 16 * time.Microsecond}
		}
		return res
	}
	defer func() { benchRunner = saved }()

	path := filepath.Join(t.TempDir(), "BENCH_pipeline.json")
	if err := runBenchJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatal(err)
	}
	if report.Schema != "remicss-bench-pipeline/v1" {
		t.Errorf("schema %q", report.Schema)
	}
	if report.GOMAXPROCS != runtime.GOMAXPROCS(0) || report.NumCPU != runtime.NumCPU() {
		t.Errorf("host facts not recorded: %+v", report)
	}
	want := map[string]bool{
		"send_parallel/replication-1of3":      false,
		"send_serialized/replication-1of3":    false,
		"send_parallel/xor-3of3":              false,
		"send_serialized/xor-3of3":            false,
		"send_batch/replication-1of3-burst16": false,
	}
	for _, e := range report.Benchmarks {
		if _, ok := want[e.Name]; !ok {
			t.Errorf("unexpected benchmark %q", e.Name)
			continue
		}
		want[e.Name] = true
		if e.Ops <= 0 || e.NsPerOp <= 0 || e.OpsPerSec <= 0 {
			t.Errorf("%s: degenerate result %+v", e.Name, e)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("benchmark %q missing from report", name)
		}
	}
	for _, path := range []string{"replication-1of3", "xor-3of3"} {
		if report.ParallelSpeedup[path] <= 0 {
			t.Errorf("no parallel speedup recorded for %s", path)
		}
	}
}

// TestGFBenchJSONReport exercises the -gf-json wiring end to end with the
// benchmark runner stubbed, covering the per-kernel pass entries, both
// randomness sources, and the baseline/fast split legs plus their speedup
// arithmetic without a seconds-long measurement.
func TestGFBenchJSONReport(t *testing.T) {
	saved := benchRunner
	benchRunner = func(f func(b *testing.B)) testing.BenchmarkResult {
		res := testing.Benchmark(func(b *testing.B) {
			if b.N > 16 {
				b.Skip("stubbed runner stops after the first rounds")
			}
			f(b)
		})
		if res.N == 0 {
			res = testing.BenchmarkResult{N: 16, T: 16 * time.Microsecond}
		}
		return res
	}
	defer func() { benchRunner = saved }()

	path := filepath.Join(t.TempDir(), "BENCH_gf.json")
	if err := runGFBenchJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report gfBenchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatal(err)
	}
	if report.Schema != "remicss-bench-gf/v1" {
		t.Errorf("schema %q", report.Schema)
	}
	if report.Kernel != gf256.KernelName() {
		t.Errorf("kernel %q, selected %q", report.Kernel, gf256.KernelName())
	}
	want := map[string]bool{
		"rand_read_4KiB/crypto_rand": false,
		"rand_read_4KiB/drbg_pool":   false,
		"split_baseline/xor-3of3":    false,
		"split_fast/xor-3of3":        false,
		"split_baseline/shamir-3of5": false,
		"split_fast/shamir-3of5":     false,
	}
	for _, name := range gf256.Kernels() {
		want["gf_addmul_pass/"+name] = false
	}
	for _, e := range report.Benchmarks {
		if _, ok := want[e.Name]; !ok {
			t.Errorf("unexpected benchmark %q", e.Name)
			continue
		}
		want[e.Name] = true
		if e.Ops <= 0 || e.NsPerOp <= 0 || e.MBPerSec <= 0 {
			t.Errorf("%s: degenerate result %+v", e.Name, e)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("benchmark %q missing from report", name)
		}
	}
	for _, scheme := range []string{"xor-3of3", "shamir-3of5"} {
		if report.SplitSpeedup[scheme] <= 0 {
			t.Errorf("no split speedup recorded for %s", scheme)
		}
	}
}

// TestGatewayBenchJSONReport exercises the -gateway-json wiring end to end
// at a reduced scale: a few thousand held sessions and a small multiplexed
// transfer per compiled batch mode plus the per-session-socket baseline,
// enough to cover the report structure, the retransmission loop, and the
// cross-leg byte-identity comparison without the full benchmark's runtime.
func TestGatewayBenchJSONReport(t *testing.T) {
	saved := gatewayBenchParams
	gatewayBenchParams.HoldSessions = 2000
	gatewayBenchParams.HoldDispatches = 1 << 12
	gatewayBenchParams.Sessions = 8
	gatewayBenchParams.PerSession = 32
	gatewayBenchParams.Channels = 2
	gatewayBenchParams.Batch = 8
	gatewayBenchParams.PayloadBytes = 64
	gatewayBenchParams.Reps = 1
	gatewayBenchParams.Deadline = 20 * time.Second
	defer func() { gatewayBenchParams = saved }()

	path := filepath.Join(t.TempDir(), "BENCH_gateway.json")
	if err := runGatewayJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report gatewayBenchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatal(err)
	}
	if report.Schema != "remicss-bench-gateway/v1" {
		t.Errorf("schema %q", report.Schema)
	}
	if report.Hold.Sessions != 2000 || report.Hold.BytesPerSessionFull <= 0 {
		t.Errorf("degenerate hold leg: %+v", report.Hold)
	}
	if report.Hold.DispatchNsPerOp <= 0 || report.Hold.RegisterNsPerSession <= 0 {
		t.Errorf("hold timings missing: %+v", report.Hold)
	}
	// One gateway leg per compiled batch mode, then the baseline.
	if len(report.Transfers) != len(udptrans.BatchModes())+1 {
		t.Fatalf("%d transfer legs, want %d", len(report.Transfers), len(udptrans.BatchModes())+1)
	}
	baseline := report.Transfers[len(report.Transfers)-1]
	if baseline.Leg != "baseline" || baseline.Sockets != 8*2 {
		t.Errorf("baseline leg malformed: %+v", baseline)
	}
	for _, leg := range report.Transfers {
		if leg.Datagrams != 8*32 || leg.DatagramsPerSec <= 0 {
			t.Errorf("%s: degenerate transfer %+v", leg.Leg, leg)
		}
		if leg.Sends < leg.Datagrams {
			t.Errorf("%s: %d sends for %d datagrams", leg.Leg, leg.Sends, leg.Datagrams)
		}
		if leg.Mismatches != 0 {
			t.Errorf("%s: %d byte mismatches", leg.Leg, leg.Mismatches)
		}
		if leg.DeliveredDigest != report.Transfers[0].DeliveredDigest {
			t.Errorf("leg %s delivered different bytes than %s", leg.Leg, report.Transfers[0].Leg)
		}
		if leg.Leg == "baseline" {
			continue
		}
		if leg.SocketSent <= 0 || leg.SocketRecv <= 0 || leg.BatchWriteCalls <= 0 || leg.BatchReadCalls <= 0 {
			t.Errorf("%s: kernel-call accounting missing: %+v", leg.Leg, leg)
		}
		if leg.Leg == "gateway/portable" && leg.SendSyscallsPerDatagram != 1 {
			t.Errorf("portable send syscalls/datagram = %v, want exactly 1", leg.SendSyscallsPerDatagram)
		}
		if leg.Leg != "gateway/portable" && leg.SendSyscallsPerDatagram >= 1 {
			t.Errorf("%s send syscalls/datagram = %v, want < 1", leg.Leg, leg.SendSyscallsPerDatagram)
		}
	}
	if !report.Goals.DeliveryIdenticalOK {
		t.Error("delivery_identical_ok = false")
	}
	// The 100k threshold is intentionally not met at test scale.
	if report.Goals.HoldSessionsOK {
		t.Error("hold_sessions_ok = true at 2000 sessions")
	}
}

// TestScheduleJSONReport exercises the -schedule-json wiring end to end
// with the benchmark runner stubbed, covering all three solve tiers across
// the size sweep without a seconds-long measurement.
func TestScheduleJSONReport(t *testing.T) {
	saved := benchRunner
	benchRunner = func(f func(b *testing.B)) testing.BenchmarkResult {
		res := testing.Benchmark(func(b *testing.B) {
			if b.N > 4 {
				b.Skip("stubbed runner stops after the first rounds")
			}
			f(b)
		})
		if res.N == 0 {
			res = testing.BenchmarkResult{N: 4, T: 4 * time.Microsecond}
		}
		return res
	}
	defer func() { benchRunner = saved }()

	path := filepath.Join(t.TempDir(), "BENCH_schedule.json")
	if err := runScheduleJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report scheduleBenchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatal(err)
	}
	if report.Schema != "remicss-bench-schedule/v1" {
		t.Errorf("schema %q", report.Schema)
	}
	if len(report.Benchmarks) != len(scheduleBenchSizes) {
		t.Fatalf("%d entries, want %d", len(report.Benchmarks), len(scheduleBenchSizes))
	}
	for i, e := range report.Benchmarks {
		if e.N != scheduleBenchSizes[i] {
			t.Errorf("entry %d: n=%d, want %d", i, e.N, scheduleBenchSizes[i])
		}
		wantProgram := "section-ivb"
		if e.N > 22 {
			wantProgram = "wide"
		}
		if e.Program != wantProgram {
			t.Errorf("n=%d: program %q, want %q", e.N, e.Program, wantProgram)
		}
		if e.BuildNsPerOp <= 0 || e.ColdNsPerSolve <= 0 || e.WarmNsPerSolve <= 0 || e.CachedNsPerSolve <= 0 {
			t.Errorf("n=%d: degenerate tier latencies %+v", e.N, e)
		}
		if e.WarmSolves <= 0 {
			t.Errorf("n=%d: no warm solves recorded", e.N)
		}
		if e.CachedAllocsPerOp != 0 {
			t.Errorf("n=%d: cache hit allocates %d per op, want 0", e.N, e.CachedAllocsPerOp)
		}
		if e.HitRate <= 0 || e.HitRate > 1 {
			t.Errorf("n=%d: hit rate %v outside (0, 1]", e.N, e.HitRate)
		}
	}
}
