package main

import (
	"testing"
	"time"

	"remicss/internal/bench"
)

// tinyCfg keeps the smoke runs in the milliseconds range.
func tinyCfg() bench.FigureConfig {
	return bench.FigureConfig{Duration: 50 * time.Millisecond, MuStep: 2, Seed: 1}
}

// TestFigureRunnersSmoke exercises every runner in both output modes so a
// broken format string or sweep cannot ship unnoticed.
func TestFigureRunnersSmoke(t *testing.T) {
	runners := map[string]func(bench.FigureConfig, bool) error{
		"fig2":      fig2,
		"fig4":      fig4,
		"fig5":      fig5,
		"ablations": ablations,
		"adaptive":  adaptive,
		"compare":   compare,
	}
	for name, fn := range runners {
		for _, csv := range []bool{false, true} {
			if err := fn(tinyCfg(), csv); err != nil {
				t.Errorf("%s (csv=%v): %v", name, csv, err)
			}
		}
	}
	if err := fig3(bench.Identical(100), tinyCfg(), true); err != nil {
		t.Errorf("fig3: %v", err)
	}
}
