package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"remicss/internal/bench"
	"remicss/internal/chaos"
	"remicss/internal/leakage"
)

// privacyPartialBits is the per-observed-share partial leakage λ assumed by
// the -privacy-json sweep: one bit of each GF(2^8) share leaks to the
// correlated adversary, so the leakage-bound column strictly dominates the
// plain exposure column instead of collapsing onto it (λ = 0 makes the two
// bit-identical by construction).
const privacyPartialBits = 1

// privacyScenarioEntry is one catalog scenario's privacy verdict in
// BENCH_privacy.json: the delivery context plus the full privacy report —
// independent vs correlated exposure and the leakage-aware advantage bound.
type privacyScenarioEntry struct {
	Scenario      string  `json:"scenario"`
	Seed          int64   `json:"seed"`
	Delivered     int64   `json:"delivered"`
	Offered       int64   `json:"offered"`
	DeliveryRatio float64 `json:"delivery_ratio"`
	Pass          bool    `json:"pass"`

	bench.PrivacyReport
}

// privacyBenchReport is the BENCH_privacy.json schema.
type privacyBenchReport struct {
	Schema      string                 `json:"schema"`
	GOOS        string                 `json:"goos"`
	GOARCH      string                 `json:"goarch"`
	NumCPU      int                    `json:"num_cpu"`
	GOMAXPROCS  int                    `json:"gomaxprocs"`
	PartialBits int                    `json:"partial_bits"`
	Scenarios   []privacyScenarioEntry `json:"scenarios"`
}

// runPrivacyJSON replays every builtin chaos scenario with privacy scoring
// armed and writes the per-scenario verdicts to path. Scenarios without
// overlapping blackouts derive no shared-risk groups and serve as baseline
// rows where the correlated and independent columns coincide; the
// correlated-blackout scenarios are the rows the model exists for.
func runPrivacyJSON(path string) error {
	report := privacyBenchReport{
		Schema:      "remicss-bench-privacy/v1",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		PartialBits: privacyPartialBits,
	}
	for _, name := range chaos.Names() {
		sc, _ := chaos.Builtin(name)
		res, err := bench.RunChaos(bench.ChaosConfig{
			Scenario: sc,
			Privacy: &bench.PrivacyConfig{
				Leakage: leakage.Config{PartialBits: privacyPartialBits},
			},
		})
		if err != nil {
			return fmt.Errorf("scenario %s: %w", name, err)
		}
		report.Scenarios = append(report.Scenarios, privacyScenarioEntry{
			Scenario:      res.Scenario,
			Seed:          res.Seed,
			Delivered:     res.Delivered,
			Offered:       res.Offered,
			DeliveryRatio: res.DeliveryRatio,
			Pass:          res.Pass(),
			PrivacyReport: *res.Privacy,
		})
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("Privacy verdicts over the chaos catalog (λ = %d bit/share, ρ defaults to %.1f for derived groups)\n",
		privacyPartialBits, bench.DefaultPrivacyRho)
	fmt.Printf("%-14s %-8s %9s %9s %9s %9s %7s %5s\n",
		"scenario", "groups", "mean ind", "mean corr", "max corr", "leak ε", "alerts", "pass")
	for _, e := range report.Scenarios {
		groups := "-"
		if len(e.Groups) > 0 {
			groups = ""
			for i, g := range e.Groups {
				if i > 0 {
					groups += ","
				}
				groups += fmt.Sprintf("%#b", g)
			}
		}
		fmt.Printf("%-14s %-8s %9.5f %9.5f %9.5f %9.5f %7d %5v\n",
			e.Scenario, groups, e.MeanIndependentExposure, e.MeanCorrelatedExposure,
			e.MaxCorrelatedExposure, e.LeakageBound, e.Alerts, e.Pass)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
