package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"remicss"
)

func TestParseChannels(t *testing.T) {
	set, err := parseChannels("0.3:0.01:2.5ms:446, 0.1:0.005:250us:1786")
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("parsed %d channels", len(set))
	}
	want := remicss.Channel{Risk: 0.3, Loss: 0.01, Delay: 2500 * time.Microsecond, Rate: 446}
	if set[0] != want {
		t.Errorf("channel 0 = %+v, want %+v", set[0], want)
	}
	if err := set.Validate(); err != nil {
		t.Errorf("parsed set invalid: %v", err)
	}
}

func TestParseChannelsErrors(t *testing.T) {
	cases := []string{
		"0.3:0.01:2.5ms",        // too few fields
		"x:0.01:2.5ms:446",      // bad risk
		"0.3:y:2.5ms:446",       // bad loss
		"0.3:0.01:notadur:446",  // bad delay
		"0.3:0.01:2.5ms:qqq",    // bad rate
		"0.3:0.01:2.5ms:446:77", // too many fields
	}
	for _, spec := range cases {
		if _, err := parseChannels(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestParseObjective(t *testing.T) {
	for name, want := range map[string]remicss.Objective{
		"risk":  remicss.ObjectiveRisk,
		"loss":  remicss.ObjectiveLoss,
		"delay": remicss.ObjectiveDelay,
	} {
		got, err := parseObjective(name)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("parseObjective(%q) = %v", name, got)
		}
	}
	if _, err := parseObjective("throughput"); err == nil {
		t.Error("unknown objective accepted")
	}
}

func TestChannelsFromTopology(t *testing.T) {
	set, err := channelsFromTopology(
		"a>m:0.2:0.01:2ms:100,m>b:0.1:0.01:3ms:80,a>n:0.3:0.02:5ms:200,n>b:0.2:0.01:1ms:150",
		"a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("derived %d channels, want 2", len(set))
	}
	if err := set.Validate(); err != nil {
		t.Errorf("derived set invalid: %v", err)
	}
}

func TestChannelsFromTopologyErrors(t *testing.T) {
	if _, err := channelsFromTopology("a>b:0.1:0.01:1ms:10", "", "b"); err == nil {
		t.Error("missing src accepted")
	}
	if _, err := channelsFromTopology("nonsense", "a", "b"); err == nil {
		t.Error("malformed edge accepted")
	}
	if _, err := channelsFromTopology("a>b:0.1:0.01:1ms:10", "b", "a"); err == nil {
		t.Error("unreachable dst accepted")
	}
	if _, err := channelsFromTopology("a>b:0.1:0.01:1ms", "a", "b"); err == nil {
		t.Error("short property list accepted")
	}
}

func TestChannelsFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "chans.json")
	spec := `[{"risk":0.3,"loss":0.01,"delay":"2.5ms","rate":446}]`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	set, err := channelsFromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || set[0].Rate != 446 {
		t.Errorf("parsed %+v", set)
	}
	if _, err := channelsFromFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := channelsFromFile(bad); err == nil {
		t.Error("malformed file accepted")
	}
}
