// Command remicss-opt is the optimality calculator: given a channel set, it
// prints the paper's extremal metrics, the achievable-rate curve of Theorem
// 4, and (for a chosen κ and μ) the LP-optimal share schedule.
//
// Channels are given as comma-separated risk:loss:delay:rate quadruples,
// with delay parsed as a Go duration and rate in symbols per second:
//
//	remicss-opt -channels "0.3:0.01:2.5ms:446,0.1:0.005:0.25ms:1786" \
//	    -kappa 1.5 -mu 2 -objective risk -maxrate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"remicss"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "remicss-opt:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		channels  = flag.String("channels", "", "channel quadruples risk:loss:delay:rate, comma separated")
		edges     = flag.String("edges", "", "topology edges from>to:risk:loss:delay:rate, comma separated (alternative to -channels)")
		src       = flag.String("src", "", "sender node (with -edges)")
		dst       = flag.String("dst", "", "receiver node (with -edges)")
		kappa     = flag.Float64("kappa", 0, "average threshold κ (0 to skip schedule optimization)")
		mu        = flag.Float64("mu", 0, "average multiplicity μ")
		objective = flag.String("objective", "risk", "schedule objective: risk, loss, delay")
		maxRate   = flag.Bool("maxrate", false, "constrain the schedule to achieve the optimal rate (Section IV-D)")
		limited   = flag.Bool("limited", false, "restrict to limited schedules (Section IV-E, MICSS threat model)")
		muStep    = flag.Float64("mustep", 0.5, "step for the R_C(μ) table")
		file      = flag.String("file", "", "JSON file with a channel list (alternative to -channels/-edges)")
		jsonOut   = flag.Bool("json", false, "emit the optimized schedule as JSON instead of tables")
	)
	flag.Parse()
	var set remicss.ChannelSet
	var err error
	sources := 0
	for _, s := range []string{*channels, *edges, *file} {
		if s != "" {
			sources++
		}
	}
	switch {
	case sources > 1:
		return fmt.Errorf("-channels, -edges, and -file are mutually exclusive")
	case *channels != "":
		set, err = parseChannels(*channels)
	case *edges != "":
		set, err = channelsFromTopology(*edges, *src, *dst)
	case *file != "":
		set, err = channelsFromFile(*file)
	default:
		return fmt.Errorf("missing -channels, -edges, or -file (see -help)")
	}
	if err != nil {
		return err
	}
	if err := set.Validate(); err != nil {
		return err
	}
	if !*jsonOut {
		printOverview(set)
		printRateCurve(set, *muStep)
	}
	if *kappa > 0 {
		obj, err := parseObjective(*objective)
		if err != nil {
			return err
		}
		if *jsonOut {
			return printScheduleJSON(set, *kappa, *mu, obj, *maxRate, *limited)
		}
		return printSchedule(set, *kappa, *mu, obj, *maxRate, *limited)
	}
	return nil
}

// channelsFromFile reads a JSON channel list: [{"risk":..,"loss":..,
// "delay":"2.5ms","rate":..}, ...].
func channelsFromFile(path string) (remicss.ChannelSet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var set remicss.ChannelSet
	if err := json.Unmarshal(data, &set); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return set, nil
}

// printScheduleJSON emits {"schedule": [...], "kappa": .., "mu": ..,
// "risk": .., "loss": .., "delay_ms": .., "rate": ..} for machine
// consumption.
func printScheduleJSON(set remicss.ChannelSet, kappa, mu float64, obj remicss.Objective, maxRate, limited bool) error {
	opts := remicss.ScheduleOptions{Limited: limited}
	var (
		sched remicss.Schedule
		err   error
	)
	if maxRate {
		sched, err = remicss.OptimizeScheduleAtMaxRate(set, kappa, mu, obj, opts)
	} else {
		sched, err = remicss.OptimizeSchedule(set, kappa, mu, obj, opts)
	}
	if err != nil {
		return err
	}
	rc, err := set.OptimalRate(mu)
	if err != nil {
		return err
	}
	out := struct {
		Schedule remicss.Schedule `json:"schedule"`
		Kappa    float64          `json:"kappa"`
		Mu       float64          `json:"mu"`
		Risk     float64          `json:"risk"`
		Loss     float64          `json:"loss"`
		DelayMs  float64          `json:"delay_ms"`
		Rate     float64          `json:"rate"`
	}{
		Schedule: sched,
		Kappa:    sched.Kappa(),
		Mu:       sched.Mu(),
		Risk:     sched.Risk(set),
		Loss:     sched.Loss(set),
		DelayMs:  sched.Delay(set) * 1e3,
		Rate:     rc,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func parseChannels(spec string) (remicss.ChannelSet, error) {
	var set remicss.ChannelSet
	for i, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 4 {
			return nil, fmt.Errorf("channel %d: want risk:loss:delay:rate, got %q", i, part)
		}
		z, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("channel %d risk: %w", i, err)
		}
		l, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("channel %d loss: %w", i, err)
		}
		d, err := time.ParseDuration(fields[2])
		if err != nil {
			return nil, fmt.Errorf("channel %d delay: %w", i, err)
		}
		r, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("channel %d rate: %w", i, err)
		}
		set = append(set, remicss.Channel{Risk: z, Loss: l, Delay: d, Rate: r})
	}
	return set, nil
}

// channelsFromTopology parses edge specs, extracts edge-disjoint src→dst
// paths, and composes them into channels, printing the path structure.
func channelsFromTopology(spec, src, dst string) (remicss.ChannelSet, error) {
	if src == "" || dst == "" {
		return nil, fmt.Errorf("-edges requires -src and -dst")
	}
	var edges []remicss.NetworkEdge
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		arrow := strings.SplitN(part, ">", 2)
		if len(arrow) != 2 {
			return nil, fmt.Errorf("edge %d: want from>to:risk:loss:delay:rate, got %q", i, part)
		}
		rest := strings.SplitN(arrow[1], ":", 2)
		if len(rest) != 2 {
			return nil, fmt.Errorf("edge %d: missing properties in %q", i, part)
		}
		fields := strings.Split(rest[1], ":")
		if len(fields) != 4 {
			return nil, fmt.Errorf("edge %d: want 4 properties, got %d", i, len(fields))
		}
		z, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("edge %d risk: %w", i, err)
		}
		l, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("edge %d loss: %w", i, err)
		}
		d, err := time.ParseDuration(fields[2])
		if err != nil {
			return nil, fmt.Errorf("edge %d delay: %w", i, err)
		}
		r, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("edge %d rate: %w", i, err)
		}
		edges = append(edges, remicss.NetworkEdge{
			From: arrow[0], To: rest[0], Risk: z, Loss: l, Delay: d, Rate: r,
		})
	}
	g, err := remicss.NewNetworkGraph(edges)
	if err != nil {
		return nil, err
	}
	set, paths, err := remicss.DisjointChannels(g, src, dst)
	if err != nil {
		return nil, err
	}
	fmt.Printf("derived %d edge-disjoint channels %s -> %s:\n", len(paths), src, dst)
	for i, p := range paths {
		fmt.Printf("  channel %d: %v\n", i, p.Nodes())
	}
	fmt.Println()
	return set, nil
}

func parseObjective(s string) (remicss.Objective, error) {
	switch s {
	case "risk":
		return remicss.ObjectiveRisk, nil
	case "loss":
		return remicss.ObjectiveLoss, nil
	case "delay":
		return remicss.ObjectiveDelay, nil
	default:
		return 0, fmt.Errorf("unknown objective %q", s)
	}
}

func printOverview(set remicss.ChannelSet) {
	fmt.Printf("channel set: n = %d, total rate = %.2f symbols/s\n", set.N(), set.TotalRate())
	fmt.Printf("  %-3s %8s %8s %12s %12s\n", "i", "risk", "loss", "delay", "rate")
	for i, c := range set {
		fmt.Printf("  %-3d %8.4f %8.4f %12v %12.2f\n", i, c.Risk, c.Loss, c.Delay, c.Rate)
	}
	fmt.Println("\nextremal values (κ, μ free):")
	fmt.Printf("  min risk  Z_C = %.6g   (κ = μ = n: adversary needs every channel)\n", set.MaxPrivacyRisk())
	fmt.Printf("  min loss  L_C = %.6g   (κ = 1, μ = n: any share suffices)\n", set.MinLoss())
	fmt.Printf("  min delay D_C = %.6gms (κ = 1, μ = n: fastest surviving share)\n", set.MinDelay()*1e3)
	fmt.Printf("  max rate  R_C = %.6g symbols/s (κ = μ = 1: striping)\n", set.MaxRate())
	fmt.Printf("  full utilization requires μ <= %.4f (Theorem 2)\n\n", set.FullUtilizationMaxMu())
}

func printRateCurve(set remicss.ChannelSet, step float64) {
	fmt.Println("achievable rate (Theorem 4):")
	fmt.Printf("  %6s %14s\n", "μ", "R_C (sym/s)")
	for mu := 1.0; mu <= float64(set.N())+1e-9; mu += step {
		if mu > float64(set.N()) {
			mu = float64(set.N())
		}
		rc, err := set.OptimalRate(mu)
		if err != nil {
			continue
		}
		fmt.Printf("  %6.2f %14.2f\n", mu, rc)
	}
	fmt.Println()
}

func printSchedule(set remicss.ChannelSet, kappa, mu float64, obj remicss.Objective, maxRate, limited bool) error {
	opts := remicss.ScheduleOptions{Limited: limited}
	var (
		sched remicss.Schedule
		err   error
	)
	if maxRate {
		sched, err = remicss.OptimizeScheduleAtMaxRate(set, kappa, mu, obj, opts)
	} else {
		sched, err = remicss.OptimizeSchedule(set, kappa, mu, obj, opts)
	}
	if err != nil {
		return err
	}
	mode := "unconstrained"
	if maxRate {
		mode = "at maximum rate"
	}
	if limited {
		mode += ", limited (Section IV-E)"
	}
	fmt.Printf("optimal %v schedule for κ = %g, μ = %g (%s):\n", obj, kappa, mu, mode)
	for _, a := range sched.Support() {
		fmt.Printf("  p%v = %.6f\n", a, sched[a])
	}
	fmt.Printf("resulting: Z(p) = %.6g, L(p) = %.6g, D(p) = %.6gms\n",
		sched.Risk(set), sched.Loss(set), sched.Delay(set)*1e3)
	if rc, err := set.OptimalRate(mu); err == nil {
		fmt.Printf("optimal rate at μ = %g: %.2f symbols/s\n", mu, rc)
	}
	// The schedule package is also reachable for diagnostics of utilization.
	if maxRate {
		targets, err := set.UtilizationTargets(mu)
		if err == nil {
			usage := sched.ChannelUsage(set.N())
			fmt.Println("per-channel symbol share (target vs schedule):")
			for i := range targets {
				fmt.Printf("  channel %d: target %.4f, schedule %.4f\n", i, targets[i], usage[i])
			}
		}
	}
	return nil
}
