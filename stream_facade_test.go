package remicss_test

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"remicss"
)

// TestStreamOverUDP pushes an ordered byte stream through the full stack:
// StreamWriter -> Sender -> UDP channels -> Receiver -> StreamOrderer.
func TestStreamOverUDP(t *testing.T) {
	listener, err := remicss.ListenUDP([]string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()

	scheme := remicss.NewSharingScheme(rand.New(rand.NewSource(1)))
	var mu sync.Mutex
	var out bytes.Buffer
	orderer, err := remicss.NewStreamOrderer(256, func(_ uint64, p []byte) { out.Write(p) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := remicss.NewReceiver(remicss.ReceiverConfig{
		Scheme: scheme,
		Clock:  remicss.WallClock,
		OnSymbol: func(seq uint64, payload []byte, _ time.Duration) {
			mu.Lock()
			orderer.Push(seq, payload)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	listener.Serve(recv.HandleDatagram)

	links, err := remicss.DialUDP(listener.Addrs(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, l := range links {
			l.(*remicss.UDPLink).Close()
		}
	}()
	chooser, err := remicss.NewDynamicChooser(2, 3, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	snd, err := remicss.NewSender(remicss.SenderConfig{
		Scheme:  scheme,
		Chooser: chooser,
		Clock:   remicss.WallClock,
	}, links)
	if err != nil {
		t.Fatal(err)
	}
	writer, err := remicss.NewStreamWriter(snd.Send, 512, func(err error) bool {
		if errors.Is(err, remicss.ErrBackpressure) {
			time.Sleep(time.Millisecond)
			return true
		}
		return false
	})
	if err != nil {
		t.Fatal(err)
	}

	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(3)).Read(data)
	if _, err := writer.Write(data); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := out.Len()
		mu.Unlock()
		if n >= len(data) || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	orderer.Flush()
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatalf("stream corrupted: got %d bytes, want %d (skipped %d)",
			out.Len(), len(data), orderer.Stats().Skipped)
	}
}
