package remicss_test

import (
	"fmt"
	"math/bits"
	"math/rand"
	"time"

	"remicss"
)

// exampleHealthLink is a stub channel for the chooser examples: up
// controls both writability and send acceptance.
type exampleHealthLink struct{ up bool }

// Send accepts the datagram while the link is up.
func (l *exampleHealthLink) Send([]byte) bool { return l.up }

// Writable mirrors up.
func (l *exampleHealthLink) Writable() bool { return l.up }

// Backlog reports an empty queue.
func (l *exampleHealthLink) Backlog() time.Duration { return 0 }

// ExampleHealthTracker walks one channel through the full failover cycle:
// repeated send failures raise its failure EWMA past the down threshold,
// a backoff probe re-admits it, and consecutive probe successes recover
// it.
func ExampleHealthTracker() {
	now := time.Duration(0)
	clock := func() time.Duration { return now }
	tracker, _ := remicss.NewHealthTracker(remicss.HealthConfig{}, 2, clock, nil, nil)

	// Channel 0's sends start failing; the default thresholds declare it
	// down after five consecutive failures. Channel 1 is untouched.
	for i := 0; i < 5; i++ {
		tracker.ObserveSend(0, false)
	}
	fmt.Println("after 5 failures:", tracker.State(0), tracker.State(1))

	// Down channels are excluded until the 200ms probe interval elapses.
	fmt.Println("usable immediately:", tracker.Usable(0))
	now = 250 * time.Millisecond
	fmt.Println("probe due:", tracker.Usable(0), tracker.State(0))

	// Three successful probe sends (the default) recover the channel.
	for i := 0; i < 3; i++ {
		tracker.ObserveSend(0, true)
	}
	fmt.Println("after probe sends:", tracker.State(0))
	// Output:
	// after 5 failures: down healthy
	// usable immediately: false
	// probe due: true probing
	// after probe sends: healthy
}

// ExampleNewHealthChooser shows the failover floor: when a channel dies,
// the chooser sheds multiplicity (shares per symbol) but never lets the
// threshold k drop below ⌊κ⌋ — and stalls entirely rather than weaken it.
func ExampleNewHealthChooser() {
	now := time.Duration(0)
	clock := func() time.Duration { return now }
	tracker, _ := remicss.NewHealthTracker(remicss.HealthConfig{}, 3, clock, nil, nil)
	chooser, _ := remicss.NewHealthChooser(2, 3, tracker, rand.New(rand.NewSource(1)))

	a, b, c := &exampleHealthLink{up: true}, &exampleHealthLink{up: true}, &exampleHealthLink{up: true}
	links := []remicss.Link{a, b, c}

	k, mask, _ := chooser.Choose(links)
	fmt.Printf("all up:     k=%d over %d shares\n", k, bits.OnesCount32(mask))

	// Channel 1 blacks out. A few schedule decisions' worth of unwritable
	// observations take it down, then the schedule degrades: m 3→2, k
	// stays at ⌊κ⌋ = 2.
	b.up = false
	for i := 0; i < 5; i++ {
		chooser.Choose(links)
	}
	k, mask, ok := chooser.Choose(links)
	fmt.Printf("one down:   k=%d over %d shares (ok=%v, channel 1 %v)\n",
		k, bits.OnesCount32(mask), ok, tracker.State(1))

	// A second blackout leaves one usable channel — fewer than ⌊κ⌋ — so
	// the chooser stalls instead of emitting a weaker schedule.
	c.up = false
	for i := 0; i < 5; i++ {
		chooser.Choose(links)
	}
	_, _, ok = chooser.Choose(links)
	fmt.Printf("two down:   ok=%v (stalled: never below the κ floor)\n", ok)
	// Output:
	// all up:     k=2 over 3 shares
	// one down:   k=2 over 2 shares (ok=true, channel 1 down)
	// two down:   ok=false (stalled: never below the κ floor)
}
