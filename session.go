package remicss

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand" //lint:allow insecure-rand seeds only the schedule dither; share material always comes from crypto/rand
	"sync"
	"time"
)

// SessionConfig bundles the choices for a UDP session.
type SessionConfig struct {
	// Params are the protocol parameters; zero value defaults to
	// κ = 2, μ = min(3, n): one interception and one loss tolerated.
	Params Params
	// Key, when non-empty, enables per-share HMAC authentication; both ends
	// must use the same key.
	Key []byte //remicss:secret
	// Rates paces each channel in packets per second (nil or 0 entries mean
	// unpaced). Sender side only.
	Rates []float64
	// Burst is the pacing bucket depth (default 8).
	Burst int
	// Seed fixes the schedule dither for reproducibility; 0 draws a fresh
	// seed from crypto/rand so concurrent sessions never share a schedule.
	// The dither only spreads shares across channels — share material
	// itself is always cryptographic regardless of Seed.
	Seed int64
	// Timeout and MaxPending configure receiver reassembly (zero values use
	// the protocol defaults).
	Timeout    time.Duration
	MaxPending int
	// Shards overrides the receiver's reassembly shard count (power of
	// two; see ReceiverConfig.Shards). 0 sizes it to GOMAXPROCS so
	// multi-socket ingest scales with cores. Receiver side only.
	Shards int
	// Metrics, when non-nil, receives the session's metric series —
	// protocol counters and histograms plus per-channel UDP transport
	// counters. Nil gives each endpoint a private registry, still readable
	// via Client.Metrics / Server.Metrics.
	Metrics *MetricsRegistry
	// Trace, when non-nil, receives structured protocol events
	// (share-sent, datagram-dropped, symbol-delivered, ...). Nil disables
	// tracing.
	Trace *EventTrace
	// Health, when non-nil, enables sender-side channel health tracking
	// and failover: send failures drive a per-channel EWMA and state
	// machine (healthy → suspect → down → probing with exponential
	// backoff), down channels are excluded from the share schedule, and
	// the multiplicity degrades — never the threshold, which stays at or
	// above ⌊κ⌋ — while channels are out. The zero HealthConfig value
	// selects the defaults, so &HealthConfig{} turns failover on as-is.
	// Sender side only.
	Health *HealthConfig
}

func (c SessionConfig) scheme() (SharingScheme, error) {
	base := NewSharingScheme(nil)
	if len(c.Key) == 0 {
		return base, nil
	}
	return NewAuthenticatedScheme(base, c.Key)
}

func (c SessionConfig) params(n int) Params {
	p := c.Params
	if p.Kappa == 0 && p.Mu == 0 {
		p = Params{Kappa: 2, Mu: 3}
		if n < 3 {
			p.Mu = float64(n)
		}
		if p.Kappa > p.Mu {
			p.Kappa = p.Mu
		}
	}
	return p
}

// Client is the sending half of a UDP session. Safe for concurrent use.
type Client struct {
	mu     sync.Mutex
	sender *Sender
	links  []Link
	health *HealthTracker
	closed bool // guarded by mu
}

// Connect opens one UDP channel per address and builds a sender with the
// session's parameters and the dynamic share schedule.
func Connect(addrs []string, cfg SessionConfig) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("remicss: no channel addresses")
	}
	scheme, err := cfg.scheme()
	if err != nil {
		return nil, err
	}
	p := cfg.params(len(addrs))
	seed := cfg.Seed
	if seed == 0 {
		var raw [8]byte
		if _, err := crand.Read(raw[:]); err != nil {
			return nil, fmt.Errorf("remicss: seeding schedule dither: %w", err)
		}
		seed = int64(binary.LittleEndian.Uint64(raw[:]))
	}
	var (
		chooser Chooser
		tracker *HealthTracker
	)
	if cfg.Health != nil {
		tracker, err = NewHealthTracker(*cfg.Health, len(addrs), WallClock, cfg.Metrics, cfg.Trace)
		if err != nil {
			return nil, err
		}
		chooser, err = NewHealthChooser(p.Kappa, p.Mu, tracker, rand.New(rand.NewSource(seed)))
	} else {
		chooser, err = NewDynamicChooser(p.Kappa, p.Mu, rand.New(rand.NewSource(seed)))
	}
	if err != nil {
		return nil, err
	}
	links, err := DialUDP(addrs, cfg.Rates, cfg.Burst)
	if err != nil {
		return nil, err
	}
	if cfg.Metrics != nil {
		for i, l := range links {
			l.(*UDPLink).Instrument(cfg.Metrics, i)
		}
	}
	sender, err := NewSender(SenderConfig{
		Scheme:  scheme,
		Chooser: chooser,
		Clock:   WallClock,
		Metrics: cfg.Metrics,
		Trace:   cfg.Trace,
		Health:  tracker,
	}, links)
	if err != nil {
		for _, l := range links {
			l.(*UDPLink).Close()
		}
		return nil, err
	}
	return &Client{sender: sender, links: links, health: tracker}, nil
}

// Send transmits one message (up to ~64 KiB minus headers) as a single
// protocol symbol. It retries briefly on backpressure and returns
// ErrBackpressure if the channels stay saturated. Safe to call from
// multiple goroutines: concurrent calls split and encode in parallel and
// serialize only on the chooser and on each channel's socket.
//
//remicss:secret payload
func (c *Client) Send(payload []byte) error {
	const (
		retries = 50
		backoff = time.Millisecond
	)
	for attempt := 0; attempt < retries; attempt++ {
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return ErrClosed
		}
		err := c.sender.Send(payload)
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrBackpressure) {
			return err
		}
		time.Sleep(backoff)
	}
	return ErrBackpressure
}

// ErrClosed is returned by operations on a closed session endpoint.
var ErrClosed = errors.New("remicss: session closed")

// Stats returns the sender counters.
func (c *Client) Stats() SenderStats { return c.sender.Stats() }

// Metrics returns the registry holding the client's series (the one from
// SessionConfig.Metrics, or the private registry created in its absence).
func (c *Client) Metrics() *MetricsRegistry { return c.sender.Metrics() }

// Health returns the client's channel health tracker, or nil when
// SessionConfig.Health was not set. Use it to inspect per-channel states
// and failure EWMAs at runtime.
func (c *Client) Health() *HealthTracker { return c.health }

// Close releases the channel sockets.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	var firstErr error
	for _, l := range c.links {
		if err := l.(*UDPLink).Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Server is the receiving half of a UDP session.
type Server struct {
	listener *UDPListener
	receiver *Receiver
}

// Serve binds one UDP socket per address (port 0 picks free ports) and
// delivers reconstructed messages to onMessage. Each channel socket feeds
// the receiver from its own goroutine; sockets contend only when their
// datagrams land on the same reassembly shard, and completed symbols are
// handed to onMessage one at a time (a dedicated delivery lock), so
// onMessage needs no internal locking and owns the payload it is handed.
func Serve(addrs []string, cfg SessionConfig, onMessage func(seq uint64, payload []byte, delay time.Duration)) (*Server, error) {
	if onMessage == nil {
		return nil, errors.New("remicss: nil message callback")
	}
	scheme, err := cfg.scheme()
	if err != nil {
		return nil, err
	}
	receiver, err := NewReceiver(ReceiverConfig{
		Scheme:     scheme,
		Clock:      WallClock,
		OnSymbol:   onMessage,
		Timeout:    cfg.Timeout,
		MaxPending: cfg.MaxPending,
		Metrics:    cfg.Metrics,
		Trace:      cfg.Trace,
		Shards:     cfg.Shards,
	})
	if err != nil {
		return nil, err
	}
	listener, err := ListenUDP(addrs)
	if err != nil {
		return nil, err
	}
	if cfg.Metrics != nil {
		listener.Instrument(cfg.Metrics)
	}
	s := &Server{listener: listener, receiver: receiver}
	// HandleDatagram only reads the buffer during the call, which is
	// exactly ServeConcurrent's reuse contract — no per-datagram copy or
	// cross-channel serialization in the transport.
	listener.ServeConcurrent(receiver.HandleDatagram)
	return s, nil
}

// Addrs returns the bound channel addresses, in order, for Connect.
func (s *Server) Addrs() []string { return s.listener.Addrs() }

// Stats returns the receiver counters.
func (s *Server) Stats() ReceiverStats { return s.receiver.Stats() }

// Metrics returns the registry holding the server's series (the one from
// SessionConfig.Metrics, or the private registry created in its absence).
func (s *Server) Metrics() *MetricsRegistry { return s.receiver.Metrics() }

// Close shuts the channel sockets down and stops the reader goroutines.
func (s *Server) Close() error { return s.listener.Close() }

// String renders a short description for logs.
func (s *Server) String() string {
	return fmt.Sprintf("remicss server on %v", s.Addrs())
}
