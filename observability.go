package remicss

import (
	"net/http"

	"remicss/internal/obs"
)

// Observability facade: aliases over internal/obs so applications embedding
// the protocol can share a metrics registry and event trace with it, expose
// them over HTTP, and reconcile live sessions against the paper's model
// without importing internal packages.

// MetricsRegistry holds metric series (counters, gauges, histograms) for
// every instrumented component that shares it. See SessionConfig.Metrics.
type MetricsRegistry = obs.Registry

// MetricLabel is one key=value dimension on a metric series.
type MetricLabel = obs.Label

// EventTrace is a lock-free ring buffer of structured protocol events
// (shares sent, datagrams dropped, symbols delivered, ...). A nil trace is
// valid and records nothing.
type EventTrace = obs.Trace

// TraceEvent is one structured event held by an EventTrace.
type TraceEvent = obs.Event

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewEventTrace builds an event ring holding capacity events (rounded up
// to a power of two; <= 0 uses the default of 4096).
func NewEventTrace(capacity int) *EventTrace { return obs.NewTrace(capacity) }

// NewMetricsHandler returns an HTTP handler exposing the registry (and,
// when non-nil, the trace) at /metrics, /metrics.json, /trace, /healthz,
// and /debug/pprof/.
func NewMetricsHandler(r *MetricsRegistry, t *EventTrace) http.Handler {
	return obs.NewHandler(r, t)
}

// MetricsServer is a running metrics endpoint started by
// StartMetricsServer.
type MetricsServer = obs.Server

// StartMetricsServer binds addr and serves NewMetricsHandler in a
// background goroutine. The caller should Close the returned server on
// shutdown.
func StartMetricsServer(addr string, r *MetricsRegistry, t *EventTrace) (*MetricsServer, error) {
	return obs.StartServer(addr, r, t)
}
