// Benchmark harness: one testing.B entry per figure of the paper's
// evaluation (the paper has no numbered tables; Figures 2–7 are its
// results). Each benchmark regenerates its figure's series at a reduced
// sweep density, prints the rows, and reports the headline aggregate
// (e.g. mean achieved/optimal gap) as a benchmark metric.
//
// Full-density regeneration (paper parameters: μ step 0.1) is available
// through cmd/remicss-bench; these benchmarks keep single iterations in the
// seconds range.
package remicss_test

import (
	"fmt"
	"math"
	"testing"
	"time"

	"remicss/internal/bench"
)

// figCfg is the reduced sweep used inside benchmarks.
func figCfg() bench.FigureConfig {
	return bench.FigureConfig{
		Duration: time.Second,
		MuStep:   0.5,
		Seed:     1,
	}
}

func BenchmarkFig2Packing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		packings, err := bench.Fig2Packing()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for m := 1; m <= 3; m++ {
				b.Logf("μ=%d:\n%s", m, bench.RenderFig2([]int{3, 4, 8}, packings[m]))
			}
		}
	}
}

// rateGapStats summarizes a rate figure: mean and max relative gap between
// optimal and achieved.
func rateGapStats(points []bench.RatePoint) (mean, worst float64) {
	var sum float64
	for _, p := range points {
		gap := math.Abs(p.OptimalMbps-p.ActualMbps) / p.OptimalMbps
		sum += gap
		if gap > worst {
			worst = gap
		}
	}
	return sum / float64(len(points)), worst
}

func benchmarkFig3(b *testing.B, setup bench.Setup) {
	for i := 0; i < b.N; i++ {
		points, err := bench.Fig3(setup, figCfg())
		if err != nil {
			b.Fatal(err)
		}
		mean, worst := rateGapStats(points)
		b.ReportMetric(mean*100, "mean-gap-%")
		b.ReportMetric(worst*100, "worst-gap-%")
		if i == 0 {
			for _, p := range points {
				fmt.Printf("fig3 %-18s κ=%.0f μ=%.1f optimal=%7.2f actual=%7.2f Mbps\n",
					setup.Name, p.Kappa, p.Mu, p.OptimalMbps, p.ActualMbps)
			}
		}
	}
}

func BenchmarkFig3Identical(b *testing.B) { benchmarkFig3(b, bench.Identical(100)) }

func BenchmarkFig3Diverse(b *testing.B) { benchmarkFig3(b, bench.Diverse()) }

func BenchmarkFig4Delay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := bench.Fig4(figCfg())
		if err != nil {
			b.Fatal(err)
		}
		var optSum, actSum float64
		for _, p := range points {
			optSum += p.OptimalMs
			actSum += p.ActualMs
		}
		b.ReportMetric(optSum/float64(len(points)), "mean-optimal-ms")
		b.ReportMetric(actSum/float64(len(points)), "mean-actual-ms")
		if i == 0 {
			for _, p := range points {
				fmt.Printf("fig4 κ=%.0f μ=%.1f optimal=%6.2fms actual=%6.2fms\n",
					p.Kappa, p.Mu, p.OptimalMs, p.ActualMs)
			}
		}
	}
}

func BenchmarkFig5Loss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := bench.Fig5(figCfg())
		if err != nil {
			b.Fatal(err)
		}
		var optSum, actSum float64
		for _, p := range points {
			optSum += p.OptimalLoss
			actSum += p.ActualLoss
		}
		b.ReportMetric(optSum/float64(len(points))*100, "mean-optimal-loss-%")
		b.ReportMetric(actSum/float64(len(points))*100, "mean-actual-loss-%")
		if i == 0 {
			for _, p := range points {
				fmt.Printf("fig5 κ=%.0f μ=%.1f optimal=%.4f actual=%.4f\n",
					p.Kappa, p.Mu, p.OptimalLoss, p.ActualLoss)
			}
		}
	}
}

func benchmarkScaling(b *testing.B, run func(bench.FigureConfig) ([]bench.ScalingPoint, error), name string) {
	cfg := figCfg()
	cfg.Duration = 500 * time.Millisecond
	for i := 0; i < b.N; i++ {
		points, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Report the achieved ceiling: the max actual rate across the sweep
		// (the paper's "levels off around 750 Mbps" observation for Fig 6).
		var ceiling float64
		for _, p := range points {
			if p.ActualMbps > ceiling {
				ceiling = p.ActualMbps
			}
		}
		b.ReportMetric(ceiling, "ceiling-Mbps")
		if i == 0 {
			for _, p := range points {
				fmt.Printf("%s κ=%.0f channel=%3.0fMbps optimal=%7.1f actual=%7.1f Mbps\n",
					name, p.Kappa, p.ChannelMbps, p.OptimalMbps, p.ActualMbps)
			}
		}
	}
}

func BenchmarkFig6Scaling(b *testing.B) { benchmarkScaling(b, bench.Fig6, "fig6") }

func BenchmarkFig7Scaling(b *testing.B) { benchmarkScaling(b, bench.Fig7, "fig7") }

func BenchmarkCompareProtocols(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.CompareProtocols(bench.FigureConfig{Duration: time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				fmt.Printf("compare loss=%4.1f%%  MICSS %6.2f Mbps (%.1fms, %d retx)  ReMICSS %6.2f Mbps (%.2f%% loss)  striping %6.1f Mbps (%.2f%% loss)\n",
					r.LossPct, r.MICSSMbps, r.MICSSDelayMs, r.MICSSRetx,
					r.ReMICSSMbps, r.ReMICSSLossPct, r.StripingMbps, r.StripingLossPct)
			}
		}
	}
}

// BenchmarkAblationChooserOrder quantifies the DESIGN.md ablation: dynamic
// chooser with least-backlog ordering (default) vs naive index ordering on
// the Identical setup, where index ordering degenerates.
func BenchmarkAblationChooserOrder(b *testing.B) {
	for _, idx := range []bool{false, true} {
		name := "least-backlog"
		if idx {
			name = "index-order"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.RunConfig{
					Setup:             bench.Identical(100),
					Kappa:             1,
					Mu:                3,
					OfferedMbps:       1000,
					Duration:          time.Second,
					Seed:              1,
					IndexOrderChooser: idx,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AchievedMbps, "achieved-Mbps")
			}
		})
	}
}

// BenchmarkAblationStaticVsDynamic compares the dynamic share schedule with
// the sampled LP schedule at the same operating point.
func BenchmarkAblationStaticVsDynamic(b *testing.B) {
	for _, kind := range []bench.ChooserKind{bench.ChooserDynamic, bench.ChooserStaticMaxRate} {
		name := "dynamic"
		if kind == bench.ChooserStaticMaxRate {
			name = "static-lp"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.RunConfig{
					Setup:       bench.Lossy(),
					Kappa:       2,
					Mu:          3,
					Chooser:     kind,
					OfferedMbps: 75,
					Duration:    time.Second,
					Seed:        1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AchievedMbps, "achieved-Mbps")
				b.ReportMetric(res.LossFraction*100, "loss-%")
			}
		})
	}
}

// BenchmarkAdaptiveRecovery regenerates the adaptive-recovery experiment
// (loss burst at t=4s; controller raises μ until delivery meets the
// target).
func BenchmarkAdaptiveRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		epochs, err := bench.RunAdaptive(bench.AdaptiveConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		final := epochs[len(epochs)-1]
		b.ReportMetric(final.Loss*100, "final-loss-%")
		b.ReportMetric(final.Mu, "final-mu")
		if i == 0 {
			for _, e := range epochs {
				fmt.Printf("adaptive t=%5.1fs loss=%6.2f%% mu=%g goodput=%.2fMbps\n",
					e.At.Seconds(), e.Loss*100, e.Mu, e.GoodputMbps)
			}
		}
	}
}
