package remicss_test

import (
	"fmt"
	"time"

	"remicss"
)

// The Diverse channel set from the paper's evaluation, in symbols/second
// for 1400-byte symbols.
func exampleSet() remicss.ChannelSet {
	return remicss.ChannelSet{
		{Risk: 0.30, Loss: 0.010, Delay: 2500 * time.Microsecond, Rate: 446},
		{Risk: 0.10, Loss: 0.005, Delay: 250 * time.Microsecond, Rate: 1786},
		{Risk: 0.20, Loss: 0.010, Delay: 12500 * time.Microsecond, Rate: 5357},
		{Risk: 0.25, Loss: 0.020, Delay: 5 * time.Millisecond, Rate: 5804},
		{Risk: 0.15, Loss: 0.030, Delay: 500 * time.Microsecond, Rate: 8929},
	}
}

func ExampleChannelSet_optimalRate() {
	set := exampleSet()
	// Theorem 4: the best achievable symbol rate at average multiplicity μ.
	for _, mu := range []float64{1, 2.5, 5} {
		rc, err := set.OptimalRate(mu)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("μ=%.1f: %.0f symbols/s\n", mu, rc)
	}
	// Output:
	// μ=1.0: 22322 symbols/s
	// μ=2.5: 8929 symbols/s
	// μ=5.0: 446 symbols/s
}

func ExampleChannelSet_extremes() {
	set := exampleSet()
	fmt.Printf("best privacy:  Z_C = %.6f\n", set.MaxPrivacyRisk())
	fmt.Printf("best loss:     L_C = %.1e\n", set.MinLoss())
	fmt.Printf("full utilization needs μ <= %.4f\n", set.FullUtilizationMaxMu())
	// Output:
	// best privacy:  Z_C = 0.000225
	// best loss:     L_C = 3.0e-10
	// full utilization needs μ <= 2.4999
}

func ExampleOptimizeScheduleAtMaxRate() {
	set := exampleSet()
	// The Section IV-D program: minimize risk at κ=2, μ=3 while
	// guaranteeing the schedule can transmit at the optimal rate.
	sched, err := remicss.OptimizeScheduleAtMaxRate(set, 2, 3,
		remicss.ObjectiveRisk, remicss.ScheduleOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("κ=%.1f μ=%.1f risk=%.4f\n", sched.Kappa(), sched.Mu(), sched.Risk(set))
	// Output:
	// κ=2.0 μ=3.0 risk=0.0938
}

func ExampleSplit() {
	shares, err := remicss.Split([]byte("the secret"), 2, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	// Any two shares reconstruct; one reveals nothing.
	secret, err := remicss.Combine(shares[1:], 2, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s\n", secret)
	// Output:
	// the secret
}

func ExampleParams_Profile() {
	prof, err := remicss.Params{Kappa: 2, Mu: 3}.Profile(exampleSet())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("rate %.0f sym/s, risk %.4f, loss %.4f\n", prof.Rate, prof.Risk, prof.Loss)
	// Output:
	// rate 6696 sym/s, risk 0.0938, loss 0.0010
}
