package remicss

import (
	"io"
	"time"

	"remicss/internal/adapt"
	"remicss/internal/measure"
	"remicss/internal/pathset"
	"remicss/internal/sharing"
)

// Network topology support: derive model channel sets from graphs with
// per-edge properties, per the PSMT tradition the paper builds on.

// NetworkEdge is a directed link in a network topology, carrying the same
// four properties as a channel.
type NetworkEdge = pathset.Edge

// NetworkGraph is a directed multigraph of NetworkEdges.
type NetworkGraph = pathset.Graph

// NetworkPath is one sender→receiver path through a graph.
type NetworkPath = pathset.Path

// Topology errors.
var (
	ErrBadGraph = pathset.ErrBadGraph
	ErrNoPath   = pathset.ErrNoPath
)

// NewNetworkGraph builds a topology from edges.
func NewNetworkGraph(edges []NetworkEdge) (*NetworkGraph, error) {
	return pathset.NewGraph(edges)
}

// DisjointChannels extracts a maximum set of edge-disjoint paths from src
// to dst and composes each into a model channel: risk and loss compound
// across hops, delay adds, rate bottlenecks. The returned paths parallel
// the channel set's indices.
func DisjointChannels(g *NetworkGraph, src, dst string) (ChannelSet, []NetworkPath, error) {
	paths, err := g.DisjointPaths(src, dst)
	if err != nil {
		return nil, nil, err
	}
	return pathset.ChannelSet(paths), paths, nil
}

// Adaptive parameter control.

// AdaptConfig configures an adaptive parameter controller.
type AdaptConfig = adapt.Config

// AdaptController adjusts (κ, μ) at runtime from measured loss and
// estimated risk.
type AdaptController = adapt.Controller

// ErrRiskUnmet means even κ = n cannot reach the confidentiality target.
var ErrRiskUnmet = adapt.ErrRiskUnmet

// NewAdaptController builds a runtime parameter controller.
func NewAdaptController(cfg AdaptConfig) (*AdaptController, error) {
	return adapt.New(cfg)
}

// Channel measurement.

// ChannelProber actively probes one channel; pair with a ChannelSink on the
// receiving side to estimate the channel's loss, delay, and rate.
type ChannelProber = measure.Prober

// ChannelSink accumulates probe arrivals into a channel estimate.
type ChannelSink = measure.Sink

// NewChannelProber builds a prober over a link.
func NewChannelProber(link Link, clock func() time.Duration) (*ChannelProber, error) {
	return measure.NewProber(link, clock)
}

// NewChannelSink builds a probe sink with the given rate window and
// reordering slack.
func NewChannelSink(clock func() time.Duration, window time.Duration, slack int) (*ChannelSink, error) {
	return measure.NewSink(clock, window, slack)
}

// Blakley scheme.

// NewBlakleyScheme returns Blakley's hyperplane threshold scheme, the
// paper's other foundational secret sharing construction. Interchangeable
// with the default scheme; shares are k bytes longer. r may be nil for
// crypto/rand.
func NewBlakleyScheme(r io.Reader) SharingScheme {
	return sharing.NewBlakley(r)
}
