package remicss

import (
	"fmt"
	"time"

	"remicss/internal/udptrans"
)

// UDPLink is one UDP channel to a receiver, with optional token-bucket
// pacing. It satisfies Link.
type UDPLink = udptrans.Link

// UDPListener receives shares across several UDP sockets and feeds them
// into a handler — serialized (Serve) or concurrently (ServeConcurrent).
type UDPListener = udptrans.Listener

// WallClock is the clock both ends of a UDP session should pass as
// SenderConfig.Clock and ReceiverConfig.Clock: wall time since the Unix
// epoch, so one-way delays are meaningful whenever the hosts share a clock.
func WallClock() time.Duration { return udptrans.WallClock() }

// ListenUDP binds one UDP socket per address (port 0 picks free ports; see
// UDPListener.Addrs) for the receiving side of a session.
func ListenUDP(addrs []string) (*UDPListener, error) {
	return udptrans.Listen(addrs)
}

// UDPImpairment adds userspace netem-style loss and delay to a UDP channel,
// for reproducing shaped-channel setups without traffic-control privileges.
type UDPImpairment = udptrans.Impairment

// DialUDPImpaired is DialUDP with per-channel impairments (nil entries mean
// unimpaired).
func DialUDPImpaired(addrs []string, rates []float64, burst int, impairments []UDPImpairment) ([]Link, error) {
	if len(impairments) != len(addrs) {
		return nil, fmt.Errorf("remicss: %d impairments for %d addresses", len(impairments), len(addrs))
	}
	if rates != nil && len(rates) != len(addrs) {
		return nil, fmt.Errorf("remicss: %d rates for %d addresses", len(rates), len(addrs))
	}
	links := make([]Link, 0, len(addrs))
	for i, addr := range addrs {
		var rate float64
		if rates != nil {
			rate = rates[i]
		}
		l, err := udptrans.DialImpaired(addr, rate, burst, impairments[i])
		if err != nil {
			for _, prev := range links {
				prev.(*UDPLink).Close()
			}
			return nil, err
		}
		links = append(links, l)
	}
	return links, nil
}

// DialUDP opens one paced UDP channel per address for the sending side of
// a session. rates[i] limits channel i in packets per second (0 means
// unlimited); pass nil for all-unlimited. The returned links satisfy Link
// and plug directly into NewSender.
func DialUDP(addrs []string, rates []float64, burst int) ([]Link, error) {
	if rates != nil && len(rates) != len(addrs) {
		return nil, fmt.Errorf("remicss: %d rates for %d addresses", len(rates), len(addrs))
	}
	links := make([]Link, 0, len(addrs))
	for i, addr := range addrs {
		var rate float64
		if rates != nil {
			rate = rates[i]
		}
		l, err := udptrans.Dial(addr, rate, burst)
		if err != nil {
			for _, prev := range links {
				prev.(*UDPLink).Close()
			}
			return nil, err
		}
		links = append(links, l)
	}
	return links, nil
}
