package remicss_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"remicss"
)

func startSession(t *testing.T, cfg remicss.SessionConfig, onMessage func(uint64, []byte, time.Duration)) (*remicss.Server, *remicss.Client) {
	t.Helper()
	srv, err := remicss.Serve([]string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"}, cfg, onMessage)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := remicss.Connect(srv.Addrs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met before timeout")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSessionRoundtrip(t *testing.T) {
	var mu sync.Mutex
	got := map[uint64][]byte{}
	cfg := remicss.SessionConfig{Seed: 1}
	_, cli := startSession(t, cfg, func(seq uint64, payload []byte, _ time.Duration) {
		mu.Lock()
		got[seq] = append([]byte(nil), payload...)
		mu.Unlock()
	})

	messages := [][]byte{
		[]byte("first"),
		[]byte("second"),
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	for _, m := range messages {
		if err := cli.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == len(messages)
	})
	mu.Lock()
	defer mu.Unlock()
	for i, want := range messages {
		if !bytes.Equal(got[uint64(i)], want) {
			t.Errorf("message %d corrupted", i)
		}
	}
}

func TestSessionAuthenticatedEndToEnd(t *testing.T) {
	var mu sync.Mutex
	count := 0
	cfg := remicss.SessionConfig{Key: []byte("shared secret"), Seed: 2}
	_, cli := startSession(t, cfg, func(uint64, []byte, time.Duration) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	if err := cli.Send([]byte("tamper-evident")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return count == 1
	})
}

func TestSessionKeyMismatchDropsEverything(t *testing.T) {
	var mu sync.Mutex
	count := 0
	srv, err := remicss.Serve([]string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"},
		remicss.SessionConfig{Key: []byte("server key"), Seed: 3},
		func(uint64, []byte, time.Duration) {
			mu.Lock()
			count++
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := remicss.Connect(srv.Addrs(), remicss.SessionConfig{Key: []byte("client key"), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 5; i++ {
		if err := cli.Send([]byte("forged")); err != nil {
			t.Fatal(err)
		}
	}
	// Give delivery a moment, then confirm nothing was accepted.
	time.Sleep(300 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if count != 0 {
		t.Errorf("%d messages accepted across mismatched keys", count)
	}
	if srv.Stats().CombineFailures == 0 {
		t.Error("no combine failures recorded")
	}
}

func TestSessionDefaultParams(t *testing.T) {
	// Default params on 3 channels must be valid (κ=2, μ=3).
	var mu sync.Mutex
	count := 0
	_, cli := startSession(t, remicss.SessionConfig{Seed: 4}, func(uint64, []byte, time.Duration) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	if err := cli.Send([]byte("defaults")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return count == 1
	})
	st := cli.Stats()
	if st.SymbolsSent != 1 || st.SharesSent != 3 {
		t.Errorf("stats = %+v, want 3 shares for μ=3", st)
	}
}

func TestSessionClosedClient(t *testing.T) {
	_, cli := startSession(t, remicss.SessionConfig{Seed: 5}, func(uint64, []byte, time.Duration) {})
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := cli.Send([]byte("after close")); !errors.Is(err, remicss.ErrClosed) {
		t.Errorf("got %v, want ErrClosed", err)
	}
}

func TestSessionValidation(t *testing.T) {
	if _, err := remicss.Connect(nil, remicss.SessionConfig{}); err == nil {
		t.Error("no addresses accepted")
	}
	if _, err := remicss.Serve([]string{"127.0.0.1:0"}, remicss.SessionConfig{}, nil); err == nil {
		t.Error("nil callback accepted")
	}
	if _, err := remicss.Connect([]string{"127.0.0.1:9"}, remicss.SessionConfig{
		Params: remicss.Params{Kappa: 5, Mu: 2},
	}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestSessionConcurrentSenders(t *testing.T) {
	var mu sync.Mutex
	count := 0
	_, cli := startSession(t, remicss.SessionConfig{Seed: 6}, func(uint64, []byte, time.Duration) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	const goroutines, each = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := cli.Send([]byte{byte(g), byte(i)}); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	waitFor(t, 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return count == goroutines*each
	})
}
