package remicss_test

import (
	"fmt"
	"time"

	"remicss"
)

// ExampleCorrelation prices a shared conduit into the privacy model: three
// channels with identical 10% eavesdropping risk, where channels 0 and 1
// ride the same fiber segment (correlation ρ = 0.8). Under the paper's
// independence assumption a k=2 split over all three channels looks safe;
// the correlated model shows the shared conduit triples the real exposure,
// because one tap on the common segment observes two shares at once.
func ExampleCorrelation() {
	set := remicss.ChannelSet{
		{Risk: 0.1, Loss: 0.01, Delay: 5 * time.Millisecond, Rate: 100},
		{Risk: 0.1, Loss: 0.01, Delay: 5 * time.Millisecond, Rate: 100},
		{Risk: 0.1, Loss: 0.01, Delay: 5 * time.Millisecond, Rate: 100},
	}
	corr := remicss.Correlation{Groups: []remicss.RiskGroup{
		{Mask: 0b011, RiskRho: 0.8, LossRho: 0.8},
	}}
	if err := corr.Validate(len(set)); err != nil {
		panic(err)
	}

	const k, mask = 2, 0b111
	fmt.Printf("independent: %.4f\n", set.SubsetRisk(k, mask))
	fmt.Printf("correlated:  %.4f\n", set.CorrelatedSubsetRisk(corr, k, mask))
	// The group's own contribution: a common-cause shock that hands the
	// adversary both member shares in one stroke.
	fmt.Printf("group share: %.4f\n", set.GroupExposure(corr, 0, k, mask))
	// Output:
	// independent: 0.0280
	// correlated:  0.0843
	// group share: 0.0800
}

// ExampleNewLeakageMeter scores a symbol against the leakage-aware
// advantage bound: each observed share leaks λ = 1 bit of its 8-bit field,
// so the adversary's advantage ε strictly exceeds the plain exposure
// P(observed ≥ k), and a bound above the configured budget raises an
// alert.
func ExampleNewLeakageMeter() {
	cfg := remicss.LeakageConfig{PartialBits: 1, Budget: 0.03}
	meter := remicss.NewLeakageMeter(cfg, 3, nil, nil)

	// One symbol split k=2 over three channels, each observed with
	// probability 0.1.
	score := meter.RecordSymbol(0, 1, 2, []float64{0.1, 0.1, 0.1})
	fmt.Printf("exposure %.4f, advantage %.4f, alert %v\n",
		score.Exposure, score.Advantage, score.Alert)

	// The sender put three shares on channel 0's conduit.
	meter.RecordObserved(0, 3)

	st := meter.Snapshot()
	fmt.Printf("symbols %d, alerts %d, shares observed on ch0: %d\n",
		st.Symbols, st.Alerts, st.SharesObserved[0])
	// Output:
	// exposure 0.0280, advantage 0.0319, alert true
	// symbols 1, alerts 1, shares observed on ch0: 3
}
