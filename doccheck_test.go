package remicss_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAllExportedIdentifiersDocumented walks every non-test source file in
// the module and fails on exported declarations without a doc comment. The
// repository promises "doc comments on every public item"; this test keeps
// that promise mechanical.
func TestAllExportedIdentifiersDocumented(t *testing.T) {
	var missing []string
	fset := token.NewFileSet()

	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		// Commands and examples are package main: their only public surface
		// is the binary, so skip all but the package comment.
		isMain := file.Name.Name == "main"
		if file.Doc == nil {
			// Package comments are required on one file per package; accept
			// packages documented in a sibling file by not flagging here.
			_ = file
		}
		if isMain {
			return nil
		}
		for _, decl := range file.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				if dd.Name.IsExported() && dd.Doc == nil {
					missing = append(missing, fset.Position(dd.Pos()).String()+" func "+dd.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range dd.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && dd.Doc == nil && s.Doc == nil && s.Comment == nil {
							missing = append(missing, fset.Position(s.Pos()).String()+" type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && dd.Doc == nil && s.Doc == nil && s.Comment == nil {
								missing = append(missing, fset.Position(s.Pos()).String()+" value "+n.Name)
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range missing {
		t.Errorf("undocumented exported identifier: %s", m)
	}
}
