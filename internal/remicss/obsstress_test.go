package remicss

import (
	"encoding/binary"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"remicss/internal/obs"
	"remicss/internal/sharing"
)

// TestObservabilityStress hammers one shared registry and trace from every
// direction at once — senders on Send, per-channel ingest goroutines on
// HandleDatagram, plus readers taking Stats snapshots, Gathering and
// rendering the registry, and draining the trace ring — and then checks
// the counters reconcile exactly. Run under -race this is the
// concurrency-safety proof for the observability layer; the final
// assertions prove instrumentation never loses an increment.
func TestObservabilityStress(t *testing.T) {
	const (
		channels  = 3
		senders   = 8 // >= 8 concurrent Send callers: the sharded-pipeline stress shape
		perSender = 300
	)
	total := senders * perSender

	reg := obs.NewRegistry()
	trace := obs.NewTrace(4 * channels * total) // large enough to never wrap

	var deliveredSeqs sync.Map
	var delivered atomic.Int64
	recv, err := NewReceiver(ReceiverConfig{
		Scheme:  sharing.NewAuto(rand.New(rand.NewSource(11))),
		Clock:   func() time.Duration { return 0 },
		Metrics: reg,
		Trace:   trace,
		Shards:  8, // exercise sharded ingest regardless of host GOMAXPROCS
		OnSymbol: func(seq uint64, payload []byte, _ time.Duration) {
			id := binary.BigEndian.Uint64(payload)
			if _, dup := deliveredSeqs.LoadOrStore(id, true); dup {
				t.Errorf("id %d delivered twice", id)
			}
			delivered.Add(1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	links := make([]Link, channels)
	chans := make([]*chanLink, channels)
	for i := range links {
		chans[i] = &chanLink{ch: make(chan []byte, 64)}
		links[i] = chans[i]
	}
	// nil scheme randomness = the shared DRBG pool: splits run outside the
	// sender lock, so a seeded *math/rand.Rand would race across Send
	// goroutines.
	snd, err := NewSender(SenderConfig{
		Scheme:  sharing.NewAuto(nil),
		Chooser: FixedChooser{K: 2, Mask: 1<<channels - 1},
		Clock:   func() time.Duration { return 0 },
		Metrics: reg,
		Trace:   trace,
	}, links)
	if err != nil {
		t.Fatal(err)
	}

	var ingest sync.WaitGroup
	for _, cl := range chans {
		cl := cl
		ingest.Add(1)
		go func() {
			defer ingest.Done()
			for d := range cl.ch {
				recv.HandleDatagram(d)
			}
		}()
	}

	// Readers: Stats snapshots, registry exposition, and trace drains,
	// continuously while traffic flows.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(3)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = snd.Stats()
				_ = recv.Stats()
			}
		}
	}()
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := reg.WriteText(io.Discard); err != nil {
					t.Error(err)
					return
				}
				if err := reg.WriteJSON(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	go func() {
		defer readers.Done()
		var buf []obs.Event
		for {
			select {
			case <-stop:
				return
			default:
				buf = trace.Snapshot(buf[:0])
			}
		}
	}()

	var send sync.WaitGroup
	for s := 0; s < senders; s++ {
		s := s
		send.Add(1)
		go func() {
			defer send.Done()
			payload := make([]byte, 64)
			for i := 0; i < perSender; i++ {
				binary.BigEndian.PutUint64(payload, uint64(s)<<32|uint64(i))
				if err := snd.Send(payload); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	send.Wait()
	for _, cl := range chans {
		close(cl.ch)
	}
	ingest.Wait()
	close(stop)
	readers.Wait()

	// Reconciliation: nothing was lossy in-process, so the counters must
	// balance exactly.
	st := snd.Stats()
	if st.SymbolsSent != int64(total) {
		t.Errorf("SymbolsSent %d, want %d", st.SymbolsSent, total)
	}
	if st.SharesSent != int64(channels*total) || st.SharesDropped != 0 {
		t.Errorf("SharesSent %d dropped %d, want %d and 0", st.SharesSent, st.SharesDropped, channels*total)
	}
	rst := recv.Stats()
	if rst.SymbolsDelivered != int64(total) || delivered.Load() != int64(total) {
		t.Errorf("SymbolsDelivered %d (callback %d), want %d", rst.SymbolsDelivered, delivered.Load(), total)
	}
	// Every share either completed a symbol (k per symbol) or arrived late
	// against the tombstone (m-k per symbol).
	if rst.SharesReceived != int64(2*total) || rst.SharesLate != int64(total) {
		t.Errorf("SharesReceived %d SharesLate %d, want %d and %d", rst.SharesReceived, rst.SharesLate, 2*total, total)
	}
	if rst.SharesInvalid != 0 || rst.CombineFailures != 0 {
		t.Errorf("unexpected failures: %+v", rst)
	}
	// The trace ring never wrapped, so per-kind event counts must equal the
	// corresponding counters.
	if got := trace.CountKind(obs.EventShareSent); got != int(st.SharesSent) {
		t.Errorf("traced %d share-sent events, counters say %d", got, st.SharesSent)
	}
	if got := trace.CountKind(obs.EventSymbolDelivered); got != int(rst.SymbolsDelivered) {
		t.Errorf("traced %d deliveries, counters say %d", got, rst.SymbolsDelivered)
	}
	// Legacy stats views and the registry exposition must agree: find the
	// datagram counter in a Gather and compare.
	var datagrams int64
	for _, s := range reg.Gather() {
		if s.Name == "remicss_receiver_datagrams_total" {
			datagrams = s.Value
		}
	}
	if datagrams != int64(channels*total) {
		t.Errorf("gathered datagram total %d, want %d", datagrams, channels*total)
	}
}
