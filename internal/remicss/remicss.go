// Package remicss implements the paper's reference protocol (Section V): a
// best-effort multichannel secret sharing transport.
//
// For every source symbol (one datagram payload), the sender chooses a
// threshold k and a channel subset M, splits the symbol into |M| shares
// with a threshold scheme, and transmits one share per channel in M. The
// receiver reassembles symbols as shares arrive, delivering each symbol as
// soon as any k of its shares are in hand, and evicts stale partial symbols
// after a timeout or under memory pressure — the IP-fragment-reassembly
// strategy the paper describes.
//
// Two channel-selection strategies are provided, matching the paper's
// discussion:
//
//   - DynamicChooser implements the paper's dynamic share schedule: pick the
//     first m channels that are ready for writing (the epoll trick), with m
//     and k dithered around the real-valued targets μ and κ.
//   - StaticChooser samples (k, M) i.i.d. from an explicit share schedule,
//     such as the LP optima of internal/schedule.
//
// The package is transport-agnostic: anything satisfying Link works, both
// the virtual-time emulator (internal/netem) and real UDP sockets
// (internal/udptrans).
package remicss

import (
	"errors"
	"time"
)

// Link is one unidirectional channel from sender to receiver. It is
// implemented by netem.Link (simulation) and udptrans.Link (real UDP).
type Link interface {
	// Send enqueues one datagram, returning false if the channel cannot
	// accept it right now (transmit queue full). Implementations must not
	// retain the slice after returning: the sender recycles one marshal
	// buffer across shares, so a retained reference would be overwritten
	// by the next share. Links that defer transmission (emulated queues,
	// delay impairment) copy internally.
	Send(datagram []byte) bool
	// Writable reports whether Send would currently accept a datagram; this
	// is the protocol's epoll readiness signal.
	Writable() bool
	// Backlog estimates how long the channel will remain busy with already
	// accepted datagrams; schedulers may use it as a readiness tiebreaker.
	Backlog() time.Duration
}

// Protocol errors.
var (
	// ErrBackpressure means too few channels were ready to carry the
	// symbol's shares; the symbol was not sent.
	ErrBackpressure = errors.New("remicss: not enough writable channels")
	// ErrNoLinks means the sender was constructed without channels.
	ErrNoLinks = errors.New("remicss: no links")
	// ErrClosed means the component has been closed.
	ErrClosed = errors.New("remicss: closed")
)
