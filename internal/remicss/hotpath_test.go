package remicss

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"remicss/internal/obs"
	"remicss/internal/sharing"
	"remicss/internal/wire"
)

// nullLink accepts every datagram and discards it without retaining the
// slice, isolating the sender's own allocation behavior.
type nullLink struct{}

func (nullLink) Send(datagram []byte) bool { return true }
func (nullLink) Writable() bool            { return true }
func (nullLink) Backlog() time.Duration    { return 0 }

// hotPathSender builds a sender over m null links with a fixed (k, mask)
// assignment and a constant clock. Metrics and tracing are explicitly ON:
// the allocation pins below must hold with full instrumentation, per the
// obs design contract.
func hotPathSender(t testing.TB, k, m int) *Sender {
	t.Helper()
	links := make([]Link, m)
	for i := range links {
		links[i] = nullLink{}
	}
	s, err := NewSender(SenderConfig{
		Scheme:  sharing.NewAuto(rand.New(rand.NewSource(1))),
		Chooser: FixedChooser{K: k, Mask: 1<<uint(m) - 1},
		Clock:   func() time.Duration { return 0 },
		Metrics: obs.NewRegistry(),
		Trace:   obs.NewTrace(1 << 12),
	}, links)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSendHotPathAllocs pins the steady-state allocation budget of the
// send path with metrics and tracing enabled: zero for the replication and
// XOR fast paths, O(1) for Shamir (its fresh-randomness buffer plus
// scheme-internal scratch).
func TestSendHotPathAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5a}, 1400)
	cases := []struct {
		name string
		k, m int
		max  float64
	}{
		{"replication-1of3", 1, 3, 0},
		{"xor-3of3", 3, 3, 0},
		{"shamir-3of5", 3, 5, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := hotPathSender(t, tc.k, tc.m)
			// Warm the scratch buffers (first call sizes them).
			if err := s.Send(payload); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(100, func() {
				if err := s.Send(payload); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > tc.max {
				t.Errorf("Send allocates %v times per op, want <= %v", allocs, tc.max)
			}
		})
	}
}

// TestReceiverIngestSteadyStateAllocs checks that reassembly recycles
// entries and share payload buffers through the pool: ingesting a stream
// of fresh symbols settles to O(1) allocations per symbol (the delivered
// secret plus list bookkeeping), not per-share buffer growth.
func TestReceiverIngestSteadyStateAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte{0x33}, 1400)
	var now time.Duration
	recv, err := NewReceiver(ReceiverConfig{
		Scheme:   sharing.NewAuto(rand.New(rand.NewSource(2))),
		Clock:    func() time.Duration { return now },
		OnSymbol: func(seq uint64, payload []byte, delay time.Duration) {},
		Timeout:  time.Millisecond,
		Metrics:  obs.NewRegistry(),
		Trace:    obs.NewTrace(1 << 12),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Replication shares carry the payload verbatim, so datagrams can be
	// crafted directly. Each round is one fresh symbol (k=1, m=3): the
	// first share delivers, the rest are late duplicates. Advancing the
	// clock past the timeout each round evicts the previous tombstone,
	// returning its entry and buffers to the pool.
	var seq uint64
	var dgram []byte
	round := func() {
		now += 10 * time.Millisecond
		for idx := 0; idx < 3; idx++ {
			pkt := wire.SharePacket{
				Seq: seq, K: 1, M: 3, Index: uint8(idx),
				SentAt: int64(now), Payload: payload,
			}
			var err error
			dgram, err = wire.AppendMarshal(dgram[:0], pkt)
			if err != nil {
				t.Fatal(err)
			}
			recv.HandleDatagram(dgram)
		}
		seq++
	}
	for i := 0; i < 5; i++ {
		round() // warm the entry pool and buffer freelist
	}
	allocs := testing.AllocsPerRun(100, round)
	// Budget: the delivered secret handed to the callback, the order-list
	// element, and occasional pool misses after a GC — but nothing
	// proportional to shares.
	if allocs > 5 {
		t.Errorf("ingest allocates %v times per symbol, want <= 5", allocs)
	}
	if got := recv.Stats().SymbolsDelivered; got != int64(seq) {
		t.Fatalf("delivered %d of %d symbols", got, seq)
	}
}

// BenchmarkSendHotPath measures the steady-state send path over null links
// for the three scheme fast paths; CI runs it as a smoke test.
func BenchmarkSendHotPath(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5a}, 1400)
	for _, tc := range []struct {
		name string
		k, m int
	}{
		{"replication-1of3", 1, 3},
		{"xor-3of3", 3, 3},
		{"shamir-3of5", 3, 5},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s := hotPathSender(b, tc.k, tc.m)
			if err := s.Send(payload); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Send(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
