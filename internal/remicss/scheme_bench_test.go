package remicss

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"remicss/internal/netem"
	"remicss/internal/sharing"
)

// BenchmarkEndToEndSchemes compares real CPU throughput of the full
// protocol stack under each sharing scheme at k=3, m=5 — the ablation
// behind the host cost model's O(k) term and the Auto scheme's fast paths.
func BenchmarkEndToEndSchemes(b *testing.B) {
	schemes := map[string]func() sharing.Scheme{
		"auto":   func() sharing.Scheme { return sharing.NewAuto(rand.New(rand.NewSource(1))) },
		"shamir": func() sharing.Scheme { return sharing.NewShamir(rand.New(rand.NewSource(1))) },
		"blakley": func() sharing.Scheme {
			return sharing.NewBlakley(rand.New(rand.NewSource(1)))
		},
		"authenticated-shamir": func() sharing.Scheme {
			a, err := sharing.NewAuthenticated(sharing.NewShamir(rand.New(rand.NewSource(1))), []byte("bench key"))
			if err != nil {
				b.Fatal(err)
			}
			return a
		},
	}
	for name, mk := range schemes {
		b.Run(name, func(b *testing.B) {
			scheme := mk()
			eng := netem.NewEngine()
			recv, err := NewReceiver(ReceiverConfig{
				Scheme:   scheme,
				Clock:    eng.Now,
				OnSymbol: func(uint64, []byte, time.Duration) {},
			})
			if err != nil {
				b.Fatal(err)
			}
			links := make([]Link, 5)
			for i := range links {
				l, err := netem.NewLink(eng, netem.LinkConfig{Rate: 1e9, QueueLimit: 1 << 20},
					rand.New(rand.NewSource(int64(i))),
					func(p []byte, _ time.Duration) { recv.HandleDatagram(p) })
				if err != nil {
					b.Fatal(err)
				}
				links[i] = l
			}
			snd, err := NewSender(SenderConfig{
				Scheme:  scheme,
				Chooser: FixedChooser{K: 3, Mask: 0b11111},
				Clock:   eng.Now,
			}, links)
			if err != nil {
				b.Fatal(err)
			}
			payload := bytes.Repeat([]byte{0x3c}, 1400)
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := snd.Send(payload); err != nil {
					b.Fatal(err)
				}
				if i%256 == 0 {
					eng.RunUntilIdle()
				}
			}
			eng.RunUntilIdle()
		})
	}
}
