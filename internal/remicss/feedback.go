package remicss

import (
	"time"

	"remicss/internal/obs"
	"remicss/internal/wire"
)

// Feedback support: the receiver periodically summarizes its delivery
// counters into report datagrams (wire.ReportPacket); the sender folds them
// into recent-loss estimates that drive an adaptive controller
// (internal/adapt).

// MakeReport builds the next feedback report: a delta of the delivery
// counters since the previous MakeReport call. Send the returned datagram
// back to the sender over any channel. Safe to call concurrently with
// datagram ingest.
func (r *Receiver) MakeReport() []byte {
	r.reportMu.Lock()
	defer r.reportMu.Unlock()
	st := r.Stats()
	rep := wire.ReportPacket{
		Epoch:     r.reportEpoch,
		Delivered: uint64(st.SymbolsDelivered - r.lastReport.SymbolsDelivered),
		Evicted:   uint64(st.SymbolsEvicted - r.lastReport.SymbolsEvicted),
		Pending:   uint32(r.Pending()),
	}
	r.reportEpoch++
	r.lastReport = st
	return wire.MarshalReport(rep)
}

// FeedbackState accumulates reports on the sending side. Zero value is
// ready to use.
type FeedbackState struct {
	lastEpoch   uint64
	primedEpoch bool

	delivered uint64
	evicted   uint64
	reports   int64

	trace *obs.Trace
	clock func() time.Duration
}

// Instrument attaches a trace (and the clock to timestamp events with) so
// each accepted report emits an EventReportReceived. Either argument may
// be nil to leave the corresponding aspect unset.
func (f *FeedbackState) Instrument(trace *obs.Trace, clock func() time.Duration) {
	f.trace = trace
	f.clock = clock
}

// Ingest parses a report datagram. Non-report datagrams and stale epochs
// (replays or reordered feedback) are ignored and reported via the return
// value so callers can keep counters.
func (f *FeedbackState) Ingest(datagram []byte) bool {
	rep, err := wire.UnmarshalReport(datagram)
	if err != nil {
		return false
	}
	if f.primedEpoch && rep.Epoch <= f.lastEpoch {
		return false // duplicate or out-of-order report
	}
	f.lastEpoch = rep.Epoch
	f.primedEpoch = true
	f.delivered += rep.Delivered
	f.evicted += rep.Evicted
	f.reports++
	if f.trace != nil {
		var now time.Duration
		if f.clock != nil {
			now = f.clock()
		}
		f.trace.Record(obs.EventReportReceived, -1, now, rep.Epoch, int64(rep.Delivered))
	}
	return true
}

// Reports returns how many valid reports were ingested.
func (f *FeedbackState) Reports() int64 { return f.reports }

// LossSince computes the symbol loss fraction over a window: the caller
// supplies how many symbols it sent during the window and the counters
// accumulated from reports are consumed (reset). Returns 0 when nothing was
// sent.
func (f *FeedbackState) LossSince(symbolsSent int64) float64 {
	delivered := f.delivered
	f.delivered = 0
	f.evicted = 0
	if symbolsSent <= 0 {
		return 0
	}
	lost := float64(symbolsSent) - float64(delivered)
	if lost < 0 {
		lost = 0
	}
	return lost / float64(symbolsSent)
}
