package remicss

import (
	"math/rand"
	"testing"
	"time"

	"remicss/internal/obs"
	"remicss/internal/sharing"
)

// captureLink records every datagram handed to it so tests can replay real
// sender output into a receiver selectively.
type captureLink struct {
	sent [][]byte
}

func (c *captureLink) Send(datagram []byte) bool {
	c.sent = append(c.sent, append([]byte(nil), datagram...))
	return true
}
func (c *captureLink) Writable() bool         { return true }
func (c *captureLink) Backlog() time.Duration { return 0 }

// evictionHarness is a sender/receiver pair over capture links with a
// manually advanced clock, for table-driven eviction scenarios.
type evictionHarness struct {
	t         *testing.T
	now       time.Duration
	links     []*captureLink
	snd       *Sender
	recv      *Receiver
	delivered map[uint64]int // deliveries per seq
}

func newEvictionHarness(t *testing.T, k, m, maxPending int) *evictionHarness {
	t.Helper()
	h := &evictionHarness{t: t, delivered: make(map[uint64]int)}
	scheme := sharing.NewAuto(rand.New(rand.NewSource(7)))
	clock := func() time.Duration { return h.now }
	links := make([]Link, m)
	h.links = make([]*captureLink, m)
	for i := range links {
		h.links[i] = &captureLink{}
		links[i] = h.links[i]
	}
	snd, err := NewSender(SenderConfig{
		Scheme:  scheme,
		Chooser: FixedChooser{K: k, Mask: 1<<uint(m) - 1},
		Clock:   clock,
	}, links)
	if err != nil {
		t.Fatal(err)
	}
	h.snd = snd
	recv, err := NewReceiver(ReceiverConfig{
		Scheme:     scheme,
		Clock:      clock,
		Timeout:    100 * time.Millisecond,
		MaxPending: maxPending,
		Shards:     1, // eviction tests pin the global oldest-first order and exact FIFO capacity
		Metrics:    obs.NewRegistry(),
		Trace:      obs.NewTrace(1 << 12),
		OnSymbol:   func(seq uint64, _ []byte, _ time.Duration) { h.delivered[seq]++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	h.recv = recv
	return h
}

// send transmits one symbol and returns the captured share datagrams, one
// per channel.
func (h *evictionHarness) send(payload []byte) [][]byte {
	h.t.Helper()
	for _, l := range h.links {
		l.sent = nil
	}
	if err := h.snd.Send(payload); err != nil {
		h.t.Fatal(err)
	}
	var out [][]byte
	for _, l := range h.links {
		out = append(out, l.sent...)
	}
	return out
}

// TestTombstoneEvictionLateShares is the regression test for the
// late-share re-admission bug: a share arriving after its delivered
// symbol's tombstone has been evicted must count as SharesLate and must
// not re-open the sequence number — previously it re-admitted the seq and,
// at k=1, delivered the same symbol twice.
func TestTombstoneEvictionLateShares(t *testing.T) {
	steps := []struct {
		name string
		run  func(t *testing.T, h *evictionHarness, shares [][]byte)
		want ReceiverStats
		// wantDeliveries is the expected delivery count for seq 0 after
		// the step.
		wantDeliveries int
		wantPending    int
	}{
		{
			name: "first share delivers",
			run: func(t *testing.T, h *evictionHarness, shares [][]byte) {
				h.recv.HandleDatagram(shares[0])
			},
			want:           ReceiverStats{SharesReceived: 1, SymbolsDelivered: 1},
			wantDeliveries: 1,
			wantPending:    1, // the tombstone
		},
		{
			name: "late share against live tombstone",
			run: func(t *testing.T, h *evictionHarness, shares [][]byte) {
				h.now += 10 * time.Millisecond
				h.recv.HandleDatagram(shares[1])
			},
			want:           ReceiverStats{SharesReceived: 1, SharesLate: 1, SymbolsDelivered: 1},
			wantDeliveries: 1,
			wantPending:    1,
		},
		{
			name: "tick evicts the tombstone silently",
			run: func(t *testing.T, h *evictionHarness, shares [][]byte) {
				h.now += 200 * time.Millisecond // past the 100ms timeout
				h.recv.Tick()
			},
			// Tombstone eviction is not a symbol loss: SymbolsEvicted stays 0.
			want:           ReceiverStats{SharesReceived: 1, SharesLate: 1, SymbolsDelivered: 1},
			wantDeliveries: 1,
			wantPending:    0,
		},
		{
			name: "straggler after tombstone eviction is late, not re-admitted",
			run: func(t *testing.T, h *evictionHarness, shares [][]byte) {
				h.now += time.Millisecond
				h.recv.HandleDatagram(shares[2])
				// And again: every straggler counts late, none re-admits.
				h.recv.HandleDatagram(shares[2])
			},
			want:           ReceiverStats{SharesReceived: 1, SharesLate: 3, SymbolsDelivered: 1},
			wantDeliveries: 1,
			wantPending:    0,
		},
	}

	h := newEvictionHarness(t, 1, 3, 16)
	shares := h.send([]byte("tombstone-symbol"))
	if len(shares) != 3 {
		t.Fatalf("captured %d shares, want 3", len(shares))
	}
	for _, step := range steps {
		step.run(t, h, shares)
		if got := h.recv.Stats(); got != step.want {
			t.Fatalf("%s: stats %+v, want %+v", step.name, got, step.want)
		}
		if got := h.delivered[0]; got != step.wantDeliveries {
			t.Fatalf("%s: seq 0 delivered %d times, want %d", step.name, got, step.wantDeliveries)
		}
		if got := h.recv.Pending(); got != step.wantPending {
			t.Fatalf("%s: pending %d, want %d", step.name, got, step.wantPending)
		}
	}
	// The delivery must have been traced exactly once.
	if got := h.recv.trace.CountKind(obs.EventSymbolDelivered); got != 1 {
		t.Fatalf("traced %d symbol deliveries, want 1", got)
	}
}

// TestIncompleteEvictionStillReadmits pins the complementary behavior: an
// INCOMPLETE symbol evicted by timeout counts as SymbolsEvicted, and a
// fresh set of shares for that sequence number may still complete it (only
// delivered symbols are remembered in the closed set).
func TestIncompleteEvictionStillReadmits(t *testing.T) {
	h := newEvictionHarness(t, 2, 3, 16)
	shares := h.send([]byte("incomplete-symbol"))
	if len(shares) != 3 {
		t.Fatalf("captured %d shares, want 3", len(shares))
	}
	h.recv.HandleDatagram(shares[0]) // 1 of k=2: stays pending
	h.now += 200 * time.Millisecond
	h.recv.Tick() // evicts the incomplete entry
	st := h.recv.Stats()
	if st.SymbolsEvicted != 1 || st.SymbolsDelivered != 0 {
		t.Fatalf("after eviction: %+v", st)
	}
	if got := h.recv.trace.CountKind(obs.EventSymbolEvicted); got != 1 {
		t.Fatalf("traced %d evictions, want 1", got)
	}
	// Two fresh shares re-admit and complete the symbol.
	h.recv.HandleDatagram(shares[1])
	h.recv.HandleDatagram(shares[2])
	st = h.recv.Stats()
	if st.SymbolsDelivered != 1 || st.SharesLate != 0 {
		t.Fatalf("after re-admission: %+v", st)
	}
	if h.delivered[0] != 1 {
		t.Fatalf("seq 0 delivered %d times, want 1", h.delivered[0])
	}
}

// TestClosedMemoryIsBounded fills the closed-symbol memory past its
// capacity (closedMemoryFactor × MaxPending) and checks both directions:
// recently closed seqs are still refused, while the oldest remembered seq
// has been forgotten (bounded memory, graceful degradation to the old
// re-admission behavior).
func TestClosedMemoryIsBounded(t *testing.T) {
	const maxPending = 4
	capacity := closedMemoryFactor * maxPending
	h := newEvictionHarness(t, 1, 3, maxPending)

	// Deliver and evict capacity+1 symbols, so seq 0 falls out of the
	// closed memory.
	all := make([][][]byte, capacity+1)
	for i := range all {
		all[i] = h.send([]byte{byte(i)})
		h.recv.HandleDatagram(all[i][0])
		h.now += 200 * time.Millisecond
		h.recv.Tick()
	}
	st := h.recv.Stats()
	if int(st.SymbolsDelivered) != capacity+1 {
		t.Fatalf("delivered %d, want %d", st.SymbolsDelivered, capacity+1)
	}

	// The newest closed seq is refused...
	h.recv.HandleDatagram(all[capacity][1])
	if got := h.recv.Stats().SharesLate; got != 1 {
		t.Fatalf("straggler for remembered seq: SharesLate %d, want 1", got)
	}
	// ...but the oldest was forgotten and re-admits (and, at k=1,
	// re-delivers — the bounded-memory tradeoff).
	h.recv.HandleDatagram(all[0][1])
	st = h.recv.Stats()
	if int(st.SymbolsDelivered) != capacity+2 {
		t.Fatalf("forgotten seq did not re-admit: %+v", st)
	}
}
