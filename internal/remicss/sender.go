package remicss

import (
	"fmt"
	"math/bits"
	"sync"
	"time"

	"remicss/internal/sharing"
	"remicss/internal/wire"
)

// SenderStats counts sender-side activity.
type SenderStats struct {
	// SymbolsSent counts symbols whose shares were handed to the links.
	SymbolsSent int64
	// SymbolsStalled counts symbols dropped because the chooser could not
	// find enough ready channels (sender-side backpressure).
	SymbolsStalled int64
	// SharesSent counts shares accepted by links.
	SharesSent int64
	// SharesDropped counts shares rejected by a full link queue.
	SharesDropped int64
}

// SenderConfig configures a Sender. Scheme, Chooser, and Clock are
// required.
type SenderConfig struct {
	// Scheme splits symbols into shares.
	Scheme sharing.Scheme
	// Chooser picks (k, M) per symbol.
	Chooser Chooser
	// Clock supplies send timestamps; in simulation this is the virtual
	// clock, over UDP it is wall time since an epoch shared with the
	// receiver.
	Clock func() time.Duration
}

// Sender is the sending half of the protocol. It is safe for concurrent
// use: a single mutex serializes Send, Stats, and Seq, and the chooser
// and scratch buffers are only touched under it. The steady-state Send
// path reuses a per-sender share slice and one marshal buffer, so the
// replication and XOR schemes transmit without heap allocation; links
// must therefore not retain the datagram slice after Send returns (see
// the Link contract).
type Sender struct {
	cfg   SenderConfig
	links []Link

	mu    sync.Mutex
	seq   uint64      // guarded by mu
	stats SenderStats // guarded by mu
	// shares and dgram are Send scratch, reused across calls: shares
	// holds the split output (share payload buffers are recycled by the
	// scheme's into path), dgram holds one marshaled datagram at a time.
	shares []sharing.Share // guarded by mu
	dgram  []byte          // guarded by mu
}

// NewSender builds a sender over the given links.
func NewSender(cfg SenderConfig, links []Link) (*Sender, error) {
	if len(links) == 0 {
		return nil, ErrNoLinks
	}
	if len(links) > 32 {
		return nil, fmt.Errorf("remicss: %d links exceeds the 32-channel mask limit", len(links))
	}
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("remicss: nil scheme")
	}
	if cfg.Chooser == nil {
		return nil, fmt.Errorf("remicss: nil chooser")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("remicss: nil clock")
	}
	return &Sender{cfg: cfg, links: links}, nil
}

// Stats returns a snapshot of the sender counters.
func (s *Sender) Stats() SenderStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Send transmits one source symbol. It returns ErrBackpressure if no
// channel subset is currently available (the symbol is not queued anywhere;
// best-effort semantics), or a split/encoding error. Safe to call from
// multiple goroutines; symbols are sequenced in lock-acquisition order.
//
//remicss:noalloc
func (s *Sender) Send(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	k, mask, ok := s.cfg.Chooser.Choose(s.links)
	if !ok {
		s.stats.SymbolsStalled++
		return ErrBackpressure
	}
	m := bits.OnesCount32(mask)

	shares, err := sharing.SplitInto(s.cfg.Scheme, payload, k, m, s.shares)
	if err != nil {
		return fmt.Errorf("remicss: splitting symbol: %w", err)
	}
	s.shares = shares

	seq := s.seq
	s.seq++
	now := s.cfg.Clock()

	shareIdx := 0
	for i := 0; i < len(s.links); i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		pkt := wire.SharePacket{
			Seq:     seq,
			K:       uint8(k),
			M:       uint8(m),
			Index:   uint8(shares[shareIdx].Index),
			SentAt:  int64(now),
			Payload: shares[shareIdx].Data,
		}
		// One marshal buffer serves every share: links do not retain the
		// datagram after Send returns, so it is safe to overwrite.
		s.dgram, err = wire.AppendMarshal(s.dgram[:0], pkt)
		if err != nil {
			return fmt.Errorf("remicss: encoding share: %w", err)
		}
		if s.links[i].Send(s.dgram) {
			s.stats.SharesSent++
		} else {
			s.stats.SharesDropped++
		}
		shareIdx++
	}
	s.stats.SymbolsSent++
	return nil
}

// Seq returns the next sequence number to be assigned (i.e. the number of
// symbols sent so far; stalled attempts do not consume a sequence number).
func (s *Sender) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}
