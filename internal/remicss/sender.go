package remicss

import (
	"fmt"
	"math/bits"
	"strconv"
	"sync"
	"time"

	"remicss/internal/obs"
	"remicss/internal/sharing"
	"remicss/internal/wire"
)

// SenderStats counts sender-side activity. It is a point-in-time snapshot
// assembled from the sender's metric registry; the registry itself (see
// Sender.Metrics) additionally breaks shares down per channel and
// histograms share sizes.
type SenderStats struct {
	// SymbolsSent counts symbols whose shares were handed to the links.
	SymbolsSent int64
	// SymbolsStalled counts symbols dropped because the chooser could not
	// find enough ready channels (sender-side backpressure).
	SymbolsStalled int64
	// SharesSent counts shares accepted by links.
	SharesSent int64
	// SharesDropped counts shares rejected by a full link queue.
	SharesDropped int64
}

// SenderConfig configures a Sender. Scheme, Chooser, and Clock are
// required.
type SenderConfig struct {
	// Scheme splits symbols into shares.
	Scheme sharing.Scheme
	// Chooser picks (k, M) per symbol.
	Chooser Chooser
	// Clock supplies send timestamps; in simulation this is the virtual
	// clock, over UDP it is wall time since an epoch shared with the
	// receiver.
	Clock func() time.Duration
	// Metrics receives the sender's counters and histograms. Nil gives
	// the sender a private registry; Stats and Metrics work either way.
	// Sharing one registry between a sender, receiver, and transport
	// links composes their series into one exposition endpoint.
	Metrics *obs.Registry
	// Trace, when non-nil, receives share-sent and datagram-dropped
	// events with per-channel labels. Nil disables tracing.
	Trace *obs.Trace
	// FirstSeq is the first sequence number the sender assigns. A sender
	// rebuilt mid-session (e.g. to change parameters) must continue the
	// previous sender's sequence space (pass its Seq() here): the receiver
	// permanently refuses sequence numbers it has already delivered, so
	// restarting from zero would discard the reused range as late shares.
	FirstSeq uint64
}

// senderChannelCounters are the per-channel metric handles, resolved once
// at construction so the hot path indexes a slice instead of hashing
// labels.
type senderChannelCounters struct {
	sent    *obs.Counter
	dropped *obs.Counter
}

// senderMetrics bundles every handle the send path touches.
type senderMetrics struct {
	reg            *obs.Registry
	symbolsSent    *obs.Counter
	symbolsStalled *obs.Counter
	shareBytes     *obs.Histogram
	perChan        []senderChannelCounters
}

// newSenderMetrics registers the sender series for n channels.
func newSenderMetrics(reg *obs.Registry, n int) senderMetrics {
	m := senderMetrics{
		reg:            reg,
		symbolsSent:    reg.Counter("remicss_sender_symbols_sent_total"),
		symbolsStalled: reg.Counter("remicss_sender_symbols_stalled_total"),
		shareBytes:     reg.Histogram("remicss_sender_share_bytes", obs.DefaultSizeBounds()),
		perChan:        make([]senderChannelCounters, n),
	}
	for i := range m.perChan {
		label := obs.Label{Key: "channel", Value: strconv.Itoa(i)}
		m.perChan[i] = senderChannelCounters{
			sent:    reg.Counter("remicss_sender_shares_sent_total", label),
			dropped: reg.Counter("remicss_sender_shares_dropped_total", label),
		}
	}
	return m
}

// Sender is the sending half of the protocol. It is safe for concurrent
// use: a single mutex serializes Send and Seq, and the chooser and scratch
// buffers are only touched under it; counters are atomic and readable
// without the lock. The steady-state Send path reuses a per-sender share
// slice and one marshal buffer, so the replication and XOR schemes
// transmit without heap allocation even with metrics and tracing on;
// links must therefore not retain the datagram slice after Send returns
// (see the Link contract).
type Sender struct {
	cfg   SenderConfig
	links []Link
	met   senderMetrics
	trace *obs.Trace

	mu  sync.Mutex
	seq uint64 // guarded by mu
	// shares and dgram are Send scratch, reused across calls: shares
	// holds the split output (share payload buffers are recycled by the
	// scheme's into path), dgram holds one marshaled datagram at a time.
	shares []sharing.Share // guarded by mu
	dgram  []byte          // guarded by mu
}

// NewSender builds a sender over the given links.
func NewSender(cfg SenderConfig, links []Link) (*Sender, error) {
	if len(links) == 0 {
		return nil, ErrNoLinks
	}
	if len(links) > 32 {
		return nil, fmt.Errorf("remicss: %d links exceeds the 32-channel mask limit", len(links))
	}
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("remicss: nil scheme")
	}
	if cfg.Chooser == nil {
		return nil, fmt.Errorf("remicss: nil chooser")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("remicss: nil clock")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Sender{
		cfg:   cfg,
		links: links,
		met:   newSenderMetrics(reg, len(links)),
		trace: cfg.Trace,
		seq:   cfg.FirstSeq,
	}, nil
}

// Metrics returns the registry holding the sender's series (the one from
// SenderConfig.Metrics, or the private registry created in its absence),
// for exposition via internal/obs writers.
func (s *Sender) Metrics() *obs.Registry { return s.met.reg }

// Stats returns a snapshot of the sender counters. Counters are atomic,
// so the snapshot does not block concurrent Send calls; per-channel
// counts are summed into the aggregate fields.
func (s *Sender) Stats() SenderStats {
	st := SenderStats{
		SymbolsSent:    s.met.symbolsSent.Value(),
		SymbolsStalled: s.met.symbolsStalled.Value(),
	}
	for i := range s.met.perChan {
		st.SharesSent += s.met.perChan[i].sent.Value()
		st.SharesDropped += s.met.perChan[i].dropped.Value()
	}
	return st
}

// Send transmits one source symbol. It returns ErrBackpressure if no
// channel subset is currently available (the symbol is not queued anywhere;
// best-effort semantics), or a split/encoding error. Safe to call from
// multiple goroutines; symbols are sequenced in lock-acquisition order.
//
//remicss:noalloc
func (s *Sender) Send(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	k, mask, ok := s.cfg.Chooser.Choose(s.links)
	if !ok {
		s.met.symbolsStalled.Inc()
		return ErrBackpressure
	}
	m := bits.OnesCount32(mask)

	shares, err := sharing.SplitInto(s.cfg.Scheme, payload, k, m, s.shares)
	if err != nil {
		return fmt.Errorf("remicss: splitting symbol: %w", err)
	}
	s.shares = shares

	seq := s.seq
	s.seq++
	now := s.cfg.Clock()

	shareIdx := 0
	for i := 0; i < len(s.links); i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		pkt := wire.SharePacket{
			Seq:     seq,
			K:       uint8(k),
			M:       uint8(m),
			Index:   uint8(shares[shareIdx].Index),
			SentAt:  int64(now),
			Payload: shares[shareIdx].Data,
		}
		// One marshal buffer serves every share: links do not retain the
		// datagram after Send returns, so it is safe to overwrite.
		s.dgram, err = wire.AppendMarshal(s.dgram[:0], pkt)
		if err != nil {
			return fmt.Errorf("remicss: encoding share: %w", err)
		}
		s.met.shareBytes.Observe(int64(len(s.dgram)))
		if s.links[i].Send(s.dgram) {
			s.met.perChan[i].sent.Inc()
			s.trace.Record(obs.EventShareSent, int32(i), now, seq, int64(len(s.dgram)))
		} else {
			s.met.perChan[i].dropped.Inc()
			s.trace.Record(obs.EventDatagramDropped, int32(i), now, seq, int64(len(s.dgram)))
		}
		shareIdx++
	}
	s.met.symbolsSent.Inc()
	return nil
}

// Seq returns the next sequence number to be assigned (FirstSeq plus the
// number of symbols sent; stalled attempts do not consume a sequence
// number). Pass it as a replacement sender's FirstSeq to continue the
// session's sequence space.
func (s *Sender) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}
