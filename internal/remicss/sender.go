package remicss

import (
	"fmt"
	"math/bits"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"remicss/internal/obs"
	"remicss/internal/sharing"
	"remicss/internal/wire"
)

// SenderStats counts sender-side activity. It is a point-in-time snapshot
// assembled from the sender's metric registry; the registry itself (see
// Sender.Metrics) additionally breaks shares down per channel and
// histograms share sizes.
type SenderStats struct {
	// SymbolsSent counts symbols whose shares were handed to the links.
	SymbolsSent int64
	// SymbolsStalled counts symbols dropped because the chooser could not
	// find enough ready channels (sender-side backpressure).
	SymbolsStalled int64
	// SharesSent counts shares accepted by links.
	SharesSent int64
	// SharesDropped counts shares rejected by a full link queue.
	SharesDropped int64
}

// SenderConfig configures a Sender. Scheme, Chooser, and Clock are
// required.
type SenderConfig struct {
	// Scheme splits symbols into shares. Splits run concurrently outside
	// the sender's locks, so the scheme — including its randomness source —
	// must be safe for concurrent use. The default drbg.Shared pool is;
	// a seeded *math/rand.Rand (deterministic tests) is not, and such
	// senders must be driven from a single goroutine.
	Scheme sharing.Scheme
	// Chooser picks (k, M) per symbol.
	Chooser Chooser
	// Clock supplies send timestamps; in simulation this is the virtual
	// clock, over UDP it is wall time since an epoch shared with the
	// receiver.
	Clock func() time.Duration
	// Metrics receives the sender's counters and histograms. Nil gives
	// the sender a private registry; Stats and Metrics work either way.
	// Sharing one registry between a sender, receiver, and transport
	// links composes their series into one exposition endpoint.
	Metrics *obs.Registry
	// Trace, when non-nil, receives share-sent and datagram-dropped
	// events with per-channel labels. Nil disables tracing.
	Trace *obs.Trace
	// FirstSeq is the first sequence number the sender assigns. A sender
	// rebuilt mid-session (e.g. to change parameters) must continue the
	// previous sender's sequence space (pass its Seq() here): the receiver
	// permanently refuses sequence numbers it has already delivered, so
	// restarting from zero would discard the reused range as late shares.
	FirstSeq uint64
	// Health, when non-nil, receives every share send outcome
	// (HealthTracker.ObserveSend), driving the per-channel failure EWMA
	// and failover state machine. Pair it with a HealthChooser so the
	// schedule actually avoids channels the tracker declares down.
	Health *HealthTracker
	// Session, when nonzero, stamps every share with this gateway session
	// ID using the v2 wire header, so a multi-tenant gateway sharing one
	// socket pool can dispatch each datagram to its session without parsing
	// the full packet. Zero keeps the v1 header, byte-compatible with
	// receivers that predate the gateway.
	Session uint64
}

// senderChannelCounters are the per-channel metric handles, resolved once
// at construction so the hot path indexes a slice instead of hashing
// labels.
type senderChannelCounters struct {
	sent    *obs.Counter
	dropped *obs.Counter
}

// senderMetrics bundles every handle the send path touches.
type senderMetrics struct {
	reg            *obs.Registry
	symbolsSent    *obs.Counter
	symbolsStalled *obs.Counter
	shareBytes     *obs.Histogram
	perChan        []senderChannelCounters
}

// newSenderMetrics registers the sender series for n channels.
func newSenderMetrics(reg *obs.Registry, n int) senderMetrics {
	m := senderMetrics{
		reg:            reg,
		symbolsSent:    reg.Counter("remicss_sender_symbols_sent_total"),
		symbolsStalled: reg.Counter("remicss_sender_symbols_stalled_total"),
		shareBytes:     reg.Histogram("remicss_sender_share_bytes", obs.DefaultSizeBounds()),
		perChan:        make([]senderChannelCounters, n),
	}
	for i := range m.perChan {
		label := obs.Label{Key: "channel", Value: strconv.Itoa(i)}
		m.perChan[i] = senderChannelCounters{
			sent:    reg.Counter("remicss_sender_shares_sent_total", label),
			dropped: reg.Counter("remicss_sender_shares_dropped_total", label),
		}
	}
	return m
}

// Sender is the sending half of the protocol. It is safe for concurrent
// use and, unlike the earlier single-mutex design, scales with callers:
// sequence numbers are assigned atomically, split and marshal run outside
// any lock on per-caller scratch recycled through a sync.Pool, the chooser
// (the only remaining shared mutable state) is serialized by its own small
// mutex, and each link has its own send lock so concurrent callers fanning
// out to disjoint links proceed in parallel. Counters are atomic and
// readable without any lock.
//
// The steady-state Send path reuses pooled share slices and one marshal
// buffer per caller, so the replication and XOR schemes transmit without
// heap allocation even with metrics and tracing on; links must therefore
// not retain the datagram slice after Send returns (see the Link contract).
//
// Because splits now run concurrently, the configured Scheme — including
// its randomness source — must be safe for concurrent use. The default
// drbg.Shared pool is; a seeded *math/rand.Rand (test determinism) is
// not, and such senders must be driven from one goroutine.
type Sender struct {
	cfg    SenderConfig
	links  []Link
	met    senderMetrics
	trace  *obs.Trace
	health *HealthTracker

	// seq is the next sequence number to assign. Atomic: Send claims
	// numbers with a single Add, no lock held.
	seq atomic.Uint64

	// chooser is the shared channel-selection state (DynamicChooser carries
	// a PRNG and scratch). guarded by chooserMu.
	chooser   Chooser
	chooserMu sync.Mutex

	// linkMu[i] serializes Send calls on links[i] only, so concurrent
	// symbols contend per link rather than per sender.
	linkMu []sync.Mutex

	// Per-caller scratch: scratchSlot holds one *sendScratch claimed and
	// returned with single atomic operations — the deterministic path a
	// lone caller always hits — and scratch is the sync.Pool overflow that
	// serves additional concurrent callers. (The pool alone would not do:
	// under the race detector it deliberately drops Put items, which would
	// make the zero-allocation pins flaky.)
	scratchSlot atomic.Pointer[sendScratch]
	scratch     sync.Pool
}

// marshalShare encodes pkt in the sender's wire version: the v2
// session-bearing header when the sender is bound to a gateway session,
// the v1 header otherwise.
//
//remicss:noalloc
func (s *Sender) marshalShare(dst []byte, pkt wire.SharePacket) ([]byte, error) {
	if s.cfg.Session != 0 {
		pkt.Session = s.cfg.Session
		return wire.AppendMarshalSession(dst, pkt)
	}
	return wire.AppendMarshal(dst, pkt)
}

// getScratch claims a private working set for one Send/SendBatch call.
func (s *Sender) getScratch() *sendScratch {
	if sc := s.scratchSlot.Swap(nil); sc != nil {
		return sc
	}
	return s.scratch.Get().(*sendScratch)
}

// putScratch returns a working set claimed by getScratch.
func (s *Sender) putScratch(sc *sendScratch) {
	if s.scratchSlot.CompareAndSwap(nil, sc) {
		return
	}
	s.scratch.Put(sc)
}

// sendScratch is the per-call working set: the split output (share payload
// buffers are recycled by the scheme's into path), the single-datagram
// marshal buffer used by Send, and the batch plan used by SendBatch.
type sendScratch struct {
	shares []sharing.Share
	dgram  []byte //remicss:secret
	// SendBatch state: one choice per payload, one planned op plus one
	// marshal buffer per share in the burst.
	choices []batchChoice
	ops     []batchOp
	bufs    [][]byte //remicss:secret
}

// batchChoice records the chooser's verdict for one payload of a burst;
// mask == 0 marks a stalled payload.
type batchChoice struct {
	k    uint8
	mask uint32
}

// batchOp is one marshaled share waiting for its per-link send phase.
type batchOp struct {
	link int32
	seq  uint64
	now  time.Duration
	buf  []byte //remicss:secret
}

// NewSender builds a sender over the given links.
func NewSender(cfg SenderConfig, links []Link) (*Sender, error) {
	if len(links) == 0 {
		return nil, ErrNoLinks
	}
	if len(links) > 32 {
		return nil, fmt.Errorf("remicss: %d links exceeds the 32-channel mask limit", len(links))
	}
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("remicss: nil scheme")
	}
	if cfg.Chooser == nil {
		return nil, fmt.Errorf("remicss: nil chooser")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("remicss: nil clock")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Sender{
		cfg:     cfg,
		links:   links,
		met:     newSenderMetrics(reg, len(links)),
		trace:   cfg.Trace,
		health:  cfg.Health,
		chooser: cfg.Chooser,
		linkMu:  make([]sync.Mutex, len(links)),
	}
	s.seq.Store(cfg.FirstSeq)
	s.scratchSlot.Store(new(sendScratch))
	s.scratch.New = func() any { return new(sendScratch) }
	return s, nil
}

// Metrics returns the registry holding the sender's series (the one from
// SenderConfig.Metrics, or the private registry created in its absence),
// for exposition via internal/obs writers.
func (s *Sender) Metrics() *obs.Registry { return s.met.reg }

// Stats returns a snapshot of the sender counters. Counters are atomic,
// so the snapshot does not block concurrent Send calls; per-channel
// counts are summed into the aggregate fields.
func (s *Sender) Stats() SenderStats {
	st := SenderStats{
		SymbolsSent:    s.met.symbolsSent.Value(),
		SymbolsStalled: s.met.symbolsStalled.Value(),
	}
	for i := range s.met.perChan {
		st.SharesSent += s.met.perChan[i].sent.Value()
		st.SharesDropped += s.met.perChan[i].dropped.Value()
	}
	return st
}

// Send transmits one source symbol. It returns ErrBackpressure if no
// channel subset is currently available (the symbol is not queued anywhere;
// best-effort semantics), or a split/encoding error. Safe to call from
// multiple goroutines: the chooser decision is the only serialized step,
// split and marshal run on pooled per-caller scratch, and the fan-out takes
// only the per-link send locks. Sequence numbers are claimed atomically
// after a successful split, so each caller's own sequence is monotonic but
// concurrent callers interleave without a defined order (they race in real
// time anyway).
//
//remicss:noalloc
//remicss:secret payload
func (s *Sender) Send(payload []byte) error {
	sc := s.getScratch()
	defer s.putScratch(sc)

	s.chooserMu.Lock()
	k, mask, ok := s.chooser.Choose(s.links) //lint:allow lockorder chooserMu exists to serialize Choose; choosers are pure policy and take no locks
	s.chooserMu.Unlock()
	if !ok {
		s.met.symbolsStalled.Inc()
		return ErrBackpressure
	}
	m := bits.OnesCount32(mask)

	shares, err := sharing.SplitInto(s.cfg.Scheme, payload, k, m, sc.shares)
	if err != nil {
		return fmt.Errorf("remicss: splitting symbol: %w", err)
	}
	sc.shares = shares

	seq := s.seq.Add(1) - 1
	now := s.cfg.Clock()
	// The committed schedule is ground truth for the threshold-floor
	// invariant: chaos tests assert Value>>8 (the threshold) never drops
	// below ⌊κ⌋ across every scheduled symbol.
	s.trace.Record(obs.EventSymbolScheduled, -1, now, seq, int64(k)<<8|int64(m))

	shareIdx := 0
	for i := 0; i < len(s.links); i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		pkt := wire.SharePacket{
			Seq:     seq,
			K:       uint8(k),
			M:       uint8(m),
			Index:   uint8(shares[shareIdx].Index),
			SentAt:  int64(now),
			Payload: shares[shareIdx].Data,
		}
		// One marshal buffer serves every share: links do not retain the
		// datagram after Send returns, so it is safe to overwrite.
		sc.dgram, err = s.marshalShare(sc.dgram[:0], pkt)
		if err != nil {
			return fmt.Errorf("remicss: encoding share: %w", err)
		}
		// Size and events are recorded only after a successful marshal: an
		// encoding error must not leave a phantom share size in the
		// histogram.
		s.met.shareBytes.Observe(int64(len(sc.dgram)))
		s.linkMu[i].Lock()
		delivered := s.links[i].Send(sc.dgram) //lint:allow lockorder linkMu[i] exists to serialize this link's Send; transports never call back into the sender
		s.linkMu[i].Unlock()
		if delivered {
			s.met.perChan[i].sent.Inc()
			s.trace.Record(obs.EventShareSent, int32(i), now, seq, int64(len(sc.dgram)))
		} else {
			s.met.perChan[i].dropped.Inc()
			s.trace.Record(obs.EventDatagramDropped, int32(i), now, seq, int64(len(sc.dgram)))
		}
		s.health.ObserveSend(i, delivered)
		shareIdx++
	}
	s.met.symbolsSent.Inc()
	return nil
}

// SendBatch transmits a burst of source symbols, one symbol per payload,
// with the per-symbol overheads amortized: the chooser lock is taken once
// for the whole burst, every split and marshal runs unlocked on pooled
// scratch, and each link's send lock is taken once per burst instead of
// once per share. Semantics per payload match Send — a stalled payload is
// counted and skipped, a split or encoding error skips that payload — and
// the burst is best-effort: later payloads are still sent after an earlier
// one fails.
//
// It returns the number of symbols handed to the links and the first hard
// error (split or marshal); if no hard error occurred but at least one
// payload stalled, it returns ErrBackpressure.
//
//remicss:secret payloads
func (s *Sender) SendBatch(payloads [][]byte) (int, error) {
	if len(payloads) == 0 {
		return 0, nil
	}
	sc := s.getScratch()
	defer s.putScratch(sc)

	// Phase 1: one chooser pass for the whole burst.
	sc.choices = sc.choices[:0]
	s.chooserMu.Lock()
	stalled := 0
	for range payloads {
		k, mask, ok := s.chooser.Choose(s.links) //lint:allow lockorder chooserMu exists to serialize Choose; choosers are pure policy and take no locks
		if !ok {
			mask = 0
			stalled++
		}
		sc.choices = append(sc.choices, batchChoice{k: uint8(k), mask: mask})
	}
	s.chooserMu.Unlock()
	if stalled > 0 {
		s.met.symbolsStalled.Add(int64(stalled))
	}

	// Phase 2: split and marshal every accepted payload with no lock held.
	// Each share gets its own retained marshal buffer so phase 3 can hand
	// all of them to the links; an error drops the whole symbol (no partial
	// fan-out), and nothing is observed for dropped symbols.
	var firstErr error
	sc.ops = sc.ops[:0]
	nb := 0
	planned := 0
	for pi, payload := range payloads {
		ch := sc.choices[pi]
		if ch.mask == 0 {
			continue
		}
		m := bits.OnesCount32(ch.mask)
		shares, err := sharing.SplitInto(s.cfg.Scheme, payload, int(ch.k), m, sc.shares)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("remicss: splitting symbol: %w", err)
			}
			continue
		}
		sc.shares = shares

		seq := s.seq.Add(1) - 1
		now := s.cfg.Clock()
		opStart := len(sc.ops)
		shareIdx := 0
		ok := true
		for i := 0; i < len(s.links); i++ {
			if ch.mask&(1<<uint(i)) == 0 {
				continue
			}
			pkt := wire.SharePacket{
				Seq:     seq,
				K:       ch.k,
				M:       uint8(m),
				Index:   uint8(shares[shareIdx].Index),
				SentAt:  int64(now),
				Payload: shares[shareIdx].Data,
			}
			if nb == len(sc.bufs) {
				sc.bufs = append(sc.bufs, nil)
			}
			buf, err := s.marshalShare(sc.bufs[nb][:0], pkt)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("remicss: encoding share: %w", err)
				}
				ok = false
				break
			}
			sc.bufs[nb] = buf
			nb++
			sc.ops = append(sc.ops, batchOp{link: int32(i), seq: seq, now: now, buf: buf})
			shareIdx++
		}
		if !ok {
			sc.ops = sc.ops[:opStart]
			continue
		}
		s.trace.Record(obs.EventSymbolScheduled, -1, now, seq, int64(ch.k)<<8|int64(m))
		planned++
	}

	// Phase 3: per-link fan-out, one lock acquisition per link per burst.
	// Every op present here marshaled successfully, so sizes and events are
	// recorded only for shares actually offered to a link.
	for li := range s.links {
		locked := false
		for oi := range sc.ops {
			op := &sc.ops[oi]
			if int(op.link) != li {
				continue
			}
			s.met.shareBytes.Observe(int64(len(op.buf)))
			if !locked {
				s.linkMu[li].Lock()
				locked = true
			}
			delivered := s.links[li].Send(op.buf) //lint:allow lockorder linkMu[li] exists to serialize this link's Send; transports never call back into the sender
			if delivered {
				s.met.perChan[li].sent.Inc()
				s.trace.Record(obs.EventShareSent, op.link, op.now, op.seq, int64(len(op.buf)))
			} else {
				s.met.perChan[li].dropped.Inc()
				s.trace.Record(obs.EventDatagramDropped, op.link, op.now, op.seq, int64(len(op.buf)))
			}
			s.health.ObserveSend(li, delivered)
		}
		if locked {
			s.linkMu[li].Unlock()
		}
	}
	if planned > 0 {
		s.met.symbolsSent.Add(int64(planned))
	}
	if firstErr != nil {
		return planned, firstErr
	}
	if stalled > 0 {
		return planned, ErrBackpressure
	}
	return planned, nil
}

// Seq returns the next sequence number to be assigned (FirstSeq plus the
// number of symbols sent; stalled attempts do not consume a sequence
// number). Pass it as a replacement sender's FirstSeq to continue the
// session's sequence space.
func (s *Sender) Seq() uint64 {
	return s.seq.Load()
}
