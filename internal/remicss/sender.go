package remicss

import (
	"fmt"
	"math/bits"
	"time"

	"remicss/internal/sharing"
	"remicss/internal/wire"
)

// SenderStats counts sender-side activity.
type SenderStats struct {
	// SymbolsSent counts symbols whose shares were handed to the links.
	SymbolsSent int64
	// SymbolsStalled counts symbols dropped because the chooser could not
	// find enough ready channels (sender-side backpressure).
	SymbolsStalled int64
	// SharesSent counts shares accepted by links.
	SharesSent int64
	// SharesDropped counts shares rejected by a full link queue.
	SharesDropped int64
}

// SenderConfig configures a Sender. Scheme, Chooser, and Clock are
// required.
type SenderConfig struct {
	// Scheme splits symbols into shares.
	Scheme sharing.Scheme
	// Chooser picks (k, M) per symbol.
	Chooser Chooser
	// Clock supplies send timestamps; in simulation this is the virtual
	// clock, over UDP it is wall time since an epoch shared with the
	// receiver.
	Clock func() time.Duration
}

// Sender is the sending half of the protocol. It is not safe for concurrent
// use; callers serialize Send (the simulator is single-threaded, and the
// UDP transport wraps it in its own goroutine).
type Sender struct {
	cfg   SenderConfig
	links []Link
	seq   uint64
	stats SenderStats
}

// NewSender builds a sender over the given links.
func NewSender(cfg SenderConfig, links []Link) (*Sender, error) {
	if len(links) == 0 {
		return nil, ErrNoLinks
	}
	if len(links) > 32 {
		return nil, fmt.Errorf("remicss: %d links exceeds the 32-channel mask limit", len(links))
	}
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("remicss: nil scheme")
	}
	if cfg.Chooser == nil {
		return nil, fmt.Errorf("remicss: nil chooser")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("remicss: nil clock")
	}
	return &Sender{cfg: cfg, links: links}, nil
}

// Stats returns a snapshot of the sender counters.
func (s *Sender) Stats() SenderStats { return s.stats }

// Send transmits one source symbol. It returns ErrBackpressure if no
// channel subset is currently available (the symbol is not queued anywhere;
// best-effort semantics), or a split/encoding error.
func (s *Sender) Send(payload []byte) error {
	k, mask, ok := s.cfg.Chooser.Choose(s.links)
	if !ok {
		s.stats.SymbolsStalled++
		return ErrBackpressure
	}
	m := bits.OnesCount32(mask)

	shares, err := s.cfg.Scheme.Split(payload, k, m)
	if err != nil {
		return fmt.Errorf("remicss: splitting symbol: %w", err)
	}

	seq := s.seq
	s.seq++
	now := s.cfg.Clock()

	shareIdx := 0
	for i := 0; i < len(s.links); i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		pkt := wire.SharePacket{
			Seq:     seq,
			K:       uint8(k),
			M:       uint8(m),
			Index:   uint8(shares[shareIdx].Index),
			SentAt:  int64(now),
			Payload: shares[shareIdx].Data,
		}
		buf, err := wire.Marshal(pkt)
		if err != nil {
			return fmt.Errorf("remicss: encoding share: %w", err)
		}
		if s.links[i].Send(buf) {
			s.stats.SharesSent++
		} else {
			s.stats.SharesDropped++
		}
		shareIdx++
	}
	s.stats.SymbolsSent++
	return nil
}

// Seq returns the next sequence number to be assigned (i.e. the number of
// symbols sent so far, including stalled attempts are excluded).
func (s *Sender) Seq() uint64 { return s.seq }
