package remicss

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand" //lint:allow insecure-rand health dithering places shares like the chooser; it never touches share material
	"strconv"
	"sync"
	"time"

	"remicss/internal/core"
	"remicss/internal/obs"
	"remicss/internal/schedule"
)

// HealthState is one state of the per-channel health machine.
type HealthState uint8

// The health states. Transitions: Healthy→Suspect→Down as the failure
// EWMA crosses the configured thresholds, Down→Probing when a backoff
// probe comes due, Probing→Healthy after enough consecutive successes,
// Probing→Down (with the probe interval doubled) on any failure.
const (
	// HealthHealthy: the channel carries traffic normally.
	HealthHealthy HealthState = iota
	// HealthSuspect: the failure EWMA crossed SuspectThreshold; the
	// channel still carries traffic but is one bad stretch from Down.
	HealthSuspect
	// HealthDown: the channel is excluded from the share schedule until a
	// probe comes due.
	HealthDown
	// HealthProbing: a probe is in flight — the chooser may place shares
	// on the channel, and their outcomes decide recovery or re-exclusion.
	HealthProbing
)

// String names the health state.
func (s HealthState) String() string {
	switch s {
	case HealthHealthy:
		return "healthy"
	case HealthSuspect:
		return "suspect"
	case HealthDown:
		return "down"
	case HealthProbing:
		return "probing"
	}
	return "unknown"
}

// HealthConfig tunes the channel health tracker. The zero value gets
// sensible defaults from applyDefaults; fields are exposed as session
// knobs (see SessionConfig.Health).
type HealthConfig struct {
	// Alpha is the EWMA weight given to each new failure observation, in
	// (0, 1]. Defaults to 0.2.
	Alpha float64
	// SuspectThreshold is the EWMA failure rate at which a healthy
	// channel turns suspect. Defaults to 0.3.
	SuspectThreshold float64
	// DownThreshold is the EWMA failure rate at which a channel is
	// declared down and excluded from the schedule. Defaults to 0.6.
	DownThreshold float64
	// RecoverThreshold is the EWMA failure rate below which a suspect
	// channel returns to healthy. Defaults to 0.1.
	RecoverThreshold float64
	// ProbeInterval is the initial wait before probing a down channel.
	// Defaults to 200ms.
	ProbeInterval time.Duration
	// ProbeBackoff multiplies the probe interval after each failed probe.
	// Defaults to 2.
	ProbeBackoff float64
	// MaxProbeInterval caps the backed-off probe interval. Defaults to 3s.
	MaxProbeInterval time.Duration
	// ProbeSuccesses is how many consecutive successful sends a probing
	// channel needs to be declared healthy again. Defaults to 3.
	ProbeSuccesses int
}

func (c *HealthConfig) applyDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.2
	}
	if c.SuspectThreshold == 0 {
		c.SuspectThreshold = 0.3
	}
	if c.DownThreshold == 0 {
		c.DownThreshold = 0.6
	}
	if c.RecoverThreshold == 0 {
		c.RecoverThreshold = 0.1
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 200 * time.Millisecond
	}
	if c.ProbeBackoff == 0 {
		c.ProbeBackoff = 2
	}
	if c.MaxProbeInterval == 0 {
		c.MaxProbeInterval = 3 * time.Second
	}
	if c.ProbeSuccesses == 0 {
		c.ProbeSuccesses = 3
	}
}

func (c *HealthConfig) validate() error {
	if c.Alpha <= 0 || c.Alpha > 1 || math.IsNaN(c.Alpha) {
		return fmt.Errorf("remicss: health alpha %v outside (0, 1]", c.Alpha)
	}
	if c.RecoverThreshold <= 0 || c.SuspectThreshold <= c.RecoverThreshold || c.DownThreshold <= c.SuspectThreshold || c.DownThreshold >= 1 {
		return fmt.Errorf("remicss: health thresholds must satisfy 0 < recover(%v) < suspect(%v) < down(%v) < 1",
			c.RecoverThreshold, c.SuspectThreshold, c.DownThreshold)
	}
	if c.ProbeInterval <= 0 || c.MaxProbeInterval < c.ProbeInterval {
		return fmt.Errorf("remicss: probe intervals %v..%v invalid", c.ProbeInterval, c.MaxProbeInterval)
	}
	if c.ProbeBackoff < 1 {
		return fmt.Errorf("remicss: probe backoff %v below 1", c.ProbeBackoff)
	}
	if c.ProbeSuccesses < 1 {
		return fmt.Errorf("remicss: probe successes %d below 1", c.ProbeSuccesses)
	}
	return nil
}

// channelHealth is one channel's tracker state.
type channelHealth struct {
	ewma      float64
	state     HealthState
	probeIvl  time.Duration
	nextProbe time.Duration
	probeOK   int
}

// healthChannelMetrics are the per-channel obs handles.
type healthChannelMetrics struct {
	state       *obs.Gauge
	ewmaPPM     *obs.Gauge
	transitions *obs.Counter
	probes      *obs.Counter
}

// HealthTracker maintains the per-channel failure EWMA and health state
// machine the failover chooser consults. Observations come from two
// sources: the sender reports every share send outcome (ObserveSend), and
// the chooser reports link writability each schedule decision
// (ObserveReady); feedback-derived loss rates can be folded in too
// (ObserveLoss). Safe for concurrent use.
type HealthTracker struct {
	cfg   HealthConfig
	clock func() time.Duration
	trace *obs.Trace
	reg   *obs.Registry

	mu sync.Mutex
	// chans holds per-channel EWMA/state/probe data. guarded by mu.
	chans []channelHealth

	met []healthChannelMetrics
}

// NewHealthTracker builds a tracker for n channels. clock supplies the
// probe timebase (virtual time in simulation, wall time over UDP) and is
// required. reg receives the remicss_channel_* series (nil gives the
// tracker a private registry); trace, when non-nil, receives
// channel-state-changed and channel-probe events.
func NewHealthTracker(cfg HealthConfig, n int, clock func() time.Duration, reg *obs.Registry, trace *obs.Trace) (*HealthTracker, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, ErrNoLinks
	}
	if clock == nil {
		return nil, fmt.Errorf("remicss: nil clock")
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	t := &HealthTracker{
		cfg:   cfg,
		clock: clock,
		trace: trace,
		reg:   reg,
		chans: make([]channelHealth, n),
		met:   make([]healthChannelMetrics, n),
	}
	for i := range t.met {
		label := obs.Label{Key: "channel", Value: strconv.Itoa(i)}
		t.met[i] = healthChannelMetrics{
			state:       reg.Gauge("remicss_channel_state", label),
			ewmaPPM:     reg.Gauge("remicss_channel_failure_ewma_ppm", label),
			transitions: reg.Counter("remicss_channel_transitions_total", label),
			probes:      reg.Counter("remicss_channel_probes_total", label),
		}
	}
	return t, nil
}

// Channels returns the number of channels tracked.
//
//lint:allow mutexguard chans is sized at construction and never resized; len needs no lock
func (t *HealthTracker) Channels() int { return len(t.chans) }

// State returns the current health state of one channel.
func (t *HealthTracker) State(ch int) HealthState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.chans[ch].state
}

// FailureRate returns the channel's current failure EWMA in [0, 1].
func (t *HealthTracker) FailureRate(ch int) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.chans[ch].ewma
}

// transition moves a channel to a new state, mirroring it into the
// metrics and trace.
//
//lint:allow mutexguard callers hold mu
func (t *HealthTracker) transition(ch int, to HealthState) {
	c := &t.chans[ch]
	if c.state == to {
		return
	}
	c.state = to
	t.met[ch].state.Set(int64(to))
	t.met[ch].transitions.Inc()
	t.trace.Record(obs.EventChannelStateChanged, int32(ch), t.clock(), 0, int64(to))
}

// observe folds one failure observation (fail in [0, 1]) into the EWMA
// and runs the threshold transitions.
//
//lint:allow mutexguard callers hold mu
func (t *HealthTracker) observe(ch int, fail float64) {
	c := &t.chans[ch]
	c.ewma = (1-t.cfg.Alpha)*c.ewma + t.cfg.Alpha*fail
	t.met[ch].ewmaPPM.Set(int64(c.ewma * 1e6))
	switch c.state {
	case HealthHealthy:
		if c.ewma >= t.cfg.DownThreshold {
			t.down(ch)
		} else if c.ewma >= t.cfg.SuspectThreshold {
			t.transition(ch, HealthSuspect)
		}
	case HealthSuspect:
		if c.ewma >= t.cfg.DownThreshold {
			t.down(ch)
		} else if c.ewma <= t.cfg.RecoverThreshold {
			t.transition(ch, HealthHealthy)
		}
	}
}

// down excludes a channel and schedules its first (or next) probe.
//
//lint:allow mutexguard callers hold mu
func (t *HealthTracker) down(ch int) {
	c := &t.chans[ch]
	if c.state == HealthDown {
		return
	}
	if c.state == HealthProbing {
		// Failed probe: back off exponentially, up to the cap.
		c.probeIvl = time.Duration(float64(c.probeIvl) * t.cfg.ProbeBackoff)
		if c.probeIvl > t.cfg.MaxProbeInterval {
			c.probeIvl = t.cfg.MaxProbeInterval
		}
	} else {
		c.probeIvl = t.cfg.ProbeInterval
	}
	c.nextProbe = t.clock() + c.probeIvl
	c.probeOK = 0
	t.transition(ch, HealthDown)
}

// ObserveSend reports the outcome of one share send on a channel: ok is
// whether the link accepted the datagram. Failed sends raise the failure
// EWMA; on a probing channel, outcomes drive recovery (ProbeSuccesses
// consecutive accepts) or re-exclusion with a doubled probe interval.
// Nil-safe so senders can hold an optional tracker without branching.
func (t *HealthTracker) ObserveSend(ch int, ok bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	fail := 1.0
	if ok {
		fail = 0
	}
	c := &t.chans[ch]
	if c.state == HealthProbing {
		if ok {
			c.probeOK++
			if c.probeOK >= t.cfg.ProbeSuccesses {
				c.ewma = 0
				t.met[ch].ewmaPPM.Set(0)
				t.transition(ch, HealthHealthy)
			}
			return
		}
		t.down(ch)
		return
	}
	t.observe(ch, fail)
}

// ObserveReady reports a link's writability as seen by one schedule
// decision. Unwritable observations count as failures, so a blacked-out
// channel (whose sends the chooser never attempts) still decays to Down;
// an unwritable probing channel counts as a failed probe. Nil-safe.
func (t *HealthTracker) ObserveReady(ch int, ready bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := &t.chans[ch]
	if c.state == HealthProbing {
		if !ready {
			t.down(ch)
		}
		return
	}
	if c.state == HealthDown {
		// A down channel's readiness is sampled by probes, not by every
		// schedule decision; skip so the EWMA freezes until a probe runs.
		return
	}
	fail := 1.0
	if ready {
		fail = 0
	}
	t.observe(ch, fail)
}

// ObserveLoss folds a measured per-channel loss rate (for example from a
// receiver feedback report) into the failure EWMA, letting feedback loss
// drive the health machine the same way send failures do. Nil-safe.
func (t *HealthTracker) ObserveLoss(ch int, loss float64) {
	if t == nil {
		return
	}
	if loss < 0 {
		loss = 0
	} else if loss > 1 {
		loss = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.chans[ch].state == HealthDown || t.chans[ch].state == HealthProbing {
		return
	}
	t.observe(ch, loss)
}

// Usable reports whether the chooser may place shares on the channel.
// Healthy, suspect, and probing channels are usable. A down channel
// becomes usable exactly when its backoff probe comes due: the call then
// moves it to Probing and records a channel-probe trace event, admitting
// probe traffic whose outcomes decide recovery.
func (t *HealthTracker) Usable(ch int) bool {
	if t == nil {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := &t.chans[ch]
	if c.state != HealthDown {
		return true
	}
	now := t.clock() //lint:allow lockorder clock is an injected time source; implementations are pure reads and take no locks
	if now < c.nextProbe {
		return false
	}
	c.probeOK = 0
	t.transition(ch, HealthProbing)
	t.met[ch].probes.Inc()
	t.trace.Record(obs.EventChannelProbe, int32(ch), now, 0, int64(c.probeIvl))
	return true
}

// HealthChooser is a failover-aware dynamic chooser: it dithers (k, m)
// around the (κ, μ) targets exactly like DynamicChooser, but places
// shares only on channels the health tracker deems usable, and — when the
// usable set cannot carry the full multiplicity — degrades by clamping
// the multiplicity while keeping the threshold dithered in
// {⌊κ⌋, ⌈κ⌉}. The effective threshold therefore never drops below ⌊κ⌋
// (Theorem 5's limited-schedule floor): if fewer than k usable channels
// remain, the symbol stalls rather than weakening the schedule.
//
// With Resolve, the chooser instead re-solves the Section IV-B LP over
// the surviving channel subset (Options.Limited keeps every assignment's
// threshold at or above ⌊κ⌋) whenever the usable set changes, and samples
// the re-solved schedule — the internal/schedule integration that keeps
// placement risk-optimal under failures.
//
// A HealthChooser must not be shared between senders: Choose mutates the
// rng, the pending draw, and scratch (the owning Sender serializes its
// own calls through chooserMu).
type HealthChooser struct {
	tracker   *HealthTracker
	kappa, mu float64
	rng       *rand.Rand

	// pending carries an unsatisfied (k, m) draw across stalled attempts,
	// mirroring DynamicChooser (redrawing would bias realized μ).
	pendingValid bool
	pendingK     int
	pendingM     int
	// ready and backlog are Choose scratch, reused across calls.
	ready   []int
	backlog []time.Duration

	// Re-solve mode (nil set disables): the full channel set and LP
	// objective, the sampler for the current usable subset, and the
	// subset it was solved for. cache memoizes re-solved schedules by
	// quantized survivor state, so revisiting a usable set (flapping
	// links, recovery) is a lookup instead of an LP solve.
	set           core.Set
	obj           schedule.Objective
	corr          *core.Correlation
	sampler       *schedule.Sampler
	solvedFor     uint32
	subToFull     []int
	resolveErr    error
	cache         *schedule.Cache
	resolveErrors *obs.Counter
}

// HealthOption configures a HealthChooser.
type HealthOption func(*HealthChooser)

// Resolve switches the chooser from multiplicity clamping to LP
// re-solving: whenever the usable channel set changes, the Section IV-B
// program is re-solved over the surviving subset of set (with the
// limited-schedule constraint keeping thresholds at or above ⌊κ⌋) and
// shares are placed by sampling the new optimum. set must cover the same
// channels, in the same order, as the sender's links.
func Resolve(set core.Set, obj schedule.Objective) HealthOption {
	return func(c *HealthChooser) {
		c.set = set
		c.obj = obj
	}
}

// ResolveCorrelated is Resolve under a correlated-adversary model: every
// re-solve projects the shared-risk groups onto the surviving channel
// subset and optimizes the correlated objective, so failover placement
// accounts for channels that share a conduit with the ones that just
// failed. The model must validate against set; factors are quantized by
// the chooser's schedule cache, so health-driven drift stays cache-warm.
func ResolveCorrelated(set core.Set, corr core.Correlation, obj schedule.Objective) HealthOption {
	return func(c *HealthChooser) {
		c.set = set
		c.obj = obj
		c.corr = &corr
	}
}

// NewHealthChooser builds a failover-aware chooser for targets
// 1 <= kappa <= mu over the tracker's channels. The rng must not be nil.
func NewHealthChooser(kappa, mu float64, tracker *HealthTracker, rng *rand.Rand, opts ...HealthOption) (*HealthChooser, error) {
	if math.IsNaN(kappa) || math.IsNaN(mu) || kappa < 1 || mu < kappa {
		return nil, fmt.Errorf("%w: kappa=%v, mu=%v", core.ErrInvalidParams, kappa, mu)
	}
	if tracker == nil {
		return nil, fmt.Errorf("remicss: nil health tracker")
	}
	if rng == nil {
		return nil, fmt.Errorf("remicss: nil rng")
	}
	c := &HealthChooser{kappa: kappa, mu: mu, tracker: tracker, rng: rng}
	for _, o := range opts {
		o(c)
	}
	if c.set != nil && c.set.N() != tracker.Channels() {
		return nil, fmt.Errorf("remicss: resolve set has %d channels, tracker %d", c.set.N(), tracker.Channels())
	}
	if c.corr != nil {
		if err := c.corr.Validate(c.set.N()); err != nil {
			return nil, err
		}
	}
	if c.set != nil {
		// Re-solve mode routes every solve through a schedule cache wired to
		// the tracker's registry, trace, and clock: repeat usable sets hit
		// the cache, fresh ones warm-start the retained simplex basis.
		c.cache = schedule.NewCache(schedule.CacheConfig{
			Options: schedule.Options{Limited: true},
			Metrics: tracker.reg,
			Trace:   tracker.trace,
			Now:     tracker.clock,
		})
		c.resolveErrors = tracker.reg.Counter("remicss_chooser_resolve_errors_total")
	}
	return c, nil
}

// Tracker returns the chooser's health tracker.
func (c *HealthChooser) Tracker() *HealthTracker { return c.tracker }

// SetTargets retargets the chooser's (κ, μ), for an adaptive controller
// (internal/adapt) driving failover and parameter adaptation together.
// Invalid targets are rejected. The pending draw and any re-solved
// schedule are discarded so the new targets take effect immediately.
func (c *HealthChooser) SetTargets(kappa, mu float64) error {
	if math.IsNaN(kappa) || math.IsNaN(mu) || kappa < 1 || mu < kappa {
		return fmt.Errorf("%w: kappa=%v, mu=%v", core.ErrInvalidParams, kappa, mu)
	}
	c.kappa, c.mu = kappa, mu
	c.pendingValid = false
	c.sampler = nil
	c.solvedFor = 0
	return nil
}

// ResolveErr returns the last LP re-solve error, if re-solve mode is
// active and the most recent usable-set change could not be solved (the
// chooser then falls back to multiplicity clamping).
func (c *HealthChooser) ResolveErr() error { return c.resolveErr }

// Choose implements Chooser. Each call feeds link writability into the
// health tracker, then places the next symbol on usable, writable
// channels only.
func (c *HealthChooser) Choose(links []Link) (int, uint32, bool) {
	// Observation pass: writability into the tracker, then the usable set.
	var usable uint32
	ready := c.ready[:0]
	backlog := c.backlog[:0]
	for i, l := range links {
		w := l.Writable()
		c.tracker.ObserveReady(i, w)
		if w && c.tracker.Usable(i) {
			usable |= 1 << uint(i)
			ready = append(ready, i)
			backlog = append(backlog, l.Backlog())
		}
	}
	c.ready, c.backlog = ready, backlog

	if c.set != nil {
		if k, mask, ok, handled := c.chooseResolved(usable); handled {
			return k, mask, ok
		}
		// Re-solve failed; fall through to clamping so delivery continues.
	}

	if !c.pendingValid {
		// Comonotone dither, exactly as DynamicChooser: one uniform
		// drives both roundings, so k <= m symbol by symbol and k never
		// leaves {⌊κ⌋, ⌈κ⌉}.
		u := c.rng.Float64()
		m := int(math.Floor(c.mu))
		if u < c.mu-math.Floor(c.mu) {
			m++
		}
		k := int(math.Floor(c.kappa))
		if u < c.kappa-math.Floor(c.kappa) {
			k++
		}
		c.pendingK, c.pendingM, c.pendingValid = k, m, true
	}
	k, m := c.pendingK, c.pendingM
	// Failover degradation: clamp the multiplicity to the usable set, but
	// never the threshold — below k usable channels the symbol stalls.
	if m > len(ready) {
		m = len(ready)
	}
	if m < k {
		return 0, 0, false
	}
	// Stable insertion sort by backlog (see DynamicChooser: avoids
	// sort.SliceStable's allocations on a tiny slice).
	for i := 1; i < len(ready); i++ {
		for j := i; j > 0 && backlog[j] < backlog[j-1]; j-- {
			ready[j], ready[j-1] = ready[j-1], ready[j]
			backlog[j], backlog[j-1] = backlog[j-1], backlog[j]
		}
	}
	var mask uint32
	for _, i := range ready[:m] {
		mask |= 1 << uint(i)
	}
	c.pendingValid = false
	return k, mask, true
}

// chooseResolved implements re-solve mode: solve the LP over the usable
// subset when it changes, then sample the optimum. handled is false when
// the solver failed and the caller should fall back to clamping.
func (c *HealthChooser) chooseResolved(usable uint32) (int, uint32, bool, bool) {
	n := bits.OnesCount32(usable)
	floorK := int(math.Floor(c.kappa))
	if n < floorK {
		// Too few survivors to keep the threshold floor: stall.
		return 0, 0, false, true
	}
	if usable != c.solvedFor || c.sampler == nil {
		c.resolveFor(usable)
		if c.sampler == nil {
			return 0, 0, false, false
		}
	}
	a := c.sampler.Next()
	// Remap the subset mask onto full link indices.
	var mask uint32
	sub := a.Mask
	for sub != 0 {
		i := bits.TrailingZeros32(sub)
		sub &^= 1 << uint(i)
		mask |= 1 << uint(c.subToFull[i])
	}
	return a.K, mask, true, true
}

// resolveFor re-solves the schedule for one usable subset and rebuilds
// the sampler; on failure the sampler is left nil and the error kept.
func (c *HealthChooser) resolveFor(usable uint32) {
	c.sampler = nil
	c.solvedFor = usable
	c.subToFull = c.subToFull[:0]
	sub := make(core.Set, 0, bits.OnesCount32(usable))
	for i := 0; i < c.set.N(); i++ {
		if usable&(1<<uint(i)) != 0 {
			sub = append(sub, c.set[i])
			c.subToFull = append(c.subToFull, i)
		}
	}
	s := float64(len(sub))
	kappaEff := math.Min(c.kappa, s)
	muEff := math.Max(kappaEff, math.Min(c.mu, s))
	var (
		sched core.Schedule
		err   error
	)
	if c.corr != nil {
		sched, _, err = c.cache.OptimizeCorrelated(sub, c.corr.Project(c.subToFull), kappaEff, muEff, c.obj)
	} else {
		sched, _, err = c.cache.Optimize(sub, kappaEff, muEff, c.obj)
	}
	if err != nil {
		c.resolveErr = fmt.Errorf("remicss: re-solving schedule for %d survivors: %w", len(sub), err)
		c.noteResolveError(len(sub))
		return
	}
	sampler, err := schedule.NewSampler(sched, len(sub), c.rng)
	if err != nil {
		c.resolveErr = fmt.Errorf("remicss: sampling re-solved schedule: %w", err)
		c.noteResolveError(len(sub))
		return
	}
	c.resolveErr = nil
	c.sampler = sampler
}

// noteResolveError surfaces a re-solve failure on the observability plane:
// the remicss_chooser_resolve_errors_total counter and a resolve-error
// trace event carrying the survivor count that could not be solved.
func (c *HealthChooser) noteResolveError(survivors int) {
	if c.resolveErrors != nil {
		c.resolveErrors.Inc()
	}
	c.tracker.trace.Record(obs.EventResolveError, -1, c.tracker.clock(), 0, int64(survivors))
}
