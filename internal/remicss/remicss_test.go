package remicss

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"remicss/internal/core"
	"remicss/internal/netem"
	"remicss/internal/schedule"
	"remicss/internal/sharing"
	"remicss/internal/wire"
)

// testBed wires a sender and receiver across emulated links.
type testBed struct {
	eng      *netem.Engine
	links    []*netem.Link
	sender   *Sender
	receiver *Receiver

	delivered map[uint64][]byte
	delays    []time.Duration
}

func newTestBed(t *testing.T, cfgs []netem.LinkConfig, chooser Chooser, seed int64) *testBed {
	t.Helper()
	tb := &testBed{
		eng:       netem.NewEngine(),
		delivered: make(map[uint64][]byte),
	}
	scheme := sharing.NewAuto(rand.New(rand.NewSource(seed)))
	recv, err := NewReceiver(ReceiverConfig{
		Scheme: scheme,
		Clock:  tb.eng.Now,
		OnSymbol: func(seq uint64, payload []byte, delay time.Duration) {
			tb.delivered[seq] = payload
			tb.delays = append(tb.delays, delay)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.receiver = recv

	rlinks := make([]Link, len(cfgs))
	for i, cfg := range cfgs {
		link, err := netem.NewLink(tb.eng, cfg, rand.New(rand.NewSource(seed+int64(i)+1)),
			func(payload []byte, _ time.Duration) { recv.HandleDatagram(payload) })
		if err != nil {
			t.Fatal(err)
		}
		tb.links = append(tb.links, link)
		rlinks[i] = link
	}
	snd, err := NewSender(SenderConfig{
		Scheme:  scheme,
		Chooser: chooser,
		Clock:   tb.eng.Now,
	}, rlinks)
	if err != nil {
		t.Fatal(err)
	}
	tb.sender = snd
	return tb
}

func fiveIdentical(rate float64) []netem.LinkConfig {
	cfgs := make([]netem.LinkConfig, 5)
	for i := range cfgs {
		cfgs[i] = netem.LinkConfig{Rate: rate}
	}
	return cfgs
}

func TestEndToEndSingleSymbol(t *testing.T) {
	chooser := FixedChooser{K: 3, Mask: 0b11111}
	tb := newTestBed(t, fiveIdentical(100), chooser, 1)
	payload := []byte("perfectly secure message transmission")
	if err := tb.sender.Send(payload); err != nil {
		t.Fatal(err)
	}
	tb.eng.RunUntilIdle()
	got, ok := tb.delivered[0]
	if !ok {
		t.Fatal("symbol not delivered")
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("delivered %q, want %q", got, payload)
	}
	if tb.receiver.Stats().SymbolsDelivered != 1 {
		t.Errorf("delivered count = %d", tb.receiver.Stats().SymbolsDelivered)
	}
}

func TestEndToEndManySymbolsAllParams(t *testing.T) {
	for k := 1; k <= 5; k++ {
		for m := k; m <= 5; m++ {
			chooser := FixedChooser{K: k, Mask: uint32(1<<m) - 1}
			tb := newTestBed(t, fiveIdentical(1000), chooser, int64(k*10+m))
			const symbols = 50
			var offer func()
			sent := 0
			offer = func() {
				payload := []byte{byte(sent), byte(k), byte(m), 0xAA}
				if err := tb.sender.Send(payload); err == nil {
					sent++
				}
				if sent < symbols {
					tb.eng.Schedule(10*time.Millisecond, offer)
				}
			}
			tb.eng.Schedule(0, offer)
			tb.eng.RunUntilIdle()
			if len(tb.delivered) != symbols {
				t.Errorf("k=%d m=%d: delivered %d of %d", k, m, len(tb.delivered), symbols)
			}
			for seq, payload := range tb.delivered {
				if payload[0] != byte(seq) {
					t.Errorf("k=%d m=%d: symbol %d corrupted", k, m, seq)
				}
			}
		}
	}
}

func TestLossToleratedUpToThreshold(t *testing.T) {
	// k=2, m=5 with one very lossy channel: nearly everything should still
	// arrive.
	cfgs := fiveIdentical(1000)
	cfgs[0].Loss = 0.9
	chooser := FixedChooser{K: 2, Mask: 0b11111}
	tb := newTestBed(t, cfgs, chooser, 3)
	const symbols = 200
	sent := 0
	var offer func()
	offer = func() {
		if err := tb.sender.Send([]byte{byte(sent), 1, 2, 3}); err == nil {
			sent++
		}
		if sent < symbols {
			tb.eng.Schedule(5*time.Millisecond, offer)
		}
	}
	tb.eng.Schedule(0, offer)
	tb.eng.RunUntilIdle()
	if len(tb.delivered) != symbols {
		t.Errorf("delivered %d of %d despite m-k = 3 redundancy", len(tb.delivered), symbols)
	}
}

func TestDelayIsKthSmallest(t *testing.T) {
	// Channels with staggered delays; k=3 of 5 means delivery at the 3rd
	// smallest delay (plus serialization).
	cfgs := fiveIdentical(1e6)
	delays := []time.Duration{50, 10, 90, 30, 70}
	for i := range cfgs {
		cfgs[i].Delay = delays[i] * time.Millisecond
	}
	chooser := FixedChooser{K: 3, Mask: 0b11111}
	tb := newTestBed(t, cfgs, chooser, 4)
	if err := tb.sender.Send([]byte("delayed")); err != nil {
		t.Fatal(err)
	}
	tb.eng.RunUntilIdle()
	if len(tb.delays) != 1 {
		t.Fatalf("got %d deliveries", len(tb.delays))
	}
	// 3rd smallest of {50,10,90,30,70} = 50ms, plus 1us serialization.
	got := tb.delays[0]
	want := 50*time.Millisecond + time.Microsecond
	if got != want {
		t.Errorf("delay = %v, want %v", got, want)
	}
}

func TestDynamicChooserAverages(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, err := NewDynamicChooser(2.3, 3.7, rng)
	if err != nil {
		t.Fatal(err)
	}
	links := make([]Link, 5)
	eng := netem.NewEngine()
	for i := range links {
		l, err := netem.NewLink(eng, netem.LinkConfig{Rate: 1e6}, rand.New(rand.NewSource(int64(i))), nil)
		if err != nil {
			t.Fatal(err)
		}
		links[i] = l
	}
	const draws = 100000
	var kSum, mSum float64
	for i := 0; i < draws; i++ {
		k, mask, ok := c.Choose(links)
		if !ok {
			t.Fatal("choose failed with all channels writable")
		}
		m := 0
		for b := mask; b != 0; b &= b - 1 {
			m++
		}
		if k > m {
			t.Fatalf("k=%d > m=%d", k, m)
		}
		kSum += float64(k)
		mSum += float64(m)
	}
	if got := kSum / draws; math.Abs(got-2.3) > 0.02 {
		t.Errorf("average k = %v, want 2.3", got)
	}
	if got := mSum / draws; math.Abs(got-3.7) > 0.02 {
		t.Errorf("average m = %v, want 3.7", got)
	}
}

func TestDynamicChooserSkipsUnwritable(t *testing.T) {
	eng := netem.NewEngine()
	links := make([]Link, 3)
	for i := range links {
		l, err := netem.NewLink(eng, netem.LinkConfig{Rate: 1, QueueLimit: 1},
			rand.New(rand.NewSource(int64(i))), nil)
		if err != nil {
			t.Fatal(err)
		}
		links[i] = l
	}
	// Fill channel 0's queue.
	links[0].Send([]byte{0})
	c, err := NewDynamicChooser(1, 2, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		_, mask, ok := c.Choose(links)
		if !ok {
			t.Fatal("choose failed with 2 writable channels")
		}
		if mask&1 != 0 {
			t.Fatal("chooser picked the unwritable channel")
		}
	}
	// Fill all queues: chooser must report backpressure.
	links[1].Send([]byte{0})
	links[2].Send([]byte{0})
	if _, _, ok := c.Choose(links); ok {
		t.Error("choose succeeded with no writable channels")
	}
}

func TestDynamicChooserValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewDynamicChooser(0.5, 2, rng); !errors.Is(err, core.ErrInvalidParams) {
		t.Error("kappa < 1 accepted")
	}
	if _, err := NewDynamicChooser(3, 2, rng); !errors.Is(err, core.ErrInvalidParams) {
		t.Error("mu < kappa accepted")
	}
	if _, err := NewDynamicChooser(1, 2, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestStaticChooserFollowsSchedule(t *testing.T) {
	s := core.Set{
		{Risk: 0.2, Rate: 100},
		{Risk: 0.2, Rate: 100},
		{Risk: 0.2, Rate: 100},
	}
	sched, err := schedule.Optimize(s, 1.5, 2.5, schedule.ObjectiveRisk, schedule.Options{})
	if err != nil {
		t.Fatal(err)
	}
	chooser, err := NewStaticChooser(sched, 3, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	links := make([]Link, 3)
	eng := netem.NewEngine()
	for i := range links {
		l, err := netem.NewLink(eng, netem.LinkConfig{Rate: 1e6}, rand.New(rand.NewSource(int64(i))), nil)
		if err != nil {
			t.Fatal(err)
		}
		links[i] = l
	}
	const draws = 50000
	var kSum, mSum float64
	for i := 0; i < draws; i++ {
		k, mask, ok := chooser.Choose(links)
		if !ok {
			t.Fatal("static choose failed")
		}
		m := 0
		for b := mask; b != 0; b &= b - 1 {
			m++
		}
		kSum += float64(k)
		mSum += float64(m)
	}
	if got := kSum / draws; math.Abs(got-1.5) > 0.02 {
		t.Errorf("average k = %v, want 1.5", got)
	}
	if got := mSum / draws; math.Abs(got-2.5) > 0.02 {
		t.Errorf("average m = %v, want 2.5", got)
	}
}

func TestReceiverDuplicateAndLateShares(t *testing.T) {
	scheme := sharing.NewAuto(rand.New(rand.NewSource(9)))
	clock := time.Duration(0)
	var delivered int
	recv, err := NewReceiver(ReceiverConfig{
		Scheme:   scheme,
		Clock:    func() time.Duration { return clock },
		OnSymbol: func(uint64, []byte, time.Duration) { delivered++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	shares, err := scheme.Split([]byte("dup test"), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(i int) []byte {
		buf, err := wire.Marshal(wire.SharePacket{
			Seq: 7, K: 2, M: 3, Index: uint8(shares[i].Index), Payload: shares[i].Data,
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	recv.HandleDatagram(mk(0))
	recv.HandleDatagram(mk(0)) // duplicate
	if got := recv.Stats().SharesDuplicate; got != 1 {
		t.Errorf("duplicates = %d, want 1", got)
	}
	recv.HandleDatagram(mk(1)) // completes
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	recv.HandleDatagram(mk(2)) // late
	if got := recv.Stats().SharesLate; got != 1 {
		t.Errorf("late = %d, want 1", got)
	}
	if delivered != 1 {
		t.Errorf("delivered twice")
	}
}

func TestReceiverRejectsCorruptAndInconsistent(t *testing.T) {
	scheme := sharing.NewAuto(rand.New(rand.NewSource(10)))
	recv, err := NewReceiver(ReceiverConfig{
		Scheme:   scheme,
		Clock:    func() time.Duration { return 0 },
		OnSymbol: func(uint64, []byte, time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Garbage datagram.
	recv.HandleDatagram([]byte("not a share"))
	if got := recv.Stats().SharesInvalid; got != 1 {
		t.Errorf("invalid = %d, want 1", got)
	}
	// Two shares of the same seq disagreeing on (k, m).
	b1, err := wire.Marshal(wire.SharePacket{Seq: 1, K: 2, M: 3, Index: 0, Payload: []byte{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := wire.Marshal(wire.SharePacket{Seq: 1, K: 3, M: 4, Index: 1, Payload: []byte{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	recv.HandleDatagram(b1)
	recv.HandleDatagram(b2)
	if got := recv.Stats().SharesInvalid; got != 2 {
		t.Errorf("invalid = %d, want 2", got)
	}
}

func TestReceiverTimeoutEviction(t *testing.T) {
	scheme := sharing.NewAuto(rand.New(rand.NewSource(11)))
	clock := time.Duration(0)
	recv, err := NewReceiver(ReceiverConfig{
		Scheme:   scheme,
		Clock:    func() time.Duration { return clock },
		OnSymbol: func(uint64, []byte, time.Duration) {},
		Timeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	shares, err := scheme.Split([]byte("evict me"), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := wire.Marshal(wire.SharePacket{
		Seq: 1, K: 2, M: 3, Index: uint8(shares[0].Index), Payload: shares[0].Data,
	})
	if err != nil {
		t.Fatal(err)
	}
	recv.HandleDatagram(buf)
	if recv.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", recv.Pending())
	}
	clock = 2 * time.Second
	recv.Tick()
	if recv.Pending() != 0 {
		t.Errorf("pending = %d after timeout, want 0", recv.Pending())
	}
	if got := recv.Stats().SymbolsEvicted; got != 1 {
		t.Errorf("evicted = %d, want 1", got)
	}
}

func TestReceiverMemoryPressureEviction(t *testing.T) {
	scheme := sharing.NewAuto(rand.New(rand.NewSource(12)))
	recv, err := NewReceiver(ReceiverConfig{
		Scheme:     scheme,
		Clock:      func() time.Duration { return 0 },
		OnSymbol:   func(uint64, []byte, time.Duration) {},
		MaxPending: 10,
		Shards:     1, // the exact oldest-first eviction count below needs one global LRU
	})
	if err != nil {
		t.Fatal(err)
	}
	// 20 partial symbols: only the newest 10 survive.
	for seq := uint64(0); seq < 20; seq++ {
		buf, err := wire.Marshal(wire.SharePacket{Seq: seq, K: 2, M: 2, Index: 0, Payload: []byte{1}})
		if err != nil {
			t.Fatal(err)
		}
		recv.HandleDatagram(buf)
	}
	if recv.Pending() != 10 {
		t.Errorf("pending = %d, want 10", recv.Pending())
	}
	if got := recv.Stats().SymbolsEvicted; got != 10 {
		t.Errorf("evicted = %d, want 10", got)
	}
}

func TestSenderBackpressure(t *testing.T) {
	// One link, queue limit 1, slow rate: second immediate send stalls.
	eng := netem.NewEngine()
	link, err := netem.NewLink(eng, netem.LinkConfig{Rate: 1, QueueLimit: 1},
		rand.New(rand.NewSource(13)), nil)
	if err != nil {
		t.Fatal(err)
	}
	chooser, err := NewDynamicChooser(1, 1, rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	snd, err := NewSender(SenderConfig{
		Scheme:  sharing.NewAuto(rand.New(rand.NewSource(15))),
		Chooser: chooser,
		Clock:   eng.Now,
	}, []Link{link})
	if err != nil {
		t.Fatal(err)
	}
	if err := snd.Send([]byte{1}); err != nil {
		t.Fatalf("first send: %v", err)
	}
	if err := snd.Send([]byte{2}); !errors.Is(err, ErrBackpressure) {
		t.Errorf("second send = %v, want ErrBackpressure", err)
	}
	st := snd.Stats()
	if st.SymbolsSent != 1 || st.SymbolsStalled != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSenderConfigValidation(t *testing.T) {
	eng := netem.NewEngine()
	link, err := netem.NewLink(eng, netem.LinkConfig{Rate: 1}, rand.New(rand.NewSource(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	scheme := sharing.NewAuto(nil)
	chooser := FixedChooser{K: 1, Mask: 1}
	clock := eng.Now
	if _, err := NewSender(SenderConfig{Scheme: scheme, Chooser: chooser, Clock: clock}, nil); !errors.Is(err, ErrNoLinks) {
		t.Error("no links accepted")
	}
	if _, err := NewSender(SenderConfig{Chooser: chooser, Clock: clock}, []Link{link}); err == nil {
		t.Error("nil scheme accepted")
	}
	if _, err := NewSender(SenderConfig{Scheme: scheme, Clock: clock}, []Link{link}); err == nil {
		t.Error("nil chooser accepted")
	}
	if _, err := NewSender(SenderConfig{Scheme: scheme, Chooser: chooser}, []Link{link}); err == nil {
		t.Error("nil clock accepted")
	}
}

func TestReceiverConfigValidation(t *testing.T) {
	scheme := sharing.NewAuto(nil)
	clock := func() time.Duration { return 0 }
	cb := func(uint64, []byte, time.Duration) {}
	if _, err := NewReceiver(ReceiverConfig{Clock: clock, OnSymbol: cb}); err == nil {
		t.Error("nil scheme accepted")
	}
	if _, err := NewReceiver(ReceiverConfig{Scheme: scheme, OnSymbol: cb}); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := NewReceiver(ReceiverConfig{Scheme: scheme, Clock: clock}); err == nil {
		t.Error("nil callback accepted")
	}
}

func TestFixedChooserValidation(t *testing.T) {
	links := make([]Link, 2)
	eng := netem.NewEngine()
	for i := range links {
		l, err := netem.NewLink(eng, netem.LinkConfig{Rate: 1}, rand.New(rand.NewSource(int64(i))), nil)
		if err != nil {
			t.Fatal(err)
		}
		links[i] = l
	}
	if _, _, ok := (FixedChooser{K: 1, Mask: 0b100}).Choose(links); ok {
		t.Error("mask beyond links accepted")
	}
	if _, _, ok := (FixedChooser{K: 0, Mask: 0b11}).Choose(links); ok {
		t.Error("k=0 accepted")
	}
	if _, _, ok := (FixedChooser{K: 1, Mask: 0}).Choose(links); ok {
		t.Error("empty mask accepted")
	}
}

func BenchmarkEndToEnd3of5(b *testing.B) {
	eng := netem.NewEngine()
	scheme := sharing.NewAuto(rand.New(rand.NewSource(1)))
	recv, err := NewReceiver(ReceiverConfig{
		Scheme:   scheme,
		Clock:    eng.Now,
		OnSymbol: func(uint64, []byte, time.Duration) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	links := make([]Link, 5)
	for i := range links {
		l, err := netem.NewLink(eng, netem.LinkConfig{Rate: 1e9, QueueLimit: 1 << 20},
			rand.New(rand.NewSource(int64(i))),
			func(p []byte, _ time.Duration) { recv.HandleDatagram(p) })
		if err != nil {
			b.Fatal(err)
		}
		links[i] = l
	}
	snd, err := NewSender(SenderConfig{
		Scheme:  scheme,
		Chooser: FixedChooser{K: 3, Mask: 0b11111},
		Clock:   eng.Now,
	}, links)
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x77}, 1400)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := snd.Send(payload); err != nil {
			b.Fatal(err)
		}
		if i%256 == 0 {
			eng.RunUntilIdle()
		}
	}
	eng.RunUntilIdle()
}
