package remicss

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"remicss/internal/obs"
	"remicss/internal/sharing"
	"remicss/internal/wire"
)

// stallingChooser stalls every payload whose ordinal is in stallSet and
// otherwise delegates to a fixed assignment. Call counting makes batch
// stall positions deterministic.
type stallingChooser struct {
	fixed FixedChooser
	stall map[int]bool
	calls int
}

func (c *stallingChooser) Choose(links []Link) (int, uint32, bool) {
	i := c.calls
	c.calls++
	if c.stall[i] {
		return 0, 0, false
	}
	return c.fixed.Choose(links)
}

// batchHarness is a sender over capture links feeding a single-goroutine
// receiver, for SendBatch semantics tests.
type batchHarness struct {
	t         *testing.T
	links     []*captureLink
	snd       *Sender
	recv      *Receiver
	delivered map[uint64][]byte
}

func newBatchHarness(t *testing.T, chooser Chooser, m int) *batchHarness {
	t.Helper()
	h := &batchHarness{t: t, delivered: make(map[uint64][]byte)}
	links := make([]Link, m)
	h.links = make([]*captureLink, m)
	for i := range links {
		h.links[i] = &captureLink{}
		links[i] = h.links[i]
	}
	snd, err := NewSender(SenderConfig{
		Scheme:  sharing.NewAuto(nil),
		Chooser: chooser,
		Clock:   func() time.Duration { return 0 },
		Metrics: obs.NewRegistry(),
		Trace:   obs.NewTrace(1 << 12),
	}, links)
	if err != nil {
		t.Fatal(err)
	}
	h.snd = snd
	recv, err := NewReceiver(ReceiverConfig{
		Scheme: sharing.NewAuto(nil),
		Clock:  func() time.Duration { return 0 },
		OnSymbol: func(seq uint64, payload []byte, _ time.Duration) {
			h.delivered[seq] = append([]byte(nil), payload...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.recv = recv
	return h
}

// drain replays every captured datagram into the receiver.
func (h *batchHarness) drain() {
	for _, l := range h.links {
		for _, d := range l.sent {
			h.recv.HandleDatagram(d)
		}
		l.sent = nil
	}
}

// TestSendBatchDeliversLikeSend checks the amortized path end to end: a
// burst through SendBatch reconstructs to the same payloads, consumes a
// contiguous sequence range, and leaves the same counters as the
// equivalent sequence of Send calls would.
func TestSendBatchDeliversLikeSend(t *testing.T) {
	const n = 17
	for _, tc := range []struct {
		name string
		k, m int
	}{
		{"replication-1of3", 1, 3},
		{"xor-3of3", 3, 3},
		{"shamir-3of5", 3, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := newBatchHarness(t, FixedChooser{K: tc.k, Mask: 1<<uint(tc.m) - 1}, tc.m)
			payloads := make([][]byte, n)
			for i := range payloads {
				payloads[i] = bytes.Repeat([]byte{byte(i + 1)}, 100+i)
			}
			planned, err := h.snd.SendBatch(payloads)
			if err != nil {
				t.Fatal(err)
			}
			if planned != n {
				t.Fatalf("planned %d symbols, want %d", planned, n)
			}
			if got := h.snd.Seq(); got != n {
				t.Fatalf("Seq() = %d after batch, want %d", got, n)
			}
			h.drain()
			if len(h.delivered) != n {
				t.Fatalf("delivered %d symbols, want %d", len(h.delivered), n)
			}
			for seq, want := range payloads {
				if got := h.delivered[uint64(seq)]; !bytes.Equal(got, want) {
					t.Errorf("seq %d: payload mismatch (got %d bytes, want %d)", seq, len(got), len(want))
				}
			}
			st := h.snd.Stats()
			if st.SymbolsSent != n || st.SharesSent != int64(n*tc.m) || st.SymbolsStalled != 0 {
				t.Errorf("stats %+v, want %d symbols and %d shares", st, n, n*tc.m)
			}
			// A follow-up Send must continue the same sequence space.
			if err := h.snd.Send(payloads[0]); err != nil {
				t.Fatal(err)
			}
			h.drain()
			if _, ok := h.delivered[uint64(n)]; !ok {
				t.Errorf("Send after SendBatch did not use seq %d", n)
			}
		})
	}
}

// TestSendBatchStalledPayloads pins the backpressure semantics: stalled
// payloads are counted and skipped without consuming sequence numbers, the
// rest of the burst still goes out, and the batch reports ErrBackpressure
// when nothing harder went wrong.
func TestSendBatchStalledPayloads(t *testing.T) {
	chooser := &stallingChooser{
		fixed: FixedChooser{K: 1, Mask: 0b111},
		stall: map[int]bool{1: true, 3: true},
	}
	h := newBatchHarness(t, chooser, 3)
	payloads := [][]byte{
		[]byte("symbol-0"), []byte("stalled-1"), []byte("symbol-2"),
		[]byte("stalled-3"), []byte("symbol-4"),
	}
	planned, err := h.snd.SendBatch(payloads)
	if err != ErrBackpressure {
		t.Fatalf("err = %v, want ErrBackpressure", err)
	}
	if planned != 3 {
		t.Fatalf("planned %d, want 3", planned)
	}
	if got := h.snd.Seq(); got != 3 {
		t.Fatalf("Seq() = %d, want 3 (stalls must not consume sequence numbers)", got)
	}
	st := h.snd.Stats()
	if st.SymbolsSent != 3 || st.SymbolsStalled != 2 {
		t.Fatalf("stats %+v, want 3 sent and 2 stalled", st)
	}
	h.drain()
	want := map[uint64]string{0: "symbol-0", 1: "symbol-2", 2: "symbol-4"}
	for seq, payload := range want {
		if got := string(h.delivered[seq]); got != payload {
			t.Errorf("seq %d delivered %q, want %q", seq, got, payload)
		}
	}
}

// TestSendBatchEncodingErrorDropsSymbol feeds one oversized payload into
// the middle of a burst: that symbol fails, the rest are delivered, and —
// per the observe-after-marshal rule — no share event or size observation
// leaks for the failed symbol.
func TestSendBatchEncodingErrorDropsSymbol(t *testing.T) {
	h := newBatchHarness(t, FixedChooser{K: 1, Mask: 0b111}, 3)
	payloads := [][]byte{
		[]byte("good-0"),
		bytes.Repeat([]byte{0xee}, wire.MaxPayload+1),
		[]byte("good-2"),
	}
	planned, err := h.snd.SendBatch(payloads)
	if err == nil {
		t.Fatal("oversized payload did not surface an error")
	}
	if planned != 2 {
		t.Fatalf("planned %d, want 2", planned)
	}
	st := h.snd.Stats()
	if st.SymbolsSent != 2 || st.SharesSent != 6 {
		t.Fatalf("stats %+v, want 2 symbols / 6 shares", st)
	}
	// Exactly the 6 surviving shares were traced: nothing was recorded for
	// the symbol that failed to encode.
	if got := h.snd.trace.CountKind(obs.EventShareSent); got != 6 {
		t.Errorf("traced %d share-sent events, want 6", got)
	}
	h.drain()
	if len(h.delivered) != 2 {
		t.Fatalf("delivered %d symbols, want 2", len(h.delivered))
	}
}

// TestSendBatchConcurrentStress drives SendBatch from 8 goroutines into a
// sharded receiver sharing one registry and trace, under -race the
// concurrency proof for the batch path: every symbol of every burst must
// come out exactly once and the shared counters must reconcile exactly.
func TestSendBatchConcurrentStress(t *testing.T) {
	const (
		channels  = 3
		callers   = 8
		bursts    = 20
		perBurst  = 10
		perCaller = bursts * perBurst
	)
	total := callers * perCaller

	reg := obs.NewRegistry()
	trace := obs.NewTrace(4 * channels * total)
	var mu sync.Mutex
	seen := make(map[uint64]bool)
	recv, err := NewReceiver(ReceiverConfig{
		Scheme:  sharing.NewAuto(nil),
		Clock:   func() time.Duration { return 0 },
		Metrics: reg,
		Trace:   trace,
		Shards:  8, // exercise sharded ingest regardless of host GOMAXPROCS
		OnSymbol: func(seq uint64, payload []byte, _ time.Duration) {
			id := binary.BigEndian.Uint64(payload)
			mu.Lock()
			if seen[id] {
				t.Errorf("id %d delivered twice", id)
			}
			seen[id] = true
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	links := make([]Link, channels)
	chans := make([]*chanLink, channels)
	for i := range links {
		chans[i] = &chanLink{ch: make(chan []byte, 64)}
		links[i] = chans[i]
	}
	snd, err := NewSender(SenderConfig{
		Scheme:  sharing.NewAuto(nil), // DRBG pool: concurrency-safe outside the lock
		Chooser: FixedChooser{K: 2, Mask: 1<<channels - 1},
		Clock:   func() time.Duration { return 0 },
		Metrics: reg,
		Trace:   trace,
	}, links)
	if err != nil {
		t.Fatal(err)
	}

	var ingest sync.WaitGroup
	for _, cl := range chans {
		cl := cl
		ingest.Add(1)
		go func() {
			defer ingest.Done()
			for d := range cl.ch {
				recv.HandleDatagram(d)
			}
		}()
	}
	var send sync.WaitGroup
	for c := 0; c < callers; c++ {
		c := c
		send.Add(1)
		go func() {
			defer send.Done()
			payloads := make([][]byte, perBurst)
			for i := range payloads {
				payloads[i] = make([]byte, 64)
			}
			for b := 0; b < bursts; b++ {
				for i := range payloads {
					binary.BigEndian.PutUint64(payloads[i], uint64(c)<<32|uint64(b*perBurst+i))
				}
				planned, err := snd.SendBatch(payloads)
				if err != nil || planned != perBurst {
					t.Errorf("SendBatch: planned %d err %v, want %d and nil", planned, err, perBurst)
					return
				}
			}
		}()
	}
	send.Wait()
	for _, cl := range chans {
		close(cl.ch)
	}
	ingest.Wait()

	mu.Lock()
	n := len(seen)
	mu.Unlock()
	if n != total {
		t.Errorf("delivered %d unique symbols, want %d", n, total)
	}
	if got := snd.Seq(); got != uint64(total) {
		t.Errorf("sender assigned %d sequence numbers, want %d", got, total)
	}
	st := snd.Stats()
	if st.SymbolsSent != int64(total) || st.SharesSent != int64(channels*total) {
		t.Errorf("sender stats %+v, want %d symbols / %d shares", st, total, channels*total)
	}
	rst := recv.Stats()
	if rst.SymbolsDelivered != int64(total) || rst.SharesInvalid != 0 || rst.CombineFailures != 0 {
		t.Errorf("receiver stats %+v, want %d delivered and no failures", rst, total)
	}
	if got := trace.CountKind(obs.EventShareSent); got != channels*total {
		t.Errorf("traced %d share-sent events, want %d", got, channels*total)
	}
}

// parallelBenchSender builds the benchmark sender: m null links, fixed
// (k, mask), constant clock, instrumentation on — the same shape as the
// hot-path pins, so throughput numbers include the metrics cost.
func parallelBenchSender(b *testing.B, k, m int) *Sender {
	b.Helper()
	links := make([]Link, m)
	for i := range links {
		links[i] = nullLink{}
	}
	s, err := NewSender(SenderConfig{
		Scheme:  sharing.NewAuto(nil), // DRBG pool: safe for concurrent Send
		Chooser: FixedChooser{K: k, Mask: 1<<uint(m) - 1},
		Clock:   func() time.Duration { return 0 },
		Metrics: obs.NewRegistry(),
		Trace:   obs.NewTrace(1 << 12),
	}, links)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkSendParallel measures aggregate Send throughput with all
// procs hammering one sender — the workload the lock-split data path is
// for. Compare against BenchmarkSendSerialized at the same GOMAXPROCS:
// the ratio is the parallel speedup of the fan-out redesign
// (cmd/remicss-bench -bench-json records both).
func BenchmarkSendParallel(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5a}, 1400)
	for _, tc := range []struct {
		name string
		k, m int
	}{
		{"replication-1of3", 1, 3},
		{"xor-3of3", 3, 3},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s := parallelBenchSender(b, tc.k, tc.m)
			if err := s.Send(payload); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := s.Send(payload); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkSendSerialized is the baseline for BenchmarkSendParallel: the
// identical parallel workload forced through one global mutex, emulating
// the pre-refactor sender whose entire Send body ran under a single lock.
func BenchmarkSendSerialized(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5a}, 1400)
	for _, tc := range []struct {
		name string
		k, m int
	}{
		{"replication-1of3", 1, 3},
		{"xor-3of3", 3, 3},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s := parallelBenchSender(b, tc.k, tc.m)
			if err := s.Send(payload); err != nil {
				b.Fatal(err)
			}
			var mu sync.Mutex
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					mu.Lock()
					err := s.Send(payload)
					mu.Unlock()
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkSendBatch measures the amortized burst path (one chooser lock
// and one link lock acquisition per burst) against per-call Send.
func BenchmarkSendBatch(b *testing.B) {
	const burst = 16
	payloads := make([][]byte, burst)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{0x5a}, 1400)
	}
	s := parallelBenchSender(b, 1, 3)
	if _, err := s.SendBatch(payloads); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(burst * 1400))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SendBatch(payloads); err != nil {
			b.Fatal(err)
		}
	}
}
