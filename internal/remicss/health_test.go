package remicss

import (
	"math/bits"
	"math/rand"
	"testing"
	"time"

	"remicss/internal/core"
	"remicss/internal/netem"
	"remicss/internal/obs"
	"remicss/internal/schedule"
	"remicss/internal/sharing"
)

// fakeClock is a settable test timebase.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration { return c.now }

// healthLink is a scriptable in-memory link for chooser tests.
type healthLink struct {
	writable bool
	accept   bool
	backlog  time.Duration
	sends    int
}

func (l *healthLink) Send([]byte) bool {
	l.sends++
	return l.accept
}
func (l *healthLink) Writable() bool         { return l.writable }
func (l *healthLink) Backlog() time.Duration { return l.backlog }

func newTracker(t *testing.T, cfg HealthConfig, n int, clock *fakeClock) *HealthTracker {
	t.Helper()
	tr, err := NewHealthTracker(cfg, n, clock.Now, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestHealthConfigValidation(t *testing.T) {
	clock := &fakeClock{}
	for name, cfg := range map[string]HealthConfig{
		"alpha>1":          {Alpha: 1.5},
		"recover>=suspect": {RecoverThreshold: 0.4, SuspectThreshold: 0.3},
		"suspect>=down":    {SuspectThreshold: 0.7, DownThreshold: 0.6},
		"down>=1":          {DownThreshold: 1.0},
		"backoff<1":        {ProbeBackoff: 0.5},
		"max<initial":      {ProbeInterval: time.Second, MaxProbeInterval: time.Millisecond},
	} {
		if _, err := NewHealthTracker(cfg, 3, clock.Now, nil, nil); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
	if _, err := NewHealthTracker(HealthConfig{}, 0, clock.Now, nil, nil); err == nil {
		t.Error("zero channels accepted")
	}
	if _, err := NewHealthTracker(HealthConfig{}, 3, nil, nil, nil); err == nil {
		t.Error("nil clock accepted")
	}
	tr := newTracker(t, HealthConfig{}, 4, clock)
	if tr.Channels() != 4 {
		t.Errorf("Channels() = %d, want 4", tr.Channels())
	}
}

func TestHealthStateMachineTransitions(t *testing.T) {
	clock := &fakeClock{}
	tr := newTracker(t, HealthConfig{}, 2, clock)
	if got := tr.State(0); got != HealthHealthy {
		t.Fatalf("initial state %v", got)
	}
	// Repeated failures: healthy → suspect → down.
	sawSuspect := false
	for i := 0; i < 20 && tr.State(0) != HealthDown; i++ {
		tr.ObserveSend(0, false)
		if tr.State(0) == HealthSuspect {
			sawSuspect = true
		}
	}
	if !sawSuspect {
		t.Error("never passed through suspect")
	}
	if got := tr.State(0); got != HealthDown {
		t.Fatalf("state %v after sustained failures, want down", got)
	}
	if tr.Usable(0) {
		t.Error("down channel usable before probe due")
	}
	// Probe comes due: Usable admits and transitions to probing.
	clock.now += time.Second
	if !tr.Usable(0) {
		t.Fatal("probe due but channel not usable")
	}
	if got := tr.State(0); got != HealthProbing {
		t.Fatalf("state %v after probe admission, want probing", got)
	}
	// Enough successes recover the channel.
	for i := 0; i < 3; i++ {
		tr.ObserveSend(0, true)
	}
	if got := tr.State(0); got != HealthHealthy {
		t.Fatalf("state %v after probe successes, want healthy", got)
	}
	if rate := tr.FailureRate(0); rate != 0 {
		t.Errorf("EWMA %v after recovery, want 0", rate)
	}
	// The untouched channel stayed healthy throughout.
	if got := tr.State(1); got != HealthHealthy {
		t.Errorf("bystander channel state %v", got)
	}
}

func TestProbeBackoffExponentialAndCapped(t *testing.T) {
	clock := &fakeClock{}
	cfg := HealthConfig{ProbeInterval: 100 * time.Millisecond, ProbeBackoff: 2, MaxProbeInterval: 500 * time.Millisecond}
	tr := newTracker(t, cfg, 1, clock)
	for tr.State(0) != HealthDown {
		tr.ObserveSend(0, false)
	}
	// Each failed probe doubles the wait: 100ms, 200ms, 400ms, 500ms (cap).
	wants := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond, 500 * time.Millisecond, 500 * time.Millisecond}
	for i, want := range wants {
		if tr.Usable(0) {
			t.Fatalf("round %d: usable before %v elapsed", i, want)
		}
		clock.now += want - time.Millisecond
		if tr.Usable(0) {
			t.Fatalf("round %d: usable %v early", i, time.Millisecond)
		}
		clock.now += time.Millisecond
		if !tr.Usable(0) {
			t.Fatalf("round %d: not usable after %v", i, want)
		}
		// Probe fails again.
		tr.ObserveSend(0, false)
		if got := tr.State(0); got != HealthDown {
			t.Fatalf("round %d: state %v after failed probe", i, got)
		}
	}
}

func TestObserveReadyDrivesBlackout(t *testing.T) {
	clock := &fakeClock{}
	tr := newTracker(t, HealthConfig{}, 1, clock)
	// Sustained unwritability (netem blackout) downs the channel even
	// though no sends are attempted.
	for i := 0; i < 30 && tr.State(0) != HealthDown; i++ {
		tr.ObserveReady(0, false)
	}
	if got := tr.State(0); got != HealthDown {
		t.Fatalf("state %v after sustained unwritability, want down", got)
	}
	// While down, readiness observations are not folded in (the EWMA
	// freezes until a probe).
	before := tr.FailureRate(0)
	tr.ObserveReady(0, true)
	if got := tr.FailureRate(0); got != before {
		t.Errorf("EWMA moved while down: %v -> %v", before, got)
	}
	// Probe due, link still unwritable: probing fails, back to down.
	clock.now += time.Second
	if !tr.Usable(0) {
		t.Fatal("probe not admitted")
	}
	tr.ObserveReady(0, false)
	if got := tr.State(0); got != HealthDown {
		t.Fatalf("state %v after unwritable probe, want down", got)
	}
}

func TestObserveLossFoldsIntoEWMA(t *testing.T) {
	clock := &fakeClock{}
	tr := newTracker(t, HealthConfig{}, 1, clock)
	for i := 0; i < 30 && tr.State(0) != HealthDown; i++ {
		tr.ObserveLoss(0, 0.9)
	}
	if got := tr.State(0); got != HealthDown {
		t.Errorf("state %v after sustained feedback loss, want down", got)
	}
}

func TestNilTrackerIsSafe(t *testing.T) {
	var tr *HealthTracker
	tr.ObserveSend(0, false)
	tr.ObserveReady(0, false)
	tr.ObserveLoss(0, 1)
	if !tr.Usable(0) {
		t.Error("nil tracker must treat every channel as usable")
	}
}

func TestHealthChooserClampsMultiplicityKeepsThreshold(t *testing.T) {
	clock := &fakeClock{}
	tr := newTracker(t, HealthConfig{}, 5, clock)
	rng := rand.New(rand.NewSource(1))
	ch, err := NewHealthChooser(2, 5, tr, rng)
	if err != nil {
		t.Fatal(err)
	}
	links := make([]Link, 5)
	fakes := make([]*healthLink, 5)
	for i := range links {
		fakes[i] = &healthLink{writable: true, accept: true}
		links[i] = fakes[i]
	}
	// All up: m = 5 every time (mu integral), k = 2.
	k, mask, ok := ch.Choose(links)
	if !ok || k != 2 || bits.OnesCount32(mask) != 5 {
		t.Fatalf("full set: k=%d mask=%b ok=%v", k, mask, ok)
	}
	// Two channels unwritable: multiplicity clamps to 3, threshold holds.
	fakes[1].writable = false
	fakes[4].writable = false
	k, mask, ok = ch.Choose(links)
	if !ok {
		t.Fatal("chooser stalled with 3 usable channels for k=2")
	}
	if k != 2 {
		t.Errorf("threshold %d, want 2", k)
	}
	if bits.OnesCount32(mask) != 3 {
		t.Errorf("multiplicity %d, want clamp to 3", bits.OnesCount32(mask))
	}
	if mask&(1<<1) != 0 || mask&(1<<4) != 0 {
		t.Errorf("mask %b includes unwritable channels", mask)
	}
}

func TestHealthChooserStallsBelowThresholdFloor(t *testing.T) {
	clock := &fakeClock{}
	tr := newTracker(t, HealthConfig{}, 3, clock)
	ch, err := NewHealthChooser(2, 3, tr, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	links := make([]Link, 3)
	fakes := make([]*healthLink, 3)
	for i := range links {
		fakes[i] = &healthLink{writable: true, accept: true}
		links[i] = fakes[i]
	}
	fakes[0].writable = false
	fakes[1].writable = false
	// One usable channel < k=2: must stall, never weaken the threshold.
	for i := 0; i < 10; i++ {
		if _, _, ok := ch.Choose(links); ok {
			t.Fatal("chose a schedule with fewer usable channels than k")
		}
	}
}

// TestHealthChooserThresholdFloorProperty is the invariant property test:
// under arbitrary writability churn, every accepted choice satisfies
// ⌊κ⌋ <= k <= |mask| and the mask avoids unusable channels.
func TestHealthChooserThresholdFloorProperty(t *testing.T) {
	clock := &fakeClock{}
	tr := newTracker(t, HealthConfig{}, 6, clock)
	const kappa, mu = 2.5, 4.5
	ch, err := NewHealthChooser(kappa, mu, tr, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	links := make([]Link, 6)
	fakes := make([]*healthLink, 6)
	for i := range links {
		fakes[i] = &healthLink{writable: true, accept: true}
		links[i] = fakes[i]
	}
	churn := rand.New(rand.NewSource(4))
	accepted := 0
	for i := 0; i < 5000; i++ {
		for _, f := range fakes {
			f.writable = churn.Float64() < 0.8
		}
		clock.now += time.Millisecond
		k, mask, ok := ch.Choose(links)
		if !ok {
			continue
		}
		accepted++
		if k < 2 {
			t.Fatalf("iteration %d: threshold %d below floor 2", i, k)
		}
		if k > bits.OnesCount32(mask) {
			t.Fatalf("iteration %d: k=%d exceeds multiplicity %d", i, k, bits.OnesCount32(mask))
		}
		for b := 0; b < 6; b++ {
			if mask&(1<<uint(b)) != 0 && !fakes[b].writable {
				t.Fatalf("iteration %d: mask %b uses unwritable channel %d", i, mask, b)
			}
		}
	}
	if accepted == 0 {
		t.Fatal("no choice ever accepted")
	}
}

func TestHealthChooserResolveMode(t *testing.T) {
	set := core.Set{
		{Risk: 0.1, Loss: 0.01, Delay: 10 * time.Millisecond, Rate: 1000},
		{Risk: 0.2, Loss: 0.02, Delay: 20 * time.Millisecond, Rate: 800},
		{Risk: 0.3, Loss: 0.05, Delay: 30 * time.Millisecond, Rate: 600},
		{Risk: 0.15, Loss: 0.03, Delay: 15 * time.Millisecond, Rate: 900},
	}
	clock := &fakeClock{}
	reg := obs.NewRegistry()
	tr, err := NewHealthTracker(HealthConfig{}, 4, clock.Now, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	const kappa, mu = 2, 3
	ch, err := NewHealthChooser(kappa, mu, tr, rand.New(rand.NewSource(5)),
		Resolve(set, schedule.ObjectiveRisk))
	if err != nil {
		t.Fatal(err)
	}
	links := make([]Link, 4)
	fakes := make([]*healthLink, 4)
	for i := range links {
		fakes[i] = &healthLink{writable: true, accept: true}
		links[i] = fakes[i]
	}
	check := func(label string, excluded ...int) {
		t.Helper()
		for i := 0; i < 200; i++ {
			k, mask, ok := ch.Choose(links)
			if !ok {
				t.Fatalf("%s: stalled", label)
			}
			if k < 2 {
				t.Fatalf("%s: threshold %d below floor 2", label, k)
			}
			if k > bits.OnesCount32(mask) {
				t.Fatalf("%s: k=%d > |M|=%d", label, k, bits.OnesCount32(mask))
			}
			for _, e := range excluded {
				if mask&(1<<uint(e)) != 0 {
					t.Fatalf("%s: mask %b uses excluded channel %d", label, mask, e)
				}
			}
		}
		if err := ch.ResolveErr(); err != nil {
			t.Fatalf("%s: resolve error: %v", label, err)
		}
	}
	check("full set")
	// Channel 2 goes away: the LP re-solves over the 3 survivors.
	fakes[2].writable = false
	check("one down", 2)
	// A second failure leaves exactly ⌊κ⌋ survivors: still solvable.
	fakes[0].writable = false
	check("two down", 0, 2)
	// Below the floor: stall.
	fakes[3].writable = false
	if _, _, ok := ch.Choose(links); ok {
		t.Fatal("resolve mode scheduled below the threshold floor")
	}
	// Recovery: all channels restored. Advance past the probe backoff so
	// the downed channels re-admit and the usable set returns to the full
	// set the chooser first solved for.
	clock.now = 10 * time.Second
	for _, f := range fakes {
		f.writable = true
	}
	check("restored")

	// The solve path must route through the schedule cache: restoring the
	// full usable set revisits the state solved at "full set", so the
	// restored resolve is a cache hit, not a fresh LP solve.
	if hits := counterOn(t, reg, "remicss_schedule_cache_hits_total"); hits == 0 {
		t.Error("remicss_schedule_cache_hits_total never advanced; re-solve bypassed the cache")
	}
	if errs := counterOn(t, reg, "remicss_chooser_resolve_errors_total"); errs != 0 {
		t.Errorf("remicss_chooser_resolve_errors_total = %d on an error-free run", errs)
	}
}

// counterOn reads one registered counter series by name.
func counterOn(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	for _, s := range reg.Gather() {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("series %s not registered", name)
	return 0
}

// TestHealthChooserResolveErrorSurfaced: when the re-solve fails (here: the
// set exceeds the exact-schedule channel cap), the chooser must fall back to
// clamping AND surface the failure as remicss_chooser_resolve_errors_total
// plus a resolve-error trace event carrying the survivor count.
func TestHealthChooserResolveErrorSurfaced(t *testing.T) {
	const n = 23 // above core.Set.Validate's channel cap: Optimize fails
	set := make(core.Set, n)
	for i := range set {
		set[i] = core.Channel{Risk: 0.1, Loss: 0.01, Delay: 10 * time.Millisecond, Rate: 1000}
	}
	clock := &fakeClock{now: 7 * time.Millisecond}
	reg := obs.NewRegistry()
	trace := obs.NewTrace(64)
	tr, err := NewHealthTracker(HealthConfig{}, n, clock.Now, reg, trace)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewHealthChooser(2, 3, tr, rand.New(rand.NewSource(11)),
		Resolve(set, schedule.ObjectiveRisk))
	if err != nil {
		t.Fatal(err)
	}
	links := make([]Link, n)
	for i := range links {
		links[i] = &healthLink{writable: true, accept: true}
	}
	k, mask, ok := ch.Choose(links)
	if !ok || k < 2 || k > bits.OnesCount32(mask) {
		t.Fatalf("clamping fallback failed: k=%d |M|=%d ok=%v", k, bits.OnesCount32(mask), ok)
	}
	if ch.ResolveErr() == nil {
		t.Fatal("ResolveErr() nil after an unsolvable re-solve")
	}
	if errs := counterOn(t, reg, "remicss_chooser_resolve_errors_total"); errs != 1 {
		t.Errorf("remicss_chooser_resolve_errors_total = %d, want 1", errs)
	}
	var found bool
	for _, ev := range trace.Snapshot(nil) {
		if ev.Kind == obs.EventResolveError {
			found = true
			if ev.Value != n {
				t.Errorf("resolve-error event value = %d, want survivor count %d", ev.Value, n)
			}
			if ev.At != 7*time.Millisecond {
				t.Errorf("resolve-error event at %v, want the tracker clock", ev.At)
			}
		}
	}
	if !found {
		t.Error("no resolve-error trace event recorded")
	}
}

func TestHealthChooserSetTargets(t *testing.T) {
	clock := &fakeClock{}
	tr := newTracker(t, HealthConfig{}, 4, clock)
	ch, err := NewHealthChooser(1, 2, tr, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	links := make([]Link, 4)
	for i := range links {
		links[i] = &healthLink{writable: true, accept: true}
	}
	if err := ch.SetTargets(3, 0.5); err == nil {
		t.Error("mu < kappa accepted")
	}
	if err := ch.SetTargets(3, 4); err != nil {
		t.Fatal(err)
	}
	k, mask, ok := ch.Choose(links)
	if !ok || k != 3 || bits.OnesCount32(mask) != 4 {
		t.Errorf("after SetTargets(3,4): k=%d |M|=%d ok=%v", k, bits.OnesCount32(mask), ok)
	}
}

// TestBlackoutMidStreamPreFailover pins today's behavior WITHOUT failover:
// with μ = n, a single blacked-out channel stalls the plain dynamic
// chooser for the whole outage — no symbol is scheduled below μ channels.
func TestBlackoutMidStreamPreFailover(t *testing.T) {
	eng := netem.NewEngine()
	scheme := sharing.NewAuto(rand.New(rand.NewSource(1)))
	delivered := 0
	recv, err := NewReceiver(ReceiverConfig{
		Scheme:   scheme,
		Clock:    eng.Now,
		OnSymbol: func(uint64, []byte, time.Duration) { delivered++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	var netLinks []*netem.Link
	links := make([]Link, 5)
	for i := range links {
		l, err := netem.NewLink(eng, netem.LinkConfig{Rate: 1000},
			rand.New(rand.NewSource(int64(i)+2)),
			func(p []byte, _ time.Duration) { recv.HandleDatagram(p) })
		if err != nil {
			t.Fatal(err)
		}
		netLinks = append(netLinks, l)
		links[i] = l
	}
	chooser, err := NewDynamicChooser(2, 5, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	snd, err := NewSender(SenderConfig{Scheme: scheme, Chooser: chooser, Clock: eng.Now}, links)
	if err != nil {
		t.Fatal(err)
	}
	sentBefore, sentDuring := 0, 0
	var offer func()
	offer = func() {
		if err := snd.Send([]byte{1}); err == nil {
			if eng.Now() >= time.Second {
				sentDuring++
			} else {
				sentBefore++
			}
		}
		if eng.Now() < 3*time.Second {
			eng.Schedule(2*time.Millisecond, offer)
		}
	}
	eng.Schedule(0, offer)
	eng.Schedule(time.Second, func() { netLinks[1].SetDown(true) })
	eng.Run(3 * time.Second)
	eng.RunUntilIdle()

	if sentBefore == 0 {
		t.Fatal("nothing sent before the blackout")
	}
	// Pinned pre-failover behavior: μ = 5 of 5 channels means the outage
	// stalls every subsequent symbol.
	if sentDuring != 0 {
		t.Errorf("plain chooser sent %d symbols during a blackout with mu = n", sentDuring)
	}
}

// TestBlackoutMidStreamFailover is the recovery counterpart: the same
// blackout with a HealthChooser keeps delivering (clamped multiplicity,
// threshold floor intact) and restores the channel after it heals.
func TestBlackoutMidStreamFailover(t *testing.T) {
	eng := netem.NewEngine()
	scheme := sharing.NewAuto(rand.New(rand.NewSource(1)))
	delivered := 0
	recv, err := NewReceiver(ReceiverConfig{
		Scheme:   scheme,
		Clock:    eng.Now,
		OnSymbol: func(uint64, []byte, time.Duration) { delivered++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := obs.NewTrace(1 << 15)
	var netLinks []*netem.Link
	links := make([]Link, 5)
	for i := range links {
		l, err := netem.NewLink(eng, netem.LinkConfig{Rate: 1000},
			rand.New(rand.NewSource(int64(i)+2)),
			func(p []byte, _ time.Duration) { recv.HandleDatagram(p) })
		if err != nil {
			t.Fatal(err)
		}
		netLinks = append(netLinks, l)
		links[i] = l
	}
	tracker, err := NewHealthTracker(HealthConfig{}, 5, eng.Now, nil, trace)
	if err != nil {
		t.Fatal(err)
	}
	chooser, err := NewHealthChooser(2, 5, tracker, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	snd, err := NewSender(SenderConfig{
		Scheme: scheme, Chooser: chooser, Clock: eng.Now,
		Trace: trace, Health: tracker,
	}, links)
	if err != nil {
		t.Fatal(err)
	}
	sentDuring, sentAfter := 0, 0
	var offer func()
	offer = func() {
		if err := snd.Send([]byte{1}); err == nil {
			switch {
			case eng.Now() >= 2*time.Second:
				sentAfter++
			case eng.Now() >= time.Second:
				sentDuring++
			}
		}
		if eng.Now() < 4*time.Second {
			eng.Schedule(2*time.Millisecond, offer)
		}
	}
	eng.Schedule(0, offer)
	eng.Schedule(time.Second, func() { netLinks[1].SetDown(true) })
	eng.Schedule(2*time.Second, func() { netLinks[1].SetDown(false) })
	eng.Run(4 * time.Second)
	eng.RunUntilIdle()

	// Failover: delivery continues through the blackout.
	if sentDuring < 100 {
		t.Errorf("only %d symbols sent during blackout; failover did not engage", sentDuring)
	}
	if sentAfter < 100 {
		t.Errorf("only %d symbols sent after restoration", sentAfter)
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// The channel must have cycled down and back: state-changed events
	// for channel 1 include Down and a later Healthy.
	var sawDown, sawRecovered bool
	for _, ev := range trace.Snapshot(nil) {
		if ev.Kind == obs.EventChannelStateChanged && ev.Channel == 1 {
			if HealthState(ev.Value) == HealthDown {
				sawDown = true
			}
			if sawDown && HealthState(ev.Value) == HealthHealthy {
				sawRecovered = true
			}
		}
	}
	if !sawDown {
		t.Error("channel 1 never declared down")
	}
	if !sawRecovered {
		t.Error("channel 1 never recovered after the blackout ended")
	}
	// Threshold-floor invariant against obs ground truth: every scheduled
	// symbol carries k >= ⌊κ⌋ = 2.
	scheduled := 0
	for _, ev := range trace.Snapshot(nil) {
		if ev.Kind != obs.EventSymbolScheduled {
			continue
		}
		scheduled++
		k := int(ev.Value >> 8)
		m := int(ev.Value & 0xFF)
		if k < 2 {
			t.Fatalf("scheduled symbol %d with threshold %d below floor 2", ev.Seq, k)
		}
		if k > m {
			t.Fatalf("scheduled symbol %d with k=%d > m=%d", ev.Seq, k, m)
		}
	}
	if scheduled == 0 {
		t.Fatal("no symbol-scheduled events recorded")
	}
}
