package remicss

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"remicss/internal/obs"
	"remicss/internal/sharing"
	"remicss/internal/wire"
)

// Default reassembly parameters. The timeout mirrors IP fragment reassembly
// (generous relative to channel delays); the pending cap bounds memory.
const (
	DefaultReassemblyTimeout = 2 * time.Second
	DefaultMaxPending        = 4096
)

// closedMemoryFactor sizes the closed-symbol memory (see Receiver.closed)
// as a multiple of MaxPending.
const closedMemoryFactor = 4

// ReceiverStats counts receiver-side activity. It is a point-in-time
// snapshot assembled from the receiver's metric registry; the registry
// itself (see Receiver.Metrics) additionally exposes a one-way delay
// histogram, a datagram total, and a pending gauge.
type ReceiverStats struct {
	// SharesReceived counts structurally valid shares accepted into
	// reassembly.
	SharesReceived int64
	// SharesInvalid counts datagrams rejected by wire parsing or with
	// parameters inconsistent with the symbol's first share.
	SharesInvalid int64
	// SharesDuplicate counts shares for an index already held.
	SharesDuplicate int64
	// SharesLate counts shares for symbols already delivered or evicted,
	// including shares arriving after their symbol's reassembly entry was
	// itself evicted (the closed-symbol memory).
	SharesLate int64
	// SymbolsDelivered counts symbols reconstructed and handed to the
	// callback.
	SymbolsDelivered int64
	// SymbolsEvicted counts incomplete symbols dropped by timeout or
	// memory pressure.
	SymbolsEvicted int64
	// CombineFailures counts reconstruction errors (corrupt share data
	// that passed the checksum, or scheme mismatch).
	CombineFailures int64
}

// ReceiverConfig configures a Receiver. Scheme, Clock, and OnSymbol are
// required.
type ReceiverConfig struct {
	// Scheme reconstructs symbols from shares; must match the sender's.
	Scheme sharing.Scheme
	// Clock supplies arrival timestamps on the same timeline as the
	// sender's clock.
	Clock func() time.Duration
	// OnSymbol is invoked for every reconstructed symbol with its one-way
	// delay (reconstruction time minus the sender's timestamp). The payload
	// is freshly allocated and owned by the callback. OnSymbol runs with
	// the receiver's lock held — deliveries are serialized in
	// reconstruction order — so it must not call back into the Receiver.
	OnSymbol func(seq uint64, payload []byte, delay time.Duration)
	// Timeout evicts partial symbols idle longer than this. Defaults to
	// DefaultReassemblyTimeout.
	Timeout time.Duration
	// MaxPending bounds the number of symbols (complete or partial) held.
	// Oldest entries are evicted first. Defaults to DefaultMaxPending.
	MaxPending int
	// Metrics receives the receiver's counters, delay histogram, and
	// pending gauge. Nil gives the receiver a private registry; Stats and
	// Metrics work either way.
	Metrics *obs.Registry
	// Trace, when non-nil, receives symbol-delivered and symbol-evicted
	// events. Nil disables tracing.
	Trace *obs.Trace
}

// receiverMetrics bundles every handle the ingest path touches. Handles
// are resolved once at construction; ingest increments are single atomic
// operations.
type receiverMetrics struct {
	reg             *obs.Registry
	datagrams       *obs.Counter
	sharesReceived  *obs.Counter
	sharesInvalid   *obs.Counter
	sharesDuplicate *obs.Counter
	sharesLate      *obs.Counter
	symbolsDeliv    *obs.Counter
	symbolsEvicted  *obs.Counter
	combineFailures *obs.Counter
	pending         *obs.Gauge
	delay           *obs.Histogram
}

// newReceiverMetrics registers the receiver series.
func newReceiverMetrics(reg *obs.Registry) receiverMetrics {
	return receiverMetrics{
		reg:             reg,
		datagrams:       reg.Counter("remicss_receiver_datagrams_total"),
		sharesReceived:  reg.Counter("remicss_receiver_shares_received_total"),
		sharesInvalid:   reg.Counter("remicss_receiver_shares_invalid_total"),
		sharesDuplicate: reg.Counter("remicss_receiver_shares_duplicate_total"),
		sharesLate:      reg.Counter("remicss_receiver_shares_late_total"),
		symbolsDeliv:    reg.Counter("remicss_receiver_symbols_delivered_total"),
		symbolsEvicted:  reg.Counter("remicss_receiver_symbols_evicted_total"),
		combineFailures: reg.Counter("remicss_receiver_combine_failures_total"),
		pending:         reg.Gauge("remicss_receiver_pending"),
		delay:           reg.Histogram("remicss_receiver_symbol_delay_ns", obs.DefaultDelayBounds()),
	}
}

// Receiver is the receiving half of the protocol: a reassembly buffer over
// incoming share datagrams. It is safe for concurrent use: a single mutex
// serializes HandleDatagram, Tick, MakeReport, and Pending, so datagrams
// may be ingested directly from multiple transport goroutines; counters
// are atomic and readable without the lock. Reassembly entries and their
// share buffers are recycled through a sync.Pool, so steady-state ingest
// does not allocate per share.
type Receiver struct {
	cfg   ReceiverConfig
	met   receiverMetrics
	trace *obs.Trace

	mu sync.Mutex

	// pending maps seq -> reassembly entry; order tracks insertion order
	// for timeout scans and memory-pressure eviction (oldest first).
	pending map[uint64]*list.Element // guarded by mu
	order   *list.List               // guarded by mu

	// closed remembers recently evicted tombstones (symbols already
	// delivered or failed) so a straggler share cannot reopen its
	// sequence number and — for thresholds met again — deliver the same
	// symbol twice. Bounded FIFO: closedFIFO holds the remembered seqs in
	// insertion order, closedHead is the next overwrite position once the
	// ring is full.
	closed     map[uint64]struct{} // guarded by mu
	closedFIFO []uint64            // guarded by mu
	closedHead int                 // guarded by mu

	// Feedback report state (see feedback.go).
	reportEpoch uint64        // guarded by mu
	lastReport  ReceiverStats // guarded by mu
}

// entry is one symbol being reassembled. A delivered symbol keeps a
// tombstone entry (shares recycled, done true) until eviction so that late
// duplicate shares are classified correctly. Entries live in entryPool;
// spare holds share payload buffers recycled within and across entries.
type entry struct {
	seq     uint64
	k, m    int
	sentAt  int64
	arrived time.Duration // first-share arrival, for timeout eviction
	shares  []sharing.Share
	haveIdx uint32 // bitmask of share indices held
	done    bool
	spare   [][]byte // freelist of share payload buffers
}

// entryPool recycles reassembly entries (and, through their spare lists,
// share payload buffers) across symbols and across receivers.
var entryPool = sync.Pool{New: func() any { return new(entry) }}

// grabBuf returns an n-byte buffer, reusing the freelist when a spare has
// enough capacity.
func (e *entry) grabBuf(n int) []byte {
	if last := len(e.spare) - 1; last >= 0 {
		b := e.spare[last]
		e.spare[last] = nil
		e.spare = e.spare[:last]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// recycleShares moves every held share buffer onto the freelist and resets
// the share list.
func (e *entry) recycleShares() {
	for i := range e.shares {
		e.spare = append(e.spare, e.shares[i].Data)
		e.shares[i].Data = nil
	}
	e.shares = e.shares[:0]
}

// NewReceiver builds a receiver.
func NewReceiver(cfg ReceiverConfig) (*Receiver, error) {
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("remicss: nil scheme")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("remicss: nil clock")
	}
	if cfg.OnSymbol == nil {
		return nil, fmt.Errorf("remicss: nil symbol callback")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultReassemblyTimeout
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Receiver{
		cfg:        cfg,
		met:        newReceiverMetrics(reg),
		trace:      cfg.Trace,
		pending:    make(map[uint64]*list.Element),
		order:      list.New(),
		closed:     make(map[uint64]struct{}),
		closedFIFO: make([]uint64, 0, closedMemoryFactor*cfg.MaxPending),
	}, nil
}

// Metrics returns the registry holding the receiver's series (the one
// from ReceiverConfig.Metrics, or the private registry created in its
// absence), for exposition via internal/obs writers.
func (r *Receiver) Metrics() *obs.Registry { return r.met.reg }

// Stats returns a snapshot of the receiver counters. Counters are atomic,
// so the snapshot does not block concurrent ingest.
func (r *Receiver) Stats() ReceiverStats {
	return ReceiverStats{
		SharesReceived:   r.met.sharesReceived.Value(),
		SharesInvalid:    r.met.sharesInvalid.Value(),
		SharesDuplicate:  r.met.sharesDuplicate.Value(),
		SharesLate:       r.met.sharesLate.Value(),
		SymbolsDelivered: r.met.symbolsDeliv.Value(),
		SymbolsEvicted:   r.met.symbolsEvicted.Value(),
		CombineFailures:  r.met.combineFailures.Value(),
	}
}

// Pending returns the number of reassembly entries held (including
// delivered tombstones awaiting timeout).
func (r *Receiver) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.order.Len()
}

// HandleDatagram processes one received share datagram. The buffer is only
// read, never retained or mutated, so callers may reuse it immediately;
// concurrent calls from multiple transport goroutines are serialized
// internally.
func (r *Receiver) HandleDatagram(buf []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()

	r.met.datagrams.Inc()
	now := r.cfg.Clock()
	r.evictExpired(now)

	pkt, err := wire.Unmarshal(buf)
	if err != nil {
		r.met.sharesInvalid.Inc()
		return
	}

	elem, exists := r.pending[pkt.Seq]
	if !exists {
		if _, wasClosed := r.closed[pkt.Seq]; wasClosed {
			// The symbol's tombstone has already been evicted; reopening
			// the sequence would deliver the symbol a second time once k
			// stray shares accumulate. Count the straggler as late.
			r.met.sharesLate.Inc()
			return
		}
		r.admit()
		e := entryPool.Get().(*entry)
		e.seq = pkt.Seq
		e.k, e.m = int(pkt.K), int(pkt.M)
		e.sentAt = pkt.SentAt
		e.arrived = now
		e.haveIdx = 0
		e.done = false
		elem = r.order.PushBack(e)
		r.pending[pkt.Seq] = elem
		r.met.pending.Set(int64(r.order.Len()))
	}
	e := elem.Value.(*entry)

	if e.done {
		r.met.sharesLate.Inc()
		return
	}
	if int(pkt.K) != e.k || int(pkt.M) != e.m {
		// Shares of one symbol must agree on parameters; the first share
		// seen wins and inconsistent ones are discarded.
		r.met.sharesInvalid.Inc()
		return
	}
	if e.haveIdx&(1<<uint(pkt.Index)) != 0 {
		r.met.sharesDuplicate.Inc()
		return
	}
	e.haveIdx |= 1 << uint(pkt.Index)
	data := e.grabBuf(len(pkt.Payload))
	copy(data, pkt.Payload)
	e.shares = append(e.shares, sharing.Share{Index: int(pkt.Index), Data: data})
	r.met.sharesReceived.Inc()

	if len(e.shares) < e.k {
		return
	}
	// A nil destination makes CombineInto allocate a fresh secret, whose
	// ownership transfers to the callback (downstream consumers such as
	// stream.Orderer retain payloads).
	secret, err := sharing.CombineInto(r.cfg.Scheme, nil, e.shares, e.k, e.m)
	if err != nil {
		r.met.combineFailures.Inc()
		// Leave the entry; a later consistent share set cannot form since
		// indices are unique, so mark done to stop retrying.
		e.done = true
		e.recycleShares()
		return
	}
	e.done = true
	e.recycleShares()
	r.met.symbolsDeliv.Inc()
	delay := now - time.Duration(e.sentAt)
	r.met.delay.Observe(int64(delay))
	r.trace.Record(obs.EventSymbolDelivered, -1, now, e.seq, int64(delay))
	r.cfg.OnSymbol(e.seq, secret, delay)
}

// Tick performs timeout eviction; call it periodically when no datagrams
// are arriving so stale entries do not linger.
func (r *Receiver) Tick() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictExpired(r.cfg.Clock())
}

// evictExpired drops entries older than the timeout (oldest first).
//
//lint:allow mutexguard callers hold mu
func (r *Receiver) evictExpired(now time.Duration) {
	for {
		front := r.order.Front()
		if front == nil {
			return
		}
		e := front.Value.(*entry)
		if now-e.arrived < r.cfg.Timeout {
			return
		}
		r.drop(front, e, now)
	}
}

// admit makes room for a new entry under the memory cap.
//
//lint:allow mutexguard callers hold mu
func (r *Receiver) admit() {
	for r.order.Len() >= r.cfg.MaxPending {
		front := r.order.Front()
		e := front.Value.(*entry)
		r.drop(front, e, e.arrived+r.cfg.Timeout)
	}
}

// rememberClosed records a tombstone's sequence number in the bounded
// closed-symbol memory, evicting the oldest remembered seq once the ring
// is full.
//
//lint:allow mutexguard callers hold mu
func (r *Receiver) rememberClosed(seq uint64) {
	if len(r.closedFIFO) < cap(r.closedFIFO) {
		r.closedFIFO = append(r.closedFIFO, seq)
	} else {
		delete(r.closed, r.closedFIFO[r.closedHead])
		r.closedFIFO[r.closedHead] = seq
		r.closedHead = (r.closedHead + 1) % len(r.closedFIFO)
	}
	r.closed[seq] = struct{}{}
}

// drop removes one reassembly entry and recycles it. now is the eviction
// timestamp for trace purposes.
//
//lint:allow mutexguard callers hold mu
func (r *Receiver) drop(elem *list.Element, e *entry, now time.Duration) {
	r.order.Remove(elem)
	delete(r.pending, e.seq)
	if e.done {
		// Delivered (or combine-failed) symbols must never be re-admitted
		// by stragglers; remember the closed seq.
		r.rememberClosed(e.seq)
	} else {
		r.met.symbolsEvicted.Inc()
		r.trace.Record(obs.EventSymbolEvicted, -1, now, e.seq, int64(len(e.shares)))
	}
	r.met.pending.Set(int64(r.order.Len()))
	e.recycleShares()
	entryPool.Put(e)
}
