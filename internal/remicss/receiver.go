package remicss

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"remicss/internal/sharing"
	"remicss/internal/wire"
)

// Default reassembly parameters. The timeout mirrors IP fragment reassembly
// (generous relative to channel delays); the pending cap bounds memory.
const (
	DefaultReassemblyTimeout = 2 * time.Second
	DefaultMaxPending        = 4096
)

// ReceiverStats counts receiver-side activity.
type ReceiverStats struct {
	// SharesReceived counts structurally valid shares accepted into
	// reassembly.
	SharesReceived int64
	// SharesInvalid counts datagrams rejected by wire parsing or with
	// parameters inconsistent with the symbol's first share.
	SharesInvalid int64
	// SharesDuplicate counts shares for an index already held.
	SharesDuplicate int64
	// SharesLate counts shares for symbols already delivered or evicted.
	SharesLate int64
	// SymbolsDelivered counts symbols reconstructed and handed to the
	// callback.
	SymbolsDelivered int64
	// SymbolsEvicted counts incomplete symbols dropped by timeout or
	// memory pressure.
	SymbolsEvicted int64
	// CombineFailures counts reconstruction errors (corrupt share data
	// that passed the checksum, or scheme mismatch).
	CombineFailures int64
}

// ReceiverConfig configures a Receiver. Scheme, Clock, and OnSymbol are
// required.
type ReceiverConfig struct {
	// Scheme reconstructs symbols from shares; must match the sender's.
	Scheme sharing.Scheme
	// Clock supplies arrival timestamps on the same timeline as the
	// sender's clock.
	Clock func() time.Duration
	// OnSymbol is invoked for every reconstructed symbol with its one-way
	// delay (reconstruction time minus the sender's timestamp). The payload
	// is freshly allocated and owned by the callback. OnSymbol runs with
	// the receiver's lock held — deliveries are serialized in
	// reconstruction order — so it must not call back into the Receiver.
	OnSymbol func(seq uint64, payload []byte, delay time.Duration)
	// Timeout evicts partial symbols idle longer than this. Defaults to
	// DefaultReassemblyTimeout.
	Timeout time.Duration
	// MaxPending bounds the number of symbols (complete or partial) held.
	// Oldest entries are evicted first. Defaults to DefaultMaxPending.
	MaxPending int
}

// Receiver is the receiving half of the protocol: a reassembly buffer over
// incoming share datagrams. It is safe for concurrent use: a single mutex
// serializes HandleDatagram, Tick, MakeReport, Stats, and Pending, so
// datagrams may be ingested directly from multiple transport goroutines.
// Reassembly entries and their share buffers are recycled through a
// sync.Pool, so steady-state ingest does not allocate per share.
type Receiver struct {
	cfg ReceiverConfig

	mu    sync.Mutex
	stats ReceiverStats // guarded by mu

	// pending maps seq -> reassembly entry; order tracks insertion order
	// for timeout scans and memory-pressure eviction (oldest first).
	pending map[uint64]*list.Element // guarded by mu
	order   *list.List               // guarded by mu

	// Feedback report state (see feedback.go).
	reportEpoch uint64        // guarded by mu
	lastReport  ReceiverStats // guarded by mu
}

// entry is one symbol being reassembled. A delivered symbol keeps a
// tombstone entry (shares recycled, done true) until eviction so that late
// duplicate shares are classified correctly. Entries live in entryPool;
// spare holds share payload buffers recycled within and across entries.
type entry struct {
	seq     uint64
	k, m    int
	sentAt  int64
	arrived time.Duration // first-share arrival, for timeout eviction
	shares  []sharing.Share
	haveIdx uint32 // bitmask of share indices held
	done    bool
	spare   [][]byte // freelist of share payload buffers
}

// entryPool recycles reassembly entries (and, through their spare lists,
// share payload buffers) across symbols and across receivers.
var entryPool = sync.Pool{New: func() any { return new(entry) }}

// grabBuf returns an n-byte buffer, reusing the freelist when a spare has
// enough capacity.
func (e *entry) grabBuf(n int) []byte {
	if last := len(e.spare) - 1; last >= 0 {
		b := e.spare[last]
		e.spare[last] = nil
		e.spare = e.spare[:last]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// recycleShares moves every held share buffer onto the freelist and resets
// the share list.
func (e *entry) recycleShares() {
	for i := range e.shares {
		e.spare = append(e.spare, e.shares[i].Data)
		e.shares[i].Data = nil
	}
	e.shares = e.shares[:0]
}

// NewReceiver builds a receiver.
func NewReceiver(cfg ReceiverConfig) (*Receiver, error) {
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("remicss: nil scheme")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("remicss: nil clock")
	}
	if cfg.OnSymbol == nil {
		return nil, fmt.Errorf("remicss: nil symbol callback")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultReassemblyTimeout
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	return &Receiver{
		cfg:     cfg,
		pending: make(map[uint64]*list.Element),
		order:   list.New(),
	}, nil
}

// Stats returns a snapshot of the receiver counters.
func (r *Receiver) Stats() ReceiverStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Pending returns the number of reassembly entries held (including
// delivered tombstones awaiting timeout).
func (r *Receiver) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.order.Len()
}

// HandleDatagram processes one received share datagram. The buffer is only
// read, never retained or mutated, so callers may reuse it immediately;
// concurrent calls from multiple transport goroutines are serialized
// internally.
func (r *Receiver) HandleDatagram(buf []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()

	now := r.cfg.Clock()
	r.evictExpired(now)

	pkt, err := wire.Unmarshal(buf)
	if err != nil {
		r.stats.SharesInvalid++
		return
	}

	elem, exists := r.pending[pkt.Seq]
	if !exists {
		r.admit()
		e := entryPool.Get().(*entry)
		e.seq = pkt.Seq
		e.k, e.m = int(pkt.K), int(pkt.M)
		e.sentAt = pkt.SentAt
		e.arrived = now
		e.haveIdx = 0
		e.done = false
		elem = r.order.PushBack(e)
		r.pending[pkt.Seq] = elem
	}
	e := elem.Value.(*entry)

	if e.done {
		r.stats.SharesLate++
		return
	}
	if int(pkt.K) != e.k || int(pkt.M) != e.m {
		// Shares of one symbol must agree on parameters; the first share
		// seen wins and inconsistent ones are discarded.
		r.stats.SharesInvalid++
		return
	}
	if e.haveIdx&(1<<uint(pkt.Index)) != 0 {
		r.stats.SharesDuplicate++
		return
	}
	e.haveIdx |= 1 << uint(pkt.Index)
	data := e.grabBuf(len(pkt.Payload))
	copy(data, pkt.Payload)
	e.shares = append(e.shares, sharing.Share{Index: int(pkt.Index), Data: data})
	r.stats.SharesReceived++

	if len(e.shares) < e.k {
		return
	}
	// A nil destination makes CombineInto allocate a fresh secret, whose
	// ownership transfers to the callback (downstream consumers such as
	// stream.Orderer retain payloads).
	secret, err := sharing.CombineInto(r.cfg.Scheme, nil, e.shares, e.k, e.m)
	if err != nil {
		r.stats.CombineFailures++
		// Leave the entry; a later consistent share set cannot form since
		// indices are unique, so mark done to stop retrying.
		e.done = true
		e.recycleShares()
		return
	}
	e.done = true
	e.recycleShares()
	r.stats.SymbolsDelivered++
	r.cfg.OnSymbol(e.seq, secret, now-time.Duration(e.sentAt))
}

// Tick performs timeout eviction; call it periodically when no datagrams
// are arriving so stale entries do not linger.
func (r *Receiver) Tick() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictExpired(r.cfg.Clock())
}

// evictExpired drops entries older than the timeout (oldest first).
//
//lint:allow mutexguard callers hold mu
func (r *Receiver) evictExpired(now time.Duration) {
	for {
		front := r.order.Front()
		if front == nil {
			return
		}
		e := front.Value.(*entry)
		if now-e.arrived < r.cfg.Timeout {
			return
		}
		r.drop(front, e)
	}
}

// admit makes room for a new entry under the memory cap.
//
//lint:allow mutexguard callers hold mu
func (r *Receiver) admit() {
	for r.order.Len() >= r.cfg.MaxPending {
		front := r.order.Front()
		e := front.Value.(*entry)
		r.drop(front, e)
	}
}

// drop removes one reassembly entry and recycles it.
//
//lint:allow mutexguard callers hold mu
func (r *Receiver) drop(elem *list.Element, e *entry) {
	r.order.Remove(elem)
	delete(r.pending, e.seq)
	if !e.done {
		r.stats.SymbolsEvicted++
	}
	e.recycleShares()
	entryPool.Put(e)
}
