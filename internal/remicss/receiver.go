package remicss

import (
	"container/list"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"remicss/internal/obs"
	"remicss/internal/shardix"
	"remicss/internal/sharing"
	"remicss/internal/wire"
)

// Default reassembly parameters. The timeout mirrors IP fragment reassembly
// (generous relative to channel delays); the pending cap bounds memory.
const (
	DefaultReassemblyTimeout = 2 * time.Second
	DefaultMaxPending        = 4096
)

// closedMemoryFactor sizes the closed-symbol memory (see Receiver.closed)
// as a multiple of MaxPending.
const closedMemoryFactor = 4

// ReceiverStats counts receiver-side activity. It is a point-in-time
// snapshot assembled from the receiver's metric registry; the registry
// itself (see Receiver.Metrics) additionally exposes a one-way delay
// histogram, a datagram total, and a pending gauge.
type ReceiverStats struct {
	// SharesReceived counts structurally valid shares accepted into
	// reassembly.
	SharesReceived int64
	// SharesInvalid counts datagrams rejected by wire parsing or with
	// parameters inconsistent with the symbol's first share.
	SharesInvalid int64
	// SharesDuplicate counts shares for an index already held.
	SharesDuplicate int64
	// SharesLate counts shares for symbols already delivered or evicted,
	// including shares arriving after their symbol's reassembly entry was
	// itself evicted (the closed-symbol memory).
	SharesLate int64
	// SymbolsDelivered counts symbols reconstructed and handed to the
	// callback.
	SymbolsDelivered int64
	// SymbolsEvicted counts incomplete symbols dropped by timeout or
	// memory pressure.
	SymbolsEvicted int64
	// CombineFailures counts reconstruction errors (corrupt share data
	// that passed the checksum, or scheme mismatch).
	CombineFailures int64
}

// ReceiverConfig configures a Receiver. Scheme, Clock, and OnSymbol are
// required.
type ReceiverConfig struct {
	// Scheme reconstructs symbols from shares; must match the sender's.
	Scheme sharing.Scheme
	// Clock supplies arrival timestamps on the same timeline as the
	// sender's clock.
	Clock func() time.Duration
	// OnSymbol is invoked for every reconstructed symbol with its one-way
	// delay (reconstruction time minus the sender's timestamp). The payload
	// is freshly allocated and owned by the callback. OnSymbol runs outside
	// the reassembly shard locks but under a dedicated delivery mutex —
	// deliveries arrive one at a time, so the callback needs no internal
	// locking — and it must not call back into the Receiver.
	OnSymbol func(seq uint64, payload []byte, delay time.Duration)
	// Timeout evicts partial symbols idle longer than this. Defaults to
	// DefaultReassemblyTimeout.
	Timeout time.Duration
	// MaxPending bounds the number of symbols (complete or partial) held.
	// Oldest entries are evicted first. Defaults to DefaultMaxPending.
	MaxPending int
	// Metrics receives the receiver's counters, delay histogram, and
	// pending gauge. Nil gives the receiver a private registry; Stats and
	// Metrics work either way.
	Metrics *obs.Registry
	// Trace, when non-nil, receives symbol-delivered and symbol-evicted
	// events. Nil disables tracing.
	Trace *obs.Trace
	// Shards is the number of independent reassembly shards, rounded up to
	// a power of two and capped at maxReceiverShards. Incoming shares are
	// routed to a shard by a mixed hash of their sequence number, so
	// concurrent transport goroutines (udptrans.ServeConcurrent) contend
	// per shard rather than on one receiver-wide lock. 0 picks a default
	// sized to GOMAXPROCS at construction time. 1 restores the single-lock
	// receiver, whose receiver-wide oldest-first eviction order some tests
	// pin down.
	Shards int
}

// receiverMetrics bundles every handle the ingest path touches. Handles
// are resolved once at construction; ingest increments are single atomic
// operations.
type receiverMetrics struct {
	reg             *obs.Registry
	datagrams       *obs.Counter
	sharesReceived  *obs.Counter
	sharesInvalid   *obs.Counter
	sharesDuplicate *obs.Counter
	sharesLate      *obs.Counter
	symbolsDeliv    *obs.Counter
	symbolsEvicted  *obs.Counter
	combineFailures *obs.Counter
	pending         *obs.Gauge
	delay           *obs.Histogram
}

// newReceiverMetrics registers the receiver series.
func newReceiverMetrics(reg *obs.Registry) receiverMetrics {
	return receiverMetrics{
		reg:             reg,
		datagrams:       reg.Counter("remicss_receiver_datagrams_total"),
		sharesReceived:  reg.Counter("remicss_receiver_shares_received_total"),
		sharesInvalid:   reg.Counter("remicss_receiver_shares_invalid_total"),
		sharesDuplicate: reg.Counter("remicss_receiver_shares_duplicate_total"),
		sharesLate:      reg.Counter("remicss_receiver_shares_late_total"),
		symbolsDeliv:    reg.Counter("remicss_receiver_symbols_delivered_total"),
		symbolsEvicted:  reg.Counter("remicss_receiver_symbols_evicted_total"),
		combineFailures: reg.Counter("remicss_receiver_combine_failures_total"),
		pending:         reg.Gauge("remicss_receiver_pending"),
		delay:           reg.Histogram("remicss_receiver_symbol_delay_ns", obs.DefaultDelayBounds()),
	}
}

// maxReceiverShards caps the shard count: past this, lock contention is no
// longer the bottleneck and more shards only multiply per-shard series.
const maxReceiverShards = 64

// Receiver is the receiving half of the protocol: a reassembly buffer over
// incoming share datagrams. It is safe for concurrent use and scales with
// ingest goroutines: reassembly state is split into seq-hashed shards, each
// with its own mutex, so HandleDatagram calls for different shards do not
// contend; counters are atomic and readable without any lock, and symbol
// delivery is serialized by a dedicated mutex taken outside the shard
// locks. Reassembly entries and their share buffers are recycled through a
// sync.Pool, so steady-state ingest does not allocate per share.
type Receiver struct {
	cfg   ReceiverConfig
	met   receiverMetrics
	trace *obs.Trace

	// shards holds the reassembly state, indexed by a mixed hash of the
	// sequence number; len(shards) is a power of two and shardMask is
	// len(shards)-1. The slice itself is read-only after construction.
	shards    []recvShard
	shardMask uint64

	// deliverMu serializes OnSymbol callbacks (and their trace events)
	// across shards. Lock order: a shard mutex is always released before
	// deliverMu is taken, never the reverse.
	deliverMu sync.Mutex

	// Feedback report state (see feedback.go).
	reportMu    sync.Mutex
	reportEpoch uint64        // guarded by reportMu
	lastReport  ReceiverStats // guarded by reportMu
}

// recvShard is one slice of the reassembly state. Every field below the
// mutex is the sharded counterpart of what used to be a receiver-wide
// structure; a shard is only ever touched with its own mutex held.
type recvShard struct {
	mu sync.Mutex

	// pending maps seq -> reassembly entry; order tracks insertion order
	// for timeout scans and memory-pressure eviction (oldest first within
	// the shard).
	pending map[uint64]*list.Element // guarded by mu //remicss:secret
	order   *list.List               // guarded by mu //remicss:secret

	// closed remembers recently evicted tombstones (symbols already
	// delivered or failed) so a straggler share cannot reopen its
	// sequence number and — for thresholds met again — deliver the same
	// symbol twice. Bounded FIFO: closedFIFO holds the remembered seqs in
	// insertion order, closedHead is the next overwrite position once the
	// ring is full.
	closed     map[uint64]struct{} // guarded by mu
	closedFIFO []uint64            // guarded by mu
	closedHead int                 // guarded by mu

	// maxPending is this shard's slice of ReceiverConfig.MaxPending
	// (ceiling division); read-only after construction.
	maxPending int

	// Per-shard series: reassembly depth and evictions for this shard
	// only. The unlabeled receiver-wide series remain the exact aggregates
	// (the pending gauge is maintained by ±1 deltas on the same admissions
	// and drops that move these), which the obs-vs-netem cross-validation
	// test checks.
	depth     *obs.Gauge
	evictions *obs.Counter

	// Pad shards to separate cache lines so one shard's mutex traffic does
	// not false-share with its neighbors.
	_ [64]byte
}

// entry is one symbol being reassembled. A delivered symbol keeps a
// tombstone entry (shares recycled, done true) until eviction so that late
// duplicate shares are classified correctly. Entries live in entryPool;
// spare holds share payload buffers recycled within and across entries.
type entry struct {
	seq     uint64
	k, m    int
	sentAt  int64
	arrived time.Duration // first-share arrival, for timeout eviction
	shares  []sharing.Share
	haveIdx uint32 // bitmask of share indices held
	done    bool
	spare   [][]byte // freelist of share payload buffers //remicss:secret
}

// entryPool recycles reassembly entries (and, through their spare lists,
// share payload buffers) across symbols and across receivers.
var entryPool = sync.Pool{New: func() any { return new(entry) }}

// grabBuf returns an n-byte buffer, reusing the freelist when a spare has
// enough capacity.
func (e *entry) grabBuf(n int) []byte {
	if last := len(e.spare) - 1; last >= 0 {
		b := e.spare[last]
		e.spare[last] = nil
		e.spare = e.spare[:last]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// recycleShares moves every held share buffer onto the freelist and resets
// the share list.
func (e *entry) recycleShares() {
	for i := range e.shares {
		e.spare = append(e.spare, e.shares[i].Data)
		e.shares[i].Data = nil
	}
	e.shares = e.shares[:0]
}

// NewReceiver builds a receiver.
//
//lint:allow mutexguard construction: the shards are not published to any other goroutine until NewReceiver returns
func NewReceiver(cfg ReceiverConfig) (*Receiver, error) {
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("remicss: nil scheme")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("remicss: nil clock")
	}
	if cfg.OnSymbol == nil {
		return nil, fmt.Errorf("remicss: nil symbol callback")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultReassemblyTimeout
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	n := cfg.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxReceiverShards {
		n = maxReceiverShards
	}
	// Round up to a power of two so shard routing is a mask, not a mod.
	for n&(n-1) != 0 {
		n++
	}
	r := &Receiver{
		cfg:       cfg,
		met:       newReceiverMetrics(reg),
		trace:     cfg.Trace,
		shards:    make([]recvShard, n),
		shardMask: uint64(n - 1),
	}
	perShard := (cfg.MaxPending + n - 1) / n
	for i := range r.shards {
		sh := &r.shards[i]
		sh.pending = make(map[uint64]*list.Element)
		sh.order = list.New()
		sh.closed = make(map[uint64]struct{})
		sh.closedFIFO = make([]uint64, 0, closedMemoryFactor*perShard)
		sh.maxPending = perShard
		label := obs.Label{Key: "shard", Value: strconv.Itoa(i)}
		sh.depth = reg.Gauge("remicss_receiver_shard_pending", label)
		sh.evictions = reg.Counter("remicss_receiver_shard_evictions_total", label)
	}
	return r, nil
}

// shardFor routes a sequence number to its shard. Senders assign seqs
// sequentially, so the raw low bits would stripe neighbors onto neighboring
// shards but correlate with any power-of-two traffic pattern; the shared
// splitmix64 finalizer (internal/shardix, also used by the gateway's
// session table) decorrelates them before masking.
func (r *Receiver) shardFor(seq uint64) *recvShard {
	return &r.shards[shardix.Index(seq, r.shardMask)]
}

// Metrics returns the registry holding the receiver's series (the one
// from ReceiverConfig.Metrics, or the private registry created in its
// absence), for exposition via internal/obs writers.
func (r *Receiver) Metrics() *obs.Registry { return r.met.reg }

// Stats returns a snapshot of the receiver counters. Counters are atomic,
// so the snapshot does not block concurrent ingest.
func (r *Receiver) Stats() ReceiverStats {
	return ReceiverStats{
		SharesReceived:   r.met.sharesReceived.Value(),
		SharesInvalid:    r.met.sharesInvalid.Value(),
		SharesDuplicate:  r.met.sharesDuplicate.Value(),
		SharesLate:       r.met.sharesLate.Value(),
		SymbolsDelivered: r.met.symbolsDeliv.Value(),
		SymbolsEvicted:   r.met.symbolsEvicted.Value(),
		CombineFailures:  r.met.combineFailures.Value(),
	}
}

// Pending returns the number of reassembly entries held across all shards
// (including delivered tombstones awaiting timeout).
func (r *Receiver) Pending() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n += sh.order.Len()
		sh.mu.Unlock()
	}
	return n
}

// HandleDatagram processes one received share datagram. The buffer is only
// read, never retained or mutated, so callers may reuse it immediately.
// Concurrent calls from multiple transport goroutines contend only when
// their datagrams hash to the same reassembly shard; completed symbols are
// delivered one at a time under a separate delivery mutex.
func (r *Receiver) HandleDatagram(buf []byte) {
	r.met.datagrams.Inc()
	now := r.cfg.Clock()

	// Unmarshal is read-only on buf and needs no lock; only the chosen
	// shard is locked for the reassembly bookkeeping.
	pkt, err := wire.Unmarshal(buf)
	if err != nil {
		r.met.sharesInvalid.Inc()
		return
	}
	secret, delay, deliver := r.ingest(r.shardFor(pkt.Seq), &pkt, now)
	if !deliver {
		return
	}
	// The shard lock is already released: reconstruction of other symbols
	// proceeds while this delivery runs. deliverMu keeps the OnSymbol
	// contract — one callback at a time — across shards.
	r.deliverMu.Lock()
	r.trace.Record(obs.EventSymbolDelivered, -1, now, pkt.Seq, int64(delay))
	r.cfg.OnSymbol(pkt.Seq, secret, delay) //lint:allow lockorder deliverMu exists to serialize the delivery callback; OnSymbol must not reenter the receiver
	r.deliverMu.Unlock()
}

// ingest runs the reassembly state machine for one parsed share under its
// shard's lock. It returns the reconstructed secret when this share
// completed the symbol; the caller performs the delivery after releasing
// the shard lock.
func (r *Receiver) ingest(sh *recvShard, pkt *wire.SharePacket, now time.Duration) ([]byte, time.Duration, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()

	r.evictExpired(sh, now)

	elem, exists := sh.pending[pkt.Seq]
	if !exists {
		if _, wasClosed := sh.closed[pkt.Seq]; wasClosed {
			// The symbol's tombstone has already been evicted; reopening
			// the sequence would deliver the symbol a second time once k
			// stray shares accumulate. Count the straggler as late.
			r.met.sharesLate.Inc()
			return nil, 0, false
		}
		r.admit(sh)
		e := entryPool.Get().(*entry)
		e.seq = pkt.Seq
		e.k, e.m = int(pkt.K), int(pkt.M)
		e.sentAt = pkt.SentAt
		e.arrived = now
		e.haveIdx = 0
		e.done = false
		elem = sh.order.PushBack(e)
		sh.pending[pkt.Seq] = elem
		r.met.pending.Add(1)
		sh.depth.Set(int64(sh.order.Len()))
	}
	e := elem.Value.(*entry)

	if e.done {
		r.met.sharesLate.Inc()
		return nil, 0, false
	}
	if int(pkt.K) != e.k || int(pkt.M) != e.m {
		// Shares of one symbol must agree on parameters; the first share
		// seen wins and inconsistent ones are discarded.
		r.met.sharesInvalid.Inc()
		return nil, 0, false
	}
	if e.haveIdx&(1<<uint(pkt.Index)) != 0 {
		r.met.sharesDuplicate.Inc()
		return nil, 0, false
	}
	e.haveIdx |= 1 << uint(pkt.Index)
	data := e.grabBuf(len(pkt.Payload))
	copy(data, pkt.Payload)
	e.shares = append(e.shares, sharing.Share{Index: int(pkt.Index), Data: data})
	r.met.sharesReceived.Inc()

	if len(e.shares) < e.k {
		return nil, 0, false
	}
	// A nil destination makes CombineInto allocate a fresh secret, whose
	// ownership transfers to the callback (downstream consumers such as
	// stream.Orderer retain payloads).
	secret, err := sharing.CombineInto(r.cfg.Scheme, nil, e.shares, e.k, e.m)
	if err != nil {
		r.met.combineFailures.Inc()
		// Leave the entry; a later consistent share set cannot form since
		// indices are unique, so mark done to stop retrying.
		e.done = true
		e.recycleShares()
		return nil, 0, false
	}
	e.done = true
	e.recycleShares()
	r.met.symbolsDeliv.Inc()
	delay := now - time.Duration(e.sentAt)
	r.met.delay.Observe(int64(delay))
	return secret, delay, true
}

// Tick performs timeout eviction across every shard; call it periodically
// when no datagrams are arriving so stale entries do not linger.
func (r *Receiver) Tick() {
	now := r.cfg.Clock()
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		r.evictExpired(sh, now)
		sh.mu.Unlock()
	}
}

// evictExpired drops the shard's entries older than the timeout (oldest
// first).
//
//lint:allow mutexguard callers hold sh.mu
func (r *Receiver) evictExpired(sh *recvShard, now time.Duration) {
	for {
		front := sh.order.Front()
		if front == nil {
			return
		}
		e := front.Value.(*entry)
		if now-e.arrived < r.cfg.Timeout {
			return
		}
		r.drop(sh, front, e, now)
	}
}

// admit makes room for a new entry under the shard's slice of the memory
// cap.
//
//lint:allow mutexguard callers hold sh.mu
func (r *Receiver) admit(sh *recvShard) {
	for sh.order.Len() >= sh.maxPending {
		front := sh.order.Front()
		e := front.Value.(*entry)
		r.drop(sh, front, e, e.arrived+r.cfg.Timeout)
	}
}

// rememberClosed records a tombstone's sequence number in the shard's
// bounded closed-symbol memory, evicting the oldest remembered seq once
// the ring is full.
//
//lint:allow mutexguard callers hold sh.mu
func (sh *recvShard) rememberClosed(seq uint64) {
	if len(sh.closedFIFO) < cap(sh.closedFIFO) {
		sh.closedFIFO = append(sh.closedFIFO, seq)
	} else {
		delete(sh.closed, sh.closedFIFO[sh.closedHead])
		sh.closedFIFO[sh.closedHead] = seq
		sh.closedHead = (sh.closedHead + 1) % len(sh.closedFIFO)
	}
	sh.closed[seq] = struct{}{}
}

// drop removes one reassembly entry from its shard and recycles it. now is
// the eviction timestamp for trace purposes.
//
//lint:allow mutexguard callers hold sh.mu
func (r *Receiver) drop(sh *recvShard, elem *list.Element, e *entry, now time.Duration) {
	sh.order.Remove(elem)
	delete(sh.pending, e.seq)
	if e.done {
		// Delivered (or combine-failed) symbols must never be re-admitted
		// by stragglers; remember the closed seq.
		sh.rememberClosed(e.seq)
	} else {
		r.met.symbolsEvicted.Inc()
		sh.evictions.Inc()
		r.trace.Record(obs.EventSymbolEvicted, -1, now, e.seq, int64(len(e.shares)))
	}
	r.met.pending.Add(-1)
	sh.depth.Set(int64(sh.order.Len()))
	e.recycleShares()
	entryPool.Put(e)
}
