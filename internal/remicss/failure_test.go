package remicss

import (
	"math/rand"
	"testing"
	"time"

	"remicss/internal/netem"
	"remicss/internal/sharing"
	"remicss/internal/wire"
)

// TestDynamicChooserSurvivesChannelDeath kills a channel mid-stream; the
// dynamic chooser must route around it and keep delivering as long as
// enough channels survive for m.
func TestDynamicChooserSurvivesChannelDeath(t *testing.T) {
	eng := netem.NewEngine()
	scheme := sharing.NewAuto(rand.New(rand.NewSource(1)))
	delivered := 0
	recv, err := NewReceiver(ReceiverConfig{
		Scheme:   scheme,
		Clock:    eng.Now,
		OnSymbol: func(uint64, []byte, time.Duration) { delivered++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	var netLinks []*netem.Link
	links := make([]Link, 5)
	for i := range links {
		l, err := netem.NewLink(eng, netem.LinkConfig{Rate: 1000},
			rand.New(rand.NewSource(int64(i)+2)),
			func(p []byte, _ time.Duration) { recv.HandleDatagram(p) })
		if err != nil {
			t.Fatal(err)
		}
		netLinks = append(netLinks, l)
		links[i] = l
	}
	chooser, err := NewDynamicChooser(2, 3, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	snd, err := NewSender(SenderConfig{Scheme: scheme, Chooser: chooser, Clock: eng.Now}, links)
	if err != nil {
		t.Fatal(err)
	}

	sent := 0
	var offer func()
	offer = func() {
		if err := snd.Send([]byte{byte(sent)}); err == nil {
			sent++
		}
		if eng.Now() < 2*time.Second {
			eng.Schedule(2*time.Millisecond, offer)
		}
	}
	eng.Schedule(0, offer)
	// Kill two channels partway through: 3 remain, still >= m = 3..4?
	// mu=3 dithers m in {3}; exactly 3 channels remain, so sending can
	// continue on the survivors.
	eng.Schedule(time.Second, func() {
		netLinks[0].SetDown(true)
		netLinks[4].SetDown(true)
	})
	eng.Run(2 * time.Second)
	eng.RunUntilIdle()

	if delivered != sent {
		t.Errorf("delivered %d of %d sent symbols", delivered, sent)
	}
	if sent < 500 {
		t.Errorf("only %d symbols sent; chooser did not keep up after failure", sent)
	}
	// The downed channels must not have carried anything after death:
	// their post-death share counts stay flat (we check drops accrued).
	if netLinks[0].Stats().Dropped == 0 && netLinks[4].Stats().Dropped != 0 {
		t.Log("no shares even attempted on dead channels (chooser skipped them)")
	}
}

// TestTooFewSurvivorsBackpressure: when fewer channels survive than m, the
// sender reports backpressure instead of sending undersized splits.
func TestTooFewSurvivorsBackpressure(t *testing.T) {
	eng := netem.NewEngine()
	scheme := sharing.NewAuto(rand.New(rand.NewSource(1)))
	var netLinks []*netem.Link
	links := make([]Link, 3)
	for i := range links {
		l, err := netem.NewLink(eng, netem.LinkConfig{Rate: 1000},
			rand.New(rand.NewSource(int64(i)+2)), nil)
		if err != nil {
			t.Fatal(err)
		}
		netLinks = append(netLinks, l)
		links[i] = l
	}
	chooser, err := NewDynamicChooser(2, 3, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	snd, err := NewSender(SenderConfig{Scheme: scheme, Chooser: chooser, Clock: eng.Now}, links)
	if err != nil {
		t.Fatal(err)
	}
	netLinks[1].SetDown(true)
	for i := 0; i < 10; i++ {
		if err := snd.Send([]byte{1}); err == nil {
			t.Fatal("send succeeded with only 2 of 3 channels for m=3")
		}
	}
	if got := snd.Stats().SymbolsStalled; got != 10 {
		t.Errorf("stalled = %d, want 10", got)
	}
}

// TestReceiverHandlesReorderedShares delivers shares of interleaved symbols
// out of order; reassembly must still complete every symbol.
func TestReceiverHandlesReorderedShares(t *testing.T) {
	scheme := sharing.NewAuto(rand.New(rand.NewSource(5)))
	delivered := map[uint64][]byte{}
	recv, err := NewReceiver(ReceiverConfig{
		Scheme:   scheme,
		Clock:    func() time.Duration { return 0 },
		OnSymbol: func(seq uint64, p []byte, _ time.Duration) { delivered[seq] = p },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Build shares for 20 symbols, then deliver all shares shuffled.
	var datagrams [][]byte
	for seq := uint64(0); seq < 20; seq++ {
		payload := []byte{byte(seq), 0xEE}
		shares, err := scheme.Split(payload, 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range shares {
			buf, err := wire.Marshal(wire.SharePacket{
				Seq: seq, K: 2, M: 3, Index: uint8(sh.Index), Payload: sh.Data,
			})
			if err != nil {
				t.Fatal(err)
			}
			datagrams = append(datagrams, buf)
		}
	}
	rng := rand.New(rand.NewSource(6))
	rng.Shuffle(len(datagrams), func(i, j int) {
		datagrams[i], datagrams[j] = datagrams[j], datagrams[i]
	})
	for _, d := range datagrams {
		recv.HandleDatagram(d)
	}
	if len(delivered) != 20 {
		t.Fatalf("delivered %d of 20 symbols", len(delivered))
	}
	for seq, p := range delivered {
		if p[0] != byte(seq) {
			t.Errorf("symbol %d corrupted", seq)
		}
	}
	if got := recv.Stats().SharesLate; got != 20 {
		// Each symbol has 3 shares, completion at the 2nd, 3rd arrives late.
		t.Errorf("late shares = %d, want 20", got)
	}
}

// TestEndToEndWithJitterAndLoss is a torture run: every channel jittery and
// lossy, interleaved reassembly with eviction under memory pressure.
func TestEndToEndWithJitterAndLoss(t *testing.T) {
	eng := netem.NewEngine()
	scheme := sharing.NewAuto(rand.New(rand.NewSource(7)))
	delivered := 0
	recv, err := NewReceiver(ReceiverConfig{
		Scheme:     scheme,
		Clock:      eng.Now,
		OnSymbol:   func(uint64, []byte, time.Duration) { delivered++ },
		Timeout:    300 * time.Millisecond,
		MaxPending: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	links := make([]Link, 5)
	for i := range links {
		l, err := netem.NewLink(eng, netem.LinkConfig{
			Rate:   2000,
			Loss:   0.05,
			Delay:  time.Duration(i+1) * 2 * time.Millisecond,
			Jitter: 4 * time.Millisecond,
		}, rand.New(rand.NewSource(int64(i)+8)),
			func(p []byte, _ time.Duration) { recv.HandleDatagram(p) })
		if err != nil {
			t.Fatal(err)
		}
		links[i] = l
	}
	chooser, err := NewDynamicChooser(2, 4, rand.New(rand.NewSource(20)))
	if err != nil {
		t.Fatal(err)
	}
	snd, err := NewSender(SenderConfig{Scheme: scheme, Chooser: chooser, Clock: eng.Now}, links)
	if err != nil {
		t.Fatal(err)
	}
	sent := 0
	var offer func()
	offer = func() {
		if err := snd.Send([]byte{byte(sent), byte(sent >> 8)}); err == nil {
			sent++
		}
		if eng.Now() < 3*time.Second {
			eng.Schedule(time.Millisecond, offer)
		}
	}
	eng.Schedule(0, offer)
	eng.Run(3 * time.Second)
	eng.RunUntilIdle()

	if sent == 0 {
		t.Fatal("nothing sent")
	}
	// k=2 of m=4 with 5% share loss: symbol loss ~ P(>=3 of 4 lost) ~ 5e-4.
	lossFrac := 1 - float64(delivered)/float64(sent)
	if lossFrac > 0.01 {
		t.Errorf("symbol loss %v too high for k=2, m=4 at 5%% share loss", lossFrac)
	}
}
