package remicss

import (
	"math/rand"
	"testing"
	"time"

	"remicss/internal/netem"
	"remicss/internal/sharing"
	"remicss/internal/wire"
)

func TestReportRoundtrip(t *testing.T) {
	rep := wire.ReportPacket{Epoch: 3, Delivered: 100, Evicted: 2, Pending: 7}
	buf := wire.MarshalReport(rep)
	got, err := wire.UnmarshalReport(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != rep {
		t.Errorf("roundtrip = %+v, want %+v", got, rep)
	}
}

func TestReportRejectsCorruption(t *testing.T) {
	buf := wire.MarshalReport(wire.ReportPacket{Epoch: 1, Delivered: 5})
	buf[10] ^= 0xFF
	if _, err := wire.UnmarshalReport(buf); err == nil {
		t.Error("corrupted report accepted")
	}
	if _, err := wire.UnmarshalReport(buf[:10]); err == nil {
		t.Error("short report accepted")
	}
	junk := append([]byte(nil), buf...)
	junk[0] = 'X'
	if _, err := wire.UnmarshalReport(junk); err == nil {
		t.Error("wrong magic accepted")
	}
}

func TestReceiverMakeReportDeltas(t *testing.T) {
	scheme := sharing.NewAuto(rand.New(rand.NewSource(1)))
	recv, err := NewReceiver(ReceiverConfig{
		Scheme:   scheme,
		Clock:    func() time.Duration { return 0 },
		OnSymbol: func(uint64, []byte, time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	deliver := func(seq uint64) {
		shares, err := scheme.Split([]byte{byte(seq)}, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := wire.Marshal(wire.SharePacket{
			Seq: seq, K: 1, M: 1, Index: 0, Payload: shares[0].Data,
		})
		if err != nil {
			t.Fatal(err)
		}
		recv.HandleDatagram(buf)
	}
	deliver(0)
	deliver(1)
	rep1, err := wire.UnmarshalReport(recv.MakeReport())
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Epoch != 0 || rep1.Delivered != 2 {
		t.Errorf("first report = %+v", rep1)
	}
	deliver(2)
	rep2, err := wire.UnmarshalReport(recv.MakeReport())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Epoch != 1 || rep2.Delivered != 1 {
		t.Errorf("second report = %+v (deltas expected)", rep2)
	}
}

func TestFeedbackStateIngest(t *testing.T) {
	var f FeedbackState
	r0 := wire.MarshalReport(wire.ReportPacket{Epoch: 0, Delivered: 10})
	r1 := wire.MarshalReport(wire.ReportPacket{Epoch: 1, Delivered: 5, Evicted: 1})
	if !f.Ingest(r0) {
		t.Error("valid report rejected")
	}
	if f.Ingest(r0) {
		t.Error("duplicate epoch accepted")
	}
	if !f.Ingest(r1) {
		t.Error("next epoch rejected")
	}
	if f.Ingest([]byte("junk")) {
		t.Error("junk accepted")
	}
	if got := f.Reports(); got != 2 {
		t.Errorf("reports = %d", got)
	}
	// 20 sent, 15 delivered -> 25% loss.
	if got := f.LossSince(20); got != 0.25 {
		t.Errorf("loss = %v, want 0.25", got)
	}
	// Counters consumed.
	if got := f.LossSince(10); got != 1 {
		t.Errorf("loss after consume = %v, want 1 (nothing delivered)", got)
	}
	if got := f.LossSince(0); got != 0 {
		t.Errorf("loss with nothing sent = %v", got)
	}
}

// TestFeedbackOverReverseChannel runs the full loop in simulation: shares
// forward over lossy channels, reports back over a reverse channel, and the
// sender's loss estimate matches the receiver's ground truth.
func TestFeedbackOverReverseChannel(t *testing.T) {
	eng := netem.NewEngine()
	scheme := sharing.NewAuto(rand.New(rand.NewSource(1)))
	recv, err := NewReceiver(ReceiverConfig{
		Scheme:   scheme,
		Clock:    eng.Now,
		Timeout:  100 * time.Millisecond,
		OnSymbol: func(uint64, []byte, time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	links := make([]Link, 3)
	for i := range links {
		l, err := netem.NewLink(eng, netem.LinkConfig{Rate: 2000, Loss: 0.3},
			rand.New(rand.NewSource(int64(i)+2)),
			func(p []byte, _ time.Duration) { recv.HandleDatagram(p) })
		if err != nil {
			t.Fatal(err)
		}
		links[i] = l
	}
	var feedback FeedbackState
	reverse, err := netem.NewLink(eng, netem.LinkConfig{Rate: 1000, Delay: 5 * time.Millisecond},
		rand.New(rand.NewSource(99)),
		func(p []byte, _ time.Duration) { feedback.Ingest(p) })
	if err != nil {
		t.Fatal(err)
	}

	snd, err := NewSender(SenderConfig{
		Scheme:  scheme,
		Chooser: FixedChooser{K: 2, Mask: 0b111}, // k=2 of 3 at 30% loss: real symbol loss
		Clock:   eng.Now,
	}, links)
	if err != nil {
		t.Fatal(err)
	}

	sent := 0
	var offer func()
	offer = func() {
		if err := snd.Send([]byte{byte(sent)}); err == nil {
			sent++
		}
		if eng.Now() < 4*time.Second {
			eng.Schedule(2*time.Millisecond, offer)
		}
	}
	var report func()
	report = func() {
		recv.Tick()
		reverse.Send(recv.MakeReport())
		if eng.Now() < 5*time.Second {
			eng.Schedule(250*time.Millisecond, report)
		}
	}
	eng.Schedule(0, offer)
	eng.Schedule(250*time.Millisecond, report)
	eng.Run(5 * time.Second)
	eng.RunUntilIdle()

	if feedback.Reports() < 10 {
		t.Fatalf("only %d reports arrived", feedback.Reports())
	}
	senderLoss := feedback.LossSince(int64(sent))
	truth := 1 - float64(recv.Stats().SymbolsDelivered)/float64(sent)
	if diff := senderLoss - truth; diff > 0.02 || diff < -0.02 {
		t.Errorf("sender loss estimate %v vs ground truth %v", senderLoss, truth)
	}
	// Sanity: with k=2, m=3, loss .3/channel: symbol loss = P(>=2 of 3 lost)
	// = 3(.3²)(.7)+.3³ = .216.
	if truth < 0.15 || truth > 0.28 {
		t.Errorf("ground truth loss %v outside expected band around 0.216", truth)
	}
}
