package remicss

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
	"time"

	"remicss/internal/sharing"
)

// chanLink copies each accepted datagram into a channel, modeling a
// transport that honors the no-retention contract while handing ingest to
// a separate goroutine per channel.
type chanLink struct{ ch chan []byte }

func (l *chanLink) Send(datagram []byte) bool {
	l.ch <- append([]byte(nil), datagram...)
	return true
}

func (l *chanLink) Writable() bool         { return true }
func (l *chanLink) Backlog() time.Duration { return 0 }

// TestConcurrentSendAndIngest drives one sender from several goroutines
// while the receiver ingests from one goroutine per channel — the
// concurrency shape of a real multi-socket deployment, in-process and
// deterministic. Run under -race this exercises the locking of both
// halves; the assertions check that every symbol survives the interleaving
// intact.
func TestConcurrentSendAndIngest(t *testing.T) {
	for _, tc := range []struct {
		name string
		k    int
	}{
		{"replication-k1", 1},
		{"shamir-k2", 2},
		{"xor-k3", 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const (
				channels  = 3
				senders   = 4
				perSender = 200
			)
			total := senders * perSender

			var mu sync.Mutex
			seen := make(map[uint64]bool, total)
			recv, err := NewReceiver(ReceiverConfig{
				Scheme: sharing.NewAuto(rand.New(rand.NewSource(1))),
				Clock:  func() time.Duration { return 0 },
				OnSymbol: func(seq uint64, payload []byte, _ time.Duration) {
					id := binary.BigEndian.Uint64(payload)
					mu.Lock()
					defer mu.Unlock()
					if seen[id] {
						t.Errorf("id %d delivered twice", id)
					}
					seen[id] = true
					for _, b := range payload[8:] {
						if b != byte(id) {
							t.Errorf("id %d: corrupted payload", id)
							break
						}
					}
				},
				Timeout:    time.Hour,
				MaxPending: 2 * total,
				Shards:     8, // exercise cross-shard ingest regardless of host GOMAXPROCS
			})
			if err != nil {
				t.Fatal(err)
			}

			links := make([]Link, channels)
			var ingest sync.WaitGroup
			for i := range links {
				l := &chanLink{ch: make(chan []byte, 64)}
				links[i] = l
				ingest.Add(1)
				go func() {
					defer ingest.Done()
					for d := range l.ch {
						recv.HandleDatagram(d)
					}
				}()
			}

			// The sender's scheme must use concurrency-safe randomness
			// (the shared DRBG pool via nil): splits run outside the sender
			// lock, so a seeded *math/rand.Rand here would race.
			sender, err := NewSender(SenderConfig{
				Scheme:  sharing.NewAuto(nil),
				Chooser: FixedChooser{K: tc.k, Mask: 1<<channels - 1},
				Clock:   func() time.Duration { return 0 },
			}, links)
			if err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			for g := 0; g < senders; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					payload := make([]byte, 64)
					for i := 0; i < perSender; i++ {
						id := uint64(g*perSender + i)
						binary.BigEndian.PutUint64(payload, id)
						for j := 8; j < len(payload); j++ {
							payload[j] = byte(id)
						}
						if err := sender.Send(payload); err != nil {
							t.Errorf("goroutine %d: %v", g, err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			for _, l := range links {
				close(l.(*chanLink).ch)
			}
			ingest.Wait()

			if len(seen) != total {
				t.Errorf("delivered %d of %d symbols", len(seen), total)
			}
			if got := sender.Seq(); got != uint64(total) {
				t.Errorf("sender assigned %d sequence numbers, want %d", got, total)
			}
			st := recv.Stats()
			if st.SymbolsDelivered != int64(total) {
				t.Errorf("receiver delivered %d, want %d", st.SymbolsDelivered, total)
			}
			if st.SharesInvalid != 0 || st.CombineFailures != 0 {
				t.Errorf("invalid shares %d, combine failures %d — buffer reuse is leaking across goroutines",
					st.SharesInvalid, st.CombineFailures)
			}
		})
	}
}
