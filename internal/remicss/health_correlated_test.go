package remicss

import (
	"math/bits"
	"math/rand"
	"testing"
	"time"

	"remicss/internal/core"
	"remicss/internal/obs"
	"remicss/internal/schedule"
)

// TestHealthChooserResolveCorrelated: the correlated resolve mode must keep
// every invariant of the independent path — threshold floor k >= ⌊κ⌋, masks
// restricted to writable channels, failover re-solves, cache hits on
// recovery — while projecting the shared-risk groups onto the survivor set.
func TestHealthChooserResolveCorrelated(t *testing.T) {
	set := core.Set{
		{Risk: 0.1, Loss: 0.01, Delay: 10 * time.Millisecond, Rate: 1000},
		{Risk: 0.2, Loss: 0.02, Delay: 20 * time.Millisecond, Rate: 800},
		{Risk: 0.3, Loss: 0.05, Delay: 30 * time.Millisecond, Rate: 600},
		{Risk: 0.15, Loss: 0.03, Delay: 15 * time.Millisecond, Rate: 900},
	}
	corr := core.Correlation{Groups: []core.RiskGroup{
		{Mask: 0b0011, RiskRho: 0.7, LossRho: 0.5},
	}}
	clock := &fakeClock{}
	reg := obs.NewRegistry()
	tr, err := NewHealthTracker(HealthConfig{}, 4, clock.Now, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	const kappa, mu = 2, 3
	ch, err := NewHealthChooser(kappa, mu, tr, rand.New(rand.NewSource(5)),
		ResolveCorrelated(set, corr, schedule.ObjectiveRisk))
	if err != nil {
		t.Fatal(err)
	}
	links := make([]Link, 4)
	fakes := make([]*healthLink, 4)
	for i := range links {
		fakes[i] = &healthLink{writable: true, accept: true}
		links[i] = fakes[i]
	}
	check := func(label string, excluded ...int) {
		t.Helper()
		for i := 0; i < 200; i++ {
			k, mask, ok := ch.Choose(links)
			if !ok {
				t.Fatalf("%s: stalled", label)
			}
			if k < 2 {
				t.Fatalf("%s: threshold %d below floor 2", label, k)
			}
			if k > bits.OnesCount32(mask) {
				t.Fatalf("%s: k=%d > |M|=%d", label, k, bits.OnesCount32(mask))
			}
			for _, e := range excluded {
				if mask&(1<<uint(e)) != 0 {
					t.Fatalf("%s: mask %b uses excluded channel %d", label, mask, e)
				}
			}
		}
		if err := ch.ResolveErr(); err != nil {
			t.Fatalf("%s: resolve error: %v", label, err)
		}
	}
	check("full set")
	// Channel 1 — a group member — fails: the projection drops it from the
	// group and the LP re-solves over the 3 survivors.
	fakes[1].writable = false
	check("group member down", 1)
	// Channel 0 too: the whole group is gone and the projected model is
	// independent; still solvable at exactly ⌊κ⌋ survivors.
	fakes[0].writable = false
	check("group gone", 0, 1)
	// Recovery past the probe backoff revisits the full-set state, which
	// must be a correlated cache hit, not a fresh solve.
	clock.now = 10 * time.Second
	for _, f := range fakes {
		f.writable = true
	}
	check("restored")
	if hits := counterOn(t, reg, "remicss_schedule_cache_hits_total"); hits == 0 {
		t.Error("restored correlated resolve missed the schedule cache")
	}
}

// An out-of-range shared-risk group must be rejected at construction, not
// at first resolve.
func TestResolveCorrelatedValidates(t *testing.T) {
	set := core.Set{
		{Risk: 0.1, Loss: 0.01, Delay: 10 * time.Millisecond, Rate: 1000},
		{Risk: 0.2, Loss: 0.02, Delay: 20 * time.Millisecond, Rate: 800},
	}
	corr := core.Correlation{Groups: []core.RiskGroup{
		{Mask: 0b0110, RiskRho: 0.5}, // bit 2 out of range for n=2
	}}
	clock := &fakeClock{}
	tr, err := NewHealthTracker(HealthConfig{}, 2, clock.Now, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewHealthChooser(1, 2, tr, rand.New(rand.NewSource(1)),
		ResolveCorrelated(set, corr, schedule.ObjectiveRisk))
	if err == nil {
		t.Fatal("out-of-range group accepted")
	}
}
