package remicss

import (
	"fmt"
	"math"
	"math/rand" //lint:allow insecure-rand the chooser dithers share placement only; it never touches share material
	"time"

	"remicss/internal/core"
	"remicss/internal/schedule"
)

// Chooser decides, per source symbol, the threshold k and the subset of
// channels (as a bitmask over links) to carry its shares.
type Chooser interface {
	// Choose inspects the links and returns the threshold and channel mask
	// for the next symbol. ok is false if the choice cannot currently be
	// satisfied (e.g. not enough writable channels); the symbol is then
	// dropped or retried by the caller.
	Choose(links []Link) (k int, mask uint32, ok bool)
}

// DynamicChooser is the paper's dynamic share schedule: rather than
// computing an explicit distribution over (k, M), it picks the first m
// channels that are ready for writing. m and k are dithered between ⌊μ⌋/⌈μ⌉
// and ⌊κ⌋/⌈κ⌉ with a shared uniform draw, which yields exact averages μ and
// κ while guaranteeing k <= m for every symbol.
//
// Ready channels are taken in ascending order of transmit backlog
// (water-filling over queue space). On a real host, epoll readiness plus
// scheduling jitter spreads shares across channels the same way; in the
// deterministic simulator, taking ready channels in fixed index order
// instead locks identical channels into synchronized drain bursts and
// wastes capacity — the IndexOrder option exists to measure exactly that
// effect.
type DynamicChooser struct {
	kappa, mu float64
	rng       *rand.Rand
	// indexOrder reverts to fixed index-order channel selection (ablation).
	indexOrder bool
	// pending holds a (k, m) draw that could not be satisfied yet. The
	// reference protocol blocks until m channels are ready rather than
	// skipping the symbol, so the draw must survive failed attempts —
	// redrawing on every attempt would bias the realized μ downward (large
	// m draws stall more often and would be resampled away).
	pendingValid bool
	pendingK     int
	pendingM     int
	// ready and backlog are Choose scratch, reused across calls so the
	// per-symbol hot path stays allocation-free. A DynamicChooser must not
	// be shared between senders: Choose mutates the rng, the pending draw,
	// and this scratch (the owning Sender serializes its own calls).
	ready   []int
	backlog []time.Duration
}

// DynamicOption configures a DynamicChooser.
type DynamicOption func(*DynamicChooser)

// IndexOrder makes the chooser take ready channels in fixed index order
// instead of least-backlog order. This is the naive reading of "first m
// ready channels" and is measurably worse under deterministic timing; it
// exists as an ablation.
func IndexOrder() DynamicOption {
	return func(c *DynamicChooser) { c.indexOrder = true }
}

// NewDynamicChooser builds a dynamic chooser for targets 1 <= kappa <= mu.
// The rng must not be nil.
func NewDynamicChooser(kappa, mu float64, rng *rand.Rand, opts ...DynamicOption) (*DynamicChooser, error) {
	if math.IsNaN(kappa) || math.IsNaN(mu) || kappa < 1 || mu < kappa {
		return nil, fmt.Errorf("%w: kappa=%v, mu=%v", core.ErrInvalidParams, kappa, mu)
	}
	if rng == nil {
		return nil, fmt.Errorf("remicss: nil rng")
	}
	c := &DynamicChooser{kappa: kappa, mu: mu, rng: rng}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Choose implements Chooser.
//
//remicss:noalloc
func (c *DynamicChooser) Choose(links []Link) (int, uint32, bool) {
	if !c.pendingValid {
		// Comonotone dither: the same uniform drives both roundings, so
		// kappa <= mu implies k <= m symbol by symbol.
		u := c.rng.Float64()
		m := int(math.Floor(c.mu))
		if u < c.mu-math.Floor(c.mu) {
			m++
		}
		k := int(math.Floor(c.kappa))
		if u < c.kappa-math.Floor(c.kappa) {
			k++
		}
		c.pendingK, c.pendingM, c.pendingValid = k, m, true
	}
	k, m := c.pendingK, c.pendingM
	if m > len(links) {
		return 0, 0, false
	}

	ready := c.ready[:0]
	backlog := c.backlog[:0]
	for i, l := range links {
		if l.Writable() {
			ready = append(ready, i)
			backlog = append(backlog, l.Backlog())
		}
	}
	c.ready, c.backlog = ready, backlog
	if len(ready) < m {
		return 0, 0, false
	}
	if !c.indexOrder {
		// Stable insertion sort by backlog: sort.SliceStable's closure and
		// interface conversion allocate on every call, and readiness sets
		// are tiny (≤ 32 channels), so this keeps Choose allocation-free.
		// Backlogs are sampled once per link above rather than re-queried
		// per comparison.
		for i := 1; i < len(ready); i++ {
			for j := i; j > 0 && backlog[j] < backlog[j-1]; j-- {
				ready[j], ready[j-1] = ready[j-1], ready[j]
				backlog[j], backlog[j-1] = backlog[j-1], backlog[j]
			}
		}
	}
	var mask uint32
	for _, i := range ready[:m] {
		mask |= 1 << uint(i)
	}
	c.pendingValid = false
	return k, mask, true
}

// StaticChooser draws (k, M) i.i.d. from an explicit share schedule, such
// as an LP optimum from internal/schedule. It does not consult writability:
// if a chosen channel's queue is full the share is simply dropped by the
// link, exactly the best-effort semantics of the reference protocol.
type StaticChooser struct {
	sampler *schedule.Sampler
}

// NewStaticChooser builds a chooser sampling from sched over n channels.
func NewStaticChooser(sched core.Schedule, n int, rng *rand.Rand) (*StaticChooser, error) {
	sampler, err := schedule.NewSampler(sched, n, rng)
	if err != nil {
		return nil, err
	}
	return &StaticChooser{sampler: sampler}, nil
}

// Choose implements Chooser.
func (c *StaticChooser) Choose(links []Link) (int, uint32, bool) {
	a := c.sampler.Next()
	if int(a.Mask) >= 1<<uint(len(links)) {
		return 0, 0, false
	}
	return a.K, a.Mask, true
}

// FixedChooser always returns the same assignment; useful for tests and for
// MICSS-style operation (k = m = n on all channels).
type FixedChooser struct {
	// K and Mask define the constant assignment.
	K    int
	Mask uint32
}

// Choose implements Chooser.
func (c FixedChooser) Choose(links []Link) (int, uint32, bool) {
	if c.Mask == 0 || int(c.Mask) >= 1<<uint(len(links)) || c.K < 1 {
		return 0, 0, false
	}
	return c.K, c.Mask, true
}
