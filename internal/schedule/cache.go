package schedule

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"remicss/internal/core"
	"remicss/internal/lp"
	"remicss/internal/obs"
)

// SolveTier reports how a Cache resolved a schedule request. Ordered from
// cheapest to most expensive.
type SolveTier int

// Solve tiers, carried by the schedule-resolved trace event.
const (
	// TierCached: the quantized channel state hit the cache; no solve ran.
	TierCached SolveTier = iota
	// TierWarm: a cache miss solved by warm-starting the retained simplex
	// basis (any lp reuse tier better than cold).
	TierWarm
	// TierCold: a cache miss solved from scratch.
	TierCold
)

// String implements fmt.Stringer.
func (t SolveTier) String() string {
	switch t {
	case TierCached:
		return "cached"
	case TierWarm:
		return "warm"
	case TierCold:
		return "cold"
	default:
		return "tier(?)"
	}
}

// programKind distinguishes the two LP shapes a Cache serves; it is part of
// the cache key.
type programKind uint8

const (
	programSectionIVB programKind = iota + 1
	programMaxRate
	programLarge
)

// CacheConfig tunes a schedule Cache. The zero value selects the documented
// defaults.
type CacheConfig struct {
	// RiskStep, LossStep, DelayStep, and RateStep define the quantization
	// grid: channel properties are snapped to multiples of these steps
	// before keying and solving, so nearby channel states share one cache
	// entry (and one schedule). Coarser steps raise the hit rate at the
	// cost of schedule fidelity. Defaults: 0.01, 0.01, 5ms, 10 sym/s.
	RiskStep  float64
	LossStep  float64
	DelayStep time.Duration
	RateStep  float64
	// RhoStep quantizes correlation factors for OptimizeCorrelated keys
	// and solves, analogous to RiskStep for channel risk. Default 0.05.
	RhoStep float64
	// MaxEntries bounds the table size; beyond it the least-recently-used
	// quarter of entries is evicted. Default 1024.
	MaxEntries int
	// Options applies to every solve the cache performs.
	Options Options
	// Metrics, when non-nil, registers the cache and warm-solve counters.
	Metrics *obs.Registry
	// Trace, when non-nil, receives a schedule-resolved event (value =
	// solve tier) for every Optimize call. Now supplies event timestamps
	// and defaults to zero timestamps when nil.
	Trace *obs.Trace
	// Now supplies trace timestamps; see Trace.
	Now func() time.Duration
}

func (c CacheConfig) withDefaults() CacheConfig {
	if c.RiskStep <= 0 {
		c.RiskStep = 0.01
	}
	if c.LossStep <= 0 {
		c.LossStep = 0.01
	}
	if c.DelayStep <= 0 {
		c.DelayStep = 5 * time.Millisecond
	}
	if c.RateStep <= 0 {
		c.RateStep = 10
	}
	if c.RhoStep <= 0 {
		c.RhoStep = 0.05
	}
	if c.MaxEntries <= 0 {
		c.MaxEntries = 1024
	}
	return c
}

// cacheEntry is one immutable resolved schedule. Entries form collision
// chains; all fields except lastUsed are written once before publication.
type cacheEntry struct {
	next     *cacheEntry
	kind     programKind
	obj      Objective
	kappa    uint64 // float bits
	mu       uint64
	qchan    []int64 // 4 quantized values per channel
	qcorr    []int64 // 3 quantized values per shared-risk group; nil when uncorrelated
	sched    core.Schedule
	members  []int         // wide-program support compaction; nil for mask programs
	lastUsed atomic.Uint64 // generation clock at last touch
}

// cacheTable is the immutable published state of the cache. Readers load it
// atomically; writers replace it wholesale.
type cacheTable struct {
	entries map[uint64]*cacheEntry
	count   int
}

// Cache memoizes optimized share schedules keyed by quantized channel
// state, so steady-state adaptation (health failover, controller retuning)
// is a lock-free lookup instead of a linear-program solve. Misses fall back
// to a warm-started simplex re-solve on the retained basis, then to a cold
// solve — the three tiers of the solve path.
//
// The read path takes no locks and performs no allocation: it hashes the
// quantized channel state, walks an immutable table published by atomic
// pointer swap, and compares entries field-wise. Writes (misses) are
// serialized by a mutex and publish a fresh table. Schedules returned by
// the cache are shared and must not be mutated by callers.
//
// Because solves run on the quantized channel values, any two states that
// quantize equally produce byte-identical schedules — across goroutines and
// across cache instances with the same grid.
type Cache struct {
	cfg   CacheConfig
	table atomic.Pointer[cacheTable]
	gen   atomic.Uint64

	mu     sync.Mutex // serializes the miss path
	solver *lp.Solver // guarded by mu
	basis  *lp.Basis  // guarded by mu

	hits       *obs.Counter
	misses     *obs.Counter
	evictions  *obs.Counter
	warmSolves *obs.Counter
	warmPivots *obs.Counter
}

// NewCache builds a schedule cache.
func NewCache(cfg CacheConfig) *Cache {
	c := &Cache{cfg: cfg.withDefaults(), solver: lp.NewSolver()}
	if reg := c.cfg.Metrics; reg != nil {
		c.hits = reg.Counter("remicss_schedule_cache_hits_total")
		c.misses = reg.Counter("remicss_schedule_cache_misses_total")
		c.evictions = reg.Counter("remicss_schedule_cache_evictions_total")
		c.warmSolves = reg.Counter("lp_warm_solves_total")
		c.warmPivots = reg.Counter("lp_warm_pivots_total")
	}
	return c
}

// Optimize is the cached form of Optimize: it resolves the Section IV-B
// program for the channel state quantized to the cache's grid, returning
// the schedule and the tier that produced it.
func (c *Cache) Optimize(s core.Set, kappa, mu float64, obj Objective) (core.Schedule, SolveTier, error) {
	return c.resolve(programSectionIVB, s, core.Correlation{}, kappa, mu, obj)
}

// OptimizeCorrelated is Optimize under a correlated-adversary model: the
// program is built with correlated risk/loss coefficients and — when the
// cache's Options set GroupExposureCap — per-group exposure rows. The
// correlation factors are quantized to the RhoStep grid and join the cache
// key, so health-driven rho drift within one grid cell stays a lock-free
// hit while a genuine regime change re-solves (warm-started, like any other
// miss). An empty model is exactly Optimize and shares its cache entries.
func (c *Cache) OptimizeCorrelated(s core.Set, corr core.Correlation, kappa, mu float64, obj Objective) (core.Schedule, SolveTier, error) {
	return c.resolve(programSectionIVB, s, corr, kappa, mu, obj)
}

// OptimizeAtMaxRate is the cached form of OptimizeAtMaxRate (the Section
// IV-D program). It shares the table and retained solver with Optimize;
// the program shape is part of the cache key.
func (c *Cache) OptimizeAtMaxRate(s core.Set, kappa, mu float64, obj Objective) (core.Schedule, SolveTier, error) {
	return c.resolve(programMaxRate, s, core.Correlation{}, kappa, mu, obj)
}

func (c *Cache) resolve(kind programKind, s core.Set, corr core.Correlation, kappa, mu float64, obj Objective) (core.Schedule, SolveTier, error) {
	if e, ok := c.lookup(kind, s, corr, kappa, mu, obj); ok {
		c.emit(TierCached)
		return e.sched, TierCached, nil
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	// Another goroutine may have resolved this state while we waited.
	if e, ok := c.lookup(kind, s, corr, kappa, mu, obj); ok {
		c.emit(TierCached)
		return e.sched, TierCached, nil
	}
	if c.misses != nil {
		c.misses.Inc()
	}

	// Solve on the quantized state, not the raw one: every state in this
	// grid cell must map to the same schedule bytes. The correlation model
	// is quantized the same way for the same reason.
	qs := c.quantizeSet(s)
	qc := c.quantizeCorr(corr)
	opts := c.cfg.Options
	if len(qc.Groups) > 0 {
		opts.Correlation = &qc
	}
	var (
		prob        lp.Problem
		assignments []core.Assignment
		err         error
	)
	switch kind {
	case programSectionIVB:
		prob, assignments, err = buildSectionIVB(qs, kappa, mu, obj, opts)
	case programMaxRate:
		prob, assignments, err = buildMaxRate(qs, kappa, mu, obj, opts)
	}
	if err != nil {
		return nil, TierCold, err
	}
	sol, tier, err := c.warmSolve(prob)
	if err != nil {
		return nil, TierCold, err
	}
	sched, err := solutionToSchedule(sol, assignments, qs.N())
	if err != nil {
		return nil, tier, err
	}

	c.insert(kind, qs, qc, kappa, mu, obj, sched, nil)
	c.emit(tier)
	return sched, tier, nil
}

// OptimizeLarge is the cached form of OptimizeLarge: the wide-assignment
// Section IV-B program for channel sets beyond the exact-enumeration cap,
// with the optimum compacted onto its support. The compacted schedule and
// its member mapping are cached together; like the mask programs, misses
// warm-start the retained solver (the wide program's constraint rows depend
// only on the generated candidate structure, so a risk drift that leaves
// the candidates unchanged re-solves from the prior vertex).
func (c *Cache) OptimizeLarge(s core.Set, kappa, mu float64, obj Objective) (core.Schedule, []int, SolveTier, error) {
	if e, ok := c.lookup(programLarge, s, core.Correlation{}, kappa, mu, obj); ok {
		c.emit(TierCached)
		return e.sched, e.members, TierCached, nil
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.lookup(programLarge, s, core.Correlation{}, kappa, mu, obj); ok {
		c.emit(TierCached)
		return e.sched, e.members, TierCached, nil
	}
	if c.misses != nil {
		c.misses.Inc()
	}

	qs := c.quantizeSet(s)
	prob, assignments, err := buildLarge(qs, kappa, mu, obj, c.cfg.Options)
	if err != nil {
		return nil, nil, TierCold, err
	}
	sol, tier, err := c.warmSolve(prob)
	if err != nil {
		return nil, nil, TierCold, err
	}
	sched, members, err := compactWideSolution(sol.X, assignments)
	if err != nil {
		return nil, nil, tier, err
	}

	c.insert(programLarge, qs, core.Correlation{}, kappa, mu, obj, sched, members)
	c.emit(tier)
	return sched, members, tier, nil
}

// warmSolve runs one program through the retained solver and classifies the
// outcome as a warm or cold tier, advancing the warm counters. Caller holds
// c.mu.
//
//lint:allow mutexguard both call sites (resolve, OptimizeLarge) hold c.mu across the call
func (c *Cache) warmSolve(prob lp.Problem) (lp.Solution, SolveTier, error) {
	sol, basis, err := c.solver.WarmSolve(c.basis, prob)
	if err != nil {
		c.basis = nil
		return lp.Solution{}, TierCold, wrapLPError(err)
	}
	c.basis = basis
	tier := TierCold
	if st := c.solver.LastStats(); st.Tier != lp.TierCold {
		tier = TierWarm
		if c.warmSolves != nil {
			c.warmSolves.Inc()
			c.warmPivots.Add(int64(st.Pivots))
		}
	}
	return sol, tier, nil
}

// lookup is the lock-free, allocation-free cache read path: hash the
// quantized state, walk the immutable table, compare field-wise.
//
//remicss:noalloc
func (c *Cache) lookup(kind programKind, s core.Set, corr core.Correlation, kappa, mu float64, obj Objective) (*cacheEntry, bool) {
	t := c.table.Load()
	if t == nil {
		return nil, false
	}
	h := c.hashState(kind, s, corr, kappa, mu, obj)
	for e := t.entries[h]; e != nil; e = e.next {
		if c.entryMatches(e, kind, s, corr, kappa, mu, obj) {
			e.lastUsed.Store(c.gen.Add(1))
			if c.hits != nil {
				c.hits.Inc()
			}
			return e, true
		}
	}
	return nil, false
}

// hashState folds the quantized channel state and program identity through
// a splitmix64-style mixer.
//
//remicss:noalloc
func (c *Cache) hashState(kind programKind, s core.Set, corr core.Correlation, kappa, mu float64, obj Objective) uint64 {
	h := mix64(uint64(kind), uint64(obj))
	h = mix64(h, uint64(len(s)))
	h = mix64(h, math.Float64bits(kappa))
	h = mix64(h, math.Float64bits(mu))
	for i := range s {
		h = mix64(h, uint64(c.quantRisk(s[i].Risk)))
		h = mix64(h, uint64(c.quantLoss(s[i].Loss)))
		h = mix64(h, uint64(c.quantDelay(s[i].Delay)))
		h = mix64(h, uint64(c.quantRate(s[i].Rate)))
	}
	// Only materially correlated groups reach the key, so an all-zero
	// model hashes identically to no model and shares its entries.
	for _, g := range corr.Groups {
		qr, ql := c.quantRho(g.RiskRho), c.quantRho(g.LossRho)
		if qr == 0 && ql == 0 {
			continue
		}
		h = mix64(h, uint64(g.Mask))
		h = mix64(h, uint64(qr))
		h = mix64(h, uint64(ql))
	}
	return h
}

// entryMatches compares an entry against a query state field-wise — hash
// collisions must never alias two distinct states.
//
//remicss:noalloc
func (c *Cache) entryMatches(e *cacheEntry, kind programKind, s core.Set, corr core.Correlation, kappa, mu float64, obj Objective) bool {
	if e.kind != kind || e.obj != obj ||
		e.kappa != math.Float64bits(kappa) || e.mu != math.Float64bits(mu) ||
		len(e.qchan) != 4*len(s) {
		return false
	}
	for i := range s {
		if e.qchan[4*i] != c.quantRisk(s[i].Risk) ||
			e.qchan[4*i+1] != c.quantLoss(s[i].Loss) ||
			e.qchan[4*i+2] != c.quantDelay(s[i].Delay) ||
			e.qchan[4*i+3] != c.quantRate(s[i].Rate) {
			return false
		}
	}
	// Compare the materially correlated groups (zero-quantized ones are
	// dropped from keys, so an all-zero model matches uncorrelated
	// entries) in order against the entry's stored triples.
	gi := 0
	for _, g := range corr.Groups {
		qr, ql := c.quantRho(g.RiskRho), c.quantRho(g.LossRho)
		if qr == 0 && ql == 0 {
			continue
		}
		if gi*3+3 > len(e.qcorr) ||
			e.qcorr[gi*3] != int64(g.Mask) ||
			e.qcorr[gi*3+1] != qr || e.qcorr[gi*3+2] != ql {
			return false
		}
		gi++
	}
	return gi*3 == len(e.qcorr)
}

//remicss:noalloc
func (c *Cache) quantRisk(z float64) int64 { return int64(math.Round(z / c.cfg.RiskStep)) }

//remicss:noalloc
func (c *Cache) quantLoss(l float64) int64 { return int64(math.Round(l / c.cfg.LossStep)) }

//remicss:noalloc
func (c *Cache) quantDelay(d time.Duration) int64 {
	return int64(math.Round(float64(d) / float64(c.cfg.DelayStep)))
}

//remicss:noalloc
func (c *Cache) quantRate(r float64) int64 { return int64(math.Round(r / c.cfg.RateStep)) }

//remicss:noalloc
func (c *Cache) quantRho(r float64) int64 { return int64(math.Round(r / c.cfg.RhoStep)) }

// mix64 is a splitmix64-style combining step.
//
//remicss:noalloc
func mix64(h, v uint64) uint64 {
	z := (h ^ v) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// quantizeSet snaps every channel to the grid. Quantized risk and loss are
// clamped back into their valid ranges (a loss snapped up to 1.0 would be
// an invalid channel).
func (c *Cache) quantizeSet(s core.Set) core.Set {
	qs := make(core.Set, len(s))
	for i, ch := range s {
		qs[i] = core.Channel{
			Risk:  clampProb(float64(c.quantRisk(ch.Risk)) * c.cfg.RiskStep),
			Loss:  math.Min(clampProb(float64(c.quantLoss(ch.Loss))*c.cfg.LossStep), 1-1e-9),
			Delay: time.Duration(c.quantDelay(ch.Delay)) * c.cfg.DelayStep,
			Rate:  math.Max(float64(c.quantRate(ch.Rate))*c.cfg.RateStep, c.cfg.RateStep/2),
		}
	}
	return qs
}

func clampProb(p float64) float64 { return math.Max(0, math.Min(1, p)) }

// quantizeCorr snaps correlation factors to the rho grid, dropping groups
// whose factors both quantize to zero — those are independence, and keying
// them would split one schedule across two entries.
func (c *Cache) quantizeCorr(corr core.Correlation) core.Correlation {
	var out core.Correlation
	for _, g := range corr.Groups {
		qr, ql := c.quantRho(g.RiskRho), c.quantRho(g.LossRho)
		if qr == 0 && ql == 0 {
			continue
		}
		out.Groups = append(out.Groups, core.RiskGroup{
			Mask:    g.Mask,
			RiskRho: clampProb(float64(qr) * c.cfg.RhoStep),
			LossRho: clampProb(float64(ql) * c.cfg.RhoStep),
		})
	}
	return out
}

// insert publishes a new table containing the entry, evicting the
// least-recently-used quarter when the table is full. Caller holds c.mu.
func (c *Cache) insert(kind programKind, qs core.Set, qc core.Correlation, kappa, mu float64, obj Objective, sched core.Schedule, members []int) {
	qchan := make([]int64, 0, 4*len(qs))
	for i := range qs {
		qchan = append(qchan,
			c.quantRisk(qs[i].Risk), c.quantLoss(qs[i].Loss),
			c.quantDelay(qs[i].Delay), c.quantRate(qs[i].Rate))
	}
	var qcorr []int64
	for _, g := range qc.Groups {
		qcorr = append(qcorr, int64(g.Mask), c.quantRho(g.RiskRho), c.quantRho(g.LossRho))
	}
	e := &cacheEntry{
		kind:    kind,
		obj:     obj,
		kappa:   math.Float64bits(kappa),
		mu:      math.Float64bits(mu),
		qchan:   qchan,
		qcorr:   qcorr,
		sched:   sched,
		members: members,
	}
	e.lastUsed.Store(c.gen.Add(1))

	old := c.table.Load()
	next := &cacheTable{entries: map[uint64]*cacheEntry{}}
	if old != nil {
		var floor uint64
		if old.count >= c.cfg.MaxEntries {
			floor = c.evictionFloor(old)
		}
		for h, head := range old.entries {
			for cur := head; cur != nil; cur = cur.next {
				if cur.lastUsed.Load() < floor {
					if c.evictions != nil {
						c.evictions.Inc()
					}
					continue
				}
				kept := &cacheEntry{
					next: next.entries[h], kind: cur.kind, obj: cur.obj,
					kappa: cur.kappa, mu: cur.mu, qchan: cur.qchan,
					qcorr: cur.qcorr, sched: cur.sched, members: cur.members,
				}
				kept.lastUsed.Store(cur.lastUsed.Load())
				next.entries[h] = kept
				next.count++
			}
		}
	}
	h := c.hashState(kind, qs, qc, kappa, mu, obj)
	e.next = next.entries[h]
	next.entries[h] = e
	next.count++
	c.table.Store(next)
}

// evictionFloor returns the lastUsed generation below which entries are
// dropped: the quartile boundary of the current table's recency values.
func (c *Cache) evictionFloor(t *cacheTable) uint64 {
	used := make([]uint64, 0, t.count)
	for _, head := range t.entries {
		for cur := head; cur != nil; cur = cur.next {
			used = append(used, cur.lastUsed.Load())
		}
	}
	sort.Slice(used, func(i, j int) bool { return used[i] < used[j] })
	idx := len(used) / 4
	if idx == 0 {
		idx = 1
	}
	if idx >= len(used) {
		return 0
	}
	return used[idx] + 1
}

// Len reports the number of cached schedules.
func (c *Cache) Len() int {
	if t := c.table.Load(); t != nil {
		return t.count
	}
	return 0
}

func (c *Cache) emit(tier SolveTier) {
	if c.cfg.Trace == nil {
		return
	}
	var at time.Duration
	if c.cfg.Now != nil {
		at = c.cfg.Now()
	}
	c.cfg.Trace.Record(obs.EventScheduleResolved, -1, at, 0, int64(tier))
}
