package schedule

import (
	"fmt"
	"sort"

	"remicss/internal/core"
	"remicss/internal/lp"
)

// OptimizeLarge solves the Section IV-B program for channel sets beyond the
// exhaustive-enumeration cap (hundreds of channels), using sampled/pruned
// wide-assignment generation. Because an optimal vertex of the three-row
// program has at most three positive entries, the support of the solution
// touches only a handful of channels; OptimizeLarge compacts the schedule
// onto that support so it fits the bitmask Schedule representation.
//
// It returns the compacted schedule together with the ascending list of
// original channel indices its masks refer to: bit i of a schedule mask
// selects channel members[i] of s. The compacted support is guaranteed to
// stay within mask range for practical µ; in the degenerate case where the
// solution's support unions to more than 32 channels an error is returned.
func OptimizeLarge(s core.Set, kappa, mu float64, obj Objective, opts Options) (core.Schedule, []int, error) {
	prob, assignments, err := buildLarge(s, kappa, mu, obj, opts)
	if err != nil {
		return nil, nil, err
	}
	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, nil, wrapLPError(err)
	}
	return compactWideSolution(sol.X, assignments)
}

// Program materializes the LP behind Optimize — or behind OptimizeLarge
// for sets beyond the exhaustive mask range — without solving it. It exists
// so the solve layer can be exercised on real schedule programs:
// cmd/remicss-bench's -schedule-json mode measures the cold two-phase
// simplex against warm-started re-solves of the program returned here.
func Program(s core.Set, kappa, mu float64, obj Objective, opts Options) (lp.Problem, error) {
	if s.Validate() == nil {
		prob, _, err := buildSectionIVB(s, kappa, mu, obj, opts)
		return prob, err
	}
	// Beyond the mask cap (or with an invalid channel, which buildLarge
	// rejects with the same error) the wide-assignment program applies.
	prob, _, err := buildLarge(s, kappa, mu, obj, opts)
	return prob, err
}

// buildLarge constructs the wide-assignment Section IV-B program: the same
// three rows as buildSectionIVB, with the choice set generated rather than
// enumerated and costs computed from member lists instead of masks. The
// solve layer is the caller's choice.
func buildLarge(s core.Set, kappa, mu float64, obj Objective, opts Options) (lp.Problem, []core.WideAssignment, error) {
	if len(s) == 0 {
		return lp.Problem{}, nil, fmt.Errorf("%w: empty channel set", core.ErrInvalidChannel)
	}
	for i, c := range s {
		if err := c.Validate(); err != nil {
			return lp.Problem{}, nil, fmt.Errorf("channel %d: %w", i, err)
		}
	}
	if err := s.CheckParams(kappa, mu); err != nil {
		return lp.Problem{}, nil, err
	}

	var cfg core.GenConfig
	if opts.Generate != nil {
		cfg = *opts.Generate
	}
	assignments := core.GenerateWideAssignments(s, kappa, mu, opts.Limited, cfg)
	if len(assignments) == 0 {
		return lp.Problem{}, nil, fmt.Errorf("%w: empty choice set", ErrInfeasible)
	}

	nv := len(assignments)
	prob := lp.Problem{
		C: make([]float64, nv),
		A: [][]float64{make([]float64, nv), make([]float64, nv), make([]float64, nv)},
		B: []float64{1, kappa, mu},
	}
	for j, a := range assignments {
		switch obj {
		case ObjectiveRisk:
			prob.C[j] = s.MembersRisk(a.K, a.Members)
		case ObjectiveLoss:
			prob.C[j] = s.MembersLoss(a.K, a.Members)
		case ObjectiveDelay:
			prob.C[j] = s.MembersDelay(a.K, a.Members)
		default:
			panic(fmt.Sprintf("schedule: unknown objective %d", int(obj)))
		}
		prob.A[0][j] = 1
		prob.A[1][j] = float64(a.K)
		prob.A[2][j] = float64(a.M())
	}
	return prob, assignments, nil
}

// compactWideSolution maps the positive entries of a wide LP solution onto
// the union of their member channels, renumbered 0..len(members)-1.
func compactWideSolution(x []float64, assignments []core.WideAssignment) (core.Schedule, []int, error) {
	inSupport := map[int]bool{}
	var support []int // indices into assignments
	for j, p := range x {
		if p > probabilityFloor {
			support = append(support, j)
			for _, i := range assignments[j].Members {
				inSupport[i] = true
			}
		}
	}
	if len(support) == 0 {
		return nil, nil, fmt.Errorf("schedule: solver produced empty support")
	}
	members := make([]int, 0, len(inSupport))
	for i := range inSupport {
		members = append(members, i)
	}
	sort.Ints(members)
	if len(members) > 32 {
		return nil, nil, fmt.Errorf("schedule: solution support spans %d channels, beyond mask range", len(members))
	}
	local := make(map[int]int, len(members))
	for li, i := range members {
		local[i] = li
	}

	sched := make(core.Schedule)
	var total float64
	for _, j := range support {
		var mask uint32
		for _, i := range assignments[j].Members {
			mask |= 1 << uint(local[i])
		}
		sched[core.Assignment{K: assignments[j].K, Mask: mask}] += x[j]
		total += x[j]
	}
	for a := range sched {
		sched[a] /= total
	}
	if err := sched.Validate(len(members)); err != nil {
		return nil, nil, fmt.Errorf("schedule: solver produced invalid schedule: %w", err)
	}
	return sched, members, nil
}
