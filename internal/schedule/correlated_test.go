package schedule

import (
	"math"
	"testing"
	"time"

	"remicss/internal/core"
)

func corrTestSet() core.Set {
	return core.Set{
		{Risk: 0.05, Loss: 0.01, Delay: 30 * time.Millisecond, Rate: 1000},
		{Risk: 0.05, Loss: 0.01, Delay: 30 * time.Millisecond, Rate: 1000},
		{Risk: 0.30, Loss: 0.02, Delay: 50 * time.Millisecond, Rate: 800},
		{Risk: 0.30, Loss: 0.05, Delay: 80 * time.Millisecond, Rate: 500},
	}
}

// An all-zero correlation model must produce the identical schedule: the
// program's coefficients are bit-equal, so the simplex walks the same path.
func TestOptimizeZeroCorrelationIdentical(t *testing.T) {
	s := corrTestSet()
	zero := core.Correlation{Groups: []core.RiskGroup{{Mask: 0b0011}}}
	for _, obj := range []Objective{ObjectiveRisk, ObjectiveLoss, ObjectiveDelay} {
		plain, err := Optimize(s, 2, 3, obj, Options{})
		if err != nil {
			t.Fatalf("%v plain: %v", obj, err)
		}
		corr, err := Optimize(s, 2, 3, obj, Options{Correlation: &zero})
		if err != nil {
			t.Fatalf("%v correlated: %v", obj, err)
		}
		if len(plain) != len(corr) {
			t.Fatalf("%v: support sizes differ: %d vs %d", obj, len(plain), len(corr))
		}
		for a, p := range plain {
			if corr[a] != p {
				t.Errorf("%v: p(%d,%b) = %v under zero model, %v independent", obj, a.K, a.Mask, corr[a], p)
			}
		}
	}
}

// A correlated risk objective shifts mass compared to the independent one
// when two cheap channels share a conduit: the model sees through the
// apparent diversity.
func TestOptimizeCorrelationChangesRisk(t *testing.T) {
	s := corrTestSet()
	corr := core.Correlation{Groups: []core.RiskGroup{{Mask: 0b0011, RiskRho: 0.9}}}
	plain, err := Optimize(s, 2, 2.5, ObjectiveRisk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Optimize(s, 2, 2.5, ObjectiveRisk, Options{Correlation: &corr})
	if err != nil {
		t.Fatal(err)
	}
	// The correlated schedule must beat the independent-optimal schedule
	// under the correlated measure (it optimizes that measure directly).
	if gz, pz := got.CorrelatedRisk(s, corr), plain.CorrelatedRisk(s, corr); gz > pz+1e-9 {
		t.Fatalf("correlated solve %v worse than independent schedule %v under correlated risk", gz, pz)
	}
}

// The per-group exposure rows must bind: capping a group's attributable
// exposure below the unconstrained optimum's level forces a feasible
// schedule that respects the cap, at a no-better objective.
func TestGroupExposureCapRespected(t *testing.T) {
	s := corrTestSet()
	corr := core.Correlation{Groups: []core.RiskGroup{{Mask: 0b0011, RiskRho: 0.9}}}

	free, err := Optimize(s, 2, 2.5, ObjectiveRisk, Options{Correlation: &corr})
	if err != nil {
		t.Fatal(err)
	}
	e0 := free.GroupExposure(s, corr, 0)
	if e0 <= 0 {
		t.Fatalf("unconstrained optimum has zero group exposure (%v); test setup broken", e0)
	}

	cap := e0 / 2
	capped, err := Optimize(s, 2, 2.5, ObjectiveRisk, Options{Correlation: &corr, GroupExposureCap: cap})
	if err != nil {
		t.Fatal(err)
	}
	if e := capped.GroupExposure(s, corr, 0); e > cap+1e-9 {
		t.Fatalf("capped schedule group exposure %v above cap %v", e, cap)
	}
	if zc, zf := capped.CorrelatedRisk(s, corr), free.CorrelatedRisk(s, corr); zc < zf-1e-9 {
		t.Fatalf("capped objective %v better than unconstrained %v", zc, zf)
	}
	// Parameter constraints still hold alongside the new rows.
	if k := free.Kappa(); math.Abs(capped.Kappa()-2) > 1e-6 || math.Abs(k-2) > 1e-6 {
		t.Fatalf("kappa drifted: capped %v free %v", capped.Kappa(), k)
	}
	if math.Abs(capped.Mu()-2.5) > 1e-6 {
		t.Fatalf("mu drifted: %v", capped.Mu())
	}
}

// The Section IV-E floor k >= ⌊κ⌋ (Theorem 5) must survive the correlated
// program: every support assignment keeps the limited-threat guarantee.
func TestCorrelatedLimitedKeepsThresholdFloor(t *testing.T) {
	s := corrTestSet()
	corr := core.Correlation{Groups: []core.RiskGroup{{Mask: 0b0011, RiskRho: 0.9}}}
	free, err := Optimize(s, 2.5, 3, ObjectiveRisk, Options{Limited: true, Correlation: &corr})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Optimize(s, 2.5, 3, ObjectiveRisk,
		Options{Limited: true, Correlation: &corr, GroupExposureCap: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []core.Schedule{free, capped} {
		for a := range sched {
			if a.K < 2 {
				t.Fatalf("assignment k=%d below floor ⌊κ⌋=2", a.K)
			}
		}
	}
}

// The max-rate program accepts the same correlation options.
func TestMaxRateCorrelated(t *testing.T) {
	s := corrTestSet()
	corr := core.Correlation{Groups: []core.RiskGroup{{Mask: 0b0011, RiskRho: 0.8}}}
	sched, err := OptimizeAtMaxRate(s, 2, 2.5, ObjectiveRisk, Options{Correlation: &corr})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(s.N()); err != nil {
		t.Fatal(err)
	}
}

// An invalid model must be rejected before any solve.
func TestCorrelationValidatedInBuild(t *testing.T) {
	s := corrTestSet()
	bad := core.Correlation{Groups: []core.RiskGroup{{Mask: 0b0011}, {Mask: 0b0110}}}
	if _, err := Optimize(s, 2, 3, ObjectiveRisk, Options{Correlation: &bad}); err == nil {
		t.Fatal("overlapping groups accepted")
	}
	if _, err := OptimizeAtMaxRate(s, 2, 3, ObjectiveRisk, Options{Correlation: &bad}); err == nil {
		t.Fatal("overlapping groups accepted by max-rate")
	}
}

// Cache keying: an all-zero model shares entries with the uncorrelated
// path; materially different rhos split; drift within one rho grid cell
// stays a hit.
func TestCacheCorrelatedKeying(t *testing.T) {
	s := corrTestSet()
	c := NewCache(CacheConfig{})

	if _, tier, err := c.Optimize(s, 2, 3, ObjectiveRisk); err != nil || tier == TierCached {
		t.Fatalf("first solve: tier %v err %v", tier, err)
	}
	zero := core.Correlation{Groups: []core.RiskGroup{{Mask: 0b0011}}}
	if _, tier, err := c.OptimizeCorrelated(s, zero, 2, 3, ObjectiveRisk); err != nil || tier != TierCached {
		t.Fatalf("zero model should share the uncorrelated entry: tier %v err %v", tier, err)
	}

	corr := core.Correlation{Groups: []core.RiskGroup{{Mask: 0b0011, RiskRho: 0.8}}}
	sched1, tier, err := c.OptimizeCorrelated(s, corr, 2, 3, ObjectiveRisk)
	if err != nil || tier == TierCached {
		t.Fatalf("new rho should miss: tier %v err %v", tier, err)
	}
	// 0.81 quantizes to the same 0.05-step cell as 0.80.
	drift := core.Correlation{Groups: []core.RiskGroup{{Mask: 0b0011, RiskRho: 0.81}}}
	sched2, tier, err := c.OptimizeCorrelated(s, drift, 2, 3, ObjectiveRisk)
	if err != nil || tier != TierCached {
		t.Fatalf("in-cell rho drift should hit: tier %v err %v", tier, err)
	}
	if len(sched1) != len(sched2) {
		t.Fatalf("drift returned a different schedule")
	}
	// 0.6 is a different cell: miss again.
	far := core.Correlation{Groups: []core.RiskGroup{{Mask: 0b0011, RiskRho: 0.6}}}
	if _, tier, err := c.OptimizeCorrelated(s, far, 2, 3, ObjectiveRisk); err != nil || tier == TierCached {
		t.Fatalf("cross-cell rho should miss: tier %v err %v", tier, err)
	}
	if c.Len() != 3 {
		t.Fatalf("cache holds %d entries, want 3", c.Len())
	}
}

// The cached correlated solve must equal the one-shot solve on the same
// quantized state (warm-start reuse must not change results).
func TestCacheCorrelatedMatchesOneShot(t *testing.T) {
	s := corrTestSet()
	corr := core.Correlation{Groups: []core.RiskGroup{{Mask: 0b0011, RiskRho: 0.8, LossRho: 0.4}}}
	c := NewCache(CacheConfig{Options: Options{GroupExposureCap: 0.03}})
	// Prime the solver with an unrelated program so the correlated solve
	// exercises the warm path.
	if _, _, err := c.Optimize(s, 2, 3, ObjectiveRisk); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.OptimizeCorrelated(s, corr, 2, 2.5, ObjectiveRisk)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Optimize(s, 2, 2.5, ObjectiveRisk, Options{Correlation: &corr, GroupExposureCap: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if gz, wz := got.CorrelatedRisk(s, corr), want.CorrelatedRisk(s, corr); math.Abs(gz-wz) > 1e-9 {
		t.Fatalf("cached correlated risk %v != one-shot %v", gz, wz)
	}
	if e := got.GroupExposure(s, corr, 0); e > 0.03+1e-9 {
		t.Fatalf("cached schedule violates group cap: %v", e)
	}
}
