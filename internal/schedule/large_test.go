package schedule

import (
	"math/rand"
	"testing"
	"time"

	"remicss/internal/core"
)

func randomSet(rng *rand.Rand, n int) core.Set {
	s := make(core.Set, n)
	for i := range s {
		s[i] = core.Channel{
			Risk:  0.05 + 0.9*rng.Float64(),
			Loss:  rng.Float64() * 0.3,
			Delay: time.Duration(1+rng.Intn(100)) * time.Millisecond,
			Rate:  10 + 90*rng.Float64(),
		}
	}
	return s
}

// TestGeneratedWithinBoundOfExhaustive is the documented error bound of
// DESIGN §11: where exhaustive enumeration is computable (n <= 10), the
// LP optimum over the generated candidate set must be within 10% (or an
// absolute 1e-6) of the exhaustive optimum, for every objective.
func TestGeneratedWithinBoundOfExhaustive(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(3)
		s := randomSet(rng, n)
		kappa, mu := 2+rng.Float64(), 3+rng.Float64()
		for _, limited := range []bool{false, true} {
			for _, obj := range []Objective{ObjectiveRisk, ObjectiveLoss, ObjectiveDelay} {
				exact, err := Optimize(s, kappa, mu, obj, Options{Limited: limited})
				if err != nil {
					t.Fatalf("seed %d: exhaustive: %v", seed, err)
				}
				gen, err := Optimize(s, kappa, mu, obj, Options{Limited: limited, Generate: &core.GenConfig{}})
				if err != nil {
					t.Fatalf("seed %d: generated: %v", seed, err)
				}
				exactVal := objectiveValue(exact, s, obj)
				genVal := objectiveValue(gen, s, obj)
				if genVal > exactVal*1.10+1e-6 {
					t.Errorf("seed %d n=%d limited=%v obj %v: generated %.6g vs exhaustive %.6g exceeds 10%% bound",
						seed, n, limited, obj, genVal, exactVal)
				}
				if genVal < exactVal-1e-9 {
					t.Errorf("seed %d obj %v: generated %.6g beat exhaustive %.6g — enumeration bug",
						seed, obj, genVal, exactVal)
				}
			}
		}
	}
}

func objectiveValue(p core.Schedule, s core.Set, obj Objective) float64 {
	switch obj {
	case ObjectiveRisk:
		return p.Risk(s)
	case ObjectiveLoss:
		return p.Loss(s)
	default:
		return p.Delay(s)
	}
}

// TestEnumerateRoutesToGeneration: sets beyond exactEnumerationLimit must
// transparently use generation inside Optimize and still produce a valid
// schedule meeting the parameter constraints.
func TestEnumerateRoutesToGeneration(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randomSet(rng, exactEnumerationLimit+4)
	sched, err := Optimize(s, 2.5, 3.5, ObjectiveRisk, Options{Limited: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(s.N()); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sched.Kappa(), 2.5, 1e-6) || !almostEqual(sched.Mu(), 3.5, 1e-6) {
		t.Fatalf("kappa=%v mu=%v, want 2.5/3.5", sched.Kappa(), sched.Mu())
	}
}

// TestOptimizeLargeHundredsOfChannels is the scale acceptance criterion:
// n = 200 channels must produce a valid compacted schedule in under a
// second.
func TestOptimizeLargeHundredsOfChannels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randomSet(rng, 200)
	kappa, mu := 2.5, 3.5

	start := time.Now()
	sched, members, err := OptimizeLarge(s, kappa, mu, ObjectiveRisk, Options{Limited: true})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > time.Second {
		t.Fatalf("OptimizeLarge for n=200 took %v, budget 1s", elapsed)
	}
	if err := sched.Validate(len(members)); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sched.Kappa(), kappa, 1e-6) || !almostEqual(sched.Mu(), mu, 1e-6) {
		t.Fatalf("kappa=%v mu=%v, want %v/%v", sched.Kappa(), sched.Mu(), kappa, mu)
	}
	// The compacted members must be valid, ascending original indices.
	prev := -1
	for _, i := range members {
		if i <= prev || i >= 200 {
			t.Fatalf("bad member list %v", members)
		}
		prev = i
	}
	// The compacted schedule's metrics over the sub-set must be coherent:
	// risk evaluated on the compacted set equals the risk of the same
	// assignments on the full set.
	sub := make(core.Set, len(members))
	for li, i := range members {
		sub[li] = s[i]
	}
	if r := sched.Risk(sub); r < 0 || r > 1 {
		t.Fatalf("compacted schedule risk %v outside [0,1]", r)
	}
}

// TestOptimizeLargeMatchesOptimizeOnSmallSets: on sets small enough for the
// mask path, OptimizeLarge must agree with the generated Optimize (same
// candidates, same LP) modulo index compaction.
func TestOptimizeLargeMatchesOptimizeOnSmallSets(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := randomSet(rng, 9)
	kappa, mu := 2.2, 3.4

	large, members, err := OptimizeLarge(s, kappa, mu, ObjectiveLoss, Options{Limited: true})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := Optimize(s, kappa, mu, ObjectiveLoss, Options{Limited: true, Generate: &core.GenConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	sub := make(core.Set, len(members))
	for li, i := range members {
		sub[li] = s[i]
	}
	if !almostEqual(large.Loss(sub), gen.Loss(s), 1e-9) {
		t.Fatalf("OptimizeLarge loss %v != generated Optimize loss %v", large.Loss(sub), gen.Loss(s))
	}
}

func BenchmarkOptimizeLarge200(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	s := randomSet(rng, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := OptimizeLarge(s, 2.5, 3.5, ObjectiveRisk, Options{Limited: true}); err != nil {
			b.Fatal(err)
		}
	}
}
