package schedule

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"remicss/internal/core"
	"remicss/internal/obs"
)

func testCache(opts Options) (*Cache, *obs.Registry) {
	reg := obs.NewRegistry()
	return NewCache(CacheConfig{Options: opts, Metrics: reg}), reg
}

func counterValue(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	for _, s := range reg.Gather() {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("series %s not registered", name)
	return 0
}

// TestCacheHitReturnsSameSchedule: a repeated query must hit and return the
// identical schedule object, and the counters must advance accordingly.
func TestCacheHitReturnsSameSchedule(t *testing.T) {
	c, reg := testCache(Options{Limited: true})
	s := diverseSet()

	first, tier, err := c.Optimize(s, 2, 3, ObjectiveRisk)
	if err != nil {
		t.Fatal(err)
	}
	if tier == TierCached {
		t.Fatalf("first resolve tier = %v, want a solve", tier)
	}
	second, tier, err := c.Optimize(s, 2, 3, ObjectiveRisk)
	if err != nil {
		t.Fatal(err)
	}
	if tier != TierCached {
		t.Fatalf("second resolve tier = %v, want cached", tier)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cache returned a different schedule for the same state")
	}
	if hits := counterValue(t, reg, "remicss_schedule_cache_hits_total"); hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
	if misses := counterValue(t, reg, "remicss_schedule_cache_misses_total"); misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
}

// TestCacheMatchesUncachedOptimize: on the quantization grid itself, the
// cached solve must agree with plain Optimize.
func TestCacheMatchesUncachedOptimize(t *testing.T) {
	opts := Options{Limited: true}
	// A grid that diverseSet lies on exactly, so quantization is identity.
	c := NewCache(CacheConfig{
		Options:   opts,
		RiskStep:  0.01,
		LossStep:  0.005,
		DelayStep: 250 * time.Microsecond,
		RateStep:  5,
	})
	s := diverseSet()
	for _, obj := range []Objective{ObjectiveRisk, ObjectiveLoss, ObjectiveDelay} {
		cached, _, err := c.Optimize(s, 2, 3, obj)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Optimize(s, 2, 3, obj, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(cached.Risk(s), plain.Risk(s), 1e-9) ||
			!almostEqual(cached.Loss(s), plain.Loss(s), 1e-9) ||
			!almostEqual(cached.Delay(s), plain.Delay(s), 1e-9) {
			t.Fatalf("obj %v: cached schedule metrics diverge from Optimize", obj)
		}
	}
}

// TestCacheQuantizationAliases: two states inside one grid cell must share
// a cache entry; states in different cells must not.
func TestCacheQuantizationAliases(t *testing.T) {
	c, reg := testCache(Options{Limited: true})
	s := diverseSet()
	if _, _, err := c.Optimize(s, 2, 3, ObjectiveRisk); err != nil {
		t.Fatal(err)
	}

	nudged := append(core.Set(nil), s...)
	nudged[0].Risk += 0.001 // default RiskStep is 0.01: same cell
	if _, tier, err := c.Optimize(nudged, 2, 3, ObjectiveRisk); err != nil {
		t.Fatal(err)
	} else if tier != TierCached {
		t.Fatalf("sub-grid perturbation tier = %v, want cached", tier)
	}

	moved := append(core.Set(nil), s...)
	moved[0].Risk += 0.1 // ten cells away
	if _, tier, err := c.Optimize(moved, 2, 3, ObjectiveRisk); err != nil {
		t.Fatal(err)
	} else if tier == TierCached {
		t.Fatal("cross-cell perturbation hit the cache")
	}
	if misses := counterValue(t, reg, "remicss_schedule_cache_misses_total"); misses != 2 {
		t.Fatalf("misses = %d, want 2", misses)
	}
}

// TestCacheWarmTier: after the first cold solve, single-channel
// perturbations should re-solve warm (the LP constraint structure of the
// IV-B program is unchanged), advancing the warm-solve counters.
func TestCacheWarmTier(t *testing.T) {
	c, reg := testCache(Options{Limited: true})
	s := diverseSet()
	if _, tier, err := c.Optimize(s, 2, 3, ObjectiveRisk); err != nil {
		t.Fatal(err)
	} else if tier != TierCold {
		t.Fatalf("first solve tier = %v, want cold", tier)
	}

	warm := 0
	for i := 1; i <= 8; i++ {
		moved := append(core.Set(nil), s...)
		moved[0].Risk = 0.30 + 0.05*float64(i) // new cell each step
		_, tier, err := c.Optimize(moved, 2, 3, ObjectiveRisk)
		if err != nil {
			t.Fatal(err)
		}
		if tier == TierWarm {
			warm++
		}
	}
	if warm == 0 {
		t.Fatal("no perturbation re-solved warm")
	}
	if got := counterValue(t, reg, "lp_warm_solves_total"); got != int64(warm) {
		t.Fatalf("lp_warm_solves_total = %d, want %d", got, warm)
	}
	if counterValue(t, reg, "lp_warm_pivots_total") < 0 {
		t.Fatal("negative warm pivot count")
	}
}

// TestCacheDeterminismUnderRace: concurrent queries for states that
// quantize equally must all observe the identical schedule (run with -race;
// the read path is an atomic snapshot).
func TestCacheDeterminismUnderRace(t *testing.T) {
	c, _ := testCache(Options{Limited: true})
	s := diverseSet()

	const goroutines = 8
	const iters = 200
	scheds := make([]core.Schedule, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				jittered := append(core.Set(nil), s...)
				for j := range jittered {
					// Jitter well inside the grid cell: same quantized state.
					jittered[j].Risk += (rng.Float64() - 0.5) * 0.004
				}
				sched, _, err := c.Optimize(jittered, 2, 3, ObjectiveLoss)
				if err != nil {
					t.Error(err)
					return
				}
				if scheds[g] == nil {
					scheds[g] = sched
				} else if !reflect.DeepEqual(scheds[g], sched) {
					t.Error("schedule changed across equal quantized states")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if !reflect.DeepEqual(scheds[0], scheds[g]) {
			t.Fatalf("goroutines observed different schedules for one quantized state")
		}
	}
}

// TestCacheHitAllocationFree pins the read path at zero allocations per
// hit — the //remicss:noalloc contract, enforced at runtime.
func TestCacheHitAllocationFree(t *testing.T) {
	c, _ := testCache(Options{Limited: true})
	s := diverseSet()
	if _, _, err := c.Optimize(s, 2, 3, ObjectiveRisk); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if e, ok := c.lookup(programSectionIVB, s, core.Correlation{}, 2, 3, ObjectiveRisk); !ok || e.sched == nil {
			t.Fatal("lookup missed a cached state")
		}
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocates %v per run, want 0", allocs)
	}
}

// TestCacheEviction: filling the table past MaxEntries must evict the
// least-recently-used entries, keep the table bounded, and advance the
// eviction counter.
func TestCacheEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache(CacheConfig{Options: Options{Limited: true}, MaxEntries: 8, Metrics: reg})
	s := diverseSet()

	for i := 0; i < 20; i++ {
		moved := append(core.Set(nil), s...)
		moved[1].Risk = 0.10 + 0.02*float64(i)
		if _, _, err := c.Optimize(moved, 2, 3, ObjectiveRisk); err != nil {
			t.Fatal(err)
		}
		if c.Len() > 8 {
			t.Fatalf("table grew to %d entries, cap 8", c.Len())
		}
	}
	if ev := counterValue(t, reg, "remicss_schedule_cache_evictions_total"); ev == 0 {
		t.Fatal("no evictions recorded after overflowing the table")
	}

	// The most recent state must still be cached...
	recent := append(core.Set(nil), s...)
	recent[1].Risk = 0.10 + 0.02*19
	if _, tier, err := c.Optimize(recent, 2, 3, ObjectiveRisk); err != nil {
		t.Fatal(err)
	} else if tier != TierCached {
		t.Fatalf("most recent state tier = %v, want cached", tier)
	}
	// ...and the oldest must have been evicted.
	if _, tier, err := c.Optimize(s, 2, 3, ObjectiveRisk); err != nil {
		t.Fatal(err)
	} else if tier == TierCached {
		t.Fatal("oldest state survived eviction in an 8-entry table after 20 inserts")
	}
}

// TestCacheMaxRateKeyedSeparately: the IV-B and IV-D programs must not
// alias each other in the table.
func TestCacheMaxRateKeyedSeparately(t *testing.T) {
	c, _ := testCache(Options{})
	s := diverseSet()
	ivb, _, err := c.Optimize(s, 2, 3, ObjectiveRisk)
	if err != nil {
		t.Fatal(err)
	}
	maxrate, tier, err := c.OptimizeAtMaxRate(s, 2, 3, ObjectiveRisk)
	if err != nil {
		t.Fatal(err)
	}
	if tier == TierCached {
		t.Fatal("max-rate program hit the IV-B entry")
	}
	if reflect.DeepEqual(ivb, maxrate) {
		// Not strictly impossible, but with diverseSet the utilization
		// constraints change the optimum; equality means key aliasing.
		t.Fatal("IV-B and max-rate programs returned identical schedules")
	}
	if _, tier, err := c.OptimizeAtMaxRate(s, 2, 3, ObjectiveRisk); err != nil {
		t.Fatal(err)
	} else if tier != TierCached {
		t.Fatalf("repeated max-rate tier = %v, want cached", tier)
	}
}

// TestCacheOptimizeLarge: the wide program is served by the same cache —
// repeat states hit, the cached (schedule, members) pair matches the
// uncached OptimizeLarge on the quantized set, and sub-grid drift aliases.
func TestCacheOptimizeLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := randomSet(rng, 120)
	c, reg := testCache(Options{Limited: true})

	sched, members, tier, err := c.OptimizeLarge(s, 2.5, 3.5, ObjectiveRisk)
	if err != nil {
		t.Fatal(err)
	}
	if tier == TierCached {
		t.Fatalf("first large solve tier = %v", tier)
	}
	if len(members) == 0 {
		t.Fatal("empty member compaction")
	}

	// Same quantized state via sub-grid jitter around the grid points
	// (random risks can sit near a cell boundary, so jitter the quantized
	// values, which are cell centers by construction): cached, identical
	// objects.
	jittered := c.quantizeSet(s)
	for j := range jittered {
		jittered[j].Risk += (rng.Float64() - 0.5) * 0.004
	}
	sched2, members2, tier, err := c.OptimizeLarge(jittered, 2.5, 3.5, ObjectiveRisk)
	if err != nil {
		t.Fatal(err)
	}
	if tier != TierCached {
		t.Fatalf("repeat large solve tier = %v, want cached", tier)
	}
	if !reflect.DeepEqual(sched, sched2) || !reflect.DeepEqual(members, members2) {
		t.Fatal("cached large solve diverged from the first")
	}

	// Against the uncached path on the quantized set.
	qs := c.quantizeSet(s)
	plain, plainMembers, err := OptimizeLarge(qs, 2.5, 3.5, ObjectiveRisk, Options{Limited: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sched, plain) || !reflect.DeepEqual(members, plainMembers) {
		t.Fatal("cached large solve differs from OptimizeLarge on the quantized set")
	}

	if hits := counterValue(t, reg, "remicss_schedule_cache_hits_total"); hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
}

// TestCacheTraceEvents: every resolve must emit a schedule-resolved trace
// event whose value is the solve tier.
func TestCacheTraceEvents(t *testing.T) {
	tr := obs.NewTrace(64)
	c := NewCache(CacheConfig{
		Options: Options{Limited: true},
		Trace:   tr,
		Now:     func() time.Duration { return 42 * time.Millisecond },
	})
	s := diverseSet()
	if _, _, err := c.Optimize(s, 2, 3, ObjectiveRisk); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Optimize(s, 2, 3, ObjectiveRisk); err != nil {
		t.Fatal(err)
	}
	events := tr.Snapshot(nil)
	if len(events) != 2 {
		t.Fatalf("recorded %d events, want 2", len(events))
	}
	if events[0].Kind != obs.EventScheduleResolved || SolveTier(events[0].Value) != TierCold {
		t.Fatalf("first event = %v value %d, want schedule-resolved/cold", events[0].Kind, events[0].Value)
	}
	if SolveTier(events[1].Value) != TierCached {
		t.Fatalf("second event value = %d, want cached tier", events[1].Value)
	}
	if events[1].At != 42*time.Millisecond {
		t.Fatalf("event timestamp = %v, want the configured clock", events[1].At)
	}
}
