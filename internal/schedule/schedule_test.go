package schedule

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"remicss/internal/core"
)

const eps = 1e-6

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func diverseSet() core.Set {
	rates := []float64{5, 20, 60, 65, 100}
	risks := []float64{0.30, 0.10, 0.20, 0.25, 0.15}
	losses := []float64{0.01, 0.005, 0.01, 0.02, 0.03}
	delays := []time.Duration{
		2500 * time.Microsecond,
		250 * time.Microsecond,
		12500 * time.Microsecond,
		5 * time.Millisecond,
		500 * time.Microsecond,
	}
	s := make(core.Set, len(rates))
	for i := range s {
		s[i] = core.Channel{Risk: risks[i], Loss: losses[i], Delay: delays[i], Rate: rates[i]}
	}
	return s
}

func TestOptimizeRespectsParams(t *testing.T) {
	s := diverseSet()
	for _, obj := range []Objective{ObjectiveRisk, ObjectiveLoss, ObjectiveDelay} {
		for _, km := range [][2]float64{{1, 1}, {1, 5}, {2, 3.5}, {2.7, 4.1}, {5, 5}} {
			kappa, mu := km[0], km[1]
			p, err := Optimize(s, kappa, mu, obj, Options{})
			if err != nil {
				t.Fatalf("%v (κ=%v, μ=%v): %v", obj, kappa, mu, err)
			}
			if got := p.Kappa(); !almostEqual(got, kappa, eps) {
				t.Errorf("%v: kappa = %v, want %v", obj, got, kappa)
			}
			if got := p.Mu(); !almostEqual(got, mu, eps) {
				t.Errorf("%v: mu = %v, want %v", obj, got, mu)
			}
		}
	}
}

func TestOptimizeExtremesMatchClosedForms(t *testing.T) {
	s := diverseSet()
	// κ = μ = n: the only schedule is p(n, C) = 1, risk Π z_i.
	p, err := Optimize(s, 5, 5, ObjectiveRisk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Risk(s); !almostEqual(got, s.MaxPrivacyRisk(), eps) {
		t.Errorf("risk at (5,5) = %v, want %v", got, s.MaxPrivacyRisk())
	}
	// κ = 1, μ = n: loss optimum is Π l_i.
	p, err = Optimize(s, 1, 5, ObjectiveLoss, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Loss(s); !almostEqual(got, s.MinLoss(), eps) {
		t.Errorf("loss at (1,5) = %v, want %v", got, s.MinLoss())
	}
	// κ = 1, μ = n: delay optimum is the MinDelay closed form.
	p, err = Optimize(s, 1, 5, ObjectiveDelay, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Delay(s); !almostEqual(got, s.MinDelay(), eps) {
		t.Errorf("delay at (1,5) = %v, want %v", got, s.MinDelay())
	}
}

// TestOptimizeBeatsOrMatchesNaive checks LP optimality against every
// two-point mixture with the same κ and μ.
func TestOptimizeBeatsOrMatchesNaive(t *testing.T) {
	s := diverseSet()
	kappa, mu := 2.0, 3.0
	p, err := Optimize(s, kappa, mu, ObjectiveRisk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	best := p.Risk(s)
	all := core.EnumerateAssignments(s.N())
	for _, a := range all {
		for _, b := range all {
			// Mixture weight w solving w·k_a + (1-w)·k_b = κ and same for μ.
			den := float64(a.K - b.K)
			if den == 0 {
				continue
			}
			w := (kappa - float64(b.K)) / den
			if w < 0 || w > 1 {
				continue
			}
			gotMu := w*float64(a.M()) + (1-w)*float64(b.M())
			if !almostEqual(gotMu, mu, 1e-9) {
				continue
			}
			mix := core.Schedule{}
			mix[a] += w
			mix[b] += 1 - w
			if r := mix.Risk(s); r < best-1e-7 {
				t.Fatalf("mixture %v/%v has risk %v < LP optimum %v", a, b, r, best)
			}
		}
	}
}

func TestOptimizeInfeasibleParams(t *testing.T) {
	s := diverseSet()
	if _, err := Optimize(s, 0.5, 3, ObjectiveRisk, Options{}); !errors.Is(err, core.ErrInvalidParams) {
		t.Errorf("kappa<1: got %v", err)
	}
	if _, err := Optimize(s, 3, 2, ObjectiveRisk, Options{}); !errors.Is(err, core.ErrInvalidParams) {
		t.Errorf("mu<kappa: got %v", err)
	}
	if _, err := Optimize(s, 1, 6, ObjectiveRisk, Options{}); !errors.Is(err, core.ErrInvalidParams) {
		t.Errorf("mu>n: got %v", err)
	}
}

func TestOptimizeLimitedScheduleFloors(t *testing.T) {
	s := diverseSet()
	kappa, mu := 2.4, 3.6
	p, err := Optimize(s, kappa, mu, ObjectiveRisk, Options{Limited: true})
	if err != nil {
		t.Fatal(err)
	}
	for a := range p {
		if p[a] <= 0 {
			continue
		}
		if a.K < 2 {
			t.Errorf("limited schedule uses k=%d < ⌊κ⌋=2", a.K)
		}
		if a.M() < 3 {
			t.Errorf("limited schedule uses |M|=%d < ⌊μ⌋=3", a.M())
		}
	}
	if got := p.Kappa(); !almostEqual(got, kappa, eps) {
		t.Errorf("limited kappa = %v, want %v", got, kappa)
	}
	if got := p.Mu(); !almostEqual(got, mu, eps) {
		t.Errorf("limited mu = %v, want %v", got, mu)
	}
}

// TestTheorem5LimitedAlwaysFeasible: any valid (κ, μ) has a limited
// schedule.
func TestTheorem5LimitedAlwaysFeasible(t *testing.T) {
	s := diverseSet()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		kappa := 1 + rng.Float64()*4
		mu := kappa + rng.Float64()*(5-kappa)
		if _, err := Optimize(s, kappa, mu, ObjectiveRisk, Options{Limited: true}); err != nil {
			t.Fatalf("limited (κ=%v, μ=%v): %v", kappa, mu, err)
		}
	}
}

// TestSectionIVELimitedDelayGap reproduces the paper's counterexample: the
// limited optimum can be strictly worse. d = (2, 9, 10), κ=2, μ=3:
// limited delay 9 vs unlimited 6.
func TestSectionIVELimitedDelayGap(t *testing.T) {
	s := core.Set{
		{Delay: 2 * time.Second, Rate: 1},
		{Delay: 9 * time.Second, Rate: 1},
		{Delay: 10 * time.Second, Rate: 1},
	}
	limited, err := Optimize(s, 2, 3, ObjectiveDelay, Options{Limited: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := limited.Delay(s); !almostEqual(got, 9, eps) {
		t.Errorf("limited delay = %v, want 9", got)
	}
	unlimited, err := Optimize(s, 2, 3, ObjectiveDelay, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := unlimited.Delay(s); !almostEqual(got, 6, eps) {
		t.Errorf("unlimited delay = %v, want 6", got)
	}
}

func TestOptimizeAtMaxRateUtilization(t *testing.T) {
	s := diverseSet()
	for _, km := range [][2]float64{{1, 1.5}, {2, 2.5}, {2, 3.4}, {3, 4.2}, {1, 5}} {
		kappa, mu := km[0], km[1]
		p, err := OptimizeAtMaxRate(s, kappa, mu, ObjectiveLoss, Options{})
		if err != nil {
			t.Fatalf("(κ=%v, μ=%v): %v", kappa, mu, err)
		}
		if got := p.Kappa(); !almostEqual(got, kappa, eps) {
			t.Errorf("kappa = %v, want %v", got, kappa)
		}
		if got := p.Mu(); !almostEqual(got, mu, eps) {
			t.Errorf("mu = %v, want %v (implied by utilization)", got, mu)
		}
		targets, err := s.UtilizationTargets(mu)
		if err != nil {
			t.Fatal(err)
		}
		usage := p.ChannelUsage(s.N())
		for i := range targets {
			if !almostEqual(usage[i], targets[i], eps) {
				t.Errorf("(κ=%v, μ=%v) channel %d usage = %v, want %v",
					kappa, mu, i, usage[i], targets[i])
			}
		}
	}
}

func TestOptimizeAtMaxRateNoWorseThanUniform(t *testing.T) {
	// The max-rate optimum is at least as good as any single assignment that
	// happens to meet the utilization constraints (rarely possible), and
	// must be no better than the unconstrained optimum.
	s := diverseSet()
	kappa, mu := 2.0, 3.0
	constrained, err := OptimizeAtMaxRate(s, kappa, mu, ObjectiveRisk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	free, err := Optimize(s, kappa, mu, ObjectiveRisk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if constrained.Risk(s) < free.Risk(s)-eps {
		t.Errorf("constrained optimum %v better than unconstrained %v",
			constrained.Risk(s), free.Risk(s))
	}
}

func TestSamplerMatchesDistribution(t *testing.T) {
	s := diverseSet()
	p, err := Optimize(s, 2, 3.5, ObjectiveRisk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := NewSampler(p, s.N(), rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	const draws = 200000
	counts := make(map[core.Assignment]int)
	var kSum, mSum float64
	for i := 0; i < draws; i++ {
		a := sampler.Next()
		counts[a]++
		kSum += float64(a.K)
		mSum += float64(a.M())
	}
	if got := kSum / draws; !almostEqual(got, 2, 0.02) {
		t.Errorf("empirical kappa = %v, want 2", got)
	}
	if got := mSum / draws; !almostEqual(got, 3.5, 0.02) {
		t.Errorf("empirical mu = %v, want 3.5", got)
	}
	for a, c := range counts {
		want := p[a]
		got := float64(c) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("assignment %v frequency %v, want %v", a, got, want)
		}
	}
}

func TestSamplerValidation(t *testing.T) {
	if _, err := NewSampler(core.Schedule{}, 3, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty schedule accepted")
	}
	valid := core.Uniform(core.Assignment{K: 1, Mask: 1})
	if _, err := NewSampler(valid, 3, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestPackFigure2(t *testing.T) {
	// The paper's Figure 2: rates (3, 4, 8).
	slots := []int{3, 4, 8}
	// μ=1: all 15 slots carry distinct symbols.
	packing, err := Pack(slots, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(packing) != 15 {
		t.Errorf("μ=1: packed %d symbols, want 15", len(packing))
	}
	// μ=2: R_C = min(15/2, 7/1) = 7.
	packing, err = Pack(slots, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(packing) != 7 {
		t.Errorf("μ=2: packed %d symbols, want 7", len(packing))
	}
	// μ=3: R_C = min(15/3, 7/2, 3/1) = 3.
	packing, err = Pack(slots, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(packing) != 3 {
		t.Errorf("μ=3: packed %d symbols, want 3", len(packing))
	}
}

func TestPackMatchesTheorem4(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(5) + 1
		slots := make([]int, n)
		s := make(core.Set, n)
		for i := range slots {
			slots[i] = rng.Intn(40) + 1
			s[i] = core.Channel{Rate: float64(slots[i])}
		}
		m := rng.Intn(n) + 1
		packing, err := Pack(slots, m)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := s.OptimalRate(float64(m))
		if err != nil {
			t.Fatal(err)
		}
		if want := int(math.Floor(rc + 1e-9)); len(packing) != want {
			t.Fatalf("n=%d m=%d slots=%v: packed %d, optimal %d",
				n, m, slots, len(packing), want)
		}
	}
}

func TestPackRespectsBudgetsAndMultiplicity(t *testing.T) {
	slots := []int{3, 4, 8}
	packing, err := Pack(slots, 2)
	if err != nil {
		t.Fatal(err)
	}
	usage := PackUsage(packing, len(slots))
	for i, u := range usage {
		if u > slots[i] {
			t.Errorf("channel %d used %d times, budget %d", i, u, slots[i])
		}
	}
	for _, mask := range packing {
		count := 0
		for i := 0; i < len(slots); i++ {
			if mask&(1<<uint(i)) != 0 {
				count++
			}
		}
		if count != 2 {
			t.Errorf("packing entry %b has %d channels, want 2", mask, count)
		}
	}
}

func TestPackValidation(t *testing.T) {
	if _, err := Pack([]int{1, 2}, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Pack([]int{1, 2}, 3); err == nil {
		t.Error("m>n accepted")
	}
	if _, err := Pack([]int{-1, 2}, 1); err == nil {
		t.Error("negative slots accepted")
	}
}

func TestObjectiveString(t *testing.T) {
	cases := map[Objective]string{
		ObjectiveRisk:  "risk",
		ObjectiveLoss:  "loss",
		ObjectiveDelay: "delay",
		Objective(42):  "objective(42)",
	}
	for obj, want := range cases {
		if got := obj.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(obj), got, want)
		}
	}
}

func BenchmarkOptimizeRisk(b *testing.B) {
	s := diverseSet()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(s, 2, 3.5, ObjectiveRisk, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeAtMaxRate(b *testing.B) {
	s := diverseSet()
	for i := 0; i < b.N; i++ {
		if _, err := OptimizeAtMaxRate(s, 2, 3.5, ObjectiveLoss, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampler(b *testing.B) {
	s := diverseSet()
	p, err := Optimize(s, 2, 3.5, ObjectiveRisk, Options{})
	if err != nil {
		b.Fatal(err)
	}
	sampler, err := NewSampler(p, s.N(), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sampler.Next()
	}
}

// TestSensitivityIsSubgradient validates the shadow prices of the κ and μ
// constraints. The optimal value V(κ, μ) of a minimization LP is convex and
// piecewise linear in the right-hand side, and at degenerate optima the
// dual is a subgradient rather than a two-sided derivative, so the correct
// check is the subgradient inequality V(b') >= V(b) + y·(b'-b).
func TestSensitivityIsSubgradient(t *testing.T) {
	s := diverseSet()
	kappa, mu := 2.0, 3.0

	dK, dM, err := Sensitivity(s, kappa, mu, ObjectiveRisk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	at := func(k, m float64) float64 {
		p, err := Optimize(s, k, m, ObjectiveRisk, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return p.Risk(s)
	}
	base := at(kappa, mu)
	for _, step := range []float64{0.05, -0.05, 0.2, -0.2} {
		if got, bound := at(kappa+step, mu), base+dK*step; got < bound-1e-6 {
			t.Errorf("V(κ%+v) = %v violates subgradient bound %v (dK=%v)", step, got, bound, dK)
		}
		if got, bound := at(kappa, mu+step), base+dM*step; got < bound-1e-6 {
			t.Errorf("V(μ%+v) = %v violates subgradient bound %v (dM=%v)", step, got, bound, dM)
		}
	}
	// For the risk objective, raising the threshold must not increase risk.
	if dK > 1e-9 {
		t.Errorf("dRisk/dκ = %v, want <= 0 (more threshold, less risk)", dK)
	}
}

// TestSensitivityLossObjective sanity-checks the loss tradeoff directions.
func TestSensitivityLossObjective(t *testing.T) {
	s := diverseSet()
	dK, dM, err := Sensitivity(s, 2, 3, ObjectiveLoss, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Needing more shares (higher κ) makes loss worse; more redundancy
	// (higher μ) makes it better.
	if dK < -1e-9 {
		t.Errorf("dLoss/dκ = %v, want >= 0", dK)
	}
	if dM > 1e-9 {
		t.Errorf("dLoss/dμ = %v, want <= 0", dM)
	}
}
