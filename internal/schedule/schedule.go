// Package schedule constructs share schedules: the categorical
// distributions p(k, M) that drive a multichannel secret sharing protocol.
//
// It implements the two linear programs of the paper:
//
//   - Optimize (Section IV-B): minimize schedule risk, loss, or delay
//     subject to the average threshold κ and multiplicity μ.
//   - OptimizeAtMaxRate (Section IV-D): the same minimization with the
//     per-channel utilization constraints that guarantee the schedule can
//     transmit at the optimal multichannel rate R_C of Theorem 4.
//
// Both accept the Section IV-E "limited" restriction (k >= ⌊κ⌋ and
// |M| >= ⌊μ⌋), which adapts the model to the MICSS/courier threat model in
// which the adversary always controls a fixed set of channels.
//
// The package also provides a Sampler that draws i.i.d. assignments from a
// schedule, and Pack, the Figure-2 water-filling packer that converts
// per-channel share budgets into an explicit symbol-by-symbol sequence of
// channel subsets.
package schedule

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"remicss/internal/core"
	"remicss/internal/lp"
)

// Objective selects which schedule property the linear program minimizes.
type Objective int

// Objectives, matching Z(p), L(p), and D(p) from the paper.
const (
	ObjectiveRisk Objective = iota + 1
	ObjectiveLoss
	ObjectiveDelay
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case ObjectiveRisk:
		return "risk"
	case ObjectiveLoss:
		return "loss"
	case ObjectiveDelay:
		return "delay"
	default:
		return fmt.Sprintf("objective(%d)", int(o))
	}
}

// Options modifies schedule construction.
type Options struct {
	// Limited restricts the choice set to M' (Section IV-E): k >= ⌊κ⌋ and
	// |M| >= ⌊μ⌋, so that a threat model with a fixed set of compromised
	// channels sees at least ⌊κ⌋ shares required for every symbol.
	Limited bool
	// Generate forces sampled/pruned candidate generation (see
	// core.GenerateAssignments) with the given configuration instead of
	// exhaustive enumeration. When nil, enumeration is exhaustive up to
	// exactEnumerationLimit channels and generated beyond it.
	Generate *core.GenConfig
	// Correlation, when non-nil, builds the program under the
	// correlated-adversary model: risk and loss objective coefficients use
	// the common-cause mixture instead of the independent Poisson binomial,
	// and — when GroupExposureCap is positive — one inequality row per
	// shared-risk group bounds the schedule's group-attributable exposure
	// Σ p(k,M)·e_g(k,M) ≤ cap, expressed in equality form with one
	// zero-cost slack variable per group.
	Correlation *core.Correlation
	// GroupExposureCap is the per-group common-cause exposure bound; rows
	// are added only when it is positive and Correlation has groups.
	GroupExposureCap float64
}

// correlationRows reports whether the options call for group-exposure
// constraint rows.
func (o Options) correlationRows() bool {
	return o.Correlation != nil && o.GroupExposureCap > 0 && len(o.Correlation.Groups) > 0
}

// exactEnumerationLimit is the largest channel count for which the choice
// set is enumerated exhaustively. Beyond it the exponential enumeration is
// replaced by sampled/pruned generation with default GenConfig (the
// schedules become approximate; see DESIGN §11 for the error bound).
const exactEnumerationLimit = 12

// ErrInfeasible means no share schedule satisfies the requested parameters.
var ErrInfeasible = errors.New("schedule: no feasible share schedule")

// probabilityFloor drops LP solution entries below this mass; they are
// floating-point residue, not meaningful schedule entries.
const probabilityFloor = 1e-9

// Optimize solves the Section IV-B linear program: find the share schedule
// minimizing the chosen objective with average threshold kappa and average
// multiplicity mu over the set.
func Optimize(s core.Set, kappa, mu float64, obj Objective, opts Options) (core.Schedule, error) {
	sol, assignments, err := solveSectionIVB(s, kappa, mu, obj, opts)
	if err != nil {
		return nil, err
	}
	return solutionToSchedule(sol, assignments, s.N())
}

// Sensitivity reports the shadow prices of the parameter constraints of the
// Section IV-B program at its optimum: the marginal change of the optimal
// objective per unit increase of κ and of μ. For the risk objective,
// dKappa is the (negative) "price of privacy" — how much schedule risk one
// more unit of average threshold buys.
func Sensitivity(s core.Set, kappa, mu float64, obj Objective, opts Options) (dKappa, dMu float64, err error) {
	sol, _, err := solveSectionIVB(s, kappa, mu, obj, opts)
	if err != nil {
		return 0, 0, err
	}
	// Constraint order: Σp=1, κ, μ.
	return sol.Duals[1], sol.Duals[2], nil
}

// solveSectionIVB builds and solves the Section IV-B program with a
// one-shot solver.
func solveSectionIVB(s core.Set, kappa, mu float64, obj Objective, opts Options) (lp.Solution, []core.Assignment, error) {
	prob, assignments, err := buildSectionIVB(s, kappa, mu, obj, opts)
	if err != nil {
		return lp.Solution{}, nil, err
	}
	sol, err := lp.Solve(prob)
	if err != nil {
		return lp.Solution{}, nil, wrapLPError(err)
	}
	return sol, assignments, nil
}

// buildSectionIVB constructs the Section IV-B program: minimize the
// objective over the choice set subject to Σp = 1, Σp·k = κ, Σp·|M| = μ.
// The solve layer (one-shot, warm-started, or cached) is the caller's
// choice.
func buildSectionIVB(s core.Set, kappa, mu float64, obj Objective, opts Options) (lp.Problem, []core.Assignment, error) {
	if err := s.Validate(); err != nil {
		return lp.Problem{}, nil, err
	}
	if err := s.CheckParams(kappa, mu); err != nil {
		return lp.Problem{}, nil, err
	}
	if err := validateCorrelation(s, opts); err != nil {
		return lp.Problem{}, nil, err
	}
	assignments := enumerate(s, kappa, mu, opts)
	if len(assignments) == 0 {
		return lp.Problem{}, nil, fmt.Errorf("%w: empty choice set", ErrInfeasible)
	}

	nv := len(assignments)
	prob := lp.Problem{
		C: objectiveCoefficients(s, assignments, obj, opts.Correlation),
		A: make([][]float64, 0, 3),
		B: make([]float64, 0, 3),
	}
	// Σ p = 1.
	ones := make([]float64, nv)
	for j := range ones {
		ones[j] = 1
	}
	prob.A, prob.B = append(prob.A, ones), append(prob.B, 1)
	// Σ p·k = κ.
	ks := make([]float64, nv)
	for j, a := range assignments {
		ks[j] = float64(a.K)
	}
	prob.A, prob.B = append(prob.A, ks), append(prob.B, kappa)
	// Σ p·|M| = μ.
	ms := make([]float64, nv)
	for j, a := range assignments {
		ms[j] = float64(a.M())
	}
	prob.A, prob.B = append(prob.A, ms), append(prob.B, mu)
	if opts.correlationRows() {
		prob = addGroupExposureRows(prob, s, assignments, *opts.Correlation, opts.GroupExposureCap)
	}
	return prob, assignments, nil
}

// validateCorrelation checks Options.Correlation against the set.
func validateCorrelation(s core.Set, opts Options) error {
	if opts.Correlation == nil {
		return nil
	}
	return opts.Correlation.Validate(s.N())
}

// addGroupExposureRows appends, per shared-risk group, the inequality
// Σ_j e_g(k_j, M_j)·p_j ≤ cap in equality form: every existing row and the
// objective are widened with one zero-cost slack column per group, and each
// new row sets its slack coefficient to 1. The group-attributable exposure
// e_g is linear in p (core.GroupExposure), which is what admits an LP row at
// all; the full correlated risk is not linear per group because shock
// patterns interact.
func addGroupExposureRows(prob lp.Problem, s core.Set, assignments []core.Assignment, corr core.Correlation, cap float64) lp.Problem {
	g := len(corr.Groups)
	nv := len(prob.C)
	wideC := make([]float64, nv+g)
	copy(wideC, prob.C)
	wideA := make([][]float64, 0, len(prob.A)+g)
	for _, row := range prob.A {
		wide := make([]float64, nv+g)
		copy(wide, row)
		wideA = append(wideA, wide)
	}
	wideB := make([]float64, len(prob.B), len(prob.B)+g)
	copy(wideB, prob.B)
	for gi := range corr.Groups {
		row := make([]float64, nv+g)
		for j, a := range assignments {
			row[j] = s.GroupExposure(corr, gi, a.K, a.Mask)
		}
		row[nv+gi] = 1
		wideA = append(wideA, row)
		wideB = append(wideB, cap)
	}
	return lp.Problem{C: wideC, A: wideA, B: wideB}
}

// wrapLPError maps solver errors onto the package's error vocabulary.
func wrapLPError(err error) error {
	if errors.Is(err, lp.ErrInfeasible) {
		return fmt.Errorf("%w: %v", ErrInfeasible, err)
	}
	return fmt.Errorf("schedule: %w", err)
}

// OptimizeAtMaxRate solves the Section IV-D linear program: minimize the
// chosen objective subject to κ and to the per-channel utilization
// constraints Σ_{(k,M): i∈M} p(k,M) = min{r_i/R_C, 1}, which force the
// schedule to be capable of the optimal rate R_C for μ. The μ constraint is
// implied by the utilization constraints (their sum is μ by Theorem 3), as
// in the paper's program.
func OptimizeAtMaxRate(s core.Set, kappa, mu float64, obj Objective, opts Options) (core.Schedule, error) {
	prob, assignments, err := buildMaxRate(s, kappa, mu, obj, opts)
	if err != nil {
		return nil, err
	}
	return solveToSchedule(prob, assignments, s.N())
}

// buildMaxRate constructs the Section IV-D program (the Section IV-B
// objective and normalization plus per-channel utilization constraints).
func buildMaxRate(s core.Set, kappa, mu float64, obj Objective, opts Options) (lp.Problem, []core.Assignment, error) {
	if err := s.Validate(); err != nil {
		return lp.Problem{}, nil, err
	}
	if err := s.CheckParams(kappa, mu); err != nil {
		return lp.Problem{}, nil, err
	}
	if err := validateCorrelation(s, opts); err != nil {
		return lp.Problem{}, nil, err
	}
	targets, err := s.UtilizationTargets(mu)
	if err != nil {
		return lp.Problem{}, nil, err
	}
	assignments := enumerate(s, kappa, mu, opts)
	if len(assignments) == 0 {
		return lp.Problem{}, nil, fmt.Errorf("%w: empty choice set", ErrInfeasible)
	}

	nv := len(assignments)
	n := s.N()
	prob := lp.Problem{
		C: objectiveCoefficients(s, assignments, obj, opts.Correlation),
		A: make([][]float64, 0, 2+n),
		B: make([]float64, 0, 2+n),
	}
	ones := make([]float64, nv)
	for j := range ones {
		ones[j] = 1
	}
	prob.A, prob.B = append(prob.A, ones), append(prob.B, 1)
	ks := make([]float64, nv)
	for j, a := range assignments {
		ks[j] = float64(a.K)
	}
	prob.A, prob.B = append(prob.A, ks), append(prob.B, kappa)
	for i := 0; i < n; i++ {
		row := make([]float64, nv)
		for j, a := range assignments {
			if a.Mask&(1<<uint(i)) != 0 {
				row[j] = 1
			}
		}
		prob.A, prob.B = append(prob.A, row), append(prob.B, targets[i])
	}
	if opts.correlationRows() {
		prob = addGroupExposureRows(prob, s, assignments, *opts.Correlation, opts.GroupExposureCap)
	}
	return prob, assignments, nil
}

// enumerate produces the choice set: exhaustively for small sets, by
// sampled/pruned generation for large ones or when Options.Generate forces
// it.
func enumerate(s core.Set, kappa, mu float64, opts Options) []core.Assignment {
	n := s.N()
	if opts.Generate != nil || n > exactEnumerationLimit {
		var cfg core.GenConfig
		if opts.Generate != nil {
			cfg = *opts.Generate
		}
		return core.GenerateAssignments(s, kappa, mu, opts.Limited, cfg)
	}
	if opts.Limited {
		return core.EnumerateLimitedAssignments(n, kappa, mu)
	}
	return core.EnumerateAssignments(n)
}

// objectiveCoefficients computes the per-assignment objective costs. A
// non-nil correlation model swaps the independent risk and loss formulas
// for their common-cause mixtures (delay is unaffected: the model couples
// observation and outage, not latency). With an all-zero model the
// correlated formulas return the independent values bit-exactly, so the
// program — and hence the schedule — is unchanged.
func objectiveCoefficients(s core.Set, assignments []core.Assignment, obj Objective, corr *core.Correlation) []float64 {
	c := make([]float64, len(assignments))
	for j, a := range assignments {
		switch obj {
		case ObjectiveRisk:
			if corr != nil {
				c[j] = s.CorrelatedSubsetRisk(*corr, a.K, a.Mask)
			} else {
				c[j] = s.SubsetRisk(a.K, a.Mask)
			}
		case ObjectiveLoss:
			if corr != nil {
				c[j] = s.CorrelatedSubsetLoss(*corr, a.K, a.Mask)
			} else {
				c[j] = s.SubsetLoss(a.K, a.Mask)
			}
		case ObjectiveDelay:
			c[j] = s.SubsetDelay(a.K, a.Mask)
		default:
			panic(fmt.Sprintf("schedule: unknown objective %d", int(obj)))
		}
	}
	return c
}

func solveToSchedule(prob lp.Problem, assignments []core.Assignment, n int) (core.Schedule, error) {
	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, wrapLPError(err)
	}
	return solutionToSchedule(sol, assignments, n)
}

// solutionToSchedule converts an LP solution vector into a validated
// schedule, dropping floating-point residue.
func solutionToSchedule(sol lp.Solution, assignments []core.Assignment, n int) (core.Schedule, error) {
	sched := make(core.Schedule)
	var total float64
	for j, p := range sol.X {
		if j >= len(assignments) {
			break // group-exposure slack columns carry no schedule mass
		}
		if p > probabilityFloor {
			sched[assignments[j]] += p
			total += p
		}
	}
	// Renormalize away the dropped residue so the schedule validates.
	for a := range sched {
		sched[a] /= total
	}
	if err := sched.Validate(n); err != nil {
		return nil, fmt.Errorf("schedule: solver produced invalid schedule: %w", err)
	}
	return sched, nil
}

// Sampler draws independent assignments from a share schedule via inverse
// transform sampling over the (deterministically ordered) support.
type Sampler struct {
	assignments []core.Assignment
	cumulative  []float64
	rng         *rand.Rand
}

// NewSampler builds a sampler for the schedule. The rng must not be nil and
// must not be shared across goroutines.
func NewSampler(p core.Schedule, n int, rng *rand.Rand) (*Sampler, error) {
	if err := p.Validate(n); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("schedule: nil rng")
	}
	support := p.Support()
	cum := make([]float64, len(support))
	var total float64
	for i, a := range support {
		total += p[a]
		cum[i] = total
	}
	// Guard the final boundary against rounding so Next never falls off the
	// end.
	cum[len(cum)-1] = math.Inf(1)
	return &Sampler{assignments: support, cumulative: cum, rng: rng}, nil
}

// Next draws the next assignment.
func (s *Sampler) Next() core.Assignment {
	u := s.rng.Float64()
	i := sort.SearchFloat64s(s.cumulative, u)
	return s.assignments[i]
}

// Pack is the Figure-2 construction: given each channel's share budget for
// one unit time (slots[i] shares on channel i) and a multiplicity m, it
// greedily assigns each successive source symbol to the m channels with the
// most remaining capacity. It returns one channel mask per symbol.
//
// For integral μ = m this greedy water-filling achieves the optimal symbol
// count ⌊R_C⌋ of Theorem 4 (verified against the closed form in tests).
func Pack(slots []int, m int) ([]uint32, error) {
	if m < 1 || m > len(slots) {
		return nil, fmt.Errorf("schedule: multiplicity %d outside [1, %d]", m, len(slots))
	}
	for i, s := range slots {
		if s < 0 {
			return nil, fmt.Errorf("schedule: negative slot count %d on channel %d", s, i)
		}
	}
	remaining := make([]int, len(slots))
	copy(remaining, slots)
	order := make([]int, len(slots))
	for i := range order {
		order[i] = i
	}

	var packing []uint32
	for {
		// Channels by most remaining capacity; stable on index for
		// determinism.
		sort.SliceStable(order, func(a, b int) bool {
			if remaining[order[a]] != remaining[order[b]] {
				return remaining[order[a]] > remaining[order[b]]
			}
			return order[a] < order[b]
		})
		if remaining[order[m-1]] == 0 {
			return packing, nil // fewer than m channels still have capacity
		}
		var mask uint32
		for _, i := range order[:m] {
			remaining[i]--
			mask |= 1 << uint(i)
		}
		packing = append(packing, mask)
	}
}

// PackUsage tallies how many symbols each channel carries in a packing.
func PackUsage(packing []uint32, n int) []int {
	usage := make([]int, n)
	for _, mask := range packing {
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				usage[i]++
			}
		}
	}
	return usage
}
