package stats

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDistributionUniformCoin(t *testing.T) {
	// Three fair coins: binomial(3, 0.5).
	pmf := Distribution([]float64{0.5, 0.5, 0.5})
	want := []float64{0.125, 0.375, 0.375, 0.125}
	for i := range want {
		if !almostEqual(pmf[i], want[i], eps) {
			t.Errorf("pmf[%d] = %v, want %v", i, pmf[i], want[i])
		}
	}
}

func TestDistributionDegenerate(t *testing.T) {
	pmf := Distribution([]float64{1, 1, 0})
	for i, want := range []float64{0, 0, 1, 0} {
		if !almostEqual(pmf[i], want, eps) {
			t.Errorf("pmf[%d] = %v, want %v", i, pmf[i], want)
		}
	}
	// Empty trials: P(0 successes) = 1.
	pmf = Distribution(nil)
	if len(pmf) != 1 || !almostEqual(pmf[0], 1, eps) {
		t.Errorf("Distribution(nil) = %v, want [1]", pmf)
	}
}

func TestDistributionSumsToOne(t *testing.T) {
	f := func(seeds []uint8) bool {
		if len(seeds) > 16 {
			seeds = seeds[:16]
		}
		probs := make([]float64, len(seeds))
		for i, s := range seeds {
			probs[i] = float64(s) / 255
		}
		pmf := Distribution(probs)
		var sum float64
		for _, p := range pmf {
			sum += p
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributionPanicsOnBadProbability(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Distribution([%v]) did not panic", bad)
				}
			}()
			Distribution([]float64{bad})
		}()
	}
}

func TestTailMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(10) + 1
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		for k := 0; k <= n+1; k++ {
			dp := TailAtLeast(probs, k)
			enum := TailAtLeastEnum(probs, k)
			if !almostEqual(dp, enum, 1e-9) {
				t.Fatalf("n=%d k=%d: DP %v != enumeration %v", n, k, dp, enum)
			}
		}
	}
}

func TestTailBoundaries(t *testing.T) {
	probs := []float64{0.3, 0.7}
	if got := TailAtLeast(probs, 0); got != 1 {
		t.Errorf("TailAtLeast(_, 0) = %v, want 1", got)
	}
	if got := TailAtLeast(probs, 3); got != 0 {
		t.Errorf("TailAtLeast(_, 3) = %v, want 0", got)
	}
	if got := TailLess(probs, 0); got != 0 {
		t.Errorf("TailLess(_, 0) = %v, want 0", got)
	}
	if got := TailLess(probs, 3); got != 1 {
		t.Errorf("TailLess(_, 3) = %v, want 1", got)
	}
}

func TestTailComplement(t *testing.T) {
	f := func(a, b, c uint8, k uint8) bool {
		probs := []float64{float64(a) / 255, float64(b) / 255, float64(c) / 255}
		kk := int(k) % 5
		return almostEqual(TailAtLeast(probs, kk)+TailLess(probs, kk), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{0.25, 0.5, 0.25}); !almostEqual(got, 1, eps) {
		t.Errorf("Mean = %v, want 1", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestForEachSubsetCount(t *testing.T) {
	for n := 0; n <= 10; n++ {
		count := 0
		ForEachSubset(n, func(uint32) { count++ })
		if count != 1<<n {
			t.Errorf("n=%d: visited %d subsets, want %d", n, count, 1<<n)
		}
	}
}

func TestForEachSubsetOfSize(t *testing.T) {
	for n := 0; n <= 8; n++ {
		total := 0
		for k := 0; k <= n; k++ {
			count := 0
			ForEachSubsetOfSize(n, k, func(mask uint32) {
				if bits.OnesCount32(mask) != k {
					t.Fatalf("n=%d k=%d: mask %b has wrong size", n, k, mask)
				}
				count++
			})
			if want := int(Binomial(n, k)); count != want {
				t.Errorf("n=%d k=%d: %d subsets, want %d", n, k, count, want)
			}
			total += count
		}
		if total != 1<<n {
			t.Errorf("n=%d: sizes total %d, want %d", n, total, 1<<n)
		}
	}
	// Out-of-range k visits nothing.
	visited := false
	ForEachSubsetOfSize(3, 4, func(uint32) { visited = true })
	if visited {
		t.Error("ForEachSubsetOfSize(3, 4) visited a subset")
	}
}

func TestSubsetProbabilitySumsToOne(t *testing.T) {
	probs := []float64{0.2, 0.9, 0.4, 0.6}
	var sum float64
	ForEachSubset(len(probs), func(mask uint32) {
		sum += SubsetProbability(probs, mask)
	})
	if !almostEqual(sum, 1, 1e-9) {
		t.Errorf("subset probabilities sum to %v, want 1", sum)
	}
}

func TestKthSmallest(t *testing.T) {
	values := []float64{9, 2, 7, 4}
	// mask selecting indices 0, 2, 3 -> values {9, 7, 4}.
	mask := uint32(0b1101)
	cases := []struct {
		k    int
		want float64
	}{
		{1, 4}, {2, 7}, {3, 9},
	}
	for _, tc := range cases {
		if got := KthSmallest(values, mask, tc.k); got != tc.want {
			t.Errorf("KthSmallest(k=%d) = %v, want %v", tc.k, got, tc.want)
		}
	}
}

func TestKthSmallestPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-range order statistic")
		}
	}()
	KthSmallest([]float64{1, 2}, 0b11, 3)
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {5, 3, 10},
		{10, 4, 210}, {0, 0, 1}, {3, 4, 0}, {3, -1, 0},
	}
	for _, tc := range cases {
		if got := Binomial(tc.n, tc.k); got != tc.want {
			t.Errorf("Binomial(%d, %d) = %v, want %v", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestForEachSubsetPanicsAboveCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for oversized enumeration")
		}
	}()
	ForEachSubset(MaxEnumerationBits+1, func(uint32) {})
}

func BenchmarkDistribution16(b *testing.B) {
	probs := make([]float64, 16)
	for i := range probs {
		probs[i] = float64(i+1) / 20
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distribution(probs)
	}
}

func BenchmarkTailEnumeration16(b *testing.B) {
	probs := make([]float64, 16)
	for i := range probs {
		probs[i] = float64(i+1) / 20
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TailAtLeastEnum(probs, 8)
	}
}

// TestMeanMatchesDistributionExpectation cross-checks Mean against the
// expectation of the DP-computed pmf.
func TestMeanMatchesDistributionExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(12) + 1
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		pmf := Distribution(probs)
		var expect float64
		for c, p := range pmf {
			expect += float64(c) * p
		}
		if !almostEqual(expect, Mean(probs), 1e-9) {
			t.Fatalf("E[X] from pmf %v != Mean %v", expect, Mean(probs))
		}
	}
}
