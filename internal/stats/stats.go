// Package stats provides the probability machinery behind the protocol
// model: Poisson binomial tail probabilities (the distribution of the number
// of successes across independent, non-identically distributed Bernoulli
// trials) and bitmask subset iteration used by the subset formulas of
// internal/core.
//
// The subset risk and loss formulas in the paper are written as sums over
// subsets, which is exponential in the channel count. For the probabilities
// themselves this package also provides an O(n^2) dynamic program
// (Distribution) that computes the same quantities; the exponential
// enumeration is retained as a test oracle and for the delay formula, which
// genuinely needs per-subset order statistics.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// MaxEnumerationBits caps the subset enumeration helpers: 2^22 subsets is
// roughly the largest practical exhaustive sweep. The paper's evaluations
// use n = 5.
const MaxEnumerationBits = 22

// Distribution returns the probability mass function of the Poisson
// binomial distribution with the given success probabilities: out[c] is the
// probability that exactly c of the trials succeed, for c in [0, len(probs)].
//
// It panics if any probability is outside [0, 1]; that is a programming
// error in the caller's model, not a runtime condition.
func Distribution(probs []float64) []float64 {
	for i, p := range probs {
		if p < 0 || p > 1 || math.IsNaN(p) {
			panic(fmt.Sprintf("stats: probability %d out of range: %v", i, p))
		}
	}
	pmf := make([]float64, len(probs)+1)
	pmf[0] = 1
	for n, p := range probs {
		// Update in place from high to low so each trial is counted once.
		for c := n + 1; c >= 1; c-- {
			pmf[c] = pmf[c]*(1-p) + pmf[c-1]*p
		}
		pmf[0] *= 1 - p
	}
	return pmf
}

// TailAtLeast returns P(X >= k) for the Poisson binomial X over probs.
// k <= 0 yields 1; k > len(probs) yields 0.
func TailAtLeast(probs []float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > len(probs) {
		return 0
	}
	pmf := Distribution(probs)
	var sum float64
	for c := k; c < len(pmf); c++ {
		sum += pmf[c]
	}
	return clampProb(sum)
}

// TailLess returns P(X < k) for the Poisson binomial X over probs.
func TailLess(probs []float64, k int) float64 {
	return clampProb(1 - TailAtLeast(probs, k))
}

// Mean returns the expected number of successes, Σ probs[i].
func Mean(probs []float64) float64 {
	var sum float64
	for _, p := range probs {
		sum += p
	}
	return sum
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// ForEachSubset calls fn with every subset of {0..n-1}, encoded as a
// bitmask, including the empty set. It panics if n exceeds
// MaxEnumerationBits.
func ForEachSubset(n int, fn func(mask uint32)) {
	if n < 0 || n > MaxEnumerationBits {
		panic(fmt.Sprintf("stats: subset enumeration over %d elements", n))
	}
	for mask := uint32(0); mask < 1<<uint(n); mask++ {
		fn(mask)
	}
}

// ForEachSubsetOfSize calls fn with every size-k subset of {0..n-1} as a
// bitmask, using Gosper's hack to walk same-popcount masks in order.
func ForEachSubsetOfSize(n, k int, fn func(mask uint32)) {
	if n < 0 || n > MaxEnumerationBits {
		panic(fmt.Sprintf("stats: subset enumeration over %d elements", n))
	}
	if k < 0 || k > n {
		return
	}
	if k == 0 {
		fn(0)
		return
	}
	limit := uint32(1) << uint(n)
	mask := uint32(1)<<uint(k) - 1
	for mask < limit {
		fn(mask)
		// Gosper's hack: next mask with the same popcount.
		c := mask & -mask
		r := mask + c
		if r >= limit || r == 0 {
			break
		}
		mask = (((r ^ mask) >> 2) / c) | r
	}
}

// SubsetProbability returns the probability that the success set is exactly
// the given mask: Π_{i in mask} probs[i] · Π_{j not in mask} (1 - probs[j]).
func SubsetProbability(probs []float64, mask uint32) float64 {
	p := 1.0
	for i, pi := range probs {
		if mask&(1<<uint(i)) != 0 {
			p *= pi
		} else {
			p *= 1 - pi
		}
	}
	return p
}

// KthSmallest returns the k-th smallest value (1-based) among the values
// whose index bit is set in mask. It panics if k is out of range for the
// mask's popcount.
func KthSmallest(values []float64, mask uint32, k int) float64 {
	n := bits.OnesCount32(mask)
	if k < 1 || k > n {
		panic(fmt.Sprintf("stats: order statistic %d of %d values", k, n))
	}
	sel := make([]float64, 0, n)
	for i, v := range values {
		if mask&(1<<uint(i)) != 0 {
			sel = append(sel, v)
		}
	}
	sort.Float64s(sel)
	return sel[k-1]
}

// TailAtLeastEnum computes P(X >= k) by exhaustive subset enumeration. It is
// the oracle used to validate the dynamic program and the form in which the
// paper states the subset risk formula.
func TailAtLeastEnum(probs []float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > len(probs) {
		return 0
	}
	var sum float64
	ForEachSubset(len(probs), func(mask uint32) {
		if bits.OnesCount32(mask) >= k {
			sum += SubsetProbability(probs, mask)
		}
	})
	return clampProb(sum)
}

// Binomial returns the binomial coefficient C(n, k) as a float64, which is
// exact for the small n used in schedule enumeration.
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return math.Round(c)
}
