package udptrans

import (
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
)

// A netBatcher is one implementation of grouped datagram I/O on a UDP
// socket: moving a burst of datagrams between user space and the kernel in
// as few system calls as the platform allows. Two are compiled in:
//
//   - "mmsg" (Linux): sendmmsg(2)/recvmmsg(2) through the stdlib syscall
//     package, one kernel entry per burst. See netbatch_mmsg.go.
//   - "portable": one Write/Read per datagram, semantically identical,
//     available everywhere. The delivered bytes are byte-for-byte the same
//     as the fast path's — only the syscall count differs — which the
//     differential transport test pins.
//
// The calls return value counts kernel entries, so callers can expose a
// syscalls-per-datagram ratio (the gateway bench's headline metric).
type netBatcher struct {
	name string
	// send writes bufs to the connected socket, returning how many
	// datagrams were written and how many kernel entries that took. rc is
	// the socket's cached raw connection; the portable path ignores it.
	send func(conn *net.UDPConn, rc syscall.RawConn, bufs [][]byte) (written, calls int, err error)
	// recv fills bufs with up to len(bufs) datagrams from the socket,
	// blocking until at least one arrives, and records each datagram's
	// length in sizes. Returns the datagram count and kernel entries.
	recv func(conn *net.UDPConn, rc syscall.RawConn, bufs [][]byte, sizes []int) (n, calls int, err error)
}

var portableBatcher = netBatcher{
	name: "portable",
	send: portableSend,
	recv: portableRecv,
}

// portableSend is the per-datagram fallback write path.
func portableSend(conn *net.UDPConn, _ syscall.RawConn, bufs [][]byte) (written, calls int, err error) {
	for _, b := range bufs {
		calls++
		if _, werr := conn.Write(b); werr != nil {
			return written, calls, werr
		}
		written++
	}
	return written, calls, nil
}

// portableRecv reads exactly one datagram per kernel entry.
func portableRecv(conn *net.UDPConn, _ syscall.RawConn, bufs [][]byte, sizes []int) (n, calls int, err error) {
	rn, rerr := conn.Read(bufs[0])
	if rerr != nil {
		return 0, 1, rerr
	}
	sizes[0] = rn
	return 1, 1, nil
}

// batcherTable enumerates every batcher compiled into this binary, fastest
// first; selection walks it in order and takes the first available one,
// exactly like the gf256 kernel table.
var batcherTable = []struct {
	b         *netBatcher
	available func() bool
}{
	{mmsgBatcher, mmsgAvailable},
	{&portableBatcher, func() bool { return true }},
}

// activeBatcher is the selected implementation, installed once by
// selectBatcher on first use and swapped only by ForceBatchMode (tests and
// benchmarks). Atomic so a test-time swap is safe under -race.
var activeBatcher atomic.Pointer[netBatcher]

var batcherOnce sync.Once

// batchEnv is the override knob, read once at first use: REMICSS_NETBATCH
// names the batching mode to use ("mmsg" or "portable"), mirroring
// REMICSS_GFKERNEL. CI runs a forced-portable leg so the fallback stays
// tested on Linux; naming an unavailable or unknown mode is a hard
// failure, not a silent fallback, because a typo here would otherwise
// un-test the path it meant to pin.
const batchEnv = "REMICSS_NETBATCH"

// batcher returns the active batching implementation, selecting it on
// first use.
func batcher() *netBatcher {
	batcherOnce.Do(selectBatcher)
	return activeBatcher.Load()
}

// selectBatcher installs the fastest available batcher, honoring batchEnv.
func selectBatcher() {
	if want := os.Getenv(batchEnv); want != "" {
		if err := forceBatchMode(want); err != nil {
			panic("udptrans: " + batchEnv + ": " + err.Error())
		}
		return
	}
	for _, e := range batcherTable {
		if e.b != nil && e.available() {
			activeBatcher.Store(e.b)
			return
		}
	}
	activeBatcher.Store(&portableBatcher) // unreachable: portable is always available
}

// BatchMode reports the name of the active batched-I/O mode ("mmsg" or
// "portable"), for logs and bench reports.
func BatchMode() string { return batcher().name }

// BatchModes lists the modes available on this machine, sorted by name.
// Every listed mode can be activated with ForceBatchMode; the differential
// transport test iterates this list so each compiled path is pinned
// against the portable reference no matter which one selection picked.
func BatchModes() []string {
	var names []string
	for _, e := range batcherTable {
		if e.b != nil && e.available() {
			names = append(names, e.b.name)
		}
	}
	sort.Strings(names)
	return names
}

// ForceBatchMode activates the named batching mode and returns a function
// restoring the previous one. It exists for tests and benchmarks that must
// pin or compare specific paths; production code selects once at first
// use. Concurrent batched I/O during a swap is safe (the pointer is
// atomic) but which mode a racing call gets is unspecified.
func ForceBatchMode(name string) (restore func(), err error) {
	prev := batcher()
	if err := forceBatchMode(name); err != nil {
		return nil, err
	}
	return func() { activeBatcher.Store(prev) }, nil
}

// forceBatchMode installs the named mode if it is compiled in and
// available.
func forceBatchMode(name string) error {
	for _, e := range batcherTable {
		if e.b == nil || e.b.name != name {
			continue
		}
		if !e.available() {
			return fmt.Errorf("batch mode %q is not available on this machine", name)
		}
		activeBatcher.Store(e.b)
		return nil
	}
	return fmt.Errorf("unknown batch mode %q (compiled in: %v)", name, compiledBatchModes())
}

// compiledBatchModes lists every mode in the table, available or not.
func compiledBatchModes() []string {
	var names []string
	for _, e := range batcherTable {
		if e.b != nil {
			names = append(names, e.b.name)
		}
	}
	return names
}
