package udptrans

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"remicss/internal/remicss"
	"remicss/internal/sharing"
)

func TestLoopbackEndToEnd(t *testing.T) {
	listener, err := Listen([]string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()

	scheme := sharing.NewAuto(rand.New(rand.NewSource(1)))
	var mu sync.Mutex
	delivered := make(map[uint64][]byte)
	recv, err := remicss.NewReceiver(remicss.ReceiverConfig{
		Scheme: scheme,
		Clock:  WallClock,
		OnSymbol: func(seq uint64, payload []byte, _ time.Duration) {
			mu.Lock()
			delivered[seq] = payload
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	listener.Serve(recv.HandleDatagram)

	links := make([]remicss.Link, 0, 3)
	for _, addr := range listener.Addrs() {
		link, err := Dial(addr, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer link.Close()
		links = append(links, link)
	}
	snd, err := remicss.NewSender(remicss.SenderConfig{
		Scheme:  scheme,
		Chooser: remicss.FixedChooser{K: 2, Mask: 0b111},
		Clock:   WallClock,
	}, links)
	if err != nil {
		t.Fatal(err)
	}

	const symbols = 50
	for i := 0; i < symbols; i++ {
		if err := snd.Send([]byte{byte(i), 0xAA, 0xBB}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(delivered)
		mu.Unlock()
		if n == symbols {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("delivered %d of %d before timeout", n, symbols)
		case <-time.After(10 * time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for seq, payload := range delivered {
		want := []byte{byte(seq), 0xAA, 0xBB}
		if !bytes.Equal(payload, want) {
			t.Errorf("symbol %d = %v, want %v", seq, payload, want)
		}
	}
}

func TestPacingLimitsRate(t *testing.T) {
	listener, err := Listen([]string{"127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()

	link, err := Dial(listener.Addrs()[0], 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	// Drain the initial burst then count sends accepted in 200ms.
	for link.Send([]byte{0}) {
	}
	accepted := 0
	start := time.Now()
	for time.Since(start) < 200*time.Millisecond {
		if link.Send([]byte{0}) {
			accepted++
		} else {
			time.Sleep(time.Millisecond)
		}
	}
	// 100 pkt/s for 200ms is ~20 packets; allow generous slack for timers.
	if accepted < 10 || accepted > 40 {
		t.Errorf("accepted %d sends in 200ms at 100 pkt/s", accepted)
	}
}

func TestWritableAndBacklogTrackTokens(t *testing.T) {
	listener, err := Listen([]string{"127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()

	link, err := Dial(listener.Addrs()[0], 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	if !link.Writable() {
		t.Fatal("fresh paced link not writable")
	}
	if !link.Send([]byte{0}) {
		t.Fatal("first send rejected")
	}
	if link.Writable() {
		t.Error("link writable with empty bucket")
	}
	if link.Backlog() <= 0 {
		t.Error("empty bucket reports zero backlog")
	}
	time.Sleep(150 * time.Millisecond) // > 1 token at 10/s
	if !link.Writable() {
		t.Error("link not writable after refill")
	}
}

func TestUnlimitedLinkAlwaysWritable(t *testing.T) {
	listener, err := Listen([]string{"127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()
	link, err := Dial(listener.Addrs()[0], 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	for i := 0; i < 100; i++ {
		if !link.Writable() {
			t.Fatal("unlimited link not writable")
		}
		if !link.Send([]byte{1}) {
			t.Fatal("unlimited link rejected send")
		}
	}
	if link.Backlog() != 0 {
		t.Error("unlimited link reports backlog")
	}
}

func TestClosedLink(t *testing.T) {
	listener, err := Listen([]string{"127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()
	link, err := Dial(listener.Addrs()[0], 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := link.Close(); err != nil {
		t.Fatal(err)
	}
	if link.Writable() {
		t.Error("closed link writable")
	}
	if link.Send([]byte{0}) {
		t.Error("closed link accepted send")
	}
}

func TestListenValidation(t *testing.T) {
	if _, err := Listen(nil); err == nil {
		t.Error("empty address list accepted")
	}
	if _, err := Listen([]string{"not an address"}); err == nil {
		t.Error("bad address accepted")
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial("bad address", 0, 0); err == nil {
		t.Error("bad address accepted")
	}
	if _, err := Dial("127.0.0.1:9", -1, 0); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestListenerCloseIdempotent(t *testing.T) {
	listener, err := Listen([]string{"127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	listener.Serve(func([]byte) {})
	if err := listener.Close(); err != nil {
		t.Fatal(err)
	}
	if err := listener.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDialImpairedValidation(t *testing.T) {
	if _, err := DialImpaired("127.0.0.1:9", 0, 0, Impairment{Loss: 1}); err == nil {
		t.Error("loss 1 accepted")
	}
	if _, err := DialImpaired("127.0.0.1:9", 0, 0, Impairment{Delay: -time.Second}); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestImpairedLossDropsDatagrams(t *testing.T) {
	listener, err := Listen([]string{"127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()
	var mu sync.Mutex
	received := 0
	listener.Serve(func([]byte) {
		mu.Lock()
		received++
		mu.Unlock()
	})

	link, err := DialImpaired(listener.Addrs()[0], 0, 0, Impairment{Loss: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	// Pace the sends: an unpaced blast overflows the kernel's receive
	// buffer and the measured loss would include kernel drops.
	const sent = 1000
	for i := 0; i < sent; i++ {
		if !link.Send([]byte{byte(i)}) {
			t.Fatal("impaired send rejected")
		}
		if i%20 == 19 {
			time.Sleep(time.Millisecond)
		}
	}
	time.Sleep(300 * time.Millisecond)
	mu.Lock()
	got := received
	mu.Unlock()
	// ~50% loss; loopback itself is effectively lossless at this rate.
	if got < sent*35/100 || got > sent*65/100 {
		t.Errorf("received %d of %d with 50%% impairment", got, sent)
	}
}

func TestImpairedDelayDefersDelivery(t *testing.T) {
	listener, err := Listen([]string{"127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()
	arrived := make(chan time.Time, 1)
	listener.Serve(func([]byte) {
		select {
		case arrived <- time.Now():
		default:
		}
	})

	link, err := DialImpaired(listener.Addrs()[0], 0, 0, Impairment{Delay: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	start := time.Now()
	if !link.Send([]byte{1}) {
		t.Fatal("send rejected")
	}
	select {
	case at := <-arrived:
		if elapsed := at.Sub(start); elapsed < 80*time.Millisecond {
			t.Errorf("datagram arrived after %v, want >= ~100ms", elapsed)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delayed datagram never arrived")
	}
}
