//go:build linux

package udptrans

// sendmmsg(2)/recvmmsg(2) syscall numbers for linux/amd64. The stdlib
// syscall package is frozen from before sendmmsg existed and does not
// export its number (it does export SYS_RECVMMSG; both are spelled out
// here so the fast path reads uniformly).
const (
	sysSendmmsg uintptr = 307
	sysRecvmmsg uintptr = 299
)
