//go:build linux

package udptrans

// sendmmsg(2)/recvmmsg(2) syscall numbers for linux/arm64 (the generic
// asm-generic table). See netbatch_sysnum_amd64.go for why these are
// spelled out rather than taken from the stdlib syscall package.
const (
	sysSendmmsg uintptr = 269
	sysRecvmmsg uintptr = 243
)
