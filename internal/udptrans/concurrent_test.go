package udptrans

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
	"time"

	"remicss/internal/remicss"
	"remicss/internal/sharing"
)

// TestConcurrentSendAndServe runs the full concurrent deployment shape
// over real loopback sockets: several goroutines share one sender, and
// ServeConcurrent feeds the receiver from one reader goroutine per
// channel with no copying or serialization in the transport. Under -race
// this checks the locking end to end. UDP is lossy even on loopback, so
// the delivery assertion is a tolerant floor — replication (k=1 over 3
// channels) makes any single surviving share sufficient.
func TestConcurrentSendAndServe(t *testing.T) {
	listener, err := Listen([]string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()

	const (
		senders   = 4
		perSender = 100
	)
	total := senders * perSender

	var mu sync.Mutex
	seen := make(map[uint64]bool, total)
	recv, err := remicss.NewReceiver(remicss.ReceiverConfig{
		Scheme: sharing.NewAuto(rand.New(rand.NewSource(1))),
		Clock:  WallClock,
		OnSymbol: func(seq uint64, payload []byte, _ time.Duration) {
			if len(payload) < 8 {
				t.Errorf("short payload: %d bytes", len(payload))
				return
			}
			id := binary.BigEndian.Uint64(payload)
			if id >= uint64(total) {
				t.Errorf("delivered id %d out of range", id)
				return
			}
			for _, b := range payload[8:] {
				if b != byte(id) {
					t.Errorf("id %d: corrupted payload", id)
					break
				}
			}
			mu.Lock()
			seen[id] = true
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	listener.ServeConcurrent(recv.HandleDatagram)

	var links []remicss.Link
	for _, addr := range listener.Addrs() {
		l, err := Dial(addr, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		links = append(links, l)
	}
	sender, err := remicss.NewSender(remicss.SenderConfig{
		Scheme:  sharing.NewAuto(rand.New(rand.NewSource(1))),
		Chooser: remicss.FixedChooser{K: 1, Mask: 0b111},
		Clock:   WallClock,
	}, links)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := make([]byte, 256)
			for i := 0; i < perSender; i++ {
				id := uint64(g*perSender + i)
				binary.BigEndian.PutUint64(payload, id)
				for j := 8; j < len(payload); j++ {
					payload[j] = byte(id)
				}
				if err := sender.Send(payload); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n == total {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	delivered := len(seen)
	mu.Unlock()
	// Socket buffers can overflow under a four-goroutine burst; require a
	// comfortable majority rather than inviting flakes.
	if delivered < total/2 {
		t.Errorf("delivered %d of %d symbols, want at least %d", delivered, total, total/2)
	}
}
