//go:build !linux || !(amd64 || arm64)

package udptrans

// mmsgBatcher is absent on platforms without the sendmmsg/recvmmsg fast
// path (or whose msghdr layout the fast path does not hardcode); selection
// falls through to the portable per-datagram batcher, and forcing
// REMICSS_NETBATCH=mmsg here fails loudly.
var mmsgBatcher *netBatcher

func mmsgAvailable() bool { return false }
