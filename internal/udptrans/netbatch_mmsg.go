//go:build linux && (amd64 || arm64)

// The sendmmsg(2)/recvmmsg(2) fast path: one kernel entry moves a whole
// burst of datagrams. Built from the stdlib syscall package only — the
// syscall numbers exist on every linux port, but the mmsghdr layout below
// hardcodes the 64-bit msghdr (8-byte pointers, uint64 iovlen, 4 bytes of
// tail padding), so the build tag admits exactly the 64-bit targets whose
// generated syscall.Msghdr matches it. Other platforms compile the
// portable per-datagram path (netbatch_nommsg.go).
package udptrans

import (
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors struct mmsghdr: a msghdr plus the per-message byte count
// the kernel fills in on receive, padded to 8 bytes.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// mmsgScratch is the per-call header and iovec working set, recycled so
// steady-state batched I/O does not allocate. The syscall loop state lives
// in fields rather than locals, and the RawConn callbacks are bound once
// per scratch (sendFn/recvFn), because a closure capturing per-call
// variables would heap-allocate on every burst. The iovec base pointers are
// dropped after each call (see release): retaining them would pin caller
// buffers, the same no-retention contract Links obey.
type mmsgScratch struct {
	hdrs []mmsghdr
	iovs []syscall.Iovec

	total   int // messages loaded for this call
	written int // messages the kernel accepted so far (send)
	n       int // messages the kernel returned (recv)
	calls   int // kernel entries spent
	err     error

	sendFn func(fd uintptr) bool // bound sendLoop, allocated once
	recvFn func(fd uintptr) bool // bound recvLoop, allocated once
}

// Recycling goes through an atomic slot with the pool as overflow so the
// zero-allocation pins hold under the race detector (see batchScratch).
var (
	mmsgSlot atomic.Pointer[mmsgScratch]
	mmsgPool = sync.Pool{New: func() any {
		sc := new(mmsgScratch)
		sc.sendFn = sc.sendLoop
		sc.recvFn = sc.recvLoop
		return sc
	}}
)

// getMmsgScratch claims a private working set for one batched syscall.
func getMmsgScratch() *mmsgScratch {
	if sc := mmsgSlot.Swap(nil); sc != nil {
		return sc
	}
	return mmsgPool.Get().(*mmsgScratch)
}

// grow sizes the scratch for n messages, one iovec per message (shares
// travel as single contiguous datagrams), and resets the loop state.
func (sc *mmsgScratch) grow(n int) {
	if cap(sc.hdrs) < n {
		sc.hdrs = make([]mmsghdr, n)
		sc.iovs = make([]syscall.Iovec, n)
	}
	sc.hdrs = sc.hdrs[:n]
	sc.iovs = sc.iovs[:n]
	sc.total = n
	sc.written = 0
	sc.n = 0
	sc.calls = 0
	sc.err = nil
}

// load points message i at buf.
func (sc *mmsgScratch) load(i int, buf []byte) {
	iov := &sc.iovs[i]
	if len(buf) > 0 {
		iov.Base = &buf[0]
	} else {
		iov.Base = nil
	}
	iov.SetLen(len(buf))
	h := &sc.hdrs[i]
	h.hdr = syscall.Msghdr{Iov: iov, Iovlen: 1}
	h.n = 0
}

// release drops every buffer pointer before the scratch returns to the
// pool.
func (sc *mmsgScratch) release() {
	for i := range sc.iovs {
		sc.iovs[i].Base = nil
	}
	if mmsgSlot.CompareAndSwap(nil, sc) {
		return
	}
	mmsgPool.Put(sc)
}

// sendLoop is the RawConn write callback: it drains the loaded burst with
// as few sendmmsg calls as the socket buffer allows, returning false on
// EAGAIN so the runtime poller parks until the socket is writable again.
func (sc *mmsgScratch) sendLoop(fd uintptr) bool {
	for sc.written < sc.total {
		n, _, errno := syscall.Syscall6(sysSendmmsg, fd,
			uintptr(unsafe.Pointer(&sc.hdrs[sc.written])), uintptr(sc.total-sc.written),
			syscall.MSG_DONTWAIT, 0, 0)
		sc.calls++
		if errno == syscall.EAGAIN {
			return false // wait for writability, then resume the burst
		}
		if errno != 0 {
			sc.err = errno
			return true
		}
		sc.written += int(n)
	}
	return true
}

// recvLoop is the RawConn read callback: one recvmmsg pulls up to total
// datagrams, returning false on EAGAIN so the poller parks until at least
// one arrives.
func (sc *mmsgScratch) recvLoop(fd uintptr) bool {
	r, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
		uintptr(unsafe.Pointer(&sc.hdrs[0])), uintptr(sc.total),
		syscall.MSG_DONTWAIT, 0, 0)
	sc.calls++
	if errno == syscall.EAGAIN {
		return false // wait for readability
	}
	if errno != 0 {
		sc.err = errno
		return true
	}
	sc.n = int(r)
	return true
}

var mmsgBatcher = &netBatcher{
	name: "mmsg",
	send: mmsgSend,
	recv: mmsgRecv,
}

func mmsgAvailable() bool { return true }

// mmsgSend writes the burst with as few sendmmsg calls as the socket
// buffer allows, integrating with the runtime poller on EAGAIN.
func mmsgSend(_ *net.UDPConn, rc syscall.RawConn, bufs [][]byte) (written, calls int, err error) {
	sc := getMmsgScratch()
	defer sc.release()
	sc.grow(len(bufs))
	for i, b := range bufs {
		sc.load(i, b)
	}
	werr := rc.Write(sc.sendFn)
	written, calls, err = sc.written, sc.calls, sc.err
	if err == nil {
		err = werr
	}
	return written, calls, err
}

// mmsgRecv pulls up to len(bufs) datagrams in one kernel entry, blocking
// via the runtime poller until at least one arrives.
func mmsgRecv(_ *net.UDPConn, rc syscall.RawConn, bufs [][]byte, sizes []int) (n, calls int, err error) {
	sc := getMmsgScratch()
	defer sc.release()
	sc.grow(len(bufs))
	for i, b := range bufs {
		sc.load(i, b)
	}
	rerr := rc.Read(sc.recvFn)
	n, calls, err = sc.n, sc.calls, sc.err
	if err == nil {
		err = rerr
	}
	for i := 0; i < n; i++ {
		sizes[i] = int(sc.hdrs[i].n)
	}
	return n, calls, err
}
