// Package udptrans carries ReMICSS shares over real UDP sockets, one socket
// per channel. It is the "real network" counterpart of internal/netem: the
// same remicss.Sender/Receiver run unchanged over either.
//
// Because distinct loopback or LAN sockets do not themselves have distinct
// capacities, each Link includes an optional token-bucket pacer so examples
// can reproduce the paper's shaped-channel setups (htb-style rate limiting)
// on a single machine. A Link without a rate limit is always writable.
//
// Clock discipline: senders stamp shares with WallClock (nanoseconds since
// the Unix epoch), so one-way delay measurements are meaningful whenever
// sender and receiver share a clock — same process or same host, exactly
// the paper's loopback-echo arrangement.
package udptrans

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"remicss/internal/obs"
)

// MaxDatagram is the receive buffer size; larger datagrams are truncated
// and will fail wire validation.
const MaxDatagram = 65535

// WallClock returns wall time as a Duration since the Unix epoch, the clock
// both ends of a UDP session must use for delay measurement.
func WallClock() time.Duration {
	return time.Duration(time.Now().UnixNano())
}

// Impairment adds userspace netem-style degradation to a UDP link, so the
// paper's Lossy and Delayed setups can be reproduced over real sockets on a
// machine without traffic-control privileges. Loss drops datagrams before
// the socket write; Delay defers the write on a timer (which can reorder,
// as real jitter does).
type Impairment struct {
	// Loss is the probability a datagram is silently dropped. In [0, 1).
	Loss float64
	// Delay defers each datagram's transmission.
	Delay time.Duration
	// Seed fixes the loss process; 0 derives one from the clock.
	Seed int64
}

func (im Impairment) validate() error {
	if im.Loss < 0 || im.Loss >= 1 {
		return fmt.Errorf("udptrans: impairment loss %v outside [0, 1)", im.Loss)
	}
	if im.Delay < 0 {
		return fmt.Errorf("udptrans: negative impairment delay %v", im.Delay)
	}
	return nil
}

func (im Impairment) enabled() bool { return im.Loss > 0 || im.Delay > 0 }

// Link is one UDP channel to the receiver. It satisfies remicss.Link.
type Link struct {
	conn *net.UDPConn
	// rc is the socket's raw connection, resolved once at Dial so the
	// batched send path does not allocate one per burst; nil when the
	// socket refused it, which forces the portable path for this link.
	rc syscall.RawConn

	mu     sync.Mutex
	rate   float64 // packets per second; 0 means unlimited
	burst  float64
	tokens float64   // guarded by mu
	last   time.Time // guarded by mu

	impair Impairment
	rng    *rand.Rand // guarded by mu

	closed bool // guarded by mu

	lastErr error // guarded by mu

	// Optional observability, attached via Instrument; all nil when
	// uninstrumented. Handles are atomic, so Send updates them outside mu.
	metSent       *obs.Counter
	metPaced      *obs.Counter
	metLost       *obs.Counter
	metSockErr    *obs.Counter
	metBatchWrite *obs.Counter
}

// noteSockErr counts a failed socket write and retains the error for
// LastSendError.
func (l *Link) noteSockErr(err error) {
	if l.metSockErr != nil {
		l.metSockErr.Inc()
	}
	l.mu.Lock()
	l.lastErr = err
	l.mu.Unlock()
}

// LastSendError returns the most recent socket-level write error, or nil
// if no write has failed. Send itself only reports a boolean (UDP is
// best-effort and the protocol treats socket errors as drops); this
// surfaces the underlying cause for health tracking and diagnostics —
// e.g. distinguishing a paced drop from ENETUNREACH on a dead interface.
func (l *Link) LastSendError() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastErr
}

// Instrument registers per-channel series on reg and mirrors Send outcomes
// into them: udp_sent_datagrams_total (socket writes issued, immediate or
// deferred), udp_paced_drops_total (sends refused by pacing or a closed
// link), udp_impairment_lost_total (datagrams the userspace impairment
// dropped), and udp_socket_errors_total (socket writes that failed), all
// labeled {channel="i"}. Call before traffic starts.
func (l *Link) Instrument(reg *obs.Registry, channel int) {
	label := obs.Label{Key: "channel", Value: strconv.Itoa(channel)}
	l.metSent = reg.Counter("udp_sent_datagrams_total", label)
	l.metPaced = reg.Counter("udp_paced_drops_total", label)
	l.metLost = reg.Counter("udp_impairment_lost_total", label)
	l.metSockErr = reg.Counter("udp_socket_errors_total", label)
	l.metBatchWrite = reg.Counter("udp_batch_writes_total", label)
}

// Dial opens a channel to the receiver address ("host:port"). rate > 0
// enables token-bucket pacing at that many packets per second with the
// given burst (defaults to 8, the emulator's default queue depth, when
// burst <= 0).
func Dial(raddr string, rate float64, burst int) (*Link, error) {
	addr, err := net.ResolveUDPAddr("udp", raddr)
	if err != nil {
		return nil, fmt.Errorf("udptrans: resolving %q: %w", raddr, err)
	}
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return nil, fmt.Errorf("udptrans: dialing %q: %w", raddr, err)
	}
	if rate < 0 {
		conn.Close()
		return nil, fmt.Errorf("udptrans: negative rate %v", rate)
	}
	b := float64(burst)
	if b <= 0 {
		b = 8
	}
	rc, err := conn.SyscallConn()
	if err != nil {
		rc = nil // portable batching only for this link
	}
	return &Link{
		conn:   conn,
		rc:     rc,
		rate:   rate,
		burst:  b,
		tokens: b,
		last:   time.Now(),
	}, nil
}

// DialImpaired is Dial plus userspace loss/delay emulation.
func DialImpaired(raddr string, rate float64, burst int, im Impairment) (*Link, error) {
	if err := im.validate(); err != nil {
		return nil, err
	}
	l, err := Dial(raddr, rate, burst)
	if err != nil {
		return nil, err
	}
	seed := im.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	l.impair = im
	l.rng = rand.New(rand.NewSource(seed)) //lint:allow mutexguard construction: the link is not shared until DialImpaired returns
	return l, nil
}

// refill tops up the token bucket.
//
//lint:allow mutexguard callers hold mu
func (l *Link) refill(now time.Time) {
	if l.rate == 0 {
		return
	}
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.last = now
}

// Writable implements remicss.Link: true when pacing permits a send.
func (l *Link) Writable() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	if l.rate == 0 {
		return true
	}
	l.refill(time.Now())
	return l.tokens >= 1
}

// Backlog implements remicss.Link: the time until the next token.
func (l *Link) Backlog() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.rate == 0 || l.closed {
		return 0
	}
	l.refill(time.Now())
	if l.tokens >= 1 {
		return 0
	}
	return time.Duration((1 - l.tokens) / l.rate * float64(time.Second))
}

// Send implements remicss.Link. It returns false when pacing forbids the
// send or the link is closed; socket-level errors also report false (UDP is
// best-effort, so the protocol treats them as drops).
func (l *Link) Send(datagram []byte) bool {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		if l.metPaced != nil {
			l.metPaced.Inc()
		}
		return false
	}
	if l.rate > 0 {
		l.refill(time.Now())
		if l.tokens < 1 {
			l.mu.Unlock()
			if l.metPaced != nil {
				l.metPaced.Inc()
			}
			return false
		}
		l.tokens--
	}
	impaired := l.impair.enabled()
	var drop bool
	if impaired && l.impair.Loss > 0 {
		drop = l.rng.Float64() < l.impair.Loss
	}
	delay := l.impair.Delay
	l.mu.Unlock()

	if drop {
		if l.metLost != nil {
			l.metLost.Inc()
		}
		return true // accepted, then "lost on the wire"
	}
	if impaired && delay > 0 {
		// The datagram leaves later; copy it since the caller may reuse the
		// buffer.
		buf := make([]byte, len(datagram))
		copy(buf, datagram)
		if l.metSent != nil {
			l.metSent.Inc()
		}
		time.AfterFunc(delay, func() {
			l.mu.Lock()
			closed := l.closed
			l.mu.Unlock()
			if !closed {
				if _, err := l.conn.Write(buf); err != nil {
					l.noteSockErr(err)
				}
			}
		})
		return true
	}
	_, err := l.conn.Write(datagram)
	if l.metSent != nil {
		l.metSent.Inc()
	}
	if err != nil {
		l.noteSockErr(err)
		return false
	}
	return true
}

// batchScratch is SendBatch's per-call working set, recycled so the
// steady-state batched send path does not allocate. The datagram slice
// headers are cleared after each call (retaining them would pin caller
// buffers, breaking the Link no-retention contract). Recycling goes
// through an atomic slot with a sync.Pool overflow, the same idiom as the
// sender's scratch: the pool alone drops Put items under the race
// detector, which would make the zero-allocation pins flaky.
type batchScratch struct {
	direct [][]byte
}

var (
	batchScratchSlot atomic.Pointer[batchScratch]
	batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}
)

// getBatchScratch claims a private working set for one SendBatch call.
func getBatchScratch() *batchScratch {
	if sc := batchScratchSlot.Swap(nil); sc != nil {
		return sc
	}
	return batchScratchPool.Get().(*batchScratch)
}

// putBatchScratch returns a working set claimed by getBatchScratch.
func putBatchScratch(sc *batchScratch) {
	if batchScratchSlot.CompareAndSwap(nil, sc) {
		return
	}
	batchScratchPool.Put(sc)
}

// SendBatch sends a burst of datagrams through the link, spending as few
// kernel entries as the active batch mode allows (see BatchMode). The
// observable behavior matches calling Send once per datagram — pacing,
// impairment, and error accounting are the same, and delivered bytes are
// byte-for-byte identical — except that the token bucket is consulted once
// for the whole burst and the unimpaired datagrams enter the kernel
// together. It returns how many datagrams were accepted, i.e. the count for
// which Send would have returned true: pacing-refused datagrams past the
// admitted prefix and datagrams failing at the socket are excluded,
// impairment-lost ones (accepted, then "lost on the wire") are included.
// Like Send, the datagram buffers are not retained after return.
func (l *Link) SendBatch(datagrams [][]byte) int {
	if len(datagrams) == 0 {
		return 0
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		if l.metPaced != nil {
			l.metPaced.Add(int64(len(datagrams)))
		}
		return 0
	}
	admit := len(datagrams)
	if l.rate > 0 {
		l.refill(time.Now())
		if t := int(l.tokens); t < admit {
			admit = t
		}
		if admit < 0 {
			admit = 0
		}
		l.tokens -= float64(admit)
	}
	// Partition the admitted prefix while still holding mu (the loss RNG is
	// guarded by it), deferring counter updates and socket work to after the
	// unlock.
	sc := getBatchScratch()
	sc.direct = sc.direct[:0]
	var lost, delayed int
	impaired := l.impair.enabled()
	delay := l.impair.Delay
	for _, d := range datagrams[:admit] {
		if impaired && l.impair.Loss > 0 && l.rng.Float64() < l.impair.Loss {
			lost++
			continue
		}
		if impaired && delay > 0 {
			// Deferred datagrams leave on one timer each, exactly as in
			// Send; copied because the caller may reuse the buffer.
			buf := make([]byte, len(d))
			copy(buf, d)
			delayed++
			time.AfterFunc(delay, func() {
				l.mu.Lock()
				closed := l.closed
				l.mu.Unlock()
				if !closed {
					if _, err := l.conn.Write(buf); err != nil {
						l.noteSockErr(err)
					}
				}
			})
			continue
		}
		sc.direct = append(sc.direct, d)
	}
	l.mu.Unlock()

	if paced := len(datagrams) - admit; paced > 0 && l.metPaced != nil {
		l.metPaced.Add(int64(paced))
	}
	if lost > 0 && l.metLost != nil {
		l.metLost.Add(int64(lost))
	}
	if delayed > 0 && l.metSent != nil {
		l.metSent.Add(int64(delayed))
	}
	accepted := lost + delayed
	if len(sc.direct) > 0 {
		nb := batcher()
		if l.rc == nil {
			nb = &portableBatcher
		}
		written, calls, err := nb.send(l.conn, l.rc, sc.direct)
		if l.metSent != nil {
			l.metSent.Add(int64(written))
		}
		if l.metBatchWrite != nil {
			l.metBatchWrite.Add(int64(calls))
		}
		if err != nil {
			l.noteSockErr(err)
		}
		accepted += written
	}
	for i := range sc.direct {
		sc.direct[i] = nil
	}
	putBatchScratch(sc)
	return accepted
}

// LocalAddr returns the local socket address.
func (l *Link) LocalAddr() net.Addr { return l.conn.LocalAddr() }

// Close releases the socket.
func (l *Link) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	return l.conn.Close()
}

// Listener receives share datagrams across several UDP sockets (one per
// channel) and feeds them into a handler: serialized and copied via Serve,
// or directly from the per-socket goroutines via ServeConcurrent.
type Listener struct {
	conns []*net.UDPConn
	// rcs caches each socket's raw connection for the batched receive path,
	// indexed like conns; a nil entry means the socket refused it and that
	// socket reads via the portable path.
	rcs []syscall.RawConn

	mu     sync.Mutex
	wg     sync.WaitGroup
	closed bool // guarded by mu

	// Optional per-socket receive counters, attached via Instrument; nil
	// slices when uninstrumented. Indexed like conns.
	metRecv      []*obs.Counter
	metRecvBytes []*obs.Counter
	metBatchRead []*obs.Counter
}

// Instrument registers per-socket receive series on reg —
// udp_recv_datagrams_total{channel="i"}, udp_recv_bytes_total{channel="i"},
// and udp_batch_reads_total{channel="i"} (kernel entries spent receiving,
// only advanced by ServeBatch), indexed in Addrs order — and updates them
// from the reader goroutines. Call before serving starts.
func (l *Listener) Instrument(reg *obs.Registry) {
	l.metRecv = make([]*obs.Counter, len(l.conns))
	l.metRecvBytes = make([]*obs.Counter, len(l.conns))
	l.metBatchRead = make([]*obs.Counter, len(l.conns))
	for i := range l.conns {
		label := obs.Label{Key: "channel", Value: strconv.Itoa(i)}
		l.metRecv[i] = reg.Counter("udp_recv_datagrams_total", label)
		l.metRecvBytes[i] = reg.Counter("udp_recv_bytes_total", label)
		l.metBatchRead[i] = reg.Counter("udp_batch_reads_total", label)
	}
}

// countRecv updates the receive counters for socket i, if instrumented.
func (l *Listener) countRecv(i, n int) {
	if l.metRecv == nil {
		return
	}
	l.metRecv[i].Inc()
	l.metRecvBytes[i].Add(int64(n))
}

// Listen binds one UDP socket per address. Addresses may use port 0 to let
// the kernel pick; Addrs reports the bound addresses for the sender to
// dial.
func Listen(addrs []string) (*Listener, error) {
	if len(addrs) == 0 {
		return nil, errors.New("udptrans: no listen addresses")
	}
	l := &Listener{}
	for _, a := range addrs {
		ua, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("udptrans: resolving %q: %w", a, err)
		}
		conn, err := net.ListenUDP("udp", ua)
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("udptrans: listening on %q: %w", a, err)
		}
		rc, rerr := conn.SyscallConn()
		if rerr != nil {
			rc = nil // portable batched reads only for this socket
		}
		l.conns = append(l.conns, conn)
		l.rcs = append(l.rcs, rc)
	}
	return l, nil
}

// Addrs returns the bound address of every channel socket, in order.
func (l *Listener) Addrs() []string {
	out := make([]string, len(l.conns))
	for i, c := range l.conns {
		out[i] = c.LocalAddr().String()
	}
	return out
}

// recvBufPool recycles full-size receive buffers across the Serve reader
// goroutines, so steady-state ingest performs zero heap allocations per
// datagram (it used to copy each datagram into a fresh slice). Buffers are
// pooled as pointers to avoid boxing the slice header on every Put, and
// recycled through an atomic slot with the pool as overflow so the
// zero-allocation pin holds under the race detector (see batchScratch).
var (
	recvBufSlot atomic.Pointer[[]byte]
	recvBufPool = sync.Pool{New: func() any {
		b := make([]byte, MaxDatagram)
		return &b
	}}
)

// getRecvBuf claims a full-size receive buffer.
func getRecvBuf() *[]byte {
	if bp := recvBufSlot.Swap(nil); bp != nil {
		return bp
	}
	return recvBufPool.Get().(*[]byte)
}

// putRecvBuf returns a buffer claimed by getRecvBuf.
func putRecvBuf(bp *[]byte) {
	if recvBufSlot.CompareAndSwap(nil, bp) {
		return
	}
	recvBufPool.Put(bp)
}

// dispatch hands one received datagram, already sitting in the pooled
// buffer bp, to handle under handleMu, then recycles the buffer. Split from
// the Serve read loop so the per-datagram dispatch cost is pinned by an
// AllocsPerRun test without a socket in the loop.
//
//remicss:noalloc
func (l *Listener) dispatch(i, n int, bp *[]byte, handleMu *sync.Mutex, handle func(datagram []byte)) {
	l.countRecv(i, n)
	handleMu.Lock()
	handle((*bp)[:n])
	handleMu.Unlock()
	putRecvBuf(bp)
}

// Serve starts one reader goroutine per socket, invoking handle for each
// datagram. Calls to handle are serialized with an internal mutex, so a
// non-thread-safe remicss.Receiver is safe to use directly. The datagram
// slice is backed by a pooled buffer that is reused after handle returns,
// so the handler must copy anything it keeps (remicss.Receiver already
// does). Serve returns immediately; Close stops the readers and waits for
// them.
func (l *Listener) Serve(handle func(datagram []byte)) {
	var handleMu sync.Mutex
	for i, conn := range l.conns {
		i, conn := i, conn
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			for {
				bp := getRecvBuf()
				n, err := conn.Read(*bp)
				if err != nil {
					putRecvBuf(bp)
					return // closed
				}
				l.dispatch(i, n, bp, &handleMu, handle)
			}
		}()
	}
}

// ServeConcurrent starts one reader goroutine per socket, invoking handle
// for each datagram directly from that socket's goroutine with no internal
// serialization or copying: the slice is reused for the next read, so the
// handler must not retain it after returning. Intended for handlers that
// are themselves safe for concurrent use and copy what they keep, such as
// remicss.Receiver.HandleDatagram, whose sharded reassembly state lets
// the per-socket goroutines proceed in parallel (they contend only when
// datagrams hash to the same shard) — one slow channel then cannot stall
// ingest from the others. Returns immediately; Close stops the readers and
// waits for them.
func (l *Listener) ServeConcurrent(handle func(datagram []byte)) {
	for i, conn := range l.conns {
		i, conn := i, conn
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			buf := make([]byte, MaxDatagram)
			for {
				n, err := conn.Read(buf)
				if err != nil {
					return // closed
				}
				l.countRecv(i, n)
				handle(buf[:n])
			}
		}()
	}
}

// recvBatch is how many datagrams one ServeBatch kernel entry may return;
// each reader goroutine holds recvBatch full-size buffers (1 MiB total).
const recvBatch = 16

// ServeBatch starts one reader goroutine per socket, pulling datagrams in
// kernel batches (recvmmsg where available — see BatchMode) and invoking
// handle for each, directly from that socket's goroutine with no internal
// serialization or copying, like ServeConcurrent: the buffers are reused
// for the next batch, so the handler must not retain its argument after
// returning. Under bursty ingest this divides the syscalls-per-datagram
// cost by up to recvBatch; delivered bytes are identical to the other
// serving modes'. Returns immediately; Close stops the readers and waits
// for them.
func (l *Listener) ServeBatch(handle func(datagram []byte)) {
	for i, conn := range l.conns {
		i, conn, rc := i, conn, l.rcs[i]
		nb := batcher()
		if rc == nil {
			nb = &portableBatcher
		}
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			bufs := make([][]byte, recvBatch)
			for j := range bufs {
				bufs[j] = make([]byte, MaxDatagram)
			}
			sizes := make([]int, recvBatch)
			for {
				n, calls, err := nb.recv(conn, rc, bufs, sizes)
				if err != nil {
					return // closed
				}
				if l.metBatchRead != nil {
					l.metBatchRead[i].Add(int64(calls))
				}
				for j := 0; j < n; j++ {
					l.countRecv(i, sizes[j])
					handle(bufs[j][:sizes[j]])
				}
			}
		}()
	}
}

// Close shuts every socket and waits for reader goroutines to exit.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	var firstErr error
	for _, c := range l.conns {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	l.wg.Wait()
	return firstErr
}
