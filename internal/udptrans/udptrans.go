// Package udptrans carries ReMICSS shares over real UDP sockets, one socket
// per channel. It is the "real network" counterpart of internal/netem: the
// same remicss.Sender/Receiver run unchanged over either.
//
// Because distinct loopback or LAN sockets do not themselves have distinct
// capacities, each Link includes an optional token-bucket pacer so examples
// can reproduce the paper's shaped-channel setups (htb-style rate limiting)
// on a single machine. A Link without a rate limit is always writable.
//
// Clock discipline: senders stamp shares with WallClock (nanoseconds since
// the Unix epoch), so one-way delay measurements are meaningful whenever
// sender and receiver share a clock — same process or same host, exactly
// the paper's loopback-echo arrangement.
package udptrans

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"time"

	"remicss/internal/obs"
)

// MaxDatagram is the receive buffer size; larger datagrams are truncated
// and will fail wire validation.
const MaxDatagram = 65535

// WallClock returns wall time as a Duration since the Unix epoch, the clock
// both ends of a UDP session must use for delay measurement.
func WallClock() time.Duration {
	return time.Duration(time.Now().UnixNano())
}

// Impairment adds userspace netem-style degradation to a UDP link, so the
// paper's Lossy and Delayed setups can be reproduced over real sockets on a
// machine without traffic-control privileges. Loss drops datagrams before
// the socket write; Delay defers the write on a timer (which can reorder,
// as real jitter does).
type Impairment struct {
	// Loss is the probability a datagram is silently dropped. In [0, 1).
	Loss float64
	// Delay defers each datagram's transmission.
	Delay time.Duration
	// Seed fixes the loss process; 0 derives one from the clock.
	Seed int64
}

func (im Impairment) validate() error {
	if im.Loss < 0 || im.Loss >= 1 {
		return fmt.Errorf("udptrans: impairment loss %v outside [0, 1)", im.Loss)
	}
	if im.Delay < 0 {
		return fmt.Errorf("udptrans: negative impairment delay %v", im.Delay)
	}
	return nil
}

func (im Impairment) enabled() bool { return im.Loss > 0 || im.Delay > 0 }

// Link is one UDP channel to the receiver. It satisfies remicss.Link.
type Link struct {
	conn *net.UDPConn

	mu     sync.Mutex
	rate   float64 // packets per second; 0 means unlimited
	burst  float64
	tokens float64   // guarded by mu
	last   time.Time // guarded by mu

	impair Impairment
	rng    *rand.Rand // guarded by mu

	closed bool // guarded by mu

	lastErr error // guarded by mu

	// Optional observability, attached via Instrument; all nil when
	// uninstrumented. Handles are atomic, so Send updates them outside mu.
	metSent    *obs.Counter
	metPaced   *obs.Counter
	metLost    *obs.Counter
	metSockErr *obs.Counter
}

// noteSockErr counts a failed socket write and retains the error for
// LastSendError.
func (l *Link) noteSockErr(err error) {
	if l.metSockErr != nil {
		l.metSockErr.Inc()
	}
	l.mu.Lock()
	l.lastErr = err
	l.mu.Unlock()
}

// LastSendError returns the most recent socket-level write error, or nil
// if no write has failed. Send itself only reports a boolean (UDP is
// best-effort and the protocol treats socket errors as drops); this
// surfaces the underlying cause for health tracking and diagnostics —
// e.g. distinguishing a paced drop from ENETUNREACH on a dead interface.
func (l *Link) LastSendError() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastErr
}

// Instrument registers per-channel series on reg and mirrors Send outcomes
// into them: udp_sent_datagrams_total (socket writes issued, immediate or
// deferred), udp_paced_drops_total (sends refused by pacing or a closed
// link), udp_impairment_lost_total (datagrams the userspace impairment
// dropped), and udp_socket_errors_total (socket writes that failed), all
// labeled {channel="i"}. Call before traffic starts.
func (l *Link) Instrument(reg *obs.Registry, channel int) {
	label := obs.Label{Key: "channel", Value: strconv.Itoa(channel)}
	l.metSent = reg.Counter("udp_sent_datagrams_total", label)
	l.metPaced = reg.Counter("udp_paced_drops_total", label)
	l.metLost = reg.Counter("udp_impairment_lost_total", label)
	l.metSockErr = reg.Counter("udp_socket_errors_total", label)
}

// Dial opens a channel to the receiver address ("host:port"). rate > 0
// enables token-bucket pacing at that many packets per second with the
// given burst (defaults to 8, the emulator's default queue depth, when
// burst <= 0).
func Dial(raddr string, rate float64, burst int) (*Link, error) {
	addr, err := net.ResolveUDPAddr("udp", raddr)
	if err != nil {
		return nil, fmt.Errorf("udptrans: resolving %q: %w", raddr, err)
	}
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return nil, fmt.Errorf("udptrans: dialing %q: %w", raddr, err)
	}
	if rate < 0 {
		conn.Close()
		return nil, fmt.Errorf("udptrans: negative rate %v", rate)
	}
	b := float64(burst)
	if b <= 0 {
		b = 8
	}
	return &Link{
		conn:   conn,
		rate:   rate,
		burst:  b,
		tokens: b,
		last:   time.Now(),
	}, nil
}

// DialImpaired is Dial plus userspace loss/delay emulation.
func DialImpaired(raddr string, rate float64, burst int, im Impairment) (*Link, error) {
	if err := im.validate(); err != nil {
		return nil, err
	}
	l, err := Dial(raddr, rate, burst)
	if err != nil {
		return nil, err
	}
	seed := im.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	l.impair = im
	l.rng = rand.New(rand.NewSource(seed)) //lint:allow mutexguard construction: the link is not shared until DialImpaired returns
	return l, nil
}

// refill tops up the token bucket.
//
//lint:allow mutexguard callers hold mu
func (l *Link) refill(now time.Time) {
	if l.rate == 0 {
		return
	}
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.last = now
}

// Writable implements remicss.Link: true when pacing permits a send.
func (l *Link) Writable() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	if l.rate == 0 {
		return true
	}
	l.refill(time.Now())
	return l.tokens >= 1
}

// Backlog implements remicss.Link: the time until the next token.
func (l *Link) Backlog() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.rate == 0 || l.closed {
		return 0
	}
	l.refill(time.Now())
	if l.tokens >= 1 {
		return 0
	}
	return time.Duration((1 - l.tokens) / l.rate * float64(time.Second))
}

// Send implements remicss.Link. It returns false when pacing forbids the
// send or the link is closed; socket-level errors also report false (UDP is
// best-effort, so the protocol treats them as drops).
func (l *Link) Send(datagram []byte) bool {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		if l.metPaced != nil {
			l.metPaced.Inc()
		}
		return false
	}
	if l.rate > 0 {
		l.refill(time.Now())
		if l.tokens < 1 {
			l.mu.Unlock()
			if l.metPaced != nil {
				l.metPaced.Inc()
			}
			return false
		}
		l.tokens--
	}
	impaired := l.impair.enabled()
	var drop bool
	if impaired && l.impair.Loss > 0 {
		drop = l.rng.Float64() < l.impair.Loss
	}
	delay := l.impair.Delay
	l.mu.Unlock()

	if drop {
		if l.metLost != nil {
			l.metLost.Inc()
		}
		return true // accepted, then "lost on the wire"
	}
	if impaired && delay > 0 {
		// The datagram leaves later; copy it since the caller may reuse the
		// buffer.
		buf := make([]byte, len(datagram))
		copy(buf, datagram)
		if l.metSent != nil {
			l.metSent.Inc()
		}
		time.AfterFunc(delay, func() {
			l.mu.Lock()
			closed := l.closed
			l.mu.Unlock()
			if !closed {
				if _, err := l.conn.Write(buf); err != nil {
					l.noteSockErr(err)
				}
			}
		})
		return true
	}
	_, err := l.conn.Write(datagram)
	if l.metSent != nil {
		l.metSent.Inc()
	}
	if err != nil {
		l.noteSockErr(err)
		return false
	}
	return true
}

// LocalAddr returns the local socket address.
func (l *Link) LocalAddr() net.Addr { return l.conn.LocalAddr() }

// Close releases the socket.
func (l *Link) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	return l.conn.Close()
}

// Listener receives share datagrams across several UDP sockets (one per
// channel) and feeds them into a handler: serialized and copied via Serve,
// or directly from the per-socket goroutines via ServeConcurrent.
type Listener struct {
	conns []*net.UDPConn

	mu     sync.Mutex
	wg     sync.WaitGroup
	closed bool // guarded by mu

	// Optional per-socket receive counters, attached via Instrument; nil
	// slices when uninstrumented. Indexed like conns.
	metRecv      []*obs.Counter
	metRecvBytes []*obs.Counter
}

// Instrument registers per-socket receive series on reg —
// udp_recv_datagrams_total{channel="i"} and
// udp_recv_bytes_total{channel="i"}, indexed in Addrs order — and updates
// them from the reader goroutines. Call before Serve or ServeConcurrent.
func (l *Listener) Instrument(reg *obs.Registry) {
	l.metRecv = make([]*obs.Counter, len(l.conns))
	l.metRecvBytes = make([]*obs.Counter, len(l.conns))
	for i := range l.conns {
		label := obs.Label{Key: "channel", Value: strconv.Itoa(i)}
		l.metRecv[i] = reg.Counter("udp_recv_datagrams_total", label)
		l.metRecvBytes[i] = reg.Counter("udp_recv_bytes_total", label)
	}
}

// countRecv updates the receive counters for socket i, if instrumented.
func (l *Listener) countRecv(i, n int) {
	if l.metRecv == nil {
		return
	}
	l.metRecv[i].Inc()
	l.metRecvBytes[i].Add(int64(n))
}

// Listen binds one UDP socket per address. Addresses may use port 0 to let
// the kernel pick; Addrs reports the bound addresses for the sender to
// dial.
func Listen(addrs []string) (*Listener, error) {
	if len(addrs) == 0 {
		return nil, errors.New("udptrans: no listen addresses")
	}
	l := &Listener{}
	for _, a := range addrs {
		ua, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("udptrans: resolving %q: %w", a, err)
		}
		conn, err := net.ListenUDP("udp", ua)
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("udptrans: listening on %q: %w", a, err)
		}
		l.conns = append(l.conns, conn)
	}
	return l, nil
}

// Addrs returns the bound address of every channel socket, in order.
func (l *Listener) Addrs() []string {
	out := make([]string, len(l.conns))
	for i, c := range l.conns {
		out[i] = c.LocalAddr().String()
	}
	return out
}

// Serve starts one reader goroutine per socket, invoking handle for each
// datagram. Calls to handle are serialized with an internal mutex, so a
// non-thread-safe remicss.Receiver is safe to use directly. Serve returns
// immediately; Close stops the readers and waits for them.
func (l *Listener) Serve(handle func(datagram []byte)) {
	var handleMu sync.Mutex
	for i, conn := range l.conns {
		i, conn := i, conn
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			buf := make([]byte, MaxDatagram)
			for {
				n, err := conn.Read(buf)
				if err != nil {
					return // closed
				}
				l.countRecv(i, n)
				datagram := make([]byte, n)
				copy(datagram, buf[:n])
				handleMu.Lock()
				handle(datagram)
				handleMu.Unlock()
			}
		}()
	}
}

// ServeConcurrent starts one reader goroutine per socket, invoking handle
// for each datagram directly from that socket's goroutine with no internal
// serialization or copying: the slice is reused for the next read, so the
// handler must not retain it after returning. Intended for handlers that
// are themselves safe for concurrent use and copy what they keep, such as
// remicss.Receiver.HandleDatagram, whose sharded reassembly state lets
// the per-socket goroutines proceed in parallel (they contend only when
// datagrams hash to the same shard) — one slow channel then cannot stall
// ingest from the others. Returns immediately; Close stops the readers and
// waits for them.
func (l *Listener) ServeConcurrent(handle func(datagram []byte)) {
	for i, conn := range l.conns {
		i, conn := i, conn
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			buf := make([]byte, MaxDatagram)
			for {
				n, err := conn.Read(buf)
				if err != nil {
					return // closed
				}
				l.countRecv(i, n)
				handle(buf[:n])
			}
		}()
	}
}

// Close shuts every socket and waits for reader goroutines to exit.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	var firstErr error
	for _, c := range l.conns {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	l.wg.Wait()
	return firstErr
}
