package udptrans

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"remicss/internal/obs"
)

// collectN receives datagrams via serve until n arrive or the deadline
// passes, returning copies in arrival order.
func collectN(t *testing.T, serve func(func([]byte)), n int, timeout time.Duration) [][]byte {
	t.Helper()
	var mu sync.Mutex
	got := make([][]byte, 0, n)
	done := make(chan struct{})
	serve(func(d []byte) {
		mu.Lock()
		defer mu.Unlock()
		if len(got) == n {
			return
		}
		got = append(got, append([]byte(nil), d...))
		if len(got) == n {
			close(done)
		}
	})
	select {
	case <-done:
	case <-time.After(timeout):
	}
	mu.Lock()
	defer mu.Unlock()
	return got
}

// TestBatchModesDifferential pins the acceptance property of the batched
// transport: every compiled batch mode delivers byte-identical datagrams.
// It sends the same burst under each mode listed by BatchModes() — both
// directions batched (SendBatch into ServeBatch) — and compares the
// delivered multiset against the sent one.
func TestBatchModesDifferential(t *testing.T) {
	burst := make([][]byte, 40)
	for i := range burst {
		burst[i] = []byte(fmt.Sprintf("datagram-%03d-%s", i, string(rune('a'+i%26))))
	}
	want := make([]string, len(burst))
	for i, d := range burst {
		want[i] = string(d)
	}
	sort.Strings(want)

	modes := BatchModes()
	if len(modes) == 0 {
		t.Fatal("no batch modes available")
	}
	for _, mode := range modes {
		t.Run(mode, func(t *testing.T) {
			restore, err := ForceBatchMode(mode)
			if err != nil {
				t.Fatal(err)
			}
			defer restore()
			if BatchMode() != mode {
				t.Fatalf("BatchMode() = %q after forcing %q", BatchMode(), mode)
			}

			lis, err := Listen([]string{"127.0.0.1:0"})
			if err != nil {
				t.Fatal(err)
			}
			defer lis.Close()
			reg := obs.NewRegistry()
			lis.Instrument(reg)

			link, err := Dial(lis.Addrs()[0], 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer link.Close()
			link.Instrument(reg, 0)

			gotCh := make(chan [][]byte, 1)
			go func() {
				gotCh <- collectN(t, lis.ServeBatch, len(burst), 5*time.Second)
			}()
			// Give the reader goroutine a moment to park in recv.
			time.Sleep(20 * time.Millisecond)
			if n := link.SendBatch(burst); n != len(burst) {
				t.Fatalf("SendBatch accepted %d of %d", n, len(burst))
			}
			got := <-gotCh
			if len(got) != len(burst) {
				t.Fatalf("received %d of %d datagrams", len(got), len(burst))
			}
			gotS := make([]string, len(got))
			for i, d := range got {
				gotS[i] = string(d)
			}
			sort.Strings(gotS)
			for i := range want {
				if gotS[i] != want[i] {
					t.Fatalf("mode %s: delivered datagram %d = %q, want %q", mode, i, gotS[i], want[i])
				}
			}

			// The batch counters must have advanced, and under the mmsg mode
			// the whole burst must cost strictly fewer kernel entries than
			// datagrams (that is the point of the fast path).
			writes := reg.Counter("udp_batch_writes_total", obs.Label{Key: "channel", Value: "0"}).Value()
			if writes <= 0 {
				t.Fatalf("udp_batch_writes_total = %d, want > 0", writes)
			}
			if mode == "mmsg" && writes >= int64(len(burst)) {
				t.Fatalf("mmsg mode spent %d kernel entries on %d datagrams", writes, len(burst))
			}
			if mode == "portable" && writes != int64(len(burst)) {
				t.Fatalf("portable mode spent %d kernel entries on %d datagrams", writes, len(burst))
			}
		})
	}
}

// TestSendBatchPacing checks the token bucket applies to a burst exactly as
// it would to per-datagram Sends: the admitted prefix is sent, the rest are
// counted as paced drops.
func TestSendBatchPacing(t *testing.T) {
	lis, err := Listen([]string{"127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	link, err := Dial(lis.Addrs()[0], 1, 4) // 4-token bucket, 1 pps refill
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	reg := obs.NewRegistry()
	link.Instrument(reg, 0)

	burst := make([][]byte, 10)
	for i := range burst {
		burst[i] = []byte{byte(i)}
	}
	if n := link.SendBatch(burst); n != 4 {
		t.Fatalf("SendBatch accepted %d, want the 4-token burst", n)
	}
	paced := reg.Counter("udp_paced_drops_total", obs.Label{Key: "channel", Value: "0"}).Value()
	if paced != 6 {
		t.Fatalf("udp_paced_drops_total = %d, want 6", paced)
	}
	sent := reg.Counter("udp_sent_datagrams_total", obs.Label{Key: "channel", Value: "0"}).Value()
	if sent != 4 {
		t.Fatalf("udp_sent_datagrams_total = %d, want 4", sent)
	}
}

// TestSendBatchClosed checks a closed link refuses the whole burst.
func TestSendBatchClosed(t *testing.T) {
	lis, err := Listen([]string{"127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	link, err := Dial(lis.Addrs()[0], 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	link.Close()
	if n := link.SendBatch([][]byte{{1}, {2}}); n != 0 {
		t.Fatalf("closed link accepted %d datagrams", n)
	}
}

// TestSendBatchImpairedLoss checks impairment loss applies per datagram
// inside a burst and the lost ones still count as accepted (Send semantics:
// accepted, then lost on the wire).
func TestSendBatchImpairedLoss(t *testing.T) {
	lis, err := Listen([]string{"127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	link, err := DialImpaired(lis.Addrs()[0], 0, 0, Impairment{Loss: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	reg := obs.NewRegistry()
	link.Instrument(reg, 0)

	burst := make([][]byte, 100)
	for i := range burst {
		burst[i] = []byte{byte(i)}
	}
	if n := link.SendBatch(burst); n != len(burst) {
		t.Fatalf("impaired burst accepted %d of %d", n, len(burst))
	}
	lost := reg.Counter("udp_impairment_lost_total", obs.Label{Key: "channel", Value: "0"}).Value()
	sent := reg.Counter("udp_sent_datagrams_total", obs.Label{Key: "channel", Value: "0"}).Value()
	if lost == 0 || sent == 0 || lost+sent != int64(len(burst)) {
		t.Fatalf("lost %d + sent %d != %d", lost, sent, len(burst))
	}
}

// TestForceBatchModeUnknown checks a typo'd mode is a hard error listing
// what is compiled in, never a silent fallback.
func TestForceBatchModeUnknown(t *testing.T) {
	if _, err := ForceBatchMode("no-such-mode"); err == nil {
		t.Fatal("unknown batch mode was accepted")
	}
}

// TestServeDispatchNoAlloc pins the per-datagram dispatch cost of the
// pooled Serve receive path at zero heap allocations, instrumentation on.
func TestServeDispatchNoAlloc(t *testing.T) {
	lis, err := Listen([]string{"127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	lis.Instrument(obs.NewRegistry())

	var mu sync.Mutex
	var seen int
	handle := func(d []byte) { seen += len(d) }
	if allocs := testing.AllocsPerRun(500, func() {
		bp := recvBufPool.Get().(*[]byte)
		lis.dispatch(0, 64, bp, &mu, handle)
	}); allocs != 0 {
		t.Fatalf("Serve dispatch allocates %v per datagram, want 0", allocs)
	}
	if seen == 0 {
		t.Fatal("handler never ran")
	}
}

// TestSendBatchSteadyStateAllocs pins the batched send path: after warmup,
// a SendBatch burst on an unpaced, unimpaired link performs no per-call
// heap allocations beyond what the kernel interface itself needs.
func TestSendBatchSteadyStateAllocs(t *testing.T) {
	lis, err := Listen([]string{"127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	link, err := Dial(lis.Addrs()[0], 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	link.Instrument(obs.NewRegistry(), 0)

	burst := make([][]byte, 8)
	for i := range burst {
		burst[i] = []byte{byte(i), 1, 2, 3}
	}
	link.SendBatch(burst) // warm the scratch pools
	if allocs := testing.AllocsPerRun(200, func() {
		link.SendBatch(burst)
	}); allocs > 0.5 {
		t.Fatalf("SendBatch allocates %v per burst after warmup, want ~0", allocs)
	}
}
