package udptrans

import (
	"net"
	"testing"
	"time"
)

// TestLastSendErrorSurfacesSocketError drives a connected UDP socket into
// ECONNREFUSED: the first write to an unbound loopback port elicits an
// ICMP port-unreachable, which Linux reports on a subsequent write. Send
// then returns false and LastSendError carries the cause.
func TestLastSendErrorSurfacesSocketError(t *testing.T) {
	// Reserve a port, then release it so nothing listens there.
	probe, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.LocalAddr().String()
	probe.Close()

	l, err := Dial(addr, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.LastSendError(); got != nil {
		t.Fatalf("LastSendError = %v before any send", got)
	}
	sawFailure := false
	for i := 0; i < 50 && !sawFailure; i++ {
		if !l.Send([]byte{1, 2, 3}) {
			sawFailure = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawFailure {
		t.Skip("no ICMP-driven write error on this host; nothing to assert")
	}
	if got := l.LastSendError(); got == nil {
		t.Error("Send reported failure but LastSendError is nil")
	}
}
