package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse reads a scenario from the chaos DSL: a line-oriented script where
// '#' starts a comment and blank lines are skipped. The grammar (one
// directive per line, durations in Go syntax like 500ms or 2s,
// probabilities as decimals, <ch> a channel index or '*' for all):
//
//	scenario <name>
//	seed <int>
//	duration <dur>
//	at <t> blackout ch <ch> [for <dur>]
//	at <t> flap ch <ch> period <dur> for <dur>
//	at <t> delay ch <ch> spike <dur> for <dur>
//	at <t> loss ch <ch> ramp <from> <to> over <dur> [steps <n>]
//	at <t> dup ch <ch> rate <p> for <dur>
//	at <t> corrupt ch <ch> rate <p> for <dur>
//	at <t> reorder ch <ch> jitter <dur> for <dur>
//
// String serializes a scenario back into this grammar; Parse(s.String())
// reproduces s exactly.
func Parse(src string) (*Scenario, error) {
	s := &Scenario{}
	for lineno, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := s.parseLine(fields); err != nil {
			return nil, fmt.Errorf("chaos: line %d: %w", lineno+1, err)
		}
	}
	if s.Name == "" {
		return nil, fmt.Errorf("chaos: missing scenario directive")
	}
	return s, nil
}

func (s *Scenario) parseLine(fields []string) error {
	switch fields[0] {
	case "scenario":
		if len(fields) != 2 {
			return fmt.Errorf("usage: scenario <name>")
		}
		s.Name = fields[1]
		return nil
	case "seed":
		if len(fields) != 2 {
			return fmt.Errorf("usage: seed <int>")
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q: %v", fields[1], err)
		}
		s.Seed = v
		return nil
	case "duration":
		if len(fields) != 2 {
			return fmt.Errorf("usage: duration <dur>")
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			return fmt.Errorf("bad duration %q: %v", fields[1], err)
		}
		s.Duration = d
		return nil
	case "floor":
		if len(fields) != 2 {
			return fmt.Errorf("usage: floor <p>")
		}
		p, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return fmt.Errorf("bad floor %q: %v", fields[1], err)
		}
		s.Floor = p
		return nil
	case "at":
		f, err := parseFault(fields)
		if err != nil {
			return err
		}
		s.Faults = append(s.Faults, f)
		return nil
	}
	return fmt.Errorf("unknown directive %q", fields[0])
}

// parseFault parses one "at ..." line, already split into fields.
func parseFault(fields []string) (Fault, error) {
	var f Fault
	// Common prefix: at <t> <verb> ch <ch>.
	if len(fields) < 5 || fields[3] != "ch" {
		return f, fmt.Errorf("usage: at <t> <fault> ch <ch> ...")
	}
	t, err := time.ParseDuration(fields[1])
	if err != nil {
		return f, fmt.Errorf("bad time %q: %v", fields[1], err)
	}
	f.At = t
	if fields[4] == "*" {
		f.Channel = AllChannels
	} else {
		ch, err := strconv.Atoi(fields[4])
		if err != nil || ch < 0 {
			return f, fmt.Errorf("bad channel %q", fields[4])
		}
		f.Channel = ch
	}
	rest := fields[5:]

	dur := func(s string) (time.Duration, error) {
		d, err := time.ParseDuration(s)
		if err != nil {
			return 0, fmt.Errorf("bad duration %q: %v", s, err)
		}
		return d, nil
	}
	prob := func(s string) (float64, error) {
		p, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("bad probability %q: %v", s, err)
		}
		return p, nil
	}

	switch fields[2] {
	case "blackout":
		f.Kind = FaultBlackout
		switch {
		case len(rest) == 0:
			return f, nil
		case len(rest) == 2 && rest[0] == "for":
			f.Duration, err = dur(rest[1])
			return f, err
		}
		return f, fmt.Errorf("usage: at <t> blackout ch <ch> [for <dur>]")
	case "flap":
		f.Kind = FaultFlap
		if len(rest) != 4 || rest[0] != "period" || rest[2] != "for" {
			return f, fmt.Errorf("usage: at <t> flap ch <ch> period <dur> for <dur>")
		}
		if f.Period, err = dur(rest[1]); err != nil {
			return f, err
		}
		f.Duration, err = dur(rest[3])
		return f, err
	case "delay":
		f.Kind = FaultDelaySpike
		if len(rest) != 4 || rest[0] != "spike" || rest[2] != "for" {
			return f, fmt.Errorf("usage: at <t> delay ch <ch> spike <dur> for <dur>")
		}
		if f.Delay, err = dur(rest[1]); err != nil {
			return f, err
		}
		f.Duration, err = dur(rest[3])
		return f, err
	case "loss":
		f.Kind = FaultLossRamp
		if !(len(rest) == 5 || len(rest) == 7) || rest[0] != "ramp" || rest[3] != "over" {
			return f, fmt.Errorf("usage: at <t> loss ch <ch> ramp <from> <to> over <dur> [steps <n>]")
		}
		if f.From, err = prob(rest[1]); err != nil {
			return f, err
		}
		if f.Value, err = prob(rest[2]); err != nil {
			return f, err
		}
		if f.Duration, err = dur(rest[4]); err != nil {
			return f, err
		}
		if len(rest) == 7 {
			if rest[5] != "steps" {
				return f, fmt.Errorf("expected steps, got %q", rest[5])
			}
			n, err := strconv.Atoi(rest[6])
			if err != nil || n <= 0 {
				return f, fmt.Errorf("bad steps %q", rest[6])
			}
			f.Steps = n
		}
		return f, nil
	case "dup", "corrupt":
		if fields[2] == "dup" {
			f.Kind = FaultDuplicate
		} else {
			f.Kind = FaultCorrupt
		}
		if len(rest) != 4 || rest[0] != "rate" || rest[2] != "for" {
			return f, fmt.Errorf("usage: at <t> %s ch <ch> rate <p> for <dur>", fields[2])
		}
		if f.Value, err = prob(rest[1]); err != nil {
			return f, err
		}
		f.Duration, err = dur(rest[3])
		return f, err
	case "reorder":
		f.Kind = FaultReorder
		if len(rest) != 4 || rest[0] != "jitter" || rest[2] != "for" {
			return f, fmt.Errorf("usage: at <t> reorder ch <ch> jitter <dur> for <dur>")
		}
		if f.Delay, err = dur(rest[1]); err != nil {
			return f, err
		}
		f.Duration, err = dur(rest[3])
		return f, err
	}
	return f, fmt.Errorf("unknown fault %q", fields[2])
}

// String serializes the scenario into the DSL accepted by Parse.
func (s *Scenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s\n", s.Name)
	fmt.Fprintf(&b, "seed %d\n", s.Seed)
	fmt.Fprintf(&b, "duration %v\n", s.Duration)
	if s.Floor > 0 {
		fmt.Fprintf(&b, "floor %s\n", strconv.FormatFloat(s.Floor, 'g', -1, 64))
	}
	for _, f := range s.Faults {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// String serializes one fault as its DSL line.
func (f Fault) String() string {
	ch := "*"
	if f.Channel != AllChannels {
		ch = strconv.Itoa(f.Channel)
	}
	p := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	switch f.Kind {
	case FaultBlackout:
		if f.Duration > 0 {
			return fmt.Sprintf("at %v blackout ch %s for %v", f.At, ch, f.Duration)
		}
		return fmt.Sprintf("at %v blackout ch %s", f.At, ch)
	case FaultFlap:
		return fmt.Sprintf("at %v flap ch %s period %v for %v", f.At, ch, f.Period, f.Duration)
	case FaultDelaySpike:
		return fmt.Sprintf("at %v delay ch %s spike %v for %v", f.At, ch, f.Delay, f.Duration)
	case FaultLossRamp:
		line := fmt.Sprintf("at %v loss ch %s ramp %s %s over %v", f.At, ch, p(f.From), p(f.Value), f.Duration)
		if f.Steps > 0 {
			line += fmt.Sprintf(" steps %d", f.Steps)
		}
		return line
	case FaultDuplicate:
		return fmt.Sprintf("at %v dup ch %s rate %s for %v", f.At, ch, p(f.Value), f.Duration)
	case FaultReorder:
		return fmt.Sprintf("at %v reorder ch %s jitter %v for %v", f.At, ch, f.Delay, f.Duration)
	case FaultCorrupt:
		return fmt.Sprintf("at %v corrupt ch %s rate %s for %v", f.At, ch, p(f.Value), f.Duration)
	}
	return fmt.Sprintf("at %v unknown ch %s", f.At, ch)
}
