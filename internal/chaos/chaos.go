// Package chaos scripts deterministic fault-injection scenarios on top of
// the netem engine. A Scenario is a seed plus a list of timed faults —
// channel blackouts, flaps, delay spikes, loss ramps, duplication,
// reordering, payload corruption — that Apply schedules onto emulated
// links as discrete events. The same scenario applied to the same engine
// and seed produces the identical fault timeline, so chaos experiments
// replay bit-for-bit.
//
// Scenarios can be built as literal values, looked up by name from the
// built-in catalog, or parsed from a small line-oriented text DSL (see
// Parse). Every fault transition is recorded into the obs trace as an
// EventFaultInjected record, giving tests a ground-truth timeline to
// reconcile against.
package chaos

import (
	"fmt"
	"time"
)

// FaultKind enumerates the scripted fault types.
type FaultKind uint8

// The fault taxonomy, mirroring what netem can impose on a wire.
const (
	// FaultBlackout downs a channel at At; Duration 0 makes it permanent,
	// otherwise the channel restores at At+Duration.
	FaultBlackout FaultKind = iota + 1
	// FaultFlap toggles a channel down/up every Period/2 from At until
	// At+Duration, ending up.
	FaultFlap
	// FaultDelaySpike raises the channel's propagation delay by Delay at
	// At and restores the base delay at At+Duration.
	FaultDelaySpike
	// FaultLossRamp steps the channel's loss probability linearly from
	// From to Value across Steps steps between At and At+Duration, then
	// holds at Value.
	FaultLossRamp
	// FaultDuplicate sets the channel's duplication probability to Value
	// at At and restores the base at At+Duration.
	FaultDuplicate
	// FaultReorder raises the channel's jitter bound by Delay at At
	// (jitter beyond the serialization interval reorders packets) and
	// restores the base at At+Duration.
	FaultReorder
	// FaultCorrupt sets the channel's payload-corruption probability to
	// Value at At and restores the base at At+Duration.
	FaultCorrupt
)

// String names the fault kind, matching the DSL verb.
func (k FaultKind) String() string {
	switch k {
	case FaultBlackout:
		return "blackout"
	case FaultFlap:
		return "flap"
	case FaultDelaySpike:
		return "delay"
	case FaultLossRamp:
		return "loss"
	case FaultDuplicate:
		return "dup"
	case FaultReorder:
		return "reorder"
	case FaultCorrupt:
		return "corrupt"
	}
	return "unknown"
}

// AllChannels is the Fault.Channel value meaning "every channel".
const AllChannels = -1

// Fault is one scripted fault. Which fields matter depends on Kind; see
// the FaultKind docs. Zero-valued fields not used by the kind are ignored
// by Apply and omitted by the DSL serializer.
type Fault struct {
	// Kind selects the fault type.
	Kind FaultKind
	// At is the scenario time the fault starts.
	At time.Duration
	// Duration is the fault window. Required for every kind except
	// FaultBlackout, where zero means permanent.
	Duration time.Duration
	// Channel is the target link index, or AllChannels.
	Channel int
	// Value is the target probability for loss ramps, duplication, and
	// corruption.
	Value float64
	// From is the starting probability of a loss ramp.
	From float64
	// Delay is the added delay of a spike or the added jitter of a
	// reorder fault.
	Delay time.Duration
	// Period is the full down+up cycle length of a flap.
	Period time.Duration
	// Steps is the number of loss-ramp steps; defaults to DefaultRampSteps.
	Steps int
}

// DefaultRampSteps is the loss-ramp step count used when Fault.Steps is
// zero.
const DefaultRampSteps = 8

// Scenario is a named, replayable fault script. Seed drives every random
// process in the harness that runs the scenario (link loss draws and the
// sender's dithering), so one (Scenario, Seed) pair defines one exact
// fault timeline.
type Scenario struct {
	// Name identifies the scenario in reports and the -chaos flag.
	Name string
	// Seed seeds the harness RNGs. Zero is a valid literal seed.
	Seed int64
	// Duration is how long the harness should drive traffic.
	Duration time.Duration
	// Floor is the minimum end-to-end delivery ratio the scenario is
	// expected to sustain; the chaos suite and the -chaos degradation
	// report fail runs that land below it. Zero means no floor.
	Floor float64
	// Faults lists the scripted faults, in any order.
	Faults []Fault
}

// Validate checks the scenario against a channel count, returning the
// first structural problem found.
func (s *Scenario) Validate(channels int) error {
	if s.Duration <= 0 {
		return fmt.Errorf("chaos: scenario %q: non-positive duration %v", s.Name, s.Duration)
	}
	if s.Floor < 0 || s.Floor >= 1 {
		return fmt.Errorf("chaos: scenario %q: floor %v outside [0, 1)", s.Name, s.Floor)
	}
	for i, f := range s.Faults {
		if err := f.validate(channels); err != nil {
			return fmt.Errorf("chaos: scenario %q fault %d: %w", s.Name, i, err)
		}
	}
	return nil
}

func (f *Fault) validate(channels int) error {
	if f.Channel != AllChannels && (f.Channel < 0 || f.Channel >= channels) {
		return fmt.Errorf("channel %d outside [0, %d)", f.Channel, channels)
	}
	if f.At < 0 {
		return fmt.Errorf("negative start time %v", f.At)
	}
	switch f.Kind {
	case FaultBlackout:
		if f.Duration < 0 {
			return fmt.Errorf("negative blackout duration %v", f.Duration)
		}
	case FaultFlap:
		if f.Duration <= 0 {
			return fmt.Errorf("flap needs a positive duration, got %v", f.Duration)
		}
		if f.Period <= 0 {
			return fmt.Errorf("flap needs a positive period, got %v", f.Period)
		}
	case FaultDelaySpike:
		if f.Duration <= 0 {
			return fmt.Errorf("delay spike needs a positive duration, got %v", f.Duration)
		}
		if f.Delay <= 0 {
			return fmt.Errorf("delay spike needs a positive delay, got %v", f.Delay)
		}
	case FaultLossRamp:
		if f.Duration <= 0 {
			return fmt.Errorf("loss ramp needs a positive duration, got %v", f.Duration)
		}
		if f.From < 0 || f.From >= 1 || f.Value < 0 || f.Value >= 1 {
			return fmt.Errorf("loss ramp probabilities %v..%v outside [0, 1)", f.From, f.Value)
		}
		if f.Steps < 0 {
			return fmt.Errorf("negative ramp steps %d", f.Steps)
		}
	case FaultDuplicate, FaultCorrupt:
		if f.Duration <= 0 {
			return fmt.Errorf("%v needs a positive duration, got %v", f.Kind, f.Duration)
		}
		if f.Value <= 0 || f.Value >= 1 {
			return fmt.Errorf("%v probability %v outside (0, 1)", f.Kind, f.Value)
		}
	case FaultReorder:
		if f.Duration <= 0 {
			return fmt.Errorf("reorder needs a positive duration, got %v", f.Duration)
		}
		if f.Delay <= 0 {
			return fmt.Errorf("reorder needs a positive jitter, got %v", f.Delay)
		}
	default:
		return fmt.Errorf("unknown fault kind %d", f.Kind)
	}
	return nil
}
