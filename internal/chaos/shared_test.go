package chaos

import (
	"testing"
	"time"
)

func TestSharedGroupsFromCorrBlackout(t *testing.T) {
	s, ok := Builtin("corrblackout")
	if !ok {
		t.Fatal("corrblackout missing from catalog")
	}
	groups := SharedGroups(s, 3)
	if len(groups) != 1 || groups[0] != 0b011 {
		t.Fatalf("SharedGroups = %b, want [0b011]", groups)
	}
}

func TestSharedGroupsNoOverlap(t *testing.T) {
	// Disjoint windows: no shared conduit inferred.
	s := &Scenario{
		Name:     "seq",
		Duration: 10 * time.Second,
		Faults: []Fault{
			{Kind: FaultBlackout, At: 1 * time.Second, Duration: 2 * time.Second, Channel: 0},
			{Kind: FaultBlackout, At: 5 * time.Second, Duration: 2 * time.Second, Channel: 1},
		},
	}
	if groups := SharedGroups(s, 3); len(groups) != 0 {
		t.Fatalf("disjoint blackouts grouped: %b", groups)
	}
	// Single-channel faults never form a group.
	single, _ := Builtin("blackout")
	if groups := SharedGroups(single, 3); len(groups) != 0 {
		t.Fatalf("single blackout grouped: %b", groups)
	}
}

func TestSharedGroupsTransitiveAndPermanent(t *testing.T) {
	// 0 overlaps 1, 1 overlaps 2 later: one transitive group of three. The
	// permanent blackout (Duration 0) extends to scenario end.
	s := &Scenario{
		Name:     "chain",
		Duration: 10 * time.Second,
		Faults: []Fault{
			{Kind: FaultBlackout, At: 1 * time.Second, Duration: 3 * time.Second, Channel: 0},
			{Kind: FaultBlackout, At: 3 * time.Second, Channel: 1}, // permanent
			{Kind: FaultFlap, At: 8 * time.Second, Duration: time.Second, Channel: 2, Period: time.Second},
		},
	}
	groups := SharedGroups(s, 3)
	if len(groups) != 1 || groups[0] != 0b111 {
		t.Fatalf("SharedGroups = %b, want [0b111]", groups)
	}
}
