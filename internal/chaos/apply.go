package chaos

import (
	"time"

	"remicss/internal/netem"
	"remicss/internal/obs"
)

// Apply schedules every fault transition in the scenario onto the engine,
// targeting the given links. Call it before eng.Run; transitions execute
// inside the event loop at their scripted times, so the resulting timeline
// is a pure function of (scenario, engine, link RNG seeds). Each
// transition records an EventFaultInjected trace event (nil trace is
// fine): Channel is the affected link, Seq the fault's index in
// s.Faults, Value the FaultKind.
//
// Base link parameters (delay, jitter, duplication, corruption) are
// captured when Apply runs, and windowed faults restore those bases when
// their window closes.
func (s *Scenario) Apply(eng *netem.Engine, links []*netem.Link, trace *obs.Trace) error {
	if err := s.Validate(len(links)); err != nil {
		return err
	}
	base := eng.Now()
	for i, f := range s.Faults {
		targets := []int{f.Channel}
		if f.Channel == AllChannels {
			targets = targets[:0]
			for ch := range links {
				targets = append(targets, ch)
			}
		}
		for _, ch := range targets {
			s.applyOne(eng, links[ch], trace, base, uint64(i), int32(ch), f)
		}
	}
	return nil
}

// applyOne schedules the transitions of one fault on one link.
func (s *Scenario) applyOne(eng *netem.Engine, link *netem.Link, trace *obs.Trace, base time.Duration, seq uint64, ch int32, f Fault) {
	note := func() {
		trace.Record(obs.EventFaultInjected, ch, eng.Now(), seq, int64(f.Kind))
	}
	at := func(t time.Duration, fn func()) {
		eng.At(base+t, func() { fn(); note() })
	}
	switch f.Kind {
	case FaultBlackout:
		at(f.At, func() { link.SetDown(true) })
		if f.Duration > 0 {
			at(f.At+f.Duration, func() { link.SetDown(false) })
		}
	case FaultFlap:
		down := true
		for t := f.At; t < f.At+f.Duration; t += f.Period / 2 {
			d := down
			at(t, func() { link.SetDown(d) })
			down = !down
		}
		at(f.At+f.Duration, func() { link.SetDown(false) })
	case FaultDelaySpike:
		orig := link.Config().Delay
		at(f.At, func() { link.SetDelay(orig + f.Delay) })
		at(f.At+f.Duration, func() { link.SetDelay(orig) })
	case FaultLossRamp:
		steps := f.Steps
		if steps == 0 {
			steps = DefaultRampSteps
		}
		for j := 0; j <= steps; j++ {
			frac := float64(j) / float64(steps)
			p := f.From + (f.Value-f.From)*frac
			at(f.At+time.Duration(frac*float64(f.Duration)), func() { link.SetLoss(p) })
		}
	case FaultDuplicate:
		orig := link.Config().Duplicate
		at(f.At, func() { link.SetDuplicate(f.Value) })
		at(f.At+f.Duration, func() { link.SetDuplicate(orig) })
	case FaultReorder:
		orig := link.Config().Jitter
		at(f.At, func() { link.SetJitter(orig + f.Delay) })
		at(f.At+f.Duration, func() { link.SetJitter(orig) })
	case FaultCorrupt:
		orig := link.Config().Corrupt
		at(f.At, func() { link.SetCorrupt(f.Value) })
		at(f.At+f.Duration, func() { link.SetCorrupt(orig) })
	}
}
