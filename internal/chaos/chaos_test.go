package chaos

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"remicss/internal/netem"
	"remicss/internal/obs"
)

func TestDSLRoundTrip(t *testing.T) {
	src := `
# A kitchen-sink scenario exercising every verb.
scenario kitchen-sink
seed 7
duration 12s
floor 0.75
at 1s blackout ch 0 for 2s
at 4s blackout ch 1
at 500ms flap ch 2 period 250ms for 3s
at 2s delay ch 0 spike 100ms for 1s
at 1s loss ch 1 ramp 0.01 0.3 over 4s steps 6
at 3s dup ch * rate 0.2 for 2s
at 5s reorder ch 2 jitter 80ms for 2s
at 6s corrupt ch 0 rate 0.15 for 1s
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "kitchen-sink" || s.Seed != 7 || s.Duration != 12*time.Second || s.Floor != 0.75 {
		t.Errorf("header mismatch: %+v", s)
	}
	if len(s.Faults) != 8 {
		t.Fatalf("parsed %d faults, want 8", len(s.Faults))
	}
	if s.Faults[5].Channel != AllChannels {
		t.Errorf("ch * parsed as %d", s.Faults[5].Channel)
	}
	round, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, s.String())
	}
	if !reflect.DeepEqual(s, round) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", round, s)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"duration 5s",                    // missing scenario name
		"scenario x\nat 1s blackout 0",   // missing ch keyword
		"scenario x\nat 1s explode ch 0", // unknown verb
		"scenario x\nat abc blackout ch 0",
		"scenario x\nwat 1",
		"scenario x\nat 1s loss ch 0 ramp 0.1 0.2 over 2s steps zero",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestBuiltinsValidAndRoundTrip(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("catalog too small: %v", names)
	}
	for _, name := range names {
		s, ok := Builtin(name)
		if !ok {
			t.Fatalf("Builtin(%q) missing", name)
		}
		if err := s.Validate(3); err != nil {
			t.Errorf("builtin %q invalid for 3 channels: %v", name, err)
		}
		round, err := Parse(s.String())
		if err != nil {
			t.Errorf("builtin %q does not re-parse: %v", name, err)
			continue
		}
		if !reflect.DeepEqual(s, round) {
			t.Errorf("builtin %q round trip diverged", name)
		}
	}
	if _, ok := Builtin("no-such-scenario"); ok {
		t.Error("unknown name resolved")
	}
}

func TestBuiltinReturnsCopy(t *testing.T) {
	a, _ := Builtin("blackout")
	a.Faults[0].Channel = 99
	a.Seed = -1
	b, _ := Builtin("blackout")
	if b.Faults[0].Channel == 99 || b.Seed == -1 {
		t.Error("mutating a Builtin copy leaked into the catalog")
	}
}

// run applies the scenario to fresh links and returns the fault-injection
// trace timeline plus final link stats.
func run(t *testing.T, s *Scenario, channels int) ([]obs.Event, []netem.LinkStats) {
	t.Helper()
	eng := netem.NewEngine()
	trace := obs.NewTrace(1 << 12)
	links := make([]*netem.Link, channels)
	for i := range links {
		var err error
		links[i], err = netem.NewLink(eng, netem.LinkConfig{Rate: 500, Delay: 10 * time.Millisecond, QueueLimit: 64},
			rand.New(rand.NewSource(s.Seed+int64(i))), nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Apply(eng, links, trace); err != nil {
		t.Fatal(err)
	}
	// Drive steady traffic so faults have something to act on.
	var offer func()
	now := time.Duration(0)
	offer = func() {
		for _, l := range links {
			l.Send([]byte{1, 2, 3, 4})
		}
		now += 10 * time.Millisecond
		if now < s.Duration {
			eng.At(now, offer)
		}
	}
	eng.At(0, offer)
	eng.RunUntilIdle()

	var events []obs.Event
	for _, ev := range trace.Snapshot(nil) {
		if ev.Kind == obs.EventFaultInjected {
			events = append(events, ev)
		}
	}
	stats := make([]netem.LinkStats, channels)
	for i, l := range links {
		stats[i] = l.Stats()
	}
	return events, stats
}

func TestApplyDeterministic(t *testing.T) {
	for _, name := range Names() {
		s, _ := Builtin(name)
		ev1, st1 := run(t, s, 3)
		ev2, st2 := run(t, s, 3)
		if !reflect.DeepEqual(ev1, ev2) {
			t.Errorf("%s: fault timelines differ between identical runs", name)
		}
		if !reflect.DeepEqual(st1, st2) {
			t.Errorf("%s: link stats differ between identical runs", name)
		}
		if len(ev1) == 0 {
			t.Errorf("%s: no fault transitions recorded", name)
		}
	}
}

func TestBlackoutDownsAndRestores(t *testing.T) {
	eng := netem.NewEngine()
	link, err := netem.NewLink(eng, netem.LinkConfig{Rate: 100},
		rand.New(rand.NewSource(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := &Scenario{Name: "t", Duration: 5 * time.Second, Faults: []Fault{
		{Kind: FaultBlackout, At: time.Second, Duration: 2 * time.Second, Channel: 0},
	}}
	if err := s.Apply(eng, []*netem.Link{link}, nil); err != nil {
		t.Fatal(err)
	}
	checks := 0
	eng.At(500*time.Millisecond, func() {
		if link.Down() {
			t.Error("down before blackout start")
		}
		checks++
	})
	eng.At(2*time.Second, func() {
		if !link.Down() {
			t.Error("not down inside blackout window")
		}
		checks++
	})
	eng.At(3500*time.Millisecond, func() {
		if link.Down() {
			t.Error("still down after blackout window")
		}
		checks++
	})
	eng.RunUntilIdle()
	if checks != 3 {
		t.Fatalf("ran %d checks, want 3", checks)
	}
}

func TestFlapTogglesAndEndsUp(t *testing.T) {
	eng := netem.NewEngine()
	link, err := netem.NewLink(eng, netem.LinkConfig{Rate: 100},
		rand.New(rand.NewSource(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := &Scenario{Name: "t", Duration: 5 * time.Second, Faults: []Fault{
		{Kind: FaultFlap, At: time.Second, Duration: 2 * time.Second, Channel: 0, Period: time.Second},
	}}
	trace := obs.NewTrace(256)
	if err := s.Apply(eng, []*netem.Link{link}, trace); err != nil {
		t.Fatal(err)
	}
	eng.RunUntilIdle()
	if link.Down() {
		t.Error("link down after flap window")
	}
	if n := trace.CountKind(obs.EventFaultInjected); n < 4 {
		t.Errorf("flap recorded %d transitions, want >= 4", n)
	}
}

func TestLossRampReachesTargetAndHolds(t *testing.T) {
	eng := netem.NewEngine()
	link, err := netem.NewLink(eng, netem.LinkConfig{Rate: 100, Loss: 0.01},
		rand.New(rand.NewSource(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := &Scenario{Name: "t", Duration: 6 * time.Second, Faults: []Fault{
		{Kind: FaultLossRamp, At: time.Second, Duration: 2 * time.Second, Channel: 0, From: 0.05, Value: 0.4, Steps: 4},
	}}
	if err := s.Apply(eng, []*netem.Link{link}, nil); err != nil {
		t.Fatal(err)
	}
	eng.At(1500*time.Millisecond, func() {
		l := link.Config().Loss
		if l < 0.05 || l > 0.4 {
			t.Errorf("mid-ramp loss %v outside [0.05, 0.4]", l)
		}
	})
	eng.At(4*time.Second, func() {
		if l := link.Config().Loss; l != 0.4 {
			t.Errorf("post-ramp loss %v, want hold at 0.4", l)
		}
	})
	eng.RunUntilIdle()
}

func TestWindowedFaultsRestoreBase(t *testing.T) {
	eng := netem.NewEngine()
	base := netem.LinkConfig{Rate: 100, Delay: 20 * time.Millisecond, Jitter: time.Millisecond}
	link, err := netem.NewLink(eng, base, rand.New(rand.NewSource(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := &Scenario{Name: "t", Duration: 10 * time.Second, Faults: []Fault{
		{Kind: FaultDelaySpike, At: time.Second, Duration: time.Second, Channel: 0, Delay: 100 * time.Millisecond},
		{Kind: FaultReorder, At: 3 * time.Second, Duration: time.Second, Channel: 0, Delay: 50 * time.Millisecond},
		{Kind: FaultDuplicate, At: 5 * time.Second, Duration: time.Second, Channel: 0, Value: 0.3},
		{Kind: FaultCorrupt, At: 7 * time.Second, Duration: time.Second, Channel: 0, Value: 0.3},
	}}
	if err := s.Apply(eng, []*netem.Link{link}, nil); err != nil {
		t.Fatal(err)
	}
	eng.At(1500*time.Millisecond, func() {
		if d := link.Config().Delay; d != 120*time.Millisecond {
			t.Errorf("spiked delay %v, want 120ms", d)
		}
	})
	eng.RunUntilIdle()
	got := link.Config()
	if got.Delay != base.Delay || got.Jitter != base.Jitter || got.Duplicate != 0 || got.Corrupt != 0 {
		t.Errorf("base config not restored after windows: %+v", got)
	}
}

func TestApplyValidates(t *testing.T) {
	eng := netem.NewEngine()
	link, err := netem.NewLink(eng, netem.LinkConfig{Rate: 100},
		rand.New(rand.NewSource(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := &Scenario{Name: "t", Duration: time.Second, Faults: []Fault{
		{Kind: FaultBlackout, At: 0, Channel: 5},
	}}
	if err := bad.Apply(eng, []*netem.Link{link}, nil); err == nil {
		t.Error("out-of-range channel accepted")
	}
}
