package chaos

import (
	"sort"
	"time"
)

// builtins is the catalog of named scenarios served by Builtin. All of
// them target a 3-channel setup (the chaos bench default) and share one
// fixed seed so CI runs replay exactly.
var builtins = map[string]*Scenario{
	"blackout": {
		Name:     "blackout",
		Seed:     42,
		Duration: 10 * time.Second,
		Floor:    0.90,
		Faults: []Fault{
			{Kind: FaultBlackout, At: 2 * time.Second, Duration: 4 * time.Second, Channel: 1},
		},
	},
	"flap": {
		Name:     "flap",
		Seed:     42,
		Duration: 10 * time.Second,
		Floor:    0.85,
		Faults: []Fault{
			{Kind: FaultFlap, At: 2 * time.Second, Duration: 6 * time.Second, Channel: 0, Period: time.Second},
		},
	},
	"lossramp": {
		Name:     "lossramp",
		Seed:     42,
		Duration: 10 * time.Second,
		Floor:    0.80,
		Faults: []Fault{
			{Kind: FaultLossRamp, At: time.Second, Duration: 6 * time.Second, Channel: 2, From: 0.01, Value: 0.35, Steps: 12},
		},
	},
	"delayspike": {
		Name:     "delayspike",
		Seed:     42,
		Duration: 10 * time.Second,
		Floor:    0.90,
		Faults: []Fault{
			{Kind: FaultDelaySpike, At: 3 * time.Second, Duration: 3 * time.Second, Channel: 0, Delay: 250 * time.Millisecond},
		},
	},
	"dup": {
		Name:     "dup",
		Seed:     42,
		Duration: 10 * time.Second,
		Floor:    0.90,
		Faults: []Fault{
			{Kind: FaultDuplicate, At: 2 * time.Second, Duration: 6 * time.Second, Channel: 1, Value: 0.25},
		},
	},
	"reorder": {
		Name:     "reorder",
		Seed:     42,
		Duration: 10 * time.Second,
		Floor:    0.90,
		Faults: []Fault{
			{Kind: FaultReorder, At: 2 * time.Second, Duration: 6 * time.Second, Channel: 0, Delay: 80 * time.Millisecond},
		},
	},
	"corrupt": {
		Name:     "corrupt",
		Seed:     42,
		Duration: 10 * time.Second,
		Floor:    0.80,
		Faults: []Fault{
			{Kind: FaultCorrupt, At: 2 * time.Second, Duration: 6 * time.Second, Channel: 1, Value: 0.20},
		},
	},
	// corrblackout is the shared-conduit cut: channels 0 and 1 go dark over
	// the same window, the signature failure of two "diverse" paths that
	// ride one fiber segment. Its overlapping blackouts are what
	// SharedGroups derives a shared-risk group from, so it is the catalog's
	// reference scenario for correlated-adversary privacy scoring: an
	// independence-assuming model prices the two channels as separate
	// observation draws, while the correlated model couples them.
	"corrblackout": {
		Name:     "corrblackout",
		Seed:     42,
		Duration: 10 * time.Second,
		Floor:    0.60,
		Faults: []Fault{
			{Kind: FaultBlackout, At: 2 * time.Second, Duration: 3 * time.Second, Channel: 0},
			{Kind: FaultBlackout, At: 2 * time.Second, Duration: 3 * time.Second, Channel: 1},
		},
	},
	"multi": {
		Name:     "multi",
		Seed:     42,
		Duration: 12 * time.Second,
		Floor:    0.70,
		Faults: []Fault{
			{Kind: FaultBlackout, At: 2 * time.Second, Duration: 3 * time.Second, Channel: 1},
			{Kind: FaultLossRamp, At: time.Second, Duration: 5 * time.Second, Channel: 2, From: 0.01, Value: 0.25, Steps: 8},
			{Kind: FaultDelaySpike, At: 6 * time.Second, Duration: 3 * time.Second, Channel: 0, Delay: 150 * time.Millisecond},
			{Kind: FaultCorrupt, At: 8 * time.Second, Duration: 3 * time.Second, Channel: 2, Value: 0.10},
		},
	},
}

// Builtin returns a copy of the named catalog scenario, or false when the
// name is unknown. The copy is safe to mutate (seed overrides, floor
// tweaks) without affecting the catalog.
func Builtin(name string) (*Scenario, bool) {
	s, ok := builtins[name]
	if !ok {
		return nil, false
	}
	cp := *s
	cp.Faults = append([]Fault(nil), s.Faults...)
	return &cp, true
}

// SharedGroups derives shared-risk groups from a scenario's fault script:
// channels whose blackout (or flap) windows overlap in time are presumed to
// share a conduit — a simultaneous cut is the observable signature of
// common infrastructure — and are merged into one group. Groups are
// returned as channel bitmasks over n channels, ascending by lowest member;
// singleton "groups" are omitted, since a group of one carries no
// correlation. The result feeds the correlated-adversary privacy scoring
// in internal/bench (bit i of each mask = channel i, matching
// core.RiskGroup.Mask).
func SharedGroups(s *Scenario, n int) []uint32 {
	type window struct {
		ch       int
		from, to time.Duration
	}
	var wins []window
	for _, f := range s.Faults {
		if f.Kind != FaultBlackout && f.Kind != FaultFlap {
			continue
		}
		to := f.At + f.Duration
		if f.Duration == 0 {
			to = s.Duration // permanent blackout
		}
		chans := []int{f.Channel}
		if f.Channel == AllChannels {
			chans = chans[:0]
			for i := 0; i < n; i++ {
				chans = append(chans, i)
			}
		}
		for _, ch := range chans {
			if ch >= 0 && ch < n {
				wins = append(wins, window{ch: ch, from: f.At, to: to})
			}
		}
	}

	// Transitive merge: channels join one group when any of their windows
	// overlap.
	group := make([]int, n)
	for i := range group {
		group[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		if group[i] != i {
			group[i] = find(group[i])
		}
		return group[i]
	}
	for i := 0; i < len(wins); i++ {
		for j := i + 1; j < len(wins); j++ {
			a, b := wins[i], wins[j]
			if a.ch == b.ch || a.from >= b.to || b.from >= a.to {
				continue
			}
			ra, rb := find(a.ch), find(b.ch)
			if ra != rb {
				group[rb] = ra
			}
		}
	}

	masks := make(map[int]uint32)
	for i := 0; i < n; i++ {
		masks[find(i)] |= 1 << uint(i)
	}
	var out []uint32
	for _, m := range masks {
		if m != 0 && m&(m-1) != 0 { // at least two members
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Names lists the catalog scenario names, sorted.
func Names() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
