package chaos

import (
	"sort"
	"time"
)

// builtins is the catalog of named scenarios served by Builtin. All of
// them target a 3-channel setup (the chaos bench default) and share one
// fixed seed so CI runs replay exactly.
var builtins = map[string]*Scenario{
	"blackout": {
		Name:     "blackout",
		Seed:     42,
		Duration: 10 * time.Second,
		Floor:    0.90,
		Faults: []Fault{
			{Kind: FaultBlackout, At: 2 * time.Second, Duration: 4 * time.Second, Channel: 1},
		},
	},
	"flap": {
		Name:     "flap",
		Seed:     42,
		Duration: 10 * time.Second,
		Floor:    0.85,
		Faults: []Fault{
			{Kind: FaultFlap, At: 2 * time.Second, Duration: 6 * time.Second, Channel: 0, Period: time.Second},
		},
	},
	"lossramp": {
		Name:     "lossramp",
		Seed:     42,
		Duration: 10 * time.Second,
		Floor:    0.80,
		Faults: []Fault{
			{Kind: FaultLossRamp, At: time.Second, Duration: 6 * time.Second, Channel: 2, From: 0.01, Value: 0.35, Steps: 12},
		},
	},
	"delayspike": {
		Name:     "delayspike",
		Seed:     42,
		Duration: 10 * time.Second,
		Floor:    0.90,
		Faults: []Fault{
			{Kind: FaultDelaySpike, At: 3 * time.Second, Duration: 3 * time.Second, Channel: 0, Delay: 250 * time.Millisecond},
		},
	},
	"dup": {
		Name:     "dup",
		Seed:     42,
		Duration: 10 * time.Second,
		Floor:    0.90,
		Faults: []Fault{
			{Kind: FaultDuplicate, At: 2 * time.Second, Duration: 6 * time.Second, Channel: 1, Value: 0.25},
		},
	},
	"reorder": {
		Name:     "reorder",
		Seed:     42,
		Duration: 10 * time.Second,
		Floor:    0.90,
		Faults: []Fault{
			{Kind: FaultReorder, At: 2 * time.Second, Duration: 6 * time.Second, Channel: 0, Delay: 80 * time.Millisecond},
		},
	},
	"corrupt": {
		Name:     "corrupt",
		Seed:     42,
		Duration: 10 * time.Second,
		Floor:    0.80,
		Faults: []Fault{
			{Kind: FaultCorrupt, At: 2 * time.Second, Duration: 6 * time.Second, Channel: 1, Value: 0.20},
		},
	},
	"multi": {
		Name:     "multi",
		Seed:     42,
		Duration: 12 * time.Second,
		Floor:    0.70,
		Faults: []Fault{
			{Kind: FaultBlackout, At: 2 * time.Second, Duration: 3 * time.Second, Channel: 1},
			{Kind: FaultLossRamp, At: time.Second, Duration: 5 * time.Second, Channel: 2, From: 0.01, Value: 0.25, Steps: 8},
			{Kind: FaultDelaySpike, At: 6 * time.Second, Duration: 3 * time.Second, Channel: 0, Delay: 150 * time.Millisecond},
			{Kind: FaultCorrupt, At: 8 * time.Second, Duration: 3 * time.Second, Channel: 2, Value: 0.10},
		},
	},
}

// Builtin returns a copy of the named catalog scenario, or false when the
// name is unknown. The copy is safe to mutate (seed overrides, floor
// tweaks) without affecting the catalog.
func Builtin(name string) (*Scenario, bool) {
	s, ok := builtins[name]
	if !ok {
		return nil, false
	}
	cp := *s
	cp.Faults = append([]Fault(nil), s.Faults...)
	return &cp, true
}

// Names lists the catalog scenario names, sorted.
func Names() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
