// Package shardix provides the shard-index mixing used by every sharded
// table in this repository: the splitmix64 finalizer over a key, masked
// down to a power-of-two shard count.
//
// Senders assign sequence numbers sequentially and gateways assign session
// IDs in registration order, so the raw low bits of either would stripe
// neighboring keys onto neighboring shards and correlate with any
// power-of-two traffic pattern. The splitmix64 finalizer decorrelates the
// bits before masking; it is a bijection, so distinct keys never merge
// before the mask. First used by the PR-4 receiver's reassembly shards and
// shared here so the gateway's session table routes identically.
package shardix

// Mix applies the splitmix64 finalizer to key: an avalanche permutation of
// uint64 (every output bit depends on every input bit).
//
//remicss:noalloc
func Mix(key uint64) uint64 {
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Index routes key to a shard: Mix(key) & mask, where mask is a
// power-of-two shard count minus one.
//
//remicss:noalloc
func Index(key, mask uint64) uint64 { return Mix(key) & mask }
