package shardix

import "testing"

// TestMixReferenceValues pins the splitmix64 finalizer to the exact values
// the PR-4 receiver used inline, so extracting the helper cannot change
// which shard any sequence number routes to (the shard-reconciliation
// tests in internal/remicss depend on the routing staying put).
func TestMixReferenceValues(t *testing.T) {
	// Reference: the previous inline implementation, kept verbatim.
	ref := func(seq uint64) uint64 {
		z := seq + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	keys := []uint64{0, 1, 2, 3, 63, 64, 1 << 20, 1<<63 - 1, 1 << 63, ^uint64(0)}
	for i := uint64(0); i < 4096; i++ {
		keys = append(keys, i)
	}
	for _, k := range keys {
		if got, want := Mix(k), ref(k); got != want {
			t.Fatalf("Mix(%d) = %#x, want %#x", k, got, want)
		}
	}
}

// TestIndexMask checks Index is Mix masked, for every power-of-two mask the
// receiver and gateway use.
func TestIndexMask(t *testing.T) {
	for _, shards := range []uint64{1, 2, 4, 8, 64, 1024} {
		mask := shards - 1
		for k := uint64(0); k < 1000; k++ {
			if got, want := Index(k, mask), Mix(k)&mask; got != want {
				t.Fatalf("Index(%d, %#x) = %d, want %d", k, mask, got, want)
			}
			if Index(k, mask) >= shards {
				t.Fatalf("Index(%d, %#x) out of range", k, mask)
			}
		}
	}
}

// TestMixSpreadsSequentialKeys is a smoke check of the property the mixing
// exists for: sequential keys must not collapse onto few shards.
func TestMixSpreadsSequentialKeys(t *testing.T) {
	const shards = 16
	var hits [shards]int
	const n = 16 * 1024
	for k := uint64(0); k < n; k++ {
		hits[Index(k, shards-1)]++
	}
	for i, h := range hits {
		if h < n/shards/2 || h > n/shards*2 {
			t.Fatalf("shard %d got %d of %d sequential keys; expected near %d", i, h, n, n/shards)
		}
	}
}
