package shamir

import (
	"bytes"
	"testing"
)

// FuzzParseShare checks the share parser never panics, accepted shares
// round-trip, and parsing never mutates its input.
func FuzzParseShare(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0, 1})
	f.Add([]byte{})
	// Valid share plus truncation/corruption mutants.
	if valid, err := Split([]byte("fuzz seed secret"), 2, 3); err == nil {
		wire := valid[0].Bytes()
		f.Add(wire)
		f.Add(wire[:1])
		f.Add(wire[:len(wire)/2])
		flipped := append([]byte(nil), wire...)
		flipped[0] = 0
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		orig := append([]byte(nil), data...)
		s, err := ParseShare(data)
		if !bytes.Equal(data, orig) {
			t.Fatal("ParseShare mutated its input")
		}
		if err != nil {
			return
		}
		if !bytes.Equal(s.Bytes(), data) {
			t.Fatal("accepted share does not round-trip")
		}
	})
}

// FuzzSplitCombine exercises split/combine over fuzzed secrets and
// parameters.
func FuzzSplitCombine(f *testing.F) {
	f.Add([]byte("secret"), uint8(2), uint8(3))
	f.Add([]byte{0}, uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, secret []byte, kSeed, mSeed uint8) {
		if len(secret) == 0 || len(secret) > 1<<12 {
			return
		}
		m := int(mSeed)%8 + 1
		k := int(kSeed)%m + 1
		shares, err := Split(secret, k, m)
		if err != nil {
			t.Fatalf("valid parameters rejected: %v", err)
		}
		got, err := Combine(shares[:k])
		if err != nil {
			t.Fatalf("combine: %v", err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatal("roundtrip mismatch")
		}
		// The into variants must agree with the wrappers on the same shares.
		intoShares, err := NewSplitter(nil).SplitInto(secret, k, m, make([]Share, 0, m))
		if err != nil {
			t.Fatalf("split into: %v", err)
		}
		gotInto, err := CombineInto(make([]byte, 0, len(secret)), intoShares[m-k:])
		if err != nil {
			t.Fatalf("combine into: %v", err)
		}
		if !bytes.Equal(gotInto, secret) {
			t.Fatal("into-variant roundtrip mismatch")
		}
	})
}
