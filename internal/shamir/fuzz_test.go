package shamir

import (
	"bytes"
	"testing"
)

// FuzzParseShare checks the share parser never panics and accepted shares
// round-trip.
func FuzzParseShare(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseShare(data)
		if err != nil {
			return
		}
		if !bytes.Equal(s.Bytes(), data) {
			t.Fatal("accepted share does not round-trip")
		}
	})
}

// FuzzSplitCombine exercises split/combine over fuzzed secrets and
// parameters.
func FuzzSplitCombine(f *testing.F) {
	f.Add([]byte("secret"), uint8(2), uint8(3))
	f.Add([]byte{0}, uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, secret []byte, kSeed, mSeed uint8) {
		if len(secret) == 0 || len(secret) > 1<<12 {
			return
		}
		m := int(mSeed)%8 + 1
		k := int(kSeed)%m + 1
		shares, err := Split(secret, k, m)
		if err != nil {
			t.Fatalf("valid parameters rejected: %v", err)
		}
		got, err := Combine(shares[:k])
		if err != nil {
			t.Fatalf("combine: %v", err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatal("roundtrip mismatch")
		}
	})
}
