// Package shamir implements Shamir's (k, m) threshold secret sharing scheme
// over GF(2^8), as introduced in "How to share a secret" (Shamir, 1979).
//
// A secret of L bytes is split into m shares. Each share is L+1 bytes: a
// one-byte x-coordinate followed by L y-coordinate bytes, one per secret
// byte. Any k shares reconstruct the secret exactly; any k-1 shares reveal
// no information about it (information-theoretic secrecy).
//
// This is the threshold scheme the ReMICSS protocol model parameterizes with
// multiplicity m and threshold k; see internal/core for the model itself.
package shamir

import (
	"errors"
	"fmt"
	"io"

	"remicss/internal/drbg"
	"remicss/internal/gf256"
)

// MaxShares is the maximum multiplicity supported by the byte-wise scheme:
// x-coordinates are nonzero field elements, of which there are 255.
const MaxShares = 255

// Errors returned by Split and Combine. They are sentinel values so callers
// can classify failures with errors.Is.
var (
	ErrInvalidParams   = errors.New("shamir: invalid parameters")
	ErrEmptySecret     = errors.New("shamir: empty secret")
	ErrTooFewShares    = errors.New("shamir: not enough shares to reconstruct")
	ErrShareMismatch   = errors.New("shamir: shares have inconsistent lengths")
	ErrDuplicateShare  = errors.New("shamir: duplicate share x-coordinate")
	ErrMalformedShare  = errors.New("shamir: malformed share")
	ErrZeroCoordinate  = errors.New("shamir: share has zero x-coordinate")
	ErrRandomShortfall = errors.New("shamir: could not read random coefficients")
)

// Share is a single Shamir share: X is the evaluation point (nonzero), and Y
// holds one field element per secret byte.
type Share struct {
	X byte
	Y []byte //remicss:secret
}

// Bytes serializes the share as X followed by Y, the format used by Split's
// flat output and expected by ParseShare.
func (s Share) Bytes() []byte {
	out := make([]byte, 1+len(s.Y))
	out[0] = s.X
	copy(out[1:], s.Y)
	return out
}

// ParseShare parses the wire form produced by Share.Bytes.
func ParseShare(b []byte) (Share, error) {
	if len(b) < 2 {
		return Share{}, fmt.Errorf("%w: %d bytes", ErrMalformedShare, len(b))
	}
	if b[0] == 0 {
		return Share{}, ErrZeroCoordinate
	}
	y := make([]byte, len(b)-1)
	copy(y, b[1:])
	return Share{X: b[0], Y: y}, nil
}

// Splitter creates shares with a caller-supplied randomness source, which
// makes splitting deterministic under test. The zero value is not usable;
// construct with NewSplitter.
type Splitter struct {
	rand io.Reader //remicss:secret
}

// NewSplitter returns a Splitter drawing coefficients from r. If r is nil,
// the process-wide DRBG pool (drbg.Shared) is used: a batched AES-CTR
// generator seeded from — and periodically reseeded from — crypto/rand,
// several times faster than reading the kernel per split.
func NewSplitter(r io.Reader) *Splitter {
	if r == nil {
		r = drbg.Shared
	}
	return &Splitter{rand: r}
}

// Split shares the secret into m shares with reconstruction threshold k.
// Shares are assigned x-coordinates 1..m.
//
// Requirements: 1 <= k <= m <= MaxShares and len(secret) > 0.
//
//remicss:secret secret
func (sp *Splitter) Split(secret []byte, k, m int) ([]Share, error) {
	return sp.SplitInto(secret, k, m, nil)
}

// SplitInto is Split writing into caller-provided share storage: the shares
// slice is resized to m and each share's Y buffer is reused when its
// capacity suffices, so a caller cycling the same slice through repeated
// splits reaches a steady state of one scratch allocation per call (the
// random coefficient block). Passing nil shares is equivalent to Split.
//
// The split is evaluated block-wise: one random polynomial of degree k-1 per
// secret byte, all evaluated together with the gf256 slice kernels — share i
// is Horner-accumulated as Y = ((c_{k-1}·x + c_{k-2})·x + ...)·x + secret
// where each coefficient c_j is a whole random slice. This is the same
// polynomial family as the byte-wise code it replaced (the coefficients are
// merely drawn in coefficient-major rather than byte-major order) and
// several times faster.
//
// Evaluation is cache-tiled: the secret is walked in splitTileBytes windows,
// and within each window every share is produced before moving on, so the
// k coefficient tiles stay L1-resident while all m shares consume them
// (gf256.HornerBlock). The tiled traversal performs the identical sequence
// of field operations per byte as a share-major pass, so the output is
// byte-for-byte the same — a property the differential tests pin, because
// published leakage analyses of Shamir sharing assume the reference scheme
// exactly.
//
//remicss:noalloc
//remicss:secret secret
func (sp *Splitter) SplitInto(secret []byte, k, m int, shares []Share) ([]Share, error) {
	if k < 1 || m < k || m > MaxShares {
		return nil, fmt.Errorf("%w: k=%d, m=%d", ErrInvalidParams, k, m)
	}
	if len(secret) == 0 {
		return nil, ErrEmptySecret
	}

	shares = growShares(shares, m)
	for i := range shares {
		shares[i].X = byte(i + 1)
		shares[i].Y = growBytes(shares[i].Y, len(secret))
	}

	if k == 1 {
		// Degree-0 polynomials: every share is the secret itself.
		for i := range shares {
			copy(shares[i].Y, secret)
		}
		return shares, nil
	}

	// random holds coefficients 1..k-1 as contiguous slices of len(secret)
	// bytes each: coefficient j for secret byte b is random[(j-1)*L+b].
	// Together with any share the coefficients determine the secret, so the
	// scratch block is inside the secret perimeter.
	//remicss:secret
	random := make([]byte, (k-1)*len(secret)) //lint:allow noalloc one scratch block per split; documented as SplitInto's only allocation
	if _, err := io.ReadFull(sp.rand, random); err != nil {
		// Both sentinels stay in the chain: callers classify the failure
		// as a shamir shortfall or drill to the source's own sentinel
		// (e.g. drbg.ErrEntropy) with errors.Is alike.
		return nil, fmt.Errorf("%w: %w", ErrRandomShortfall, err)
	}
	L := len(secret)
	// Horner coefficient blocks, highest degree first, constant term (the
	// secret) last: c_{k-1} = random[(k-2)L:(k-1)L], ..., c_1 = random[0:L].
	// A fixed-size array keeps this off the heap (k <= MaxShares).
	var blocks [MaxShares][]byte //remicss:secret
	nb := 0
	for j := k - 1; j >= 1; j-- {
		blocks[nb] = random[(j-1)*L : j*L]
		nb++
	}
	blocks[nb] = secret
	nb++
	for lo := 0; lo < L; lo += splitTileBytes {
		hi := lo + splitTileBytes
		if hi > L {
			hi = L
		}
		for i := range shares {
			gf256.HornerBlock(shares[i].Y, shares[i].X, blocks[:nb], lo, hi)
		}
	}
	return shares, nil
}

// splitTileBytes is the tile width of the loop-interchanged split: small
// enough that the k coefficient tiles plus one share tile stay L1-resident
// at the largest supported thresholds, large enough to amortize the per-call
// overhead of the fused kernel.
const splitTileBytes = 4096

// growShares resizes s to length n, reusing its backing array (and the Y
// buffers of existing elements) when capacity allows.
func growShares(s []Share, n int) []Share {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([]Share, n)
	copy(out, s[:cap(s)])
	return out
}

// growBytes resizes b to length n, reusing its backing array when capacity
// allows.
func growBytes(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]byte, n)
}

// Combine reconstructs a secret from at least k shares produced by Split
// with threshold k. Passing more than k shares is fine; all are used, which
// also serves as a consistency check only in the sense that interpolation is
// over the provided points (it does not detect corrupted shares).
//
// Combine fails if shares disagree on length, duplicate an x-coordinate, or
// include a zero x-coordinate.
func Combine(shares []Share) ([]byte, error) {
	return CombineInto(nil, shares)
}

// CombineInto is Combine writing the reconstructed secret into dst, which is
// resized (reusing capacity) to the share length and returned. Passing nil
// dst allocates the result, which is then this function's only allocation.
//
// Reconstruction is block-wise: the Lagrange basis weight at zero
// w_i = Π_{j≠i} x_j / (x_i + x_j) is computed once per share, and the secret
// is accumulated as Σ w_i · Y_i with the gf256 scaled-accumulate kernel —
// algebraically identical to interpolating each byte position separately.
//
//remicss:noalloc
func CombineInto(dst []byte, shares []Share) ([]byte, error) {
	if len(shares) == 0 {
		return nil, ErrTooFewShares
	}
	if len(shares) > MaxShares {
		return nil, fmt.Errorf("%w: %d shares exceeds %d distinct x-coordinates",
			ErrDuplicateShare, len(shares), MaxShares)
	}
	length := len(shares[0].Y)
	if length == 0 {
		return nil, ErrMalformedShare
	}
	var xs [MaxShares]byte
	var seen [256]bool
	for i, s := range shares {
		if s.X == 0 {
			return nil, ErrZeroCoordinate
		}
		if len(s.Y) != length {
			return nil, fmt.Errorf("%w: share %d has %d bytes, share 0 has %d",
				ErrShareMismatch, i, len(s.Y), length)
		}
		if seen[s.X] {
			return nil, fmt.Errorf("%w: x=%d", ErrDuplicateShare, s.X)
		}
		seen[s.X] = true
		xs[i] = s.X
	}

	dst = growBytes(dst, length)
	clear(dst)
	for i := range shares {
		num, den := byte(1), byte(1)
		for j := range shares {
			if i == j {
				continue
			}
			num = gf256.Mul(num, xs[j]) // 0 - x_j == x_j
			den = gf256.Mul(den, gf256.Sub(xs[i], xs[j]))
		}
		gf256.AddMulSlice(dst, shares[i].Y, gf256.Div(num, den))
	}
	return dst, nil
}

// Split is a convenience wrapper drawing coefficients from the shared DRBG
// pool (crypto/rand-seeded; see internal/drbg).
//
//remicss:secret secret
func Split(secret []byte, k, m int) ([]Share, error) {
	return NewSplitter(nil).Split(secret, k, m)
}
