// Package shamir implements Shamir's (k, m) threshold secret sharing scheme
// over GF(2^8), as introduced in "How to share a secret" (Shamir, 1979).
//
// A secret of L bytes is split into m shares. Each share is L+1 bytes: a
// one-byte x-coordinate followed by L y-coordinate bytes, one per secret
// byte. Any k shares reconstruct the secret exactly; any k-1 shares reveal
// no information about it (information-theoretic secrecy).
//
// This is the threshold scheme the ReMICSS protocol model parameterizes with
// multiplicity m and threshold k; see internal/core for the model itself.
package shamir

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"

	"remicss/internal/gf256"
)

// MaxShares is the maximum multiplicity supported by the byte-wise scheme:
// x-coordinates are nonzero field elements, of which there are 255.
const MaxShares = 255

// Errors returned by Split and Combine. They are sentinel values so callers
// can classify failures with errors.Is.
var (
	ErrInvalidParams   = errors.New("shamir: invalid parameters")
	ErrEmptySecret     = errors.New("shamir: empty secret")
	ErrTooFewShares    = errors.New("shamir: not enough shares to reconstruct")
	ErrShareMismatch   = errors.New("shamir: shares have inconsistent lengths")
	ErrDuplicateShare  = errors.New("shamir: duplicate share x-coordinate")
	ErrMalformedShare  = errors.New("shamir: malformed share")
	ErrZeroCoordinate  = errors.New("shamir: share has zero x-coordinate")
	ErrRandomShortfall = errors.New("shamir: could not read random coefficients")
)

// Share is a single Shamir share: X is the evaluation point (nonzero), and Y
// holds one field element per secret byte.
type Share struct {
	X byte
	Y []byte
}

// Bytes serializes the share as X followed by Y, the format used by Split's
// flat output and expected by ParseShare.
func (s Share) Bytes() []byte {
	out := make([]byte, 1+len(s.Y))
	out[0] = s.X
	copy(out[1:], s.Y)
	return out
}

// ParseShare parses the wire form produced by Share.Bytes.
func ParseShare(b []byte) (Share, error) {
	if len(b) < 2 {
		return Share{}, fmt.Errorf("%w: %d bytes", ErrMalformedShare, len(b))
	}
	if b[0] == 0 {
		return Share{}, ErrZeroCoordinate
	}
	y := make([]byte, len(b)-1)
	copy(y, b[1:])
	return Share{X: b[0], Y: y}, nil
}

// Splitter creates shares with a caller-supplied randomness source, which
// makes splitting deterministic under test. The zero value is not usable;
// construct with NewSplitter.
type Splitter struct {
	rand io.Reader
}

// NewSplitter returns a Splitter drawing coefficients from r. If r is nil,
// crypto/rand.Reader is used.
func NewSplitter(r io.Reader) *Splitter {
	if r == nil {
		r = rand.Reader
	}
	return &Splitter{rand: r}
}

// Split shares the secret into m shares with reconstruction threshold k.
// Shares are assigned x-coordinates 1..m.
//
// Requirements: 1 <= k <= m <= MaxShares and len(secret) > 0.
func (sp *Splitter) Split(secret []byte, k, m int) ([]Share, error) {
	if k < 1 || m < k || m > MaxShares {
		return nil, fmt.Errorf("%w: k=%d, m=%d", ErrInvalidParams, k, m)
	}
	if len(secret) == 0 {
		return nil, ErrEmptySecret
	}

	shares := make([]Share, m)
	for i := range shares {
		shares[i] = Share{X: byte(i + 1), Y: make([]byte, len(secret))}
	}

	// One random polynomial of degree k-1 per secret byte; the secret byte is
	// the constant term. Draw all random coefficients in one read.
	coeffs := make([]byte, k)
	random := make([]byte, (k-1)*len(secret))
	if _, err := io.ReadFull(sp.rand, random); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRandomShortfall, err)
	}
	for bi, sb := range secret {
		coeffs[0] = sb
		copy(coeffs[1:], random[bi*(k-1):(bi+1)*(k-1)])
		for si := range shares {
			shares[si].Y[bi] = gf256.EvalPoly(coeffs, shares[si].X)
		}
	}
	return shares, nil
}

// Combine reconstructs a secret from at least k shares produced by Split
// with threshold k. Passing more than k shares is fine; all are used, which
// also serves as a consistency check only in the sense that interpolation is
// over the provided points (it does not detect corrupted shares).
//
// Combine fails if shares disagree on length, duplicate an x-coordinate, or
// include a zero x-coordinate.
func Combine(shares []Share) ([]byte, error) {
	if len(shares) == 0 {
		return nil, ErrTooFewShares
	}
	length := len(shares[0].Y)
	if length == 0 {
		return nil, ErrMalformedShare
	}
	xs := make([]byte, len(shares))
	seen := make(map[byte]bool, len(shares))
	for i, s := range shares {
		if s.X == 0 {
			return nil, ErrZeroCoordinate
		}
		if len(s.Y) != length {
			return nil, fmt.Errorf("%w: share %d has %d bytes, share 0 has %d",
				ErrShareMismatch, i, len(s.Y), length)
		}
		if seen[s.X] {
			return nil, fmt.Errorf("%w: x=%d", ErrDuplicateShare, s.X)
		}
		seen[s.X] = true
		xs[i] = s.X
	}

	secret := make([]byte, length)
	ys := make([]byte, len(shares))
	for bi := 0; bi < length; bi++ {
		for si := range shares {
			ys[si] = shares[si].Y[bi]
		}
		secret[bi] = gf256.InterpolateAtZero(xs, ys)
	}
	return secret, nil
}

// Split is a convenience wrapper using crypto/rand for coefficients.
func Split(secret []byte, k, m int) ([]Share, error) {
	return NewSplitter(nil).Split(secret, k, m)
}
