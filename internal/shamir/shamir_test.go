package shamir

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplitCombineRoundtrip(t *testing.T) {
	cases := []struct {
		name   string
		secret []byte
		k, m   int
	}{
		{"1-of-1", []byte("x"), 1, 1},
		{"1-of-5 replication-like", []byte("hello"), 1, 5},
		{"2-of-3", []byte("attack at dawn"), 2, 3},
		{"3-of-5", []byte("the quick brown fox"), 3, 5},
		{"5-of-5", bytes.Repeat([]byte{0xAB}, 64), 5, 5},
		{"binary secret", []byte{0, 1, 2, 255, 254, 0}, 2, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			shares, err := Split(tc.secret, tc.k, tc.m)
			if err != nil {
				t.Fatalf("Split: %v", err)
			}
			if len(shares) != tc.m {
				t.Fatalf("got %d shares, want %d", len(shares), tc.m)
			}
			got, err := Combine(shares[:tc.k])
			if err != nil {
				t.Fatalf("Combine: %v", err)
			}
			if !bytes.Equal(got, tc.secret) {
				t.Errorf("Combine = %q, want %q", got, tc.secret)
			}
		})
	}
}

// TestAnyKOfMReconstructs exhaustively checks every k-subset of shares for a
// small parameter grid.
func TestAnyKOfMReconstructs(t *testing.T) {
	secret := []byte("multichannel secret sharing")
	for m := 1; m <= 6; m++ {
		for k := 1; k <= m; k++ {
			shares, err := Split(secret, k, m)
			if err != nil {
				t.Fatalf("Split(k=%d, m=%d): %v", k, m, err)
			}
			forEachSubset(len(shares), k, func(idx []int) {
				sub := make([]Share, len(idx))
				for i, j := range idx {
					sub[i] = shares[j]
				}
				got, err := Combine(sub)
				if err != nil {
					t.Fatalf("Combine(k=%d, m=%d, subset=%v): %v", k, m, idx, err)
				}
				if !bytes.Equal(got, secret) {
					t.Fatalf("subset %v of (k=%d, m=%d) reconstructed %q", idx, k, m, got)
				}
			})
		}
	}
}

// forEachSubset invokes fn with every size-k subset of {0..n-1}.
func forEachSubset(n, k int, fn func([]int)) {
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			fn(idx)
			return
		}
		for i := start; i < n; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

func TestMoreThanKSharesAlsoReconstruct(t *testing.T) {
	secret := []byte("redundant")
	shares, err := Split(secret, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Combine(shares) // all 5
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Errorf("Combine(all) = %q, want %q", got, secret)
	}
}

// TestSecrecyOfInsufficientShares verifies the information-theoretic secrecy
// property statistically: with a fixed set of k-1 share coordinates, the
// observed share bytes are (close to) uniform regardless of the secret.
func TestSecrecyOfInsufficientShares(t *testing.T) {
	const trials = 20000
	sp := NewSplitter(rand.New(rand.NewSource(1)))
	counts := make([]int, 256)
	for i := 0; i < trials; i++ {
		shares, err := sp.Split([]byte{0x42}, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		counts[shares[0].Y[0]]++
	}
	// Chi-squared uniformity check, 255 dof. 99.9th percentile ~ 330.
	expected := float64(trials) / 256
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 330 {
		t.Errorf("share byte distribution not uniform: chi2 = %.1f (> 330)", chi2)
	}
}

// TestSingleShareIndependentOfSecret checks that for k=2, one share's
// distribution is identical for two different secrets (same randomness gives
// different shares, but marginal distribution matches).
func TestSingleShareIndependentOfSecret(t *testing.T) {
	const trials = 8000
	countsA := make([]int, 256)
	countsB := make([]int, 256)
	spA := NewSplitter(rand.New(rand.NewSource(7)))
	spB := NewSplitter(rand.New(rand.NewSource(8)))
	for i := 0; i < trials; i++ {
		sa, err := spA.Split([]byte{0x00}, 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := spB.Split([]byte{0xFF}, 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		countsA[sa[1].Y[0]]++
		countsB[sb[1].Y[0]]++
	}
	// Two-sample chi-squared; both should be uniform so the statistic over
	// the pooled comparison should be modest. 99.9th percentile ~ 330.
	var chi2 float64
	for i := range countsA {
		a, b := float64(countsA[i]), float64(countsB[i])
		if a+b == 0 {
			continue
		}
		d := a - b
		chi2 += d * d / (a + b)
	}
	if chi2 > 330 {
		t.Errorf("share distributions differ across secrets: chi2 = %.1f", chi2)
	}
}

func TestSplitParameterValidation(t *testing.T) {
	cases := []struct {
		name   string
		secret []byte
		k, m   int
		want   error
	}{
		{"k zero", []byte("s"), 0, 3, ErrInvalidParams},
		{"k negative", []byte("s"), -1, 3, ErrInvalidParams},
		{"k > m", []byte("s"), 4, 3, ErrInvalidParams},
		{"m too large", []byte("s"), 1, 256, ErrInvalidParams},
		{"empty secret", nil, 1, 1, ErrEmptySecret},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Split(tc.secret, tc.k, tc.m)
			if !errors.Is(err, tc.want) {
				t.Errorf("Split error = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestCombineValidation(t *testing.T) {
	shares, err := Split([]byte("valid"), 2, 3)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("no shares", func(t *testing.T) {
		if _, err := Combine(nil); !errors.Is(err, ErrTooFewShares) {
			t.Errorf("got %v, want ErrTooFewShares", err)
		}
	})
	t.Run("duplicate x", func(t *testing.T) {
		dup := []Share{shares[0], shares[0]}
		if _, err := Combine(dup); !errors.Is(err, ErrDuplicateShare) {
			t.Errorf("got %v, want ErrDuplicateShare", err)
		}
	})
	t.Run("length mismatch", func(t *testing.T) {
		bad := []Share{shares[0], {X: shares[1].X, Y: shares[1].Y[:2]}}
		if _, err := Combine(bad); !errors.Is(err, ErrShareMismatch) {
			t.Errorf("got %v, want ErrShareMismatch", err)
		}
	})
	t.Run("zero x", func(t *testing.T) {
		bad := []Share{{X: 0, Y: []byte{1, 2}}}
		if _, err := Combine(bad); !errors.Is(err, ErrZeroCoordinate) {
			t.Errorf("got %v, want ErrZeroCoordinate", err)
		}
	})
	t.Run("empty Y", func(t *testing.T) {
		bad := []Share{{X: 1, Y: nil}}
		if _, err := Combine(bad); !errors.Is(err, ErrMalformedShare) {
			t.Errorf("got %v, want ErrMalformedShare", err)
		}
	})
}

func TestShareBytesRoundtrip(t *testing.T) {
	roundtrip := func(x byte, y []byte) bool {
		if x == 0 || len(y) == 0 {
			return true
		}
		s := Share{X: x, Y: y}
		parsed, err := ParseShare(s.Bytes())
		if err != nil {
			return false
		}
		return parsed.X == s.X && bytes.Equal(parsed.Y, s.Y)
	}
	if err := quick.Check(roundtrip, nil); err != nil {
		t.Error(err)
	}
}

func TestParseShareErrors(t *testing.T) {
	if _, err := ParseShare([]byte{1}); !errors.Is(err, ErrMalformedShare) {
		t.Errorf("short input: got %v, want ErrMalformedShare", err)
	}
	if _, err := ParseShare([]byte{0, 1}); !errors.Is(err, ErrZeroCoordinate) {
		t.Errorf("zero x: got %v, want ErrZeroCoordinate", err)
	}
}

// TestQuickRoundtrip property-tests split/combine over random secrets and
// random valid (k, m).
func TestQuickRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sp := NewSplitter(rng)
	f := func(secret []byte, kSeed, mSeed uint8) bool {
		if len(secret) == 0 {
			secret = []byte{0}
		}
		m := int(mSeed)%8 + 1
		k := int(kSeed)%m + 1
		shares, err := sp.Split(secret, k, m)
		if err != nil {
			return false
		}
		// Random k-subset: shuffle then take k.
		rng.Shuffle(len(shares), func(i, j int) { shares[i], shares[j] = shares[j], shares[i] })
		got, err := Combine(shares[:k])
		if err != nil {
			return false
		}
		return bytes.Equal(got, secret)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicWithSeededRand(t *testing.T) {
	s1, err := NewSplitter(rand.New(rand.NewSource(5))).Split([]byte("det"), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSplitter(rand.New(rand.NewSource(5))).Split([]byte("det"), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if s1[i].X != s2[i].X || !bytes.Equal(s1[i].Y, s2[i].Y) {
			t.Fatalf("share %d differs across identically seeded splitters", i)
		}
	}
}

func BenchmarkSplit3of5_1400B(b *testing.B) {
	secret := bytes.Repeat([]byte{0x5a}, 1400)
	sp := NewSplitter(rand.New(rand.NewSource(1)))
	b.SetBytes(int64(len(secret)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Split(secret, 3, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombine3of5_1400B(b *testing.B) {
	secret := bytes.Repeat([]byte{0x5a}, 1400)
	shares, err := NewSplitter(rand.New(rand.NewSource(1))).Split(secret, 3, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(secret)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Combine(shares[:3]); err != nil {
			b.Fatal(err)
		}
	}
}
