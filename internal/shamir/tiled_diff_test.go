package shamir

// Differential tests for the cache-tiled split path. The reference below
// evaluates each secret byte's polynomial independently with the scalar
// gf256.EvalPoly (log/exp arithmetic, byte-major) — a completely separate
// code path from the tiled mulTable kernels — and the tests require the
// production SplitInto to be byte-for-byte identical to it for every (k, m)
// up to 8-of-8 and for lengths straddling tile boundaries with odd tails.
// Bit-identity matters beyond correctness: leakage analyses of Shamir
// sharing are stated for the reference scheme exactly, so the fast path must
// not be "equivalent", it must be the same function of (secret, randomness).

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"remicss/internal/drbg"
	"remicss/internal/gf256"
)

// referenceSplit computes shares byte-by-byte with scalar arithmetic, given
// the exact random coefficient block SplitInto would draw: coefficient j of
// the polynomial for secret byte b is random[(j-1)*L+b].
func referenceSplit(secret []byte, k, m int, random []byte) [][]byte {
	L := len(secret)
	out := make([][]byte, m)
	coeffs := make([]byte, k)
	for i := 0; i < m; i++ {
		x := byte(i + 1)
		y := make([]byte, L)
		for b := 0; b < L; b++ {
			coeffs[0] = secret[b]
			for j := 1; j < k; j++ {
				coeffs[j] = random[(j-1)*L+b]
			}
			y[b] = gf256.EvalPoly(coeffs, x)
		}
		out[i] = y
	}
	return out
}

// withKernels runs f once per compiled gf256 kernel with that kernel
// forced, so the split-level differentials below pin the scalar, word, and
// vector paths alike — whichever one init happened to select.
func withKernels(t *testing.T, f func(t *testing.T)) {
	t.Helper()
	for _, name := range gf256.Kernels() {
		restore, err := gf256.ForceKernel(name)
		if err != nil {
			t.Fatalf("ForceKernel(%q): %v", name, err)
		}
		ok := t.Run(name, f)
		restore()
		if !ok {
			return
		}
	}
}

func TestTiledSplitMatchesScalarReference(t *testing.T) {
	lengths := []int{
		1, 2, 7, 31, 333, // sub-tile, odd tails
		splitTileBytes - 1, splitTileBytes, splitTileBytes + 1, // tile boundary
		3*splitTileBytes + 13, // multi-tile with ragged tail
	}
	withKernels(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(42))
		for _, L := range lengths {
			secret := make([]byte, L)
			rng.Read(secret)
			for m := 1; m <= 8; m++ {
				for k := 1; k <= m; k++ {
					random := make([]byte, (k-1)*L)
					rng.Read(random)
					shares, err := NewSplitter(bytes.NewReader(random)).Split(secret, k, m)
					if err != nil {
						t.Fatalf("L=%d k=%d m=%d: %v", L, k, m, err)
					}
					want := referenceSplit(secret, k, m, random)
					for i := range shares {
						if shares[i].X != byte(i+1) {
							t.Fatalf("L=%d k=%d m=%d: share %d has X=%d", L, k, m, i, shares[i].X)
						}
						if !bytes.Equal(shares[i].Y, want[i]) {
							t.Fatalf("L=%d k=%d m=%d: tiled share %d diverges from scalar reference",
								L, k, m, i)
						}
					}
					got, err := Combine(shares[:k])
					if err != nil {
						t.Fatalf("L=%d k=%d m=%d combine: %v", L, k, m, err)
					}
					if !bytes.Equal(got, secret) {
						t.Fatalf("L=%d k=%d m=%d: combine of first k shares != secret", L, k, m)
					}
				}
			}
		}
	})
}

// TestSplitViaDRBGMatchesReference drives the production configuration end
// to end: coefficients drawn from a deterministic DRBG (the same generator
// family the shared pool serves), split through whichever kernel is under
// test, checked against the byte-major scalar reference fed the identical
// keystream.
func TestSplitViaDRBGMatchesReference(t *testing.T) {
	withKernels(t, func(t *testing.T) {
		const L, k, m = 3*splitTileBytes + 13, 3, 5
		secret := make([]byte, L)
		rand.New(rand.NewSource(9)).Read(secret)

		random := make([]byte, (k-1)*L)
		if _, err := io.ReadFull(drbg.NewDeterministic([]byte("diff")), random); err != nil {
			t.Fatal(err)
		}
		shares, err := NewSplitter(drbg.NewDeterministic([]byte("diff"))).Split(secret, k, m)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceSplit(secret, k, m, random)
		for i := range shares {
			if !bytes.Equal(shares[i].Y, want[i]) {
				t.Fatalf("DRBG-fed share %d diverges from scalar reference", i)
			}
		}
	})
}

// TestTiledSplitReusedBuffers re-splits through recycled share storage (the
// hot-path usage) and checks the tiled result still matches the reference —
// stale bytes in reused Y buffers must be fully overwritten in every tile.
func TestTiledSplitReusedBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const L = 2*splitTileBytes + 5
	var shares []Share
	for round := 0; round < 3; round++ {
		k, m := 3+round, 5+round
		secret := make([]byte, L)
		rng.Read(secret)
		random := make([]byte, (k-1)*L)
		rng.Read(random)
		var err error
		shares, err = NewSplitter(bytes.NewReader(random)).SplitInto(secret, k, m, shares)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := referenceSplit(secret, k, m, random)
		for i := range shares {
			if !bytes.Equal(shares[i].Y, want[i]) {
				t.Fatalf("round %d: reused-buffer share %d diverges from reference", round, i)
			}
		}
	}
}
