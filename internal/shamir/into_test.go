package shamir

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestSplitIntoMatchesSplit checks that SplitInto with a fresh slice and
// Split agree byte for byte under the same randomness stream.
func TestSplitIntoMatchesSplit(t *testing.T) {
	secret := []byte("block-wise versus wrapper")
	a, err := NewSplitter(rand.New(rand.NewSource(11))).Split(secret, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSplitter(rand.New(rand.NewSource(11))).SplitInto(secret, 3, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("share counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].X != b[i].X || !bytes.Equal(a[i].Y, b[i].Y) {
			t.Fatalf("share %d differs between Split and SplitInto", i)
		}
	}
}

// TestSplitIntoReusesBuffers checks that cycling one share slice through
// repeated splits reuses the Y backing arrays and still reconstructs.
func TestSplitIntoReusesBuffers(t *testing.T) {
	sp := NewSplitter(rand.New(rand.NewSource(12)))
	secret := bytes.Repeat([]byte{0xa5}, 512)
	shares, err := sp.SplitInto(secret, 3, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	firstY := &shares[0].Y[0]
	shares, err = sp.SplitInto(secret, 3, 5, shares)
	if err != nil {
		t.Fatal(err)
	}
	if &shares[0].Y[0] != firstY {
		t.Error("SplitInto did not reuse the Y buffer of share 0")
	}
	got, err := Combine(shares[1:4])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Error("reconstruction after buffer reuse failed")
	}

	// Shrinking the secret must shrink the shares, not leave stale bytes.
	small := []byte{1, 2, 3}
	shares, err = sp.SplitInto(small, 2, 3, shares)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range shares {
		if len(s.Y) != len(small) {
			t.Fatalf("share %d has %d bytes after shrink, want %d", i, len(s.Y), len(small))
		}
	}
	got, err = Combine(shares[:2])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, small) {
		t.Error("reconstruction after shrink failed")
	}
}

// TestCombineIntoMatchesCombine checks the block-wise Lagrange accumulation
// against the wrapper across thresholds and share subsets.
func TestCombineIntoMatchesCombine(t *testing.T) {
	f := func(seed int64, kSeed, mSeed uint8, secret []byte) bool {
		if len(secret) == 0 {
			secret = []byte{0}
		}
		if len(secret) > 1<<10 {
			secret = secret[:1<<10]
		}
		m := int(mSeed)%7 + 1
		k := int(kSeed)%m + 1
		shares, err := NewSplitter(rand.New(rand.NewSource(seed))).Split(secret, k, m)
		if err != nil {
			return false
		}
		dst := make([]byte, 0, len(secret))
		got, err := CombineInto(dst, shares[m-k:])
		if err != nil {
			return false
		}
		return bytes.Equal(got, secret)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCombineIntoRejectsBadShares pins the validation paths of the into
// variant (duplicate x, zero x, length mismatch, empty, oversized).
func TestCombineIntoRejectsBadShares(t *testing.T) {
	good := Share{X: 1, Y: []byte{1, 2}}
	cases := map[string][]Share{
		"empty":     nil,
		"zero x":    {{X: 0, Y: []byte{1, 2}}},
		"duplicate": {good, {X: 1, Y: []byte{3, 4}}},
		"mismatch":  {good, {X: 2, Y: []byte{3}}},
		"empty Y":   {{X: 1, Y: nil}},
		"oversized": make([]Share, MaxShares+1),
	}
	for name, shares := range cases {
		if name == "oversized" {
			for i := range shares {
				shares[i] = Share{X: byte(i%255 + 1), Y: []byte{1, 2}}
			}
		}
		if _, err := CombineInto(nil, shares); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// TestSplitIntoAllocs pins the steady-state allocation count of the into
// path: one allocation for the random coefficient block, nothing else.
func TestSplitIntoAllocs(t *testing.T) {
	sp := NewSplitter(rand.New(rand.NewSource(13)))
	secret := bytes.Repeat([]byte{0x3c}, 1400)
	shares, err := sp.SplitInto(secret, 3, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		shares, err = sp.SplitInto(secret, 3, 5, shares)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("SplitInto allocates %v times per op, want <= 1", allocs)
	}

	dst := make([]byte, len(secret))
	allocs = testing.AllocsPerRun(100, func() {
		var err error
		dst, err = CombineInto(dst, shares[:3])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("CombineInto allocates %v times per op, want 0", allocs)
	}
}

func BenchmarkSplitInto3of5_1400B(b *testing.B) {
	secret := bytes.Repeat([]byte{0x5a}, 1400)
	sp := NewSplitter(rand.New(rand.NewSource(1)))
	shares, err := sp.SplitInto(secret, 3, 5, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(secret)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if shares, err = sp.SplitInto(secret, 3, 5, shares); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombineInto3of5_1400B(b *testing.B) {
	secret := bytes.Repeat([]byte{0x5a}, 1400)
	shares, err := NewSplitter(rand.New(rand.NewSource(1))).Split(secret, 3, 5)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]byte, len(secret))
	b.SetBytes(int64(len(secret)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, err = CombineInto(dst, shares[:3]); err != nil {
			b.Fatal(err)
		}
	}
}
