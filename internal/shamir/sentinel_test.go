package shamir

import (
	"errors"
	"testing"

	"remicss/internal/drbg"
)

type brokenReader struct{ err error }

func (r brokenReader) Read([]byte) (int, error) { return 0, r.err }

// TestSplitSurfacesRandomShortfall pins the error contract of the split
// path: a randomness source failure is always classifiable as
// ErrRandomShortfall, and the source's own sentinel stays in the chain —
// callers distinguishing "the generator is down" (drbg.ErrEntropy) from
// other shortfalls do it with errors.Is, not string inspection.
func TestSplitSurfacesRandomShortfall(t *testing.T) {
	cause := errors.New("backing store unplugged")
	_, err := NewSplitter(brokenReader{err: cause}).Split([]byte("secret"), 3, 5)
	if !errors.Is(err, ErrRandomShortfall) {
		t.Fatalf("error %v is not ErrRandomShortfall", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("error %v dropped the underlying cause", err)
	}

	// Through the DRBG pool: entropy failure at state construction must
	// surface both sentinels from a plain Split call.
	pool := drbg.NewPool(func() (*drbg.DRBG, error) {
		return drbg.NewWithEntropy(brokenReader{err: cause})
	})
	_, err = NewSplitter(pool).Split([]byte("secret"), 3, 5)
	if !errors.Is(err, ErrRandomShortfall) {
		t.Fatalf("pooled error %v is not ErrRandomShortfall", err)
	}
	if !errors.Is(err, drbg.ErrEntropy) {
		t.Fatalf("pooled error %v lost the drbg.ErrEntropy sentinel", err)
	}
}

// TestDefaultSplitterUsesSharedPool guards the rewiring: a nil reader must
// resolve to the process-wide DRBG pool, not crypto/rand.
func TestDefaultSplitterUsesSharedPool(t *testing.T) {
	sp := NewSplitter(nil)
	if sp.rand != drbg.Shared {
		t.Fatalf("nil reader resolved to %T, want drbg.Shared", sp.rand)
	}
	if _, err := sp.Split([]byte("works end to end"), 2, 3); err != nil {
		t.Fatal(err)
	}
}
