package netem

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"remicss/internal/obs"
)

// LinkConfig describes one emulated channel, mirroring what htb and netem
// impose on the paper's testbed wires.
type LinkConfig struct {
	// Rate is the channel capacity in packets (share symbols) per second.
	// Must be positive.
	Rate float64
	// Loss is the independent probability that a packet is dropped after
	// serialization, as configured on netem. In [0, 1).
	Loss float64
	// Delay is the constant one-way propagation delay added by netem.
	Delay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter) per packet,
	// as netem's jitter parameter does. Packets may reorder within the
	// channel when Jitter exceeds the serialization interval.
	Jitter time.Duration
	// QueueLimit is the transmit queue depth in packets. A full queue makes
	// the link unwritable (the epoll signal) and drops further sends.
	// Defaults to DefaultQueueLimit when zero.
	QueueLimit int
	// Duplicate is the independent probability that a surviving packet is
	// delivered twice, as netem's duplicate parameter does. In [0, 1).
	Duplicate float64
	// Corrupt is the independent probability that a surviving packet has
	// one random bit flipped before delivery, as netem's corrupt parameter
	// does. In [0, 1).
	Corrupt float64
}

// DefaultQueueLimit is the transmit queue depth used when LinkConfig leaves
// it zero: enough to keep the link busy, small enough that writability
// tracks actual capacity, as with a small socket send buffer.
const DefaultQueueLimit = 8

// LinkStats counts link activity over the run.
type LinkStats struct {
	// Sent counts packets accepted into the transmit queue.
	Sent int64
	// Dropped counts packets rejected because the queue was full.
	Dropped int64
	// Lost counts packets dropped by the loss process after serialization.
	Lost int64
	// Delivered counts packets handed to the receiver.
	Delivered int64
	// Duplicated counts extra deliveries created by the duplication
	// process; each duplicate also counts in Delivered, so Delivered
	// remains the receiver-side datagram ground truth.
	Duplicated int64
	// Corrupted counts packets whose payload had a bit flipped before
	// delivery.
	Corrupted int64
}

// Link is one emulated channel. Packets serialize in FIFO order at the
// configured rate, then arrive after the configured delay unless lost.
type Link struct {
	eng     *Engine
	cfg     LinkConfig
	rng     *rand.Rand
	deliver func(payload []byte, arrival time.Duration)

	perPacket time.Duration
	busyUntil time.Duration
	queued    int
	down      bool
	stats     LinkStats

	// Optional observability, attached via Instrument. All nil/zero when
	// uninstrumented; the emulator is single-goroutine so plain reads are
	// fine, while the obs handles are atomic anyway.
	met          linkMetrics
	trace        *obs.Trace
	channel      int32
	lastWritable bool
}

// linkMetrics holds the obs handles for one instrumented link. Every field
// is nil until Instrument resolves them.
type linkMetrics struct {
	sent       *obs.Counter
	dropped    *obs.Counter
	lost       *obs.Counter
	delivered  *obs.Counter
	duplicated *obs.Counter
	corrupted  *obs.Counter
	queue      *obs.Gauge
}

// Instrument registers per-link series on reg under the given channel
// index and mirrors every subsequent Stats transition into them:
// netem_link_{sent,dropped,lost,delivered}_total{channel="i"} counters and
// a netem_link_queue{channel="i"} depth gauge. When trace is non-nil the
// link also records datagram-lost/-delivered events and channel
// writability transitions. Call before traffic starts; handles are
// resolved here so the send path performs no map lookups.
func (l *Link) Instrument(reg *obs.Registry, trace *obs.Trace, channel int) {
	label := obs.Label{Key: "channel", Value: strconv.Itoa(channel)}
	l.met = linkMetrics{
		sent:       reg.Counter("netem_link_sent_total", label),
		dropped:    reg.Counter("netem_link_dropped_total", label),
		lost:       reg.Counter("netem_link_lost_total", label),
		delivered:  reg.Counter("netem_link_delivered_total", label),
		duplicated: reg.Counter("netem_link_duplicated_total", label),
		corrupted:  reg.Counter("netem_link_corrupted_total", label),
		queue:      reg.Gauge("netem_link_queue", label),
	}
	l.trace = trace
	l.channel = int32(channel)
	l.lastWritable = l.Writable()
}

// noteWritability records a channel-writable / channel-unwritable trace
// event when the writability signal has flipped since the last check.
func (l *Link) noteWritability() {
	if l.trace == nil {
		return
	}
	w := l.Writable()
	if w == l.lastWritable {
		return
	}
	l.lastWritable = w
	kind := obs.EventChannelUnwritable
	if w {
		kind = obs.EventChannelWritable
	}
	l.trace.Record(kind, l.channel, l.eng.Now(), 0, int64(l.queued))
}

// NewLink creates a link on the engine. deliver is invoked (inside the
// event loop) for every packet that survives; it may be nil for a sink.
// rng drives the loss process and must not be shared with other links if
// deterministic replay is desired.
func NewLink(eng *Engine, cfg LinkConfig, rng *rand.Rand, deliver func(payload []byte, arrival time.Duration)) (*Link, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("netem: non-positive rate %v", cfg.Rate)
	}
	if cfg.Loss < 0 || cfg.Loss >= 1 {
		return nil, fmt.Errorf("netem: loss %v outside [0, 1)", cfg.Loss)
	}
	if cfg.Delay < 0 {
		return nil, fmt.Errorf("netem: negative delay %v", cfg.Delay)
	}
	if cfg.Jitter < 0 {
		return nil, fmt.Errorf("netem: negative jitter %v", cfg.Jitter)
	}
	if cfg.QueueLimit < 0 {
		return nil, fmt.Errorf("netem: negative queue limit %d", cfg.QueueLimit)
	}
	if cfg.Duplicate < 0 || cfg.Duplicate >= 1 {
		return nil, fmt.Errorf("netem: duplicate %v outside [0, 1)", cfg.Duplicate)
	}
	if cfg.Corrupt < 0 || cfg.Corrupt >= 1 {
		return nil, fmt.Errorf("netem: corrupt %v outside [0, 1)", cfg.Corrupt)
	}
	if cfg.QueueLimit == 0 {
		cfg.QueueLimit = DefaultQueueLimit
	}
	if rng == nil {
		return nil, fmt.Errorf("netem: nil rng")
	}
	return &Link{
		eng:       eng,
		cfg:       cfg,
		rng:       rng,
		deliver:   deliver,
		perPacket: time.Duration(float64(time.Second) / cfg.Rate),
	}, nil
}

// Config returns the link's configuration (with defaults applied).
func (l *Link) Config() LinkConfig { return l.cfg }

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// Writable reports whether the transmit queue has room, the signal the
// dynamic share schedule uses to pick "the first m channels ready for
// writing". A downed link is never writable.
func (l *Link) Writable() bool { return !l.down && l.queued < l.cfg.QueueLimit }

// SetDown fails or restores the link. While down, Send rejects every
// packet and Writable reports false — the failure-injection hook for
// channel-death experiments. Packets already serializing are unaffected.
func (l *Link) SetDown(down bool) {
	l.down = down
	l.noteWritability()
}

// SetLoss changes the loss probability mid-run, for drifting-condition
// experiments. It panics on probabilities outside [0, 1), matching the
// constructor's validation.
func (l *Link) SetLoss(loss float64) {
	if loss < 0 || loss >= 1 {
		panic(fmt.Sprintf("netem: loss %v outside [0, 1)", loss))
	}
	l.cfg.Loss = loss
}

// SetDelay changes the propagation delay mid-run — the delay-spike fault
// hook. Packets already serializing pick up the new delay when they finish,
// matching how netem applies qdisc changes. Panics on negative delays.
func (l *Link) SetDelay(delay time.Duration) {
	if delay < 0 {
		panic(fmt.Sprintf("netem: negative delay %v", delay))
	}
	l.cfg.Delay = delay
}

// SetJitter changes the per-packet jitter bound mid-run — the reordering
// fault hook (jitter beyond the serialization interval reorders packets
// within the channel). Panics on negative jitter.
func (l *Link) SetJitter(jitter time.Duration) {
	if jitter < 0 {
		panic(fmt.Sprintf("netem: negative jitter %v", jitter))
	}
	l.cfg.Jitter = jitter
}

// SetDuplicate changes the duplication probability mid-run. Panics on
// probabilities outside [0, 1), matching the constructor's validation.
func (l *Link) SetDuplicate(p float64) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("netem: duplicate %v outside [0, 1)", p))
	}
	l.cfg.Duplicate = p
}

// SetCorrupt changes the payload-corruption probability mid-run. Panics on
// probabilities outside [0, 1), matching the constructor's validation.
func (l *Link) SetCorrupt(p float64) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("netem: corrupt %v outside [0, 1)", p))
	}
	l.cfg.Corrupt = p
}

// Down reports whether the link is failed.
func (l *Link) Down() bool { return l.down }

// QueueLen returns the number of packets queued or serializing.
func (l *Link) QueueLen() int { return l.queued }

// Send enqueues a packet. It returns false (counting a drop) if the
// transmit queue is full. The payload is copied internally — the protocol's
// Link contract lets callers recycle their buffer as soon as Send returns,
// and the emulated queue holds packets far beyond that.
func (l *Link) Send(payload []byte) bool {
	if l.down || l.queued >= l.cfg.QueueLimit {
		l.stats.Dropped++
		if l.met.dropped != nil {
			l.met.dropped.Inc()
		}
		return false
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	l.queued++
	l.stats.Sent++
	if l.met.sent != nil {
		l.met.sent.Inc()
		l.met.queue.Set(int64(l.queued))
	}
	l.noteWritability()

	start := l.busyUntil
	if now := l.eng.Now(); start < now {
		start = now
	}
	done := start + l.perPacket
	l.busyUntil = done
	size := int64(len(buf))

	l.eng.At(done, func() {
		l.queued--
		if l.met.queue != nil {
			l.met.queue.Set(int64(l.queued))
		}
		l.noteWritability()
		if l.cfg.Loss > 0 && l.rng.Float64() < l.cfg.Loss {
			l.stats.Lost++
			if l.met.lost != nil {
				l.met.lost.Inc()
			}
			l.trace.Record(obs.EventDatagramLost, l.channel, done, 0, size)
			return
		}
		if l.cfg.Corrupt > 0 && len(buf) > 0 && l.rng.Float64() < l.cfg.Corrupt {
			buf[l.rng.Intn(len(buf))] ^= 1 << uint(l.rng.Intn(8))
			l.stats.Corrupted++
			if l.met.corrupted != nil {
				l.met.corrupted.Inc()
			}
		}
		copies := 1
		if l.cfg.Duplicate > 0 && l.rng.Float64() < l.cfg.Duplicate {
			copies = 2
			l.stats.Duplicated++
			if l.met.duplicated != nil {
				l.met.duplicated.Inc()
			}
		}
		for c := 0; c < copies; c++ {
			arrival := done + l.cfg.Delay
			if l.cfg.Jitter > 0 {
				arrival += time.Duration(l.rng.Float64() * float64(l.cfg.Jitter))
			}
			if l.deliver == nil {
				l.stats.Delivered++
				if l.met.delivered != nil {
					l.met.delivered.Inc()
				}
				l.trace.Record(obs.EventDatagramDelivered, l.channel, done, 0, int64(arrival-done))
				continue
			}
			l.eng.At(arrival, func() {
				l.stats.Delivered++
				if l.met.delivered != nil {
					l.met.delivered.Inc()
				}
				l.trace.Record(obs.EventDatagramDelivered, l.channel, arrival, 0, int64(arrival-done))
				l.deliver(buf, arrival)
			})
		}
	})
	return true
}

// Backlog returns how long the link will stay busy serializing already
// accepted packets, a readiness tiebreaker for schedulers that prefer the
// least-loaded channels.
func (l *Link) Backlog() time.Duration {
	if b := l.busyUntil - l.eng.Now(); b > 0 {
		return b
	}
	return 0
}
