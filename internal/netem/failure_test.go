package netem

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestSetDownRejectsAndRestores(t *testing.T) {
	eng := NewEngine()
	delivered := 0
	link, err := NewLink(eng, LinkConfig{Rate: 1000}, rand.New(rand.NewSource(1)),
		func(_ []byte, _ time.Duration) { delivered++ })
	if err != nil {
		t.Fatal(err)
	}
	link.SetDown(true)
	if link.Writable() {
		t.Error("downed link writable")
	}
	if link.Send([]byte{1}) {
		t.Error("downed link accepted packet")
	}
	if !link.Down() {
		t.Error("Down() false after SetDown(true)")
	}
	if got := link.Stats().Dropped; got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
	link.SetDown(false)
	if !link.Writable() {
		t.Error("restored link not writable")
	}
	if !link.Send([]byte{2}) {
		t.Error("restored link rejected packet")
	}
	eng.RunUntilIdle()
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1", delivered)
	}
}

func TestInFlightPacketsSurviveLinkDown(t *testing.T) {
	eng := NewEngine()
	delivered := 0
	link, err := NewLink(eng, LinkConfig{Rate: 10}, rand.New(rand.NewSource(2)),
		func(_ []byte, _ time.Duration) { delivered++ })
	if err != nil {
		t.Fatal(err)
	}
	link.Send([]byte{1})
	eng.Schedule(10*time.Millisecond, func() { link.SetDown(true) })
	eng.RunUntilIdle()
	if delivered != 1 {
		t.Errorf("in-flight packet lost on SetDown: delivered = %d", delivered)
	}
}

func TestJitterSpreadsArrivals(t *testing.T) {
	eng := NewEngine()
	var arrivals []time.Duration
	link, err := NewLink(eng, LinkConfig{
		Rate:   1e6,
		Delay:  10 * time.Millisecond,
		Jitter: 5 * time.Millisecond,
	}, rand.New(rand.NewSource(3)),
		func(_ []byte, at time.Duration) { arrivals = append(arrivals, at) })
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if !link.Send(nil) {
			// Queue may fill at the default limit; drain and continue.
			eng.RunUntilIdle()
			link.Send(nil)
		}
	}
	eng.RunUntilIdle()
	if len(arrivals) == 0 {
		t.Fatal("no arrivals")
	}
	var minA, maxA = arrivals[0], arrivals[0]
	reordered := false
	for i, a := range arrivals {
		if a < minA {
			minA = a
		}
		if a > maxA {
			maxA = a
		}
		if i > 0 && a < arrivals[i-1] {
			reordered = true
		}
	}
	if spread := maxA - minA; spread < 3*time.Millisecond {
		t.Errorf("jitter spread only %v", spread)
	}
	// Note: the engine delivers in timestamp order, so the deliver
	// callback sees sorted arrival times; reordering manifests as packets
	// delivered in a different order than sent, which we detect by the
	// arrival times NOT being in send order... with identical payloads we
	// instead check that sorted order differs from raw only if engine
	// delivered out of timestamp order, which it never does.
	_ = reordered
	if !sort.SliceIsSorted(arrivals, func(i, j int) bool { return arrivals[i] < arrivals[j] }) {
		t.Error("engine delivered out of time order")
	}
}

func TestJitterValidation(t *testing.T) {
	eng := NewEngine()
	if _, err := NewLink(eng, LinkConfig{Rate: 1, Jitter: -time.Second},
		rand.New(rand.NewSource(1)), nil); err == nil {
		t.Error("negative jitter accepted")
	}
}

func TestJitterReordersPayloads(t *testing.T) {
	// Distinct payloads: with jitter larger than the serialization
	// interval, delivery order must differ from send order for some pair.
	eng := NewEngine()
	var order []byte
	link, err := NewLink(eng, LinkConfig{
		Rate:       1000,
		Jitter:     50 * time.Millisecond,
		QueueLimit: 1 << 16,
	}, rand.New(rand.NewSource(4)),
		func(p []byte, _ time.Duration) { order = append(order, p[0]) })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !link.Send([]byte{byte(i)}) {
			t.Fatal("send rejected")
		}
	}
	eng.RunUntilIdle()
	if len(order) != 100 {
		t.Fatalf("delivered %d", len(order))
	}
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Error("no reordering despite jitter >> serialization interval")
	}
}
