package netem

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"remicss/internal/pathset"
)

func TestChainValidation(t *testing.T) {
	eng := NewEngine()
	if _, err := NewChain(eng, nil, rand.New(rand.NewSource(1)), nil); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := NewChain(eng, []LinkConfig{{Rate: 1}}, nil, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewChain(eng, []LinkConfig{{Rate: -1}}, rand.New(rand.NewSource(1)), nil); err == nil {
		t.Error("invalid hop accepted")
	}
}

func TestChainDelayAdds(t *testing.T) {
	eng := NewEngine()
	var arrival time.Duration
	chain, err := NewChain(eng, []LinkConfig{
		{Rate: 1000, Delay: 10 * time.Millisecond},
		{Rate: 1000, Delay: 20 * time.Millisecond},
		{Rate: 1000, Delay: 5 * time.Millisecond},
	}, rand.New(rand.NewSource(1)), func(_ []byte, at time.Duration) { arrival = at })
	if err != nil {
		t.Fatal(err)
	}
	if !chain.Send([]byte{1}) {
		t.Fatal("send rejected")
	}
	eng.RunUntilIdle()
	// 3 hops x 1ms serialization + 35ms propagation.
	want := 3*time.Millisecond + 35*time.Millisecond
	if arrival != want {
		t.Errorf("arrival = %v, want %v", arrival, want)
	}
}

func TestChainLossCompounds(t *testing.T) {
	eng := NewEngine()
	delivered := 0
	losses := []float64{0.1, 0.2, 0.05}
	cfgs := make([]LinkConfig, len(losses))
	for i, l := range losses {
		cfgs[i] = LinkConfig{Rate: 1e6, Loss: l, QueueLimit: 1 << 20}
	}
	chain, err := NewChain(eng, cfgs, rand.New(rand.NewSource(2)),
		func(_ []byte, _ time.Duration) { delivered++ })
	if err != nil {
		t.Fatal(err)
	}
	const sent = 30000
	for i := 0; i < sent; i++ {
		if !chain.Send(nil) {
			t.Fatal("send rejected")
		}
	}
	eng.RunUntilIdle()
	want := 1 - (1-0.1)*(1-0.2)*(1-0.05)
	got := 1 - float64(delivered)/sent
	if math.Abs(got-want) > 0.01 {
		t.Errorf("end-to-end loss %v, want %v", got, want)
	}
	st := chain.Stats()
	if st.Sent != sent || st.Delivered != int64(delivered) {
		t.Errorf("stats = %+v", st)
	}
}

func TestChainBottleneckRate(t *testing.T) {
	eng := NewEngine()
	delivered := 0
	chain, err := NewChain(eng, []LinkConfig{
		{Rate: 1000, QueueLimit: 16},
		{Rate: 100, QueueLimit: 16}, // bottleneck
		{Rate: 1000, QueueLimit: 16},
	}, rand.New(rand.NewSource(3)), func(_ []byte, _ time.Duration) { delivered++ })
	if err != nil {
		t.Fatal(err)
	}
	var offer func()
	offer = func() {
		chain.Send(nil)
		if eng.Now() < 10*time.Second {
			eng.Schedule(2*time.Millisecond, offer) // 500/s offered
		}
	}
	eng.Schedule(0, offer)
	eng.Run(10 * time.Second)
	rate := float64(delivered) / 10
	if math.Abs(rate-100) > 5 {
		t.Errorf("delivered rate %v, want ~100 (bottleneck)", rate)
	}
}

// TestChainMatchesPathComposition is the empirical validation of
// pathset.Path.Channel: a multi-hop emulated chain must exhibit exactly the
// loss/delay/rate quadruple the composition rules predict.
func TestChainMatchesPathComposition(t *testing.T) {
	ms := time.Millisecond
	edges := []pathset.Edge{
		{From: "s", To: "r1", Risk: 0.2, Loss: 0.05, Delay: 4 * ms, Rate: 800},
		{From: "r1", To: "r2", Risk: 0.1, Loss: 0.02, Delay: 7 * ms, Rate: 1200},
		{From: "r2", To: "t", Risk: 0.3, Loss: 0.01, Delay: 2 * ms, Rate: 600},
	}
	g, err := pathset.NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := g.DisjointPaths("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	predicted := paths[0].Channel()

	eng := NewEngine()
	delivered := 0
	var delaySum time.Duration
	var sendTimes []time.Duration
	cfgs := make([]LinkConfig, len(edges))
	for i, e := range edges {
		cfgs[i] = LinkConfig{Rate: e.Rate, Loss: e.Loss, Delay: e.Delay, QueueLimit: 64}
	}
	seq := 0
	chain, err := NewChain(eng, cfgs, rand.New(rand.NewSource(4)),
		func(p []byte, at time.Duration) {
			delivered++
			idx := int(p[0]) | int(p[1])<<8
			delaySum += at - sendTimes[idx]
		})
	if err != nil {
		t.Fatal(err)
	}
	// Offer at 10% of the bottleneck so queueing is negligible.
	var offer func()
	offer = func() {
		payload := []byte{byte(seq), byte(seq >> 8)}
		sendTimes = append(sendTimes, eng.Now())
		chain.Send(payload)
		seq++
		if eng.Now() < 60*time.Second && seq < 60000 {
			eng.Schedule(16666*time.Microsecond, offer)
		}
	}
	eng.Schedule(0, offer)
	eng.RunUntilIdle()

	gotLoss := 1 - float64(delivered)/float64(seq)
	if math.Abs(gotLoss-predicted.Loss) > 0.015 {
		t.Errorf("measured loss %v, composition predicts %v", gotLoss, predicted.Loss)
	}
	gotDelay := delaySum / time.Duration(delivered)
	// Serialization adds 1/800+1/1200+1/600 s ~ 3.75ms on top of the
	// 13ms propagation the composition accounts for.
	serialization := 3750 * time.Microsecond
	want := predicted.Delay + serialization
	if gotDelay < predicted.Delay || gotDelay > want+time.Millisecond {
		t.Errorf("measured delay %v, composition predicts %v (+%v serialization)",
			gotDelay, predicted.Delay, serialization)
	}
	if predicted.Rate != 600 {
		t.Errorf("composed rate %v, want bottleneck 600", predicted.Rate)
	}
}

func TestChainFailureInjection(t *testing.T) {
	eng := NewEngine()
	delivered := 0
	chain, err := NewChain(eng, []LinkConfig{
		{Rate: 1000},
		{Rate: 1000},
	}, rand.New(rand.NewSource(5)), func(_ []byte, _ time.Duration) { delivered++ })
	if err != nil {
		t.Fatal(err)
	}
	// Kill the middle of the path: packets accepted at hop 0 die at hop 1.
	chain.Hops()[1].SetDown(true)
	if !chain.Writable() {
		t.Error("first hop writability should be unaffected")
	}
	chain.Send([]byte{1})
	eng.RunUntilIdle()
	if delivered != 0 {
		t.Error("delivery through a downed hop")
	}
	if chain.Stats().Dropped == 0 {
		t.Error("downed hop drop not counted")
	}
}
