package netem

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

func TestDuplicateDeliversTwice(t *testing.T) {
	eng := NewEngine()
	delivered := 0
	link, err := NewLink(eng, LinkConfig{Rate: 1e6, Duplicate: 0.999999, QueueLimit: 1 << 10},
		rand.New(rand.NewSource(1)),
		func(_ []byte, _ time.Duration) { delivered++ })
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if !link.Send([]byte{byte(i)}) {
			t.Fatal("send rejected")
		}
	}
	eng.RunUntilIdle()
	st := link.Stats()
	if st.Duplicated == 0 {
		t.Fatal("no duplicates at p≈1")
	}
	if delivered != n+int(st.Duplicated) {
		t.Errorf("delivered = %d, want sent %d + duplicated %d", delivered, n, st.Duplicated)
	}
	if st.Delivered != int64(delivered) {
		t.Errorf("Stats.Delivered = %d disagrees with receiver count %d", st.Delivered, delivered)
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	eng := NewEngine()
	orig := []byte{0xAA, 0xBB, 0xCC, 0xDD}
	var got [][]byte
	link, err := NewLink(eng, LinkConfig{Rate: 1e6, Corrupt: 0.999999, QueueLimit: 1 << 10},
		rand.New(rand.NewSource(2)),
		func(p []byte, _ time.Duration) {
			cp := make([]byte, len(p))
			copy(cp, p)
			got = append(got, cp)
		})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if !link.Send(orig) {
			t.Fatal("send rejected")
		}
	}
	eng.RunUntilIdle()
	if len(got) != n {
		t.Fatalf("delivered %d, want %d", len(got), n)
	}
	corrupted := 0
	for _, p := range got {
		diff := 0
		for i := range p {
			b := p[i] ^ orig[i]
			for ; b != 0; b &= b - 1 {
				diff++
			}
		}
		switch diff {
		case 0:
		case 1:
			corrupted++
		default:
			t.Errorf("payload differs in %d bits, want exactly 1", diff)
		}
	}
	if corrupted == 0 {
		t.Error("no corruption at p≈1")
	}
	if got := link.Stats().Corrupted; got != int64(corrupted) {
		t.Errorf("Stats.Corrupted = %d, observed %d corrupted payloads", got, corrupted)
	}
}

func TestCorruptDoesNotTouchCallerBuffer(t *testing.T) {
	eng := NewEngine()
	payload := []byte{1, 2, 3, 4}
	keep := append([]byte(nil), payload...)
	link, err := NewLink(eng, LinkConfig{Rate: 1e6, Corrupt: 0.999999},
		rand.New(rand.NewSource(3)), nil)
	if err != nil {
		t.Fatal(err)
	}
	link.Send(payload)
	eng.RunUntilIdle()
	if !bytes.Equal(payload, keep) {
		t.Error("corruption mutated the caller's buffer")
	}
}

func TestSetDelaySpikeShiftsArrivals(t *testing.T) {
	eng := NewEngine()
	var arrivals []time.Duration
	link, err := NewLink(eng, LinkConfig{Rate: 1000, Delay: time.Millisecond, QueueLimit: 1 << 10},
		rand.New(rand.NewSource(4)),
		func(_ []byte, at time.Duration) { arrivals = append(arrivals, at) })
	if err != nil {
		t.Fatal(err)
	}
	link.Send([]byte{0})
	// Spike after the first packet is through, then send another.
	eng.Schedule(10*time.Millisecond, func() {
		link.SetDelay(500 * time.Millisecond)
		link.Send([]byte{1})
	})
	eng.RunUntilIdle()
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d, want 2", len(arrivals))
	}
	if base := arrivals[0]; base > 5*time.Millisecond {
		t.Errorf("pre-spike arrival %v too late", base)
	}
	if spiked := arrivals[1]; spiked < 500*time.Millisecond {
		t.Errorf("post-spike arrival %v ignores SetDelay", spiked)
	}
}

func TestSetJitterTakesEffect(t *testing.T) {
	eng := NewEngine()
	var arrivals []time.Duration
	link, err := NewLink(eng, LinkConfig{Rate: 1e6, QueueLimit: 1 << 16},
		rand.New(rand.NewSource(5)),
		func(_ []byte, at time.Duration) { arrivals = append(arrivals, at) })
	if err != nil {
		t.Fatal(err)
	}
	link.SetJitter(20 * time.Millisecond)
	for i := 0; i < 200; i++ {
		link.Send([]byte{byte(i)})
	}
	eng.RunUntilIdle()
	var minA, maxA = arrivals[0], arrivals[0]
	for _, a := range arrivals {
		if a < minA {
			minA = a
		}
		if a > maxA {
			maxA = a
		}
	}
	if spread := maxA - minA; spread < 10*time.Millisecond {
		t.Errorf("jitter spread only %v after SetJitter", spread)
	}
}

func TestFaultSetterValidation(t *testing.T) {
	eng := NewEngine()
	link, err := NewLink(eng, LinkConfig{Rate: 1}, rand.New(rand.NewSource(6)), nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func(){
		"SetDelay":     func() { link.SetDelay(-time.Second) },
		"SetJitter":    func() { link.SetJitter(-time.Second) },
		"SetDuplicate": func() { link.SetDuplicate(1.5) },
		"SetCorrupt":   func() { link.SetCorrupt(-0.1) },
		"SetLoss":      func() { link.SetLoss(1.0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted an invalid value", name)
				}
			}()
			fn()
		}()
	}
}

func TestFaultConfigValidation(t *testing.T) {
	eng := NewEngine()
	if _, err := NewLink(eng, LinkConfig{Rate: 1, Duplicate: 1.0},
		rand.New(rand.NewSource(1)), nil); err == nil {
		t.Error("duplicate = 1.0 accepted")
	}
	if _, err := NewLink(eng, LinkConfig{Rate: 1, Corrupt: -0.5},
		rand.New(rand.NewSource(1)), nil); err == nil {
		t.Error("negative corrupt accepted")
	}
}
