package netem

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestEngineRunsEventsInOrder(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.Schedule(3*time.Second, func() { order = append(order, 3) })
	eng.Schedule(1*time.Second, func() { order = append(order, 1) })
	eng.Schedule(2*time.Second, func() { order = append(order, 2) })
	eng.Run(10 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("event order = %v, want [1 2 3]", order)
	}
	if eng.Now() != 10*time.Second {
		t.Errorf("clock = %v, want 10s", eng.Now())
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	eng := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(time.Second, func() { order = append(order, i) })
	}
	eng.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant order = %v, want ascending", order)
		}
	}
}

func TestEngineHorizonStopsEvents(t *testing.T) {
	eng := NewEngine()
	ran := false
	eng.Schedule(5*time.Second, func() { ran = true })
	eng.Run(4 * time.Second)
	if ran {
		t.Error("event past horizon ran")
	}
	if eng.Pending() != 1 {
		t.Errorf("pending = %d, want 1", eng.Pending())
	}
	eng.Run(5 * time.Second)
	if !ran {
		t.Error("event at horizon did not run")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := NewEngine()
	var times []time.Duration
	eng.Schedule(time.Second, func() {
		times = append(times, eng.Now())
		eng.Schedule(time.Second, func() {
			times = append(times, eng.Now())
		})
	})
	eng.Run(5 * time.Second)
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Errorf("nested event times = %v", times)
	}
}

func TestEngineRunUntilIdle(t *testing.T) {
	eng := NewEngine()
	count := 0
	eng.Schedule(time.Hour, func() { count++ })
	eng.Schedule(2*time.Hour, func() { count++ })
	eng.RunUntilIdle()
	if count != 2 {
		t.Errorf("ran %d events, want 2", count)
	}
	if eng.Now() != 2*time.Hour {
		t.Errorf("clock = %v, want 2h", eng.Now())
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	eng := NewEngine()
	eng.Schedule(time.Second, func() {})
	eng.Run(time.Second)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	eng.At(0, func() {})
}

func TestLinkSerializationRate(t *testing.T) {
	eng := NewEngine()
	var arrivals []time.Duration
	link, err := NewLink(eng, LinkConfig{Rate: 10}, rand.New(rand.NewSource(1)),
		func(_ []byte, at time.Duration) { arrivals = append(arrivals, at) })
	if err != nil {
		t.Fatal(err)
	}
	// Two packets sent back to back at 10 pkt/s serialize at 100ms, 200ms.
	link.Send([]byte{1})
	link.Send([]byte{2})
	eng.Run(time.Second)
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(arrivals))
	}
	if arrivals[0] != 100*time.Millisecond || arrivals[1] != 200*time.Millisecond {
		t.Errorf("arrivals = %v, want [100ms 200ms]", arrivals)
	}
}

func TestLinkDelay(t *testing.T) {
	eng := NewEngine()
	var arrival time.Duration
	link, err := NewLink(eng, LinkConfig{Rate: 1000, Delay: 50 * time.Millisecond},
		rand.New(rand.NewSource(1)),
		func(_ []byte, at time.Duration) { arrival = at })
	if err != nil {
		t.Fatal(err)
	}
	link.Send([]byte{1})
	eng.Run(time.Second)
	if want := time.Millisecond + 50*time.Millisecond; arrival != want {
		t.Errorf("arrival = %v, want %v", arrival, want)
	}
}

func TestLinkQueueLimitAndWritability(t *testing.T) {
	eng := NewEngine()
	link, err := NewLink(eng, LinkConfig{Rate: 1, QueueLimit: 2}, rand.New(rand.NewSource(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !link.Writable() {
		t.Error("fresh link not writable")
	}
	if !link.Send([]byte{1}) || !link.Send([]byte{2}) {
		t.Fatal("sends within queue limit rejected")
	}
	if link.Writable() {
		t.Error("full link still writable")
	}
	if link.Send([]byte{3}) {
		t.Error("send into full queue accepted")
	}
	if got := link.Stats().Dropped; got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
	// After one serialization (1s), one slot frees.
	eng.Run(time.Second)
	if !link.Writable() {
		t.Error("link not writable after drain")
	}
	if got := link.QueueLen(); got != 1 {
		t.Errorf("queue length = %d, want 1", got)
	}
}

func TestLinkLossRate(t *testing.T) {
	eng := NewEngine()
	delivered := 0
	link, err := NewLink(eng, LinkConfig{Rate: 1e6, Loss: 0.3, QueueLimit: 1 << 20},
		rand.New(rand.NewSource(42)),
		func(_ []byte, _ time.Duration) { delivered++ })
	if err != nil {
		t.Fatal(err)
	}
	const sent = 20000
	for i := 0; i < sent; i++ {
		if !link.Send(nil) {
			t.Fatal("send rejected")
		}
	}
	eng.RunUntilIdle()
	got := 1 - float64(delivered)/sent
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("observed loss %v, want ~0.3", got)
	}
	st := link.Stats()
	if st.Lost+st.Delivered != sent {
		t.Errorf("lost %d + delivered %d != sent %d", st.Lost, st.Delivered, sent)
	}
}

func TestLinkThroughputMatchesRate(t *testing.T) {
	// Offered load above capacity: delivered rate equals the configured
	// rate (the htb behavior the rate experiments rely on).
	eng := NewEngine()
	delivered := 0
	link, err := NewLink(eng, LinkConfig{Rate: 100, QueueLimit: 4}, rand.New(rand.NewSource(7)),
		func(_ []byte, _ time.Duration) { delivered++ })
	if err != nil {
		t.Fatal(err)
	}
	// Offer 200 pkt/s for 10 virtual seconds; retry when unwritable.
	interval := 5 * time.Millisecond
	var offer func()
	offer = func() {
		link.Send(nil)
		if eng.Now() < 10*time.Second {
			eng.Schedule(interval, offer)
		}
	}
	eng.Schedule(0, offer)
	eng.Run(10 * time.Second)
	eng.RunUntilIdle()
	rate := float64(delivered) / 10
	if math.Abs(rate-100) > 2 {
		t.Errorf("delivered rate %v pkt/s, want ~100", rate)
	}
}

func TestLinkBacklog(t *testing.T) {
	eng := NewEngine()
	link, err := NewLink(eng, LinkConfig{Rate: 2, QueueLimit: 10}, rand.New(rand.NewSource(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if link.Backlog() != 0 {
		t.Errorf("idle backlog = %v, want 0", link.Backlog())
	}
	link.Send(nil) // 500ms serialization
	link.Send(nil)
	if got := link.Backlog(); got != time.Second {
		t.Errorf("backlog = %v, want 1s", got)
	}
}

func TestLinkConfigValidation(t *testing.T) {
	eng := NewEngine()
	rng := rand.New(rand.NewSource(1))
	cases := []LinkConfig{
		{Rate: 0},
		{Rate: -5},
		{Rate: 1, Loss: 1},
		{Rate: 1, Loss: -0.1},
		{Rate: 1, Delay: -time.Second},
		{Rate: 1, QueueLimit: -1},
	}
	for _, cfg := range cases {
		if _, err := NewLink(eng, cfg, rng, nil); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := NewLink(eng, LinkConfig{Rate: 1}, nil, nil); err == nil {
		t.Error("nil rng accepted")
	}
	// Default queue limit applied.
	link, err := NewLink(eng, LinkConfig{Rate: 1}, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := link.Config().QueueLimit; got != DefaultQueueLimit {
		t.Errorf("default queue limit = %d, want %d", got, DefaultQueueLimit)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (int64, int64) {
		eng := NewEngine()
		link, err := NewLink(eng, LinkConfig{Rate: 1000, Loss: 0.1, QueueLimit: 100},
			rand.New(rand.NewSource(5)), nil)
		if err != nil {
			t.Fatal(err)
		}
		var send func()
		send = func() {
			link.Send(nil)
			if eng.Now() < 5*time.Second {
				eng.Schedule(time.Millisecond, send)
			}
		}
		eng.Schedule(0, send)
		eng.Run(5 * time.Second)
		eng.RunUntilIdle()
		st := link.Stats()
		return st.Delivered, st.Lost
	}
	d1, l1 := run()
	d2, l2 := run()
	if d1 != d2 || l1 != l2 {
		t.Errorf("replay diverged: (%d, %d) vs (%d, %d)", d1, l1, d2, l2)
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	eng := NewEngine()
	link, err := NewLink(eng, LinkConfig{Rate: 1e6, QueueLimit: 1 << 20},
		rand.New(rand.NewSource(1)), func(_ []byte, _ time.Duration) {})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		link.Send(nil)
		if i%1024 == 0 {
			eng.RunUntilIdle()
		}
	}
	eng.RunUntilIdle()
}
