package netem

import (
	"fmt"
	"math/rand"
	"time"
)

// Chain is a multi-hop path: a sequence of links where each hop forwards to
// the next, modeling one network path through intermediate routers. It
// satisfies the protocol's Link contract, so a Chain can stand wherever a
// single channel does.
//
// Chains exist to validate the path-composition rules of internal/pathset
// empirically: end-to-end loss compounds per hop, delay adds (plus
// serialization), and throughput bottlenecks at the slowest hop.
type Chain struct {
	hops []*Link
}

// NewChain builds a path of hops with the given per-hop configurations.
// deliver receives payloads that survive every hop; rng seeds each hop's
// loss process independently.
func NewChain(eng *Engine, cfgs []LinkConfig, rng *rand.Rand, deliver func(payload []byte, arrival time.Duration)) (*Chain, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("netem: empty chain")
	}
	if rng == nil {
		return nil, fmt.Errorf("netem: nil rng")
	}
	c := &Chain{hops: make([]*Link, len(cfgs))}
	// Build back to front so each hop can forward to the next.
	for i := len(cfgs) - 1; i >= 0; i-- {
		next := func(payload []byte, arrival time.Duration) {
			if deliver != nil {
				deliver(payload, arrival)
			}
		}
		if i < len(cfgs)-1 {
			nextHop := c.hops[i+1]
			next = func(payload []byte, _ time.Duration) {
				// Router forwarding: drop silently if the next hop's queue
				// is full, as a real router would.
				nextHop.Send(payload)
			}
		}
		link, err := NewLink(eng, cfgs[i], rand.New(rand.NewSource(rng.Int63())), next)
		if err != nil {
			return nil, fmt.Errorf("netem: chain hop %d: %w", i, err)
		}
		c.hops[i] = link
	}
	return c, nil
}

// Send enqueues a payload at the first hop.
func (c *Chain) Send(payload []byte) bool { return c.hops[0].Send(payload) }

// Writable reports the first hop's readiness — the only hop the sender's
// epoll can see, exactly as on a real path.
func (c *Chain) Writable() bool { return c.hops[0].Writable() }

// Backlog reports the first hop's transmit backlog.
func (c *Chain) Backlog() time.Duration { return c.hops[0].Backlog() }

// Hops exposes the underlying links for failure injection and stats.
func (c *Chain) Hops() []*Link { return c.hops }

// Stats aggregates per-hop statistics: Sent from the first hop, Delivered
// from the last, losses and drops summed across hops.
func (c *Chain) Stats() LinkStats {
	var s LinkStats
	s.Sent = c.hops[0].Stats().Sent
	s.Delivered = c.hops[len(c.hops)-1].Stats().Delivered
	for _, h := range c.hops {
		st := h.Stats()
		s.Lost += st.Lost
		s.Dropped += st.Dropped
	}
	// The first hop's sender-side drops were already counted in the loop;
	// subtract nothing — Dropped aggregates queue drops anywhere on the
	// path.
	return s
}
