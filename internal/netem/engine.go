// Package netem is a discrete-event network emulator: the testbed substrate
// for the protocol evaluation.
//
// The paper's experiments run over five dedicated wires shaped by the Linux
// Hierarchical Token Bucket queueing class (rate limiting) and the netem
// queueing discipline (loss and delay). This package reproduces that
// environment in virtual time:
//
//   - Engine is a deterministic event loop with a virtual clock.
//   - Link models one shaped channel: packets serialize at a fixed rate
//     (htb), then suffer independent Bernoulli loss and a constant one-way
//     delay (netem). A bounded transmit queue provides the "writability"
//     signal the protocol's dynamic share schedule polls, standing in for
//     epoll on a socket send buffer.
//
// Virtual time makes minute-long benchmark runs execute in milliseconds and
// makes every experiment reproducible bit-for-bit from its RNG seed.
package netem

import (
	"container/heap"
	"fmt"
	"time"
)

// Engine is a discrete-event simulation loop. It is not safe for concurrent
// use: all events run on the caller's goroutine inside Run.
type Engine struct {
	now    time.Duration
	queue  eventQueue
	nextID uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule runs fn after delay (possibly zero) of virtual time. Events at
// the same instant run in scheduling order.
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("netem: negative delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t, which must not be in the past.
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("netem: scheduling event at %v before now %v", t, e.now))
	}
	heap.Push(&e.queue, &event{at: t, id: e.nextID, fn: fn})
	e.nextID++
}

// Run processes events in time order until the clock reaches the given
// horizon. Events scheduled exactly at the horizon are executed. The clock
// finishes at the horizon even if the queue drains early.
func (e *Engine) Run(until time.Duration) {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.at
		next.fn()
	}
	if until > e.now {
		e.now = until
	}
}

// RunUntilIdle processes every pending event regardless of time. Useful for
// draining in-flight packets after the measurement window.
func (e *Engine) RunUntilIdle() {
	for len(e.queue) > 0 {
		next := heap.Pop(&e.queue).(*event)
		e.now = next.at
		next.fn()
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

type event struct {
	at time.Duration
	id uint64 // tiebreaker: preserve scheduling order at equal times
	fn func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].id < q[j].id
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
