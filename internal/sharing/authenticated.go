package sharing

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
)

// Authenticated wraps another scheme and appends an HMAC-SHA256 tag to
// every share, keyed by a pre-shared session key. Combine verifies each
// share's tag before reconstruction, so a corrupted or forged share is
// identified and rejected instead of silently producing garbage — plain
// threshold schemes reconstruct *some* polynomial from any k points.
//
// This addresses the active-adversary gap the paper leaves to the PSMT
// literature: confidentiality is information-theoretic from the threshold
// scheme; integrity here is computational (HMAC).
//
// The tag covers the share index and payload. Shares are tagLen bytes
// longer than the inner scheme's.
type Authenticated struct {
	inner Scheme
	key   []byte
}

// tagLen is the truncated HMAC-SHA256 tag length appended to each share.
// 16 bytes keeps per-share overhead low at a 128-bit forgery bound.
const tagLen = 16

// ErrShareForged marks shares whose authentication tag does not verify.
var ErrShareForged = errors.New("sharing: share authentication failed")

// NewAuthenticated wraps inner with per-share authentication under key.
// The key must be non-empty and shared by sender and receiver.
func NewAuthenticated(inner Scheme, key []byte) (*Authenticated, error) {
	if inner == nil {
		return nil, errors.New("sharing: nil inner scheme")
	}
	if len(key) == 0 {
		return nil, errors.New("sharing: empty authentication key")
	}
	k := make([]byte, len(key))
	copy(k, key)
	return &Authenticated{inner: inner, key: k}, nil
}

// Name implements Scheme.
func (a *Authenticated) Name() string {
	return "authenticated-" + a.inner.Name()
}

func (a *Authenticated) tag(index int, data []byte) []byte {
	mac := hmac.New(sha256.New, a.key)
	var idx [4]byte
	idx[0] = byte(index >> 24)
	idx[1] = byte(index >> 16)
	idx[2] = byte(index >> 8)
	idx[3] = byte(index)
	mac.Write(idx[:])
	mac.Write(data)
	return mac.Sum(nil)[:tagLen]
}

// Split implements Scheme: inner split, then tag each share.
//
//remicss:secret secret
func (a *Authenticated) Split(secret []byte, k, m int) ([]Share, error) {
	shares, err := a.inner.Split(secret, k, m)
	if err != nil {
		return nil, err
	}
	for i := range shares {
		shares[i].Data = append(shares[i].Data, a.tag(shares[i].Index, shares[i].Data)...)
	}
	return shares, nil
}

// Combine implements Scheme: verify and strip each tag, then reconstruct
// with the inner scheme. The first share failing verification aborts with
// ErrShareForged identifying its index.
func (a *Authenticated) Combine(shares []Share, k, m int) ([]byte, error) {
	stripped := make([]Share, len(shares))
	for i, s := range shares {
		if len(s.Data) < tagLen+1 {
			return nil, fmt.Errorf("%w: share %d too short", ErrShareForged, s.Index)
		}
		data := s.Data[:len(s.Data)-tagLen]
		tag := s.Data[len(s.Data)-tagLen:]
		if !hmac.Equal(tag, a.tag(s.Index, data)) {
			return nil, fmt.Errorf("%w: index %d", ErrShareForged, s.Index)
		}
		stripped[i] = Share{Index: s.Index, Data: data}
	}
	return a.inner.Combine(stripped, k, m)
}

// CombineDiscarding is like Combine but tolerates forged shares when more
// than k shares are supplied: it drops shares that fail verification and
// reconstructs from the first k that verify. It returns the indices of the
// discarded shares alongside the secret.
func (a *Authenticated) CombineDiscarding(shares []Share, k, m int) ([]byte, []int, error) {
	var good []Share
	var bad []int
	for _, s := range shares {
		if len(s.Data) < tagLen+1 {
			bad = append(bad, s.Index)
			continue
		}
		data := s.Data[:len(s.Data)-tagLen]
		tag := s.Data[len(s.Data)-tagLen:]
		if !hmac.Equal(tag, a.tag(s.Index, data)) {
			bad = append(bad, s.Index)
			continue
		}
		good = append(good, Share{Index: s.Index, Data: data})
	}
	if len(good) < k {
		return nil, bad, fmt.Errorf("%w: only %d of %d shares verified", ErrShareForged, len(good), k)
	}
	secret, err := a.inner.Combine(good[:k], k, m)
	if err != nil {
		return nil, bad, err
	}
	return secret, bad, nil
}
