package sharing

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func newAuth(t *testing.T) *Authenticated {
	t.Helper()
	a, err := NewAuthenticated(NewAuto(rand.New(rand.NewSource(1))), []byte("session key"))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAuthenticatedRoundtrip(t *testing.T) {
	a := newAuth(t)
	secret := []byte("integrity matters")
	for m := 1; m <= 5; m++ {
		for k := 1; k <= m; k++ {
			shares, err := a.Split(secret, k, m)
			if err != nil {
				t.Fatalf("Split(k=%d, m=%d): %v", k, m, err)
			}
			got, err := a.Combine(shares[:k], k, m)
			if err != nil {
				t.Fatalf("Combine(k=%d, m=%d): %v", k, m, err)
			}
			if !bytes.Equal(got, secret) {
				t.Errorf("k=%d m=%d: got %q", k, m, got)
			}
		}
	}
}

func TestAuthenticatedDetectsTampering(t *testing.T) {
	a := newAuth(t)
	shares, err := a.Split([]byte("tamper me"), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mod  func([]Share)
	}{
		{"payload bit flip", func(s []Share) { s[0].Data[0] ^= 1 }},
		{"tag bit flip", func(s []Share) { s[0].Data[len(s[0].Data)-1] ^= 1 }},
		{"index swap", func(s []Share) { s[0].Index, s[1].Index = s[1].Index, s[0].Index }},
		{"truncated", func(s []Share) { s[0].Data = s[0].Data[:3] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tampered := make([]Share, 2)
			for i := range tampered {
				tampered[i] = Share{Index: shares[i].Index, Data: append([]byte(nil), shares[i].Data...)}
			}
			tc.mod(tampered)
			if _, err := a.Combine(tampered, 2, 3); !errors.Is(err, ErrShareForged) {
				t.Errorf("got %v, want ErrShareForged", err)
			}
		})
	}
}

func TestAuthenticatedWrongKey(t *testing.T) {
	a := newAuth(t)
	b, err := NewAuthenticated(NewAuto(rand.New(rand.NewSource(2))), []byte("different key"))
	if err != nil {
		t.Fatal(err)
	}
	shares, err := a.Split([]byte("keyed"), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Combine(shares[:2], 2, 3); !errors.Is(err, ErrShareForged) {
		t.Errorf("got %v, want ErrShareForged", err)
	}
}

func TestCombineDiscardingDropsForgeries(t *testing.T) {
	a := newAuth(t)
	secret := []byte("resilient")
	shares, err := a.Split(secret, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt shares 1 and 3; shares 0 and 2 suffice.
	shares[1].Data[0] ^= 0xFF
	shares[3].Data[2] ^= 0xFF
	got, bad, err := a.CombineDiscarding(shares, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Errorf("got %q", got)
	}
	if len(bad) != 2 || bad[0] != shares[1].Index || bad[1] != shares[3].Index {
		t.Errorf("discarded = %v", bad)
	}
}

func TestCombineDiscardingTooFewSurvivors(t *testing.T) {
	a := newAuth(t)
	shares, err := a.Split([]byte("x"), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	shares[0].Data[0] ^= 1
	shares[1].Data[0] ^= 1
	if _, _, err := a.CombineDiscarding(shares, 3, 4); !errors.Is(err, ErrShareForged) {
		t.Errorf("got %v, want ErrShareForged", err)
	}
}

func TestAuthenticatedValidation(t *testing.T) {
	if _, err := NewAuthenticated(nil, []byte("k")); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewAuthenticated(NewAuto(nil), nil); err == nil {
		t.Error("empty key accepted")
	}
}

func TestAuthenticatedName(t *testing.T) {
	a := newAuth(t)
	if got := a.Name(); got != "authenticated-auto" {
		t.Errorf("Name = %q", got)
	}
}

func TestAuthenticatedOverheadIsTagLen(t *testing.T) {
	a := newAuth(t)
	plain := NewAuto(rand.New(rand.NewSource(3)))
	secret := bytes.Repeat([]byte{1}, 100)
	as, err := a.Split(secret, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := plain.Split(secret, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(as[0].Data) - len(ps[0].Data); got != tagLen {
		t.Errorf("overhead = %d, want %d", got, tagLen)
	}
}

func BenchmarkAuthenticatedSplit(b *testing.B) {
	a, err := NewAuthenticated(NewAuto(rand.New(rand.NewSource(1))), []byte("key"))
	if err != nil {
		b.Fatal(err)
	}
	secret := bytes.Repeat([]byte{0x42}, 1400)
	b.SetBytes(int64(len(secret)))
	for i := 0; i < b.N; i++ {
		if _, err := a.Split(secret, 3, 5); err != nil {
			b.Fatal(err)
		}
	}
}
