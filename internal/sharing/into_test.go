package sharing

import (
	"bytes"
	"math/rand"
	"testing"
)

// intoSchemes builds one deterministic instance of every scheme for the
// given parameters, keyed by name.
func intoSchemes(t testing.TB) map[string]IntoScheme {
	t.Helper()
	auth, err := NewAuthenticated(NewShamir(rand.New(rand.NewSource(3))), []byte("test key"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]IntoScheme{
		"shamir":        NewShamir(rand.New(rand.NewSource(1))),
		"xor":           NewXOR(rand.New(rand.NewSource(2))),
		"replication":   Replication{},
		"blakley":       NewBlakley(rand.New(rand.NewSource(4))),
		"authenticated": auth,
		"auto":          NewAuto(rand.New(rand.NewSource(5))),
	}
}

// paramsFor returns a valid (k, m) for each scheme name.
func paramsFor(name string) (k, m int) {
	switch name {
	case "xor":
		return 4, 4
	case "replication":
		return 1, 3
	default:
		return 3, 5
	}
}

// TestSplitIntoRoundTrip checks split → combine through the into path for
// every scheme, reusing buffers across iterations.
func TestSplitIntoRoundTrip(t *testing.T) {
	for name, s := range intoSchemes(t) {
		t.Run(name, func(t *testing.T) {
			k, m := paramsFor(name)
			var shares []Share
			var dst []byte
			for round := 0; round < 3; round++ {
				secret := bytes.Repeat([]byte{byte(round + 1)}, 64+round*13)
				var err error
				shares, err = s.SplitSharesInto(secret, k, m, shares)
				if err != nil {
					t.Fatal(err)
				}
				if len(shares) != m {
					t.Fatalf("got %d shares, want %d", len(shares), m)
				}
				for i, sh := range shares {
					if sh.Index != i {
						t.Fatalf("share %d has index %d", i, sh.Index)
					}
				}
				dst, err = s.CombineInto(dst, shares[m-k:], k, m)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(dst, secret) {
					t.Fatalf("round %d: reconstruction mismatch", round)
				}
			}
		})
	}
}

// TestSplitIntoMatchesSplit checks the into path and the allocating path
// produce identical shares from identical randomness.
func TestSplitIntoMatchesSplit(t *testing.T) {
	for _, name := range []string{"shamir", "xor", "replication", "auto"} {
		t.Run(name, func(t *testing.T) {
			k, m := paramsFor(name)
			secret := []byte("identical across both paths")
			a := intoSchemes(t)[name]
			b := intoSchemes(t)[name]
			split, err := a.Split(secret, k, m)
			if err != nil {
				t.Fatal(err)
			}
			into, err := b.SplitSharesInto(secret, k, m, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := range split {
				if split[i].Index != into[i].Index || !bytes.Equal(split[i].Data, into[i].Data) {
					t.Fatalf("share %d differs between Split and SplitSharesInto", i)
				}
			}
		})
	}
}

// TestCombineIntoValidation pins duplicate/short/mismatched share rejection
// on the into path.
func TestCombineIntoValidation(t *testing.T) {
	x := NewXOR(rand.New(rand.NewSource(9)))
	secret := []byte("validate me")
	shares, err := x.SplitSharesInto(secret, 3, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.CombineInto(nil, shares[:2], 3, 3); err == nil {
		t.Error("too few shares accepted")
	}
	dup := []Share{shares[0], shares[0], shares[1]}
	if _, err := x.CombineInto(nil, dup, 3, 3); err == nil {
		t.Error("duplicate index accepted")
	}
	bad := []Share{shares[0], shares[1], {Index: 2, Data: []byte{1}}}
	if _, err := x.CombineInto(nil, bad, 3, 3); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestCombineIntoDetectsForgery checks tag verification on the
// authenticated into path.
func TestCombineIntoDetectsForgery(t *testing.T) {
	auth, err := NewAuthenticated(NewXOR(rand.New(rand.NewSource(6))), []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("authenticated into path")
	shares, err := auth.SplitSharesInto(secret, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	shares[1].Data[0] ^= 0xff
	if _, err := auth.CombineInto(nil, shares, 2, 2); err == nil {
		t.Error("forged share accepted")
	}
}

// TestIntoFallback checks the package-level helpers fall back to the
// allocating methods for schemes outside this package.
func TestIntoFallback(t *testing.T) {
	s := opaqueScheme{inner: NewXOR(rand.New(rand.NewSource(7)))}
	secret := []byte("fallback")
	shares, err := SplitInto(s, secret, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CombineInto(s, nil, shares, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Error("fallback roundtrip failed")
	}
}

// opaqueScheme hides the into methods to exercise the fallback branch.
type opaqueScheme struct{ inner *XOR }

// Name implements Scheme.
func (o opaqueScheme) Name() string { return "opaque" }

// Split implements Scheme.
func (o opaqueScheme) Split(secret []byte, k, m int) ([]Share, error) {
	return o.inner.Split(secret, k, m)
}

// Combine implements Scheme.
func (o opaqueScheme) Combine(shares []Share, k, m int) ([]byte, error) {
	return o.inner.Combine(shares, k, m)
}

// TestSteadyStateAllocs pins the zero-allocation steady state for the
// replication and XOR fast paths and the O(1) Shamir budget.
func TestSteadyStateAllocs(t *testing.T) {
	secret := bytes.Repeat([]byte{0x7e}, 1400)
	cases := []struct {
		name     string
		scheme   IntoScheme
		k, m     int
		maxSplit float64
	}{
		{"replication", NewAuto(rand.New(rand.NewSource(1))), 1, 3, 0},
		{"xor", NewAuto(rand.New(rand.NewSource(2))), 3, 3, 0},
		{"shamir", NewAuto(rand.New(rand.NewSource(3))), 3, 5, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			shares, err := tc.scheme.SplitSharesInto(secret, tc.k, tc.m, nil)
			if err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(100, func() {
				var err error
				shares, err = tc.scheme.SplitSharesInto(secret, tc.k, tc.m, shares)
				if err != nil {
					t.Fatal(err)
				}
			})
			if allocs > tc.maxSplit {
				t.Errorf("split allocates %v times per op, want <= %v", allocs, tc.maxSplit)
			}
			dst := make([]byte, len(secret))
			allocs = testing.AllocsPerRun(100, func() {
				var err error
				dst, err = tc.scheme.CombineInto(dst, shares[:tc.k], tc.k, tc.m)
				if err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("combine allocates %v times per op, want 0", allocs)
			}
		})
	}
}

func BenchmarkSplitSharesInto(b *testing.B) {
	secret := bytes.Repeat([]byte{0x7e}, 1400)
	for _, tc := range []struct {
		name string
		k, m int
	}{
		{"replication-1of5", 1, 5},
		{"xor-5of5", 5, 5},
		{"shamir-3of5", 3, 5},
	} {
		b.Run(tc.name, func(b *testing.B) {
			scheme := NewAuto(rand.New(rand.NewSource(1)))
			shares, err := scheme.SplitSharesInto(secret, tc.k, tc.m, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(secret)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if shares, err = scheme.SplitSharesInto(secret, tc.k, tc.m, shares); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
