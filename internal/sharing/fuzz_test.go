package sharing

import (
	"bytes"
	"math/rand"
	"testing"

	"remicss/internal/drbg"
)

// FuzzSplitCombine drives every scheme in the package through
// split → shuffle → combine on fuzzed secrets and parameters, with all
// randomness drawn from a deterministic DRBG derived from the fuzz input —
// a failing case replays exactly, coefficients and pads included. Each
// scheme must reconstruct the secret from an arbitrary k-subset of its
// shares, through both the allocating and the into paths.
func FuzzSplitCombine(f *testing.F) {
	f.Add([]byte("secret"), uint8(2), uint8(5), int64(1))
	f.Add([]byte{0}, uint8(1), uint8(1), int64(2))
	f.Add([]byte{0xff, 0x00, 0x1b}, uint8(8), uint8(8), int64(3))
	f.Add(bytes.Repeat([]byte{0xA5}, 500), uint8(3), uint8(3), int64(4))
	f.Fuzz(func(t *testing.T, secret []byte, kSeed, mSeed uint8, seed int64) {
		if len(secret) == 0 || len(secret) > 1<<10 {
			return
		}
		m := int(mSeed)%8 + 1
		k := int(kSeed)%m + 1
		rng := rand.New(rand.NewSource(seed))

		newReader := func(label string) *drbg.DRBG {
			return drbg.NewDeterministic(append([]byte(label), byte(seed), kSeed, mSeed))
		}
		authed, err := NewAuthenticated(NewAuto(newReader("auth")), []byte("fuzz key"))
		if err != nil {
			t.Fatal(err)
		}
		schemes := []Scheme{
			NewShamir(newReader("shamir")),
			NewXOR(newReader("xor")),
			Replication{},
			NewBlakley(newReader("blakley")),
			authed,
			NewAuto(newReader("auto")),
		}
		for _, s := range schemes {
			supported := true
			switch s.(type) {
			case *XOR:
				supported = k == m
			case Replication:
				supported = k == 1
			}
			shares, err := s.Split(secret, k, m)
			if !supported {
				if err == nil {
					t.Fatalf("%s accepted unsupported (k=%d, m=%d)", s.Name(), k, m)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s split (k=%d, m=%d): %v", s.Name(), k, m, err)
			}
			if len(shares) != m {
				t.Fatalf("%s produced %d shares, want %d", s.Name(), len(shares), m)
			}

			// Reconstruction must not depend on share order or on which
			// k-subset survives the channels.
			shuffled := append([]Share(nil), shares...)
			rng.Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			got, err := s.Combine(shuffled[:k], k, m)
			if err != nil {
				t.Fatalf("%s combine (k=%d, m=%d): %v", s.Name(), k, m, err)
			}
			if !bytes.Equal(got, secret) {
				t.Fatalf("%s roundtrip mismatch (k=%d, m=%d)", s.Name(), k, m)
			}

			// The into path on recycled buffers must agree byte for byte.
			intoShares, err := SplitInto(s, secret, k, m, make([]Share, 0, m))
			if err != nil {
				t.Fatalf("%s split-into: %v", s.Name(), err)
			}
			rng.Shuffle(len(intoShares), func(i, j int) {
				intoShares[i], intoShares[j] = intoShares[j], intoShares[i]
			})
			gotInto, err := CombineInto(s, make([]byte, 0, len(secret)), intoShares[:k], k, m)
			if err != nil {
				t.Fatalf("%s combine-into: %v", s.Name(), err)
			}
			if !bytes.Equal(gotInto, secret) {
				t.Fatalf("%s into-path roundtrip mismatch (k=%d, m=%d)", s.Name(), k, m)
			}
		}
	})
}
