package sharing

import (
	"bytes"
	"crypto/hmac"
	"fmt"
	"io"

	"remicss/internal/drbg"
	"remicss/internal/gf256"
	"remicss/internal/shamir"
)

// IntoScheme is the allocation-aware extension of Scheme: the same
// operations writing into caller-provided storage so a steady-state sender
// or receiver can cycle one set of buffers instead of allocating per symbol.
// Every scheme in this package implements it; SplitInto and CombineInto
// (package-level) adapt any remaining Scheme by falling back to the
// allocating methods.
type IntoScheme interface {
	Scheme
	// SplitSharesInto splits secret into m shares with threshold k, resizing
	// shares to length m and reusing each element's Data capacity. The
	// returned slice must be used in place of the input (append semantics).
	SplitSharesInto(secret []byte, k, m int, shares []Share) ([]Share, error)
	// CombineInto reconstructs the secret into dst (resized, capacity
	// reused) and returns it. Passing nil dst allocates the result.
	CombineInto(dst []byte, shares []Share, k, m int) ([]byte, error)
}

// Every scheme in this package supports the into path.
var (
	_ IntoScheme = (*Shamir)(nil)
	_ IntoScheme = (*XOR)(nil)
	_ IntoScheme = Replication{}
	_ IntoScheme = (*Blakley)(nil)
	_ IntoScheme = (*Authenticated)(nil)
	_ IntoScheme = (*Auto)(nil)
)

// SplitInto dispatches to s's SplitSharesInto when implemented and falls
// back to Split otherwise, so callers can target the into API uniformly.
//
//remicss:noalloc
//remicss:secret secret
func SplitInto(s Scheme, secret []byte, k, m int, shares []Share) ([]Share, error) {
	if is, ok := s.(IntoScheme); ok {
		return is.SplitSharesInto(secret, k, m, shares)
	}
	return s.Split(secret, k, m)
}

// CombineInto dispatches to s's CombineInto when implemented and falls back
// to Combine otherwise.
//
//remicss:noalloc
func CombineInto(s Scheme, dst []byte, shares []Share, k, m int) ([]byte, error) {
	if is, ok := s.(IntoScheme); ok {
		return is.CombineInto(dst, shares, k, m)
	}
	return s.Combine(shares, k, m)
}

// growShares resizes s to length n, reusing the backing array (and the Data
// buffers of surviving elements) when capacity allows.
func growShares(s []Share, n int) []Share {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([]Share, n)
	copy(out, s[:cap(s)])
	return out
}

// growBytes resizes b to length n, reusing its backing array when capacity
// allows.
func growBytes(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]byte, n)
}

// checkShares validates count, index uniqueness, and length agreement
// without allocating (indexes outside [0, 255] — impossible for shares that
// traveled the wire, whose index field is a byte — fall back to a scan).
func checkShares(shares []Share, k int) error {
	if len(shares) < k {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewShares, len(shares), k)
	}
	var seen [256]bool
	for i, s := range shares {
		if s.Index < 0 || s.Index > 255 {
			for j := 0; j < i; j++ {
				if shares[j].Index == s.Index {
					return fmt.Errorf("%w: index %d", ErrDuplicateIndex, s.Index)
				}
			}
		} else {
			if seen[s.Index] {
				return fmt.Errorf("%w: index %d", ErrDuplicateIndex, s.Index)
			}
			seen[s.Index] = true
		}
		if len(s.Data) != len(shares[0].Data) {
			return ErrShareMismatch
		}
	}
	return nil
}

// SplitSharesInto implements IntoScheme: the shares carry the shamir wire
// form (x-coordinate byte followed by the y bytes) built block-wise in the
// reused Data buffers. Steady-state cost is the inner splitter's single
// random-block allocation plus one small header slice.
//
//remicss:noalloc
func (s *Shamir) SplitSharesInto(secret []byte, k, m int, shares []Share) ([]Share, error) {
	if err := validate(secret, k, m); err != nil {
		return nil, err
	}
	sp := s.splitter
	if sp == nil {
		sp = shamir.NewSplitter(nil)
	}
	shares = growShares(shares, m)
	raw := make([]shamir.Share, m) //lint:allow noalloc small header slice per split; documented steady-state cost
	for i := range shares {
		shares[i].Index = i
		shares[i].Data = growBytes(shares[i].Data, 1+len(secret))
		// The shamir layer writes y bytes directly into the wire buffer.
		raw[i].Y = shares[i].Data[1:]
	}
	raw, err := sp.SplitInto(secret, k, m, raw)
	if err != nil {
		return nil, fmt.Errorf("sharing: %w", err)
	}
	for i := range shares {
		shares[i].Data[0] = raw[i].X
	}
	return shares, nil
}

// CombineInto implements IntoScheme. Unlike the allocating Combine, shares
// are consumed in wire form without copying their y bytes.
//
//remicss:noalloc
func (s *Shamir) CombineInto(dst []byte, shares []Share, k, m int) ([]byte, error) {
	if err := checkShares(shares, k); err != nil {
		return nil, err
	}
	var raw [shamir.MaxShares]shamir.Share
	if k > len(raw) {
		return nil, fmt.Errorf("%w: k=%d", ErrInvalidParams, k)
	}
	for i, sh := range shares[:k] {
		if len(sh.Data) < 2 {
			return nil, fmt.Errorf("sharing: %w", shamir.ErrMalformedShare)
		}
		raw[i] = shamir.Share{X: sh.Data[0], Y: sh.Data[1:]}
	}
	out, err := shamir.CombineInto(dst, raw[:k])
	if err != nil {
		return nil, fmt.Errorf("sharing: %w", err)
	}
	return out, nil
}

// SplitSharesInto implements IntoScheme: pads are drawn directly into the
// reused share buffers and folded into the final share with the XOR kernel,
// so the steady state allocates nothing.
//
//remicss:noalloc
func (x *XOR) SplitSharesInto(secret []byte, k, m int, shares []Share) ([]Share, error) {
	if err := validate(secret, k, m); err != nil {
		return nil, err
	}
	if k != m {
		return nil, fmt.Errorf("%w: xor requires k == m (got k=%d, m=%d)", ErrUnsupported, k, m)
	}
	r := x.rand
	if r == nil {
		r = drbg.Shared
	}
	shares = growShares(shares, m)
	for i := range shares {
		shares[i].Index = i
		shares[i].Data = growBytes(shares[i].Data, len(secret))
	}
	last := shares[m-1].Data
	copy(last, secret)
	for i := 0; i < m-1; i++ {
		pad := shares[i].Data
		if _, err := io.ReadFull(r, pad); err != nil {
			return nil, fmt.Errorf("sharing: reading pad: %w", err)
		}
		gf256.AddSlice(last, pad)
	}
	return shares, nil
}

// CombineInto implements IntoScheme.
//
//remicss:noalloc
func (x *XOR) CombineInto(dst []byte, shares []Share, k, m int) ([]byte, error) {
	if k != m {
		return nil, fmt.Errorf("%w: xor requires k == m (got k=%d, m=%d)", ErrUnsupported, k, m)
	}
	if err := checkShares(shares, k); err != nil {
		return nil, err
	}
	dst = growBytes(dst, len(shares[0].Data))
	copy(dst, shares[0].Data)
	for _, s := range shares[1:] {
		gf256.AddSlice(dst, s.Data)
	}
	return dst, nil
}

// SplitSharesInto implements IntoScheme: copies into reused buffers, the
// zero-allocation steady state of the k=1 fast path.
//
//remicss:noalloc
func (Replication) SplitSharesInto(secret []byte, k, m int, shares []Share) ([]Share, error) {
	if err := validate(secret, k, m); err != nil {
		return nil, err
	}
	if k != 1 {
		return nil, fmt.Errorf("%w: replication requires k == 1 (got k=%d)", ErrUnsupported, k)
	}
	shares = growShares(shares, m)
	for i := range shares {
		shares[i].Index = i
		shares[i].Data = growBytes(shares[i].Data, len(secret))
		copy(shares[i].Data, secret)
	}
	return shares, nil
}

// CombineInto implements IntoScheme.
//
//remicss:noalloc
func (r Replication) CombineInto(dst []byte, shares []Share, k, m int) ([]byte, error) {
	if k != 1 {
		return nil, fmt.Errorf("%w: replication requires k == 1 (got k=%d)", ErrUnsupported, k)
	}
	if err := checkShares(shares, 1); err != nil {
		return nil, err
	}
	for _, s := range shares[1:] {
		if !bytes.Equal(s.Data, shares[0].Data) {
			return nil, fmt.Errorf("sharing: replicas disagree")
		}
	}
	dst = growBytes(dst, len(shares[0].Data))
	copy(dst, shares[0].Data)
	return dst, nil
}

// SplitSharesInto implements IntoScheme by reusing the share Data buffers
// around the inner hyperplane splitter, which still allocates internally
// (Blakley redraws and verifies coefficient sets; it is not a hot-path
// scheme).
func (b *Blakley) SplitSharesInto(secret []byte, k, m int, shares []Share) ([]Share, error) {
	raw, err := b.Split(secret, k, m)
	if err != nil {
		return nil, err
	}
	shares = growShares(shares, m)
	for i := range shares {
		shares[i].Index = i
		shares[i].Data = append(shares[i].Data[:0], raw[i].Data...)
	}
	return shares, nil
}

// CombineInto implements IntoScheme; reconstruction goes through the
// allocating inner Combine and lands in dst.
func (b *Blakley) CombineInto(dst []byte, shares []Share, k, m int) ([]byte, error) {
	secret, err := b.Combine(shares, k, m)
	if err != nil {
		return nil, err
	}
	return append(growBytes(dst, 0), secret...), nil
}

// SplitSharesInto implements IntoScheme: the inner scheme splits into the
// reused buffers and each tag is appended in place. HMAC computation itself
// allocates (hash state); authentication is priced separately from the
// zero-allocation plain schemes.
func (a *Authenticated) SplitSharesInto(secret []byte, k, m int, shares []Share) ([]Share, error) {
	shares, err := SplitInto(a.inner, secret, k, m, shares)
	if err != nil {
		return nil, err
	}
	for i := range shares {
		shares[i].Data = append(shares[i].Data, a.tag(shares[i].Index, shares[i].Data)...)
	}
	return shares, nil
}

// CombineInto implements IntoScheme: verify and strip tags without copying
// share bodies, then reconstruct with the inner scheme's into path.
func (a *Authenticated) CombineInto(dst []byte, shares []Share, k, m int) ([]byte, error) {
	var stripped [shamir.MaxShares]Share
	if len(shares) > len(stripped) {
		return nil, fmt.Errorf("%w: %d shares", ErrInvalidParams, len(shares))
	}
	for i, s := range shares {
		if len(s.Data) < tagLen+1 {
			return nil, fmt.Errorf("%w: share %d too short", ErrShareForged, s.Index)
		}
		data := s.Data[:len(s.Data)-tagLen]
		tag := s.Data[len(s.Data)-tagLen:]
		if !hmac.Equal(tag, a.tag(s.Index, data)) {
			return nil, fmt.Errorf("%w: index %d", ErrShareForged, s.Index)
		}
		stripped[i] = Share{Index: s.Index, Data: data}
	}
	return CombineInto(a.inner, dst, stripped[:len(shares)], k, m)
}

// SplitSharesInto implements IntoScheme by dispatching like Split.
func (a *Auto) SplitSharesInto(secret []byte, k, m int, shares []Share) ([]Share, error) {
	if err := validate(secret, k, m); err != nil {
		return nil, err
	}
	return SplitInto(a.pick(k, m), secret, k, m, shares)
}

// CombineInto implements IntoScheme by dispatching like Combine.
func (a *Auto) CombineInto(dst []byte, shares []Share, k, m int) ([]byte, error) {
	if k < 1 || m < k {
		return nil, fmt.Errorf("%w: k=%d, m=%d", ErrInvalidParams, k, m)
	}
	return CombineInto(a.pick(k, m), dst, shares, k, m)
}
