package sharing

import (
	"fmt"
	"io"

	"remicss/internal/blakley"
)

// Blakley adapts Blakley's hyperplane threshold scheme to the Scheme
// interface. It is interchangeable with Shamir in the protocol; its shares
// are k bytes longer (each carries its hyperplane's coefficient vector),
// which the scheme-comparison benchmarks quantify.
type Blakley struct {
	splitter *blakley.Splitter
}

// NewBlakley returns a Blakley scheme drawing randomness from r (nil means
// the shared DRBG pool, drbg.Shared).
func NewBlakley(r io.Reader) *Blakley {
	return &Blakley{splitter: blakley.NewSplitter(r)}
}

// Name implements Scheme.
func (b *Blakley) Name() string { return "blakley" }

// Split implements Scheme.
//
//remicss:secret secret
func (b *Blakley) Split(secret []byte, k, m int) ([]Share, error) {
	if err := validate(secret, k, m); err != nil {
		return nil, err
	}
	sp := b.splitter
	if sp == nil {
		sp = blakley.NewSplitter(nil)
	}
	raw, err := sp.Split(secret, k, m)
	if err != nil {
		return nil, fmt.Errorf("sharing: %w", err)
	}
	shares := make([]Share, m)
	for i, r := range raw {
		shares[i] = Share{Index: i, Data: r.Bytes()}
	}
	return shares, nil
}

// Combine implements Scheme.
func (b *Blakley) Combine(shares []Share, k, m int) ([]byte, error) {
	shares, err := validateShares(shares, k)
	if err != nil {
		return nil, err
	}
	raw := make([]blakley.Share, 0, k)
	for _, sh := range shares[:k] {
		p, err := blakley.ParseShare(sh.Data, k)
		if err != nil {
			return nil, fmt.Errorf("sharing: %w", err)
		}
		raw = append(raw, p)
	}
	secret, err := blakley.Combine(raw, k)
	if err != nil {
		return nil, fmt.Errorf("sharing: %w", err)
	}
	return secret, nil
}
