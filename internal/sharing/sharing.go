// Package sharing abstracts over secret sharing schemes used by the
// multichannel protocol.
//
// The protocol model (internal/core) is scheme-agnostic: it only assumes a
// (k, m) threshold scheme in which each share carries as much information as
// the secret (H(Y) = H(X), the optimal case discussed in Section III-C of
// the paper). Three implementations are provided:
//
//   - Shamir: general k-of-m threshold sharing (internal/shamir).
//   - XOR: the "perfect" m-of-m scheme used by MICSS — m-1 random pads and
//     one pad-XOR-secret share. Only valid for k == m.
//   - Replication: the degenerate k=1 scheme — every share is a copy.
//
// Auto selects the cheapest correct scheme per (k, m): Replication at k=1,
// XOR at k=m, Shamir otherwise. The ablation benchmark in the repository
// root quantifies the cost of running Shamir everywhere instead.
package sharing

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"remicss/internal/drbg"
	"remicss/internal/shamir"
)

// Errors shared by scheme implementations.
var (
	ErrInvalidParams  = errors.New("sharing: invalid parameters")
	ErrEmptySecret    = errors.New("sharing: empty secret")
	ErrTooFewShares   = errors.New("sharing: not enough shares")
	ErrShareMismatch  = errors.New("sharing: inconsistent share lengths")
	ErrDuplicateIndex = errors.New("sharing: duplicate share index")
	ErrUnsupported    = errors.New("sharing: parameters unsupported by scheme")
)

// Share is one share of a secret, tagged with its index within the split
// (0-based, unique per split).
type Share struct {
	Index int
	Data  []byte //remicss:secret
}

// Scheme is a (k, m) threshold secret sharing scheme. Split produces m
// shares of which any k reconstruct the secret via Combine with the same k.
type Scheme interface {
	// Name identifies the scheme for logs and benchmarks.
	Name() string
	// Split shares secret into m shares with threshold k.
	Split(secret []byte, k, m int) ([]Share, error)
	// Combine reconstructs a secret from at least k shares produced by a
	// Split with threshold k and multiplicity m.
	Combine(shares []Share, k, m int) ([]byte, error)
}

func validate(secret []byte, k, m int) error {
	if k < 1 || m < k {
		return fmt.Errorf("%w: k=%d, m=%d", ErrInvalidParams, k, m)
	}
	if len(secret) == 0 {
		return ErrEmptySecret
	}
	return nil
}

func validateShares(shares []Share, k int) ([]Share, error) {
	if len(shares) < k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewShares, len(shares), k)
	}
	seen := make(map[int]bool, len(shares))
	out := shares[:0:0]
	for _, s := range shares {
		if seen[s.Index] {
			return nil, fmt.Errorf("%w: index %d", ErrDuplicateIndex, s.Index)
		}
		seen[s.Index] = true
		if len(s.Data) != len(shares[0].Data) {
			return nil, ErrShareMismatch
		}
		out = append(out, s)
	}
	return out, nil
}

// Shamir adapts internal/shamir to the Scheme interface. The zero value uses
// the shared DRBG pool; NewShamir allows injecting a deterministic source.
type Shamir struct {
	splitter *shamir.Splitter
}

// NewShamir returns a Shamir scheme drawing randomness from r (nil means
// the shared DRBG pool, drbg.Shared).
func NewShamir(r io.Reader) *Shamir {
	return &Shamir{splitter: shamir.NewSplitter(r)}
}

// Name implements Scheme.
func (s *Shamir) Name() string { return "shamir" }

// Split implements Scheme.
//
//remicss:secret secret
func (s *Shamir) Split(secret []byte, k, m int) ([]Share, error) {
	if err := validate(secret, k, m); err != nil {
		return nil, err
	}
	sp := s.splitter
	if sp == nil {
		sp = shamir.NewSplitter(nil)
	}
	raw, err := sp.Split(secret, k, m)
	if err != nil {
		return nil, fmt.Errorf("sharing: %w", err)
	}
	shares := make([]Share, m)
	for i, r := range raw {
		shares[i] = Share{Index: i, Data: r.Bytes()}
	}
	return shares, nil
}

// Combine implements Scheme.
func (s *Shamir) Combine(shares []Share, k, m int) ([]byte, error) {
	shares, err := validateShares(shares, k)
	if err != nil {
		return nil, err
	}
	raw := make([]shamir.Share, 0, k)
	for _, sh := range shares[:k] {
		p, err := shamir.ParseShare(sh.Data)
		if err != nil {
			return nil, fmt.Errorf("sharing: %w", err)
		}
		raw = append(raw, p)
	}
	secret, err := shamir.Combine(raw)
	if err != nil {
		return nil, fmt.Errorf("sharing: %w", err)
	}
	return secret, nil
}

// XOR is the perfect m-of-m scheme: shares 0..m-2 are uniform random pads
// and share m-1 is the secret XORed with all pads. It only supports k == m,
// the MICSS configuration.
type XOR struct {
	rand io.Reader //remicss:secret
}

// NewXOR returns an XOR scheme drawing pads from r (nil means the shared
// DRBG pool, drbg.Shared).
func NewXOR(r io.Reader) *XOR {
	if r == nil {
		r = drbg.Shared
	}
	return &XOR{rand: r}
}

// Name implements Scheme.
func (x *XOR) Name() string { return "xor" }

// Split implements Scheme.
//
//remicss:secret secret
func (x *XOR) Split(secret []byte, k, m int) ([]Share, error) {
	if err := validate(secret, k, m); err != nil {
		return nil, err
	}
	if k != m {
		return nil, fmt.Errorf("%w: xor requires k == m (got k=%d, m=%d)", ErrUnsupported, k, m)
	}
	r := x.rand
	if r == nil {
		r = drbg.Shared
	}
	shares := make([]Share, m)
	acc := make([]byte, len(secret))
	copy(acc, secret)
	for i := 0; i < m-1; i++ {
		pad := make([]byte, len(secret))
		if _, err := io.ReadFull(r, pad); err != nil {
			return nil, fmt.Errorf("sharing: reading pad: %w", err)
		}
		for j := range acc {
			acc[j] ^= pad[j]
		}
		shares[i] = Share{Index: i, Data: pad}
	}
	shares[m-1] = Share{Index: m - 1, Data: acc}
	return shares, nil
}

// Combine implements Scheme.
func (x *XOR) Combine(shares []Share, k, m int) ([]byte, error) {
	if k != m {
		return nil, fmt.Errorf("%w: xor requires k == m (got k=%d, m=%d)", ErrUnsupported, k, m)
	}
	shares, err := validateShares(shares, k)
	if err != nil {
		return nil, err
	}
	secret := make([]byte, len(shares[0].Data))
	for _, s := range shares {
		for j := range secret {
			secret[j] ^= s.Data[j]
		}
	}
	return secret, nil
}

// Replication is the degenerate k=1 scheme: every share is a copy of the
// secret. It provides no confidentiality and maximal loss resilience; it is
// the correct fast path when the schedule picks k=1.
type Replication struct{}

// Name implements Scheme.
func (Replication) Name() string { return "replication" }

// Split implements Scheme.
//
//remicss:secret secret
func (Replication) Split(secret []byte, k, m int) ([]Share, error) {
	if err := validate(secret, k, m); err != nil {
		return nil, err
	}
	if k != 1 {
		return nil, fmt.Errorf("%w: replication requires k == 1 (got k=%d)", ErrUnsupported, k)
	}
	shares := make([]Share, m)
	for i := range shares {
		data := make([]byte, len(secret))
		copy(data, secret)
		shares[i] = Share{Index: i, Data: data}
	}
	return shares, nil
}

// Combine implements Scheme.
func (Replication) Combine(shares []Share, k, m int) ([]byte, error) {
	if k != 1 {
		return nil, fmt.Errorf("%w: replication requires k == 1 (got k=%d)", ErrUnsupported, k)
	}
	shares, err := validateShares(shares, 1)
	if err != nil {
		return nil, err
	}
	// Sanity: replicas should agree; disagreement means corruption upstream.
	for _, s := range shares[1:] {
		if !bytes.Equal(s.Data, shares[0].Data) {
			return nil, fmt.Errorf("sharing: replicas disagree")
		}
	}
	out := make([]byte, len(shares[0].Data))
	copy(out, shares[0].Data)
	return out, nil
}

// Auto dispatches to the cheapest correct scheme for each (k, m):
// Replication at k=1, XOR at k=m (and k>1), Shamir otherwise.
type Auto struct {
	shamir *Shamir
	xor    *XOR
	repl   Replication
}

// NewAuto returns an Auto scheme drawing randomness from r (nil means
// the shared DRBG pool, drbg.Shared).
func NewAuto(r io.Reader) *Auto {
	return &Auto{shamir: NewShamir(r), xor: NewXOR(r)}
}

// Name implements Scheme.
func (a *Auto) Name() string { return "auto" }

func (a *Auto) pick(k, m int) Scheme {
	switch {
	case k == 1:
		return a.repl
	case k == m:
		return a.xor
	default:
		return a.shamir
	}
}

// Split implements Scheme.
//
//remicss:secret secret
func (a *Auto) Split(secret []byte, k, m int) ([]Share, error) {
	if err := validate(secret, k, m); err != nil {
		return nil, err
	}
	return a.pick(k, m).Split(secret, k, m)
}

// Combine implements Scheme.
func (a *Auto) Combine(shares []Share, k, m int) ([]byte, error) {
	if k < 1 || m < k {
		return nil, fmt.Errorf("%w: k=%d, m=%d", ErrInvalidParams, k, m)
	}
	return a.pick(k, m).Combine(shares, k, m)
}

// ShareOverhead reports the per-share byte overhead a scheme adds on top of
// the secret length for the given parameters. Shamir shares carry one extra
// x-coordinate byte; XOR and replication add nothing.
func ShareOverhead(s Scheme, k, m int) int {
	switch s.(type) {
	case *Shamir:
		return 1
	case *Auto:
		if k > 1 && k < m {
			return 1
		}
		return 0
	default:
		return 0
	}
}
