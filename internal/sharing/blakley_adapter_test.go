package sharing

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestBlakleyAdapterRoundtrip(t *testing.T) {
	b := NewBlakley(rand.New(rand.NewSource(1)))
	secret := []byte("geometry-based sharing")
	for m := 1; m <= 5; m++ {
		for k := 1; k <= m; k++ {
			shares, err := b.Split(secret, k, m)
			if err != nil {
				t.Fatalf("Split(k=%d, m=%d): %v", k, m, err)
			}
			got, err := b.Combine(shares[:k], k, m)
			if err != nil {
				t.Fatalf("Combine(k=%d, m=%d): %v", k, m, err)
			}
			if !bytes.Equal(got, secret) {
				t.Errorf("k=%d m=%d: got %q", k, m, got)
			}
		}
	}
}

func TestBlakleyAdapterAnySubset(t *testing.T) {
	b := NewBlakley(rand.New(rand.NewSource(2)))
	secret := []byte("subset")
	shares, err := b.Split(secret, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Shuffled arbitrary 2-subset.
	got, err := b.Combine([]Share{shares[3], shares[1]}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Errorf("got %q", got)
	}
}

func TestBlakleyAdapterValidation(t *testing.T) {
	b := NewBlakley(nil)
	if _, err := b.Split(nil, 1, 1); err == nil {
		t.Error("empty secret accepted")
	}
	if _, err := b.Combine(nil, 2, 3); err == nil {
		t.Error("no shares accepted")
	}
}

// TestBlakleyWorksInAuthenticatedWrapper composes the two extensions.
func TestBlakleyWorksInAuthenticatedWrapper(t *testing.T) {
	a, err := NewAuthenticated(NewBlakley(rand.New(rand.NewSource(3))), []byte("key"))
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("layered")
	shares, err := a.Split(secret, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Combine(shares[1:], 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Errorf("got %q", got)
	}
	shares[0].Data[0] ^= 1
	if _, err := a.Combine(shares[:2], 2, 3); err == nil {
		t.Error("tampered Blakley share accepted")
	}
}

func BenchmarkBlakleyVsShamirSplit(b *testing.B) {
	secret := bytes.Repeat([]byte{0x11}, 1400)
	for _, scheme := range []Scheme{NewShamir(rand.New(rand.NewSource(1))), NewBlakley(rand.New(rand.NewSource(1)))} {
		b.Run(scheme.Name(), func(b *testing.B) {
			b.SetBytes(int64(len(secret)))
			for i := 0; i < b.N; i++ {
				if _, err := scheme.Split(secret, 3, 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
