package sharing

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func schemes(t *testing.T) map[string]Scheme {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	return map[string]Scheme{
		"shamir": NewShamir(rng),
		"xor":    NewXOR(rng),
		"repl":   Replication{},
		"auto":   NewAuto(rng),
	}
}

// supports reports whether a scheme accepts the (k, m) combination.
func supports(name string, k, m int) bool {
	switch name {
	case "xor":
		return k == m
	case "repl":
		return k == 1
	default:
		return true
	}
}

func TestRoundtripAllSchemes(t *testing.T) {
	secret := []byte("one-time pads are key safeguarding schemes")
	for name, s := range schemes(t) {
		for m := 1; m <= 5; m++ {
			for k := 1; k <= m; k++ {
				if !supports(name, k, m) {
					continue
				}
				shares, err := s.Split(secret, k, m)
				if err != nil {
					t.Fatalf("%s Split(k=%d,m=%d): %v", name, k, m, err)
				}
				if len(shares) != m {
					t.Fatalf("%s: got %d shares, want %d", name, len(shares), m)
				}
				got, err := s.Combine(shares[:k], k, m)
				if err != nil {
					t.Fatalf("%s Combine(k=%d,m=%d): %v", name, k, m, err)
				}
				if !bytes.Equal(got, secret) {
					t.Errorf("%s (k=%d,m=%d): Combine = %q", name, k, m, got)
				}
			}
		}
	}
}

func TestXORRequiresAllShares(t *testing.T) {
	x := NewXOR(rand.New(rand.NewSource(1)))
	shares, err := x.Split([]byte("pad"), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Combine(shares[:2], 3, 3); !errors.Is(err, ErrTooFewShares) {
		t.Errorf("Combine with 2 of 3: got %v, want ErrTooFewShares", err)
	}
}

func TestXORRejectsThresholdBelowM(t *testing.T) {
	x := NewXOR(nil)
	if _, err := x.Split([]byte("s"), 2, 3); !errors.Is(err, ErrUnsupported) {
		t.Errorf("got %v, want ErrUnsupported", err)
	}
	if _, err := x.Combine(nil, 2, 3); !errors.Is(err, ErrUnsupported) {
		t.Errorf("got %v, want ErrUnsupported", err)
	}
}

func TestXORSharesLookRandom(t *testing.T) {
	// The non-final XOR shares are pads; the final share is pad-masked.
	// Verify the final share is not the plaintext for a long secret.
	x := NewXOR(rand.New(rand.NewSource(2)))
	secret := bytes.Repeat([]byte("A"), 1024)
	shares, err := x.Split(secret, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(shares[1].Data, secret) {
		t.Error("masked share equals plaintext")
	}
	if bytes.Equal(shares[0].Data, secret) {
		t.Error("pad share equals plaintext")
	}
}

func TestReplicationRejectsThresholdAboveOne(t *testing.T) {
	r := Replication{}
	if _, err := r.Split([]byte("s"), 2, 3); !errors.Is(err, ErrUnsupported) {
		t.Errorf("got %v, want ErrUnsupported", err)
	}
}

func TestReplicationDetectsDisagreement(t *testing.T) {
	r := Replication{}
	shares, err := r.Split([]byte("abc"), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	shares[1].Data[0] ^= 0xFF
	if _, err := r.Combine(shares, 1, 3); err == nil {
		t.Error("Combine accepted disagreeing replicas")
	}
}

func TestAutoPicksExpectedScheme(t *testing.T) {
	a := NewAuto(rand.New(rand.NewSource(3)))
	cases := []struct {
		k, m int
		want string
	}{
		{1, 1, "replication"},
		{1, 5, "replication"},
		{5, 5, "xor"},
		{2, 2, "xor"},
		{2, 3, "shamir"},
		{3, 5, "shamir"},
	}
	for _, tc := range cases {
		if got := a.pick(tc.k, tc.m).Name(); got != tc.want {
			t.Errorf("pick(%d, %d) = %s, want %s", tc.k, tc.m, got, tc.want)
		}
	}
}

func TestAutoRoundtripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewAuto(rng)
	f := func(secret []byte, kSeed, mSeed uint8) bool {
		if len(secret) == 0 {
			secret = []byte{1}
		}
		m := int(mSeed)%6 + 1
		k := int(kSeed)%m + 1
		shares, err := a.Split(secret, k, m)
		if err != nil {
			return false
		}
		rng.Shuffle(len(shares), func(i, j int) { shares[i], shares[j] = shares[j], shares[i] })
		got, err := a.Combine(shares[:k], k, m)
		if err != nil {
			return false
		}
		return bytes.Equal(got, secret)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestValidationErrors(t *testing.T) {
	a := NewAuto(nil)
	if _, err := a.Split(nil, 1, 1); !errors.Is(err, ErrEmptySecret) {
		t.Errorf("empty secret: got %v", err)
	}
	if _, err := a.Split([]byte("x"), 0, 1); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("k=0: got %v", err)
	}
	if _, err := a.Split([]byte("x"), 3, 2); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("k>m: got %v", err)
	}
	if _, err := a.Combine(nil, 0, 0); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("combine k=0: got %v", err)
	}
}

func TestDuplicateIndexRejected(t *testing.T) {
	a := NewAuto(rand.New(rand.NewSource(5)))
	shares, err := a.Split([]byte("dup"), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Share{shares[0], {Index: shares[0].Index, Data: shares[1].Data}}
	if _, err := a.Combine(bad, 2, 3); !errors.Is(err, ErrDuplicateIndex) {
		t.Errorf("got %v, want ErrDuplicateIndex", err)
	}
}

func TestShareOverhead(t *testing.T) {
	cases := []struct {
		scheme Scheme
		k, m   int
		want   int
	}{
		{NewShamir(nil), 2, 3, 1},
		{NewXOR(nil), 3, 3, 0},
		{Replication{}, 1, 3, 0},
		{NewAuto(nil), 2, 3, 1},
		{NewAuto(nil), 3, 3, 0},
		{NewAuto(nil), 1, 3, 0},
	}
	for _, tc := range cases {
		if got := ShareOverhead(tc.scheme, tc.k, tc.m); got != tc.want {
			t.Errorf("ShareOverhead(%s, %d, %d) = %d, want %d",
				tc.scheme.Name(), tc.k, tc.m, got, tc.want)
		}
	}
}

func TestShareLengthsEqualAcrossShares(t *testing.T) {
	// The model assumes H(Y) = H(X): all shares the same length.
	for name, s := range schemes(t) {
		for _, km := range [][2]int{{1, 3}, {3, 3}, {2, 4}} {
			k, m := km[0], km[1]
			if !supports(name, k, m) {
				continue
			}
			shares, err := s.Split([]byte("equal length"), k, m)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for _, sh := range shares[1:] {
				if len(sh.Data) != len(shares[0].Data) {
					t.Errorf("%s (k=%d,m=%d): unequal share lengths", name, k, m)
				}
			}
		}
	}
}

func BenchmarkAutoSplitXOR5of5(b *testing.B) {
	a := NewAuto(rand.New(rand.NewSource(1)))
	secret := bytes.Repeat([]byte{0xCC}, 1400)
	b.SetBytes(int64(len(secret)))
	for i := 0; i < b.N; i++ {
		if _, err := a.Split(secret, 5, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShamirSplit5of5(b *testing.B) {
	s := NewShamir(rand.New(rand.NewSource(1)))
	secret := bytes.Repeat([]byte{0xCC}, 1400)
	b.SetBytes(int64(len(secret)))
	for i := 0; i < b.N; i++ {
		if _, err := s.Split(secret, 5, 5); err != nil {
			b.Fatal(err)
		}
	}
}
