//go:build !amd64 || purego

package gf256

// Targets without a vector kernel: the table still lists one so selection
// and ForceKernel treat every platform uniformly, but it never reports
// available, so init falls through to the word-sliced or scalar path.

var vectorKernel = kernel{name: "avx2"}

func vectorAvailable() bool { return false }
