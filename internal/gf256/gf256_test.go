package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXOR(t *testing.T) {
	cases := []struct {
		a, b, want byte
	}{
		{0, 0, 0},
		{0xff, 0xff, 0},
		{0x53, 0xca, 0x99},
		{1, 2, 3},
	}
	for _, tc := range cases {
		if got := Add(tc.a, tc.b); got != tc.want {
			t.Errorf("Add(%#x, %#x) = %#x, want %#x", tc.a, tc.b, got, tc.want)
		}
		if got := Sub(tc.a, tc.b); got != tc.want {
			t.Errorf("Sub(%#x, %#x) = %#x, want %#x", tc.a, tc.b, got, tc.want)
		}
	}
}

// mulSlow is an independent bit-by-bit ("Russian peasant") multiplication
// used as an oracle for the table-driven implementation.
func mulSlow(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		carry := a & 0x80
		a <<= 1
		if carry != 0 {
			a ^= byte(poly & 0xff)
		}
		b >>= 1
	}
	return p
}

func TestMulMatchesSlowOracle(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), mulSlow(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%#x, %#x) = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

func TestKnownAESProducts(t *testing.T) {
	// Known products under the AES polynomial.
	cases := []struct {
		a, b, want byte
	}{
		{0x57, 0x83, 0xc1},
		{0x57, 0x13, 0xfe},
		{0x02, 0x87, 0x15},
		{0x53, 0xca, 0x01},
	}
	for _, tc := range cases {
		if got := Mul(tc.a, tc.b); got != tc.want {
			t.Errorf("Mul(%#x, %#x) = %#x, want %#x", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestMulProperties(t *testing.T) {
	commutative := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(commutative, nil); err != nil {
		t.Error("multiplication not commutative:", err)
	}
	associative := func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(associative, nil); err != nil {
		t.Error("multiplication not associative:", err)
	}
	distributive := func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(distributive, nil); err != nil {
		t.Error("multiplication not distributive over addition:", err)
	}
	identity := func(a byte) bool { return Mul(a, 1) == a }
	if err := quick.Check(identity, nil); err != nil {
		t.Error("1 is not a multiplicative identity:", err)
	}
	zero := func(a byte) bool { return Mul(a, 0) == 0 }
	if err := quick.Check(zero, nil); err != nil {
		t.Error("0 is not absorbing:", err)
	}
}

func TestInvAndDiv(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if got := Mul(byte(a), inv); got != 1 {
			t.Fatalf("Mul(%#x, Inv(%#x)) = %#x, want 1", a, a, got)
		}
		if got := Div(1, byte(a)); got != inv {
			t.Fatalf("Div(1, %#x) = %#x, want Inv = %#x", a, got, inv)
		}
	}
	roundtrip := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Mul(Div(a, b), b) == a
	}
	if err := quick.Check(roundtrip, nil); err != nil {
		t.Error("Div is not a right inverse of Mul:", err)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Div(1, 0) did not panic")
		}
	}()
	Div(1, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Log(0) did not panic")
		}
	}()
	Log(0)
}

func TestExpLogRoundtrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := Exp(Log(byte(a))); got != byte(a) {
			t.Fatalf("Exp(Log(%#x)) = %#x", a, got)
		}
	}
	// Exp must reduce modulo 255, including negative arguments.
	if Exp(255) != Exp(0) {
		t.Error("Exp(255) != Exp(0)")
	}
	if Exp(-1) != Exp(254) {
		t.Error("Exp(-1) != Exp(254)")
	}
}

func TestGeneratorIsPrimitive(t *testing.T) {
	seen := make(map[byte]bool, 255)
	for i := 0; i < 255; i++ {
		seen[Exp(i)] = true
	}
	if len(seen) != 255 {
		t.Errorf("generator produced %d distinct powers, want 255", len(seen))
	}
	if seen[0] {
		t.Error("generator powers include zero")
	}
}

func TestPow(t *testing.T) {
	cases := []struct {
		a    byte
		n    int
		want byte
	}{
		{0, 0, 1},
		{0, 5, 0},
		{5, 0, 1},
		{2, 1, 2},
		{2, 8, 0x1b}, // x^8 = x^4+x^3+x+1 under the AES polynomial
	}
	for _, tc := range cases {
		if got := Pow(tc.a, tc.n); got != tc.want {
			t.Errorf("Pow(%#x, %d) = %#x, want %#x", tc.a, tc.n, got, tc.want)
		}
	}
	// Pow agrees with repeated multiplication.
	agree := func(a byte, n uint8) bool {
		want := byte(1)
		for i := 0; i < int(n); i++ {
			want = Mul(want, a)
		}
		return Pow(a, int(n)) == want
	}
	if err := quick.Check(agree, nil); err != nil {
		t.Error("Pow disagrees with repeated Mul:", err)
	}
}

func TestPowNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pow(2, -1) did not panic")
		}
	}()
	Pow(2, -1)
}

func TestEvalPoly(t *testing.T) {
	// p(x) = 7 (constant)
	if got := EvalPoly([]byte{7}, 0x35); got != 7 {
		t.Errorf("constant poly eval = %#x, want 7", got)
	}
	// p(x) = 3 + 2x at x=1 is 3^2... in GF(2^8): 3 XOR 2 = 1.
	if got := EvalPoly([]byte{3, 2}, 1); got != 1 {
		t.Errorf("EvalPoly(3+2x, 1) = %#x, want 1", got)
	}
	// p(0) is always the constant term.
	constTerm := func(c0, c1, c2 byte) bool {
		return EvalPoly([]byte{c0, c1, c2}, 0) == c0
	}
	if err := quick.Check(constTerm, nil); err != nil {
		t.Error("EvalPoly(_, 0) != constant term:", err)
	}
	// Empty polynomial evaluates to zero.
	if got := EvalPoly(nil, 0x42); got != 0 {
		t.Errorf("EvalPoly(nil, x) = %#x, want 0", got)
	}
}

func TestInterpolateRecoversPolynomial(t *testing.T) {
	// Interpolating deg < n polynomial through n points must reproduce it
	// everywhere.
	coeffs := []byte{0x1d, 0x80, 0x07}
	xs := []byte{1, 2, 3}
	ys := make([]byte, len(xs))
	for i, x := range xs {
		ys[i] = EvalPoly(coeffs, x)
	}
	for at := 0; at < 256; at++ {
		want := EvalPoly(coeffs, byte(at))
		if got := Interpolate(xs, ys, byte(at)); got != want {
			t.Fatalf("Interpolate at %#x = %#x, want %#x", at, got, want)
		}
	}
	if got := InterpolateAtZero(xs, ys); got != coeffs[0] {
		t.Errorf("InterpolateAtZero = %#x, want %#x", got, coeffs[0])
	}
}

func TestInterpolatePanics(t *testing.T) {
	t.Run("mismatched lengths", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic on mismatched slice lengths")
			}
		}()
		Interpolate([]byte{1, 2}, []byte{1}, 0)
	})
	t.Run("duplicate abscissa", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic on duplicate abscissa")
			}
		}()
		Interpolate([]byte{1, 1}, []byte{2, 3}, 0)
	})
}

func BenchmarkMul(b *testing.B) {
	var acc byte
	for i := 0; i < b.N; i++ {
		acc ^= Mul(byte(i), byte(i>>8)|1)
	}
	_ = acc
}

func BenchmarkInterpolateAtZero(b *testing.B) {
	xs := []byte{1, 2, 3, 4, 5}
	ys := []byte{0x17, 0x2a, 0x9c, 0x44, 0xd1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		InterpolateAtZero(xs, ys)
	}
}
