package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

func randomBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// TestMulTableMatchesScalar cross-checks every row of the kernel table
// against the scalar Mul.
func TestMulTableMatchesScalar(t *testing.T) {
	for c := 0; c < 256; c++ {
		for a := 0; a < 256; a++ {
			if got, want := mulTable[c][a], Mul(byte(c), byte(a)); got != want {
				t.Fatalf("mulTable[%d][%d] = %d, want %d", c, a, got, want)
			}
		}
	}
}

// TestMulSlice checks MulSlice against scalar Mul over random inputs,
// including the in-place case and the c=0 and c=1 fast paths.
func TestMulSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 8, 9, 1400} {
		for _, c := range []byte{0, 1, 2, 0x53, 0xff} {
			src := randomBytes(rng, n)
			dst := make([]byte, n)
			MulSlice(dst, src, c)
			for i := range src {
				if want := Mul(c, src[i]); dst[i] != want {
					t.Fatalf("n=%d c=%d: dst[%d] = %d, want %d", n, c, i, dst[i], want)
				}
			}
			// In place.
			inPlace := append([]byte(nil), src...)
			MulSlice(inPlace, inPlace, c)
			if !bytes.Equal(inPlace, dst) {
				t.Fatalf("n=%d c=%d: in-place MulSlice differs", n, c)
			}
		}
	}
}

// TestAddMulSlice checks the scaled accumulate against scalar arithmetic.
func TestAddMulSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 13, 1400} {
		for _, c := range []byte{0, 1, 2, 0x9c} {
			src := randomBytes(rng, n)
			dst := randomBytes(rng, n)
			want := make([]byte, n)
			for i := range want {
				want[i] = Add(dst[i], Mul(c, src[i]))
			}
			AddMulSlice(dst, src, c)
			if !bytes.Equal(dst, want) {
				t.Fatalf("n=%d c=%d: AddMulSlice mismatch", n, c)
			}
		}
	}
}

// TestMulAddSlice checks that iterated block Horner steps agree with the
// scalar EvalPoly on every byte position.
func TestMulAddSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, k = 257, 5
	coeffs := make([][]byte, k) // coeffs[j][i]: coefficient j of polynomial i
	for j := range coeffs {
		coeffs[j] = randomBytes(rng, n)
	}
	for _, x := range []byte{0, 1, 2, 0x1b, 0xfe} {
		acc := make([]byte, n)
		copy(acc, coeffs[k-1])
		for j := k - 2; j >= 0; j-- {
			MulAddSlice(acc, x, coeffs[j])
		}
		scalar := make([]byte, k)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				scalar[j] = coeffs[j][i]
			}
			if want := EvalPoly(scalar, x); acc[i] != want {
				t.Fatalf("x=%d: byte %d = %d, want %d", x, i, acc[i], want)
			}
		}
	}
}

// TestAddSlice checks the word-wise XOR kernel across length classes that
// exercise both the unrolled body and the tail loop.
func TestAddSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 1400} {
		src := randomBytes(rng, n)
		dst := randomBytes(rng, n)
		want := make([]byte, n)
		for i := range want {
			want[i] = dst[i] ^ src[i]
		}
		AddSlice(dst, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("n=%d: AddSlice mismatch", n)
		}
	}
}

// TestKernelLengthMismatchPanics pins the contract that mismatched slice
// lengths are a caller bug.
func TestKernelLengthMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"MulSlice":    func() { MulSlice(make([]byte, 2), make([]byte, 3), 1) },
		"AddMulSlice": func() { AddMulSlice(make([]byte, 2), make([]byte, 3), 1) },
		"MulAddSlice": func() { MulAddSlice(make([]byte, 2), 1, make([]byte, 3)) },
		"AddSlice":    func() { AddSlice(make([]byte, 2), make([]byte, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on length mismatch", name)
				}
			}()
			f()
		}()
	}
}

// TestKernelsDoNotAllocate pins the kernels at zero allocations.
func TestKernelsDoNotAllocate(t *testing.T) {
	src := randomBytes(rand.New(rand.NewSource(5)), 1400)
	dst := make([]byte, len(src))
	if n := testing.AllocsPerRun(100, func() {
		MulSlice(dst, src, 0x53)
		AddMulSlice(dst, src, 0x9c)
		MulAddSlice(dst, 0x1b, src)
		AddSlice(dst, src)
	}); n != 0 {
		t.Fatalf("kernels allocate %v times per run, want 0", n)
	}
}

func benchKernel(b *testing.B, f func(dst, src []byte)) {
	src := randomBytes(rand.New(rand.NewSource(1)), 1400)
	dst := make([]byte, len(src))
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(dst, src)
	}
}

func BenchmarkMulSlice1400B(b *testing.B) {
	benchKernel(b, func(dst, src []byte) { MulSlice(dst, src, 0x53) })
}

func BenchmarkAddMulSlice1400B(b *testing.B) {
	benchKernel(b, func(dst, src []byte) { AddMulSlice(dst, src, 0x53) })
}

func BenchmarkMulAddSlice1400B(b *testing.B) {
	benchKernel(b, func(dst, src []byte) { MulAddSlice(dst, 0x53, src) })
}

func BenchmarkAddSlice1400B(b *testing.B) {
	benchKernel(b, func(dst, src []byte) { AddSlice(dst, src) })
}

// BenchmarkScalarEval1400B is the per-byte baseline the block kernels
// replace: one EvalPoly per byte, as the pre-kernel Shamir split did.
func BenchmarkScalarEval1400B(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	secret := randomBytes(rng, 1400)
	coeffs := make([]byte, 3)
	b.SetBytes(int64(len(secret)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink byte
		for _, s := range secret {
			coeffs[0] = s
			sink ^= EvalPoly(coeffs, 0x53)
		}
		_ = sink
	}
}
