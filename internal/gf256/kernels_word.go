package gf256

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// The word-sliced kernel: the portable fast path. The two 16-entry nibble
// tables for a multiplier c (nibTab[c]) are expanded once, lazily, into a
// wide table w where w[v] = c*(v&0xff) | (c*(v>>8))<<8 — the product of two
// adjacent bytes per entry. Each 8-byte step then loads one uint64, slices
// it into four 16-bit lanes, and resolves each lane with a single table
// load: four loads per 8 bytes instead of eight, which measures ~1.4× the
// scalar kernel on current x86 (and is the fastest path available off
// amd64). The expansion costs 128 KiB per distinct multiplier, cached for
// the process lifetime; split paths only ever use the share x-coordinates
// (1..m, m ≤ 32 links), and combine paths the Lagrange weights, so the
// resident set stays small in practice and is bounded by 32 MiB in the
// adversarial worst case of all 255 multipliers.

var wordKernel = kernel{
	name:       "word",
	mulPass:    wordMulPass,
	addMulPass: wordAddMulPass,
	mulXorPass: wordMulXorPass,
	xorPass:    wordXorPass,
}

var (
	// wideRows[c] is the lazily built wide product table for c. Entries are
	// immutable once published; the atomic pointer is the publication.
	wideRows [256]atomic.Pointer[[1 << 16]uint16]
	// wideBuildMu serializes builds so a race to a missing row does not
	// build it twice.
	wideBuildMu sync.Mutex
)

// wideRow returns the wide product table for c, building and publishing it
// on first use. The build allocates 128 KiB exactly once per multiplier; the
// noalloc kernels reach this only through the pass functions, whose
// steady-state (row already published) performs no allocation.
func wideRow(c byte) *[1 << 16]uint16 {
	if t := wideRows[c].Load(); t != nil {
		return t
	}
	wideBuildMu.Lock()
	defer wideBuildMu.Unlock()
	if t := wideRows[c].Load(); t != nil {
		return t
	}
	t := new([1 << 16]uint16)
	row := &mulTable[c]
	for hi := 0; hi < 256; hi++ {
		base := uint16(row[hi]) << 8
		w := t[hi<<8 : (hi+1)<<8]
		for lo := 0; lo < 256; lo++ {
			w[lo] = base | uint16(row[lo])
		}
	}
	wideRows[c].Store(t)
	return t
}

// wordMulPass sets dst[i] = c*src[i], 8 bytes per step; c ∉ {0, 1}.
//
//remicss:noalloc
func wordMulPass(dst, src []byte, c byte) {
	t := wideRow(c)
	le := binary.LittleEndian
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		w := le.Uint64(src[i:])
		le.PutUint64(dst[i:],
			uint64(t[w&0xffff])|uint64(t[w>>16&0xffff])<<16|
				uint64(t[w>>32&0xffff])<<32|uint64(t[w>>48])<<48)
	}
	row := &mulTable[c]
	for i := n; i < len(dst); i++ {
		dst[i] = row[src[i]]
	}
}

// wordAddMulPass accumulates dst[i] ^= c*src[i]; c ∉ {0, 1}.
//
//remicss:noalloc
func wordAddMulPass(dst, src []byte, c byte) {
	t := wideRow(c)
	le := binary.LittleEndian
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		w := le.Uint64(src[i:])
		le.PutUint64(dst[i:], le.Uint64(dst[i:])^
			(uint64(t[w&0xffff])|uint64(t[w>>16&0xffff])<<16|
				uint64(t[w>>32&0xffff])<<32|uint64(t[w>>48])<<48))
	}
	row := &mulTable[c]
	for i := n; i < len(dst); i++ {
		dst[i] ^= row[src[i]]
	}
}

// wordXorPass accumulates dst[i] ^= src[i] one uint64 at a time.
//
//remicss:noalloc
func wordXorPass(dst, src []byte) {
	le := binary.LittleEndian
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		le.PutUint64(dst[i:], le.Uint64(dst[i:])^le.Uint64(src[i:]))
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}

// wordMulXorPass computes acc[i] = x*acc[i] ^ coeff[i]; x ≠ 0.
//
//remicss:noalloc
func wordMulXorPass(acc, coeff []byte, x byte) {
	t := wideRow(x)
	le := binary.LittleEndian
	n := len(acc) &^ 7
	for i := 0; i < n; i += 8 {
		w := le.Uint64(acc[i:])
		le.PutUint64(acc[i:], le.Uint64(coeff[i:])^
			(uint64(t[w&0xffff])|uint64(t[w>>16&0xffff])<<16|
				uint64(t[w>>32&0xffff])<<32|uint64(t[w>>48])<<48))
	}
	row := &mulTable[x]
	for i := n; i < len(acc); i++ {
		acc[i] = row[acc[i]] ^ coeff[i]
	}
}
