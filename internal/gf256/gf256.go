// Package gf256 implements arithmetic over the finite field GF(2^8).
//
// The field is realized as GF(2)[x] / (x^8 + x^4 + x^3 + x + 1), the same
// irreducible polynomial used by AES (0x11b). Multiplication and division
// are table-driven via discrete logarithms with generator 0x03, so every
// operation is constant-time with respect to branching on secret values
// except for the explicit zero checks documented below.
//
// This package is the arithmetic substrate for the Shamir threshold scheme
// in internal/shamir: secrets and shares are processed byte-by-byte, with
// each byte an element of this field.
package gf256

import (
	"fmt"
	"sync"
)

// poly is the AES irreducible polynomial x^8+x^4+x^3+x+1 used for reduction.
const poly = 0x11b

// generator is a primitive element of the field (0x03 generates the whole
// multiplicative group under this reduction polynomial).
const generator = 0x03

var (
	// expTable[i] = generator^i for i in [0, 510). The table is doubled so
	// Mul can index logA+logB without an explicit modular reduction.
	expTable [510]byte
	// logTable[a] = discrete log of a (base generator) for a in [1, 255].
	logTable [256]byte
)

// initTables builds every lookup table in this package — exp/log first, then
// the 64 KiB multiplication table the slice kernels index. All construction
// lives in one function so there is exactly one ordering, independent of the
// source-file order Go would otherwise use to sequence per-file init funcs.
// sync.OnceFunc makes explicit calls from any entry point idempotent.
var initTables = sync.OnceFunc(buildTables)

func init() { initTables() }

func buildTables() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		expTable[i+255] = byte(x)
		logTable[x] = byte(i)
		// Multiply by the generator (0x03 = x + 1): shift-and-add.
		x = x<<1 ^ x
		if x >= 0x100 {
			x ^= poly
		}
	}
	// mulTable[c][a] = c*a, derived from the log/exp tables built above.
	// Row and column 0 stay zero from the array's zero value.
	for c := 1; c < 256; c++ {
		row := &mulTable[c]
		logC := int(logTable[c])
		for a := 1; a < 256; a++ {
			row[a] = expTable[logC+int(logTable[a])]
		}
	}
	// nibTab[c] is the split-nibble product table pair for c: entries [0,16)
	// hold c*n for the low nibble n, entries [16,32) hold c*(n<<4) for the
	// high nibble n. Multiplication is GF(2)-linear, so
	// c*b = nibTab[c][b&0x0f] ^ nibTab[c][16+(b>>4)] — the vpshufb idiom the
	// word-sliced and vector kernels build on. Derived from mulTable, so it
	// must be built after the rows above.
	for c := 0; c < 256; c++ {
		row := &mulTable[c]
		for n := 0; n < 16; n++ {
			nibTab[c][n] = row[n]
			nibTab[c][16+n] = row[n<<4]
		}
	}
	// The kernel for the general slice paths is selected exactly once, after
	// every table it may capture is final.
	selectKernel()
}

// Add returns a + b in GF(2^8). Addition is XOR; it is its own inverse, so
// Sub is identical to Add.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a - b in GF(2^8). In characteristic 2 this equals Add.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b in GF(2^8). It panics if b is zero: division by zero is
// a programming error, not a recoverable runtime condition.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(logTable[a]) - int(logTable[b])
	if d < 0 {
		d += 255
	}
	return expTable[d]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns generator^n, reducing n modulo 255.
func Exp(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return expTable[n]
}

// Log returns the discrete logarithm of a to the generator base.
// It panics if a is zero, which has no logarithm.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// Pow returns a raised to the power n (n >= 0). Pow(0, 0) is defined as 1.
func Pow(a byte, n int) byte {
	if n < 0 {
		panic(fmt.Sprintf("gf256: negative exponent %d", n))
	}
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return Exp(Log(a) * n % 255)
}

// EvalPoly evaluates the polynomial with the given coefficients at x using
// Horner's method. coeffs[0] is the constant term.
func EvalPoly(coeffs []byte, x byte) byte {
	var y byte
	for i := len(coeffs) - 1; i >= 0; i-- {
		y = Add(Mul(y, x), coeffs[i])
	}
	return y
}

// Interpolate performs Lagrange interpolation at x=at over the points
// (xs[i], ys[i]). The xs must be pairwise distinct; Interpolate panics on a
// duplicate abscissa because the interpolating polynomial is then undefined.
func Interpolate(xs, ys []byte, at byte) byte {
	if len(xs) != len(ys) {
		panic("gf256: mismatched interpolation point slices")
	}
	var result byte
	for i := range xs {
		num, den := byte(1), byte(1)
		for j := range xs {
			if i == j {
				continue
			}
			if xs[i] == xs[j] {
				panic("gf256: duplicate interpolation abscissa")
			}
			num = Mul(num, Sub(at, xs[j]))
			den = Mul(den, Sub(xs[i], xs[j]))
		}
		result = Add(result, Mul(ys[i], Div(num, den)))
	}
	return result
}

// InterpolateAtZero is Interpolate specialized to at=0, the common case for
// Shamir secret recovery (the secret is the constant coefficient).
func InterpolateAtZero(xs, ys []byte) byte {
	return Interpolate(xs, ys, 0)
}
