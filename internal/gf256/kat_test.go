package gf256

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// Golden known-answer vectors for the slice kernels, committed under
// testdata so a table-construction or kernel regression cannot hide behind
// a reference implementation regressing in the same change. The scalar
// anchors are published constants from FIPS-197 §4.2 (and the classic
// {ff}·{ff} exercise); the slice vectors were generated from the table-free
// shift-and-add reference and pinned.
//
// Regenerate slice vectors with:
//
//	GF256_WRITE_KAT=1 go test -run TestWriteKAT ./internal/gf256

// TestFIPS197Anchors checks multiplication facts stated in or derived by
// hand from the AES standard — independent of every table and kernel in
// this package.
func TestFIPS197Anchors(t *testing.T) {
	anchors := []struct{ a, b, want byte }{
		{0x57, 0x83, 0xc1}, // FIPS-197 §4.2 worked example
		{0x57, 0x13, 0xfe}, // FIPS-197 §4.2.1 xtime chain
		{0x53, 0xca, 0x01}, // inverse pair from the S-box derivation
		{0x02, 0x80, 0x1b}, // xtime overflow: the reduction polynomial tail
		{0x02, 0x7f, 0xfe}, // xtime without overflow
		{0xff, 0xff, 0x13}, // full-weight operands, hand-reduced
		{0x01, 0xab, 0xab}, // multiplicative identity
		{0x00, 0xab, 0x00}, // absorbing zero
	}
	for _, a := range anchors {
		if got := Mul(a.a, a.b); got != a.want {
			t.Errorf("Mul(%#02x, %#02x) = %#02x, want %#02x", a.a, a.b, got, a.want)
		}
		if got := Mul(a.b, a.a); got != a.want {
			t.Errorf("Mul(%#02x, %#02x) = %#02x, want %#02x (commuted)", a.b, a.a, got, a.want)
		}
	}
	// The same anchors must hold through every kernel's slice path.
	withKernels(t, func(t *testing.T, name string) {
		for _, a := range anchors {
			src := bytes.Repeat([]byte{a.b}, 37) // odd length: exercises tails
			dst := make([]byte, len(src))
			MulSlice(dst, src, a.a)
			for i, got := range dst {
				if got != a.want {
					t.Fatalf("MulSlice(%#02x)[%d] = %#02x, want %#02x", a.a, i, got, a.want)
				}
			}
		}
	})
}

type sliceKAT struct {
	Name string `json:"name"`
	C    byte   `json:"c"`
	Src  string `json:"src"`
	Mul  string `json:"mul"`    // c * src
	Acc  string `json:"acc"`    // src ^ c*src (AddMulSlice with dst=src)
	X    byte   `json:"x"`      // Horner multiplier
	Hor  string `json:"horner"` // x*src ^ src (one fused Horner step)
}

const gfKATFile = "testdata/slice_kat.json"

// katSources are the fixed inputs of the committed vectors: edge patterns
// first (all-zero, all-ones, the reduction-polynomial byte), then a ramp
// long enough to cross the 32-byte vector stride with a ragged tail.
func katSources() []struct {
	name string
	c, x byte
	src  []byte
} {
	ramp := make([]byte, 77)
	for i := range ramp {
		ramp[i] = byte(i * 5)
	}
	return []struct {
		name string
		c, x byte
		src  []byte
	}{
		{"zero-src", 0x57, 0x02, make([]byte, 40)},
		{"all-ff", 0xff, 0xff, bytes.Repeat([]byte{0xff}, 48)},
		{"poly-byte", 0x02, 0x8d, bytes.Repeat([]byte{0x80, 0x1b, 0x11}, 11)},
		{"ramp-57", 0x57, 0x83, ramp},
	}
}

func TestSliceKnownAnswerVectors(t *testing.T) {
	raw, err := os.ReadFile(filepath.FromSlash(gfKATFile))
	if err != nil {
		t.Fatalf("missing KAT vectors (regenerate with GF256_WRITE_KAT=1): %v", err)
	}
	var vectors []sliceKAT
	if err := json.Unmarshal(raw, &vectors); err != nil {
		t.Fatal(err)
	}
	if len(vectors) != len(katSources()) {
		t.Fatalf("KAT file has %d vectors, test defines %d sources", len(vectors), len(katSources()))
	}
	withKernels(t, func(t *testing.T, name string) {
		for i, src := range katSources() {
			v := vectors[i]
			if v.Name != src.name || v.C != src.c || v.X != src.x || v.Src != hex.EncodeToString(src.src) {
				t.Fatalf("vector %d drifted from its source definition (%q vs %q)", i, v.Name, src.name)
			}
			dst := make([]byte, len(src.src))
			MulSlice(dst, src.src, src.c)
			if got := hex.EncodeToString(dst); got != v.Mul {
				t.Fatalf("%s: MulSlice mismatch\n got %s\nwant %s", v.Name, got, v.Mul)
			}
			acc := append([]byte(nil), src.src...)
			AddMulSlice(acc, src.src, src.c)
			if got := hex.EncodeToString(acc); got != v.Acc {
				t.Fatalf("%s: AddMulSlice mismatch\n got %s\nwant %s", v.Name, got, v.Acc)
			}
			hor := append([]byte(nil), src.src...)
			MulAddSlice(hor, src.x, src.src)
			if got := hex.EncodeToString(hor); got != v.Hor {
				t.Fatalf("%s: MulAddSlice mismatch\n got %s\nwant %s", v.Name, got, v.Hor)
			}
		}
	})
}

// TestWriteKAT regenerates the committed slice vectors from the table-free
// reference. Generator, not test: runs only under GF256_WRITE_KAT=1.
func TestWriteKAT(t *testing.T) {
	if os.Getenv("GF256_WRITE_KAT") == "" {
		t.Skip("set GF256_WRITE_KAT=1 to regenerate testdata")
	}
	var vectors []sliceKAT
	for _, s := range katSources() {
		mul := make([]byte, len(s.src))
		acc := make([]byte, len(s.src))
		hor := make([]byte, len(s.src))
		for i, b := range s.src {
			mul[i] = refMul(s.c, b)
			acc[i] = b ^ mul[i]
			hor[i] = refMul(s.x, b) ^ b
		}
		vectors = append(vectors, sliceKAT{
			Name: s.name, C: s.c, X: s.x,
			Src: hex.EncodeToString(s.src),
			Mul: hex.EncodeToString(mul),
			Acc: hex.EncodeToString(acc),
			Hor: hex.EncodeToString(hor),
		})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(vectors); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.FromSlash(gfKATFile), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d vectors to %s", len(vectors), gfKATFile)
}
