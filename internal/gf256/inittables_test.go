package gf256

// TestMain runs the kernel checks before any test function, so the slice
// kernels are exercised before any scalar operation in the whole test
// binary: this proves the kernel tables do not depend on some other entry
// point (or on source-file init ordering) having run first. The reference
// multiplication below is an independent shift-and-add (Russian peasant)
// implementation that uses no package tables.

import (
	"bytes"
	"fmt"
	"os"
	"testing"
)

// kernelFirstErr records the outcome of the pre-test kernel check.
var kernelFirstErr error

func TestMain(m *testing.M) {
	kernelFirstErr = checkKernelBeforeScalarOps()
	os.Exit(m.Run())
}

// refMul multiplies a and b in GF(2^8) by shift-and-add reduction modulo the
// AES polynomial, using no lookup tables.
func refMul(a, b byte) byte {
	var p byte
	aa, bb := int(a), int(b)
	for i := 0; i < 8; i++ {
		if bb&1 != 0 {
			p ^= byte(aa)
		}
		bb >>= 1
		aa <<= 1
		if aa >= 0x100 {
			aa ^= poly
		}
	}
	return p
}

// checkKernelBeforeScalarOps drives MulSlice and HornerBlock as the very
// first field operations of the test binary and checks them against the
// table-free reference. If table construction were still split across
// per-file init funcs with an implicit ordering, a reordering regression
// would surface here as wholesale wrong products rather than depending on
// which API a caller happened to touch first.
func checkKernelBeforeScalarOps() error {
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]byte, 256)
	for c := 0; c < 256; c++ {
		MulSlice(dst, src, byte(c))
		for i := range src {
			if want := refMul(byte(c), src[i]); dst[i] != want {
				return fmt.Errorf("MulSlice: %#02x * %#02x = %#02x, want %#02x", c, src[i], dst[i], want)
			}
		}
	}

	// One fused Horner step per block over a 3-coefficient polynomial,
	// checked element-wise against the reference arithmetic.
	top := []byte{0x53, 0x00, 0xff, 0x01, 0xca}
	mid := []byte{0x0e, 0x80, 0x02, 0xfe, 0x00}
	con := []byte{0xde, 0xad, 0xbe, 0xef, 0x99}
	got := make([]byte, 5)
	const x = 0x47
	HornerBlock(got, x, [][]byte{top, mid, con}, 0, 5)
	for i := range got {
		want := refMul(refMul(top[i], x)^mid[i], x) ^ con[i]
		if got[i] != want {
			return fmt.Errorf("HornerBlock[%d] = %#02x, want %#02x", i, got[i], want)
		}
	}
	return nil
}

func TestKernelBeforeScalarOps(t *testing.T) {
	if kernelFirstErr != nil {
		t.Fatal(kernelFirstErr)
	}
}

func TestInitTablesIdempotent(t *testing.T) {
	var exp [510]byte
	var mul [256][256]byte
	copy(exp[:], expTable[:])
	for i := range mul {
		mul[i] = mulTable[i]
	}
	initTables() // must be a no-op on a second call
	if exp != expTable {
		t.Fatal("initTables mutated expTable on repeat call")
	}
	for i := range mul {
		if mul[i] != mulTable[i] {
			t.Fatalf("initTables mutated mulTable row %d on repeat call", i)
		}
	}
}

func TestHornerBlockMatchesMulAddSlice(t *testing.T) {
	const L = 1000 // odd-ish length exercising the unrolled tail
	blocks := make([][]byte, 4)
	for b := range blocks {
		blocks[b] = make([]byte, L)
		for i := range blocks[b] {
			blocks[b][i] = byte((i*31 + b*17 + 7) % 256)
		}
	}
	for _, x := range []byte{0, 1, 2, 0x53, 0xff} {
		want := make([]byte, L)
		copy(want, blocks[0])
		for _, c := range blocks[1:] {
			MulAddSlice(want, x, c)
		}
		got := make([]byte, L)
		// Evaluate through ragged windows to cover lo>0 and short tails.
		for lo := 0; lo < L; {
			hi := lo + 333
			if hi > L {
				hi = L
			}
			HornerBlock(got, x, blocks, lo, hi)
			lo = hi
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("HornerBlock(x=%#02x) diverges from MulAddSlice sequence", x)
		}
	}
}

func TestHornerBlockPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	dst := make([]byte, 8)
	blk := [][]byte{make([]byte, 8)}
	mustPanic("no blocks", func() { HornerBlock(dst, 1, nil, 0, 8) })
	mustPanic("hi beyond dst", func() { HornerBlock(dst, 1, blk, 0, 9) })
	mustPanic("lo negative", func() { HornerBlock(dst, 1, blk, -1, 4) })
	mustPanic("short block", func() { HornerBlock(dst, 1, [][]byte{make([]byte, 4)}, 0, 8) })
}
