package gf256

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// The kernel differential wall: every compiled kernel (scalar, word, and
// the platform vector kernel when the machine has it) is pinned against the
// table-free shift-and-add reference for every multiplier, at lengths and
// alignments chosen to hit each kernel's edges — the 32-byte vector groups,
// the 8-byte word steps, and their ragged scalar tails — through sub-slice
// offsets that deny the kernels any alignment guarantees.

// diffLengths crosses the 8-byte word stride and the 32-byte vector stride
// boundaries on both sides, plus MTU-order sizes the protocol actually
// splits.
var diffLengths = []int{1, 2, 3, 7, 8, 9, 31, 32, 33, 63, 64, 65, 100, 255, 256, 1000, 1400}

// withKernels runs f once per available kernel with that kernel forced.
func withKernels(t *testing.T, f func(t *testing.T, name string)) {
	t.Helper()
	for _, name := range Kernels() {
		restore, err := ForceKernel(name)
		if err != nil {
			t.Fatalf("ForceKernel(%q): %v", name, err)
		}
		ok := t.Run(name, func(t *testing.T) { f(t, name) })
		restore()
		if !ok {
			return
		}
	}
}

func TestKernelsMatchReferenceAllMultipliers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const off = 5 // deliberately misaligned backing windows
	src := randomBytes(rng, off+diffLengths[len(diffLengths)-1])
	withKernels(t, func(t *testing.T, name string) {
		for c := 0; c < 256; c++ {
			n := diffLengths[c%len(diffLengths)]
			s := src[off : off+n]
			want := make([]byte, n)
			for i := range want {
				want[i] = refMul(byte(c), s[i])
			}

			dst := make([]byte, off+n)
			MulSlice(dst[off:], s, byte(c))
			if !bytes.Equal(dst[off:], want) {
				t.Fatalf("MulSlice c=%#02x n=%d diverges from reference", c, n)
			}

			acc := make([]byte, off+n)
			copy(acc[off:], src[:n])
			wantAcc := make([]byte, n)
			for i := range wantAcc {
				wantAcc[i] = src[i] ^ want[i]
			}
			AddMulSlice(acc[off:], s, byte(c))
			if !bytes.Equal(acc[off:], wantAcc) {
				t.Fatalf("AddMulSlice c=%#02x n=%d diverges from reference", c, n)
			}
		}
	})
}

func TestKernelsXorMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	withKernels(t, func(t *testing.T, name string) {
		for _, n := range diffLengths {
			for off := 0; off < 4; off++ {
				dst := randomBytes(rng, off+n)[off:]
				src := randomBytes(rng, off+n)[off:]
				want := make([]byte, n)
				for i := range want {
					want[i] = dst[i] ^ src[i]
				}
				AddSlice(dst, src)
				if !bytes.Equal(dst, want) {
					t.Fatalf("AddSlice n=%d off=%d diverges from reference", n, off)
				}
			}
		}
	})
}

func TestKernelsHornerMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	withKernels(t, func(t *testing.T, name string) {
		for _, n := range diffLengths {
			for off := 0; off < 8; off++ {
				top := randomBytes(rng, off+n)[off:]
				mid := randomBytes(rng, off+n)[off:]
				con := randomBytes(rng, off+n)[off:]
				x := byte(rng.Intn(255) + 1)

				want := make([]byte, n)
				for i := 0; i < n; i++ {
					want[i] = refMul(refMul(top[i], x)^mid[i], x) ^ con[i]
				}

				acc := make([]byte, off+n)[off:]
				HornerBlock(acc, x, [][]byte{top, mid, con}, 0, n)
				if !bytes.Equal(acc, want) {
					t.Fatalf("HornerBlock x=%#02x n=%d off=%d diverges from reference", x, n, off)
				}

				// Tiled evaluation over sub-ranges must agree with the
				// full-range pass: this is the window walk the splitter does.
				tiled := make([]byte, off+n)[off:]
				for lo := 0; lo < n; lo += 13 {
					hi := lo + 13
					if hi > n {
						hi = n
					}
					HornerBlock(tiled, x, [][]byte{top, mid, con}, lo, hi)
				}
				if !bytes.Equal(tiled, want) {
					t.Fatalf("tiled HornerBlock x=%#02x n=%d off=%d diverges", x, n, off)
				}
			}
		}
	})
}

func TestKernelsCrossAgree(t *testing.T) {
	// Belt over the reference braces: all kernels on the same inputs,
	// byte-identical outputs, including the fused MulAddSlice entry point.
	kernels := Kernels()
	if len(kernels) < 2 {
		t.Skipf("only %v compiled in", kernels)
	}
	rng := rand.New(rand.NewSource(44))
	for _, n := range diffLengths {
		src := randomBytes(rng, n)
		add := randomBytes(rng, n)
		c := byte(rng.Intn(254) + 2)
		type out struct{ mul, mulAdd []byte }
		results := make(map[string]out, len(kernels))
		for _, name := range kernels {
			restore, err := ForceKernel(name)
			if err != nil {
				t.Fatal(err)
			}
			mul := make([]byte, n)
			MulSlice(mul, src, c)
			mulAdd := make([]byte, n)
			copy(mulAdd, add)
			MulAddSlice(mulAdd, c, src)
			restore()
			results[name] = out{mul, mulAdd}
		}
		base := results[kernels[0]]
		for _, name := range kernels[1:] {
			if !bytes.Equal(results[name].mul, base.mul) {
				t.Fatalf("MulSlice: %s and %s disagree at n=%d c=%#02x", kernels[0], name, n, c)
			}
			if !bytes.Equal(results[name].mulAdd, base.mulAdd) {
				t.Fatalf("MulAddSlice: %s and %s disagree at n=%d c=%#02x", kernels[0], name, n, c)
			}
		}
	}
}

func TestForceKernelErrors(t *testing.T) {
	if _, err := ForceKernel("no-such-kernel"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	active := KernelName()
	restore, err := ForceKernel("scalar")
	if err != nil {
		t.Fatal(err)
	}
	if KernelName() != "scalar" {
		t.Fatalf("forced scalar, active %s", KernelName())
	}
	restore()
	if KernelName() != active {
		t.Fatalf("restore landed on %s, want %s", KernelName(), active)
	}
}

func TestAllKernelsDoNotAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	dst := randomBytes(rng, 1400)
	src := randomBytes(rng, 1400)
	withKernels(t, func(t *testing.T, name string) {
		// Warm per-multiplier state (the word kernel builds its wide table
		// lazily on first use of a multiplier).
		MulSlice(dst, src, 3)
		AddMulSlice(dst, src, 3)
		MulAddSlice(dst, 3, src)
		for what, f := range map[string]func(){
			"MulSlice":    func() { MulSlice(dst, src, 3) },
			"AddMulSlice": func() { AddMulSlice(dst, src, 3) },
			"MulAddSlice": func() { MulAddSlice(dst, 3, src) },
			"AddSlice":    func() { AddSlice(dst, src) },
		} {
			if avg := testing.AllocsPerRun(100, f); avg != 0 {
				t.Fatalf("%s allocates %.1f times per call on the %s kernel", what, avg, name)
			}
		}
	})
}

func BenchmarkKernelPass(b *testing.B) {
	dst := make([]byte, 4096)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i * 31)
	}
	for _, name := range Kernels() {
		restore, err := ForceKernel(name)
		if err != nil {
			b.Fatal(err)
		}
		AddMulSlice(dst, src, 7) // warm lazy tables outside the timer
		b.Run(fmt.Sprintf("addmul-4KiB/%s", name), func(b *testing.B) {
			b.SetBytes(int64(len(dst)))
			for i := 0; i < b.N; i++ {
				AddMulSlice(dst, src, 7)
			}
		})
		b.Run(fmt.Sprintf("xor-4KiB/%s", name), func(b *testing.B) {
			b.SetBytes(int64(len(dst)))
			for i := 0; i < b.N; i++ {
				AddSlice(dst, src)
			}
		})
		restore()
	}
}
