package gf256

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync/atomic"
)

// A kernel is one implementation of the three general-case slice passes.
// The degenerate multipliers (0 and 1) never reach a pass: the public entry
// points in kernels.go peel them off first, so passes may assume c ∉ {0, 1}
// (x ≠ 0 for mulXorPass) and len(dst) == len(src).
type kernel struct {
	name string
	// mulPass sets dst[i] = c*src[i].
	mulPass func(dst, src []byte, c byte)
	// addMulPass accumulates dst[i] ^= c*src[i].
	addMulPass func(dst, src []byte, c byte)
	// mulXorPass computes the Horner step acc[i] = x*acc[i] ^ coeff[i].
	mulXorPass func(acc, coeff []byte, x byte)
	// xorPass accumulates dst[i] ^= src[i] — field addition, the pad fold
	// of the XOR scheme. No table is involved, but the pass still belongs
	// to the kernel: the vector implementation moves 32 bytes per XOR.
	xorPass func(dst, src []byte)
}

// kern is the active kernel, selected exactly once by selectKernel at the
// end of buildTables — after every table a kernel may read is final — and
// swapped only by ForceKernel (tests and benchmarks). An atomic pointer
// makes the test-time swap safe under -race; the hot path pays one atomic
// load per slice call, amortized over the whole block.
var kern atomic.Pointer[kernel]

// kernelTable enumerates every kernel compiled into this binary, fastest
// first. Selection walks it in order and takes the first available one;
// availability is a capability check (e.g. AVX2 + OS vector-state support
// for the amd64 assembly), evaluated once.
var kernelTable = []struct {
	k         *kernel
	available func() bool
}{
	{&vectorKernel, vectorAvailable},
	{&wordKernel, wordAvailable},
	{&scalarKernel, func() bool { return true }},
}

var scalarKernel = kernel{
	name:       "scalar",
	mulPass:    scalarMulPass,
	addMulPass: scalarAddMulPass,
	mulXorPass: scalarMulXorPass,
	xorPass:    scalarXorPass,
}

// kernelEnv is the override knob, read once at init: REMICSS_GFKERNEL names
// the kernel to use (scalar, word, or the platform vector kernel), in the
// spirit of GODEBUG=cpu.all=off. CI runs a job leg with the fallbacks forced
// so every compiled path stays tested; naming an unavailable or unknown
// kernel is a hard failure, not a silent fallback, because a typo here would
// otherwise un-test the path it meant to pin.
const kernelEnv = "REMICSS_GFKERNEL"

// selectKernel installs the fastest available kernel, honoring kernelEnv.
// Called exactly once from buildTables.
func selectKernel() {
	if want := os.Getenv(kernelEnv); want != "" {
		if err := forceKernel(want); err != nil {
			panic("gf256: " + kernelEnv + ": " + err.Error())
		}
		return
	}
	for _, e := range kernelTable {
		if e.available() {
			kern.Store(e.k)
			return
		}
	}
	kern.Store(&scalarKernel) // unreachable: scalar is always available
}

// KernelName reports the name of the active kernel ("scalar", "word", or a
// platform vector kernel such as "avx2"), for logs and bench reports.
func KernelName() string { return kern.Load().name }

// Kernels lists the kernels available on this machine, sorted by name. Every
// listed kernel can be activated with ForceKernel; the differential tests
// iterate this list so each compiled path is pinned against the scalar
// reference no matter which one init selected.
func Kernels() []string {
	var names []string
	for _, e := range kernelTable {
		if e.available() {
			names = append(names, e.k.name)
		}
	}
	sort.Strings(names)
	return names
}

// ForceKernel activates the named kernel and returns a function restoring
// the previous one. It exists for tests and benchmarks that must pin or
// compare specific implementations; production code selects once at init.
// Concurrent kernel use during a swap is safe (the pointer is atomic) but
// which kernel a racing call gets is unspecified, so callers should quiesce
// other field work around a swap.
func ForceKernel(name string) (restore func(), err error) {
	prev := kern.Load()
	if err := forceKernel(name); err != nil {
		return nil, err
	}
	return func() { kern.Store(prev) }, nil
}

// forceKernel installs the named kernel if it is compiled in and available.
func forceKernel(name string) error {
	for _, e := range kernelTable {
		if e.k.name != name {
			continue
		}
		if !e.available() {
			return fmt.Errorf("kernel %q is not available on this machine", name)
		}
		kern.Store(e.k)
		return nil
	}
	return fmt.Errorf("unknown kernel %q (compiled in: %v)", name, compiledKernels())
}

// compiledKernels lists every kernel in the table, available or not.
func compiledKernels() []string {
	names := make([]string, 0, len(kernelTable))
	for _, e := range kernelTable {
		names = append(names, e.k.name)
	}
	return names
}

// wordAvailable gates the pure-Go word-sliced kernel on 64-bit targets: its
// wide product tables trade 128 KiB per multiplier for 16-bit lookups, a
// trade that only pays when uint64 word-slicing halves the load count.
func wordAvailable() bool { return strconv.IntSize == 64 }
