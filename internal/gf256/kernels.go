package gf256

// Slice kernels: bulk field operations over whole byte slices. These exist
// because the Shamir hot path (internal/shamir) evaluates one polynomial per
// secret byte at the same x for every share — restructured block-wise, that
// is a handful of constant-times-slice passes instead of len(secret)·k
// scalar Horner steps. Each kernel multiplies through a precomputed 256-byte
// row of the full multiplication table, so the inner loop is one table load
// and one XOR per byte with no log/exp indirection and no zero branches.
//
// All kernels require len(src) == len(dst) (or len(acc) == len(coeff)) and
// panic otherwise: a length mismatch is a programming error in the caller's
// buffer management, never a runtime condition.

// mulTable[c] is the multiplication-by-c row: mulTable[c][a] = c*a. 64 KiB,
// built once at init from the log/exp tables; row access makes the slice
// kernels branch-free per byte.
var mulTable [256][256]byte

func init() {
	// expTable/logTable are filled by the init in gf256.go; Go runs init
	// functions within a package in source-file order (gf256.go < kernels.go),
	// so the scalar tables are ready here.
	for c := 1; c < 256; c++ {
		row := &mulTable[c]
		logC := int(logTable[c])
		for a := 1; a < 256; a++ {
			row[a] = expTable[logC+int(logTable[a])]
		}
	}
}

// MulSlice sets dst[i] = c * src[i] for every i. dst and src may be the
// same slice (in-place scaling); partial overlap is not supported.
//
//remicss:noalloc
func MulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSlice length mismatch")
	}
	if c == 0 {
		clear(dst)
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	row := &mulTable[c]
	for i, s := range src {
		dst[i] = row[s]
	}
}

// AddMulSlice accumulates dst[i] ^= c * src[i] for every i — the
// scaled-accumulate step of Lagrange reconstruction (secret += w_i · Y_i).
// dst and src must not overlap.
//
//remicss:noalloc
func AddMulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: AddMulSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		AddSlice(dst, src)
		return
	}
	row := &mulTable[c]
	for i, s := range src {
		dst[i] ^= row[s]
	}
}

// MulAddSlice performs one block Horner step: acc[i] = acc[i]*x ^ coeff[i]
// for every i. Iterated from the highest-degree coefficient slice down to
// the constant term, it evaluates len(acc) polynomials at x in parallel.
// acc and coeff must not overlap.
//
//remicss:noalloc
func MulAddSlice(acc []byte, x byte, coeff []byte) {
	if len(acc) != len(coeff) {
		panic("gf256: MulAddSlice length mismatch")
	}
	if x == 0 {
		copy(acc, coeff)
		return
	}
	row := &mulTable[x]
	for i, a := range acc {
		acc[i] = row[a] ^ coeff[i]
	}
}

// AddSlice accumulates dst[i] ^= src[i] for every i (field addition is XOR).
// The loop is written over 8-byte words where possible; dst and src must not
// partially overlap (dst == src zeroes dst, which is correct but useless).
//
//remicss:noalloc
func AddSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: AddSlice length mismatch")
	}
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		// The compiler merges each 8-byte group into single word loads and
		// stores on little-endian targets.
		dst[i+0] ^= src[i+0]
		dst[i+1] ^= src[i+1]
		dst[i+2] ^= src[i+2]
		dst[i+3] ^= src[i+3]
		dst[i+4] ^= src[i+4]
		dst[i+5] ^= src[i+5]
		dst[i+6] ^= src[i+6]
		dst[i+7] ^= src[i+7]
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}
