package gf256

// Slice kernels: bulk field operations over whole byte slices. These exist
// because the Shamir hot path (internal/shamir) evaluates one polynomial per
// secret byte at the same x for every share — restructured block-wise, that
// is a handful of constant-times-slice passes instead of len(secret)·k
// scalar Horner steps.
//
// Each public entry point validates its arguments, handles the degenerate
// multipliers (0 and 1), and hands the general case to the kernel selected
// at init (see kernel_select.go): the scalar 64 KiB-product-table loop, the
// pure-Go word-sliced kernel processing 8 bytes per step, or the amd64
// vpshufb kernel working from the 16-entry nibble tables. All kernels are
// bit-identical by construction and pinned so by the differential tests.
//
// All kernels require len(src) == len(dst) (or len(acc) == len(coeff)) and
// panic otherwise: a length mismatch is a programming error in the caller's
// buffer management, never a runtime condition.

// mulTable[c] is the multiplication-by-c row: mulTable[c][a] = c*a. 64 KiB,
// built by initTables (gf256.go) together with the log/exp tables it is
// derived from; row access makes the scalar kernel branch-free per byte and
// seeds the nibble and wide tables the faster kernels use.
var mulTable [256][256]byte

// nibTab[c] packs the two 16-entry nibble product tables for c — low-nibble
// products in [0,16), high-nibble products in [16,32) — the layout the
// vector kernel broadcasts into registers (one vpshufb per nibble) and the
// wide-table builder expands from. 8 KiB total, built by initTables.
var nibTab [256][32]byte

// MulSlice sets dst[i] = c * src[i] for every i. dst and src may be the
// same slice (in-place scaling); partial overlap is not supported.
//
//remicss:noalloc
func MulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSlice length mismatch")
	}
	if c == 0 {
		clear(dst)
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	kern.Load().mulPass(dst, src, c)
}

// AddMulSlice accumulates dst[i] ^= c * src[i] for every i — the
// scaled-accumulate step of Lagrange reconstruction (secret += w_i · Y_i).
// dst and src must not overlap.
//
//remicss:noalloc
func AddMulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: AddMulSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		AddSlice(dst, src)
		return
	}
	kern.Load().addMulPass(dst, src, c)
}

// MulAddSlice performs one block Horner step: acc[i] = acc[i]*x ^ coeff[i]
// for every i. Iterated from the highest-degree coefficient slice down to
// the constant term, it evaluates len(acc) polynomials at x in parallel.
// acc and coeff must not overlap.
//
//remicss:noalloc
func MulAddSlice(acc []byte, x byte, coeff []byte) {
	if len(acc) != len(coeff) {
		panic("gf256: MulAddSlice length mismatch")
	}
	if x == 0 {
		copy(acc, coeff)
		return
	}
	kern.Load().mulXorPass(acc, coeff, x)
}

// HornerBlock evaluates the window [lo, hi) of a batch of polynomials at x,
// fused across every coefficient block: with blocks ordered highest-degree
// coefficient first and ending with the constant term, it computes
//
//	dst[i] = (...((blocks[0][i]*x ^ blocks[1][i])*x ^ blocks[2][i])...)*x ^ blocks[last][i]
//
// for i in [lo, hi). Iterating lo over L1-sized tiles and, inside each tile,
// over every evaluation point keeps the coefficient tile cache-resident while
// all shares are produced from it — the loop-interchanged form of calling
// MulAddSlice once per block over the full length. dst must not overlap any
// block; every block must cover [lo, hi).
//
//remicss:noalloc
func HornerBlock(dst []byte, x byte, blocks [][]byte, lo, hi int) {
	if len(blocks) == 0 {
		panic("gf256: HornerBlock with no coefficient blocks")
	}
	if lo < 0 || hi < lo || hi > len(dst) {
		panic("gf256: HornerBlock window out of range")
	}
	for _, b := range blocks {
		if len(b) < hi {
			panic("gf256: HornerBlock coefficient block shorter than window")
		}
	}
	if x == 0 {
		// Every higher-degree term vanishes; the value is the constant term.
		copy(dst[lo:hi], blocks[len(blocks)-1][lo:hi])
		return
	}
	copy(dst[lo:hi], blocks[0][lo:hi])
	step := kern.Load().mulXorPass
	for _, c := range blocks[1:] {
		step(dst[lo:hi], c[lo:hi], x)
	}
}

// AddSlice accumulates dst[i] ^= src[i] for every i (field addition is XOR)
// through the active kernel's xor pass — the XOR scheme folds every pad
// through here, so the pass is as hot as the multiply kernels. dst and src
// must not partially overlap (dst == src zeroes dst, which is correct but
// useless).
//
//remicss:noalloc
func AddSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: AddSlice length mismatch")
	}
	if len(dst) == 0 {
		return
	}
	kern.Load().xorPass(dst, src)
}

// scalarXorPass accumulates dst[i] ^= src[i] in 8-byte groups.
//
//remicss:noalloc
func scalarXorPass(dst, src []byte) {
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		// The compiler merges each 8-byte group into single word loads and
		// stores on little-endian targets.
		dst[i+0] ^= src[i+0]
		dst[i+1] ^= src[i+1]
		dst[i+2] ^= src[i+2]
		dst[i+3] ^= src[i+3]
		dst[i+4] ^= src[i+4]
		dst[i+5] ^= src[i+5]
		dst[i+6] ^= src[i+6]
		dst[i+7] ^= src[i+7]
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}

// Scalar kernel passes: one 64 KiB-table load and one XOR per byte against a
// pinned 256-byte row, 8-way unrolled. This is the reference implementation
// every other kernel is differentially pinned against, and the fallback when
// neither the word-sliced nor the vector path is selected.

// scalarMulPass sets dst[i] = c*src[i]; c is never 0 or 1 here.
//
//remicss:noalloc
func scalarMulPass(dst, src []byte, c byte) {
	row := &mulTable[c]
	for i, s := range src {
		dst[i] = row[s]
	}
}

// scalarAddMulPass accumulates dst[i] ^= c*src[i]; c is never 0 or 1 here.
//
//remicss:noalloc
func scalarAddMulPass(dst, src []byte, c byte) {
	row := &mulTable[c]
	for i, s := range src {
		dst[i] ^= row[s]
	}
}

// scalarMulXorPass computes acc[i] = x*acc[i] ^ coeff[i]; x is never 0 here.
//
//remicss:noalloc
func scalarMulXorPass(acc, coeff []byte, x byte) {
	row := &mulTable[x]
	n := len(acc) &^ 7
	for i := 0; i < n; i += 8 {
		acc[i+0] = row[acc[i+0]] ^ coeff[i+0]
		acc[i+1] = row[acc[i+1]] ^ coeff[i+1]
		acc[i+2] = row[acc[i+2]] ^ coeff[i+2]
		acc[i+3] = row[acc[i+3]] ^ coeff[i+3]
		acc[i+4] = row[acc[i+4]] ^ coeff[i+4]
		acc[i+5] = row[acc[i+5]] ^ coeff[i+5]
		acc[i+6] = row[acc[i+6]] ^ coeff[i+6]
		acc[i+7] = row[acc[i+7]] ^ coeff[i+7]
	}
	for i := n; i < len(acc); i++ {
		acc[i] = row[acc[i]] ^ coeff[i]
	}
}
