package gf256

// Slice kernels: bulk field operations over whole byte slices. These exist
// because the Shamir hot path (internal/shamir) evaluates one polynomial per
// secret byte at the same x for every share — restructured block-wise, that
// is a handful of constant-times-slice passes instead of len(secret)·k
// scalar Horner steps. Each kernel multiplies through a precomputed 256-byte
// row of the full multiplication table, so the inner loop is one table load
// and one XOR per byte with no log/exp indirection and no zero branches.
//
// All kernels require len(src) == len(dst) (or len(acc) == len(coeff)) and
// panic otherwise: a length mismatch is a programming error in the caller's
// buffer management, never a runtime condition.

// mulTable[c] is the multiplication-by-c row: mulTable[c][a] = c*a. 64 KiB,
// built by initTables (gf256.go) together with the log/exp tables it is
// derived from; row access makes the slice kernels branch-free per byte.
var mulTable [256][256]byte

// MulSlice sets dst[i] = c * src[i] for every i. dst and src may be the
// same slice (in-place scaling); partial overlap is not supported.
//
//remicss:noalloc
func MulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSlice length mismatch")
	}
	if c == 0 {
		clear(dst)
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	row := &mulTable[c]
	for i, s := range src {
		dst[i] = row[s]
	}
}

// AddMulSlice accumulates dst[i] ^= c * src[i] for every i — the
// scaled-accumulate step of Lagrange reconstruction (secret += w_i · Y_i).
// dst and src must not overlap.
//
//remicss:noalloc
func AddMulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: AddMulSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		AddSlice(dst, src)
		return
	}
	row := &mulTable[c]
	for i, s := range src {
		dst[i] ^= row[s]
	}
}

// MulAddSlice performs one block Horner step: acc[i] = acc[i]*x ^ coeff[i]
// for every i. Iterated from the highest-degree coefficient slice down to
// the constant term, it evaluates len(acc) polynomials at x in parallel.
// acc and coeff must not overlap.
//
//remicss:noalloc
func MulAddSlice(acc []byte, x byte, coeff []byte) {
	if len(acc) != len(coeff) {
		panic("gf256: MulAddSlice length mismatch")
	}
	if x == 0 {
		copy(acc, coeff)
		return
	}
	row := &mulTable[x]
	for i, a := range acc {
		acc[i] = row[a] ^ coeff[i]
	}
}

// HornerBlock evaluates the window [lo, hi) of a batch of polynomials at x,
// fused across every coefficient block: with blocks ordered highest-degree
// coefficient first and ending with the constant term, it computes
//
//	dst[i] = (...((blocks[0][i]*x ^ blocks[1][i])*x ^ blocks[2][i])...)*x ^ blocks[last][i]
//
// for i in [lo, hi). Iterating lo over L1-sized tiles and, inside each tile,
// over every evaluation point keeps the coefficient tile cache-resident while
// all shares are produced from it — the loop-interchanged form of calling
// MulAddSlice once per block over the full length. The inner loop is 8-way
// unrolled: one table load and one XOR per byte against a single pinned row.
// dst must not overlap any block; every block must cover [lo, hi).
//
//remicss:noalloc
func HornerBlock(dst []byte, x byte, blocks [][]byte, lo, hi int) {
	if len(blocks) == 0 {
		panic("gf256: HornerBlock with no coefficient blocks")
	}
	if lo < 0 || hi < lo || hi > len(dst) {
		panic("gf256: HornerBlock window out of range")
	}
	for _, b := range blocks {
		if len(b) < hi {
			panic("gf256: HornerBlock coefficient block shorter than window")
		}
	}
	if x == 0 {
		// Every higher-degree term vanishes; the value is the constant term.
		copy(dst[lo:hi], blocks[len(blocks)-1][lo:hi])
		return
	}
	copy(dst[lo:hi], blocks[0][lo:hi])
	row := &mulTable[x]
	for _, c := range blocks[1:] {
		d, s := dst[lo:hi], c[lo:hi]
		n := len(d) &^ 7
		for i := 0; i < n; i += 8 {
			d[i+0] = row[d[i+0]] ^ s[i+0]
			d[i+1] = row[d[i+1]] ^ s[i+1]
			d[i+2] = row[d[i+2]] ^ s[i+2]
			d[i+3] = row[d[i+3]] ^ s[i+3]
			d[i+4] = row[d[i+4]] ^ s[i+4]
			d[i+5] = row[d[i+5]] ^ s[i+5]
			d[i+6] = row[d[i+6]] ^ s[i+6]
			d[i+7] = row[d[i+7]] ^ s[i+7]
		}
		for i := n; i < len(d); i++ {
			d[i] = row[d[i]] ^ s[i]
		}
	}
}

// AddSlice accumulates dst[i] ^= src[i] for every i (field addition is XOR).
// The loop is written over 8-byte words where possible; dst and src must not
// partially overlap (dst == src zeroes dst, which is correct but useless).
//
//remicss:noalloc
func AddSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: AddSlice length mismatch")
	}
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		// The compiler merges each 8-byte group into single word loads and
		// stores on little-endian targets.
		dst[i+0] ^= src[i+0]
		dst[i+1] ^= src[i+1]
		dst[i+2] ^= src[i+2]
		dst[i+3] ^= src[i+3]
		dst[i+4] ^= src[i+4]
		dst[i+5] ^= src[i+5]
		dst[i+6] ^= src[i+6]
		dst[i+7] ^= src[i+7]
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}
