//go:build amd64 && !purego

#include "textflag.h"

// GF(2^8) multiply-by-constant kernels, vpshufb idiom: for each source byte
// b, the product c*b = lo[b & 0x0f] ^ hi[b >> 4], where lo and hi are the
// 16-entry nibble product tables for c (nibTab[c][0:16] and nibTab[c][16:32]
// in Go). Both tables are broadcast across the two 128-bit lanes of a YMM
// register, so one VPSHUFB resolves 32 lookups. Callers guarantee n is a
// positive multiple of 32.
//
// Register plan (identical in all three routines):
//   Y4  low-nibble product table, both lanes
//   Y5  high-nibble product table, both lanes
//   Y6  0x0f byte mask
//   Y0  data / low nibbles / low products
//   Y1  high nibbles / high products

DATA nibMask<>+0x00(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+0x08(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+0x10(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+0x18(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibMask<>(SB), RODATA|NOPTR, $32

// func gfMulAVX2(tab *byte, dst, src *byte, n int)
// dst[i] = c*src[i]
TEXT ·gfMulAVX2(SB), NOSPLIT, $0-32
	MOVQ tab+0(FP), AX
	MOVQ dst+8(FP), DI
	MOVQ src+16(FP), SI
	MOVQ n+24(FP), CX
	VBROADCASTI128 (AX), Y4
	VBROADCASTI128 16(AX), Y5
	VMOVDQU nibMask<>(SB), Y6

mulLoop:
	VMOVDQU (SI), Y0
	VPSRLQ  $4, Y0, Y1
	VPAND   Y6, Y0, Y0
	VPAND   Y6, Y1, Y1
	VPSHUFB Y0, Y4, Y0
	VPSHUFB Y1, Y5, Y1
	VPXOR   Y1, Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     mulLoop

	VZEROUPPER
	RET

// func gfAddMulAVX2(tab *byte, dst, src *byte, n int)
// dst[i] ^= c*src[i]
TEXT ·gfAddMulAVX2(SB), NOSPLIT, $0-32
	MOVQ tab+0(FP), AX
	MOVQ dst+8(FP), DI
	MOVQ src+16(FP), SI
	MOVQ n+24(FP), CX
	VBROADCASTI128 (AX), Y4
	VBROADCASTI128 16(AX), Y5
	VMOVDQU nibMask<>(SB), Y6

addMulLoop:
	VMOVDQU (SI), Y0
	VPSRLQ  $4, Y0, Y1
	VPAND   Y6, Y0, Y0
	VPAND   Y6, Y1, Y1
	VPSHUFB Y0, Y4, Y0
	VPSHUFB Y1, Y5, Y1
	VPXOR   Y1, Y0, Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     addMulLoop

	VZEROUPPER
	RET

// func gfMulXorAVX2(tab *byte, acc, coeff *byte, n int)
// acc[i] = x*acc[i] ^ coeff[i]  (the fused Horner step)
TEXT ·gfMulXorAVX2(SB), NOSPLIT, $0-32
	MOVQ tab+0(FP), AX
	MOVQ acc+8(FP), DI
	MOVQ coeff+16(FP), SI
	MOVQ n+24(FP), CX
	VBROADCASTI128 (AX), Y4
	VBROADCASTI128 16(AX), Y5
	VMOVDQU nibMask<>(SB), Y6

mulXorLoop:
	VMOVDQU (DI), Y0
	VPSRLQ  $4, Y0, Y1
	VPAND   Y6, Y0, Y0
	VPAND   Y6, Y1, Y1
	VPSHUFB Y0, Y4, Y0
	VPSHUFB Y1, Y5, Y1
	VPXOR   Y1, Y0, Y0
	VPXOR   (SI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     mulXorLoop

	VZEROUPPER
	RET

// func gfXorAVX2(dst, src *byte, n int)
// dst[i] ^= src[i] — plain field addition, no nibble tables. Callers
// guarantee n is a positive multiple of 32.
TEXT ·gfXorAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

xorLoop:
	VMOVDQU (SI), Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     xorLoop

	VZEROUPPER
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
