//go:build amd64 && !purego

package gf256

// The amd64 vector kernel: the vpshufb idiom used by production
// Reed-Solomon codecs. The two 16-entry nibble tables for the multiplier
// (nibTab[c]) are broadcast into one YMM register each; every 32-byte step
// splits the data into low and high nibbles, resolves both through a single
// VPSHUFB each, and XORs the halves — two in-register shuffles per 32
// bytes where the scalar kernel issues 32 dependent table loads. The pure-Go
// word-sliced path stalls around 2.4 GB/s per pass on current hardware,
// short of the ≥5× Shamir split target, which is what justifies carrying
// assembly here (see DESIGN §13).
//
// The assembly handles whole 32-byte groups; the Go wrappers finish the
// ragged tail with the scalar row so every length is bit-identical to the
// reference.

// Assembly routines (kernels_amd64.s). tab points at nibTab[c] (low-nibble
// products in tab[0:16], high-nibble products in tab[16:32]); n is a
// multiple of 32.
//
//go:noescape
func gfMulAVX2(tab *byte, dst, src *byte, n int)

//go:noescape
func gfAddMulAVX2(tab *byte, dst, src *byte, n int)

//go:noescape
func gfMulXorAVX2(tab *byte, acc, coeff *byte, n int)

//go:noescape
func gfXorAVX2(dst, src *byte, n int)

// cpuid executes CPUID with the given leaf and subleaf (kernels_amd64.s).
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (kernels_amd64.s).
func xgetbv() (eax, edx uint32)

var vectorKernel = kernel{
	name:       "avx2",
	mulPass:    avx2MulPass,
	addMulPass: avx2AddMulPass,
	mulXorPass: avx2MulXorPass,
	xorPass:    avx2XorPass,
}

// haveAVX2 is probed once at package init, before kernel selection runs.
var haveAVX2 = detectAVX2()

// vectorAvailable gates the avx2 kernel on CPU support and on the OS having
// enabled YMM state (XGETBV), the same checks the runtime's cpu package
// performs.
func vectorAvailable() bool { return haveAVX2 }

// detectAVX2 checks OSXSAVE+AVX (leaf 1), OS XMM/YMM state enablement
// (XCR0 bits 1 and 2), and AVX2 itself (leaf 7 EBX bit 5).
func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	if eax, _ := xgetbv(); eax&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0
}

// avx2MulPass sets dst[i] = c*src[i]; c ∉ {0, 1}.
//
//remicss:noalloc
func avx2MulPass(dst, src []byte, c byte) {
	n := len(dst) &^ 31
	if n > 0 {
		gfMulAVX2(&nibTab[c][0], &dst[0], &src[0], n)
	}
	row := &mulTable[c]
	for i := n; i < len(dst); i++ {
		dst[i] = row[src[i]]
	}
}

// avx2AddMulPass accumulates dst[i] ^= c*src[i]; c ∉ {0, 1}.
//
//remicss:noalloc
func avx2AddMulPass(dst, src []byte, c byte) {
	n := len(dst) &^ 31
	if n > 0 {
		gfAddMulAVX2(&nibTab[c][0], &dst[0], &src[0], n)
	}
	row := &mulTable[c]
	for i := n; i < len(dst); i++ {
		dst[i] ^= row[src[i]]
	}
}

// avx2XorPass accumulates dst[i] ^= src[i], 32 bytes per VPXOR.
//
//remicss:noalloc
func avx2XorPass(dst, src []byte) {
	n := len(dst) &^ 31
	if n > 0 {
		gfXorAVX2(&dst[0], &src[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}

// avx2MulXorPass computes acc[i] = x*acc[i] ^ coeff[i]; x ≠ 0.
//
//remicss:noalloc
func avx2MulXorPass(acc, coeff []byte, x byte) {
	n := len(acc) &^ 31
	if n > 0 {
		gfMulXorAVX2(&nibTab[x][0], &acc[0], &coeff[0], n)
	}
	row := &mulTable[x]
	for i := n; i < len(acc); i++ {
		acc[i] = row[acc[i]] ^ coeff[i]
	}
}
