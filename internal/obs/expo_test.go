package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden exposition files")

// goldenRegistry builds a registry with every series kind, awkward label
// values (escaping), and registration order chosen to prove exposition
// sorts: series are registered most-sorted-last.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Gauge("zz_pending").Set(-2)
	h := r.Histogram("share_delay_ns", []int64{1000, 2000, 5000})
	h.Observe(500)
	h.Observe(1500)
	h.Observe(1500)
	h.Observe(9999)
	r.Counter("shares_total", Label{Key: "channel", Value: "1"}).Add(7)
	r.Counter("shares_total", Label{Key: "channel", Value: "0"}).Add(3)
	r.Counter("awkward_total", Label{Key: "path", Value: "a\\b\"c\nd"}).Inc()
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch (run with -update to regenerate)\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestWriteTextGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.txt", buf.Bytes())
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.json", buf.Bytes())
}

// TestExpositionOrderIndependent registers the same series in two different
// orders and requires byte-identical exposition.
func TestExpositionOrderIndependent(t *testing.T) {
	build := func(reverse bool) *Registry {
		r := NewRegistry()
		names := []string{"a_total", "b_total", "c_total"}
		if reverse {
			for i := len(names) - 1; i >= 0; i-- {
				r.Counter(names[i], Label{Key: "ch", Value: "1"}).Inc()
				r.Counter(names[i], Label{Key: "ch", Value: "0"}).Inc()
			}
		} else {
			for _, n := range names {
				r.Counter(n, Label{Key: "ch", Value: "0"}).Inc()
				r.Counter(n, Label{Key: "ch", Value: "1"}).Inc()
			}
		}
		return r
	}
	var fwd, rev bytes.Buffer
	if err := build(false).WriteText(&fwd); err != nil {
		t.Fatal(err)
	}
	if err := build(true).WriteText(&rev); err != nil {
		t.Fatal(err)
	}
	if fwd.String() != rev.String() {
		t.Errorf("text exposition depends on registration order:\n%s\nvs\n%s", fwd.String(), rev.String())
	}
}

func TestEscapeLabel(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
		{"", ""},
	} {
		if got := escapeLabel(tc.in); got != tc.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
