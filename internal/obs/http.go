package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewHandler returns an HTTP handler exposing the registry and (when
// non-nil) the trace:
//
//	/metrics       text exposition (WriteText)
//	/metrics.json  JSON exposition (WriteJSON)
//	/trace         recent trace events as JSON, oldest first
//	/debug/pprof/  the standard net/http/pprof profiles
//	/healthz       liveness probe ("ok")
//
// pprof is mounted explicitly on the returned mux, not on
// http.DefaultServeMux, so importing this package never changes global
// handler state.
func NewHandler(r *Registry, t *Trace) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		type jsonEvent struct {
			Kind    string        `json:"kind"`
			Channel int32         `json:"channel"`
			At      time.Duration `json:"at_ns"`
			Seq     uint64        `json:"seq"`
			Value   int64         `json:"value"`
		}
		events := t.Snapshot(nil)
		out := make([]jsonEvent, len(events))
		for i, ev := range events {
			out[i] = jsonEvent{
				Kind: ev.Kind.String(), Channel: ev.Channel,
				At: ev.At, Seq: ev.Seq, Value: ev.Value,
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Recorded uint64      `json:"recorded"`
			Events   []jsonEvent `json:"events"`
		}{Recorded: t.Recorded(), Events: out})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running metrics endpoint started by StartServer.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// StartServer binds addr and serves NewHandler(r, t) in a background
// goroutine, returning immediately. The caller owns the returned server
// and should Close it on shutdown.
func StartServer(addr string, r *Registry, t *Trace) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %q: %w", addr, err)
	}
	srv := &http.Server{Handler: NewHandler(r, t)}
	go srv.Serve(ln)
	return &Server{srv: srv, ln: ln}, nil
}
