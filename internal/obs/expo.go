package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"strings"
)

// SeriesSnapshot is one metric series read at a point in time, the unit of
// exposition.
type SeriesSnapshot struct {
	// Name is the metric name.
	Name string
	// Type is "counter", "gauge", or "histogram".
	Type string
	// Labels are the series labels, sorted by key.
	Labels []Label
	// Value holds the counter or gauge value; zero for histograms.
	Value int64
	// Hist holds the histogram state; nil for counters and gauges.
	Hist *HistogramSnapshot
}

// Gather snapshots every registered series, sorted by name then label set,
// so exposition output is stable across runs and registration orders.
func (r *Registry) Gather() []SeriesSnapshot {
	r.mu.Lock()
	series := make([]*series, len(r.series))
	copy(series, r.series)
	r.mu.Unlock()

	out := make([]SeriesSnapshot, 0, len(series))
	for _, s := range series {
		snap := SeriesSnapshot{Name: s.name, Type: s.kind.String(), Labels: s.labels}
		switch s.kind {
		case kindCounter:
			snap.Value = s.counter.Value()
		case kindGauge:
			snap.Value = s.gauge.Value()
		case kindHistogram:
			h := s.hist.Snapshot()
			snap.Hist = &h
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelsLess(out[i].Labels, out[j].Labels)
	})
	return out
}

// labelsLess orders label sets lexicographically by (key, value) pairs.
func labelsLess(a, b []Label) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i].Key != b[i].Key {
			return a[i].Key < b[i].Key
		}
		if a[i].Value != b[i].Value {
			return a[i].Value < b[i].Value
		}
	}
	return len(a) < len(b)
}

// escapeLabel escapes a label value for the text format: backslash, double
// quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// writeLabels renders {k="v",...} including a trailing extra label when
// extraKey is non-empty (used for histogram le buckets).
func writeLabels(w *bufio.Writer, labels []Label, extraKey, extraVal string) {
	if len(labels) == 0 && extraKey == "" {
		return
	}
	w.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(l.Key)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(l.Value))
		w.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(extraKey)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(extraVal))
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// WriteText renders every series in a Prometheus-style text format:
// one "# TYPE" header per metric name, then one line per series (histogram
// series expand into cumulative _bucket lines plus _sum and _count).
// Output order is deterministic.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastName := ""
	for _, s := range r.Gather() {
		if s.Name != lastName {
			bw.WriteString("# TYPE ")
			bw.WriteString(s.Name)
			bw.WriteByte(' ')
			bw.WriteString(s.Type)
			bw.WriteByte('\n')
			lastName = s.Name
		}
		switch s.Type {
		case "histogram":
			var cum int64
			for i, c := range s.Hist.Counts {
				cum += c
				le := "+Inf"
				if i < len(s.Hist.Bounds) {
					le = strconv.FormatInt(s.Hist.Bounds[i], 10)
				}
				bw.WriteString(s.Name)
				bw.WriteString("_bucket")
				writeLabels(bw, s.Labels, "le", le)
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatInt(cum, 10))
				bw.WriteByte('\n')
			}
			bw.WriteString(s.Name)
			bw.WriteString("_sum")
			writeLabels(bw, s.Labels, "", "")
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(s.Hist.Sum, 10))
			bw.WriteByte('\n')
			bw.WriteString(s.Name)
			bw.WriteString("_count")
			writeLabels(bw, s.Labels, "", "")
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(s.Hist.Count, 10))
			bw.WriteByte('\n')
		default:
			bw.WriteString(s.Name)
			writeLabels(bw, s.Labels, "", "")
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(s.Value, 10))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// jsonSeries is the JSON exposition shape of one series. Labels marshal as
// an object whose keys encoding/json emits in sorted order, keeping output
// deterministic.
type jsonSeries struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  *int64            `json:"value,omitempty"`
	Count  *int64            `json:"count,omitempty"`
	Sum    *int64            `json:"sum,omitempty"`
	Bounds []int64           `json:"bounds,omitempty"`
	Counts []int64           `json:"counts,omitempty"`
}

// WriteJSON renders every series as one JSON document:
// {"metrics":[...]}, deterministically ordered, indented for reading.
func (r *Registry) WriteJSON(w io.Writer) error {
	snaps := r.Gather()
	doc := struct {
		Metrics []jsonSeries `json:"metrics"`
	}{Metrics: make([]jsonSeries, 0, len(snaps))}
	for _, s := range snaps {
		js := jsonSeries{Name: s.Name, Type: s.Type}
		if len(s.Labels) > 0 {
			js.Labels = make(map[string]string, len(s.Labels))
			for _, l := range s.Labels {
				js.Labels[l.Key] = l.Value
			}
		}
		if s.Hist != nil {
			count, sum := s.Hist.Count, s.Hist.Sum
			js.Count, js.Sum = &count, &sum
			js.Bounds = s.Hist.Bounds
			js.Counts = s.Hist.Counts
		} else {
			v := s.Value
			js.Value = &v
		}
		doc.Metrics = append(doc.Metrics, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
