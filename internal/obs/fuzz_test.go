package obs

import (
	"encoding/binary"
	"testing"
)

// FuzzHistogram drives a histogram (and a merge copy) through an arbitrary
// observation sequence and checks structural invariants: bucket counts sum
// to the observation count, the sum matches, quantiles are monotone in q
// and always one of the configured bounds, and merging a fuzzed histogram
// into a fresh one reproduces its contents exactly.
func FuzzHistogram(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(binary.LittleEndian.AppendUint64(nil, uint64(1<<63-1)))
	f.Fuzz(func(t *testing.T, data []byte) {
		bounds := []int64{-100, 0, 7, 1 << 10, 1 << 30, 1 << 62}
		h, err := NewHistogram(bounds)
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		var n int64
		for len(data) >= 8 {
			v := int64(binary.LittleEndian.Uint64(data[:8]))
			data = data[8:]
			h.Observe(v)
			sum += v // wrapping on purpose: the histogram's sum wraps the same way
			n++
		}
		s := h.Snapshot()
		if s.Count != n {
			t.Fatalf("count %d, want %d", s.Count, n)
		}
		if s.Sum != sum {
			t.Fatalf("sum %d, want %d", s.Sum, sum)
		}
		if len(s.Counts) != len(bounds)+1 {
			t.Fatalf("%d buckets for %d bounds", len(s.Counts), len(bounds))
		}
		var bucketTotal int64
		for _, c := range s.Counts {
			if c < 0 {
				t.Fatalf("negative bucket count %d", c)
			}
			bucketTotal += c
		}
		if bucketTotal != n {
			t.Fatalf("buckets sum to %d, want %d", bucketTotal, n)
		}

		// Quantiles: monotone in q, and always 0 (empty) or a real bound.
		isBound := func(v int64) bool {
			for _, b := range bounds {
				if v == b {
					return true
				}
			}
			return false
		}
		prev := h.Quantile(0)
		for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1} {
			got := h.Quantile(q)
			if n == 0 {
				if got != 0 {
					t.Fatalf("empty quantile(%v) = %d", q, got)
				}
				continue
			}
			if !isBound(got) {
				t.Fatalf("quantile(%v) = %d is not a configured bound", q, got)
			}
			if got < prev {
				t.Fatalf("quantile not monotone: q=%v gives %d after %d", q, got, prev)
			}
			prev = got
		}

		// Merging into a fresh histogram must reproduce the contents.
		m, err := NewHistogram(bounds)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Merge(h); err != nil {
			t.Fatal(err)
		}
		ms := m.Snapshot()
		if ms.Count != s.Count || ms.Sum != s.Sum {
			t.Fatalf("merge changed totals: %d/%d vs %d/%d", ms.Count, ms.Sum, s.Count, s.Sum)
		}
		for i := range s.Counts {
			if ms.Counts[i] != s.Counts[i] {
				t.Fatalf("merge changed bucket %d: %d vs %d", i, ms.Counts[i], s.Counts[i])
			}
		}
	})
}
