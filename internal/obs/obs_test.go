package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounterSemantics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	c.Add(0)  // ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestGaugeSemantics(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-10)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestRegistryIdempotentHandles(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", Label{Key: "channel", Value: "0"})
	b := r.Counter("x_total", Label{Key: "channel", Value: "0"})
	if a != b {
		t.Fatal("same (name, labels) must return the same handle")
	}
	other := r.Counter("x_total", Label{Key: "channel", Value: "1"})
	if a == other {
		t.Fatal("different label values must be distinct series")
	}
	// Label order must not matter.
	h1 := r.Gauge("y", Label{Key: "a", Value: "1"}, Label{Key: "b", Value: "2"})
	h2 := r.Gauge("y", Label{Key: "b", Value: "2"}, Label{Key: "a", Value: "1"})
	if h1 != h2 {
		t.Fatal("label order must not change series identity")
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("dual")
	mustPanic("kind mismatch", func() { r.Gauge("dual") })
	mustPanic("bad name", func() { r.Counter("9starts_with_digit") })
	mustPanic("empty name", func() { r.Counter("") })
	mustPanic("bad label key", func() { r.Counter("ok", Label{Key: "bad-key", Value: "v"}) })
	mustPanic("dup label key", func() {
		r.Counter("ok", Label{Key: "k", Value: "1"}, Label{Key: "k", Value: "2"})
	})
	mustPanic("empty histogram bounds", func() { r.Histogram("h", nil) })
	mustPanic("non-increasing bounds", func() { r.Histogram("h", []int64{1, 1}) })
}

func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	handles := make([]*Counter, 16)
	for i := range handles {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			handles[i] = r.Counter("contended_total")
		}()
	}
	wg.Wait()
	for _, h := range handles[1:] {
		if h != handles[0] {
			t.Fatal("concurrent registration returned distinct handles")
		}
	}
}

func TestTraceRecordAndSnapshot(t *testing.T) {
	tr := NewTrace(16)
	if tr.Cap() != 16 {
		t.Fatalf("cap = %d, want 16", tr.Cap())
	}
	for i := 0; i < 10; i++ {
		tr.Record(EventShareSent, int32(i%3), time.Duration(i), uint64(i), int64(100+i))
	}
	evs := tr.Snapshot(nil)
	if len(evs) != 10 {
		t.Fatalf("snapshot has %d events, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) || ev.Value != int64(100+i) || ev.Channel != int32(i%3) {
			t.Fatalf("event %d corrupted: %+v", i, ev)
		}
	}
	if got := tr.CountKind(EventShareSent); got != 10 {
		t.Fatalf("CountKind = %d, want 10", got)
	}
	if got := tr.CountKind(EventSymbolDelivered); got != 0 {
		t.Fatalf("CountKind(other) = %d, want 0", got)
	}
}

func TestTraceWrapKeepsNewest(t *testing.T) {
	tr := NewTrace(16)
	const total = 40
	for i := 0; i < total; i++ {
		tr.Record(EventDatagramLost, 0, 0, uint64(i), 0)
	}
	if got := tr.Recorded(); got != total {
		t.Fatalf("recorded = %d, want %d", got, total)
	}
	evs := tr.Snapshot(nil)
	if len(evs) != 16 {
		t.Fatalf("snapshot has %d events, want ring capacity 16", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(total - 16 + i); ev.Seq != want {
			t.Fatalf("event %d: seq %d, want %d (oldest-first of the newest 16)", i, ev.Seq, want)
		}
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Record(EventShareSent, 0, 0, 0, 0) // must not panic
	if tr.Recorded() != 0 || tr.Cap() != 0 {
		t.Fatal("nil trace must report zero")
	}
	if got := tr.Snapshot(nil); len(got) != 0 {
		t.Fatal("nil trace snapshot must be empty")
	}
}

func TestTraceCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultTraceCapacity}, {-5, DefaultTraceCapacity},
		{1, 16}, {17, 32}, {1024, 1024},
	} {
		if got := NewTrace(tc.in).Cap(); got != tc.want {
			t.Errorf("NewTrace(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{
		EventShareSent, EventDatagramDropped, EventDatagramLost,
		EventDatagramDelivered, EventSymbolDelivered, EventSymbolEvicted,
		EventReportReceived, EventChannelWritable, EventChannelUnwritable,
		EventPrivacyAlert,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Errorf("kind %d: bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if EventKind(99).String() != "unknown" {
		t.Error("out-of-range kind must stringify as unknown")
	}
}

// TestTraceConcurrent exercises concurrent writers and readers under the
// race detector: snapshots must never return torn events (detected here by
// a per-event invariant between Seq and Value).
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				seq := uint64(w)<<32 | uint64(i)
				tr.Record(EventShareSent, int32(w), 0, seq, int64(seq))
			}
		}()
	}
	deadline := time.Now().Add(50 * time.Millisecond)
	var buf []Event
	for time.Now().Before(deadline) {
		buf = tr.Snapshot(buf[:0])
		for _, ev := range buf {
			if ev.Value != int64(ev.Seq) {
				t.Fatalf("torn event: seq %d, value %d", ev.Seq, ev.Value)
			}
		}
	}
	close(stop)
	wg.Wait()
}
