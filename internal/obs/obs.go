// Package obs is the protocol's observability layer: an atomic metrics
// registry (monotonic counters, gauges, fixed-bucket histograms) plus a
// lock-free structured event trace (trace.go), with text and JSON
// exposition writers (expo.go) and an optional net/http handler including
// pprof (http.go).
//
// The package exists to compare a live session against the paper's model:
// the model predicts per-channel observables (risk Z, loss L, delay D,
// rate R), and the registry exposes the corresponding measured quantities
// per channel so a run can be reconciled against predictions — or against
// emulator ground truth, as internal/bench's cross-validation test does.
//
// Design constraints, in order:
//
//  1. Zero allocation on the hot path. Metric handles (*Counter, *Gauge,
//     *Histogram) are resolved once at session setup; increments and
//     observations are single atomic operations with no map lookups, no
//     locks, and no interface boxing, so instrumentation can stay
//     always-on inside //remicss:noalloc functions.
//  2. Safe for concurrent use. Handles may be shared freely across
//     goroutines; registration is serialized by the registry mutex and
//     idempotent (same name and labels return the same handle), so
//     several components can meet in one registry.
//  3. Pure stdlib, deterministic exposition. Series are ordered by name
//     and label set, so golden-file tests and scrapers see stable output.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension attached to a metric series, e.g.
// {Key: "channel", Value: "2"}.
type Label struct {
	// Key names the dimension. Keys must match [a-zA-Z_][a-zA-Z0-9_]*.
	Key string
	// Value is the dimension's value; arbitrary UTF-8, escaped on
	// exposition.
	Value string
}

// Counter is a monotonically increasing metric. The zero value is usable,
// but handles are normally obtained from Registry.Counter so they appear
// in exposition.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
//
//remicss:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n; negative n is a programming error and is
// ignored to preserve monotonicity.
//
//remicss:noalloc
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (queue depths, pending
// entries).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
//
//remicss:noalloc
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative deltas decrease it).
//
//remicss:noalloc
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// seriesKind discriminates the union inside a registered series.
type seriesKind uint8

// The three series kinds.
const (
	kindCounter seriesKind = iota
	kindGauge
	kindHistogram
)

// String names the kind for exposition.
func (k seriesKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// series is one registered (name, labels) metric.
type series struct {
	name   string
	labels []Label // sorted by key
	kind   seriesKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds metric series and hands out handles. The zero value is
// not usable; call NewRegistry. Registration (the Counter/Gauge/Histogram
// methods) is cold-path and serialized by a mutex; reading handles and the
// exposition writers take consistent-enough atomic snapshots without
// blocking writers.
type Registry struct {
	mu     sync.Mutex
	series []*series          // guarded by mu
	index  map[string]*series // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*series)}
}

// Counter returns the counter registered under name and labels, creating
// it on first use. Panics if the name is already registered as a different
// kind or the name/labels are malformed — both are programming errors at
// session setup, never data-dependent.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	s := r.register(name, labels, kindCounter, nil)
	return s.counter
}

// Gauge returns the gauge registered under name and labels, creating it on
// first use. Panic semantics match Counter.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	s := r.register(name, labels, kindGauge, nil)
	return s.gauge
}

// Histogram returns the histogram registered under name and labels,
// creating it with the given bucket upper bounds on first use (later calls
// ignore bounds and return the existing handle). Panic semantics match
// Counter; bounds must be strictly increasing and non-empty.
func (r *Registry) Histogram(name string, bounds []int64, labels ...Label) *Histogram {
	h, err := newHistogram(bounds)
	if err != nil {
		panic(fmt.Sprintf("obs: histogram %q: %v", name, err))
	}
	s := r.register(name, labels, kindHistogram, h)
	return s.hist
}

// register interns one series. hist is non-nil only for kindHistogram.
func (r *Registry) register(name string, labels []Label, kind seriesKind, hist *Histogram) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	for i, l := range sorted {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: metric %q: invalid label key %q", name, l.Key))
		}
		if i > 0 && sorted[i-1].Key == l.Key {
			panic(fmt.Sprintf("obs: metric %q: duplicate label key %q", name, l.Key))
		}
	}
	key := seriesKey(name, sorted)

	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.index[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, s.kind))
		}
		return s
	}
	s := &series{name: name, labels: sorted, kind: kind}
	switch kind {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		s.hist = hist
	}
	r.index[key] = s
	r.series = append(r.series, s)
	return s
}

// seriesKey builds the interning key for a (name, sorted labels) pair.
func seriesKey(name string, labels []Label) string {
	key := name
	for _, l := range labels {
		key += "\x00" + l.Key + "\x01" + l.Value
	}
	return key
}

// validName reports whether s is a legal metric or label-key identifier:
// [a-zA-Z_][a-zA-Z0-9_]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
