package obs

import (
	"errors"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket distribution metric. Buckets are allocated
// once at registration; Observe is a bucket search plus three atomic adds
// and never allocates, so it is safe inside //remicss:noalloc hot paths.
//
// bounds are the inclusive upper bounds of the first len(bounds) buckets,
// strictly increasing; one implicit overflow bucket catches everything
// above the last bound. A value v lands in the first bucket whose bound
// satisfies v <= bound. There is no underflow special case: any value at
// or below bounds[0] (including negative out-of-range values) lands in
// bucket 0.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count   atomic.Int64
	sum     atomic.Int64
}

// newHistogram validates bounds and preallocates buckets.
func newHistogram(bounds []int64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, errors.New("histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, errors.New("histogram bounds must be strictly increasing")
		}
	}
	h := &Histogram{
		bounds:  append([]int64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	return h, nil
}

// NewHistogram builds a standalone histogram (outside any registry) with
// the given bucket upper bounds; exposed for tests and ad-hoc measurement.
func NewHistogram(bounds []int64) (*Histogram, error) { return newHistogram(bounds) }

// Observe records one value.
//
//remicss:noalloc
func (h *Histogram) Observe(v int64) {
	// Binary search for the first bound >= v; linear would also be fine at
	// these bucket counts but the search is branch-predictable either way.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bounds returns the configured bucket upper bounds (not a copy; callers
// must not mutate).
func (h *Histogram) Bounds() []int64 { return h.bounds }

// Quantile returns an upper estimate of the q-th quantile: the upper bound
// of the bucket containing the ⌈q·count⌉-th observation. q is clamped to
// [0, 1]; q = 0 means the first observation. With zero observations it
// returns 0. Observations in the overflow bucket are reported as the last
// finite bound (an underestimate, the best a fixed-bucket histogram can
// do).
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	// count and buckets are read non-atomically with respect to each
	// other; if a concurrent Observe slipped between, report the largest
	// bound rather than failing.
	return h.bounds[len(h.bounds)-1]
}

// Merge adds other's observations into h. The two histograms must have
// identical bounds; merging self is a no-op error. Not atomic with respect
// to concurrent observations on either histogram, but never corrupts
// invariants (each bucket add is atomic).
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return errors.New("obs: merge of nil histogram")
	}
	if h == other {
		return errors.New("obs: merge of histogram into itself")
	}
	if len(h.bounds) != len(other.bounds) {
		return errors.New("obs: merge of histograms with different bucket counts")
	}
	for i := range h.bounds {
		if h.bounds[i] != other.bounds[i] {
			return errors.New("obs: merge of histograms with different bounds")
		}
	}
	for i := range other.buckets {
		h.buckets[i].Add(other.buckets[i].Load())
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	return nil
}

// HistogramSnapshot is a point-in-time copy of a histogram for exposition
// and tests. Counts[i] pairs with Bounds[i]; the final element of Counts
// is the overflow bucket.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds.
	Bounds []int64
	// Counts holds per-bucket observation counts, one longer than Bounds.
	Counts []int64
	// Count is the total number of observations.
	Count int64
	// Sum is the total of observed values.
	Sum int64
}

// Snapshot copies the histogram state. Taken bucket-by-bucket with atomic
// loads; concurrent observations may straddle the copy, so Count can
// differ from the bucket total by in-flight observations.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// DefaultDelayBounds returns exponential-ish bucket bounds for one-way
// delay histograms, in nanoseconds: 50µs up to 5s in a 1-2-5 progression.
// The range comfortably covers every emulated setup (serialization delays
// of ~100µs, propagation up to 12.5ms) and loopback UDP.
func DefaultDelayBounds() []int64 {
	return []int64{
		int64(50 * time.Microsecond),
		int64(100 * time.Microsecond),
		int64(200 * time.Microsecond),
		int64(500 * time.Microsecond),
		int64(1 * time.Millisecond),
		int64(2 * time.Millisecond),
		int64(5 * time.Millisecond),
		int64(10 * time.Millisecond),
		int64(20 * time.Millisecond),
		int64(50 * time.Millisecond),
		int64(100 * time.Millisecond),
		int64(200 * time.Millisecond),
		int64(500 * time.Millisecond),
		int64(1 * time.Second),
		int64(2 * time.Second),
		int64(5 * time.Second),
	}
}

// DefaultSizeBounds returns power-of-two bucket bounds for datagram and
// share size histograms, in bytes: 64 B up to 64 KiB (the UDP maximum).
func DefaultSizeBounds() []int64 {
	return []int64{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}
}
