package obs

import (
	"sync/atomic"
	"time"
)

// EventKind classifies one trace event. The taxonomy covers the protocol's
// share data path end to end: what the sender emitted, what each channel
// did to it, and what the receiver concluded.
type EventKind uint8

// The event taxonomy.
const (
	// EventShareSent: the sender handed one share datagram to a link that
	// accepted it. Channel is the link index, Seq the symbol sequence,
	// Value the datagram size in bytes.
	EventShareSent EventKind = iota + 1
	// EventDatagramDropped: a link refused a datagram (full transmit
	// queue, pacing, closed socket). Same fields as EventShareSent.
	EventDatagramDropped
	// EventDatagramLost: an emulated or impaired channel dropped an
	// accepted datagram on the wire (Bernoulli loss). Value is the size.
	EventDatagramLost
	// EventDatagramDelivered: a channel handed a datagram to the receiving
	// side. Value is the channel's one-way latency in nanoseconds when
	// known, else the size.
	EventDatagramDelivered
	// EventSymbolDelivered: the receiver reconstructed a symbol. Channel
	// is -1 (symbols span channels); Value is the one-way delay in
	// nanoseconds.
	EventSymbolDelivered
	// EventSymbolEvicted: the receiver dropped an incomplete symbol
	// (timeout or memory pressure). Value is the number of shares held.
	EventSymbolEvicted
	// EventReportReceived: the sender ingested a receiver feedback report.
	// Seq is the report epoch; Value is the delivered-count delta.
	EventReportReceived
	// EventChannelWritable: a channel transitioned to writable. Value is
	// the transmit queue depth at the transition.
	EventChannelWritable
	// EventChannelUnwritable: a channel transitioned to unwritable (queue
	// full or link down). Value is the transmit queue depth.
	EventChannelUnwritable
	// EventSymbolScheduled: the sender committed a share schedule for one
	// symbol. Channel is -1 (schedules span channels), Seq the symbol
	// sequence, Value packs the schedule as threshold<<8 | multiplicity.
	// The chaos suite asserts Value>>8 never drops below ⌊κ⌋.
	EventSymbolScheduled
	// EventChannelStateChanged: the sender's health tracker moved a channel
	// to a new state. Channel is the link index, Value the new HealthState
	// (0 healthy, 1 suspect, 2 down, 3 probing).
	EventChannelStateChanged
	// EventChannelProbe: the health tracker admitted a probe datagram on a
	// down channel. Channel is the link index, Value the probe backoff
	// interval in nanoseconds.
	EventChannelProbe
	// EventFaultInjected: the chaos scripter applied one fault transition
	// to a channel. Channel is the link index (-1 for all channels), Value
	// the chaos fault kind.
	EventFaultInjected
	// EventScheduleResolved: the schedule cache resolved a share schedule
	// for a channel state. Channel is -1 (schedules span channels), Value
	// the solve tier (0 cached, 1 warm, 2 cold).
	EventScheduleResolved
	// EventResolveError: a schedule re-solve failed and the caller fell
	// back to clamping share placement. Channel is -1, Value the number of
	// usable channels the failed solve was attempted over.
	EventResolveError
	// EventPrivacyAlert: the leakage meter scored a symbol above the
	// configured adversary-advantage budget. Channel is -1 (advantage spans
	// channels), Seq the symbol sequence, Value the advantage bound in
	// parts per million.
	EventPrivacyAlert
)

// String names the event kind for logs and dumps.
func (k EventKind) String() string {
	switch k {
	case EventShareSent:
		return "share-sent"
	case EventDatagramDropped:
		return "datagram-dropped"
	case EventDatagramLost:
		return "datagram-lost"
	case EventDatagramDelivered:
		return "datagram-delivered"
	case EventSymbolDelivered:
		return "symbol-delivered"
	case EventSymbolEvicted:
		return "symbol-evicted"
	case EventReportReceived:
		return "report-received"
	case EventChannelWritable:
		return "channel-writable"
	case EventChannelUnwritable:
		return "channel-unwritable"
	case EventSymbolScheduled:
		return "symbol-scheduled"
	case EventChannelStateChanged:
		return "channel-state-changed"
	case EventChannelProbe:
		return "channel-probe"
	case EventFaultInjected:
		return "fault-injected"
	case EventScheduleResolved:
		return "schedule-resolved"
	case EventResolveError:
		return "resolve-error"
	case EventPrivacyAlert:
		return "privacy-alert"
	}
	return "unknown"
}

// Event is one structured trace record. The struct is flat (no pointers)
// so rings of events stay off the garbage collector's scan path.
type Event struct {
	// Kind classifies the event.
	Kind EventKind
	// Channel is the channel index the event concerns, or -1.
	Channel int32
	// At is the protocol timestamp (virtual time in simulation, wall time
	// since the epoch over UDP).
	At time.Duration
	// Seq is the protocol sequence number the event concerns, if any.
	Seq uint64
	// Value carries a kind-specific quantity (bytes, nanoseconds, queue
	// depth); see the EventKind docs.
	Value int64
}

// slot is one ring cell. Every field is atomic so concurrent Record and
// Snapshot are race-free; ver is a per-slot seqlock: 2·ticket+1 while a
// write is in flight, 2·ticket+2 once published. A reader accepts a slot
// only if ver matches the expected published value before and after
// copying the fields.
type slot struct {
	ver  atomic.Uint64
	kind atomic.Int64
	ch   atomic.Int64
	at   atomic.Int64
	seq  atomic.Uint64
	val  atomic.Int64
}

// Trace is a lock-free ring buffer of structured events. Writers claim
// slots with one atomic fetch-add and overwrite the oldest events when the
// ring wraps; readers take best-effort snapshots without blocking writers.
// A nil *Trace is valid and records nothing, so call sites can hold an
// optional trace without branching.
//
// Consistency: an event is dropped from a snapshot (never torn) if its
// slot was being rewritten while the snapshot ran. Two writers a full ring
// apart writing the same slot concurrently could in principle publish a
// mixed record; with rings sized generously above the event rate this is
// not a practical concern for a diagnostic trace.
type Trace struct {
	slots []slot
	mask  uint64
	next  atomic.Uint64
}

// DefaultTraceCapacity is the ring size used when NewTrace is given a
// non-positive capacity.
const DefaultTraceCapacity = 4096

// NewTrace builds a ring holding capacity events, rounded up to a power of
// two (minimum 16). capacity <= 0 uses DefaultTraceCapacity.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Trace{slots: make([]slot, n), mask: uint64(n - 1)}
}

// Record appends one event. Safe for concurrent use; no-op on a nil trace.
//
//remicss:noalloc
func (t *Trace) Record(kind EventKind, channel int32, at time.Duration, seq uint64, value int64) {
	if t == nil {
		return
	}
	n := t.next.Add(1) - 1
	s := &t.slots[n&t.mask]
	s.ver.Store(2*n + 1)
	s.kind.Store(int64(kind))
	s.ch.Store(int64(channel))
	s.at.Store(int64(at))
	s.seq.Store(seq)
	s.val.Store(value)
	s.ver.Store(2*n + 2)
}

// Recorded returns the total number of events ever recorded (including
// those already overwritten). Zero for a nil trace.
func (t *Trace) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.next.Load()
}

// Cap returns the ring capacity in events. Zero for a nil trace.
func (t *Trace) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.slots)
}

// Snapshot appends the currently held events to dst, oldest first, and
// returns the extended slice. Events being overwritten concurrently are
// skipped, not torn. A nil trace appends nothing.
func (t *Trace) Snapshot(dst []Event) []Event {
	if t == nil {
		return dst
	}
	end := t.next.Load()
	start := uint64(0)
	if end > uint64(len(t.slots)) {
		start = end - uint64(len(t.slots))
	}
	for n := start; n < end; n++ {
		s := &t.slots[n&t.mask]
		want := 2*n + 2
		if s.ver.Load() != want {
			continue
		}
		ev := Event{
			Kind:    EventKind(s.kind.Load()),
			Channel: int32(s.ch.Load()),
			At:      time.Duration(s.at.Load()),
			Seq:     s.seq.Load(),
			Value:   s.val.Load(),
		}
		if s.ver.Load() != want {
			continue
		}
		dst = append(dst, ev)
	}
	return dst
}

// CountKind returns how many currently held events have the given kind.
// Convenience for tests and reconciliation; takes a snapshot internally.
func (t *Trace) CountKind(kind EventKind) int {
	var n int
	for _, ev := range t.Snapshot(nil) {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}
