package obs

import (
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h, err := NewHistogram([]int64{10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Value -> expected bucket index (3 is the overflow bucket).
	for _, tc := range []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {10, 0}, // no underflow special case
		{11, 1}, {100, 1},
		{101, 2}, {1000, 2},
		{1001, 3}, {1 << 40, 3},
	} {
		fresh, _ := NewHistogram([]int64{10, 100, 1000})
		fresh.Observe(tc.v)
		s := fresh.Snapshot()
		for i, c := range s.Counts {
			want := int64(0)
			if i == tc.bucket {
				want = 1
			}
			if c != want {
				t.Errorf("Observe(%d): bucket %d count %d, want %d", tc.v, i, c, want)
			}
		}
	}
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	if h.Count() != 3 || h.Sum() != 5055 {
		t.Fatalf("count=%d sum=%d, want 3 and 5055", h.Count(), h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, _ := NewHistogram([]int64{10, 20, 30})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	// 10 observations in bucket 0, 10 in bucket 1.
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{
		{-1, 10}, {0, 10}, {0.25, 10}, {0.5, 10},
		{0.75, 20}, {1, 20}, {2, 20},
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	// Overflow observations report the last finite bound.
	o, _ := NewHistogram([]int64{10, 20, 30})
	o.Observe(99)
	if got := o.Quantile(1); got != 30 {
		t.Errorf("overflow quantile = %d, want last bound 30", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, _ := NewHistogram([]int64{10, 20})
	b, _ := NewHistogram([]int64{10, 20})
	a.Observe(5)
	b.Observe(15)
	b.Observe(25)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	s := a.Snapshot()
	if s.Count != 3 || s.Sum != 45 {
		t.Fatalf("merged count=%d sum=%d, want 3 and 45", s.Count, s.Sum)
	}
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Fatalf("merged buckets %v, want [1 1 1]", s.Counts)
	}
	// b is unchanged by the merge.
	if b.Count() != 2 {
		t.Fatalf("source histogram mutated: count %d", b.Count())
	}

	if err := a.Merge(nil); err == nil {
		t.Error("merge of nil must error")
	}
	if err := a.Merge(a); err == nil {
		t.Error("merge into self must error")
	}
	c, _ := NewHistogram([]int64{10, 21})
	if err := a.Merge(c); err == nil {
		t.Error("merge with different bounds must error")
	}
	d, _ := NewHistogram([]int64{10})
	if err := a.Merge(d); err == nil {
		t.Error("merge with different bucket counts must error")
	}
}

func TestDefaultBoundsAreValid(t *testing.T) {
	for name, bounds := range map[string][]int64{
		"delay": DefaultDelayBounds(),
		"size":  DefaultSizeBounds(),
	} {
		if _, err := NewHistogram(bounds); err != nil {
			t.Errorf("%s bounds invalid: %v", name, err)
		}
	}
}
