package core

import (
	"math"
	"testing"
	"time"

	"remicss/internal/stats"
)

func corrTestSet() Set {
	return Set{
		{Risk: 0.10, Loss: 0.01, Delay: 30 * time.Millisecond, Rate: 1000},
		{Risk: 0.10, Loss: 0.02, Delay: 50 * time.Millisecond, Rate: 800},
		{Risk: 0.30, Loss: 0.05, Delay: 80 * time.Millisecond, Rate: 500},
	}
}

// The acceptance criterion: with every correlation factor at zero the
// correlated formulas must reproduce the paper's independent Poisson-binomial
// values bit-exactly, for every (k, mask) pair — not merely within epsilon.
func TestCorrelatedReducesToIndependentBitExact(t *testing.T) {
	set := corrTestSet()
	models := []Correlation{
		{}, // no groups at all
		{Groups: []RiskGroup{{Mask: 0b011, RiskRho: 0, LossRho: 0}}},
		{Groups: []RiskGroup{{Mask: 0b011}, {Mask: 0b100}}},
	}
	for mi, corr := range models {
		if !corr.Independent() {
			t.Fatalf("model %d: Independent() = false for all-zero factors", mi)
		}
		for mask := uint32(1); mask < 1<<uint(len(set)); mask++ {
			m := len(maskIndices(mask))
			for k := 1; k <= m; k++ {
				indRisk := set.SubsetRisk(k, mask)
				corrRisk := set.CorrelatedSubsetRisk(corr, k, mask)
				if corrRisk != indRisk {
					t.Errorf("model %d risk(k=%d, mask=%b): correlated %v != independent %v",
						mi, k, mask, corrRisk, indRisk)
				}
				indLoss := set.SubsetLoss(k, mask)
				corrLoss := set.CorrelatedSubsetLoss(corr, k, mask)
				if corrLoss != indLoss {
					t.Errorf("model %d loss(k=%d, mask=%b): correlated %v != independent %v",
						mi, k, mask, corrLoss, indLoss)
				}
			}
		}
	}
}

// The common-cause construction must leave each channel's marginal risk
// untouched: P(channel i observed) == z_i for any rho. A single-channel
// subset with k = 1 reads the marginal directly.
func TestCorrelatedPreservesMarginals(t *testing.T) {
	set := corrTestSet()
	for _, rho := range []float64{0, 0.25, 0.5, 0.8, 1} {
		corr := Correlation{Groups: []RiskGroup{{Mask: 0b011, RiskRho: rho, LossRho: rho}}}
		for i := range set {
			mask := uint32(1) << uint(i)
			gotRisk := set.CorrelatedSubsetRisk(corr, 1, mask)
			if math.Abs(gotRisk-set[i].Risk) > 1e-12 {
				t.Errorf("rho=%v channel %d: marginal risk %v, want %v", rho, i, gotRisk, set[i].Risk)
			}
			gotLoss := set.CorrelatedSubsetLoss(corr, 1, mask)
			if math.Abs(gotLoss-set[i].Loss) > 1e-12 {
				t.Errorf("rho=%v channel %d: marginal loss %v, want %v", rho, i, gotLoss, set[i].Loss)
			}
		}
	}
}

// Exposure must be monotone in the correlation factor: coupling the taps of
// a group that a (k, M) assignment straddles can only help the adversary.
func TestCorrelatedRiskMonotoneInRho(t *testing.T) {
	set := corrTestSet()
	prev := -1.0
	for _, rho := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
		corr := Correlation{Groups: []RiskGroup{{Mask: 0b011, RiskRho: rho}}}
		z := set.CorrelatedSubsetRisk(corr, 2, 0b111)
		if z < prev-1e-15 {
			t.Fatalf("rho=%v: risk %v decreased from %v", rho, z, prev)
		}
		prev = z
	}
	// And strictly higher at the top than at independence.
	ind := set.SubsetRisk(2, 0b111)
	if prev <= ind {
		t.Fatalf("rho=1 risk %v not strictly above independent %v", prev, ind)
	}
}

// The worked 3-channel example used in DESIGN.md §15: uniform z = 0.1,
// group {0, 1} with rho = 0.8 gives shock q = 0.08 and roughly triples the
// k = 2 exposure over the full mask versus the independence assumption.
func TestCorrelatedWorkedExample(t *testing.T) {
	set := Set{
		{Risk: 0.1, Loss: 0.01, Delay: 30 * time.Millisecond, Rate: 1000},
		{Risk: 0.1, Loss: 0.01, Delay: 30 * time.Millisecond, Rate: 1000},
		{Risk: 0.1, Loss: 0.01, Delay: 30 * time.Millisecond, Rate: 1000},
	}
	corr := Correlation{Groups: []RiskGroup{{Mask: 0b011, RiskRho: 0.8}}}

	// Independent: P(X >= 2) over three 0.1 trials = 3·0.1²·0.9 + 0.1³ = 0.028.
	ind := set.SubsetRisk(2, 0b111)
	if math.Abs(ind-0.028) > 1e-12 {
		t.Fatalf("independent z(2,111) = %v, want 0.028", ind)
	}

	// Correlated: q = 0.8·0.1 = 0.08, residual z' = 0.02/0.92.
	// Shock branch (w = 0.08): two sure observations, tail = 1.
	// No-shock branch (w = 0.92): P(X >= 2) over {z', z', 0.1}.
	zp := 0.02 / 0.92
	noShock := zp*zp*(1-0.1) + 2*zp*(1-zp)*0.1 + zp*zp*0.1
	want := 0.08*1 + 0.92*noShock
	got := set.CorrelatedSubsetRisk(corr, 2, 0b111)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("correlated z(2,111) = %v, want %v", got, want)
	}
	if got < 3*ind-0.005 {
		t.Fatalf("correlated %v not ≈3× independent %v", got, ind)
	}
}

// Cross-check the branch mixture against a brute-force oracle that
// enumerates shock patterns and then channel outcomes exhaustively.
func TestCorrelatedRiskAgainstOracle(t *testing.T) {
	set := corrTestSet()
	corr := Correlation{Groups: []RiskGroup{
		{Mask: 0b011, RiskRho: 0.6},
		{Mask: 0b100, RiskRho: 0.9},
	}}
	risks := set.Risks()
	for mask := uint32(1); mask < 1<<uint(len(set)); mask++ {
		m := len(maskIndices(mask))
		for k := 1; k <= m; k++ {
			want := oracleCorrelatedTail(corr, risks, k, mask)
			got := set.CorrelatedSubsetRisk(corr, k, mask)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("risk(k=%d, mask=%b) = %v, oracle %v", k, mask, got, want)
			}
		}
	}
}

// oracleCorrelatedTail enumerates every shock pattern and, per branch, every
// subset of independently-observed channels.
func oracleCorrelatedTail(corr Correlation, marg []float64, k int, mask uint32) float64 {
	idx := maskIndices(mask)
	var live []RiskGroup
	var qs []float64
	for _, g := range corr.Groups {
		if g.Mask&mask == 0 {
			continue
		}
		live = append(live, g)
		qs = append(qs, shockProb(g, g.RiskRho, marg))
	}
	var total float64
	for pattern := uint32(0); pattern < 1<<uint(len(live)); pattern++ {
		w := 1.0
		shocked := uint32(0)
		for gi := range live {
			if pattern&(1<<uint(gi)) != 0 {
				w *= qs[gi]
				shocked |= live[gi].Mask
			} else {
				w *= 1 - qs[gi]
			}
		}
		// Per-channel observation probability inside this branch.
		probs := make([]float64, len(idx))
		for j, ch := range idx {
			switch {
			case shocked&(1<<uint(ch)) != 0:
				probs[j] = 1
			case corr.GroupOf(ch) >= 0 && live != nil && groupLive(live, ch):
				gi := liveGroupOf(live, ch)
				probs[j] = residualProb(marg[ch], qs[gi])
			default:
				probs[j] = marg[ch]
			}
		}
		total += w * stats.TailAtLeastEnum(probs, k)
	}
	return total
}

func groupLive(live []RiskGroup, ch int) bool { return liveGroupOf(live, ch) >= 0 }

func liveGroupOf(live []RiskGroup, ch int) int {
	for i, g := range live {
		if g.Mask&(1<<uint(ch)) != 0 {
			return i
		}
	}
	return -1
}

// GroupExposure is the linear-in-p attribution the LP rows bound; it must
// never exceed the total correlated risk and must hit zero with the factor.
func TestGroupExposureBounds(t *testing.T) {
	set := corrTestSet()
	corr := Correlation{Groups: []RiskGroup{{Mask: 0b011, RiskRho: 0.8}}}
	for mask := uint32(1); mask < 1<<uint(len(set)); mask++ {
		m := len(maskIndices(mask))
		for k := 1; k <= m; k++ {
			exp := set.GroupExposure(corr, 0, k, mask)
			total := set.CorrelatedSubsetRisk(corr, k, mask)
			if exp < 0 || exp > total+1e-12 {
				t.Errorf("group exposure(k=%d, mask=%b) = %v outside [0, %v]", k, mask, exp, total)
			}
		}
	}
	zero := Correlation{Groups: []RiskGroup{{Mask: 0b011, RiskRho: 0}}}
	if e := set.GroupExposure(zero, 0, 2, 0b111); e != 0 {
		t.Fatalf("zero-rho group exposure = %v, want 0", e)
	}
}

func TestCorrelationValidate(t *testing.T) {
	cases := []struct {
		name string
		corr Correlation
		n    int
		ok   bool
	}{
		{"empty model", Correlation{}, 3, true},
		{"disjoint groups", Correlation{Groups: []RiskGroup{{Mask: 0b011, RiskRho: 0.5}, {Mask: 0b100}}}, 3, true},
		{"empty mask", Correlation{Groups: []RiskGroup{{Mask: 0}}}, 3, false},
		{"out of range mask", Correlation{Groups: []RiskGroup{{Mask: 0b1000}}}, 3, false},
		{"overlapping groups", Correlation{Groups: []RiskGroup{{Mask: 0b011}, {Mask: 0b110}}}, 3, false},
		{"rho above one", Correlation{Groups: []RiskGroup{{Mask: 0b011, RiskRho: 1.5}}}, 3, false},
		{"negative loss rho", Correlation{Groups: []RiskGroup{{Mask: 0b011, LossRho: -0.1}}}, 3, false},
	}
	for _, tc := range cases {
		err := tc.corr.Validate(tc.n)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestRiskGroupMembers(t *testing.T) {
	g := RiskGroup{Mask: 0b101}
	got := g.Members()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Members() = %v, want [0 2]", got)
	}
}

// Schedule-level aggregates must also reduce exactly and rank correlated
// above independent when a group is straddled.
func TestCorrelatedScheduleAggregates(t *testing.T) {
	set := corrTestSet()
	sched := Schedule{
		{K: 2, Mask: 0b111}: 0.6,
		{K: 2, Mask: 0b011}: 0.4,
	}
	zero := Correlation{Groups: []RiskGroup{{Mask: 0b011}}}
	if got, want := sched.CorrelatedRisk(set, zero), sched.Risk(set); got != want {
		t.Fatalf("zero-rho schedule risk %v != independent %v", got, want)
	}
	if got, want := sched.CorrelatedLoss(set, zero), sched.Loss(set); got != want {
		t.Fatalf("zero-rho schedule loss %v != independent %v", got, want)
	}
	corr := Correlation{Groups: []RiskGroup{{Mask: 0b011, RiskRho: 0.8, LossRho: 0.8}}}
	if got, ind := sched.CorrelatedRisk(set, corr), sched.Risk(set); got <= ind {
		t.Fatalf("correlated schedule risk %v not above independent %v", got, ind)
	}
	if got, ind := sched.CorrelatedLoss(set, corr), sched.Loss(set); got <= ind {
		t.Fatalf("correlated schedule loss %v not above independent %v", got, ind)
	}
}
