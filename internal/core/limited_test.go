package core

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestTheorem5Construction checks the constructive proof: for any valid
// (κ, μ) the constructed schedule lies in M' and hits the averages exactly.
func TestTheorem5Construction(t *testing.T) {
	s := diverseSet()
	rng := rand.New(rand.NewSource(123))
	check := func(kappa, mu float64) {
		t.Helper()
		sched, err := s.ConstructLimitedSchedule(kappa, mu)
		if err != nil {
			t.Fatalf("(κ=%v, μ=%v): %v", kappa, mu, err)
		}
		if got := sched.Kappa(); !almostEqual(got, kappa, 1e-9) {
			t.Errorf("(κ=%v, μ=%v): kappa = %v", kappa, mu, got)
		}
		if got := sched.Mu(); !almostEqual(got, mu, 1e-9) {
			t.Errorf("(κ=%v, μ=%v): mu = %v", kappa, mu, got)
		}
		kMin := int(math.Floor(kappa))
		mMin := int(math.Floor(mu))
		for a, p := range sched {
			if p <= 0 {
				continue
			}
			if a.K < kMin {
				t.Errorf("(κ=%v, μ=%v): entry %v has k < ⌊κ⌋", kappa, mu, a)
			}
			if a.M() < mMin {
				t.Errorf("(κ=%v, μ=%v): entry %v has |M| < ⌊μ⌋", kappa, mu, a)
			}
			if a.K > a.M() {
				t.Errorf("(κ=%v, μ=%v): entry %v invalid", kappa, mu, a)
			}
		}
	}
	// Named cases covering the branch structure.
	cases := [][2]float64{
		{1, 1}, {5, 5}, {1, 5}, // integral corners
		{2, 3},      // integral interior
		{2.5, 3.5},  // distinct floors, both fractional
		{2.5, 2.75}, // same floor, both fractional (coupled branch)
		{2, 2.5},    // kappa integral, mu fractional, same floor
		{2.25, 3},   // kappa fractional, mu integral
		{4.9, 5},    // near the top
		{1, 1.01},   // near the bottom
	}
	for _, km := range cases {
		check(km[0], km[1])
	}
	// Random sweep.
	for trial := 0; trial < 200; trial++ {
		kappa := 1 + rng.Float64()*4
		mu := kappa + rng.Float64()*(5-kappa)
		check(kappa, mu)
	}
}

func TestConstructLimitedScheduleRejectsInvalid(t *testing.T) {
	s := diverseSet()
	for _, km := range [][2]float64{{0.5, 2}, {3, 2}, {1, 6}} {
		if _, err := s.ConstructLimitedSchedule(km[0], km[1]); err == nil {
			t.Errorf("(κ=%v, μ=%v) accepted", km[0], km[1])
		}
	}
}

// TestSubsetMonotonicity property-tests the subset formulas: risk and loss
// move monotonically in k, and delay is non-decreasing in k.
func TestSubsetMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(5) + 2
		s := make(Set, n)
		for i := range s {
			s[i] = Channel{
				Risk:  rng.Float64(),
				Loss:  rng.Float64() * 0.5,
				Delay: time.Duration(rng.Intn(1000)) * time.Millisecond,
				Rate:  rng.Float64()*100 + 1,
			}
		}
		mask := s.FullMask()
		for k := 1; k < n; k++ {
			// Needing more shares makes interception harder: z decreasing.
			if z1, z2 := s.SubsetRisk(k, mask), s.SubsetRisk(k+1, mask); z2 > z1+1e-12 {
				t.Fatalf("risk not decreasing in k: z(%d)=%v < z(%d)=%v", k, z1, k+1, z2)
			}
			// Needing more shares makes loss easier: l increasing.
			if l1, l2 := s.SubsetLoss(k, mask), s.SubsetLoss(k+1, mask); l2 < l1-1e-12 {
				t.Fatalf("loss not increasing in k: l(%d)=%v > l(%d)=%v", k, l1, k+1, l2)
			}
			// Waiting for more shares cannot reduce delay.
			if d1, d2 := s.SubsetDelay(k, mask), s.SubsetDelay(k+1, mask); d2 < d1-1e-9 {
				t.Fatalf("delay not non-decreasing in k: d(%d)=%v > d(%d)=%v", k, d1, k+1, d2)
			}
		}
		// Adding a channel to M (k fixed) reduces loss and delay, raises
		// risk exposure only through more observable shares: risk with k
		// fixed is non-decreasing in M.
		if n >= 3 {
			sub := mask >> 1 // drop the top channel
			if z1, z2 := s.SubsetRisk(1, sub), s.SubsetRisk(1, mask); z2 < z1-1e-12 {
				t.Fatalf("risk not non-decreasing in M at k=1: %v > %v", z1, z2)
			}
			if l1, l2 := s.SubsetLoss(1, sub), s.SubsetLoss(1, mask); l2 > l1+1e-12 {
				t.Fatalf("loss not non-increasing in M at k=1: %v < %v", l1, l2)
			}
		}
	}
}
