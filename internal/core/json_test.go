package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestChannelJSONRoundtrip(t *testing.T) {
	set := Set{
		{Risk: 0.3, Loss: 0.01, Delay: 2500 * time.Microsecond, Rate: 446},
		{Risk: 0.1, Loss: 0.005, Delay: 250 * time.Microsecond, Rate: 1786},
	}
	data, err := json.Marshal(set)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"delay":"2.5ms"`) {
		t.Errorf("delay not encoded as duration string: %s", data)
	}
	var back Set
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(set) {
		t.Fatalf("got %d channels", len(back))
	}
	for i := range set {
		if back[i] != set[i] {
			t.Errorf("channel %d = %+v, want %+v", i, back[i], set[i])
		}
	}
}

func TestChannelJSONErrors(t *testing.T) {
	var c Channel
	if err := json.Unmarshal([]byte(`{"delay": "not a duration"}`), &c); err == nil {
		t.Error("bad delay accepted")
	}
	if err := json.Unmarshal([]byte(`{"risk": "high"}`), &c); err == nil {
		t.Error("non-numeric risk accepted")
	}
}

func TestScheduleJSONRoundtrip(t *testing.T) {
	p := Schedule{
		{K: 1, Mask: 0b001}: 0.25,
		{K: 2, Mask: 0b011}: 0.50,
		{K: 3, Mask: 0b111}: 0.25,
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"channels":[0,1]`) {
		t.Errorf("channel indices not listed: %s", data)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(3); err != nil {
		t.Fatalf("roundtripped schedule invalid: %v", err)
	}
	for a, prob := range p {
		if got := back[a]; got != prob {
			t.Errorf("entry %v = %v, want %v", a, got, prob)
		}
	}
	if got := back.Kappa(); got != p.Kappa() {
		t.Errorf("kappa drifted: %v vs %v", got, p.Kappa())
	}
}

func TestScheduleJSONRejectsBadIndices(t *testing.T) {
	var p Schedule
	if err := json.Unmarshal([]byte(`[{"k":1,"channels":[-1],"p":1}]`), &p); err == nil {
		t.Error("negative channel index accepted")
	}
	if err := json.Unmarshal([]byte(`[{"k":1,"channels":[30],"p":1}]`), &p); err == nil {
		t.Error("out-of-range channel index accepted")
	}
	if err := json.Unmarshal([]byte(`{"not": "a list"}`), &p); err == nil {
		t.Error("non-list schedule accepted")
	}
}

func TestScheduleJSONMergesDuplicateEntries(t *testing.T) {
	var p Schedule
	data := `[{"k":1,"channels":[0],"p":0.5},{"k":1,"channels":[0],"p":0.5}]`
	if err := json.Unmarshal([]byte(data), &p); err != nil {
		t.Fatal(err)
	}
	if got := p[Assignment{K: 1, Mask: 1}]; got != 1 {
		t.Errorf("merged probability = %v, want 1", got)
	}
}
