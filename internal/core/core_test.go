package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

const eps = 1e-9

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// diverseSet mirrors the paper's Diverse setup: rates 5, 20, 60, 65, 100
// (Mbps scaled to symbols/sec 1:1), negligible loss and delay.
func diverseSet() Set {
	rates := []float64{5, 20, 60, 65, 100}
	s := make(Set, len(rates))
	for i, r := range rates {
		s[i] = Channel{Risk: 0.1, Loss: 0, Delay: 0, Rate: r}
	}
	return s
}

func identicalSet(n int, rate float64) Set {
	s := make(Set, n)
	for i := range s {
		s[i] = Channel{Risk: 0.1, Loss: 0, Delay: 0, Rate: rate}
	}
	return s
}

func TestChannelValidate(t *testing.T) {
	valid := Channel{Risk: 0.5, Loss: 0.01, Delay: time.Millisecond, Rate: 100}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid channel rejected: %v", err)
	}
	cases := []struct {
		name string
		c    Channel
	}{
		{"risk below 0", Channel{Risk: -0.1, Rate: 1}},
		{"risk above 1", Channel{Risk: 1.1, Rate: 1}},
		{"risk NaN", Channel{Risk: math.NaN(), Rate: 1}},
		{"loss 1", Channel{Loss: 1, Rate: 1}},
		{"loss negative", Channel{Loss: -0.5, Rate: 1}},
		{"negative delay", Channel{Delay: -time.Second, Rate: 1}},
		{"zero rate", Channel{Rate: 0}},
		{"infinite rate", Channel{Rate: math.Inf(1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.c.Validate(); !errors.Is(err, ErrInvalidChannel) {
				t.Errorf("got %v, want ErrInvalidChannel", err)
			}
		})
	}
}

func TestSetValidate(t *testing.T) {
	if err := diverseSet().Validate(); err != nil {
		t.Errorf("diverse set rejected: %v", err)
	}
	if err := (Set{}).Validate(); !errors.Is(err, ErrInvalidChannel) {
		t.Error("empty set accepted")
	}
	bad := diverseSet()
	bad[2].Rate = 0
	if err := bad.Validate(); !errors.Is(err, ErrInvalidChannel) {
		t.Error("set with invalid channel accepted")
	}
	big := make(Set, maxChannels+1)
	for i := range big {
		big[i] = Channel{Rate: 1}
	}
	if err := big.Validate(); !errors.Is(err, ErrInvalidChannel) {
		t.Error("oversized set accepted")
	}
}

func TestSetAccessors(t *testing.T) {
	s := Set{
		{Risk: 0.1, Loss: 0.01, Delay: 2 * time.Millisecond, Rate: 10},
		{Risk: 0.2, Loss: 0.02, Delay: 3 * time.Millisecond, Rate: 20},
	}
	if s.N() != 2 {
		t.Errorf("N = %d", s.N())
	}
	if s.FullMask() != 0b11 {
		t.Errorf("FullMask = %b", s.FullMask())
	}
	if got := s.Risks(); got[0] != 0.1 || got[1] != 0.2 {
		t.Errorf("Risks = %v", got)
	}
	if got := s.Losses(); got[0] != 0.01 || got[1] != 0.02 {
		t.Errorf("Losses = %v", got)
	}
	if got := s.Delays(); !almostEqual(got[0], 0.002, eps) || !almostEqual(got[1], 0.003, eps) {
		t.Errorf("Delays = %v", got)
	}
	if got := s.TotalRate(); got != 30 {
		t.Errorf("TotalRate = %v", got)
	}
}

func TestSubsetRiskTwoChannels(t *testing.T) {
	s := Set{
		{Risk: 0.3, Rate: 1},
		{Risk: 0.5, Rate: 1},
	}
	// k=1: adversary needs either share: 1 - 0.7*0.5 = 0.65.
	if got := s.SubsetRisk(1, 0b11); !almostEqual(got, 0.65, eps) {
		t.Errorf("SubsetRisk(1, both) = %v, want 0.65", got)
	}
	// k=2: both shares: 0.15.
	if got := s.SubsetRisk(2, 0b11); !almostEqual(got, 0.15, eps) {
		t.Errorf("SubsetRisk(2, both) = %v, want 0.15", got)
	}
	// Single channel.
	if got := s.SubsetRisk(1, 0b10); !almostEqual(got, 0.5, eps) {
		t.Errorf("SubsetRisk(1, {1}) = %v, want 0.5", got)
	}
}

func TestSubsetLossTwoChannels(t *testing.T) {
	s := Set{
		{Loss: 0.1, Rate: 1},
		{Loss: 0.2, Rate: 1},
	}
	// k=1: symbol lost only if both shares lost: 0.02.
	if got := s.SubsetLoss(1, 0b11); !almostEqual(got, 0.02, eps) {
		t.Errorf("SubsetLoss(1, both) = %v, want 0.02", got)
	}
	// k=2: lost if either share lost: 1 - 0.9*0.8 = 0.28.
	if got := s.SubsetLoss(2, 0b11); !almostEqual(got, 0.28, eps) {
		t.Errorf("SubsetLoss(2, both) = %v, want 0.28", got)
	}
}

func TestSubsetDelayLossless(t *testing.T) {
	s := Set{
		{Delay: 2 * time.Second, Rate: 1},
		{Delay: 9 * time.Second, Rate: 1},
		{Delay: 10 * time.Second, Rate: 1},
	}
	// With no loss, d(k, M) is the k-th smallest delay.
	for k, want := range map[int]float64{1: 2, 2: 9, 3: 10} {
		if got := s.SubsetDelay(k, 0b111); !almostEqual(got, want, eps) {
			t.Errorf("SubsetDelay(%d) = %v, want %v", k, got, want)
		}
	}
	// Subset {1, 2}: delays 9, 10.
	if got := s.SubsetDelay(1, 0b110); !almostEqual(got, 9, eps) {
		t.Errorf("SubsetDelay(1, {1,2}) = %v, want 9", got)
	}
}

// TestSectionIVECounterexample reproduces the paper's Section IV-E example:
// three lossless channels with d = (2, 9, 10), κ = 2, μ = 3. The only
// limited schedule gives delay 9; splitting between (1, C) and (3, C) gives
// the same κ, μ with delay 6.
func TestSectionIVECounterexample(t *testing.T) {
	s := Set{
		{Delay: 2 * time.Second, Rate: 1},
		{Delay: 9 * time.Second, Rate: 1},
		{Delay: 10 * time.Second, Rate: 1},
	}
	limited := Uniform(Assignment{K: 2, Mask: 0b111})
	if got := limited.Delay(s); !almostEqual(got, 9, eps) {
		t.Errorf("limited schedule delay = %v, want 9", got)
	}
	mixed := Schedule{
		{K: 1, Mask: 0b111}: 0.5,
		{K: 3, Mask: 0b111}: 0.5,
	}
	if got := mixed.Kappa(); !almostEqual(got, 2, eps) {
		t.Errorf("mixed kappa = %v, want 2", got)
	}
	if got := mixed.Mu(); !almostEqual(got, 3, eps) {
		t.Errorf("mixed mu = %v, want 3", got)
	}
	if got := mixed.Delay(s); !almostEqual(got, 6, eps) {
		t.Errorf("mixed schedule delay = %v, want 6", got)
	}
}

func TestSubsetDelayWithLoss(t *testing.T) {
	// Two channels, k=1: delay should be weighted toward the faster channel
	// but account for the case where only the slower share survives.
	s := Set{
		{Loss: 0.5, Delay: 1 * time.Second, Rate: 1},
		{Loss: 0.5, Delay: 3 * time.Second, Rate: 1},
	}
	// Delivered sets: {0,1} p=.25 -> delay 1; {0} p=.25 -> 1; {1} p=.25 -> 3.
	// Conditional on delivery (p=.75): (0.25*1 + 0.25*1 + 0.25*3)/0.75 = 5/3.
	want := 5.0 / 3.0
	if got := s.SubsetDelay(1, 0b11); !almostEqual(got, want, eps) {
		t.Errorf("SubsetDelay(1) = %v, want %v", got, want)
	}
	// k=2 requires both shares: delay 3 whenever delivered.
	if got := s.SubsetDelay(2, 0b11); !almostEqual(got, 3, eps) {
		t.Errorf("SubsetDelay(2) = %v, want 3", got)
	}
}

func TestSubsetDelayCollapsesWithoutLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(5) + 1
		s := make(Set, n)
		for i := range s {
			s[i] = Channel{Delay: time.Duration(rng.Intn(1000)) * time.Millisecond, Rate: 1}
		}
		mask := s.FullMask()
		for k := 1; k <= n; k++ {
			want := kthSmallestDelay(s, k)
			if got := s.SubsetDelay(k, mask); !almostEqual(got, want, eps) {
				t.Fatalf("n=%d k=%d: delay %v, want %v", n, k, got, want)
			}
		}
	}
}

func kthSmallestDelay(s Set, k int) float64 {
	ds := s.Delays()
	for i := 0; i < len(ds); i++ {
		for j := i + 1; j < len(ds); j++ {
			if ds[j] < ds[i] {
				ds[i], ds[j] = ds[j], ds[i]
			}
		}
	}
	return ds[k-1]
}

func TestSubsetPanicsOnBadParams(t *testing.T) {
	s := diverseSet()
	for name, fn := range map[string]func(){
		"risk k=0":        func() { s.SubsetRisk(0, 0b1) },
		"risk k>m":        func() { s.SubsetRisk(2, 0b1) },
		"loss k=0":        func() { s.SubsetLoss(0, 0b1) },
		"delay k>m":       func() { s.SubsetDelay(3, 0b11) },
		"mask beyond set": func() { s.SubsetRisk(1, 1<<7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestExtremalPrivacyLossDelay(t *testing.T) {
	s := Set{
		{Risk: 0.5, Loss: 0.1, Delay: 5 * time.Millisecond, Rate: 10},
		{Risk: 0.4, Loss: 0.2, Delay: 1 * time.Millisecond, Rate: 20},
		{Risk: 0.3, Loss: 0.3, Delay: 9 * time.Millisecond, Rate: 30},
	}
	if got := s.MaxPrivacyRisk(); !almostEqual(got, 0.5*0.4*0.3, eps) {
		t.Errorf("MaxPrivacyRisk = %v", got)
	}
	if got := s.MinLoss(); !almostEqual(got, 0.1*0.2*0.3, eps) {
		t.Errorf("MinLoss = %v", got)
	}
	// The extremal schedules evaluate to the closed forms.
	if got := s.MaxPrivacySchedule().Risk(s); !almostEqual(got, s.MaxPrivacyRisk(), eps) {
		t.Errorf("MaxPrivacySchedule risk = %v, want %v", got, s.MaxPrivacyRisk())
	}
	if got := s.MinLossSchedule().Loss(s); !almostEqual(got, s.MinLoss(), eps) {
		t.Errorf("MinLossSchedule loss = %v, want %v", got, s.MinLoss())
	}
	if got := s.MinDelaySchedule().Delay(s); !almostEqual(got, s.MinDelay(), eps) {
		t.Errorf("MinDelaySchedule delay = %v, want MinDelay = %v", got, s.MinDelay())
	}
}

func TestMinDelayLossless(t *testing.T) {
	s := Set{
		{Delay: 7 * time.Millisecond, Rate: 1},
		{Delay: 3 * time.Millisecond, Rate: 1},
		{Delay: 5 * time.Millisecond, Rate: 1},
	}
	if got := s.MinDelay(); !almostEqual(got, 0.003, eps) {
		t.Errorf("MinDelay = %v, want 0.003", got)
	}
}

func TestMinDelayWithLoss(t *testing.T) {
	// Fastest channel loses half its shares; second-fastest takes over then.
	s := Set{
		{Loss: 0.5, Delay: 1 * time.Second, Rate: 1},
		{Loss: 0.0, Delay: 2 * time.Second, Rate: 1},
	}
	// D = [(1-0.5)*1 + (1-0)*2*0.5] / (1 - 0) = 1.5.
	if got := s.MinDelay(); !almostEqual(got, 1.5, eps) {
		t.Errorf("MinDelay = %v, want 1.5", got)
	}
}

func TestMaxRateScheduleProportions(t *testing.T) {
	s := diverseSet()
	p := s.MaxRateSchedule()
	if err := p.Validate(s.N()); err != nil {
		t.Fatalf("striping schedule invalid: %v", err)
	}
	if got := p.Kappa(); !almostEqual(got, 1, eps) {
		t.Errorf("striping kappa = %v", got)
	}
	if got := p.Mu(); !almostEqual(got, 1, eps) {
		t.Errorf("striping mu = %v", got)
	}
	total := s.TotalRate()
	for i, c := range s {
		want := c.Rate / total
		got := p[Assignment{K: 1, Mask: 1 << uint(i)}]
		if !almostEqual(got, want, eps) {
			t.Errorf("channel %d proportion = %v, want %v", i, got, want)
		}
	}
}

func TestOptimalRateDiverse(t *testing.T) {
	s := diverseSet() // rates 5, 20, 60, 65, 100; total 250.
	cases := []struct {
		mu   float64
		want float64
	}{
		{1, 250},   // striping uses every channel fully
		{2.5, 100}, // Theorem 2 boundary: total/max = 2.5
		{3, 75},    // exclude the 100 channel: 150/2
		{5, 5},     // every symbol on every channel: min rate
		{4, 25},    // binding subset S = {5,20}: 25/(4-5+2) = 25
	}
	for _, tc := range cases {
		got, err := s.OptimalRate(tc.mu)
		if err != nil {
			t.Fatalf("OptimalRate(%v): %v", tc.mu, err)
		}
		if !almostEqual(got, tc.want, 1e-6) {
			t.Errorf("OptimalRate(%v) = %v, want %v", tc.mu, got, tc.want)
		}
	}
}

func TestOptimalRateIdentical(t *testing.T) {
	// Corollary 1: identical rates are always fully utilized: R = n*r/mu.
	s := identicalSet(5, 100)
	for _, mu := range []float64{1, 1.5, 2, 3.7, 5} {
		got, err := s.OptimalRate(mu)
		if err != nil {
			t.Fatal(err)
		}
		if want := 500 / mu; !almostEqual(got, want, 1e-6) {
			t.Errorf("OptimalRate(%v) = %v, want %v", mu, got, want)
		}
	}
}

func TestOptimalRateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(7) + 1
		s := make(Set, n)
		for i := range s {
			s[i] = Channel{Rate: rng.Float64()*99 + 1}
		}
		mu := 1 + rng.Float64()*float64(n-1)
		fast, err := s.OptimalRate(mu)
		if err != nil {
			t.Fatal(err)
		}
		brute, err := s.OptimalRateBruteForce(mu)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(fast, brute, 1e-6*brute) {
			t.Fatalf("n=%d mu=%v: fast %v != brute %v (rates %v)", n, mu, fast, brute, s.Rates())
		}
	}
}

func TestTheorem1LowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(6) + 1
		s := make(Set, n)
		for i := range s {
			s[i] = Channel{Rate: rng.Float64()*99 + 1}
		}
		mu := 1 + rng.Float64()*float64(n-1)
		rc, err := s.OptimalRate(mu)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := s.RateLowerBound(mu)
		if err != nil {
			t.Fatal(err)
		}
		if rc < lb-1e-9 {
			t.Fatalf("OptimalRate %v below Theorem 1 bound %v (mu=%v, rates=%v)",
				rc, lb, mu, s.Rates())
		}
	}
}

func TestTheorem2FullUtilization(t *testing.T) {
	s := diverseSet()
	bound := s.FullUtilizationMaxMu()
	if !almostEqual(bound, 2.5, eps) {
		t.Fatalf("FullUtilizationMaxMu = %v, want 2.5", bound)
	}
	// At or below the bound, every channel is fully utilized:
	// R_C = total/mu and every utilization target is r_i/R_C < 1... with
	// equality for the fastest at the bound.
	for _, mu := range []float64{1, 2, 2.5} {
		rc, err := s.OptimalRate(mu)
		if err != nil {
			t.Fatal(err)
		}
		if want := s.TotalRate() / mu; !almostEqual(rc, want, 1e-6) {
			t.Errorf("mu=%v: OptimalRate = %v, want full utilization %v", mu, rc, want)
		}
	}
	// Above the bound, the fastest channel cannot be fully utilized.
	rc, err := s.OptimalRate(3)
	if err != nil {
		t.Fatal(err)
	}
	if rc >= s.TotalRate()/3 {
		t.Errorf("mu=3: OptimalRate = %v, not below full-utilization %v", rc, s.TotalRate()/3)
	}
}

func TestCorollary1IdenticalAlwaysFullyUtilized(t *testing.T) {
	s := identicalSet(4, 50)
	if got := s.FullUtilizationMaxMu(); !almostEqual(got, 4, eps) {
		t.Errorf("identical FullUtilizationMaxMu = %v, want n = 4", got)
	}
}

func TestTheorem3MuRateRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(6) + 2
		s := make(Set, n)
		for i := range s {
			s[i] = Channel{Rate: rng.Float64()*99 + 1}
		}
		mu := 1 + rng.Float64()*float64(n-1)
		rc, err := s.OptimalRate(mu)
		if err != nil {
			t.Fatal(err)
		}
		back, err := s.MuForRate(rc)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(back, mu, 1e-6) {
			t.Fatalf("MuForRate(OptimalRate(%v)) = %v (rates %v)", mu, back, s.Rates())
		}
	}
}

func TestCorollary2FullyUtilizedSetSize(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(6) + 1
		s := make(Set, n)
		for i := range s {
			s[i] = Channel{Rate: rng.Float64()*99 + 1}
		}
		mu := 1 + rng.Float64()*float64(n-1)
		mask, err := s.FullyUtilizedSet(mu)
		if err != nil {
			t.Fatal(err)
		}
		size := 0
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				size++
			}
		}
		if float64(size) <= float64(n)-mu-eps {
			t.Fatalf("|A| = %d not > n-mu = %v", size, float64(n)-mu)
		}
	}
}

func TestUtilizationTargetsSumToMu(t *testing.T) {
	s := diverseSet()
	for _, mu := range []float64{1, 1.7, 2.5, 3.4, 5} {
		targets, err := s.UtilizationTargets(mu)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, u := range targets {
			if u < 0 || u > 1+eps {
				t.Errorf("mu=%v: utilization target %v out of range", mu, u)
			}
			sum += u
		}
		if !almostEqual(sum, mu, 1e-6) {
			t.Errorf("mu=%v: targets sum to %v", mu, sum)
		}
	}
}

func TestRateParamValidation(t *testing.T) {
	s := diverseSet()
	for _, mu := range []float64{0.5, 5.5, math.NaN()} {
		if _, err := s.OptimalRate(mu); !errors.Is(err, ErrInvalidParams) {
			t.Errorf("OptimalRate(%v) error = %v, want ErrInvalidParams", mu, err)
		}
	}
	if _, err := s.MuForRate(0); !errors.Is(err, ErrInvalidParams) {
		t.Error("MuForRate(0) accepted")
	}
	if _, err := s.MuForRate(-1); !errors.Is(err, ErrInvalidParams) {
		t.Error("MuForRate(-1) accepted")
	}
}

func TestScheduleKappaMuUsage(t *testing.T) {
	p := Schedule{
		{K: 1, Mask: 0b001}: 0.5,
		{K: 2, Mask: 0b011}: 0.25,
		{K: 3, Mask: 0b111}: 0.25,
	}
	if err := p.Validate(3); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := p.Kappa(); !almostEqual(got, 0.5+0.5+0.75, eps) {
		t.Errorf("Kappa = %v", got)
	}
	if got := p.Mu(); !almostEqual(got, 0.5+0.5+0.75, eps) {
		t.Errorf("Mu = %v", got)
	}
	usage := p.ChannelUsage(3)
	want := []float64{1, 0.5, 0.25}
	for i := range want {
		if !almostEqual(usage[i], want[i], eps) {
			t.Errorf("usage[%d] = %v, want %v", i, usage[i], want[i])
		}
	}
}

func TestScheduleValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		p    Schedule
	}{
		{"empty", Schedule{}},
		{"sums below one", Schedule{{K: 1, Mask: 1}: 0.5}},
		{"negative probability", Schedule{{K: 1, Mask: 1}: 1.5, {K: 1, Mask: 2}: -0.5}},
		{"k above m", Schedule{{K: 2, Mask: 1}: 1}},
		{"empty mask", Schedule{{K: 1, Mask: 0}: 1}},
		{"mask beyond n", Schedule{{K: 1, Mask: 1 << 5}: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.p.Validate(5); !errors.Is(err, ErrInvalidSchedule) {
				t.Errorf("got %v, want ErrInvalidSchedule", err)
			}
		})
	}
}

func TestScheduleSupportDeterministic(t *testing.T) {
	p := Schedule{
		{K: 2, Mask: 0b011}: 0.5,
		{K: 1, Mask: 0b100}: 0.3,
		{K: 1, Mask: 0b010}: 0.2,
		{K: 3, Mask: 0b111}: 0,
	}
	sup := p.Support()
	if len(sup) != 3 {
		t.Fatalf("support size %d, want 3 (zero-probability entries excluded)", len(sup))
	}
	want := []Assignment{{K: 1, Mask: 0b010}, {K: 1, Mask: 0b100}, {K: 2, Mask: 0b011}}
	for i := range want {
		if sup[i] != want[i] {
			t.Errorf("support[%d] = %v, want %v", i, sup[i], want[i])
		}
	}
}

func TestEnumerateAssignments(t *testing.T) {
	// For n channels: Σ_{m=1..n} C(n,m)·m assignments.
	wantCounts := map[int]int{1: 1, 2: 4, 3: 12, 4: 32, 5: 80}
	for n, want := range wantCounts {
		got := EnumerateAssignments(n)
		if len(got) != want {
			t.Errorf("n=%d: %d assignments, want %d", n, len(got), want)
		}
		for _, a := range got {
			if !a.Valid(n) {
				t.Errorf("n=%d: invalid assignment %v", n, a)
			}
		}
	}
}

func TestEnumerateLimitedAssignments(t *testing.T) {
	// kappa=2, mu=3 over n=3: k >= 2 and |M| >= 3 means M = C and k in {2,3}.
	got := EnumerateLimitedAssignments(3, 2, 3)
	if len(got) != 2 {
		t.Fatalf("limited assignments = %v, want 2 entries", got)
	}
	for _, a := range got {
		if a.Mask != 0b111 || a.K < 2 {
			t.Errorf("unexpected limited assignment %v", a)
		}
	}
	// Fractional parameters floor correctly.
	got = EnumerateLimitedAssignments(3, 1.5, 2.5)
	for _, a := range got {
		if a.K < 1 || a.M() < 2 {
			t.Errorf("assignment %v violates floors of (1.5, 2.5)", a)
		}
	}
}

func TestCheckParams(t *testing.T) {
	s := diverseSet()
	valid := [][2]float64{{1, 1}, {1, 5}, {2.5, 3.7}, {5, 5}}
	for _, km := range valid {
		if err := s.CheckParams(km[0], km[1]); err != nil {
			t.Errorf("CheckParams(%v, %v) = %v", km[0], km[1], err)
		}
	}
	invalid := [][2]float64{{0.5, 2}, {2, 1.5}, {1, 6}, {math.NaN(), 2}, {2, math.NaN()}}
	for _, km := range invalid {
		if err := s.CheckParams(km[0], km[1]); !errors.Is(err, ErrInvalidParams) {
			t.Errorf("CheckParams(%v, %v) accepted", km[0], km[1])
		}
	}
}

func BenchmarkOptimalRate(b *testing.B) {
	s := diverseSet()
	for i := 0; i < b.N; i++ {
		if _, err := s.OptimalRate(3.3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubsetDelay5(b *testing.B) {
	s := Set{
		{Loss: 0.01, Delay: 2500 * time.Microsecond, Rate: 5},
		{Loss: 0.005, Delay: 250 * time.Microsecond, Rate: 20},
		{Loss: 0.01, Delay: 12500 * time.Microsecond, Rate: 60},
		{Loss: 0.02, Delay: 5 * time.Millisecond, Rate: 65},
		{Loss: 0.03, Delay: 500 * time.Microsecond, Rate: 100},
	}
	for i := 0; i < b.N; i++ {
		s.SubsetDelay(3, s.FullMask())
	}
}
