package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func randomWideSet(rng *rand.Rand, n int) Set {
	s := make(Set, n)
	for i := range s {
		s[i] = Channel{
			Risk:  rng.Float64(),
			Loss:  rng.Float64() * 0.4,
			Delay: time.Duration(1+rng.Intn(200)) * time.Millisecond,
			Rate:  1 + 99*rng.Float64(),
		}
	}
	return s
}

// TestMembersMetricsMatchMaskMetrics: the members-based metrics are the
// wide-set form of the mask-based ones; on mask-representable sets they
// must agree exactly.
func TestMembersMetricsMatchMaskMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := randomWideSet(rng, 8)
	for mask := uint32(1); mask < 1<<8; mask++ {
		idx := maskIndices(mask)
		for k := 1; k <= len(idx); k++ {
			if got, want := s.MembersRisk(k, idx), s.SubsetRisk(k, mask); got != want {
				t.Fatalf("MembersRisk(%d, %v) = %g, SubsetRisk = %g", k, idx, got, want)
			}
			if got, want := s.MembersLoss(k, idx), s.SubsetLoss(k, mask); got != want {
				t.Fatalf("MembersLoss(%d, %v) = %g, SubsetLoss = %g", k, idx, got, want)
			}
			if got, want := s.MembersDelay(k, idx), s.SubsetDelay(k, mask); got != want {
				t.Fatalf("MembersDelay(%d, %v) = %g, SubsetDelay = %g", k, idx, got, want)
			}
		}
	}
}

func TestWideAssignmentValidAndMask(t *testing.T) {
	cases := []struct {
		a     WideAssignment
		n     int
		valid bool
	}{
		{WideAssignment{K: 1, Members: []int{0, 2, 4}}, 5, true},
		{WideAssignment{K: 3, Members: []int{0, 2, 4}}, 5, true},
		{WideAssignment{K: 4, Members: []int{0, 2, 4}}, 5, false}, // k > |M|
		{WideAssignment{K: 1, Members: nil}, 5, false},            // empty
		{WideAssignment{K: 1, Members: []int{2, 1}}, 5, false},    // not ascending
		{WideAssignment{K: 1, Members: []int{1, 1}}, 5, false},    // duplicate
		{WideAssignment{K: 1, Members: []int{0, 5}}, 5, false},    // out of range
	}
	for _, c := range cases {
		if got := c.a.Valid(c.n); got != c.valid {
			t.Errorf("%v.Valid(%d) = %v, want %v", c.a, c.n, got, c.valid)
		}
	}
	mask, ok := WideAssignment{K: 1, Members: []int{0, 2, 4}}.Mask()
	if !ok || mask != 0b10101 {
		t.Fatalf("Mask() = %b, %v", mask, ok)
	}
	if _, ok := (WideAssignment{K: 1, Members: []int{40}}).Mask(); ok {
		t.Fatal("Mask() accepted member beyond uint32 range")
	}
}

// TestGenerateWideDeterministic: two runs with equal inputs must produce
// identical output (the cache and the differential tests depend on this).
func TestGenerateWideDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randomWideSet(rng, 60)
	a := GenerateWideAssignments(s, 2.4, 3.2, true, GenConfig{})
	b := GenerateWideAssignments(s, 2.4, 3.2, true, GenConfig{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("generation is not deterministic for equal inputs")
	}
	c := GenerateWideAssignments(s, 2.4, 3.2, true, GenConfig{Seed: 99})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical candidate sets (sampling inert?)")
	}
}

// TestGenerateWideCoversFeasibilityCorners: the generated (k, |M|) pairs
// must include every corner of the (κ, µ) cell so the LP hull contains the
// target parameters.
func TestGenerateWideCoversFeasibilityCorners(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randomWideSet(rng, 30)
	for _, tc := range []struct{ kappa, mu float64 }{
		{2.5, 2.7}, // same integer part
		{2.5, 4.3}, // different integer parts
		{2, 4},     // both integral
		{1, 1},     // degenerate corner
	} {
		for _, limited := range []bool{false, true} {
			got := map[[2]int]bool{}
			for _, a := range GenerateWideAssignments(s, tc.kappa, tc.mu, limited, GenConfig{}) {
				if !a.Valid(s.N()) {
					t.Fatalf("invalid generated assignment %v", a)
				}
				got[[2]int{a.K, a.M()}] = true
			}
			for _, k := range []int{int(math.Floor(tc.kappa)), int(math.Ceil(tc.kappa))} {
				for _, m := range []int{int(math.Floor(tc.mu)), int(math.Ceil(tc.mu))} {
					if k > m {
						continue
					}
					if !got[[2]int{k, m}] {
						t.Errorf("kappa=%v mu=%v limited=%v: corner (k=%d, m=%d) missing",
							tc.kappa, tc.mu, limited, k, m)
					}
				}
			}
		}
	}
}

// TestGenerateWideRespectsLimited: limited mode must not emit k < ⌊κ⌋ or
// |M| < ⌊µ⌋.
func TestGenerateWideRespectsLimited(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := randomWideSet(rng, 25)
	for _, a := range GenerateWideAssignments(s, 2.6, 3.4, true, GenConfig{}) {
		if a.K < 2 || a.M() < 3 {
			t.Fatalf("limited generation emitted %v (want k >= 2, |M| >= 3)", a)
		}
	}
}

// TestGenerateWideGreedySubsetsSurvivePruning: the greedy-by-risk subset is
// the exact size-m risk minimizer, so pruning must never drop it — it can
// only be dominated by a subset that ties on risk, which the strict rule
// keeps.
func TestGenerateWideGreedySubsetsSurvivePruning(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randomWideSet(rng, 40)
	kappa, mu := 2.3, 3.1
	byRisk := s.bestBy(3, func(c Channel) float64 { return c.Risk })
	found := false
	for _, a := range GenerateWideAssignments(s, kappa, mu, true, GenConfig{}) {
		if a.M() == 3 && reflect.DeepEqual(a.Members, byRisk) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("greedy-by-risk subset %v missing from generated candidates", byRisk)
	}
}

// TestGenerateAssignmentsMatchesWide: the mask form is the wide form with
// members folded into bitmasks.
func TestGenerateAssignmentsMatchesWide(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := randomWideSet(rng, 18)
	wide := GenerateWideAssignments(s, 2.2, 3.3, true, GenConfig{})
	masked := GenerateAssignments(s, 2.2, 3.3, true, GenConfig{})
	if len(wide) != len(masked) {
		t.Fatalf("wide %d assignments, masked %d", len(wide), len(masked))
	}
	for i, w := range wide {
		mask, _ := w.Mask()
		if masked[i].K != w.K || masked[i].Mask != mask {
			t.Fatalf("index %d: wide %v vs masked %v", i, w, masked[i])
		}
	}
}

// TestGenerateWideLargeSetFast: generation for hundreds of channels must
// stay well under the 1 s budget the acceptance criteria set for the whole
// solve.
func TestGenerateWideLargeSetFast(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randomWideSet(rng, 200)
	start := time.Now()
	out := GenerateWideAssignments(s, 2.5, 3.5, true, GenConfig{})
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("generation for n=200 took %v", elapsed)
	}
	if len(out) == 0 {
		t.Fatal("no assignments generated")
	}
	for _, a := range out {
		if !a.Valid(200) {
			t.Fatalf("invalid assignment %v", a)
		}
	}
}
