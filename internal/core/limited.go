package core

import (
	"fmt"
	"math"
)

// ConstructLimitedSchedule builds a valid limited share schedule (Theorem
// 5): a distribution over M' = {(k, M) : k >= ⌊κ⌋, |M| >= ⌊μ⌋} whose
// average threshold is exactly kappa and average multiplicity exactly mu.
// The paper states the theorem and omits the construction; this is one.
//
// Construction: couple the roundings with a single "phase" so that the
// schedule mixes at most four assignments — (k↓ or k↑) × (M of size m↓ or
// m↑) — with product weights wk·wm, where wk = ⌈κ⌉-κ is the weight of k↓
// and wm analogously for m↓. Because k ∈ {⌊κ⌋, ⌈κ⌉} every entry satisfies
// k >= ⌊κ⌋, and |M| ∈ {⌊μ⌋, ⌈μ⌉} >= ⌊μ⌋, so the schedule lies in M'.
// k <= |M| holds for every combination because κ <= μ implies
// ⌈κ⌉ <= ⌊μ⌋ except when both parameters share the same integer part, in
// which case the k↑ entries are paired only with M of size ⌈μ⌉ (see the
// sameFloor branch).
//
// Channels for each M are the prefix of the set (channel indices 0..m-1);
// callers optimizing a property should use the LP in internal/schedule with
// Options{Limited: true} instead — this construction only witnesses
// feasibility.
func (s Set) ConstructLimitedSchedule(kappa, mu float64) (Schedule, error) {
	if err := s.CheckParams(kappa, mu); err != nil {
		return nil, err
	}
	n := len(s)
	kLo := int(math.Floor(kappa))
	kHi := kLo + 1
	kFrac := kappa - math.Floor(kappa)
	mLo := int(math.Floor(mu))
	mHi := mLo + 1
	mFrac := mu - math.Floor(mu)

	prefix := func(m int) uint32 {
		if m > n {
			panic(fmt.Sprintf("core: prefix of %d channels in set of %d", m, n))
		}
		return uint32(1)<<uint(m) - 1
	}

	sched := make(Schedule)
	add := func(k, m int, w float64) {
		if w <= 0 {
			return
		}
		sched[Assignment{K: k, Mask: prefix(m)}] += w
	}

	if kLo == mLo && kFrac > mFrac {
		// Same integer part with κ's fraction above μ's is impossible since
		// κ <= μ.
		return nil, fmt.Errorf("%w: kappa=%v > mu=%v", ErrInvalidParams, kappa, mu)
	}

	if kLo == mLo && kFrac > 0 {
		// k↑ = kLo+1 would exceed m↓ = mLo, so couple the roundings
		// comonotonically: a single uniform u rounds both up when
		// u < frac. Intervals: u in [0, kFrac) -> (kHi, mHi);
		// u in [kFrac, mFrac) -> (kLo, mHi); u in [mFrac, 1) -> (kLo, mLo).
		add(kHi, mHi, kFrac)
		add(kLo, mHi, mFrac-kFrac)
		add(kLo, mLo, 1-mFrac)
	} else {
		// Independent product mixing is valid: every combination satisfies
		// k <= |M| (kHi <= mLo when floors differ; k = kLo <= mLo when
		// kFrac = 0).
		add(kLo, mLo, (1-kFrac)*(1-mFrac))
		add(kLo, mHi, (1-kFrac)*mFrac)
		add(kHi, mLo, kFrac*(1-mFrac))
		add(kHi, mHi, kFrac*mFrac)
	}

	if err := sched.Validate(n); err != nil {
		return nil, fmt.Errorf("core: limited construction invalid: %w", err)
	}
	return sched, nil
}
