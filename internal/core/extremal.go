package core

import "sort"

// This file implements the fully-optimized single-property results of paper
// Section IV-B/IV-C: the best value each network property can reach over a
// channel set when κ and μ may be chosen freely.

// MaxPrivacyRisk returns the minimum achievable overall risk Z_C = Π z_i,
// reached by the schedule p(n, C) = 1 (κ = μ = n): the adversary must
// observe a share on every channel to learn a symbol.
func (s Set) MaxPrivacyRisk() float64 {
	z := 1.0
	for _, c := range s {
		z *= c.Risk
	}
	return z
}

// MaxPrivacySchedule returns the schedule achieving MaxPrivacyRisk.
func (s Set) MaxPrivacySchedule() Schedule {
	return Uniform(Assignment{K: len(s), Mask: s.FullMask()})
}

// MinLoss returns the minimum achievable overall lossiness L_C = Π l_i,
// reached by the schedule p(1, C) = 1 (κ = 1, μ = n): a symbol is lost only
// if every channel drops its share.
func (s Set) MinLoss() float64 {
	l := 1.0
	for _, c := range s {
		l *= c.Loss
	}
	return l
}

// MinLossSchedule returns the schedule achieving MinLoss.
func (s Set) MinLossSchedule() Schedule {
	return Uniform(Assignment{K: 1, Mask: s.FullMask()})
}

// MinDelay returns the minimum achievable overall delay D_C in seconds,
// reached with κ = 1 and μ = n. With loss, this is the expected delay of the
// fastest surviving share:
//
//	D_C = ( Σ_a (1-λ(a)) δ(a) Π_{b<a} λ(b) ) / ( 1 - Π l_i )
//
// where δ is the non-decreasing ordering of channel delays and λ(a) the
// lossiness of the channel δ(a) refers to. With no loss this collapses to
// min_i d_i.
func (s Set) MinDelay() float64 {
	type dl struct{ d, l float64 }
	ch := make([]dl, len(s))
	for i, c := range s {
		ch[i] = dl{d: c.Delay.Seconds(), l: c.Loss}
	}
	sort.Slice(ch, func(i, j int) bool { return ch[i].d < ch[j].d })

	var sum float64
	prefixLoss := 1.0 // Π_{b<a} λ(b)
	allLoss := 1.0
	for _, c := range ch {
		sum += (1 - c.l) * c.d * prefixLoss
		prefixLoss *= c.l
		allLoss *= c.l
	}
	return sum / (1 - allLoss)
}

// MinDelaySchedule returns the schedule achieving MinDelay.
func (s Set) MinDelaySchedule() Schedule {
	return Uniform(Assignment{K: 1, Mask: s.FullMask()})
}

// MaxRate returns the maximum achievable overall rate R_C = Σ r_i, reached
// with κ = μ = 1: every share carries a distinct symbol (MPTCP-style
// striping, Section IV-C).
func (s Set) MaxRate() float64 { return s.TotalRate() }

// MaxRateSchedule returns the striping schedule achieving MaxRate: each
// symbol uses a single channel, channel i with probability r_i / Σ r_j.
func (s Set) MaxRateSchedule() Schedule {
	total := s.TotalRate()
	p := make(Schedule, len(s))
	for i, c := range s {
		p[Assignment{K: 1, Mask: 1 << uint(i)}] = c.Rate / total
	}
	return p
}
