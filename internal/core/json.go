package core

import (
	"encoding/json"
	"fmt"
	"time"
)

// JSON encodings for the model types, so channel specifications and
// schedules can move between tools (remicss-opt emits schedules other
// processes consume). Channels encode delay as a human-editable duration
// string; schedules encode as a list of entries because JSON objects cannot
// key on structs.

// channelJSON is the wire form of Channel.
type channelJSON struct {
	Risk  float64 `json:"risk"`
	Loss  float64 `json:"loss"`
	Delay string  `json:"delay"`
	Rate  float64 `json:"rate"`
}

// MarshalJSON implements json.Marshaler with delay as a duration string.
func (c Channel) MarshalJSON() ([]byte, error) {
	return json.Marshal(channelJSON{
		Risk:  c.Risk,
		Loss:  c.Loss,
		Delay: c.Delay.String(),
		Rate:  c.Rate,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *Channel) UnmarshalJSON(data []byte) error {
	var cj channelJSON
	if err := json.Unmarshal(data, &cj); err != nil {
		return fmt.Errorf("core: decoding channel: %w", err)
	}
	d, err := time.ParseDuration(cj.Delay)
	if err != nil {
		return fmt.Errorf("core: decoding channel delay %q: %w", cj.Delay, err)
	}
	*c = Channel{Risk: cj.Risk, Loss: cj.Loss, Delay: d, Rate: cj.Rate}
	return nil
}

// scheduleEntryJSON is one schedule entry: explicit channel indices rather
// than a bitmask, for readability.
type scheduleEntryJSON struct {
	K        int     `json:"k"`
	Channels []int   `json:"channels"`
	P        float64 `json:"p"`
}

// MarshalJSON implements json.Marshaler: a deterministic list of entries
// sorted by (k, mask).
func (p Schedule) MarshalJSON() ([]byte, error) {
	entries := make([]scheduleEntryJSON, 0, len(p))
	for _, a := range p.Support() {
		entries = append(entries, scheduleEntryJSON{
			K:        a.K,
			Channels: maskIndices(a.Mask),
			P:        p[a],
		})
	}
	return json.Marshal(entries)
}

// UnmarshalJSON implements json.Unmarshaler. The decoded schedule is not
// validated; call Validate with the channel count.
func (p *Schedule) UnmarshalJSON(data []byte) error {
	var entries []scheduleEntryJSON
	if err := json.Unmarshal(data, &entries); err != nil {
		return fmt.Errorf("core: decoding schedule: %w", err)
	}
	out := make(Schedule, len(entries))
	for i, e := range entries {
		var mask uint32
		for _, ch := range e.Channels {
			if ch < 0 || ch >= maxChannels {
				return fmt.Errorf("core: schedule entry %d: channel index %d out of range", i, ch)
			}
			mask |= 1 << uint(ch)
		}
		out[Assignment{K: e.K, Mask: mask}] += e.P
	}
	*p = out
	return nil
}
