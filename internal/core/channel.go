// Package core implements the protocol model and optimality results of
// "Modeling Privacy and Tradeoffs in Multichannel Secret Sharing Protocols"
// (Pohly & McDaniel, DSN 2016), Sections III and IV.
//
// A channel is the quadruple (z, l, d, r): eavesdrop risk, loss
// probability, one-way delay, and rate. A channel set C holds n disjoint
// channels. A protocol is characterized by a share schedule p(k, M) — a
// categorical distribution over (threshold, channel subset) pairs — from
// which the model derives:
//
//   - subset and schedule risk Z (Poisson-binomial upper tail),
//   - subset and schedule loss L (Poisson-binomial lower tail),
//   - subset and schedule delay D (loss-weighted k-th order statistic),
//   - the achievable multichannel rate R (Theorems 1–4).
//
// Channel subsets are encoded as bitmasks over the channel set's indices,
// matching internal/stats. The paper's evaluation uses n = 5; everything
// here is exact (no sampling) and supports n up to stats.MaxEnumerationBits.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Channel is one communication channel between the two endpoints, described
// by the four properties the model consumes (paper Section III-A/B).
//
// Units: Risk and Loss are probabilities; Delay is the one-way delay; Rate
// is in share symbols per second. Any consistent symbol definition works —
// the evaluation uses one UDP datagram payload per symbol.
type Channel struct {
	// Risk (z) is the probability that an adversary observes a share sent on
	// this channel. In [0, 1].
	Risk float64
	// Loss (l) is the probability that a share sent on this channel never
	// reaches the receiver. In [0, 1): a channel that always loses is
	// excluded from the set by definition.
	Loss float64
	// Delay (d) is the expected one-way latency for a share that is not
	// lost. Non-negative.
	Delay time.Duration
	// Rate (r) is the maximum number of share symbols per second. Positive.
	Rate float64
}

// Validate reports whether the channel's properties are within the ranges
// the model defines: z in [0,1], l in [0,1), d in [0,inf), r in (0,inf).
func (c Channel) Validate() error {
	switch {
	case c.Risk < 0 || c.Risk > 1 || math.IsNaN(c.Risk):
		return fmt.Errorf("%w: risk %v outside [0, 1]", ErrInvalidChannel, c.Risk)
	case c.Loss < 0 || c.Loss >= 1 || math.IsNaN(c.Loss):
		return fmt.Errorf("%w: loss %v outside [0, 1)", ErrInvalidChannel, c.Loss)
	case c.Delay < 0:
		return fmt.Errorf("%w: negative delay %v", ErrInvalidChannel, c.Delay)
	case c.Rate <= 0 || math.IsInf(c.Rate, 0) || math.IsNaN(c.Rate):
		return fmt.Errorf("%w: rate %v outside (0, inf)", ErrInvalidChannel, c.Rate)
	}
	return nil
}

// ErrInvalidChannel marks channels whose properties fall outside the model's
// ranges.
var ErrInvalidChannel = errors.New("core: invalid channel")

// ErrInvalidParams marks protocol parameters outside 1 <= kappa <= mu <= n.
var ErrInvalidParams = errors.New("core: invalid protocol parameters")

// Set is an ordered set of disjoint channels. Subset bitmasks index into
// this slice: bit i set means channel i is in the subset.
type Set []Channel

// Validate checks every channel and the set size against the subset
// enumeration cap.
func (s Set) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("%w: empty channel set", ErrInvalidChannel)
	}
	if len(s) > maxChannels {
		return fmt.Errorf("%w: %d channels exceeds the enumeration cap %d",
			ErrInvalidChannel, len(s), maxChannels)
	}
	for i, c := range s {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("channel %d: %w", i, err)
		}
	}
	return nil
}

// N returns the number of channels, n = |C|.
func (s Set) N() int { return len(s) }

// FullMask returns the bitmask selecting every channel in the set.
func (s Set) FullMask() uint32 { return 1<<uint(len(s)) - 1 }

// Risks returns the risk vector z.
func (s Set) Risks() []float64 {
	out := make([]float64, len(s))
	for i, c := range s {
		out[i] = c.Risk
	}
	return out
}

// Losses returns the lossiness vector l.
func (s Set) Losses() []float64 {
	out := make([]float64, len(s))
	for i, c := range s {
		out[i] = c.Loss
	}
	return out
}

// Delays returns the delay vector d in seconds.
func (s Set) Delays() []float64 {
	out := make([]float64, len(s))
	for i, c := range s {
		out[i] = c.Delay.Seconds()
	}
	return out
}

// Rates returns the rate vector r in symbols per second.
func (s Set) Rates() []float64 {
	out := make([]float64, len(s))
	for i, c := range s {
		out[i] = c.Rate
	}
	return out
}

// TotalRate returns Σ r_i, the aggregate share rate of the set.
func (s Set) TotalRate() float64 {
	var sum float64
	for _, c := range s {
		sum += c.Rate
	}
	return sum
}

// maxChannels caps set sizes so subset enumeration stays tractable.
const maxChannels = 22

// CheckParams validates protocol parameters kappa and mu against the set:
// 1 <= kappa <= mu <= n.
func (s Set) CheckParams(kappa, mu float64) error {
	n := float64(len(s))
	if math.IsNaN(kappa) || math.IsNaN(mu) || kappa < 1 || mu < kappa || mu > n {
		return fmt.Errorf("%w: kappa=%v, mu=%v, n=%v", ErrInvalidParams, kappa, mu, n)
	}
	return nil
}
