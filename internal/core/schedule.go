package core

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"remicss/internal/stats"
)

// Assignment is one element of the choice set M-cal: a threshold k together
// with a channel subset M (as a bitmask over the channel set).
type Assignment struct {
	K    int
	Mask uint32
}

// M returns the multiplicity |M| of the assignment.
func (a Assignment) M() int { return bits.OnesCount32(a.Mask) }

// Valid reports whether 1 <= k <= |M| and the mask is non-empty within an
// n-channel set.
func (a Assignment) Valid(n int) bool {
	m := a.M()
	return a.Mask != 0 && a.Mask < 1<<uint(n) && a.K >= 1 && a.K <= m
}

// String renders the assignment for diagnostics, e.g. "(2, {0,2,4})".
func (a Assignment) String() string {
	return fmt.Sprintf("(%d, %v)", a.K, maskIndices(a.Mask))
}

// Schedule is a share schedule: the probability mass function p(k, M) over
// assignments. Entries absent from the map have probability zero.
type Schedule map[Assignment]float64

// scheduleProbTolerance bounds the acceptable deviation of the total
// probability mass from one; LP solutions carry floating-point noise.
const scheduleProbTolerance = 1e-6

// Validate checks that the schedule is a categorical distribution over valid
// assignments for an n-channel set.
func (p Schedule) Validate(n int) error {
	if len(p) == 0 {
		return fmt.Errorf("%w: empty schedule", ErrInvalidSchedule)
	}
	var total float64
	for a, prob := range p {
		if !a.Valid(n) {
			return fmt.Errorf("%w: invalid assignment %v for n=%d", ErrInvalidSchedule, a, n)
		}
		if prob < -scheduleProbTolerance || math.IsNaN(prob) {
			return fmt.Errorf("%w: negative probability %v for %v", ErrInvalidSchedule, prob, a)
		}
		total += prob
	}
	if math.Abs(total-1) > scheduleProbTolerance {
		return fmt.Errorf("%w: probabilities sum to %v", ErrInvalidSchedule, total)
	}
	return nil
}

// ErrInvalidSchedule marks malformed share schedules.
var ErrInvalidSchedule = fmt.Errorf("core: invalid share schedule")

// Kappa returns the average threshold κ = Σ p(k,M)·k.
func (p Schedule) Kappa() float64 {
	var sum float64
	for a, prob := range p {
		sum += prob * float64(a.K)
	}
	return sum
}

// Mu returns the average multiplicity μ = Σ p(k,M)·|M|.
func (p Schedule) Mu() float64 {
	var sum float64
	for a, prob := range p {
		sum += prob * float64(a.M())
	}
	return sum
}

// Risk returns the schedule risk Z(p) = Σ p(k,M)·z(k,M) over the set.
func (p Schedule) Risk(s Set) float64 {
	var sum float64
	for a, prob := range p {
		if prob > 0 {
			sum += prob * s.SubsetRisk(a.K, a.Mask)
		}
	}
	return sum
}

// Loss returns the schedule loss L(p) = Σ p(k,M)·l(k,M) over the set.
func (p Schedule) Loss(s Set) float64 {
	var sum float64
	for a, prob := range p {
		if prob > 0 {
			sum += prob * s.SubsetLoss(a.K, a.Mask)
		}
	}
	return sum
}

// Delay returns the schedule delay D(p) = Σ p(k,M)·d(k,M) in seconds.
//
// Note this is the unconditional average of the per-assignment conditional
// delays, matching the paper's definition of D(p).
func (p Schedule) Delay(s Set) float64 {
	var sum float64
	for a, prob := range p {
		if prob > 0 {
			sum += prob * s.SubsetDelay(a.K, a.Mask)
		}
	}
	return sum
}

// ChannelUsage returns, for each channel i, the proportion of symbols whose
// assignment includes channel i: Σ_{(k,M): i∈M} p(k,M). Used by the max-rate
// constraint of the Section IV-D linear program.
func (p Schedule) ChannelUsage(n int) []float64 {
	usage := make([]float64, n)
	for a, prob := range p {
		for _, i := range maskIndices(a.Mask) {
			usage[i] += prob
		}
	}
	return usage
}

// Support returns the assignments with positive probability, sorted for
// deterministic iteration (by k, then mask).
func (p Schedule) Support() []Assignment {
	out := make([]Assignment, 0, len(p))
	for a, prob := range p {
		if prob > 0 {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].K != out[j].K {
			return out[i].K < out[j].K
		}
		return out[i].Mask < out[j].Mask
	})
	return out
}

// EnumerateAssignments lists every valid assignment for an n-channel set:
// all (k, M) with M a non-empty subset and 1 <= k <= |M|. The order is
// deterministic: ascending mask, then ascending k.
func EnumerateAssignments(n int) []Assignment {
	var out []Assignment
	stats.ForEachSubset(n, func(mask uint32) {
		if mask == 0 {
			return
		}
		m := bits.OnesCount32(mask)
		for k := 1; k <= m; k++ {
			out = append(out, Assignment{K: k, Mask: mask})
		}
	})
	return out
}

// EnumerateLimitedAssignments lists the restricted choice set M' of Section
// IV-E: assignments with k >= floor(kappa) and |M| >= floor(mu), used to
// accommodate the MICSS/courier threat model in which the adversary always
// controls a fixed set of channels.
func EnumerateLimitedAssignments(n int, kappa, mu float64) []Assignment {
	kMin := int(math.Floor(kappa))
	mMin := int(math.Floor(mu))
	var out []Assignment
	for _, a := range EnumerateAssignments(n) {
		if a.K >= kMin && a.M() >= mMin {
			out = append(out, a)
		}
	}
	return out
}

// Uniform returns the deterministic schedule that always uses assignment a.
func Uniform(a Assignment) Schedule {
	return Schedule{a: 1}
}
