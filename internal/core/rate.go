package core

import (
	"fmt"
	"math"
	"sort"
)

// rateEpsilon absorbs floating-point noise in rate comparisons.
const rateEpsilon = 1e-9

// OptimalRate computes the optimal multichannel rate R_C for average share
// multiplicity mu over the set (Theorem 4):
//
//	R_C = min over S ⊆ C with |S| > n-μ of ( Σ_{i∈S} r_i ) / (μ - n + |S|).
//
// The minimizing S is always a suffix of the rates sorted descending (all
// channels except some number of the fastest), so the computation is
// O(n log n) rather than exponential; TestOptimalRateMatchesBruteForce
// verifies this against the literal subset minimum.
//
// mu must satisfy 1 <= mu <= n.
func (s Set) OptimalRate(mu float64) (float64, error) {
	if err := s.CheckParams(1, mu); err != nil {
		return 0, err
	}
	rates := s.Rates()
	sort.Sort(sort.Reverse(sort.Float64Slice(rates)))

	// Suffix sums: suffix[t] = Σ_{i >= t} rates[i] (rates sorted descending),
	// i.e. the total rate excluding the t fastest channels.
	n := len(rates)
	suffix := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + rates[i]
	}

	best := math.Inf(1)
	for t := 0; float64(t) < mu && t < n; t++ {
		r := suffix[t] / (mu - float64(t))
		if r < best {
			best = r
		}
	}
	return best, nil
}

// OptimalRateBruteForce evaluates Theorem 4's subset minimum literally. It
// is exponential in n and exists as the oracle for OptimalRate.
func (s Set) OptimalRateBruteForce(mu float64) (float64, error) {
	if err := s.CheckParams(1, mu); err != nil {
		return 0, err
	}
	n := len(s)
	rates := s.Rates()
	best := math.Inf(1)
	for mask := uint32(1); mask < 1<<uint(n); mask++ {
		size := 0
		var sum float64
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				size++
				sum += rates[i]
			}
		}
		if float64(size) > float64(n)-mu {
			if r := sum / (mu - float64(n) + float64(size)); r < best {
				best = r
			}
		}
	}
	return best, nil
}

// RateLowerBound returns Theorem 1's bound: the rate of the channel with the
// ⌈μ⌉-th highest individual rate. OptimalRate is always at least this.
func (s Set) RateLowerBound(mu float64) (float64, error) {
	if err := s.CheckParams(1, mu); err != nil {
		return 0, err
	}
	rates := s.Rates()
	sort.Sort(sort.Reverse(sort.Float64Slice(rates)))
	idx := int(math.Ceil(mu)) - 1
	if idx >= len(rates) {
		idx = len(rates) - 1
	}
	return rates[idx], nil
}

// FullUtilizationMaxMu returns Theorem 2's bound: every channel can be fully
// utilized if and only if μ <= Σ r_i / max r_i.
func (s Set) FullUtilizationMaxMu() float64 {
	var total, maxRate float64
	for _, c := range s {
		total += c.Rate
		if c.Rate > maxRate {
			maxRate = c.Rate
		}
	}
	if maxRate == 0 {
		return 0
	}
	return total / maxRate
}

// MuForRate inverts the rate relation (Theorem 3): given a target overall
// rate R, it returns the largest μ that still achieves it,
//
//	μ = Σ min{ r_i / R, 1 }.
//
// R must be positive.
func (s Set) MuForRate(rate float64) (float64, error) {
	if rate <= 0 || math.IsNaN(rate) {
		return 0, fmt.Errorf("%w: target rate %v", ErrInvalidParams, rate)
	}
	var mu float64
	for _, c := range s {
		mu += math.Min(c.Rate/rate, 1)
	}
	return mu, nil
}

// FullyUtilizedSet returns Definition 1's set A = {i : r_i <= R_C} for the
// given μ, as a bitmask: the channels whose full rate is used by an optimal
// schedule. Corollary 2 guarantees |A| > n - μ.
func (s Set) FullyUtilizedSet(mu float64) (uint32, error) {
	rc, err := s.OptimalRate(mu)
	if err != nil {
		return 0, err
	}
	var mask uint32
	for i, c := range s {
		if c.Rate <= rc+rateEpsilon {
			mask |= 1 << uint(i)
		}
	}
	return mask, nil
}

// UtilizationTargets returns, for each channel, the fraction of source
// symbols that must include it to achieve the optimal rate for μ:
// min{ r_i / R_C, 1 } (Equation 4 recast over proportions, used as the
// max-rate constraint of the Section IV-D linear program).
func (s Set) UtilizationTargets(mu float64) ([]float64, error) {
	rc, err := s.OptimalRate(mu)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(s))
	for i, c := range s {
		out[i] = math.Min(c.Rate/rc, 1)
	}
	return out, nil
}
