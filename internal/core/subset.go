package core

import (
	"fmt"
	"math/bits"

	"remicss/internal/stats"
)

// SubsetRisk computes z(k, M): the probability that an adversary observes at
// least k of the shares of a symbol sent over the channels in mask (one
// share per channel). This is the upper tail of the Poisson binomial over
// the per-channel risks (paper Section IV-A).
//
// It panics if k is not in [1, |M|] or the mask selects channels outside the
// set; those are programming errors in schedule construction.
func (s Set) SubsetRisk(k int, mask uint32) float64 {
	probs := s.maskValues(mask, s.Risks())
	checkSubsetParams(k, len(probs))
	return stats.TailAtLeast(probs, k)
}

// SubsetLoss computes l(k, M): the probability that fewer than k shares of a
// symbol sent over the channels in mask arrive, i.e. the symbol is lost.
// This is the lower tail of the Poisson binomial over per-channel delivery
// probabilities (1 - l_i).
func (s Set) SubsetLoss(k int, mask uint32) float64 {
	deliver := s.maskValues(mask, invertProbs(s.Losses()))
	checkSubsetParams(k, len(deliver))
	return stats.TailLess(deliver, k)
}

// SubsetDelay computes d(k, M): the expected time from sending a symbol's
// shares over the channels in mask until k of them have arrived, conditioned
// on the symbol not being lost. The result is in seconds.
//
// Per the paper, this is the average over every subset K ⊆ M with |K| >= k
// of the k-th smallest delay among K, weighted by the probability that K is
// exactly the delivered set, normalized by 1 - l(k, M).
func (s Set) SubsetDelay(k int, mask uint32) float64 {
	m := bits.OnesCount32(mask)
	checkSubsetParams(k, m)

	// Work in the subset's local index space.
	idx := maskIndices(mask)
	if idx[len(idx)-1] >= len(s) {
		panic(fmt.Sprintf("core: mask %b selects channel beyond set of %d", mask, len(s)))
	}
	return s.MembersDelay(k, idx)
}

// checkSubsetParams panics unless 1 <= k <= m.
func checkSubsetParams(k, m int) {
	if k < 1 || k > m {
		panic(fmt.Sprintf("core: threshold %d outside [1, %d]", k, m))
	}
}

// maskValues extracts values[i] for each channel i selected by mask. It
// panics if the mask selects indices beyond the set.
func (s Set) maskValues(mask uint32, values []float64) []float64 {
	out := make([]float64, 0, bits.OnesCount32(mask))
	for i := range values {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, values[i])
		}
	}
	if bits.OnesCount32(mask) != len(out) {
		panic(fmt.Sprintf("core: mask %b selects channels beyond set of %d", mask, len(s)))
	}
	return out
}

// maskIndices returns the channel indices selected by mask, ascending.
func maskIndices(mask uint32) []int {
	out := make([]int, 0, bits.OnesCount32(mask))
	for mask != 0 {
		i := bits.TrailingZeros32(mask)
		out = append(out, i)
		mask &^= 1 << uint(i)
	}
	return out
}

func invertProbs(ps []float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = 1 - p
	}
	return out
}
