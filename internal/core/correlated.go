package core

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"remicss/internal/stats"
)

// The paper's subset risk and loss formulas (Section IV-A) treat channels as
// independent Bernoulli trials, which is exact for physically disjoint paths
// but understates exposure whenever several "disjoint" channels ride one
// conduit — a shared fiber segment, cell tower, or transit AS. This file
// extends the model with shared-risk groups under a common-cause (one-factor)
// construction: each group g carries a latent shock event; when the shock
// fires, every channel in the group is simultaneously eavesdropped (risk
// shock) or blacked out (loss shock), and the per-channel residual
// probabilities are chosen so each channel's *marginal* risk and loss stay
// exactly the z_i and l_i of the independent model. The correlation factor
// rho in [0, 1] interpolates continuously from independence (rho = 0, where
// every formula reduces bit-exactly to the Poisson-binomial forms) to the
// maximal common-cause coupling the marginals admit (rho = 1, shock
// probability min over the group). The construction follows the
// correlated-random-variable secret-sharing line of Chou (arXiv:2110.10307):
// correlation is modeled as shared randomness between the adversary's taps,
// not as a change to any single channel's quality.

// RiskGroup is one shared-risk group: a set of channels presumed to share a
// physical conduit, with common-cause correlation factors for eavesdropping
// and for loss.
type RiskGroup struct {
	// Mask selects the member channels as a bitmask over the channel set,
	// matching the subset encoding used everywhere else in this package.
	// Must select at least one channel.
	Mask uint32
	// RiskRho is the eavesdrop correlation factor in [0, 1]: the group's
	// common-cause compromise probability is RiskRho times the smallest
	// member risk. 0 restores independent eavesdropping.
	RiskRho float64
	// LossRho is the outage correlation factor in [0, 1]: the group's
	// common-cause blackout probability is LossRho times the smallest
	// member loss. 0 restores independent loss.
	LossRho float64
}

// Members returns the group's channel indices, ascending.
func (g RiskGroup) Members() []int { return maskIndices(g.Mask) }

// Correlation is a correlated-adversary model over a channel set: a set of
// disjoint shared-risk groups. Channels in no group behave independently,
// exactly as in the paper's model.
type Correlation struct {
	// Groups are the shared-risk groups. Masks must be pairwise disjoint.
	Groups []RiskGroup
}

// ErrInvalidCorrelation marks malformed correlated-adversary models.
var ErrInvalidCorrelation = errors.New("core: invalid correlation model")

// Validate checks the correlation model against an n-channel set: every
// group mask non-empty and in range, masks pairwise disjoint, factors in
// [0, 1].
func (c Correlation) Validate(n int) error {
	var seen uint32
	for i, g := range c.Groups {
		if g.Mask == 0 {
			return fmt.Errorf("%w: group %d has empty mask", ErrInvalidCorrelation, i)
		}
		if n < 32 && g.Mask >= 1<<uint(n) {
			return fmt.Errorf("%w: group %d mask %b selects channels beyond set of %d",
				ErrInvalidCorrelation, i, g.Mask, n)
		}
		if seen&g.Mask != 0 {
			return fmt.Errorf("%w: group %d mask %b overlaps an earlier group",
				ErrInvalidCorrelation, i, g.Mask)
		}
		seen |= g.Mask
		if g.RiskRho < 0 || g.RiskRho > 1 || math.IsNaN(g.RiskRho) {
			return fmt.Errorf("%w: group %d risk rho %v outside [0, 1]",
				ErrInvalidCorrelation, i, g.RiskRho)
		}
		if g.LossRho < 0 || g.LossRho > 1 || math.IsNaN(g.LossRho) {
			return fmt.Errorf("%w: group %d loss rho %v outside [0, 1]",
				ErrInvalidCorrelation, i, g.LossRho)
		}
	}
	return nil
}

// Independent reports whether the model carries no correlation at all:
// no groups, or every factor zero. In that state every correlated formula
// reduces bit-exactly to its independent counterpart.
func (c Correlation) Independent() bool {
	for _, g := range c.Groups {
		if g.RiskRho != 0 || g.LossRho != 0 {
			return false
		}
	}
	return true
}

// Project restricts the model to the channels in members (ascending
// full-set indices), remapping each group's mask into the subset's local
// index space — the form a failover re-solve over surviving channels needs.
// Groups left with no surviving member are dropped; correlation factors are
// unchanged, because a conduit's common cause does not weaken when some of
// its channels are already down.
func (c Correlation) Project(members []int) Correlation {
	var out Correlation
	for _, g := range c.Groups {
		var mask uint32
		for j, ch := range members {
			if g.Mask&(1<<uint(ch)) != 0 {
				mask |= 1 << uint(j)
			}
		}
		if mask == 0 {
			continue
		}
		out.Groups = append(out.Groups, RiskGroup{Mask: mask, RiskRho: g.RiskRho, LossRho: g.LossRho})
	}
	return out
}

// GroupOf returns the index of the group containing channel ch, or -1 when
// the channel is in no group.
func (c Correlation) GroupOf(ch int) int {
	for i, g := range c.Groups {
		if g.Mask&(1<<uint(ch)) != 0 {
			return i
		}
	}
	return -1
}

// shockProb returns the common-cause event probability for one group under
// the marginal probabilities marg: rho times the smallest member value. The
// minimum keeps every residual probability in [0, 1], so the construction
// preserves marginals for any rho in [0, 1].
func shockProb(g RiskGroup, rho float64, marg []float64) float64 {
	if rho == 0 {
		return 0
	}
	min := math.Inf(1)
	for _, i := range maskIndices(g.Mask) {
		if marg[i] < min {
			min = marg[i]
		}
	}
	return rho * min
}

// residualProb returns the channel probability conditioned on the group
// shock not firing: solving q + (1-q)·p' = p for p'. A shock probability at
// (or within rounding of) 1 leaves no residual mass.
func residualProb(p, q float64) float64 {
	if q >= 1-1e-12 {
		return 0
	}
	r := (p - q) / (1 - q)
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// correlatedTail computes an upper-tail probability P(X >= k) over the
// channels in mask, where X counts successes under the common-cause mixture:
// marg are the marginal per-channel success probabilities, rhoOf selects each
// group's correlation factor. It conditions on every subset of shocked
// groups intersecting the mask; within each branch the surviving trials are
// independent with residual probabilities, so the branch tail is the plain
// Poisson binomial. With every factor zero only the no-shock branch carries
// mass and the computation is bit-identical to stats.TailAtLeast over marg.
func (c Correlation) correlatedTail(marg []float64, k int, mask uint32, rhoOf func(RiskGroup) float64) float64 {
	// Groups that intersect the mask, with their shock probabilities.
	type liveGroup struct {
		inMask uint32 // member channels inside the mask
		q      float64
	}
	var live []liveGroup
	grouped := uint32(0) // mask channels covered by some live group
	for _, g := range c.Groups {
		in := g.Mask & mask
		if in == 0 {
			continue
		}
		live = append(live, liveGroup{inMask: in, q: shockProb(g, rhoOf(g), marg)})
		grouped |= in
	}

	// Residual probabilities for every mask channel, in mask-local order,
	// alongside each channel's live-group index (-1 for ungrouped).
	idx := maskIndices(mask)
	base := make([]float64, len(idx))
	groupOf := make([]int, len(idx))
	for j, ch := range idx {
		base[j] = marg[ch]
		groupOf[j] = -1
		for gi, lg := range live {
			if lg.inMask&(1<<uint(ch)) != 0 {
				groupOf[j] = gi
				base[j] = residualProb(marg[ch], lg.q)
				break
			}
		}
	}

	// Mix over the 2^|live| shock patterns. Zero-probability branches are
	// skipped, so the rho = 0 path evaluates exactly one branch with the
	// unmodified marginals.
	var sum float64
	probs := make([]float64, 0, len(idx))
	for pattern := uint32(0); pattern < 1<<uint(len(live)); pattern++ {
		w := 1.0
		for gi, lg := range live {
			if pattern&(1<<uint(gi)) != 0 {
				w *= lg.q
			} else {
				w *= 1 - lg.q
			}
		}
		if w == 0 {
			continue
		}
		// Shocked channels succeed surely; the rest keep their residuals.
		sure := 0
		probs = probs[:0]
		for j := range idx {
			if gi := groupOf[j]; gi >= 0 && pattern&(1<<uint(gi)) != 0 {
				sure++
				continue
			}
			probs = append(probs, base[j])
		}
		sum += w * stats.TailAtLeast(probs, k-sure)
	}
	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// CorrelatedSubsetRisk computes the correlated z(k, M): the probability that
// an adversary whose taps are coupled through the model's shared-risk groups
// observes at least k of the shares sent over the channels in mask. With an
// all-zero model this is bit-identical to SubsetRisk; with positive factors
// it is never smaller, because the common cause moves probability mass onto
// the all-members-observed outcomes the threshold scheme is weakest against.
func (s Set) CorrelatedSubsetRisk(corr Correlation, k int, mask uint32) float64 {
	probs := s.maskValues(mask, s.Risks()) // validates the mask against the set
	checkSubsetParams(k, len(probs))
	return corr.correlatedTail(s.Risks(), k, mask, func(g RiskGroup) float64 { return g.RiskRho })
}

// CorrelatedSubsetLoss computes the correlated l(k, M): the probability that
// fewer than k shares arrive when outages are coupled through the model's
// shared-risk groups (a conduit cut takes every member channel down at
// once). With an all-zero model this is bit-identical to SubsetLoss.
func (s Set) CorrelatedSubsetLoss(corr Correlation, k int, mask uint32) float64 {
	deliver := s.maskValues(mask, invertProbs(s.Losses()))
	checkSubsetParams(k, len(deliver))
	// Mix over loss shocks: a shocked group delivers nothing, so delivery
	// tails condition on "sure failures" rather than sure successes. Reuse
	// the success-side machinery by counting deliveries with shocked
	// channels forced to zero.
	return corr.correlatedLossTail(s.Losses(), k, mask)
}

// correlatedLossTail computes P(fewer than k deliveries) under loss shocks:
// a shocked group's channels deliver with probability zero, unshocked
// channels deliver with residual probability (1-l_i')/(the marginal-
// preserving residual of the loss side).
func (c Correlation) correlatedLossTail(losses []float64, k int, mask uint32) float64 {
	type liveGroup struct {
		inMask uint32
		q      float64
	}
	var live []liveGroup
	for _, g := range c.Groups {
		in := g.Mask & mask
		if in == 0 {
			continue
		}
		live = append(live, liveGroup{inMask: in, q: shockProb(g, g.LossRho, losses)})
	}

	idx := maskIndices(mask)
	deliver := make([]float64, len(idx))
	groupOf := make([]int, len(idx))
	for j, ch := range idx {
		deliver[j] = 1 - losses[ch]
		groupOf[j] = -1
		for gi, lg := range live {
			if lg.inMask&(1<<uint(ch)) != 0 {
				groupOf[j] = gi
				deliver[j] = 1 - residualProb(losses[ch], lg.q)
				break
			}
		}
	}

	var sum float64
	probs := make([]float64, 0, len(idx))
	for pattern := uint32(0); pattern < 1<<uint(len(live)); pattern++ {
		w := 1.0
		for gi, lg := range live {
			if pattern&(1<<uint(gi)) != 0 {
				w *= lg.q
			} else {
				w *= 1 - lg.q
			}
		}
		if w == 0 {
			continue
		}
		probs = probs[:0]
		for j := range idx {
			if gi := groupOf[j]; gi >= 0 && pattern&(1<<uint(gi)) != 0 {
				continue // shocked: the share is lost with certainty
			}
			probs = append(probs, deliver[j])
		}
		sum += w * stats.TailLess(probs, k)
	}
	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// CorrelatedObservedPMF returns the probability mass function of the number
// of shares an adversary observes out of a symbol sent over the channels in
// mask, under the correlated model: out[c] is the probability that exactly c
// shares are observed. This is the mixture, over common-cause shock
// patterns, of shifted Poisson binomials; the leakage meter consumes it to
// bound adversary advantage. With an all-zero model it equals the
// independent Poisson-binomial pmf.
func (s Set) CorrelatedObservedPMF(corr Correlation, mask uint32) []float64 {
	probs := s.maskValues(mask, s.Risks())
	m := len(probs)

	type liveGroup struct {
		inMask uint32
		q      float64
	}
	var live []liveGroup
	marg := s.Risks()
	for _, g := range corr.Groups {
		in := g.Mask & mask
		if in == 0 {
			continue
		}
		live = append(live, liveGroup{inMask: in, q: shockProb(g, g.RiskRho, marg)})
	}

	idx := maskIndices(mask)
	base := make([]float64, len(idx))
	groupOf := make([]int, len(idx))
	for j, ch := range idx {
		base[j] = marg[ch]
		groupOf[j] = -1
		for gi, lg := range live {
			if lg.inMask&(1<<uint(ch)) != 0 {
				groupOf[j] = gi
				base[j] = residualProb(marg[ch], lg.q)
				break
			}
		}
	}

	out := make([]float64, m+1)
	branch := make([]float64, 0, m)
	for pattern := uint32(0); pattern < 1<<uint(len(live)); pattern++ {
		w := 1.0
		for gi, lg := range live {
			if pattern&(1<<uint(gi)) != 0 {
				w *= lg.q
			} else {
				w *= 1 - lg.q
			}
		}
		if w == 0 {
			continue
		}
		sure := 0
		branch = branch[:0]
		for j := range idx {
			if gi := groupOf[j]; gi >= 0 && pattern&(1<<uint(gi)) != 0 {
				sure++
				continue
			}
			branch = append(branch, base[j])
		}
		pmf := stats.Distribution(branch)
		for c, p := range pmf {
			out[c+sure] += w * p
		}
	}
	return out
}

// GroupExposure returns the part of the correlated subset risk attributable
// to one group's common cause: the probability that group g's shock fires
// AND the adversary then observes at least k shares of a symbol sent over
// mask. It is linear in the schedule probabilities, which is what lets the
// schedule LP bound it with one constraint row per group (see
// internal/schedule).
func (s Set) GroupExposure(corr Correlation, g int, k int, mask uint32) float64 {
	probs := s.maskValues(mask, s.Risks())
	checkSubsetParams(k, len(probs))
	if g < 0 || g >= len(corr.Groups) {
		panic(fmt.Sprintf("core: group index %d outside [0, %d)", g, len(corr.Groups)))
	}
	grp := corr.Groups[g]
	q := shockProb(grp, grp.RiskRho, s.Risks())
	if q == 0 {
		return 0
	}
	in := grp.Mask & mask
	sure := bits.OnesCount32(in)
	// Conditioned on the shock, the group's in-mask members are observed
	// surely; every other mask channel keeps its marginal (other groups'
	// shocks are independent of this one and only increase the tail, so
	// using marginals keeps the row a lower bound on the attribution while
	// staying linear — the full mixture is bounded by the total correlated
	// risk, which tests cross-check).
	rest := make([]float64, 0, bits.OnesCount32(mask))
	for _, ch := range maskIndices(mask &^ in) {
		rest = append(rest, s.Risks()[ch])
	}
	return q * stats.TailAtLeast(rest, k-sure)
}

// GroupExposure returns the schedule's common-cause exposure attributable
// to shared-risk group g: Σ p(k,M) · e_g(k,M). This is the quantity the
// schedule LP's per-group rows bound.
func (p Schedule) GroupExposure(s Set, corr Correlation, g int) float64 {
	var sum float64
	for a, prob := range p {
		if prob > 0 {
			sum += prob * s.GroupExposure(corr, g, a.K, a.Mask)
		}
	}
	return sum
}

// CorrelatedRisk returns the schedule risk Z(p) under the correlated model:
// Σ p(k,M) · z_corr(k,M). Reduces to Risk when the model is independent.
func (p Schedule) CorrelatedRisk(s Set, corr Correlation) float64 {
	var sum float64
	for a, prob := range p {
		if prob > 0 {
			sum += prob * s.CorrelatedSubsetRisk(corr, a.K, a.Mask)
		}
	}
	return sum
}

// CorrelatedLoss returns the schedule loss L(p) under the correlated model:
// Σ p(k,M) · l_corr(k,M). Reduces to Loss when the model is independent.
func (p Schedule) CorrelatedLoss(s Set, corr Correlation) float64 {
	var sum float64
	for a, prob := range p {
		if prob > 0 {
			sum += prob * s.CorrelatedSubsetLoss(corr, a.K, a.Mask)
		}
	}
	return sum
}
