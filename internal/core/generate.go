package core

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"

	"remicss/internal/stats"
)

// WideAssignment is an assignment for channel sets too large for uint32
// subset masks: a threshold k together with an explicit, ascending list of
// member channel indices. It is the wide-set analogue of Assignment, used
// by the sampled/pruned generation path that scales to hundreds of
// channels.
type WideAssignment struct {
	K       int
	Members []int
}

// M returns the multiplicity |M|.
func (a WideAssignment) M() int { return len(a.Members) }

// Valid reports whether 1 <= k <= |M| and the members are strictly
// ascending indices within an n-channel set.
func (a WideAssignment) Valid(n int) bool {
	if len(a.Members) == 0 || a.K < 1 || a.K > len(a.Members) {
		return false
	}
	prev := -1
	for _, i := range a.Members {
		if i <= prev || i >= n {
			return false
		}
		prev = i
	}
	return true
}

// Mask converts the member list to a subset bitmask. The second return is
// false when any member index is outside uint32 mask range.
func (a WideAssignment) Mask() (uint32, bool) {
	var mask uint32
	for _, i := range a.Members {
		if i < 0 || i >= 32 {
			return 0, false
		}
		mask |= 1 << uint(i)
	}
	return mask, true
}

// String renders the assignment for diagnostics, e.g. "(2, {0,2,4})".
func (a WideAssignment) String() string {
	return fmt.Sprintf("(%d, %v)", a.K, a.Members)
}

// MembersRisk is SubsetRisk over an explicit member list, usable for sets
// beyond mask range. Panics on out-of-range members or threshold, like the
// mask form.
func (s Set) MembersRisk(k int, members []int) float64 {
	probs := s.memberValues(members, s.Risks())
	checkSubsetParams(k, len(probs))
	return stats.TailAtLeast(probs, k)
}

// MembersLoss is SubsetLoss over an explicit member list.
func (s Set) MembersLoss(k int, members []int) float64 {
	deliver := s.memberValues(members, invertProbs(s.Losses()))
	checkSubsetParams(k, len(deliver))
	return stats.TailLess(deliver, k)
}

// MembersDelay is SubsetDelay over an explicit member list. The cost is
// exponential in |members| (it enumerates delivery patterns), so callers
// must keep multiplicities small even when the set is large.
func (s Set) MembersDelay(k int, members []int) float64 {
	m := len(members)
	checkSubsetParams(k, m)

	delays := make([]float64, m)
	losses := make([]float64, m)
	for j, i := range members {
		if i < 0 || i >= len(s) {
			panic(fmt.Sprintf("core: member %d outside set of %d", i, len(s)))
		}
		delays[j] = s[i].Delay.Seconds()
		losses[j] = s[i].Loss
	}

	var weighted, pDeliver float64
	full := uint32(1)<<uint(m) - 1
	for sub := full; ; sub = (sub - 1) & full {
		if bits.OnesCount32(sub) >= k {
			p := 1.0
			for j := 0; j < m; j++ {
				if sub&(1<<uint(j)) != 0 {
					p *= 1 - losses[j]
				} else {
					p *= losses[j]
				}
			}
			if p > 0 {
				weighted += stats.KthSmallest(delays, sub, k) * p
				pDeliver += p
			}
		}
		if sub == 0 {
			break
		}
	}
	if pDeliver <= 0 {
		panic("core: subset delay undefined: certain loss")
	}
	return weighted / pDeliver
}

// memberValues extracts values[i] for each member index, panicking on
// out-of-range indices.
func (s Set) memberValues(members []int, values []float64) []float64 {
	out := make([]float64, len(members))
	for j, i := range members {
		if i < 0 || i >= len(values) {
			panic(fmt.Sprintf("core: member %d outside set of %d", i, len(s)))
		}
		out[j] = values[i]
	}
	return out
}

// GenConfig tunes sampled/pruned assignment generation. The zero value
// selects the documented defaults.
type GenConfig struct {
	// Spread widens the multiplicity window beyond [⌊µ⌋, ⌈µ⌉]: subsets of
	// size m are generated for m within Spread of that interval (clamped to
	// the valid range). Default 2.
	Spread int
	// Samples is the number of seeded-random member subsets drawn per
	// multiplicity, on top of the deterministic greedy subsets. Default 32.
	Samples int
	// Seed seeds the sampling RNG; generation is fully deterministic for a
	// fixed (set, kappa, mu, config). Default 1 (a zero seed is replaced).
	Seed int64
	// MaxMultiplicity caps |M| for generated assignments, bounding the
	// exponential cost of delay evaluation. It never cuts below ⌈µ⌉, which
	// feasibility requires. Default 22 (= stats.MaxEnumerationBits).
	MaxMultiplicity int
	// ExtendTo adds greedy-only subsets (no sampling, no pruning) for
	// multiplicities above the sampled window, up to min(n, ExtendTo).
	// Larger subsets strictly reduce loss and delay at a fixed threshold,
	// so without them the unlimited program can be badly approximated;
	// greedy subsets capture that tail cheaply. Default 12.
	ExtendTo int
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Spread <= 0 {
		c.Spread = 2
	}
	if c.Samples <= 0 {
		c.Samples = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxMultiplicity <= 0 {
		c.MaxMultiplicity = stats.MaxEnumerationBits
	}
	if c.ExtendTo <= 0 {
		c.ExtendTo = 12
	}
	return c
}

// GenerateWideAssignments builds a candidate choice set for the Section
// IV-B/IV-D programs without enumerating all 2^n subsets, so it scales to
// hundreds of channels. For each multiplicity m in a window around µ it
// emits:
//
//   - greedy subsets: the m best channels by each single criterion (risk,
//     loss, delay, rate) and by balanced rank — for the tail statistics the
//     per-criterion greedy subset is exactly optimal among size-m subsets;
//   - seeded-random subsets for diversity, with dominance pruning: a
//     sampled subset strictly worse than another same-size candidate in
//     risk, loss, AND delay (at the representative threshold) is dropped.
//
// Thresholds k run over [1, m] (or [⌊κ⌋, m] when limited). The window
// always contains ⌊µ⌋ and ⌈µ⌉ and thresholds ⌊κ⌋ and ⌈κ⌉, so the convex
// hull of generated (k, |M|) pairs contains (κ, µ) and the LP over the
// candidates is feasible whenever the exhaustive program is. The output is
// deterministic and sorted (by k, then members lexicographically). See
// DESIGN §11 for the approximation bound.
func GenerateWideAssignments(s Set, kappa, mu float64, limited bool, cfg GenConfig) []WideAssignment {
	cfg = cfg.withDefaults()
	n := len(s)
	if n == 0 {
		return nil
	}

	kFloor := 1
	mFloor := 1
	if limited {
		kFloor = int(math.Floor(kappa))
		mFloor = int(math.Floor(mu))
	}
	mLo := max(1, mFloor, int(math.Floor(mu))-cfg.Spread)
	mHi := min(n, int(math.Ceil(mu))+cfg.Spread)
	if lid := max(int(math.Ceil(mu)), cfg.MaxMultiplicity); mHi > lid {
		mHi = lid
	}
	if mLo > mHi {
		mLo = mHi
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []WideAssignment
	for m := mLo; m <= mHi; m++ {
		subsets := s.candidateSubsets(m, cfg.Samples, rng)
		kRep := clampInt(int(math.Round(kappa)), max(1, kFloor), m)
		subsets = s.pruneDominated(subsets, kRep)
		for _, members := range subsets {
			for k := max(1, kFloor); k <= m; k++ {
				out = append(out, WideAssignment{K: k, Members: members})
			}
		}
	}

	// Greedy-only tail: larger subsets strictly reduce loss and delay at a
	// fixed threshold, so cover multiplicities above the sampled window
	// with the cheap greedy subsets alone (no sampling, no pruning).
	for m := mHi + 1; m <= min(n, cfg.ExtendTo); m++ {
		subsets := s.candidateSubsets(m, 0, rng)
		for _, members := range subsets {
			for k := max(1, kFloor); k <= m; k++ {
				out = append(out, WideAssignment{K: k, Members: members})
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].K != out[j].K {
			return out[i].K < out[j].K
		}
		return lessIntSlices(out[i].Members, out[j].Members)
	})
	return out
}

// GenerateAssignments is GenerateWideAssignments for mask-representable
// sets (n <= 32): the same candidate generation, returned as bitmask
// assignments compatible with Schedule. It panics beyond mask range.
func GenerateAssignments(s Set, kappa, mu float64, limited bool, cfg GenConfig) []Assignment {
	wide := GenerateWideAssignments(s, kappa, mu, limited, cfg)
	out := make([]Assignment, len(wide))
	for i, a := range wide {
		mask, ok := a.Mask()
		if !ok {
			panic(fmt.Sprintf("core: set of %d channels exceeds mask range", len(s)))
		}
		out[i] = Assignment{K: a.K, Mask: mask}
	}
	return out
}

// candidateSubsets returns deduplicated member subsets of size m: the
// greedy per-criterion subsets followed by seeded-random samples. All
// member lists are ascending.
func (s Set) candidateSubsets(m, samples int, rng *rand.Rand) [][]int {
	n := len(s)
	seen := make(map[string]bool)
	var out [][]int
	add := func(members []int) {
		key := subsetKey(members)
		if !seen[key] {
			seen[key] = true
			out = append(out, members)
		}
	}

	// Greedy subsets: the m best channels by each criterion. For the
	// Poisson-binomial tails these are exactly the size-m minimizers of
	// subset risk (smallest risks) and subset loss (smallest losses); for
	// delay and rate they are strong heuristics.
	add(s.bestBy(m, func(c Channel) float64 { return c.Risk }))
	add(s.bestBy(m, func(c Channel) float64 { return c.Loss }))
	add(s.bestBy(m, func(c Channel) float64 { return c.Delay.Seconds() }))
	add(s.bestBy(m, func(c Channel) float64 { return -c.Rate }))
	add(s.bestByRankSum(m))

	// Seeded-random samples for diversity across the remaining space.
	pool := make([]int, n)
	for i := range pool {
		pool[i] = i
	}
	for t := 0; t < samples; t++ {
		for j := 0; j < m; j++ { // partial Fisher-Yates
			r := j + rng.Intn(n-j)
			pool[j], pool[r] = pool[r], pool[j]
		}
		members := append([]int(nil), pool[:m]...)
		sort.Ints(members)
		add(members)
	}
	return out
}

// bestBy returns the indices of the m channels with the smallest value,
// ties broken by index for determinism, returned ascending.
func (s Set) bestBy(m int, value func(Channel) float64) []int {
	idx := make([]int, len(s))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return value(s[idx[a]]) < value(s[idx[b]])
	})
	members := append([]int(nil), idx[:m]...)
	sort.Ints(members)
	return members
}

// bestByRankSum returns the m channels with the smallest summed rank across
// risk, loss, and delay — a balanced compromise subset.
func (s Set) bestByRankSum(m int) []int {
	ranks := make([]float64, len(s))
	for _, value := range []func(Channel) float64{
		func(c Channel) float64 { return c.Risk },
		func(c Channel) float64 { return c.Loss },
		func(c Channel) float64 { return c.Delay.Seconds() },
	} {
		idx := make([]int, len(s))
		for i := range idx {
			idx[i] = i
		}
		v := value
		sort.SliceStable(idx, func(a, b int) bool { return v(s[idx[a]]) < v(s[idx[b]]) })
		for r, i := range idx {
			ranks[i] += float64(r)
		}
	}
	idx := make([]int, len(s))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ranks[idx[a]] < ranks[idx[b]] })
	members := append([]int(nil), idx[:m]...)
	sort.Ints(members)
	return members
}

// pruneDominated drops subsets strictly worse than another candidate in
// risk, loss, and delay, all evaluated at the representative threshold
// kRep. The tails are monotone in the per-channel values, so a subset
// dominated at kRep is (empirically) dominated across the threshold range;
// ties survive, so every (k, m) group keeps at least one subset and LP
// feasibility is unaffected.
func (s Set) pruneDominated(subsets [][]int, kRep int) [][]int {
	type triple struct{ risk, loss, delay float64 }
	metrics := make([]triple, len(subsets))
	for i, members := range subsets {
		metrics[i] = triple{
			risk:  s.MembersRisk(kRep, members),
			loss:  s.MembersLoss(kRep, members),
			delay: s.MembersDelay(kRep, members),
		}
	}
	var out [][]int
	for i, members := range subsets {
		dominated := false
		for j := range subsets {
			if i == j {
				continue
			}
			if metrics[j].risk < metrics[i].risk &&
				metrics[j].loss < metrics[i].loss &&
				metrics[j].delay < metrics[i].delay {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, members)
		}
	}
	return out
}

// subsetKey encodes an ascending member list as a map key.
func subsetKey(members []int) string {
	b := make([]byte, 0, 2*len(members))
	for _, i := range members {
		b = append(b, byte(i>>8), byte(i))
	}
	return string(b)
}

func lessIntSlices(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
