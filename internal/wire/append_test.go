package wire

import (
	"bytes"
	"testing"
)

// TestAppendMarshalReusesBuffer checks steady-state reuse: marshaling into
// a recycled zero-length slice of sufficient capacity allocates nothing and
// produces the same bytes as Marshal.
func TestAppendMarshalReusesBuffer(t *testing.T) {
	pkt := SharePacket{Seq: 7, K: 2, M: 3, Index: 2, SentAt: 99, Payload: bytes.Repeat([]byte{0xab}, 1400)}
	want, err := Marshal(pkt)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, len(want))
	first := &buf[:1][0]
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = AppendMarshal(buf[:0], pkt)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendMarshal into a sized buffer allocates %v times per op, want 0", allocs)
	}
	if &buf[0] != first {
		t.Error("AppendMarshal did not reuse the provided buffer")
	}
	if !bytes.Equal(buf, want) {
		t.Error("AppendMarshal output differs from Marshal")
	}
}

// TestAppendMarshalStaleChecksumField checks that a recycled buffer with
// garbage where the CRC field lands still marshals correctly.
func TestAppendMarshalStaleChecksumField(t *testing.T) {
	pkt := SharePacket{Seq: 1, K: 1, M: 1, Index: 0, SentAt: 5, Payload: []byte("x")}
	want, err := Marshal(pkt)
	if err != nil {
		t.Fatal(err)
	}
	stale := bytes.Repeat([]byte{0xee}, HeaderSize+8)
	got, err := AppendMarshal(stale[:0], pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("stale buffer contents leaked into the marshaled datagram")
	}
	if _, err := Unmarshal(got); err != nil {
		t.Errorf("marshaled datagram fails verification: %v", err)
	}
}

// TestUnmarshalDoesNotMutateInput pins the read-only contract: checksum
// verification must not patch bytes 24:28, valid or not.
func TestUnmarshalDoesNotMutateInput(t *testing.T) {
	good, err := Marshal(SharePacket{Seq: 2, K: 2, M: 2, Index: 1, SentAt: 1, Payload: []byte("ro")})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), good...)
	corrupt[HeaderSize] ^= 0xff
	for name, datagram := range map[string][]byte{"valid": good, "corrupt": corrupt} {
		orig := append([]byte(nil), datagram...)
		_, _ = Unmarshal(datagram)
		if !bytes.Equal(datagram, orig) {
			t.Errorf("%s: Unmarshal mutated its input", name)
		}
	}
	report := MarshalReport(ReportPacket{Epoch: 1, Delivered: 2})
	orig := append([]byte(nil), report...)
	if _, err := UnmarshalReport(report); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(report, orig) {
		t.Error("UnmarshalReport mutated its input")
	}
}

// TestUnmarshalZeroAlloc pins parsing at zero allocations on the happy
// path (the payload aliases the input).
func TestUnmarshalZeroAlloc(t *testing.T) {
	buf, err := Marshal(SharePacket{Seq: 3, K: 2, M: 3, Index: 0, SentAt: 1, Payload: bytes.Repeat([]byte{1}, 512)})
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := Unmarshal(buf); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Unmarshal allocates %v times per op, want 0", allocs)
	}
}
