// Package wire defines the share packet format used by the ReMICSS
// reference protocol.
//
// Each share of a source symbol travels as one datagram. Version 1, the
// single-session format:
//
//	offset  size  field
//	0       2     magic "RS"
//	2       1     version (1)
//	3       1     threshold k
//	4       1     multiplicity m
//	5       1     share index (0-based, < m)
//	6       2     payload length (big endian)
//	8       8     symbol sequence number (big endian)
//	16      8     send timestamp, nanoseconds (big endian, signed)
//	24      4     CRC-32C over header (zeroed checksum field) and payload
//	28      n     share payload
//
// Version 2 is the multi-tenant gateway format: identical through offset
// 24, then a session identifier before the checksum, so a gateway can
// route a datagram to its session with one fixed-offset read
// (PeekSession) without parsing or checksumming the whole packet:
//
//	offset  size  field
//	24      8     session ID (big endian)
//	32      4     CRC-32C over header (zeroed checksum field) and payload
//	36      n     share payload
//
// Unmarshal accepts both versions (a v1 datagram parses with Session 0),
// so a gateway socket can carry v2 traffic alongside pre-gateway v1
// senders. Marshal and AppendMarshal emit v1 and refuse packets with a
// session ID — silently dropping the ID would misroute the share — and
// AppendMarshalSession emits v2.
//
// The timestamp lets the receiver measure one-way delay against the same
// clock in simulation, and is the mechanism the paper's delay experiment
// uses (timestamps embedded in echoed packets). The checksum guards the
// reassembly buffer against corrupted or truncated datagrams.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// HeaderSize is the fixed number of bytes before the payload in a version
// 1 datagram.
const HeaderSize = 28

// HeaderSizeV2 is the fixed number of bytes before the payload in a
// version 2 (session-addressed) datagram: HeaderSize plus the 8-byte
// session ID.
const HeaderSizeV2 = 36

// MaxPayload is the largest payload length the 16-bit length field allows.
const MaxPayload = 1<<16 - 1

// Version is the protocol version emitted by Marshal.
const Version = 1

// VersionSession is the protocol version emitted by AppendMarshalSession:
// the v2 header carrying a session ID for gateway routing.
const VersionSession = 2

var magic = [2]byte{'R', 'S'}

// castagnoli is the CRC-32C table (the polynomial used by iSCSI and ext4).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode errors.
var (
	ErrTooShort    = errors.New("wire: datagram shorter than header")
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrBadLength   = errors.New("wire: payload length mismatch")
	ErrBadChecksum = errors.New("wire: checksum mismatch")
	ErrBadParams   = errors.New("wire: invalid share parameters")
)

// SharePacket is the parsed form of one share datagram.
type SharePacket struct {
	// Seq is the source symbol sequence number the share belongs to.
	Seq uint64
	// Session identifies the secret-sharing session the share belongs to
	// on a multiplexed (gateway) socket. Zero means single-session
	// traffic: v1 datagrams always parse with Session 0, and a packet
	// with Session 0 marshals to the v1 format via Marshal/AppendMarshal
	// or to v2 via AppendMarshalSession.
	Session uint64
	// K is the reconstruction threshold for the symbol.
	K uint8
	// M is the number of shares generated for the symbol.
	M uint8
	// Index is this share's index within the split, in [0, M).
	Index uint8
	// SentAt is the sender's clock, in nanoseconds, when the share was
	// transmitted.
	SentAt int64
	// Payload is the share data.
	Payload []byte //remicss:secret
}

// Validate checks internal consistency of the parameters.
//
//remicss:noalloc
func (p SharePacket) Validate() error {
	if p.K < 1 || p.M < p.K || p.Index >= p.M {
		return fmt.Errorf("%w: k=%d, m=%d, index=%d", ErrBadParams, p.K, p.M, p.Index)
	}
	if len(p.Payload) > MaxPayload {
		return fmt.Errorf("%w: payload %d bytes", ErrBadParams, len(p.Payload))
	}
	return nil
}

// Marshal serializes the packet. The payload is copied into the result.
func Marshal(p SharePacket) ([]byte, error) {
	return AppendMarshal(nil, p)
}

// AppendMarshal serializes the packet in the v1 format onto dst (which may
// be nil or a recycled buffer sliced to zero length) and returns the
// extended slice — the append-style codec discipline that lets a
// steady-state sender reuse one datagram buffer per send instead of
// allocating per share. A packet carrying a session ID is refused: the v1
// header has nowhere to put it, and dropping it silently would misroute
// the share on a multiplexed socket (use AppendMarshalSession).
//
//remicss:noalloc
func AppendMarshal(dst []byte, p SharePacket) ([]byte, error) {
	if p.Session != 0 {
		return nil, fmt.Errorf("%w: session %d needs the v2 format", ErrBadParams, p.Session)
	}
	return appendMarshal(dst, p, Version)
}

// AppendMarshalSession serializes the packet in the v2 (session-addressed)
// format onto dst; otherwise identical to AppendMarshal. Session 0 is
// legal — the header is what declares the format, not the ID value.
//
//remicss:noalloc
func AppendMarshalSession(dst []byte, p SharePacket) ([]byte, error) {
	return appendMarshal(dst, p, VersionSession)
}

// appendMarshal emits one datagram in the given header version.
//
//remicss:noalloc
func appendMarshal(dst []byte, p SharePacket, version byte) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	hdr := HeaderSize
	if version == VersionSession {
		hdr = HeaderSizeV2
	}
	off := len(dst)
	n := hdr + len(p.Payload)
	if cap(dst)-off >= n {
		dst = dst[:off+n]
	} else {
		dst = append(dst, make([]byte, n)...) //lint:allow noalloc amortized growth; steady-state senders recycle dst at full capacity
	}
	buf := dst[off:]
	buf[0], buf[1] = magic[0], magic[1]
	buf[2] = version
	buf[3] = p.K
	buf[4] = p.M
	buf[5] = p.Index
	binary.BigEndian.PutUint16(buf[6:8], uint16(len(p.Payload)))
	binary.BigEndian.PutUint64(buf[8:16], p.Seq)
	binary.BigEndian.PutUint64(buf[16:24], uint64(p.SentAt))
	crcOff := 24
	if version == VersionSession {
		binary.BigEndian.PutUint64(buf[24:32], p.Session)
		crcOff = 32
	}
	copy(buf[hdr:], p.Payload)
	// Checksum over the whole datagram with the checksum field zeroed; a
	// recycled dst may carry stale bytes there.
	binary.BigEndian.PutUint32(buf[crcOff:crcOff+4], 0)
	sum := crc32.Checksum(buf, castagnoli)
	binary.BigEndian.PutUint32(buf[crcOff:crcOff+4], sum)
	return dst, nil
}

// zeroCRC substitutes for the checksum field when computing a datagram CRC
// without writing to the buffer. Package-level because a stack array passed
// to crc32's assembly kernels is forced to the heap.
var zeroCRC [4]byte

// checksum computes the datagram CRC as if the 4 bytes at crcOff were
// zero, without writing to buf — Unmarshal must not mutate its input,
// which may be shared with concurrent readers.
//
//remicss:noalloc
func checksum(buf []byte, crcOff int) uint32 {
	sum := crc32.Update(0, castagnoli, buf[:crcOff])
	sum = crc32.Update(sum, castagnoli, zeroCRC[:])
	return crc32.Update(sum, castagnoli, buf[crcOff+4:])
}

// Unmarshal parses and verifies a datagram of either header version. The
// input is strictly read-only (checksum verification reconstructs the
// zeroed-field CRC incrementally rather than patching the buffer), so
// concurrent receivers may parse buffers they do not own. The returned
// packet's payload aliases the input; callers that retain it must copy.
//
//remicss:noalloc
func Unmarshal(buf []byte) (SharePacket, error) {
	if len(buf) < HeaderSize {
		return SharePacket{}, fmt.Errorf("%w: %d bytes", ErrTooShort, len(buf))
	}
	if buf[0] != magic[0] || buf[1] != magic[1] {
		return SharePacket{}, ErrBadMagic
	}
	hdr, crcOff := HeaderSize, 24
	var session uint64
	switch buf[2] {
	case Version:
	case VersionSession:
		if len(buf) < HeaderSizeV2 {
			return SharePacket{}, fmt.Errorf("%w: %d bytes for a v2 header", ErrTooShort, len(buf))
		}
		hdr, crcOff = HeaderSizeV2, 32
		session = binary.BigEndian.Uint64(buf[24:32])
	default:
		return SharePacket{}, fmt.Errorf("%w: %d", ErrBadVersion, buf[2])
	}
	payloadLen := int(binary.BigEndian.Uint16(buf[6:8]))
	if len(buf) != hdr+payloadLen {
		return SharePacket{}, fmt.Errorf("%w: header says %d, datagram carries %d",
			ErrBadLength, payloadLen, len(buf)-hdr)
	}
	if binary.BigEndian.Uint32(buf[crcOff:crcOff+4]) != checksum(buf, crcOff) {
		return SharePacket{}, ErrBadChecksum
	}
	p := SharePacket{
		Seq:     binary.BigEndian.Uint64(buf[8:16]),
		Session: session,
		K:       buf[3],
		M:       buf[4],
		Index:   buf[5],
		SentAt:  int64(binary.BigEndian.Uint64(buf[16:24])),
		Payload: buf[hdr:],
	}
	if err := p.Validate(); err != nil {
		return SharePacket{}, err
	}
	return p, nil
}

// PeekSession extracts the session ID from a datagram without parsing or
// checksumming it: the gateway's per-socket ingest goroutines route every
// datagram by session before the owning session's receiver does the full
// (CRC-verified) Unmarshal, so the dispatch cost must stay at a few
// fixed-offset reads. A v1 datagram reports session 0 (the legacy,
// unaddressed session); ok is false when the buffer cannot be a share
// datagram of either version (too short, wrong magic, unknown version) —
// corruption beyond that is caught downstream by the checksum.
//
//remicss:noalloc
func PeekSession(buf []byte) (session uint64, ok bool) {
	if len(buf) < HeaderSize || buf[0] != magic[0] || buf[1] != magic[1] {
		return 0, false
	}
	switch buf[2] {
	case Version:
		return 0, true
	case VersionSession:
		if len(buf) < HeaderSizeV2 {
			return 0, false
		}
		return binary.BigEndian.Uint64(buf[24:32]), true
	}
	return 0, false
}
