// Package wire defines the share packet format used by the ReMICSS
// reference protocol.
//
// Each share of a source symbol travels as one datagram:
//
//	offset  size  field
//	0       2     magic "RS"
//	2       1     version (1)
//	3       1     threshold k
//	4       1     multiplicity m
//	5       1     share index (0-based, < m)
//	6       2     payload length (big endian)
//	8       8     symbol sequence number (big endian)
//	16      8     send timestamp, nanoseconds (big endian, signed)
//	24      4     CRC-32C over header (zeroed checksum field) and payload
//	28      n     share payload
//
// The timestamp lets the receiver measure one-way delay against the same
// clock in simulation, and is the mechanism the paper's delay experiment
// uses (timestamps embedded in echoed packets). The checksum guards the
// reassembly buffer against corrupted or truncated datagrams.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// HeaderSize is the fixed number of bytes before the payload.
const HeaderSize = 28

// MaxPayload is the largest payload length the 16-bit length field allows.
const MaxPayload = 1<<16 - 1

// Version is the protocol version emitted by Marshal.
const Version = 1

var magic = [2]byte{'R', 'S'}

// castagnoli is the CRC-32C table (the polynomial used by iSCSI and ext4).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode errors.
var (
	ErrTooShort    = errors.New("wire: datagram shorter than header")
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrBadLength   = errors.New("wire: payload length mismatch")
	ErrBadChecksum = errors.New("wire: checksum mismatch")
	ErrBadParams   = errors.New("wire: invalid share parameters")
)

// SharePacket is the parsed form of one share datagram.
type SharePacket struct {
	// Seq is the source symbol sequence number the share belongs to.
	Seq uint64
	// K is the reconstruction threshold for the symbol.
	K uint8
	// M is the number of shares generated for the symbol.
	M uint8
	// Index is this share's index within the split, in [0, M).
	Index uint8
	// SentAt is the sender's clock, in nanoseconds, when the share was
	// transmitted.
	SentAt int64
	// Payload is the share data.
	Payload []byte //remicss:secret
}

// Validate checks internal consistency of the parameters.
//
//remicss:noalloc
func (p SharePacket) Validate() error {
	if p.K < 1 || p.M < p.K || p.Index >= p.M {
		return fmt.Errorf("%w: k=%d, m=%d, index=%d", ErrBadParams, p.K, p.M, p.Index)
	}
	if len(p.Payload) > MaxPayload {
		return fmt.Errorf("%w: payload %d bytes", ErrBadParams, len(p.Payload))
	}
	return nil
}

// Marshal serializes the packet. The payload is copied into the result.
func Marshal(p SharePacket) ([]byte, error) {
	return AppendMarshal(nil, p)
}

// AppendMarshal serializes the packet onto dst (which may be nil or a
// recycled buffer sliced to zero length) and returns the extended slice —
// the append-style codec discipline that lets a steady-state sender reuse
// one datagram buffer per send instead of allocating per share.
//
//remicss:noalloc
func AppendMarshal(dst []byte, p SharePacket) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	off := len(dst)
	n := HeaderSize + len(p.Payload)
	if cap(dst)-off >= n {
		dst = dst[:off+n]
	} else {
		dst = append(dst, make([]byte, n)...) //lint:allow noalloc amortized growth; steady-state senders recycle dst at full capacity
	}
	buf := dst[off:]
	buf[0], buf[1] = magic[0], magic[1]
	buf[2] = Version
	buf[3] = p.K
	buf[4] = p.M
	buf[5] = p.Index
	binary.BigEndian.PutUint16(buf[6:8], uint16(len(p.Payload)))
	binary.BigEndian.PutUint64(buf[8:16], p.Seq)
	binary.BigEndian.PutUint64(buf[16:24], uint64(p.SentAt))
	copy(buf[HeaderSize:], p.Payload)
	// Checksum over the whole datagram with the checksum field zeroed; a
	// recycled dst may carry stale bytes there.
	binary.BigEndian.PutUint32(buf[24:28], 0)
	sum := crc32.Checksum(buf, castagnoli)
	binary.BigEndian.PutUint32(buf[24:28], sum)
	return dst, nil
}

// zeroCRC substitutes for the checksum field when computing a datagram CRC
// without writing to the buffer. Package-level because a stack array passed
// to crc32's assembly kernels is forced to the heap.
var zeroCRC [4]byte

// checksum computes the datagram CRC as if bytes 24:28 were zero, without
// writing to buf — Unmarshal must not mutate its input, which may be shared
// with concurrent readers.
//
//remicss:noalloc
func checksum(buf []byte) uint32 {
	sum := crc32.Update(0, castagnoli, buf[:24])
	sum = crc32.Update(sum, castagnoli, zeroCRC[:])
	return crc32.Update(sum, castagnoli, buf[28:])
}

// Unmarshal parses and verifies a datagram. The input is strictly read-only
// (checksum verification reconstructs the zeroed-field CRC incrementally
// rather than patching the buffer), so concurrent receivers may parse
// buffers they do not own. The returned packet's payload aliases the input;
// callers that retain it must copy.
//
//remicss:noalloc
func Unmarshal(buf []byte) (SharePacket, error) {
	if len(buf) < HeaderSize {
		return SharePacket{}, fmt.Errorf("%w: %d bytes", ErrTooShort, len(buf))
	}
	if buf[0] != magic[0] || buf[1] != magic[1] {
		return SharePacket{}, ErrBadMagic
	}
	if buf[2] != Version {
		return SharePacket{}, fmt.Errorf("%w: %d", ErrBadVersion, buf[2])
	}
	payloadLen := int(binary.BigEndian.Uint16(buf[6:8]))
	if len(buf) != HeaderSize+payloadLen {
		return SharePacket{}, fmt.Errorf("%w: header says %d, datagram carries %d",
			ErrBadLength, payloadLen, len(buf)-HeaderSize)
	}
	if binary.BigEndian.Uint32(buf[24:28]) != checksum(buf) {
		return SharePacket{}, ErrBadChecksum
	}
	p := SharePacket{
		Seq:     binary.BigEndian.Uint64(buf[8:16]),
		K:       buf[3],
		M:       buf[4],
		Index:   buf[5],
		SentAt:  int64(binary.BigEndian.Uint64(buf[16:24])),
		Payload: buf[HeaderSize:],
	}
	if err := p.Validate(); err != nil {
		return SharePacket{}, err
	}
	return p, nil
}
