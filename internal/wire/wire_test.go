package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
	"testing/quick"
)

func validPacket() SharePacket {
	return SharePacket{
		Seq:     12345,
		K:       2,
		M:       3,
		Index:   1,
		SentAt:  987654321,
		Payload: []byte("share data"),
	}
}

func TestMarshalUnmarshalRoundtrip(t *testing.T) {
	p := validPacket()
	buf, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != p.Seq || got.K != p.K || got.M != p.M || got.Index != p.Index ||
		got.SentAt != p.SentAt || !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("roundtrip mismatch: got %+v, want %+v", got, p)
	}
}

func TestRoundtripQuick(t *testing.T) {
	f := func(seq uint64, kSeed, mSeed, idxSeed uint8, sentAt int64, payload []byte) bool {
		m := mSeed%8 + 1
		k := kSeed%m + 1
		idx := idxSeed % m
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		p := SharePacket{Seq: seq, K: k, M: m, Index: idx, SentAt: sentAt, Payload: payload}
		buf, err := Marshal(p)
		if err != nil {
			return false
		}
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		return got.Seq == p.Seq && got.K == p.K && got.M == p.M &&
			got.Index == p.Index && got.SentAt == p.SentAt &&
			bytes.Equal(got.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNegativeTimestamp(t *testing.T) {
	p := validPacket()
	p.SentAt = -42
	buf, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SentAt != -42 {
		t.Errorf("SentAt = %d, want -42", got.SentAt)
	}
}

func TestMarshalValidation(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*SharePacket)
	}{
		{"k zero", func(p *SharePacket) { p.K = 0 }},
		{"k above m", func(p *SharePacket) { p.K = 4 }},
		{"index at m", func(p *SharePacket) { p.Index = 3 }},
		{"oversized payload", func(p *SharePacket) { p.Payload = make([]byte, MaxPayload+1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := validPacket()
			tc.mod(&p)
			if _, err := Marshal(p); !errors.Is(err, ErrBadParams) {
				t.Errorf("got %v, want ErrBadParams", err)
			}
		})
	}
}

func TestUnmarshalErrors(t *testing.T) {
	good, err := Marshal(validPacket())
	if err != nil {
		t.Fatal(err)
	}

	t.Run("too short", func(t *testing.T) {
		if _, err := Unmarshal(good[:HeaderSize-1]); !errors.Is(err, ErrTooShort) {
			t.Errorf("got %v, want ErrTooShort", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 'X'
		if _, err := Unmarshal(bad); !errors.Is(err, ErrBadMagic) {
			t.Errorf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[2] = 99
		if _, err := Unmarshal(bad); !errors.Is(err, ErrBadVersion) {
			t.Errorf("got %v, want ErrBadVersion", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		if _, err := Unmarshal(good[:len(good)-1]); !errors.Is(err, ErrBadLength) {
			t.Errorf("got %v, want ErrBadLength", err)
		}
	})
	t.Run("extra bytes", func(t *testing.T) {
		bad := append(append([]byte(nil), good...), 0)
		if _, err := Unmarshal(bad); !errors.Is(err, ErrBadLength) {
			t.Errorf("got %v, want ErrBadLength", err)
		}
	})
	t.Run("flipped payload bit", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)-1] ^= 0x01
		if _, err := Unmarshal(bad); !errors.Is(err, ErrBadChecksum) {
			t.Errorf("got %v, want ErrBadChecksum", err)
		}
	})
	t.Run("flipped header bit", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[9] ^= 0x80 // inside seq
		if _, err := Unmarshal(bad); !errors.Is(err, ErrBadChecksum) {
			t.Errorf("got %v, want ErrBadChecksum", err)
		}
	})
	t.Run("inconsistent params with fixed checksum", func(t *testing.T) {
		p := validPacket()
		p.K = 3
		p.M = 3
		p.Index = 2
		buf, err := Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt m to be less than k, then re-checksum so only the
		// semantic validation can catch it.
		buf[4] = 2
		rechecksum(buf)
		if _, err := Unmarshal(buf); !errors.Is(err, ErrBadParams) {
			t.Errorf("got %v, want ErrBadParams", err)
		}
	})
}

// rechecksum recomputes the CRC field after test mutations, exactly as
// Marshal does.
func rechecksum(buf []byte) {
	buf[24], buf[25], buf[26], buf[27] = 0, 0, 0, 0
	s := crc32.Checksum(buf, crc32.MakeTable(crc32.Castagnoli))
	binary.BigEndian.PutUint32(buf[24:28], s)
}

func TestUnmarshalDoesNotCopyPayload(t *testing.T) {
	buf, err := Marshal(validPacket())
	if err != nil {
		t.Fatal(err)
	}
	p, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if &p.Payload[0] != &buf[HeaderSize] {
		t.Error("payload was copied; documented as aliasing")
	}
}

func TestHeaderSizeStable(t *testing.T) {
	buf, err := Marshal(SharePacket{K: 1, M: 1, Index: 0, Payload: []byte{0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != HeaderSize+1 {
		t.Errorf("datagram length %d, want %d", len(buf), HeaderSize+1)
	}
}

func BenchmarkMarshal(b *testing.B) {
	p := validPacket()
	p.Payload = make([]byte, 1400)
	b.SetBytes(int64(len(p.Payload)))
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	p := validPacket()
	p.Payload = make([]byte, 1400)
	buf, err := Marshal(p)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(p.Payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
