package wire

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestReportMarshalUnmarshal(t *testing.T) {
	rep := ReportPacket{Epoch: 9, Delivered: 1234, Evicted: 56, Pending: 78}
	got, err := UnmarshalReport(MarshalReport(rep))
	if err != nil {
		t.Fatal(err)
	}
	if got != rep {
		t.Errorf("roundtrip = %+v, want %+v", got, rep)
	}
}

func TestReportRoundtripQuick(t *testing.T) {
	f := func(epoch, delivered, evicted uint64, pending uint32) bool {
		rep := ReportPacket{Epoch: epoch, Delivered: delivered, Evicted: evicted, Pending: pending}
		got, err := UnmarshalReport(MarshalReport(rep))
		return err == nil && got == rep
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReportUnmarshalErrors(t *testing.T) {
	good := MarshalReport(ReportPacket{Epoch: 1})
	if _, err := UnmarshalReport(good[:ReportSize-1]); !errors.Is(err, ErrNotReport) {
		t.Errorf("short: got %v", err)
	}
	long := append(append([]byte(nil), good...), 0)
	if _, err := UnmarshalReport(long); !errors.Is(err, ErrNotReport) {
		t.Errorf("long: got %v", err)
	}
	magic := append([]byte(nil), good...)
	magic[0] = 'X'
	if _, err := UnmarshalReport(magic); !errors.Is(err, ErrNotReport) {
		t.Errorf("magic: got %v", err)
	}
	ver := append([]byte(nil), good...)
	ver[2] = 9
	if _, err := UnmarshalReport(ver); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version: got %v", err)
	}
	crc := append([]byte(nil), good...)
	crc[5] ^= 0xFF
	if _, err := UnmarshalReport(crc); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("checksum: got %v", err)
	}
}

// TestReportNotConfusableWithShare: the two datagram types must reject each
// other, since both arrive on UDP sockets.
func TestReportNotConfusableWithShare(t *testing.T) {
	share, err := Marshal(SharePacket{Seq: 1, K: 1, M: 1, Index: 0, Payload: []byte{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalReport(share); err == nil {
		t.Error("share datagram parsed as report")
	}
	report := MarshalReport(ReportPacket{Epoch: 1})
	if _, err := Unmarshal(report); err == nil {
		t.Error("report datagram parsed as share")
	}
}
