package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal checks that arbitrary datagrams never panic the parser,
// that anything it accepts re-marshals to the identical datagram, and that
// parsing never writes to its input — the property concurrent receivers
// sharing one receive buffer depend on.
func FuzzUnmarshal(f *testing.F) {
	good, err := Marshal(SharePacket{
		Seq: 1, K: 2, M: 3, Index: 1, SentAt: 42, Payload: []byte("seed"),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderSize))
	// Truncation and corruption mutants of the valid seed.
	f.Add(good[:HeaderSize])
	f.Add(good[:HeaderSize/2])
	f.Add(good[:len(good)-1])
	for _, i := range []int{0, 2, 3, 6, 24, HeaderSize} {
		mutant := append([]byte(nil), good...)
		mutant[i] ^= 0x80
		f.Add(mutant)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		orig := append([]byte(nil), data...)
		pkt, err := Unmarshal(data)
		if !bytes.Equal(data, orig) {
			t.Fatal("Unmarshal mutated its input")
		}
		if err != nil {
			return
		}
		out, err := Marshal(pkt)
		if err != nil {
			t.Fatalf("accepted packet fails to re-marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("re-marshal differs from accepted datagram")
		}
		// AppendMarshal onto a prefix must reproduce the same bytes after it.
		prefixed, err := AppendMarshal([]byte{0xde, 0xad}, pkt)
		if err != nil {
			t.Fatalf("append re-marshal: %v", err)
		}
		if !bytes.Equal(prefixed[2:], data) {
			t.Fatalf("AppendMarshal differs from Marshal")
		}
	})
}

// FuzzUnmarshalReport checks the report parser never panics, never mutates
// its input, and round-trips whatever it accepts.
func FuzzUnmarshalReport(f *testing.F) {
	f.Add(MarshalReport(ReportPacket{Epoch: 3, Delivered: 10, Evicted: 1, Pending: 4}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, ReportSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		orig := append([]byte(nil), data...)
		rep, err := UnmarshalReport(data)
		if !bytes.Equal(data, orig) {
			t.Fatal("UnmarshalReport mutated its input")
		}
		if err != nil {
			return
		}
		if !bytes.Equal(MarshalReport(rep), data) {
			t.Fatal("re-marshal differs from accepted report")
		}
	})
}
