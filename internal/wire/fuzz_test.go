package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal checks that arbitrary datagrams never panic the parser,
// that anything it accepts re-marshals to the identical datagram (in the
// header version the datagram declared), and that parsing never writes to
// its input — the property concurrent receivers sharing one receive buffer
// depend on.
func FuzzUnmarshal(f *testing.F) {
	good, err := Marshal(SharePacket{
		Seq: 1, K: 2, M: 3, Index: 1, SentAt: 42, Payload: []byte("seed"),
	})
	if err != nil {
		f.Fatal(err)
	}
	goodV2, err := AppendMarshalSession(nil, SharePacket{
		Seq: 1, Session: 0x1122334455667788, K: 2, M: 3, Index: 1, SentAt: 42,
		Payload: []byte("seed"),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(goodV2)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderSize))
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderSizeV2))
	// Truncation and corruption mutants of the valid seeds; for the v2
	// seed, every truncation boundary and corruption offset inside the
	// session-ID field [24, 32).
	f.Add(good[:HeaderSize])
	f.Add(good[:HeaderSize/2])
	f.Add(good[:len(good)-1])
	for _, i := range []int{0, 2, 3, 6, 24, HeaderSize} {
		mutant := append([]byte(nil), good...)
		mutant[i] ^= 0x80
		f.Add(mutant)
	}
	f.Add(goodV2[:HeaderSizeV2])
	f.Add(goodV2[:HeaderSizeV2-1])
	f.Add(goodV2[:HeaderSize])
	f.Add(goodV2[:len(goodV2)-1])
	for _, i := range []int{0, 2, 3, 6, 24, 25, 28, 31, 32, HeaderSizeV2} {
		mutant := append([]byte(nil), goodV2...)
		mutant[i] ^= 0x80
		f.Add(mutant)
	}
	// A v1 datagram relabeled v2 and vice versa: version-field confusion
	// must be rejected by the length or checksum gates, not read OOB.
	relabel := append([]byte(nil), good...)
	relabel[2] = VersionSession
	f.Add(relabel)
	relabel = append([]byte(nil), goodV2...)
	relabel[2] = Version
	f.Add(relabel)

	f.Fuzz(func(t *testing.T, data []byte) {
		orig := append([]byte(nil), data...)
		pkt, err := Unmarshal(data)
		if !bytes.Equal(data, orig) {
			t.Fatal("Unmarshal mutated its input")
		}
		if err != nil {
			return
		}
		// Re-marshal in the version the datagram declared. A v1 datagram
		// must have parsed with Session 0 (Marshal would refuse it
		// otherwise, failing the test as intended).
		remarshal := func(dst []byte) ([]byte, error) {
			if data[2] == VersionSession {
				return AppendMarshalSession(dst, pkt)
			}
			return AppendMarshal(dst, pkt)
		}
		out, err := remarshal(nil)
		if err != nil {
			t.Fatalf("accepted packet fails to re-marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("re-marshal differs from accepted datagram")
		}
		// Appending onto a prefix must reproduce the same bytes after it.
		prefixed, err := remarshal([]byte{0xde, 0xad})
		if err != nil {
			t.Fatalf("append re-marshal: %v", err)
		}
		if !bytes.Equal(prefixed[2:], data) {
			t.Fatalf("append re-marshal differs from Marshal")
		}
		// The dispatch fast path must agree with the full parser on every
		// accepted datagram.
		if s, ok := PeekSession(data); !ok || s != pkt.Session {
			t.Fatalf("PeekSession = (%d, %v), Unmarshal says session %d", s, ok, pkt.Session)
		}
	})
}

// FuzzUnmarshalReport checks the report parser never panics, never mutates
// its input, and round-trips whatever it accepts.
func FuzzUnmarshalReport(f *testing.F) {
	f.Add(MarshalReport(ReportPacket{Epoch: 3, Delivered: 10, Evicted: 1, Pending: 4}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, ReportSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		orig := append([]byte(nil), data...)
		rep, err := UnmarshalReport(data)
		if !bytes.Equal(data, orig) {
			t.Fatal("UnmarshalReport mutated its input")
		}
		if err != nil {
			return
		}
		if !bytes.Equal(MarshalReport(rep), data) {
			t.Fatal("re-marshal differs from accepted report")
		}
	})
}
