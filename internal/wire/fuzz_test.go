package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal checks that arbitrary datagrams never panic the parser and
// that anything it accepts re-marshals to the identical datagram.
func FuzzUnmarshal(f *testing.F) {
	good, err := Marshal(SharePacket{
		Seq: 1, K: 2, M: 3, Index: 1, SentAt: 42, Payload: []byte("seed"),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderSize))
	f.Add(good[:HeaderSize])

	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := Marshal(pkt)
		if err != nil {
			t.Fatalf("accepted packet fails to re-marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("re-marshal differs from accepted datagram")
		}
	})
}
