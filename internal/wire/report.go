package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// ReportPacket is the receiver→sender feedback datagram: a delta of
// delivery counters since the previous report. The sender derives the
// recent symbol loss fraction from it and feeds an adaptive controller
// (internal/adapt). Reports travel over any channel (they are tiny and
// carry no secret material).
type ReportPacket struct {
	// Epoch numbers reports so reordered or duplicated feedback is
	// detectable.
	Epoch uint64
	// Delivered counts symbols reconstructed since the last report.
	Delivered uint64
	// Evicted counts symbols given up on (timeout/memory) since the last
	// report.
	Evicted uint64
	// Pending is the receiver's current reassembly backlog.
	Pending uint32
}

// ReportSize is the fixed report datagram length.
const ReportSize = 36

var reportMagic = [2]byte{'R', 'P'}

// ErrNotReport marks datagrams that are not report packets.
var ErrNotReport = errors.New("wire: not a report datagram")

// MarshalReport serializes a report.
func MarshalReport(r ReportPacket) []byte {
	buf := make([]byte, ReportSize)
	buf[0], buf[1] = reportMagic[0], reportMagic[1]
	buf[2] = Version
	binary.BigEndian.PutUint64(buf[4:12], r.Epoch)
	binary.BigEndian.PutUint64(buf[12:20], r.Delivered)
	binary.BigEndian.PutUint64(buf[20:28], r.Evicted)
	binary.BigEndian.PutUint32(buf[28:32], r.Pending)
	binary.BigEndian.PutUint32(buf[32:36], 0)
	sum := crc32.Checksum(buf, castagnoli)
	binary.BigEndian.PutUint32(buf[32:36], sum)
	return buf
}

// UnmarshalReport parses and verifies a report datagram.
func UnmarshalReport(buf []byte) (ReportPacket, error) {
	if len(buf) != ReportSize {
		return ReportPacket{}, fmt.Errorf("%w: %d bytes", ErrNotReport, len(buf))
	}
	if buf[0] != reportMagic[0] || buf[1] != reportMagic[1] {
		return ReportPacket{}, ErrNotReport
	}
	if buf[2] != Version {
		return ReportPacket{}, fmt.Errorf("%w: version %d", ErrBadVersion, buf[2])
	}
	// Verify the CRC without patching the buffer: reports may arrive on
	// shared receive buffers read by concurrent transport goroutines.
	computed := crc32.Update(0, castagnoli, buf[:32])
	computed = crc32.Update(computed, castagnoli, zeroCRC[:])
	if binary.BigEndian.Uint32(buf[32:36]) != computed {
		return ReportPacket{}, ErrBadChecksum
	}
	return ReportPacket{
		Epoch:     binary.BigEndian.Uint64(buf[4:12]),
		Delivered: binary.BigEndian.Uint64(buf[12:20]),
		Evicted:   binary.BigEndian.Uint64(buf[20:28]),
		Pending:   binary.BigEndian.Uint32(buf[28:32]),
	}, nil
}
