package wire

import (
	"bytes"
	"errors"
	"testing"
)

func validSessionPacket() SharePacket {
	p := validPacket()
	p.Session = 0xfeed_beef_cafe_f00d
	return p
}

// TestSessionRoundtrip pins the v2 format: a session-addressed packet
// round-trips through AppendMarshalSession/Unmarshal with every field
// intact, including the session ID.
func TestSessionRoundtrip(t *testing.T) {
	p := validSessionPacket()
	buf, err := AppendMarshalSession(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != HeaderSizeV2+len(p.Payload) {
		t.Fatalf("v2 datagram length %d, want %d", len(buf), HeaderSizeV2+len(p.Payload))
	}
	if buf[2] != VersionSession {
		t.Fatalf("version byte %d, want %d", buf[2], VersionSession)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Session != p.Session || got.Seq != p.Seq || got.K != p.K || got.M != p.M ||
		got.Index != p.Index || got.SentAt != p.SentAt || !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("roundtrip mismatch: got %+v, want %+v", got, p)
	}
}

// TestSessionZeroIsLegalInV2 checks the header version, not the ID value,
// selects the format: session 0 marshals to v2 when asked and parses back
// as session 0.
func TestSessionZeroIsLegalInV2(t *testing.T) {
	p := validPacket() // Session 0
	buf, err := AppendMarshalSession(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Session != 0 {
		t.Errorf("Session = %d, want 0", got.Session)
	}
}

// TestV1RefusesSessionID: the v1 marshalers must not silently drop a
// session ID — that would misroute the share on a gateway socket.
func TestV1RefusesSessionID(t *testing.T) {
	p := validSessionPacket()
	if _, err := Marshal(p); !errors.Is(err, ErrBadParams) {
		t.Errorf("Marshal: got %v, want ErrBadParams", err)
	}
	if _, err := AppendMarshal(nil, p); !errors.Is(err, ErrBadParams) {
		t.Errorf("AppendMarshal: got %v, want ErrBadParams", err)
	}
}

// TestV1StillParsesWithSessionZero: version gating — the pre-gateway
// format is unchanged on the wire and parses with Session 0.
func TestV1StillParsesWithSessionZero(t *testing.T) {
	buf, err := Marshal(validPacket())
	if err != nil {
		t.Fatal(err)
	}
	if buf[2] != Version {
		t.Fatalf("version byte %d, want %d", buf[2], Version)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Session != 0 {
		t.Errorf("Session = %d, want 0", got.Session)
	}
}

// TestSessionUnmarshalErrors covers the v2-specific reject paths:
// truncated or corrupted session-ID fields must fail cleanly, never
// panic, and never parse as a different session.
func TestSessionUnmarshalErrors(t *testing.T) {
	good, err := AppendMarshalSession(nil, validSessionPacket())
	if err != nil {
		t.Fatal(err)
	}
	t.Run("truncated inside session field", func(t *testing.T) {
		for cut := HeaderSize; cut < HeaderSizeV2; cut++ {
			if _, err := Unmarshal(good[:cut]); err == nil {
				t.Errorf("accepted a v2 header truncated to %d bytes", cut)
			}
		}
	})
	t.Run("corrupted session field", func(t *testing.T) {
		for off := 24; off < 32; off++ {
			bad := append([]byte(nil), good...)
			bad[off] ^= 0x01
			if _, err := Unmarshal(bad); !errors.Is(err, ErrBadChecksum) {
				t.Errorf("byte %d flipped: got %v, want ErrBadChecksum", off, err)
			}
		}
	})
	t.Run("v2 header with v1 length", func(t *testing.T) {
		// A v1-sized datagram relabeled v2: the payload-length check must
		// reject it before any out-of-range read.
		v1, err := Marshal(validPacket())
		if err != nil {
			t.Fatal(err)
		}
		bad := append([]byte(nil), v1...)
		bad[2] = VersionSession
		if _, err := Unmarshal(bad); err == nil {
			t.Error("accepted a v1-sized datagram with a v2 version byte")
		}
	})
}

// TestPeekSession pins the gateway dispatch fast path against the full
// parser on both versions and on garbage.
func TestPeekSession(t *testing.T) {
	v2, err := AppendMarshalSession(nil, validSessionPacket())
	if err != nil {
		t.Fatal(err)
	}
	v1, err := Marshal(validPacket())
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := PeekSession(v2); !ok || s != validSessionPacket().Session {
		t.Errorf("PeekSession(v2) = (%d, %v)", s, ok)
	}
	if s, ok := PeekSession(v1); !ok || s != 0 {
		t.Errorf("PeekSession(v1) = (%d, %v), want (0, true)", s, ok)
	}
	if _, ok := PeekSession(nil); ok {
		t.Error("PeekSession accepted nil")
	}
	if _, ok := PeekSession(v2[:HeaderSizeV2-1]); ok {
		t.Error("PeekSession accepted a truncated v2 header")
	}
	bad := append([]byte(nil), v2...)
	bad[0] = 'X'
	if _, ok := PeekSession(bad); ok {
		t.Error("PeekSession accepted bad magic")
	}
	bad = append(bad[:0], v2...)
	bad[2] = 99
	if _, ok := PeekSession(bad); ok {
		t.Error("PeekSession accepted an unknown version")
	}
}

// TestAppendMarshalSessionRecycles checks the v2 marshaler keeps the
// append-style zero-steady-state-allocation discipline.
func TestAppendMarshalSessionRecycles(t *testing.T) {
	p := validSessionPacket()
	buf, err := AppendMarshalSession(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = AppendMarshalSession(buf[:0], p)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendMarshalSession allocates %v times on a recycled buffer, want 0", allocs)
	}
}
