package stream

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriterChunksExactly(t *testing.T) {
	var sent [][]byte
	w, err := NewWriter(func(p []byte) error {
		sent = append(sent, append([]byte(nil), p...))
		return nil
	}, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := w.Write([]byte("abcdefghij")) // 10 bytes -> 4+4+2
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("wrote %d, want 10", n)
	}
	want := [][]byte{[]byte("abcd"), []byte("efgh"), []byte("ij")}
	if len(sent) != len(want) {
		t.Fatalf("sent %d chunks, want %d", len(sent), len(want))
	}
	for i := range want {
		if !bytes.Equal(sent[i], want[i]) {
			t.Errorf("chunk %d = %q, want %q", i, sent[i], want[i])
		}
	}
}

func TestWriterRetries(t *testing.T) {
	fails := 3
	attempts := 0
	w, err := NewWriter(func(p []byte) error {
		attempts++
		if fails > 0 {
			fails--
			return errors.New("backpressure")
		}
		return nil
	}, 8, func(error) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if attempts != 4 {
		t.Errorf("attempts = %d, want 4", attempts)
	}
}

func TestWriterGivesUp(t *testing.T) {
	w, err := NewWriter(func([]byte) error { return errors.New("down") }, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrWriterStopped) {
		t.Errorf("got %v, want ErrWriterStopped", err)
	}
	// Subsequent writes fail fast.
	if _, err := w.Write([]byte("y")); !errors.Is(err, ErrWriterStopped) {
		t.Errorf("got %v, want ErrWriterStopped", err)
	}
}

func TestWriterValidation(t *testing.T) {
	if _, err := NewWriter(nil, 8, nil); err == nil {
		t.Error("nil send accepted")
	}
	if _, err := NewWriter(func([]byte) error { return nil }, 0, nil); err == nil {
		t.Error("zero chunk size accepted")
	}
}

func TestOrdererInOrderPassthrough(t *testing.T) {
	var got []uint64
	o, err := NewOrderer(8, func(seq uint64, _ []byte) { got = append(got, seq) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(0); seq < 10; seq++ {
		o.Push(seq, nil)
	}
	if len(got) != 10 {
		t.Fatalf("delivered %d", len(got))
	}
	for i, seq := range got {
		if seq != uint64(i) {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestOrdererReordersWithinWindow(t *testing.T) {
	var got []uint64
	o, err := NewOrderer(16, func(seq uint64, _ []byte) { got = append(got, seq) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	perm := []uint64{3, 0, 1, 5, 2, 4, 7, 6}
	for _, seq := range perm {
		o.Push(seq, nil)
	}
	if len(got) != len(perm) {
		t.Fatalf("delivered %d of %d", len(got), len(perm))
	}
	for i, seq := range got {
		if seq != uint64(i) {
			t.Fatalf("order = %v", got)
		}
	}
	if st := o.Stats(); st.Skipped != 0 || st.Delivered != 8 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOrdererSkipsPersistentGap(t *testing.T) {
	var got []uint64
	var gaps []uint64
	o, err := NewOrderer(4, func(seq uint64, _ []byte) { got = append(got, seq) },
		func(seq uint64) { gaps = append(gaps, seq) })
	if err != nil {
		t.Fatal(err)
	}
	// Sequence 0 never arrives; 1..6 do. Window 4 forces the skip.
	for seq := uint64(1); seq <= 6; seq++ {
		o.Push(seq, nil)
	}
	if len(gaps) != 1 || gaps[0] != 0 {
		t.Fatalf("gaps = %v, want [0]", gaps)
	}
	if len(got) == 0 || got[0] != 1 {
		t.Fatalf("delivery after skip = %v", got)
	}
	if st := o.Stats(); st.Skipped != 1 {
		t.Errorf("skipped = %d", st.Skipped)
	}
}

func TestOrdererWideGap(t *testing.T) {
	var got []uint64
	o, err := NewOrderer(2, func(seq uint64, _ []byte) { got = append(got, seq) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 0, 1, 2 all missing; 3, 4, 5 arrive.
	o.Push(3, nil)
	o.Push(4, nil)
	o.Push(5, nil)
	if len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("got %v", got)
	}
	if st := o.Stats(); st.Skipped != 3 {
		t.Errorf("skipped = %d, want 3", st.Skipped)
	}
}

func TestOrdererStaleAndDuplicate(t *testing.T) {
	o, err := NewOrderer(8, func(uint64, []byte) {}, nil)
	if err != nil {
		t.Fatal(err)
	}
	o.Push(0, nil)
	o.Push(0, nil) // stale (already delivered)
	o.Push(5, nil)
	o.Push(5, nil) // duplicate (still pending)
	st := o.Stats()
	if st.Stale != 1 {
		t.Errorf("stale = %d, want 1", st.Stale)
	}
	if st.Duplicate != 1 {
		t.Errorf("duplicate = %d, want 1", st.Duplicate)
	}
}

func TestOrdererFlush(t *testing.T) {
	var got []uint64
	o, err := NewOrderer(64, func(seq uint64, _ []byte) { got = append(got, seq) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	o.Push(2, nil)
	o.Push(4, nil)
	if len(got) != 0 {
		t.Fatalf("premature delivery: %v", got)
	}
	o.Flush()
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("flush delivered %v", got)
	}
	if o.Pending() != 0 {
		t.Errorf("pending = %d after flush", o.Pending())
	}
}

func TestOrdererValidation(t *testing.T) {
	if _, err := NewOrderer(8, nil, nil); err == nil {
		t.Error("nil deliver accepted")
	}
	if _, err := NewOrderer(0, func(uint64, []byte) {}, nil); err == nil {
		t.Error("zero window accepted")
	}
}

// TestOrdererQuickPermutations: any permutation of a prefix window delivers
// everything in order without skips.
func TestOrdererQuickPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(nSeed uint8) bool {
		n := int(nSeed)%32 + 1
		var got []uint64
		o, err := NewOrderer(n, func(seq uint64, _ []byte) { got = append(got, seq) }, nil)
		if err != nil {
			return false
		}
		perm := rng.Perm(n)
		for _, v := range perm {
			o.Push(uint64(v), nil)
		}
		if len(got) != n {
			return false
		}
		for i, seq := range got {
			if seq != uint64(i) {
				return false
			}
		}
		return o.Stats().Skipped == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestWriterOrdererRoundtrip pipes data through both adapters with a
// shuffled middle, reconstructing the byte stream.
func TestWriterOrdererRoundtrip(t *testing.T) {
	var symbols [][]byte
	w, err := NewWriter(func(p []byte) error {
		symbols = append(symbols, append([]byte(nil), p...))
		return nil
	}, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	o, err := NewOrderer(len(symbols), func(_ uint64, p []byte) { out.Write(p) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	order := rand.New(rand.NewSource(10)).Perm(len(symbols))
	for _, i := range order {
		o.Push(uint64(i), symbols[i])
	}
	o.Flush()
	if !bytes.Equal(out.Bytes(), data) {
		t.Error("roundtrip corrupted the stream")
	}
}
